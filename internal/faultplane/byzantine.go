package faultplane

import (
	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/authn"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
)

// Behavior selects Byzantine misbehaviors for a wrapped replica host.
// Behaviors model what the paper's threat model grants the adversary on a
// compromised replica: full control of the untrusted part — including the
// replica's own transport MAC keys, which it may use to re-seal mutated
// envelopes — but no access to the trusted subsystems, so Troxy group tags
// and counter certificates cannot be forged, only misused or withheld.
type Behavior uint8

const (
	// CorruptReplies tampers with the Result of outgoing ordered replies
	// after the trusted part tagged them. The tag no longer matches, so the
	// voting Troxy discards the reply (Stats.BadReplies) and completes the
	// vote from the remaining correct executors.
	CorruptReplies Behavior = 1 << iota

	// ReplayStaleReplies re-sends each client's previous ordered reply next
	// to the current one. The stale reply carries a valid tag for old
	// content, so it passes tag verification and must be rejected by the
	// voter's request-digest binding.
	ReplayStaleReplies

	// EquivocateCerts sends semantically mutated PREPARE/COMMIT messages
	// (tampered batch payloads and digests, re-MACed so transport accepts
	// them) to peers with higher IDs while staying honest toward the rest —
	// the classic split the trusted counters exist to prevent. Correct
	// receivers reject the stale-certified mutation (RejectedCertsFrom
	// attributes it to this replica) and make progress on honest traffic.
	EquivocateCerts

	// CorruptStateChunks flips a byte in every outgoing state-transfer
	// chunk. The chunk no longer hashes to the manifest's per-chunk digest,
	// so a fetching replica must reject it (attributed via
	// RejectedCertsFrom) and complete the transfer from another digest
	// voter via its retry/rotation timer.
	CorruptStateChunks

	// EquivocateSpecReplies mutates the Result of outgoing speculative
	// replies toward peers with higher IDs while staying honest toward the
	// rest: the compromised host tells two Troxys two different fast
	// answers for the same counter-certified slot. The counter certificate
	// still binds the slot (the host cannot mint a second one), but the
	// Troxy group tag covers the result, so the mutated copy fails tag
	// verification (Stats.BadReplies) and the speculative quorum can only
	// form on the honest answer.
	EquivocateSpecReplies
)

// Byzantine wraps a replica's handler, impersonating the compromised
// untrusted host: messages the correct core sends are intercepted and
// tampered with according to the selected behaviors.
type Byzantine struct {
	inner node.Handler
	self  msg.NodeID
	auth  *authn.Authenticator
	mode  Behavior

	// lastReply remembers, per client, the previous outgoing ordered reply
	// for ReplayStaleReplies.
	lastReply map[uint64]*msg.OrderedReply
}

var _ node.Handler = (*Byzantine)(nil)

// NewByzantine wraps inner (the replica with node ID self) with the given
// behaviors. dir provides the deployment's key material; the wrapper derives
// the replica's own transport authenticator from it, exactly what a
// compromised host legitimately possesses.
func NewByzantine(inner node.Handler, self msg.NodeID, dir *authn.Directory, mode Behavior) *Byzantine {
	return &Byzantine{
		inner:     inner,
		self:      self,
		auth:      authn.NewAuthenticator(self, dir),
		mode:      mode,
		lastReply: make(map[uint64]*msg.OrderedReply),
	}
}

// OnStart implements node.Handler.
func (b *Byzantine) OnStart(env node.Env) { b.inner.OnStart(byzEnv{env, b}) }

// OnEnvelope implements node.Handler.
func (b *Byzantine) OnEnvelope(env node.Env, e *msg.Envelope) {
	b.inner.OnEnvelope(byzEnv{env, b}, e)
}

// OnTimer implements node.Handler.
func (b *Byzantine) OnTimer(env node.Env, key node.TimerKey) {
	b.inner.OnTimer(byzEnv{env, b}, key)
}

// byzEnv intercepts the wrapped replica's sends.
type byzEnv struct {
	node.Env
	b *Byzantine
}

func (e byzEnv) Send(env *msg.Envelope) { e.b.send(e.Env, env) }

// sealSend re-encodes and re-MACs a (possibly mutated) message with the
// host's own transport keys, then transmits it.
func (b *Byzantine) sealSend(raw node.Env, to msg.NodeID, m msg.Message) {
	e := msg.Seal(b.self, to, m)
	b.auth.SealMAC(e)
	raw.Send(e)
}

func (b *Byzantine) send(raw node.Env, e *msg.Envelope) {
	switch e.Kind {
	case msg.KindOrderedReply:
		if b.mode&(CorruptReplies|ReplayStaleReplies) == 0 {
			break
		}
		m, err := e.Open()
		if err != nil {
			break
		}
		rep, ok := m.(*msg.OrderedReply)
		if !ok {
			break
		}
		if b.mode&ReplayStaleReplies != 0 {
			if old := b.lastReply[rep.Client]; old != nil && old.ClientSeq < rep.ClientSeq {
				b.sealSend(raw, e.To, old)
			}
			cp := *rep
			b.lastReply[rep.Client] = &cp
		}
		if b.mode&CorruptReplies != 0 {
			// Mutate the result but keep the tag: the host cannot re-tag
			// (the group secret lives inside the Troxy), so this is the
			// strongest reply corruption available to it.
			rep.Result = append(append([]byte(nil), rep.Result...), "#byz"...)
			b.sealSend(raw, e.To, rep)
			return
		}
	case msg.KindPrepare:
		if b.mode&EquivocateCerts == 0 || e.To <= b.self {
			break
		}
		m, err := e.Open()
		if err != nil {
			break
		}
		prep, ok := m.(*msg.Prepare)
		if !ok {
			break
		}
		if len(prep.Batch.Reqs) > 0 && len(prep.Batch.Reqs[0].Op) > 0 {
			prep.Batch.Reqs[0].Op[0] ^= 0x01
			b.sealSend(raw, e.To, prep)
			return
		}
	case msg.KindCommit:
		if b.mode&EquivocateCerts == 0 || e.To <= b.self {
			break
		}
		m, err := e.Open()
		if err != nil {
			break
		}
		com, ok := m.(*msg.Commit)
		if !ok {
			break
		}
		com.BatchDigest[0] ^= 0x01
		b.sealSend(raw, e.To, com)
		return
	case msg.KindSpecReply:
		if b.mode&EquivocateSpecReplies == 0 || e.To <= b.self {
			break
		}
		m, err := e.Open()
		if err != nil {
			break
		}
		sr, ok := m.(*msg.SpecReply)
		if !ok || len(sr.Result) == 0 {
			break
		}
		sr.Result[0] ^= 0x01
		b.sealSend(raw, e.To, sr)
		return
	case msg.KindStateChunk:
		if b.mode&CorruptStateChunks == 0 {
			break
		}
		m, err := e.Open()
		if err != nil {
			break
		}
		ch, ok := m.(*msg.StateChunk)
		if !ok || len(ch.Data) == 0 {
			break
		}
		ch.Data[0] ^= 0x01
		b.sealSend(raw, e.To, ch)
		return
	default:
		// The harness only tampers with replies and ordering certificates;
		// every other kind passes through untouched below.
	}
	raw.Send(e)
}

// WrongExec wraps an application to model a Byzantine replica whose
// untrusted host executes requests incorrectly: every result is tampered
// with before it reaches the replica's own (correct) Troxy, which therefore
// tags a wrong-but-authentic reply and poisons its own fast-read cache. The
// voting Troxy must mask it by the f+1 matching-reply rule; a poisoned cache
// confirmation must trip the fast-read mismatch fallback. Snapshot, Restore
// and Keys delegate unchanged, so checkpoints and state convergence among
// correct replicas are unaffected.
type WrongExec struct {
	Inner app.Application
	// Marker is appended to every result. Give f+1 replicas the same marker
	// to model collusion that defeats voting (the negative test).
	Marker string
}

var _ app.Application = (*WrongExec)(nil)

// Execute implements app.Application, corrupting the result.
func (w *WrongExec) Execute(op []byte) []byte {
	return append(append([]byte(nil), w.Inner.Execute(op)...), w.Marker...)
}

// IsRead implements app.Application.
func (w *WrongExec) IsRead(op []byte) bool { return w.Inner.IsRead(op) }

// Keys implements app.Application.
func (w *WrongExec) Keys(op []byte) []string { return w.Inner.Keys(op) }

// Snapshot implements app.Application.
func (w *WrongExec) Snapshot() []byte { return w.Inner.Snapshot() }

// Restore implements app.Application.
func (w *WrongExec) Restore(snap []byte) error { return w.Inner.Restore(snap) }
