package faultplane_test

import (
	"reflect"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/testutil"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestInjectorDeterminism replays the same judgment sequence against two
// injectors with the same seed and plan; decisions must be identical. A
// third injector with a different seed must diverge somewhere.
func TestInjectorDeterminism(t *testing.T) {
	plan := faultplane.Plan{Links: []faultplane.LinkFault{{
		From: faultplane.Wildcard, To: faultplane.Wildcard,
		End:   ms(1000),
		DropP: 0.3, DupP: 0.3, CorruptP: 0.3, Jitter: ms(5),
	}}}
	a := faultplane.NewInjector(42, plan)
	b := faultplane.NewInjector(42, plan)
	c := faultplane.NewInjector(43, plan)
	diverged := false
	for i := 0; i < 200; i++ {
		now := ms(i)
		from, to := msg.NodeID(i%3), msg.NodeID((i+1)%3)
		da := a.Judge(now, from, to, msg.KindPrepare)
		db := b.Judge(now, from, to, msg.KindPrepare)
		if da != db {
			t.Fatalf("same seed diverged at step %d: %+v vs %+v", i, da, db)
		}
		if dc := c.Judge(now, from, to, msg.KindPrepare); dc != da {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestLinkFaultWindow(t *testing.T) {
	in := faultplane.NewInjector(1, faultplane.Plan{Links: []faultplane.LinkFault{{
		From: 1, To: 2, Start: ms(100), End: ms(200), DropP: 1,
	}}})
	if d := in.Judge(ms(50), 1, 2, msg.KindCommit); d.Drop {
		t.Error("dropped before the window")
	}
	if d := in.Judge(ms(150), 1, 2, msg.KindCommit); !d.Drop {
		t.Error("not dropped inside the window")
	}
	if d := in.Judge(ms(150), 2, 1, msg.KindCommit); d.Drop {
		t.Error("dropped on the reverse link")
	}
	if d := in.Judge(ms(200), 1, 2, msg.KindCommit); d.Drop {
		t.Error("dropped at the window end (End is exclusive)")
	}
}

func TestPartitionSymmetricAndOneWay(t *testing.T) {
	sym := faultplane.NewInjector(1, faultplane.Plan{Partitions: []faultplane.Partition{{
		Start: ms(10), Heal: ms(20), A: []msg.NodeID{0}, B: []msg.NodeID{1, 2},
	}}})
	if d := sym.Judge(ms(15), 0, 2, msg.KindPrepare); !d.Drop {
		t.Error("A->B not blocked")
	}
	if d := sym.Judge(ms(15), 2, 0, msg.KindPrepare); !d.Drop {
		t.Error("B->A not blocked under symmetric partition")
	}
	if d := sym.Judge(ms(15), 1, 2, msg.KindPrepare); d.Drop {
		t.Error("intra-side traffic blocked")
	}
	if d := sym.Judge(ms(25), 0, 2, msg.KindPrepare); d.Drop {
		t.Error("blocked after heal")
	}

	asym := faultplane.NewInjector(1, faultplane.Plan{Partitions: []faultplane.Partition{{
		Start: ms(10), Heal: ms(20), A: []msg.NodeID{0}, B: []msg.NodeID{2}, OneWay: true,
	}}})
	if d := asym.Judge(ms(15), 0, 2, msg.KindPrepare); !d.Drop {
		t.Error("A->B not blocked under one-way partition")
	}
	if d := asym.Judge(ms(15), 2, 0, msg.KindPrepare); d.Drop {
		t.Error("B->A blocked under one-way partition")
	}
}

func TestRandomPlanDeterminism(t *testing.T) {
	reps := []msg.NodeID{0, 1, 2}
	cls := []msg.NodeID{100, 101}
	p1 := faultplane.RandomPlan(7, reps, cls, time.Second)
	p2 := faultplane.RandomPlan(7, reps, cls, time.Second)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same seed drew different plans:\n%v\n%v", p1, p2)
	}
	distinct := false
	for seed := int64(8); seed < 16; seed++ {
		if !reflect.DeepEqual(p1, faultplane.RandomPlan(seed, reps, cls, time.Second)) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("eight different seeds all drew the same plan")
	}
	if end := p1.End(); end == 0 || end > time.Second {
		t.Errorf("plan end = %v, want within (0, 1s]: %v", end, p1)
	}
}

// echoNode counts deliveries.
type echoNode struct{ got int }

func (e *echoNode) OnStart(node.Env)                   {}
func (e *echoNode) OnEnvelope(node.Env, *msg.Envelope) { e.got++ }
func (e *echoNode) OnTimer(node.Env, node.TimerKey)    {}

// burstNode sends n envelopes to a peer on start.
type burstNode struct {
	to msg.NodeID
	n  int
}

func (b *burstNode) OnStart(env node.Env) {
	for i := 0; i < b.n; i++ {
		env.Send(msg.Seal(env.Self(), b.to, &msg.ChannelData{ConnID: uint64(i)}))
	}
}
func (b *burstNode) OnEnvelope(node.Env, *msg.Envelope) {}
func (b *burstNode) OnTimer(node.Env, node.TimerKey)    {}

// TestSimnetFaultHook exercises the simulator-side interceptor: total drop
// loses everything (counted), duplication doubles delivery, and the same
// seed yields the same counters.
func TestSimnetFaultHook(t *testing.T) {
	testutil.CheckGoroutines(t)
	run := func(seed int64, plan faultplane.Plan) simnet.Stats {
		net := simnet.New(9, nil)
		net.SetFault(faultplane.NewInjector(seed, plan))
		recv := &echoNode{}
		net.Attach(2, recv)
		net.Attach(1, &burstNode{to: 2, n: 10})
		net.RunUntilIdle()
		return net.Stats()
	}

	drop := faultplane.Plan{Links: []faultplane.LinkFault{{From: 1, To: 2, DropP: 1}}}
	if st := run(1, drop); st.Dropped != 10 || st.Delivered != 0 {
		t.Errorf("total drop: %+v", st)
	}

	dup := faultplane.Plan{Links: []faultplane.LinkFault{{From: 1, To: 2, DupP: 1}}}
	if st := run(1, dup); st.Duplicated != 10 || st.Delivered != 20 {
		t.Errorf("total duplication: %+v", st)
	}

	mixed := faultplane.Plan{Links: []faultplane.LinkFault{{
		From: 1, To: 2, DropP: 0.4, DupP: 0.4, CorruptP: 0.4, Jitter: ms(3),
	}}}
	if a, b := run(5, mixed), run(5, mixed); a != b {
		t.Errorf("same seed, different stats: %+v vs %+v", a, b)
	}
}

func mkOp(client, seq uint64, inv, resp int, op, result string) faultplane.Op {
	return faultplane.Op{
		Client: client, Seq: seq,
		Invoke: ms(inv), Respond: ms(resp),
		Operation: []byte(op), Result: []byte(result),
	}
}

func TestCheckLinearizablePositive(t *testing.T) {
	hist := []faultplane.Op{
		mkOp(1, 1, 0, 10, "PUT k v1", "OK"),
		mkOp(2, 1, 5, 25, "GET k", "VALUE v2"), // overlaps the second PUT: may order after it
		mkOp(1, 2, 12, 22, "PUT k v2", "OK"),
		mkOp(2, 2, 30, 40, "DEL k", "OK"),
		mkOp(1, 3, 45, 50, "GET k", "NOTFOUND"),
		mkOp(3, 1, 0, 60, "PUT j x", "OK"), // other key, fully concurrent
		mkOp(3, 2, 65, 70, "GET j", "VALUE x"),
	}
	if err := faultplane.CheckLinearizable(hist); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
}

func TestCheckLinearizableStaleRead(t *testing.T) {
	hist := []faultplane.Op{
		mkOp(1, 1, 0, 10, "PUT k v1", "OK"),
		mkOp(1, 2, 20, 30, "PUT k v2", "OK"),
		// Strictly after the second PUT responded, yet reads the old value:
		// the canonical stale-fast-read anomaly.
		mkOp(2, 1, 40, 50, "GET k", "VALUE v1"),
	}
	if err := faultplane.CheckLinearizable(hist); err == nil {
		t.Fatal("stale read accepted")
	}
}

func TestCheckLinearizableCorruptResult(t *testing.T) {
	hist := []faultplane.Op{
		mkOp(1, 1, 0, 10, "PUT k v1", "OK#byz"),
	}
	if err := faultplane.CheckLinearizable(hist); err == nil {
		t.Fatal("corrupted result accepted")
	}
	hist = []faultplane.Op{
		mkOp(1, 1, 0, 10, "PUT k v1", "OK"),
		mkOp(1, 2, 20, 30, "GET k", "VALUE v1#byz"),
	}
	if err := faultplane.CheckLinearizable(hist); err == nil {
		t.Fatal("corrupted read result accepted")
	}
}

func TestCheckLinearizableLostUpdate(t *testing.T) {
	hist := []faultplane.Op{
		mkOp(1, 1, 0, 10, "PUT k v1", "OK"),
		mkOp(2, 1, 20, 30, "DEL k", "NOTFOUND"), // after the PUT responded, DEL must find it
	}
	if err := faultplane.CheckLinearizable(hist); err == nil {
		t.Fatal("lost update accepted")
	}
}
