// Package faultplane is a composable, seed-reproducible fault-injection
// layer for both runtimes: the deterministic simulator (internal/simnet)
// consults an Injector at every transmission, the wall-clock runtime
// (internal/realnet) at every Send. A Plan describes per-link message drop,
// duplication, delay jitter (which reorders deliveries), payload corruption,
// symmetric and asymmetric partitions with scheduled heal, and crash/restart
// schedules; an Injector samples it with a seeded generator so a failing
// schedule reproduces exactly from its seed.
//
// The package also hosts the Byzantine replica harnesses (see byzantine.go)
// and the linearizability checker for observed client histories (see
// history.go). Together they exercise the paper's hardest robustness claims:
// the trusted voter masking up to f wrong replies (Section III-D) and the
// trusted-counter defense against equivocation in the Hybster substrate.
package faultplane

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
)

// Wildcard matches any node in a LinkFault endpoint. It aliases msg.NoNode:
// no real traffic ever carries it as a source or destination.
const Wildcard = msg.NoNode

// Decision is the fate of one message delivery.
type Decision struct {
	// Drop discards the message entirely.
	Drop bool

	// Delay postpones delivery by this much. In the simulator the delay is
	// applied after the per-link FIFO point, so a delayed message can be
	// overtaken by later traffic on the same link — this is how reordering
	// is injected.
	Delay time.Duration

	// Duplicate delivers a second, undelayed copy of the message.
	Duplicate bool

	// Corrupt flips a payload byte before delivery. Transport MACs and
	// secure-channel records catch the mutation, so corruption manifests as
	// loss plus a detection counter, never as forged acceptance.
	Corrupt bool
}

// Judge decides the fate of message deliveries. Both runtimes accept one.
type Judge interface {
	Judge(now time.Duration, from, to msg.NodeID, kind msg.Kind) Decision
}

// LinkFault injects probabilistic faults on matching links during a window.
type LinkFault struct {
	// From and To select the link; Wildcard matches any node.
	From, To msg.NodeID

	// Start and End bound the active window [Start, End). A zero End means
	// the fault never expires.
	Start, End time.Duration

	// DropP, DupP and CorruptP are per-message probabilities.
	DropP, DupP, CorruptP float64

	// Jitter adds a uniform extra delay in [0, Jitter) to every matching
	// message, reordering deliveries.
	Jitter time.Duration
}

func (lf *LinkFault) matches(now time.Duration, from, to msg.NodeID) bool {
	if now < lf.Start || (lf.End > 0 && now >= lf.End) {
		return false
	}
	if lf.From != Wildcard && lf.From != from {
		return false
	}
	if lf.To != Wildcard && lf.To != to {
		return false
	}
	return true
}

// Partition blocks traffic between two node sets during a window.
type Partition struct {
	// Start and Heal bound the partition [Start, Heal). A zero Heal means
	// the partition never heals.
	Start, Heal time.Duration

	// A and B are the two sides. Traffic A→B is blocked; B→A is also
	// blocked unless OneWay is set.
	A, B []msg.NodeID

	// OneWay makes the partition asymmetric: A can still hear B.
	OneWay bool
}

func containsNode(set []msg.NodeID, id msg.NodeID) bool {
	for _, n := range set {
		if n == id {
			return true
		}
	}
	return false
}

func (p *Partition) blocks(now time.Duration, from, to msg.NodeID) bool {
	if now < p.Start || (p.Heal > 0 && now >= p.Heal) {
		return false
	}
	if containsNode(p.A, from) && containsNode(p.B, to) {
		return true
	}
	if !p.OneWay && containsNode(p.B, from) && containsNode(p.A, to) {
		return true
	}
	return false
}

// CrashEvent schedules a whole-node crash and optional restart.
type CrashEvent struct {
	Node msg.NodeID
	At   time.Duration
	// RestartAt restores the node; zero means it stays down.
	RestartAt time.Duration
}

// Plan is a complete fault schedule.
type Plan struct {
	Links      []LinkFault
	Partitions []Partition
	Crashes    []CrashEvent
}

// End returns the instant after which the plan injects nothing anymore
// (unhealed partitions and unexpiring link faults make it zero: the plan
// never quiesces).
func (p Plan) End() time.Duration {
	var end time.Duration
	for i := range p.Links {
		if p.Links[i].End == 0 {
			return 0
		}
		if p.Links[i].End > end {
			end = p.Links[i].End
		}
	}
	for i := range p.Partitions {
		if p.Partitions[i].Heal == 0 {
			return 0
		}
		if p.Partitions[i].Heal > end {
			end = p.Partitions[i].Heal
		}
	}
	for i := range p.Crashes {
		if p.Crashes[i].RestartAt == 0 {
			return 0
		}
		if p.Crashes[i].RestartAt > end {
			end = p.Crashes[i].RestartAt
		}
	}
	return end
}

// String renders the schedule for failure messages, so a reproduced seed can
// be checked against the schedule it drew.
func (p Plan) String() string {
	var b strings.Builder
	for i := range p.Links {
		lf := &p.Links[i]
		fmt.Fprintf(&b, "link %d->%d [%v,%v) drop=%.2f dup=%.2f corrupt=%.2f jitter=%v; ",
			lf.From, lf.To, lf.Start, lf.End, lf.DropP, lf.DupP, lf.CorruptP, lf.Jitter)
	}
	for i := range p.Partitions {
		pt := &p.Partitions[i]
		dir := "<->"
		if pt.OneWay {
			dir = "-x>"
		}
		fmt.Fprintf(&b, "partition %v%s%v [%v,%v); ", pt.A, dir, pt.B, pt.Start, pt.Heal)
	}
	for i := range p.Crashes {
		ce := &p.Crashes[i]
		fmt.Fprintf(&b, "crash %d @%v restart @%v; ", ce.Node, ce.At, ce.RestartAt)
	}
	if b.Len() == 0 {
		return "no faults"
	}
	return strings.TrimSuffix(b.String(), "; ")
}

// Injector samples a Plan with a seeded generator. It is safe for concurrent
// use (realnet judges from many goroutines); under the single-threaded
// simulator the lock is uncontended and decisions are deterministic because
// transmissions happen in a deterministic order.
type Injector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	plan Plan
}

var _ Judge = (*Injector)(nil)

// NewInjector creates an injector over plan with its own seeded generator.
func NewInjector(seed int64, plan Plan) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed ^ 0x66a1a1bc)), plan: plan}
}

// Plan returns the schedule the injector samples.
func (in *Injector) Plan() Plan { return in.plan }

// Judge implements Judge.
func (in *Injector) Judge(now time.Duration, from, to msg.NodeID, kind msg.Kind) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d Decision
	for i := range in.plan.Partitions {
		if in.plan.Partitions[i].blocks(now, from, to) {
			return Decision{Drop: true}
		}
	}
	for i := range in.plan.Links {
		lf := &in.plan.Links[i]
		if !lf.matches(now, from, to) {
			continue
		}
		if lf.DropP > 0 && in.rng.Float64() < lf.DropP {
			d.Drop = true
		}
		if lf.DupP > 0 && in.rng.Float64() < lf.DupP {
			d.Duplicate = true
		}
		if lf.CorruptP > 0 && in.rng.Float64() < lf.CorruptP {
			d.Corrupt = true
		}
		if lf.Jitter > 0 {
			d.Delay += time.Duration(in.rng.Int63n(int64(lf.Jitter)))
		}
	}
	if d.Drop {
		return Decision{Drop: true}
	}
	return d
}

// CloneEnvelope deep-copies an envelope so an injected duplicate never
// shares payload memory with the original delivery.
func CloneEnvelope(e *msg.Envelope) *msg.Envelope {
	c := &msg.Envelope{From: e.From, To: e.To, Kind: e.Kind}
	if e.Body != nil {
		c.Body = append([]byte(nil), e.Body...)
	}
	if e.MAC != nil {
		c.MAC = append([]byte(nil), e.MAC...)
	}
	return c
}

// CorruptCopy returns a copy of e with one payload byte flipped. The flip is
// deterministic so simulations stay reproducible. Receivers detect it: MACed
// envelopes fail transport verification, secure-channel records fail AEAD
// opening — corruption degrades to counted loss, never forged acceptance.
func CorruptCopy(e *msg.Envelope) *msg.Envelope {
	c := CloneEnvelope(e)
	switch {
	case len(c.Body) > 0:
		c.Body[len(c.Body)-1] ^= 0x80
	case len(c.MAC) > 0:
		c.MAC[0] ^= 0x80
	}
	return c
}

// CrashRestorer is the runtime surface crash schedules drive. Both
// *simnet.Network and *realnet.Router satisfy it.
type CrashRestorer interface {
	Crash(msg.NodeID)
	Restore(msg.NodeID)
}

// Scheduler schedules a function at a runtime instant (*simnet.Network.At).
type Scheduler interface {
	At(time.Duration, func())
}

// ScheduleCrashes registers a plan's crash/restart events with a scheduler.
// Under the simulator, pass the network as both arguments.
func ScheduleCrashes(s Scheduler, cr CrashRestorer, plan Plan) {
	for _, ce := range plan.Crashes {
		ev := ce
		s.At(ev.At, func() { cr.Crash(ev.Node) })
		if ev.RestartAt > 0 {
			s.At(ev.RestartAt, func() { cr.Restore(ev.Node) })
		}
	}
}

// RandomPlan derives a fault schedule from a seed: a few transient link
// faults among the given nodes, possibly a partition (symmetric or one-way)
// and a crash/restart of one replica. Every fault ends before quiesce, so
// liveness checks run against a clean network afterwards. The same seed
// always draws the same plan.
func RandomPlan(seed int64, replicas, clients []msg.NodeID, quiesce time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	all := append(append([]msg.NodeID(nil), replicas...), clients...)
	pick := func(set []msg.NodeID) msg.NodeID { return set[rng.Intn(len(set))] }
	window := func() (time.Duration, time.Duration) {
		start := time.Duration(rng.Int63n(int64(quiesce / 2)))
		end := start + time.Duration(rng.Int63n(int64(quiesce/4))) + quiesce/20
		if end > quiesce {
			end = quiesce
		}
		return start, end
	}

	var p Plan
	nLinks := 2 + rng.Intn(3)
	for i := 0; i < nLinks; i++ {
		from, to := msg.NodeID(Wildcard), pick(all)
		if rng.Float64() < 0.5 {
			from = pick(all)
		}
		start, end := window()
		p.Links = append(p.Links, LinkFault{
			From: from, To: to, Start: start, End: end,
			DropP:    rng.Float64() * 0.3,
			DupP:     rng.Float64() * 0.2,
			CorruptP: rng.Float64() * 0.15,
			Jitter:   time.Duration(rng.Int63n(int64(20 * time.Millisecond))),
		})
	}
	if rng.Float64() < 0.5 {
		victim := pick(replicas)
		var rest []msg.NodeID
		for _, id := range replicas {
			if id != victim {
				rest = append(rest, id)
			}
		}
		start, heal := window()
		p.Partitions = append(p.Partitions, Partition{
			Start: start, Heal: heal,
			A: []msg.NodeID{victim}, B: rest,
			OneWay: rng.Float64() < 0.5,
		})
	}
	if rng.Float64() < 0.5 {
		at := time.Duration(rng.Int63n(int64(quiesce / 3)))
		restart := at + time.Duration(rng.Int63n(int64(quiesce/3))) + quiesce/20
		if restart > quiesce {
			restart = quiesce
		}
		p.Crashes = append(p.Crashes, CrashEvent{Node: pick(replicas), At: at, RestartAt: restart})
	}
	return p
}
