package faultplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op is one completed client operation as observed at the client: the
// invocation/response window, the operation bytes and the result the client
// accepted. The chaos suite collects these through legacyclient's Observe
// hook and checks them for linearizability against the store protocol.
type Op struct {
	Client          uint64
	Seq             uint64
	Invoke, Respond time.Duration
	Operation       []byte
	Result          []byte
}

// History is a concurrency-safe collector of completed operations. Its
// Observe method matches legacyclient.Config.Observe.
type History struct {
	mu  sync.Mutex
	ops []Op
}

// Observe records one completed operation, copying the byte slices.
func (h *History) Observe(client, seq uint64, op []byte, read bool, invoked, responded time.Duration, result []byte) {
	_ = read
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ops = append(h.ops, Op{
		Client:    client,
		Seq:       seq,
		Invoke:    invoked,
		Respond:   responded,
		Operation: append([]byte(nil), op...),
		Result:    append([]byte(nil), result...),
	})
}

// Ops returns a copy of the recorded history.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Len returns the number of recorded operations.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// keyOp is one operation projected onto a single key of the store protocol.
type keyOp struct {
	invoke, respond time.Duration
	verb            byte // 'G'et, 'P'ut, 'D'el
	value           string
	result          string
	client          uint64
	seq             uint64
}

// parseStoreOp projects an operation onto (key, keyOp) following the
// app/store text protocol. Operations the store would reject are skipped
// (ok=false): they never touch state and their error reply carries no
// ordering information.
func parseStoreOp(op Op) (key string, ko keyOp, ok bool) {
	fields := strings.Fields(string(op.Operation))
	ko = keyOp{invoke: op.Invoke, respond: op.Respond, result: string(op.Result),
		client: op.Client, seq: op.Seq}
	switch {
	case len(fields) == 2 && fields[0] == "GET":
		ko.verb = 'G'
	case len(fields) == 3 && fields[0] == "PUT":
		ko.verb, ko.value = 'P', fields[2]
	case len(fields) == 2 && fields[0] == "DEL":
		ko.verb = 'D'
	default:
		return "", keyOp{}, false
	}
	return fields[1], ko, true
}

// maxLinOps bounds the per-key search (op sets are encoded as uint64 masks).
const maxLinOps = 63

// CheckLinearizable verifies that ops is a linearizable history of the store
// protocol, checking each key independently (operations on distinct keys
// commute; per-key registers compose). It returns nil if a valid
// linearization exists for every key, or an error naming the first
// unlinearizable key.
//
// The search follows Wing & Gong: an operation may be linearized next only
// if no unlinearized operation responded before it was invoked; visited
// (operation-set, register-state) pairs are memoized.
func CheckLinearizable(ops []Op) error {
	byKey := make(map[string][]keyOp)
	for _, op := range ops {
		key, ko, ok := parseStoreOp(op)
		if !ok {
			continue
		}
		byKey[key] = append(byKey[key], ko)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := checkKey(k, byKey[k]); err != nil {
			return err
		}
	}
	return nil
}

func checkKey(key string, kops []keyOp) error {
	if len(kops) > maxLinOps {
		return fmt.Errorf("faultplane: key %q has %d ops, checker bound is %d", key, len(kops), maxLinOps)
	}
	// Register states: 0 = absent, i+1 = i-th distinct written value.
	values := []string{}
	valueIdx := map[string]int{}
	for _, ko := range kops {
		if ko.verb == 'P' {
			if _, ok := valueIdx[ko.value]; !ok {
				valueIdx[ko.value] = len(values) + 1
				values = append(values, ko.value)
			}
		}
	}
	nStates := len(values) + 1

	// apply linearizes ko against register state s, returning the next state
	// and whether the observed result is consistent.
	apply := func(s int, ko *keyOp) (int, bool) {
		switch ko.verb {
		case 'G':
			want := "NOTFOUND"
			if s > 0 {
				want = "VALUE " + values[s-1]
			}
			return s, ko.result == want
		case 'P':
			return valueIdx[ko.value], ko.result == "OK"
		default: // 'D'
			want := "OK"
			if s == 0 {
				want = "NOTFOUND"
			}
			return 0, ko.result == want
		}
	}

	full := uint64(1)<<len(kops) - 1
	visited := make(map[uint64]bool)
	var dfs func(mask uint64, state int) bool
	dfs = func(mask uint64, state int) bool {
		if mask == full {
			return true
		}
		code := mask*uint64(nStates) + uint64(state)
		if visited[code] {
			return false
		}
		visited[code] = true
		// An op is eligible next iff no other unlinearized op responded
		// before it was invoked.
		minRespond := time.Duration(1<<63 - 1)
		for i := range kops {
			if mask&(1<<i) == 0 && kops[i].respond < minRespond {
				minRespond = kops[i].respond
			}
		}
		for i := range kops {
			if mask&(1<<i) != 0 || kops[i].invoke > minRespond {
				continue
			}
			next, ok := apply(state, &kops[i])
			if !ok {
				continue
			}
			if dfs(mask|1<<i, next) {
				return true
			}
		}
		return false
	}
	if !dfs(0, 0) {
		return fmt.Errorf("faultplane: history of key %q is not linearizable (%d ops, e.g. client %d seq %d %c -> %q)",
			key, len(kops), kops[0].client, kops[0].seq, kops[0].verb, kops[0].result)
	}
	return nil
}
