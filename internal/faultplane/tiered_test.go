package faultplane

import (
	"strings"
	"testing"
	"time"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

// top builds one annotated operation over the store text protocol.
func top(client, seq uint64, invoke, respond int, op, result string) TierOp {
	return TierOp{Op: Op{
		Client: client, Seq: seq,
		Invoke: ms(invoke), Respond: ms(respond),
		Operation: []byte(op), Result: []byte(result),
	}}
}

// TestCheckTieredConfirmedSpeculation is the steady-state case: fast-tier
// writes answered speculatively, ratified by identical durable results, read
// back by a durable-tier client.
func TestCheckTieredConfirmedSpeculation(t *testing.T) {
	w := top(1, 1, 0, 10, "PUT k v1", "OK")
	w.Fast, w.Speculative, w.Confirmed = true, true, true
	w.ConfirmResult = []byte("OK")
	r := top(2, 1, 20, 30, "GET k", "VALUE v1")
	if err := CheckTiered([]TierOp{w, r}); err != nil {
		t.Fatalf("confirmed speculation rejected: %v", err)
	}
}

// TestCheckTieredRetractionContract: a retracted answer must be attributed
// and repaired; missing either is a violation regardless of the data.
func TestCheckTieredRetractionContract(t *testing.T) {
	base := top(1, 1, 0, 10, "PUT k v1", "OK")
	base.Fast, base.Speculative, base.Retracted = true, true, true

	unattributed := base
	unattributed.Repaired, unattributed.RepairResult = true, []byte("OK")
	unattributed.RepairTime = ms(50)
	if err := CheckTiered([]TierOp{unattributed}); err == nil ||
		!strings.Contains(err.Error(), "without attribution") {
		t.Fatalf("unattributed retraction accepted: %v", err)
	}

	unrepaired := base
	unrepaired.Attribution = "speculation for slot 4 lost in view change to view 1"
	if err := CheckTiered([]TierOp{unrepaired}); err == nil ||
		!strings.Contains(err.Error(), "never repaired") {
		t.Fatalf("unrepaired retraction accepted: %v", err)
	}
}

// TestCheckTieredRatification: confirming a speculation whose durable result
// differs from the answer the client completed on is a violation — the Troxy
// was obliged to retract instead.
func TestCheckTieredRatification(t *testing.T) {
	r := top(1, 1, 0, 10, "GET k", "VALUE stale")
	r.Fast, r.Speculative, r.Confirmed = true, true, true
	r.ConfirmResult = []byte("VALUE fresh")
	if err := CheckTiered([]TierOp{r}); err == nil ||
		!strings.Contains(err.Error(), "without ratifying") {
		t.Fatalf("unratified confirmation accepted: %v", err)
	}
}

// TestCheckTieredRepairReplacesRetractedOp: a retracted operation is judged
// at its repair outcome, not dropped. The speculative GET answer here is
// inconsistent with every linearization; only the durable repair (observed
// after the concurrent PUT committed) makes the history check out — and a
// later read that depends on the retracted-then-repaired write must still be
// explainable.
func TestCheckTieredRepairReplacesRetractedOp(t *testing.T) {
	w := top(1, 1, 0, 60, "PUT k v2", "OK")
	g := top(2, 1, 5, 10, "GET k", "VALUE bogus")
	g.Fast, g.Speculative, g.Retracted, g.Repaired = true, true, true, true
	g.Attribution = "speculation for slot 3 lost in view change to view 1"
	g.RepairResult, g.RepairTime = []byte("VALUE v2"), ms(80)
	r2 := top(3, 1, 90, 100, "GET k", "VALUE v2")
	if err := CheckTiered([]TierOp{w, g, r2}); err != nil {
		t.Fatalf("repaired retraction rejected: %v", err)
	}

	// Negative control: the same history is NOT linearizable at the
	// speculative answer — if the checker ever judged the withdrawn result
	// instead of the repair, it would have to fail exactly like this.
	g.Retracted, g.Repaired = false, false
	g.Attribution = ""
	if err := CheckTiered([]TierOp{w, g, r2}); err == nil ||
		!strings.Contains(err.Error(), "merged two-tier history") {
		t.Fatalf("bogus un-retracted speculation accepted: %v", err)
	}
}

// TestTieredHistoryLifecycle drives the collector through the client-side
// event order (spec before completion, retract and repair after) and checks
// the merged annotations.
func TestTieredHistoryLifecycle(t *testing.T) {
	h := &TieredHistory{}
	obs := h.ObserveFunc(true)

	// Op (1,1): speculative answer, completion, then durable confirmation.
	h.ObserveTier("spec", 1, 1, []byte("OK"), ms(10))
	obs(1, 1, []byte("PUT k v1"), false, ms(0), ms(10), []byte("OK"))
	h.ObserveTier("confirm", 1, 1, []byte("OK"), ms(40))

	// Op (1,2): speculative answer, completion, retraction, repair.
	h.ObserveTier("spec", 1, 2, []byte("OK"), ms(50))
	obs(1, 2, []byte("PUT k v2"), false, ms(45), ms(50), []byte("OK"))
	h.ObserveTier("retract", 1, 2, []byte("slot 7 lost in view change"), ms(60))
	h.ObserveTier("confirm", 1, 2, []byte("OK"), ms(90))

	ops := h.TierOps()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops, want 2", len(ops))
	}
	first, second := ops[0], ops[1]
	if !first.Speculative || !first.Confirmed || first.Retracted ||
		string(first.ConfirmResult) != "OK" {
		t.Fatalf("confirmed op annotations wrong: %+v", first)
	}
	if !second.Speculative || !second.Retracted || !second.Repaired ||
		second.Attribution != "slot 7 lost in view change" ||
		string(second.RepairResult) != "OK" || second.RepairTime != ms(90) {
		t.Fatalf("retracted op annotations wrong: %+v", second)
	}
	if specs, retracted := h.Speculated(); specs != 2 || retracted != 1 {
		t.Fatalf("Speculated() = (%d, %d), want (2, 1)", specs, retracted)
	}
	if err := CheckTiered(ops); err != nil {
		t.Fatalf("lifecycle history rejected: %v", err)
	}
}
