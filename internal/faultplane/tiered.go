package faultplane

import (
	"bytes"
	"fmt"
	"sync"
	"time"
)

// Two-tier linearizability checking for tunable commit levels.
//
// A client on the fast (crash-commit) tier completes operations on
// speculative answers backed by f+1 PREPARE-round counter certificates. The
// durable tier later confirms each answer, or — when the speculation loses a
// view change — retracts it and repairs the client with the durable outcome.
// The checker enforces the contract between the tiers:
//
//   - Every retraction must be explicit (attributed) and repaired, or the
//     client was left with a withdrawn answer and no authoritative one.
//   - Ratification: a confirmed speculation's durable result must equal the
//     speculative answer byte-for-byte — if the tiers disagreed, the Troxy
//     was obliged to retract, not confirm.
//   - The merged history — fast- and durable-tier clients together, with
//     every retracted operation replaced by its repair outcome — must be
//     linearizable at the speculative response times. Replacing — not
//     dropping — retracted operations is essential: a retracted write whose
//     durable retry commits still shapes every later read, so removing it
//     would falsely blame those reads. Checking one tier's operations in
//     isolation would be unsound (durable reads legitimately observe
//     fast-tier writes absent from the projection) or vacuous (dropping
//     reads, or widening response windows to durable settlement, can never
//     fail if the merged check passes); the merged check at speculative
//     times is the strictest sound statement.

// TierOp is one completed operation annotated with its commit-tier outcome.
type TierOp struct {
	Op

	// Fast marks an operation issued on the crash-commit tier.
	Fast bool

	// Speculative marks an operation completed on a speculative answer
	// (StatusSpeculative) rather than a durable one.
	Speculative bool

	// Retracted marks a speculative answer that was explicitly withdrawn;
	// Attribution carries the reason the Troxy reported.
	Retracted   bool
	Attribution string

	// Repaired marks a retracted operation that was settled by a durable
	// reply; RepairResult and RepairTime are the authoritative outcome.
	Repaired     bool
	RepairResult []byte
	RepairTime   time.Duration

	// Confirmed marks a speculative answer the durable tier confirmed;
	// ConfirmResult is the durable result it ratified.
	Confirmed     bool
	ConfirmResult []byte
}

// tierEvents accumulates per-operation lifecycle events, which can arrive
// before or after the operation's own completion record.
type tierEvents struct {
	speculative   bool
	retracted     bool
	attribution   string
	confirmed     bool
	confirmResult []byte
	repaired      bool
	repairResult  []byte
	repairTime    time.Duration
}

type tierKey struct {
	client uint64
	seq    uint64
}

// TieredHistory collects completed operations together with their
// speculative-tier lifecycle. Wire ObserveFunc(fast) to a machine's Observe
// hook and ObserveTier to its ObserveTier hook.
type TieredHistory struct {
	mu     sync.Mutex
	ops    []TierOp
	events map[tierKey]*tierEvents
}

func (h *TieredHistory) event(key tierKey) *tierEvents {
	if h.events == nil {
		h.events = make(map[tierKey]*tierEvents)
	}
	ev, ok := h.events[key]
	if !ok {
		ev = &tierEvents{}
		h.events[key] = ev
	}
	return ev
}

// ObserveFunc returns an Observe callback recording completions for clients
// on the given tier.
func (h *TieredHistory) ObserveFunc(fast bool) func(client, seq uint64, op []byte, read bool, invoked, responded time.Duration, result []byte) {
	return func(client, seq uint64, op []byte, read bool, invoked, responded time.Duration, result []byte) {
		_ = read
		h.mu.Lock()
		defer h.mu.Unlock()
		h.ops = append(h.ops, TierOp{
			Op: Op{
				Client:    client,
				Seq:       seq,
				Invoke:    invoked,
				Respond:   responded,
				Operation: append([]byte(nil), op...),
				Result:    append([]byte(nil), result...),
			},
			Fast: fast,
		})
	}
}

// ObserveTier matches legacyclient.Config.ObserveTier.
func (h *TieredHistory) ObserveTier(kind string, client, seq uint64, data []byte, now time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ev := h.event(tierKey{client, seq})
	switch kind {
	case "spec":
		ev.speculative = true
	case "retract":
		ev.retracted = true
		ev.attribution = string(data)
	case "confirm":
		if ev.retracted {
			ev.repaired = true
			ev.repairResult = append([]byte(nil), data...)
			ev.repairTime = now
		} else {
			ev.confirmed = true
			ev.confirmResult = append([]byte(nil), data...)
		}
	}
}

// TierOps returns the recorded operations with their lifecycle events merged
// in, in completion order.
func (h *TieredHistory) TierOps() []TierOp {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]TierOp, len(h.ops))
	copy(out, h.ops)
	for i := range out {
		ev, ok := h.events[tierKey{out[i].Client, out[i].Seq}]
		if !ok {
			continue
		}
		out[i].Speculative = ev.speculative
		out[i].Retracted = ev.retracted
		out[i].Attribution = ev.attribution
		out[i].Confirmed = ev.confirmed
		out[i].ConfirmResult = append([]byte(nil), ev.confirmResult...)
		out[i].Repaired = ev.repaired
		out[i].RepairResult = append([]byte(nil), ev.repairResult...)
		out[i].RepairTime = ev.repairTime
	}
	return out
}

// Len returns the number of recorded operations.
func (h *TieredHistory) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// Speculated reports how many operations completed on speculative answers,
// and how many of those were retracted.
func (h *TieredHistory) Speculated() (specs, retracted int) {
	for _, op := range h.TierOps() {
		if op.Speculative {
			specs++
		}
		if op.Retracted {
			retracted++
		}
	}
	return
}

// CheckTiered verifies the two-tier contract over an annotated history:
//
//	(a) every retracted operation carries a non-empty attribution and was
//	    repaired by a durable outcome;
//	(b) every confirmed speculation was ratified: the durable result equals
//	    the speculative answer the client completed on;
//	(c) the merged history — all clients, with each retracted operation
//	    replaced by its repair outcome — is linearizable at the speculative
//	    response times.
func CheckTiered(ops []TierOp) error {
	merged := make([]Op, 0, len(ops))
	for i := range ops {
		top := &ops[i]
		if top.Retracted {
			if top.Attribution == "" {
				return fmt.Errorf("faultplane: client %d seq %d retracted without attribution",
					top.Client, top.Seq)
			}
			if !top.Repaired {
				return fmt.Errorf("faultplane: client %d seq %d retracted but never repaired (attribution %q)",
					top.Client, top.Seq, top.Attribution)
			}
		} else if top.Confirmed && !bytes.Equal(top.ConfirmResult, top.Result) {
			return fmt.Errorf("faultplane: client %d seq %d confirmed without ratifying: speculative answer %q, durable result %q",
				top.Client, top.Seq, top.Result, top.ConfirmResult)
		}
		op := top.Op
		if top.Retracted {
			// The speculative answer was withdrawn; the durable repair is the
			// operation's authoritative outcome and response time.
			op.Result = top.RepairResult
			op.Respond = top.RepairTime
		}
		merged = append(merged, op)
	}
	if err := CheckLinearizable(merged); err != nil {
		return fmt.Errorf("merged two-tier history (retractions repaired): %w", err)
	}
	return nil
}
