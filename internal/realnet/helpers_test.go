package realnet

import (
	"net"
	"testing"
	"time"
)

func listen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

func dial(t *testing.T, addr string) (net.Conn, error) {
	t.Helper()
	return net.DialTimeout("tcp", addr, 3*time.Second)
}
