package realnet

import (
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/testutil"
)

// TestRouterFaultDropAndHeal injects a total drop fault on the link into
// node 2 with a scheduled end; traffic during the window is lost, traffic
// after it goes through.
func TestRouterFaultDropAndHeal(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	r.SetFault(faultplane.NewInjector(1, faultplane.Plan{
		Links: []faultplane.LinkFault{{
			From: faultplane.Wildcard, To: 2,
			Start: 0, End: 300 * time.Millisecond,
			DropP: 1,
		}},
	}))

	recv := newCollector(3)
	r.Attach(2, recv)
	r.Attach(1, &senderNode{to: 2, n: 3})

	time.Sleep(100 * time.Millisecond)
	if got := recv.envCount(); got != 0 {
		t.Fatalf("delivered %d envelopes through a total drop fault", got)
	}

	time.Sleep(300 * time.Millisecond) // past the fault window
	r.Attach(3, &senderNode{to: 2, n: 3})
	waitCh(t, recv.done, "post-heal delivery")
	if got := recv.envCount(); got != 3 {
		t.Fatalf("envelopes after heal = %d, want 3", got)
	}
}

// TestRouterFaultDuplicateAndDelay checks that duplication doubles delivery
// and that delayed envelopes still arrive.
func TestRouterFaultDuplicateAndDelay(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	r.SetFault(faultplane.NewInjector(1, faultplane.Plan{
		Links: []faultplane.LinkFault{{
			From: faultplane.Wildcard, To: 2,
			DupP:   1,
			Jitter: 10 * time.Millisecond,
		}},
	}))

	recv := newCollector(6)
	r.Attach(2, recv)
	r.Attach(1, &senderNode{to: 2, n: 3})
	waitCh(t, recv.done, "6 envelopes (3 sent, each duplicated)")
}

// TestRouterFaultCorruptIsDetectable checks corruption mutates the payload
// without losing the message: the collector still receives it, but the body
// differs from the original.
func TestRouterFaultCorruptIsDetectable(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	r.SetFault(faultplane.NewInjector(1, faultplane.Plan{
		Links: []faultplane.LinkFault{{
			From: faultplane.Wildcard, To: 2,
			CorruptP: 1,
		}},
	}))

	recv := newCollector(1)
	r.Attach(2, recv)
	r.Attach(1, &senderNode{to: 2, n: 1})
	waitCh(t, recv.done, "corrupted envelope")

	recv.mu.Lock()
	defer recv.mu.Unlock()
	e := recv.envs[0]
	if _, err := e.Open(); err == nil {
		t.Fatal("corrupted envelope still decodes cleanly")
	}
}

// TestBridgeLatePeerBackoff starts a bridge whose peer is not listening yet:
// the dial-failure path must keep the queued frames and retry with backoff,
// so that once the peer comes up every frame sent before and after is
// delivered, with zero drops.
func TestBridgeLatePeerBackoff(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Reserve an address for the late peer.
	l, err := listen(t)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ra := NewRouter()
	defer ra.Close()
	ba := NewBridge(ra, map[msg.NodeID]string{2: addr})
	defer ba.Close()
	ra.Attach(1, &senderNode{to: 2, n: 3}) // sent while the peer is down

	time.Sleep(150 * time.Millisecond) // let at least one dial fail

	rb := NewRouter()
	defer rb.Close()
	recv := newCollector(4)
	rb.Attach(2, recv)
	bb := NewBridge(rb, nil)
	defer bb.Close()
	if err := bb.Listen(addr); err != nil {
		t.Fatalf("late peer listen on %s: %v", addr, err)
	}

	// Subsequent traffic rides the same queue behind the early frames; all
	// four arriving proves the early frames survived the dial failures and
	// the queue never stalled.
	ra.Attach(3, &senderNode{to: 2, n: 1})
	waitCh(t, recv.done, "frames from before and after the peer came up")

	if got := recv.envCount(); got != 4 {
		t.Fatalf("envelopes = %d, want 4", got)
	}
	for a, n := range ba.Drops() {
		if n != 0 {
			t.Errorf("bridge dropped %d frames to %s; want 0", n, a)
		}
	}
}
