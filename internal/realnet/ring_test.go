package realnet

import (
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/testutil"
	"github.com/troxy-bft/troxy/internal/wire"
)

func TestSendRingOverflowAndClose(t *testing.T) {
	r := newSendRing()
	// No drainer attached: fill to capacity, then overflow.
	for i := 0; i < ringCapacity; i++ {
		w := wire.GetWriter()
		w.U32(uint32(i))
		if !r.push(w) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	w := wire.GetWriter()
	if r.push(w) {
		t.Fatal("push beyond capacity accepted")
	}
	if got := r.drops.Load(); got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
	if got := r.pendingLen(); got != ringCapacity {
		t.Fatalf("pendingLen = %d, want %d", got, ringCapacity)
	}
	r.close()
	if r.pendingLen() != 0 {
		t.Fatal("close did not release pending frames")
	}
	// Pushes after close are rejected without counting as drops.
	if r.push(wire.GetWriter()) {
		t.Fatal("push after close accepted")
	}
	if got := r.drops.Load(); got != 1 {
		t.Fatalf("drops after close = %d, want 1", got)
	}
}

func TestSendRingTakeDoubleBuffers(t *testing.T) {
	r := newSendRing()
	for i := 0; i < 3; i++ {
		r.push(wire.GetWriter())
	}
	batch := r.take()
	if len(batch) != 3 {
		t.Fatalf("take = %d frames, want 3", len(batch))
	}
	releaseBatch(batch)
	if got := r.take(); len(got) != 0 {
		t.Fatalf("second take = %d frames, want 0", len(got))
	}
	r.close()
}

// bridgePair wires router A (hosting node 1) to router B (hosting node 2)
// over a TCP bridge using the given transport on the sending side.
func bridgePair(t *testing.T, transport Transport) (ra, rb *Router, ba *Bridge) {
	t.Helper()
	ra, rb = NewRouter(), NewRouter()
	t.Cleanup(ra.Close)
	t.Cleanup(rb.Close)

	bb := NewBridge(rb, nil)
	if err := bb.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bb.Close)

	ba = NewBridge(ra, map[msg.NodeID]string{2: bb.Addr().String()})
	ba.SetTransport(transport)
	t.Cleanup(ba.Close)
	return ra, rb, ba
}

func TestRingTransportFlushStats(t *testing.T) {
	testutil.CheckGoroutines(t)
	ra, rb, ba := bridgePair(t, TransportRing)

	const sent = 32
	recv := newCollector(sent)
	rb.Attach(2, recv)
	ra.Attach(1, &senderNode{to: 2, n: sent})
	waitCh(t, recv.done, "ring-bridged envelopes")

	stats := ba.FlushStats()
	var total RingStats
	for _, s := range stats {
		total.Flushes += s.Flushes
		total.Frames += s.Frames
	}
	if total.Frames != sent {
		t.Errorf("flushed frames = %d, want %d", total.Frames, sent)
	}
	if total.Flushes == 0 || total.Flushes > sent {
		t.Errorf("flushes = %d, want 1..%d", total.Flushes, sent)
	}
	if total.FramesPerFlush() < 1 {
		t.Errorf("frames per flush = %.2f, want >= 1", total.FramesPerFlush())
	}
	for addr, n := range ba.Drops() {
		if n != 0 {
			t.Errorf("ring dropped %d frames to %s; want 0", n, addr)
		}
	}
}

func TestBufferedTransportStillWorks(t *testing.T) {
	testutil.CheckGoroutines(t)
	ra, rb, ba := bridgePair(t, TransportBuffered)

	recv := newCollector(5)
	rb.Attach(2, recv)
	ra.Attach(1, &senderNode{to: 2, n: 5})
	waitCh(t, recv.done, "buffered-bridged envelopes")

	// The buffered transport reports no ring activity.
	for addr, s := range ba.FlushStats() {
		if s.Flushes != 0 || s.Frames != 0 {
			t.Errorf("buffered peer %s reports ring stats %+v", addr, s)
		}
	}
}

func TestRingLoneFrameFlushesOnDeadline(t *testing.T) {
	// A lone frame must go out promptly (one straggler yield at most), not
	// wait for more traffic: this is the flush-on-idle latency pathology the
	// ring fixes.
	testutil.CheckGoroutines(t)
	ra, rb, _ := bridgePair(t, TransportRing)

	recv := newCollector(1)
	rb.Attach(2, recv)
	start := time.Now()
	ra.Attach(1, &senderNode{to: 2, n: 1})
	waitCh(t, recv.done, "lone frame")
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("lone frame took %v to flush", d)
	}
}

// TestRingFaultplanePerMessage pins the layering contract the coalescing
// optimization must not break: the fault judge runs in Router.Send, above
// the ring, so a drop plan applies to individual messages even though the
// survivors leave in coalesced vectored writes.
func TestRingFaultplanePerMessage(t *testing.T) {
	testutil.CheckGoroutines(t)
	ra, rb, _ := bridgePair(t, TransportRing)
	ra.SetFault(faultplane.NewInjector(7, faultplane.Plan{
		Links: []faultplane.LinkFault{{
			From: faultplane.Wildcard, To: 2,
			Start: 0, End: 200 * time.Millisecond,
			DropP: 1,
		}},
	}))

	recv := newCollector(3)
	rb.Attach(2, recv)
	ra.Attach(1, &senderNode{to: 2, n: 3}) // all inside the drop window

	time.Sleep(100 * time.Millisecond)
	if got := recv.envCount(); got != 0 {
		t.Fatalf("delivered %d envelopes through a total drop fault on the ring transport", got)
	}

	time.Sleep(150 * time.Millisecond) // past the fault window
	ra.Attach(3, &senderNode{to: 2, n: 3})
	waitCh(t, recv.done, "post-window delivery over the ring")
	if got := recv.envCount(); got != 3 {
		t.Fatalf("envelopes after the window = %d, want 3 (per-message drops)", got)
	}
}

func TestGatewayRingCounters(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()

	// The "replica" echoes channel payloads straight back.
	echo := newCollector(0)
	echo.onEnv = func(env node.Env, e *msg.Envelope) {
		m, err := e.Open()
		if err != nil {
			return
		}
		cd := m.(*msg.ChannelData)
		env.Send(msg.Seal(env.Self(), e.From, &msg.ChannelData{ConnID: cd.ConnID, Payload: cd.Payload}))
	}
	r.Attach(0, echo)

	g := NewGateway(r, 0, 1000)
	l, err := listen(t)
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(l)
	defer g.Close()

	conn, err := dial(t, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const echoes = 8
	for i := 0; i < echoes; i++ {
		if err := wire.WriteFrame(conn, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := wire.ReadFrame(conn); err != nil {
			t.Fatal(err)
		}
	}
	stats := g.FlushStats()
	if stats.Frames != echoes {
		t.Errorf("gateway egress frames = %d, want %d", stats.Frames, echoes)
	}
	if stats.Flushes == 0 || stats.Flushes > echoes {
		t.Errorf("gateway egress flushes = %d, want 1..%d", stats.Flushes, echoes)
	}
	if got := g.SendFailures(); got != 0 {
		t.Errorf("send failures = %d, want 0", got)
	}
}
