package realnet

import (
	"sync"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/testutil"
	"github.com/troxy-bft/troxy/internal/wire"
)

// collector records envelopes and timer fires; it is the realnet analogue of
// the simnet test nodes.
type collector struct {
	mu     sync.Mutex
	envs   []*msg.Envelope
	timers []node.TimerKey
	onEnv  func(env node.Env, e *msg.Envelope)
	onTmr  func(env node.Env, key node.TimerKey)
	onGo   func(env node.Env)
	done   chan struct{}
	want   int
}

func newCollector(want int) *collector {
	return &collector{done: make(chan struct{}, 16), want: want}
}

func (c *collector) OnStart(env node.Env) {
	if c.onGo != nil {
		c.onGo(env)
	}
}

func (c *collector) OnEnvelope(env node.Env, e *msg.Envelope) {
	c.mu.Lock()
	c.envs = append(c.envs, e)
	n := len(c.envs)
	c.mu.Unlock()
	if c.onEnv != nil {
		c.onEnv(env, e)
	}
	if n == c.want {
		c.done <- struct{}{}
	}
}

func (c *collector) OnTimer(env node.Env, key node.TimerKey) {
	c.mu.Lock()
	c.timers = append(c.timers, key)
	c.mu.Unlock()
	if c.onTmr != nil {
		c.onTmr(env, key)
	}
	c.done <- struct{}{}
}

func (c *collector) envCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.envs)
}

func waitCh(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestLocalDelivery(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	recv := newCollector(3)
	r.Attach(2, recv)
	r.Attach(1, &senderNode{to: 2, n: 3})
	waitCh(t, recv.done, "3 envelopes")
	if recv.envCount() != 3 {
		t.Errorf("envelopes = %d", recv.envCount())
	}
}

type senderNode struct {
	to msg.NodeID
	n  int
}

func (s *senderNode) OnStart(env node.Env) {
	for i := 0; i < s.n; i++ {
		env.Send(msg.Seal(env.Self(), s.to, &msg.ChannelData{ConnID: uint64(i)}))
	}
}
func (s *senderNode) OnEnvelope(node.Env, *msg.Envelope) {}
func (s *senderNode) OnTimer(node.Env, node.TimerKey)    {}

func TestTimers(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	c := newCollector(0)
	c.onGo = func(env node.Env) {
		env.SetTimer(30*time.Millisecond, node.TimerKey{Kind: "replaced"})
		env.SetTimer(10*time.Millisecond, node.TimerKey{Kind: "replaced"})
		env.SetTimer(5*time.Millisecond, node.TimerKey{Kind: "canceled"})
		env.CancelTimer(node.TimerKey{Kind: "canceled"})
	}
	r.Attach(1, c)
	waitCh(t, c.done, "timer")
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.timers) != 1 || c.timers[0].Kind != "replaced" {
		t.Errorf("timers = %v", c.timers)
	}
}

func TestCrashAndRestore(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	recv := newCollector(1)
	r.Attach(2, recv)
	r.Crash(2)
	r.Attach(1, &senderNode{to: 2, n: 1})
	time.Sleep(50 * time.Millisecond)
	if recv.envCount() != 0 {
		t.Fatal("crashed node received a message")
	}
	r.Restore(2)
	r.Attach(3, &senderNode{to: 2, n: 1})
	waitCh(t, recv.done, "post-restore delivery")
}

func TestCloseIsIdempotentAndStopsNodes(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	recv := newCollector(1)
	r.Attach(1, recv)
	r.Close()
	r.Close()
	// Sends after close are dropped, not panics.
	r.Send(msg.Seal(5, 1, &msg.ChannelData{}))
}

func TestBridgeBetweenRouters(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Two processes: router A hosts node 1, router B hosts node 2.
	ra, rb := NewRouter(), NewRouter()
	defer ra.Close()
	defer rb.Close()

	bb := NewBridge(rb, nil)
	if err := bb.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer bb.Close()

	ba := NewBridge(ra, map[msg.NodeID]string{2: bb.Addr().String()})
	defer ba.Close()

	recv := newCollector(5)
	rb.Attach(2, recv)
	ra.Attach(1, &senderNode{to: 2, n: 5})
	waitCh(t, recv.done, "bridged envelopes")

	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, e := range recv.envs {
		if e.From != 1 || e.To != 2 || e.Kind != msg.KindChannelData {
			t.Errorf("envelope %d = %+v", i, e)
		}
	}
}

func TestBridgeDiscardsGarbage(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()
	b := NewBridge(r, nil)
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	conn, err := dial(t, b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A garbage frame must not crash the bridge.
	if err := wire.WriteFrame(conn, []byte("not an envelope")); err != nil {
		t.Fatal(err)
	}
	// A valid envelope after garbage still goes through.
	recv := newCollector(1)
	r.Attach(7, recv)
	env := msg.Seal(9, 7, &msg.ChannelData{Payload: []byte("ok")})
	if err := wire.WriteFrame(conn, msg.EncodeEnvelope(env)); err != nil {
		t.Fatal(err)
	}
	waitCh(t, recv.done, "envelope after garbage")
}

func TestGatewayRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	r := NewRouter()
	defer r.Close()

	// The "replica" echoes channel payloads back, reversed.
	echo := newCollector(0)
	echo.onEnv = func(env node.Env, e *msg.Envelope) {
		m, err := e.Open()
		if err != nil {
			return
		}
		cd := m.(*msg.ChannelData)
		rev := make([]byte, len(cd.Payload))
		for i, b := range cd.Payload {
			rev[len(rev)-1-i] = b
		}
		env.Send(msg.Seal(env.Self(), e.From, &msg.ChannelData{ConnID: cd.ConnID, Payload: rev}))
	}
	r.Attach(0, echo)

	g := NewGateway(r, 0, 1000)
	l, err := listen(t)
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(l)
	defer g.Close()

	conn, err := dial(t, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, sent := range []string{"abc", "hello-gateway"} {
		if err := wire.WriteFrame(conn, []byte(sent)); err != nil {
			t.Fatal(err)
		}
		got, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		want := reverse(sent)
		if string(got) != want {
			t.Errorf("echo = %q, want %q", got, want)
		}
	}
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}
