package realnet

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Ring transport tuning. A woken drainer flushes on a size trigger
// (ringFlushFrames) or after a deadline of one scheduler quantum: below the
// trigger it yields the processor once so a burst's producers can finish
// enqueueing, then flushes whatever is there. A lone frame on a quiet link
// therefore goes out after ~one scheduler pass instead of waiting for an
// idle poll the way the buffered transport's flush-on-idle did. (A
// timer-based grace deadline was measured here first and rejected: the
// shortest expressible sleep costs tens of microseconds of timer latency and
// made the ring lose the closed-loop p50 comparison the transport experiment
// gates on, while the single yield both wins it and coalesces better.)
const (
	// ringCapacity bounds the per-peer ring; a full ring drops the frame,
	// matching the buffered transport's queue semantics (the network is
	// unreliable by assumption). Overflow is counted, never silent.
	ringCapacity = 4096

	// ringFlushFrames is the size trigger: a ring holding this many frames is
	// flushed immediately, with no straggler yield.
	ringFlushFrames = 64
)

// RingStats are the per-peer flush counters of a ring transport, exported
// next to the drop counters so operators can see the coalescing factor
// (FramesPerFlush) the writev path actually achieves.
type RingStats struct {
	Flushes uint64 // vectored writes issued
	Frames  uint64 // frames carried by those writes
}

// FramesPerFlush is the achieved coalescing factor.
func (s RingStats) FramesPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Frames) / float64(s.Flushes)
}

// sendRing is a bounded multi-producer ring of pooled, pre-encoded frames.
// Senders encode an envelope (frame header included) into a pooled
// wire.Writer and push the writer itself; the drainer swaps the whole slot
// slice out under the lock, turns the writers' buffers into one net.Buffers
// iovec, and hands every writer back to the pool after the writev. The two
// slot slices double-buffer so steady state allocates nothing.
type sendRing struct {
	mu     sync.Mutex
	closed bool
	slots  []*wire.Writer // pending frames
	spare  []*wire.Writer // drained slice, handed back for reuse

	wake chan struct{} // cap 1: nudges the drainer when the first frame lands

	drops   atomic.Uint64
	flushes atomic.Uint64
	frames  atomic.Uint64
}

func newSendRing() *sendRing {
	return &sendRing{
		slots: make([]*wire.Writer, 0, ringCapacity),
		spare: make([]*wire.Writer, 0, ringCapacity),
		wake:  make(chan struct{}, 1),
	}
}

// push hands an encoded frame (a pooled writer) to the ring. On overflow or
// after close the writer is returned to the pool and the frame is dropped
// (counted). It reports whether the frame was accepted.
//
//troxy:hotpath
func (r *sendRing) push(w *wire.Writer) bool {
	r.mu.Lock()
	if r.closed || len(r.slots) >= ringCapacity {
		closed := r.closed
		r.mu.Unlock()
		wire.PutWriter(w)
		if !closed {
			r.drops.Add(1)
		}
		return false
	}
	r.slots = append(r.slots, w) //lint:allow allocfree bounded by the capacity check above; the ring arrays are allocated once at construction
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default: // drainer already signalled
	}
	return true
}

// take swaps out every pending frame. The returned slice belongs to the
// caller until the next take (it becomes the spare on the call after).
//
//troxy:hotpath
func (r *sendRing) take() []*wire.Writer {
	r.mu.Lock()
	batch := r.slots
	r.slots = r.spare[:0]
	r.spare = batch
	r.mu.Unlock()
	return batch
}

// pendingLen reports how many frames wait in the ring.
func (r *sendRing) pendingLen() int {
	r.mu.Lock()
	n := len(r.slots)
	r.mu.Unlock()
	return n
}

// accumulate lets a just-woken drainer gather a burst's stragglers: below
// the size trigger it yields the processor once so producers mid-burst can
// finish enqueueing, then returns for an immediate flush. A lone frame costs
// one scheduler quantum, not a timer sleep.
//
//troxy:hotpath
func (r *sendRing) accumulate() {
	if r.pendingLen() >= ringFlushFrames {
		return
	}
	runtime.Gosched()
}

// close marks the ring closed. Frames still in slots are released; frames
// pushed afterwards are rejected.
func (r *sendRing) close() {
	r.mu.Lock()
	r.closed = true
	batch := r.slots
	r.slots = nil
	r.spare = nil
	r.mu.Unlock()
	for _, w := range batch {
		wire.PutWriter(w)
	}
}

// release returns a drained batch's writers to the pool.
//
//troxy:hotpath
func releaseBatch(batch []*wire.Writer) {
	for _, w := range batch {
		wire.PutWriter(w)
	}
}

// flushBatch writes a drained batch to conn as one vectored write. iov is
// the caller's reusable iovec backing array; WriteTo consumes a separate
// slice header over it, so the array survives for the next flush. On
// platforms with writev support the whole ring goes out in one syscall.
//
//troxy:hotpath
func flushBatch(conn net.Conn, iov [][]byte, batch []*wire.Writer) ([][]byte, error) {
	iov = iov[:0]
	for _, w := range batch {
		iov = append(iov, w.Bytes()) //lint:allow allocfree appends into the caller-reused iovec backing array; steady state never grows
	}
	bufs := net.Buffers(iov)
	_, err := bufs.WriteTo(conn)
	return iov, err
}
