// Package realnet is the real-time runtime for the protocol state machines
// of internal/node: every node runs on its own goroutine with an unbounded
// FIFO mailbox, timers are wall-clock timers, and Charge calls are no-ops
// (real CPUs burn real cycles). It backs the deployable library: in-process
// clusters for tests and examples, and TCP bridges plus a legacy-client
// gateway for multi-process deployments (cmd/troxy-replica).
package realnet

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
)

// Router delivers envelopes between attached nodes and, when a remote sender
// is configured, to nodes hosted by other processes.
type Router struct {
	start time.Time

	mu      sync.Mutex
	nodes   map[msg.NodeID]*realNode
	fault   faultplane.Judge
	remote  func(*msg.Envelope)
	logOut  io.Writer
	crashed map[msg.NodeID]bool
	closed  bool
	seed    int64

	wg sync.WaitGroup
}

// NewRouter creates an empty router.
func NewRouter() *Router {
	return &Router{
		start:   time.Now(),
		nodes:   make(map[msg.NodeID]*realNode),
		crashed: make(map[msg.NodeID]bool),
		seed:    time.Now().UnixNano(),
	}
}

// SetLogOutput directs node debug logs to w (nil disables, the default).
func (r *Router) SetLogOutput(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.logOut = w
}

// SetRemoteSender installs the fallback used for envelopes addressed to
// nodes not attached locally (e.g. a TCP bridge).
func (r *Router) SetRemoteSender(send func(*msg.Envelope)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remote = send
}

type mailboxItem struct {
	env *msg.Envelope
	key node.TimerKey
	gen uint64
	tmr bool
}

type realNode struct {
	id      msg.NodeID
	handler node.Handler
	router  *Router

	mu     sync.Mutex
	queue  []mailboxItem
	wake   chan struct{}
	closed bool

	timerMu  sync.Mutex
	timerGen map[node.TimerKey]uint64
	timers   map[node.TimerKey]*time.Timer

	rng *rand.Rand
}

// Attach registers a handler and starts its goroutine. OnStart runs on that
// goroutine before any delivery.
func (r *Router) Attach(id msg.NodeID, h node.Handler) {
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		panic(fmt.Sprintf("realnet: duplicate node %d", id))
	}
	n := &realNode{
		id:       id,
		handler:  h,
		router:   r,
		wake:     make(chan struct{}, 1),
		timerGen: make(map[node.TimerKey]uint64),
		timers:   make(map[node.TimerKey]*time.Timer),
		rng:      rand.New(rand.NewSource(r.seed + int64(id)*7919)),
	}
	r.nodes[id] = n
	r.wg.Add(1)
	r.mu.Unlock()

	go n.run()
}

// Detach removes a node, stopping its goroutine. Pending messages to it are
// dropped. It models a full replica crash in tests.
func (r *Router) Detach(id msg.NodeID) {
	r.mu.Lock()
	n := r.nodes[id]
	delete(r.nodes, id)
	r.mu.Unlock()
	if n != nil {
		n.stop()
	}
}

// Crash marks a node crashed: deliveries to it are dropped but its state is
// retained; Restore resumes delivery.
func (r *Router) Crash(id msg.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashed[id] = true
}

// Restore reverses Crash.
func (r *Router) Restore(id msg.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.crashed, id)
}

// SetFault installs a fault judge consulted on every Send (nil disables).
// The judge sees wall-clock time since the router started; its lock makes it
// safe under the router's concurrency.
func (r *Router) SetFault(j faultplane.Judge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fault = j
}

// Send routes an envelope to a local node or through the remote sender.
// Unroutable envelopes are dropped silently (the network is asynchronous and
// unreliable; protocols own their retransmissions).
func (r *Router) Send(e *msg.Envelope) {
	r.mu.Lock()
	fault := r.fault
	blocked := r.closed || r.crashed[e.To]
	r.mu.Unlock()
	if blocked {
		return
	}

	if fault != nil {
		d := fault.Judge(time.Since(r.start), e.From, e.To, e.Kind)
		if d.Drop {
			return
		}
		if d.Corrupt {
			e = faultplane.CorruptCopy(e)
		}
		if d.Duplicate {
			r.deliver(faultplane.CloneEnvelope(e))
		}
		if d.Delay > 0 {
			// Deliver later without judging again; deliver re-checks
			// closed/crashed at fire time.
			delayed := e
			time.AfterFunc(d.Delay, func() { r.deliver(delayed) })
			return
		}
	}
	r.deliver(e)
}

func (r *Router) deliver(e *msg.Envelope) {
	r.mu.Lock()
	if r.closed || r.crashed[e.To] {
		r.mu.Unlock()
		return
	}
	n, ok := r.nodes[e.To]
	remote := r.remote
	r.mu.Unlock()

	if ok {
		n.enqueue(mailboxItem{env: e})
		return
	}
	if remote != nil {
		remote(e)
	}
}

// Close stops all node goroutines and waits for them to exit.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	nodes := make([]*realNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.nodes = make(map[msg.NodeID]*realNode)
	r.mu.Unlock()

	for _, n := range nodes {
		n.stop()
	}
	r.wg.Wait()
}

func (n *realNode) enqueue(item mailboxItem) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.queue = append(n.queue, item)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

func (n *realNode) stop() {
	n.mu.Lock()
	alreadyClosed := n.closed
	n.closed = true
	n.mu.Unlock()

	n.timerMu.Lock()
	for _, t := range n.timers {
		t.Stop()
	}
	n.timers = make(map[node.TimerKey]*time.Timer)
	n.timerMu.Unlock()

	if !alreadyClosed {
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
}

func (n *realNode) run() {
	defer n.router.wg.Done()
	env := &realEnv{node: n}
	n.handler.OnStart(env)
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.closed {
			n.mu.Unlock()
			<-n.wake
			n.mu.Lock()
		}
		if n.closed && len(n.queue) == 0 {
			n.mu.Unlock()
			return
		}
		item := n.queue[0]
		n.queue = n.queue[1:]
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}

		if item.tmr {
			n.timerMu.Lock()
			live := n.timerGen[item.key] == item.gen
			if live {
				delete(n.timerGen, item.key)
				delete(n.timers, item.key)
			}
			n.timerMu.Unlock()
			if live {
				n.handler.OnTimer(env, item.key)
			}
			continue
		}
		n.handler.OnEnvelope(env, item.env)
	}
}

type realEnv struct {
	node *realNode
}

var _ node.Env = (*realEnv)(nil)

func (e *realEnv) Self() msg.NodeID { return e.node.id }

func (e *realEnv) Now() time.Duration { return time.Since(e.node.router.start) }

func (e *realEnv) Send(env *msg.Envelope) {
	if env.From != e.node.id {
		panic(fmt.Sprintf("realnet: node %d sending as %d", e.node.id, env.From))
	}
	e.node.router.Send(env)
}

func (e *realEnv) SetTimer(after time.Duration, key node.TimerKey) {
	n := e.node
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	if t, ok := n.timers[key]; ok {
		t.Stop()
	}
	n.timerGen[key]++
	gen := n.timerGen[key]
	n.timers[key] = time.AfterFunc(after, func() {
		n.enqueue(mailboxItem{tmr: true, key: key, gen: gen})
	})
}

func (e *realEnv) CancelTimer(key node.TimerKey) {
	n := e.node
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	if t, ok := n.timers[key]; ok {
		t.Stop()
		delete(n.timers, key)
	}
	n.timerGen[key]++
}

func (e *realEnv) Rand() *rand.Rand { return e.node.rng }

func (e *realEnv) Charge(node.Profile, node.ChargeKind, int) {}

func (e *realEnv) Logf(format string, args ...any) {
	r := e.node.router
	r.mu.Lock()
	w := r.logOut
	r.mu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, "%12s node=%d "+format+"\n",
		append([]any{e.Now().Round(time.Microsecond), e.node.id}, args...)...)
}
