package realnet

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Transport selects the egress path of a Bridge or Gateway.
type Transport int

const (
	// TransportRing is the specialized transport: senders enqueue pooled
	// pre-encoded frames into a bounded per-peer ring; a drainer goroutine
	// flushes the whole ring in one vectored write, on a size trigger or
	// after yielding one scheduler quantum to stragglers. Ingress reads are
	// chunked to match: one syscall and one allocation consume a whole
	// coalesced burst. Encoding allocates nothing in steady state.
	TransportRing Transport = iota

	// TransportBuffered is the legacy path: one encode allocation per frame,
	// a channel per peer, and a bufio.Writer flushed when the queue
	// momentarily drains (flush-on-idle). Kept selectable so the benchmark
	// matrix can measure the ring against it.
	TransportBuffered
)

// Bridge connects a Router to peer processes over TCP. Envelopes addressed
// to non-local nodes are framed and sent over a persistent connection to the
// peer process hosting the destination node; incoming frames are injected
// into the local router.
//
// The address book maps node IDs to "host:port" listen addresses. Multiple
// node IDs may map to the same address (one process hosting several nodes).
//
// Fault injection happens in Router.Send, above this layer: the fault judge
// sees every envelope individually before it is encoded into a ring or
// queue, so drop/corrupt/jitter plans keep per-message granularity no matter
// how many frames a flush coalesces.
type Bridge struct {
	router    *Router
	transport Transport

	mu       sync.Mutex
	addrs    map[msg.NodeID]string
	conns    map[string]*bridgeConn
	inbound  map[net.Conn]struct{}
	listener net.Listener
	closed   bool

	wg sync.WaitGroup
}

// bridgeQueueLen bounds the per-peer outbound queue of the buffered
// transport; a full queue drops the envelope (the network is unreliable by
// assumption).
const bridgeQueueLen = 4096

// bridgeBufSize is the bufio buffer on each buffered-transport connection.
const bridgeBufSize = 64 << 10

// Dial backoff bounds: a failed dial is retried with jittered exponential
// backoff while the frames that triggered it wait in the ring or queue,
// instead of being dropped silently. The ring bounds memory; only overflow
// drops frames, and those are counted.
const (
	bridgeBackoffMin = 25 * time.Millisecond
	bridgeBackoffMax = 2 * time.Second
)

// bridgeConn is one outbound peer connection. Exactly one of out (buffered
// transport) or ring (ring transport) is non-nil; a dedicated goroutine owns
// the socket either way.
type bridgeConn struct {
	mu     sync.Mutex
	closed bool
	out    chan []byte   // buffered transport
	ring   *sendRing     // ring transport
	done   chan struct{} // closed with the conn; interrupts dial backoff

	// drops counts frames dropped on queue overflow by the buffered
	// transport (ring overflow is counted in the ring itself); exposed per
	// peer through Bridge.Drops like Gateway.SendFailures.
	drops atomic.Uint64
}

func (bc *bridgeConn) enqueue(frame []byte) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.closed {
		return
	}
	select {
	case bc.out <- frame:
	default: // queue full: drop, but keep count
		bc.drops.Add(1)
	}
}

func (bc *bridgeConn) close() {
	bc.mu.Lock()
	wasClosed := bc.closed
	bc.closed = true
	bc.mu.Unlock()
	if wasClosed {
		return
	}
	if bc.out != nil {
		close(bc.out)
	}
	if bc.ring != nil {
		bc.ring.close()
	}
	close(bc.done)
}

// sleepOrDone waits for d or until done closes; it reports whether the
// caller should keep going.
func sleepOrDone(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

func (bc *bridgeConn) sleep(d time.Duration) bool { return sleepOrDone(d, bc.done) }

// dial establishes the peer connection with jittered exponential backoff,
// keeping queued frames while the peer is unreachable. It returns nil when
// the bridge closed first.
func (bc *bridgeConn) dial(addr string, rng *rand.Rand) net.Conn {
	backoff := time.Duration(0)
	for {
		c, err := net.DialTimeout("tcp", addr, 3*time.Second)
		if err == nil {
			return c
		}
		if backoff == 0 {
			backoff = bridgeBackoffMin
		} else if backoff < bridgeBackoffMax {
			backoff *= 2
			if backoff > bridgeBackoffMax {
				backoff = bridgeBackoffMax
			}
		}
		wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff)/2+1))
		if !bc.sleep(wait) {
			return nil // bridge closed while the peer was unreachable
		}
	}
}

// writeLoop is the buffered transport's writer: it drains the outbound queue
// onto a lazily dialed connection, flushing the buffered writer only when no
// more frames are immediately available (flush-on-idle write coalescing).
func (bc *bridgeConn) writeLoop(addr string) {
	var conn net.Conn
	var bw *bufio.Writer
	fail := func() {
		conn.Close()
		conn, bw = nil, nil
	}
	defer func() {
		if conn != nil {
			//lint:allow senderr final teardown flush: the bridge is shutting down and has no caller left to surface the error to; undelivered frames are covered by the protocol's retransmission
			bw.Flush()
			conn.Close()
		}
	}()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for frame := range bc.out {
		if conn == nil {
			if conn = bc.dial(addr, rng); conn == nil {
				return
			}
			bw = bufio.NewWriterSize(conn, bridgeBufSize)
		}
		if err := wire.WriteFrame(bw, frame); err != nil {
			fail()
			continue
		}
	drain:
		for {
			select {
			case more, ok := <-bc.out:
				if !ok {
					return // deferred flush+close
				}
				if err := wire.WriteFrame(bw, more); err != nil {
					fail()
					break drain
				}
			default:
				break drain
			}
		}
		if conn != nil {
			if err := bw.Flush(); err != nil {
				fail()
			}
		}
	}
}

// drainLoop is the ring transport's writer: woken when the first frame of a
// burst lands, it yields one scheduler quantum so the burst's producers can
// finish (unless the size trigger is already met), swaps the whole ring out,
// and pushes it to the socket in one vectored write. Frames survive dial backoff
// in the batch; a write error costs the in-flight batch (the network is
// unreliable by assumption) and forces a redial.
func (bc *bridgeConn) drainLoop(addr string) {
	var conn net.Conn
	var iov [][]byte
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-bc.done:
			// Closing released the ring's frames; nothing left to flush.
			return
		case <-bc.ring.wake:
		}
		bc.ring.accumulate()
		for {
			batch := bc.ring.take()
			if len(batch) == 0 {
				break
			}
			if conn == nil {
				if conn = bc.dial(addr, rng); conn == nil {
					releaseBatch(batch)
					return
				}
			}
			var err error
			iov, err = flushBatch(conn, iov, batch)
			bc.ring.flushes.Add(1)
			bc.ring.frames.Add(uint64(len(batch)))
			releaseBatch(batch)
			if err != nil {
				conn.Close()
				conn = nil
			}
		}
	}
}

// NewBridge creates a bridge for router with the given address book and
// installs itself as the router's remote sender. The ring transport is the
// default; SetTransport switches before traffic starts.
func NewBridge(router *Router, addrs map[msg.NodeID]string) *Bridge {
	b := &Bridge{
		router:  router,
		addrs:   make(map[msg.NodeID]string, len(addrs)),
		conns:   make(map[string]*bridgeConn),
		inbound: make(map[net.Conn]struct{}),
	}
	for id, a := range addrs {
		b.addrs[id] = a
	}
	router.SetRemoteSender(b.send)
	return b
}

// SetTransport selects the egress path. Call before the first send; peers
// already connected keep their transport.
func (b *Bridge) SetTransport(t Transport) {
	b.mu.Lock()
	b.transport = t
	b.mu.Unlock()
}

// Listen starts accepting peer connections on addr. Incoming envelopes are
// injected into the local router.
func (b *Bridge) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("realnet: bridge listen: %w", err)
	}
	b.mu.Lock()
	b.listener = l
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				conn.Close()
				return
			}
			b.inbound[conn] = struct{}{}
			b.mu.Unlock()
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				defer func() {
					b.mu.Lock()
					delete(b.inbound, conn)
					b.mu.Unlock()
				}()
				b.readLoop(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bridge's listen address (nil before Listen).
func (b *Bridge) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.listener == nil {
		return nil
	}
	return b.listener.Addr()
}

// readLoop injects frames from an accepted peer connection into the router.
// On the ring transport ingress is batched to match the peer's vectored
// egress: a ChunkReader consumes a coalesced burst at one read syscall and
// one chunk allocation instead of two syscalls and an allocation per frame.
func (b *Bridge) readLoop(conn net.Conn) {
	defer conn.Close()
	b.mu.Lock()
	transport := b.transport
	b.mu.Unlock()
	readFrame := func() ([]byte, error) { return wire.ReadFrame(conn) }
	if transport == TransportRing {
		cr := wire.NewChunkReader(conn)
		readFrame = cr.ReadFrame
	}
	for {
		frame, err := readFrame()
		if err != nil {
			return
		}
		env, err := msg.DecodeEnvelope(frame)
		if err != nil {
			continue // garbage from an untrusted peer: discard
		}
		b.router.Send(env)
	}
}

// send transmits an envelope to the peer process hosting e.To. Transmission
// failures drop the envelope (the network is unreliable by assumption).
func (b *Bridge) send(e *msg.Envelope) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	addr, ok := b.addrs[e.To]
	if !ok {
		b.mu.Unlock()
		return
	}
	transport := b.transport
	bc, ok := b.conns[addr]
	if !ok {
		bc = &bridgeConn{done: make(chan struct{})}
		if transport == TransportRing {
			bc.ring = newSendRing()
		} else {
			bc.out = make(chan []byte, bridgeQueueLen)
		}
		b.conns[addr] = bc
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			if bc.ring != nil {
				bc.drainLoop(addr)
			} else {
				bc.writeLoop(addr)
			}
		}()
	}
	b.mu.Unlock()

	if bc.ring != nil {
		// Zero-allocation path: the envelope (frame header included) encodes
		// into a pooled writer that travels through the ring to the writev
		// iovec and back to the pool.
		w := wire.GetWriter()
		if err := msg.AppendEnvelopeFrame(w, e); err != nil {
			wire.PutWriter(w)
			bc.ring.drops.Add(1)
			return
		}
		bc.ring.push(w)
		return
	}
	bc.enqueue(msg.EncodeEnvelope(e))
}

// Drops returns, per peer address, how many outbound frames were dropped on
// queue or ring overflow (the peer was unreachable long enough to fill it).
func (b *Bridge) Drops() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.conns))
	for addr, bc := range b.conns {
		n := bc.drops.Load()
		if bc.ring != nil {
			n += bc.ring.drops.Load()
		}
		out[addr] = n
	}
	return out
}

// FlushStats returns, per peer address, the ring transport's flush counters.
// Peers on the buffered transport report zero.
func (b *Bridge) FlushStats() map[string]RingStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]RingStats, len(b.conns))
	for addr, bc := range b.conns {
		if bc.ring != nil {
			out[addr] = RingStats{
				Flushes: bc.ring.flushes.Load(),
				Frames:  bc.ring.frames.Load(),
			}
		} else {
			out[addr] = RingStats{}
		}
	}
	return out
}

// Close shuts the bridge down and waits for its goroutines.
func (b *Bridge) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	l := b.listener
	conns := b.conns
	b.conns = make(map[string]*bridgeConn)
	inbound := make([]net.Conn, 0, len(b.inbound))
	for conn := range b.inbound {
		inbound = append(inbound, conn)
	}
	b.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, bc := range conns {
		bc.close()
	}
	// Tear down accepted peer connections too: their read loops would
	// otherwise keep Close waiting until the remote side hangs up.
	for _, conn := range inbound {
		conn.Close()
	}
	b.wg.Wait()
}

// Gateway bridges raw legacy-client TCP connections into the envelope
// world: each accepted connection is assigned a synthetic client node ID;
// frames read from the socket become ChannelData envelopes to the replica,
// and ChannelData envelopes addressed to the synthetic ID are written back
// to the socket. The replica's untrusted connection handling (Section III-C:
// sockets and worker threads live outside the Troxy) is exactly this.
//
// With the ring transport (default), replies are encoded into pooled frames
// and drained to the client socket by a per-connection goroutine in vectored
// writes, so the router's handler goroutine never blocks on client I/O. The
// buffered transport keeps the legacy blocking write in the handler.
type Gateway struct {
	router    *Router
	replica   msg.NodeID
	transport Transport

	mu     sync.Mutex
	nextID msg.NodeID
	closed bool
	active map[net.Conn]struct{}

	// sendFailures counts replies that could not be written back to a client
	// socket (write error or egress-ring overflow). They used to be dropped
	// silently; now every drop is counted and logged so a misbehaving client
	// or a saturated link is visible.
	sendFailures atomic.Uint64

	// flushes/frames aggregate the per-connection egress rings.
	flushes atomic.Uint64
	frames  atomic.Uint64

	wg       sync.WaitGroup
	listener net.Listener
}

// SendFailures returns how many client-bound frames failed to send.
func (g *Gateway) SendFailures() uint64 { return g.sendFailures.Load() }

// FlushStats returns the aggregated egress-ring flush counters.
func (g *Gateway) FlushStats() RingStats {
	return RingStats{Flushes: g.flushes.Load(), Frames: g.frames.Load()}
}

// NewGateway creates a gateway that forwards client connections to replica,
// assigning synthetic node IDs starting at firstClientID.
func NewGateway(router *Router, replica, firstClientID msg.NodeID) *Gateway {
	return &Gateway{
		router:  router,
		replica: replica,
		nextID:  firstClientID,
		active:  make(map[net.Conn]struct{}),
	}
}

// SetTransport selects the reply egress path. Call before Serve.
func (g *Gateway) SetTransport(t Transport) {
	g.mu.Lock()
	g.transport = t
	g.mu.Unlock()
}

// Serve accepts connections on l until the gateway is closed.
func (g *Gateway) Serve(l net.Listener) {
	g.mu.Lock()
	g.listener = l
	g.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		id := g.nextID
		g.nextID++
		g.active[conn] = struct{}{}
		transport := g.transport
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() {
				g.mu.Lock()
				delete(g.active, conn)
				g.mu.Unlock()
			}()
			g.handle(conn, id, transport)
		}()
	}
}

// gatewayHandler is the per-connection node: it relays ChannelData
// envelopes from the replica back to the client socket — through the egress
// ring when one is attached, directly otherwise.
type gatewayHandler struct {
	conn net.Conn
	ring *sendRing // nil on the buffered transport
	gw   *Gateway
}

func (gatewayHandler) OnStart(node.Env) {}

func (h gatewayHandler) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindChannelData {
		return
	}
	m, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := m.(*msg.ChannelData)
	if !ok {
		return
	}
	if h.ring != nil {
		w := wire.GetWriter()
		if err := wire.AppendFramePayload(w, cd.Payload); err != nil {
			wire.PutWriter(w)
			h.gw.sendFailures.Add(1)
			return
		}
		if !h.ring.push(w) {
			n := h.gw.sendFailures.Add(1)
			env.Logf("realnet: gateway egress ring to %v full (%d dropped total)",
				h.conn.RemoteAddr(), n)
		}
		return
	}
	if err := wire.WriteFrame(h.conn, cd.Payload); err != nil {
		// Usually the client hung up; the read loop will notice and tear the
		// connection node down. Count and log the drop either way.
		n := h.gw.sendFailures.Add(1)
		env.Logf("realnet: gateway send to %v failed (%d dropped total): %v",
			h.conn.RemoteAddr(), n, err)
	}
}

func (gatewayHandler) OnTimer(node.Env, node.TimerKey) {}

var _ node.Handler = gatewayHandler{}

// drainClient flushes a client connection's egress ring until done closes.
// Write errors drop the in-flight batch (counted); the connection's read
// loop notices the broken socket and tears the node down.
func (g *Gateway) drainClient(conn net.Conn, ring *sendRing, done <-chan struct{}) {
	var iov [][]byte
	for {
		select {
		case <-done:
			return
		case <-ring.wake:
		}
		ring.accumulate()
		for {
			batch := ring.take()
			if len(batch) == 0 {
				break
			}
			var err error
			iov, err = flushBatch(conn, iov, batch)
			g.flushes.Add(1)
			g.frames.Add(uint64(len(batch)))
			if err != nil {
				g.sendFailures.Add(uint64(len(batch)))
			}
			releaseBatch(batch)
		}
	}
}

func (g *Gateway) handle(conn net.Conn, id msg.NodeID, transport Transport) {
	defer conn.Close()
	h := gatewayHandler{conn: conn, gw: g}
	if transport == TransportRing {
		ring := newSendRing()
		done := make(chan struct{})
		h.ring = ring
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.drainClient(conn, ring, done)
		}()
		defer func() {
			close(done)
			ring.close()
		}()
	}
	g.router.Attach(id, h)
	defer g.router.Detach(id)

	// Ring ingress mirrors ring egress: batched chunk reads instead of
	// per-frame syscalls and allocations.
	readFrame := func() ([]byte, error) { return wire.ReadFrame(conn) }
	if transport == TransportRing {
		cr := wire.NewChunkReader(conn)
		readFrame = cr.ReadFrame
	}
	for {
		frame, err := readFrame()
		if err != nil {
			return
		}
		g.router.Send(msg.Seal(id, g.replica, &msg.ChannelData{
			ConnID:  uint64(id),
			Payload: frame,
		}))
	}
}

// Close stops the gateway, tearing down active client connections.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	// Snapshot under the lock, close outside it: Close on a wedged conn may
	// block, and accept/teardown paths contend on g.mu.
	conns := make([]net.Conn, 0, len(g.active))
	for conn := range g.active {
		conns = append(conns, conn)
	}
	g.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	if l != nil {
		l.Close()
	}
	g.wg.Wait()
}
