package realnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Bridge connects a Router to peer processes over TCP. Envelopes addressed
// to non-local nodes are framed (wire.WriteFrame) and sent over a persistent
// connection to the peer process hosting the destination node; incoming
// frames are injected into the local router.
//
// The address book maps node IDs to "host:port" listen addresses. Multiple
// node IDs may map to the same address (one process hosting several nodes).
type Bridge struct {
	router *Router

	mu       sync.Mutex
	addrs    map[msg.NodeID]string
	conns    map[string]*bridgeConn
	listener net.Listener
	closed   bool

	wg sync.WaitGroup
}

type bridgeConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewBridge creates a bridge for router with the given address book and
// installs itself as the router's remote sender.
func NewBridge(router *Router, addrs map[msg.NodeID]string) *Bridge {
	b := &Bridge{
		router: router,
		addrs:  make(map[msg.NodeID]string, len(addrs)),
		conns:  make(map[string]*bridgeConn),
	}
	for id, a := range addrs {
		b.addrs[id] = a
	}
	router.SetRemoteSender(b.send)
	return b
}

// Listen starts accepting peer connections on addr. Incoming envelopes are
// injected into the local router.
func (b *Bridge) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("realnet: bridge listen: %w", err)
	}
	b.mu.Lock()
	b.listener = l
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.readLoop(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bridge's listen address (nil before Listen).
func (b *Bridge) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.listener == nil {
		return nil
	}
	return b.listener.Addr()
}

func (b *Bridge) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		env, err := msg.DecodeEnvelope(frame)
		if err != nil {
			continue // garbage from an untrusted peer: discard
		}
		b.router.Send(env)
	}
}

// send transmits an envelope to the peer process hosting e.To. Transmission
// failures drop the envelope (the network is unreliable by assumption).
func (b *Bridge) send(e *msg.Envelope) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	addr, ok := b.addrs[e.To]
	if !ok {
		b.mu.Unlock()
		return
	}
	bc, ok := b.conns[addr]
	if !ok {
		bc = &bridgeConn{}
		b.conns[addr] = bc
	}
	b.mu.Unlock()

	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, 3*time.Second)
		if err != nil {
			return
		}
		bc.conn = conn
	}
	if err := wire.WriteFrame(bc.conn, msg.EncodeEnvelope(e)); err != nil {
		bc.conn.Close()
		bc.conn = nil
	}
}

// Close shuts the bridge down and waits for its goroutines.
func (b *Bridge) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	l := b.listener
	conns := b.conns
	b.conns = make(map[string]*bridgeConn)
	b.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, bc := range conns {
		bc.mu.Lock()
		if bc.conn != nil {
			bc.conn.Close()
			bc.conn = nil
		}
		bc.mu.Unlock()
	}
	b.wg.Wait()
}

// Gateway bridges raw legacy-client TCP connections into the envelope
// world: each accepted connection is assigned a synthetic client node ID;
// frames read from the socket become ChannelData envelopes to the replica,
// and ChannelData envelopes addressed to the synthetic ID are written back
// to the socket. The replica's untrusted connection handling (Section III-C:
// sockets and worker threads live outside the Troxy) is exactly this.
type Gateway struct {
	router  *Router
	replica msg.NodeID

	mu     sync.Mutex
	nextID msg.NodeID
	closed bool
	active map[net.Conn]struct{}

	wg       sync.WaitGroup
	listener net.Listener
}

// NewGateway creates a gateway that forwards client connections to replica,
// assigning synthetic node IDs starting at firstClientID.
func NewGateway(router *Router, replica, firstClientID msg.NodeID) *Gateway {
	return &Gateway{
		router:  router,
		replica: replica,
		nextID:  firstClientID,
		active:  make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until the gateway is closed.
func (g *Gateway) Serve(l net.Listener) {
	g.mu.Lock()
	g.listener = l
	g.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		id := g.nextID
		g.nextID++
		g.active[conn] = struct{}{}
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() {
				g.mu.Lock()
				delete(g.active, conn)
				g.mu.Unlock()
			}()
			g.handle(conn, id)
		}()
	}
}

// gatewayHandler is the per-connection node: it relays ChannelData
// envelopes from the replica back to the client socket.
type gatewayHandler struct {
	conn net.Conn
}

func (gatewayHandler) OnStart(node.Env) {}

func (h gatewayHandler) OnEnvelope(_ node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindChannelData {
		return
	}
	m, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := m.(*msg.ChannelData)
	if !ok {
		return
	}
	// A write failure means the client hung up; the read loop will notice
	// and tear the connection node down.
	_ = wire.WriteFrame(h.conn, cd.Payload)
}

func (gatewayHandler) OnTimer(node.Env, node.TimerKey) {}

var _ node.Handler = gatewayHandler{}

func (g *Gateway) handle(conn net.Conn, id msg.NodeID) {
	defer conn.Close()
	g.router.Attach(id, gatewayHandler{conn: conn})
	defer g.router.Detach(id)

	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		g.router.Send(msg.Seal(id, g.replica, &msg.ChannelData{
			ConnID:  uint64(id),
			Payload: frame,
		}))
	}
}

// Close stops the gateway, tearing down active client connections.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	for conn := range g.active {
		conn.Close()
	}
	g.mu.Unlock()
	if l != nil {
		l.Close()
	}
	g.wg.Wait()
}
