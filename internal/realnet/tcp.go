package realnet

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Bridge connects a Router to peer processes over TCP. Envelopes addressed
// to non-local nodes are framed (wire.WriteFrame) and sent over a persistent
// connection to the peer process hosting the destination node; incoming
// frames are injected into the local router.
//
// The address book maps node IDs to "host:port" listen addresses. Multiple
// node IDs may map to the same address (one process hosting several nodes).
type Bridge struct {
	router *Router

	mu       sync.Mutex
	addrs    map[msg.NodeID]string
	conns    map[string]*bridgeConn
	inbound  map[net.Conn]struct{}
	listener net.Listener
	closed   bool

	wg sync.WaitGroup
}

// bridgeQueueLen bounds the per-peer outbound queue; a full queue drops the
// envelope (the network is unreliable by assumption).
const bridgeQueueLen = 4096

// bridgeBufSize is the bufio buffer on each outbound connection. Frames are
// coalesced into it and flushed only when the queue momentarily drains, so a
// burst (a cut batch's PREPARE plus the commits behind it) goes out in one
// write instead of one syscall per envelope.
const bridgeBufSize = 64 << 10

// Dial backoff bounds: a failed dial is retried with jittered exponential
// backoff while the frame that triggered it (and everything queued behind
// it) waits in the outbound queue, instead of being dropped silently. The
// queue bounds memory; only overflow drops frames, and those are counted.
const (
	bridgeBackoffMin = 25 * time.Millisecond
	bridgeBackoffMax = 2 * time.Second
)

// bridgeConn is one outbound peer connection. Senders enqueue encoded
// frames; a dedicated writer goroutine owns the socket, writes frames
// through a bufio.Writer, and flushes when idle.
type bridgeConn struct {
	mu     sync.Mutex
	closed bool
	out    chan []byte
	done   chan struct{} // closed with the conn; interrupts dial backoff

	// drops counts frames dropped on queue overflow (the peer has been
	// unreachable long enough to fill the queue), exposed per peer through
	// Bridge.Drops like Gateway.SendFailures.
	drops atomic.Uint64
}

func (bc *bridgeConn) enqueue(frame []byte) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.closed {
		return
	}
	select {
	case bc.out <- frame:
	default: // queue full: drop, but keep count
		bc.drops.Add(1)
	}
}

func (bc *bridgeConn) close() {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if !bc.closed {
		bc.closed = true
		close(bc.out)
		close(bc.done)
	}
}

// sleep waits for d or until the connection is torn down; it reports whether
// the writer should keep going.
func (bc *bridgeConn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-bc.done:
		return false
	}
}

// writeLoop drains the outbound queue onto a lazily dialed connection,
// flushing the buffered writer only when no more frames are immediately
// available (flush-on-idle write coalescing).
func (bc *bridgeConn) writeLoop(addr string) {
	var conn net.Conn
	var bw *bufio.Writer
	fail := func() {
		conn.Close()
		conn, bw = nil, nil
	}
	defer func() {
		if conn != nil {
			//lint:allow senderr final teardown flush: the bridge is shutting down and has no caller left to surface the error to; undelivered frames are covered by the protocol's retransmission
			bw.Flush()
			conn.Close()
		}
	}()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := time.Duration(0)
	for frame := range bc.out {
		for conn == nil {
			c, err := net.DialTimeout("tcp", addr, 3*time.Second)
			if err == nil {
				conn = c
				bw = bufio.NewWriterSize(conn, bridgeBufSize)
				backoff = 0
				break
			}
			// Redial with jittered exponential backoff, keeping the frame:
			// the peer may simply not be up yet, and dropping here would
			// silently lose every frame sent before it starts.
			if backoff == 0 {
				backoff = bridgeBackoffMin
			} else if backoff < bridgeBackoffMax {
				backoff *= 2
				if backoff > bridgeBackoffMax {
					backoff = bridgeBackoffMax
				}
			}
			wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff)/2+1))
			if !bc.sleep(wait) {
				return // bridge closed while the peer was unreachable
			}
		}
		if err := wire.WriteFrame(bw, frame); err != nil {
			fail()
			continue
		}
	drain:
		for {
			select {
			case more, ok := <-bc.out:
				if !ok {
					return // deferred flush+close
				}
				if err := wire.WriteFrame(bw, more); err != nil {
					fail()
					break drain
				}
			default:
				break drain
			}
		}
		if conn != nil {
			if err := bw.Flush(); err != nil {
				fail()
			}
		}
	}
}

// NewBridge creates a bridge for router with the given address book and
// installs itself as the router's remote sender.
func NewBridge(router *Router, addrs map[msg.NodeID]string) *Bridge {
	b := &Bridge{
		router:  router,
		addrs:   make(map[msg.NodeID]string, len(addrs)),
		conns:   make(map[string]*bridgeConn),
		inbound: make(map[net.Conn]struct{}),
	}
	for id, a := range addrs {
		b.addrs[id] = a
	}
	router.SetRemoteSender(b.send)
	return b
}

// Listen starts accepting peer connections on addr. Incoming envelopes are
// injected into the local router.
func (b *Bridge) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("realnet: bridge listen: %w", err)
	}
	b.mu.Lock()
	b.listener = l
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				conn.Close()
				return
			}
			b.inbound[conn] = struct{}{}
			b.mu.Unlock()
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				defer func() {
					b.mu.Lock()
					delete(b.inbound, conn)
					b.mu.Unlock()
				}()
				b.readLoop(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bridge's listen address (nil before Listen).
func (b *Bridge) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.listener == nil {
		return nil
	}
	return b.listener.Addr()
}

func (b *Bridge) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		env, err := msg.DecodeEnvelope(frame)
		if err != nil {
			continue // garbage from an untrusted peer: discard
		}
		b.router.Send(env)
	}
}

// send transmits an envelope to the peer process hosting e.To. Transmission
// failures drop the envelope (the network is unreliable by assumption).
func (b *Bridge) send(e *msg.Envelope) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	addr, ok := b.addrs[e.To]
	if !ok {
		b.mu.Unlock()
		return
	}
	bc, ok := b.conns[addr]
	if !ok {
		bc = &bridgeConn{out: make(chan []byte, bridgeQueueLen), done: make(chan struct{})}
		b.conns[addr] = bc
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			bc.writeLoop(addr)
		}()
	}
	b.mu.Unlock()

	bc.enqueue(msg.EncodeEnvelope(e))
}

// Drops returns, per peer address, how many outbound frames were dropped on
// queue overflow (the peer was unreachable long enough to fill the queue).
func (b *Bridge) Drops() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.conns))
	for addr, bc := range b.conns {
		out[addr] = bc.drops.Load()
	}
	return out
}

// Close shuts the bridge down and waits for its goroutines.
func (b *Bridge) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	l := b.listener
	conns := b.conns
	b.conns = make(map[string]*bridgeConn)
	inbound := make([]net.Conn, 0, len(b.inbound))
	for conn := range b.inbound {
		inbound = append(inbound, conn)
	}
	b.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, bc := range conns {
		bc.close()
	}
	// Tear down accepted peer connections too: their read loops would
	// otherwise keep Close waiting until the remote side hangs up.
	for _, conn := range inbound {
		conn.Close()
	}
	b.wg.Wait()
}

// Gateway bridges raw legacy-client TCP connections into the envelope
// world: each accepted connection is assigned a synthetic client node ID;
// frames read from the socket become ChannelData envelopes to the replica,
// and ChannelData envelopes addressed to the synthetic ID are written back
// to the socket. The replica's untrusted connection handling (Section III-C:
// sockets and worker threads live outside the Troxy) is exactly this.
type Gateway struct {
	router  *Router
	replica msg.NodeID

	mu     sync.Mutex
	nextID msg.NodeID
	closed bool
	active map[net.Conn]struct{}

	// sendFailures counts replies that could not be written back to a client
	// socket. They used to be dropped silently; now every drop is counted
	// and logged so a misbehaving client or a saturated link is visible.
	sendFailures atomic.Uint64

	wg       sync.WaitGroup
	listener net.Listener
}

// SendFailures returns how many client-bound frames failed to send.
func (g *Gateway) SendFailures() uint64 { return g.sendFailures.Load() }

// NewGateway creates a gateway that forwards client connections to replica,
// assigning synthetic node IDs starting at firstClientID.
func NewGateway(router *Router, replica, firstClientID msg.NodeID) *Gateway {
	return &Gateway{
		router:  router,
		replica: replica,
		nextID:  firstClientID,
		active:  make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until the gateway is closed.
func (g *Gateway) Serve(l net.Listener) {
	g.mu.Lock()
	g.listener = l
	g.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		id := g.nextID
		g.nextID++
		g.active[conn] = struct{}{}
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() {
				g.mu.Lock()
				delete(g.active, conn)
				g.mu.Unlock()
			}()
			g.handle(conn, id)
		}()
	}
}

// gatewayHandler is the per-connection node: it relays ChannelData
// envelopes from the replica back to the client socket.
type gatewayHandler struct {
	conn net.Conn
	gw   *Gateway
}

func (gatewayHandler) OnStart(node.Env) {}

func (h gatewayHandler) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindChannelData {
		return
	}
	m, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := m.(*msg.ChannelData)
	if !ok {
		return
	}
	if err := wire.WriteFrame(h.conn, cd.Payload); err != nil {
		// Usually the client hung up; the read loop will notice and tear the
		// connection node down. Count and log the drop either way.
		n := h.gw.sendFailures.Add(1)
		env.Logf("realnet: gateway send to %v failed (%d dropped total): %v",
			h.conn.RemoteAddr(), n, err)
	}
}

func (gatewayHandler) OnTimer(node.Env, node.TimerKey) {}

var _ node.Handler = gatewayHandler{}

func (g *Gateway) handle(conn net.Conn, id msg.NodeID) {
	defer conn.Close()
	g.router.Attach(id, gatewayHandler{conn: conn, gw: g})
	defer g.router.Detach(id)

	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		g.router.Send(msg.Seal(id, g.replica, &msg.ChannelData{
			ConnID:  uint64(id),
			Payload: frame,
		}))
	}
}

// Close stops the gateway, tearing down active client connections.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	// Snapshot under the lock, close outside it: Close on a wedged conn may
	// block, and accept/teardown paths contend on g.mu.
	conns := make([]net.Conn, 0, len(g.active))
	for conn := range g.active {
		conns = append(conns, conn)
	}
	g.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	if l != nil {
		l.Close()
	}
	g.wg.Wait()
}
