package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSrc typechecks one in-memory file into a Package ready for Analyze.
func loadSrc(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{}
	path := ModulePath + "/internal/realnet/fixture"
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Fset:  fset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
		Path:  path,
	}
}

func TestAllowAudit(t *testing.T) {
	cases := []struct {
		name     string
		filename string
		src      string
		want     []string // substrings of expected allowaudit diagnostics, in order
	}{
		{
			name:     "valid allow passes",
			filename: "a.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow senderr teardown flush has no caller to report to
}
`,
			want: nil,
		},
		{
			name:     "unknown analyzer name fails",
			filename: "a.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow sendeer teardown flush has no caller to report to
}
`,
			want: []string{`unknown analyzer "sendeer"`},
		},
		{
			name:     "missing reason fails",
			filename: "a.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow senderr
}
`,
			want: []string{"has no reason"},
		},
		{
			name:     "bare allow fails",
			filename: "a.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow
}
`,
			want: []string{"without an analyzer name"},
		},
		{
			name:     "multi-name allow audits each name",
			filename: "a.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow senderr,lockcheck serialized flush; see DESIGN.md
}
`,
			want: nil,
		},
		{
			name:     "multi-name allow with one stale name fails",
			filename: "a.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow senderr,oldcheck serialized flush
}
`,
			want: []string{`unknown analyzer "oldcheck"`},
		},
		{
			name:     "allow in test file is dead",
			filename: "a_test.go",
			src: `package fixture

func f() {
	_ = 1 //lint:allow senderr never reported here anyway
}
`,
			want: []string{"in a test file is dead"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadSrc(t, tc.filename, tc.src)
			diags := Analyze(pkg, nil)
			if len(diags) != len(tc.want) {
				t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(tc.want))
			}
			for i, d := range diags {
				if d.Analyzer != "allowaudit" {
					t.Errorf("diagnostic %d has analyzer %q, want allowaudit", i, d.Analyzer)
				}
				if !strings.Contains(d.Message, tc.want[i]) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, d.Message, tc.want[i])
				}
			}
		})
	}
}

// TestAuditUnsuppressable pins that allowaudit diagnostics cannot themselves
// be silenced with another //lint:allow.
func TestAuditUnsuppressable(t *testing.T) {
	pkg := loadSrc(t, "a.go", `package fixture

func f() {
	//lint:allow allowaudit trying to silence the auditor
	_ = 1 //lint:allow sendeer stale name
}
`)
	diags := Analyze(pkg, nil)
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, `unknown analyzer "sendeer"`) {
		t.Errorf("stale-name diagnostic was suppressed: %v", msgs)
	}
	if !strings.Contains(joined, `unknown analyzer "allowaudit"`) {
		t.Errorf("the allowaudit pseudo-name should itself audit as unknown: %v", msgs)
	}
}

func TestCheckRegistry(t *testing.T) {
	full := func() []*Analyzer {
		var as []*Analyzer
		for name := range KnownAnalyzerNames {
			as = append(as, &Analyzer{Name: name})
		}
		return as
	}

	if err := checkRegistry(full()); err != nil {
		t.Errorf("full registration should pass: %v", err)
	}
	if err := checkRegistry(full()[1:]); err == nil {
		t.Error("missing analyzer should fail registration check")
	}
	if err := checkRegistry(append(full(), &Analyzer{Name: "mystery"})); err == nil {
		t.Error("unknown analyzer should fail registration check")
	}
}
