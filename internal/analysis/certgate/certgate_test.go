package certgate_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/certgate"
)

func TestCertGate(t *testing.T) {
	analysistest.Run(t, certgate.Analyzer,
		"github.com/troxy-bft/troxy/internal/hybster/cgpos",
		"github.com/troxy-bft/troxy/internal/troxy/cgneg",
	)
}
