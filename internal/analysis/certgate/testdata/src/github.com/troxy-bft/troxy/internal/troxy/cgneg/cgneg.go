// Package cgneg holds certgate negative fixtures: handlers that verify
// before touching protocol state, directly or through helpers.
package cgneg

type Reply struct {
	Result []byte
	Tag    []byte
}

type Ping struct{ Seq uint64 }

type badTag struct{}

func (badTag) Error() string { return "bad tag" }

// ErrBadTag marks a failed tag check.
var ErrBadTag error = badTag{}

type Voter struct {
	votes map[uint64]*Reply
	last  *Reply
}

func (v *Voter) verifyTag(m *Reply) bool { return m != nil }

// checkReply verifies on every non-error path; interproc credits it with a
// validates-param summary.
func (v *Voter) checkReply(m *Reply) error {
	if !v.verifyTag(m) {
		return ErrBadTag
	}
	return nil
}

// Direct bool guard.
func (v *Voter) OnReply(m *Reply) {
	if !v.verifyTag(m) {
		return
	}
	v.votes[1] = m
}

// Error-binding guard through a validating helper.
func (v *Voter) HandleReply(m *Reply) {
	if err := v.checkReply(m); err != nil {
		return
	}
	v.votes[2] = m
}

// Non-cert-carrying parameters are not tracked; the verified reply is fine
// on the fallthrough path.
func (v *Voter) OnPing(p *Ping, m *Reply) {
	if !v.verifyTag(m) {
		return
	}
	v.votes[p.Seq] = m
}

// Locals do not outlive the handler; storing there needs no verification.
func (v *Voter) OnReplyLocal(m *Reply) {
	var scratch *Reply
	scratch = m
	_ = scratch
}

// A reviewed allow documents a deliberate deferral.
func (v *Voter) OnReplyDeferred(m *Reply) {
	v.last = m //lint:allow certgate verification happens when the vote is tallied
}

func (v *Voter) applyDigest(m *Reply) []byte { return m.Result }

func (v *Voter) verifyWith(m *Reply, d []byte) bool { return m != nil && d != nil }

// A sink-named helper feeding the verify call itself is part of the check.
func (v *Voter) OnReplyDigest(m *Reply) {
	if !v.verifyWith(m, v.applyDigest(m)) {
		return
	}
	v.votes[6] = m
}

// A copy re-read from state after the seed verified is verified material.
func (v *Voter) HandleTally(m *Reply) {
	if !v.verifyTag(m) {
		return
	}
	v.votes[7] = m
	winner := v.votes[7]
	v.last = winner
}
