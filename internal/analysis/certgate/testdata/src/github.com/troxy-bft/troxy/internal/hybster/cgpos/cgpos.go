// Package cgpos holds certgate positive fixtures: handlers that touch
// protocol state with a cert-carrying message before verification.
package cgpos

type CounterCert struct {
	Value uint64
	MAC   []byte
}

type Prepare struct {
	Seq  uint64
	Cert CounterCert
}

type Core struct {
	pending map[uint64]*Prepare
	last    *Prepare
}

var lastSeen *Prepare

func (c *Core) verifyCert(m *Prepare) bool { return m != nil }

func (c *Core) broadcastPrepare(m *Prepare) {}

// Stored before any verification at all.
func (c *Core) OnPrepareEarly(m *Prepare) {
	c.pending[m.Seq] = m // want "before verification"
	if !c.verifyCert(m) {
		return
	}
}

// Stored on the branch where verification failed.
func (c *Core) OnPrepareWrongBranch(m *Prepare) {
	if !c.verifyCert(m) {
		c.last = m // want "before verification"
		return
	}
	c.last = m
}

// One unverified path into the store: the join kills the fact.
func (c *Core) OnPrepareMerge(m *Prepare, fast bool) {
	if fast {
		if !c.verifyCert(m) {
			return
		}
	}
	c.last = m // want "before verification"
}

// A state-advancing call sees the raw message.
func (c *Core) OnPrepareBroadcast(m *Prepare) {
	c.broadcastPrepare(m) // want "before verification"
	if !c.verifyCert(m) {
		return
	}
}

// Package-level state is protected too.
func (c *Core) OnPrepareGlobal(m *Prepare) {
	lastSeen = m // want "before verification"
}

// Reassignment after the check drops the verified fact.
func (c *Core) OnPrepareReassign(m *Prepare, fresh *Prepare) {
	if !c.verifyCert(m) {
		return
	}
	m = fresh
	c.last = m // want "before verification"
}

// Derived copies of a still-unverified message are tracked too.
func (c *Core) OnPrepareDerived(m *Prepare) {
	stash := m
	c.last = stash // want "before verification"
}
