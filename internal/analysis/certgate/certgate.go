// Package certgate enforces verify-before-use on certificate-carrying
// messages (DESIGN.md §9.6): a Byzantine peer controls every byte of a
// received Prepare/Commit/SpecReply until its counter certificate or HMAC
// tag has been checked, so nothing read from such a message may reach
// protocol state — counter advances, store writes, broadcasts, cache
// inserts — on a path where verification has not succeeded. The paper's
// trust argument (Section IV: the trusted counter certifies each value
// exactly once; Section V: the Troxy voter accepts only tagged replies)
// rests entirely on this ordering; a handler that files a Prepare before
// checking its certificate re-opens the equivocation the counter exists to
// close.
//
// The analyzer runs over the protocol packages (internal/hybster,
// internal/troxy, internal/replica) and inspects every handler entry point
// — a function or method named On<X> or Handle<X> — that takes a
// cert-carrying message parameter. A type is cert-carrying when its struct
// (behind any pointer) declares a field named MAC or suffixed Cert/Tag, or
// nests another cert-carrying struct (StatePrefix carries PreparedEntry
// certificates two levels down). Inside a handler, path-sensitive dataflow
// (internal/analysis/dataflow must-facts) tracks, per path, whether the
// message has passed a successful verification:
//
//   - a call whose callee name contains "verify" (any case) is a base
//     validator: the guarded path — bool result true, or error result nil,
//     including through an `if err := c.verifyPrepare(m); err != nil`
//     binding — establishes the fact for the argument roots;
//   - in-package helpers that verify their argument on every non-failure
//     path are recognized through interproc validates-param summaries, so
//     a handler delegating the check to `func (c *C) admit(m *msg.Prepare)
//     error` is still credited at the admit call site;
//   - any reassignment or mutation of the message kills the fact, and the
//     fact must hold on *every* incoming path (intersection at joins);
//   - calls nested inside a validator's own arguments (computing the
//     digest the certificate is compared against) are part of the check,
//     never a sink;
//   - every tracked value derives from the seeded message parameters, so
//     once all live seeds are verified on a path, derived copies — a reply
//     re-read from the vote table it was filed into — count as verified
//     material; reassigning a seed re-arms the check. Each protocol layer
//     polices its own certificates: the envelope handler needs only the
//     transport MAC check, and the counter certificate inside a Prepare is
//     the OnPrepare handler's obligation, checked separately.
//
// A protected operation with the message (or a value derived from it still
// typed as cert-carrying) on an unverified path is reported: assignments
// into receiver fields or package-level state, and calls to methods whose
// name says they advance/publish protocol state (advance/adopt/apply/
// broadcast/cache/commit/deliver/execute/install/insert/put/record/send/
// settle/store/enqueue/push prefixes).
//
// Known limits, deliberate: values laundered into non-cert-carrying
// locals (`d := m.BatchDigest`) escape tracking — the analyzer polices the
// message object, not every scalar extracted from it; handlers that verify
// by structural comparison instead of a verify-named call (digest equality
// against locally recomputed state) need a reviewed //lint:allow certgate.
package certgate

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
	"github.com/troxy-bft/troxy/internal/analysis/dataflow"
	"github.com/troxy-bft/troxy/internal/analysis/interproc"
)

// Analyzer is the certgate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "certgate",
	Doc:  "certificate-carrying messages must pass verification before reaching protocol state",
	Run:  run,
}

// scopeRoots are the subtrees that consume certified messages.
var scopeRoots = []string{"internal/hybster", "internal/troxy", "internal/replica"}

// handlerRE matches protocol entry points. Post-verification helpers
// (acceptPrepare, applyPrefix) are deliberately out: they run downstream of
// a handler's check and would all be false positives.
var handlerRE = regexp.MustCompile(`^(On|Handle)[A-Z]`)

// sinkRE matches callee names that advance or publish protocol state.
var sinkRE = regexp.MustCompile(`(?i)^(advance|adopt|apply|broadcast|cache|commit|deliver|execute|install|insert|put|record|send|settle|store|enqueue|push)`)

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok {
		return nil
	}
	inScope := false
	for _, root := range scopeRoots {
		if analysis.Under(rel, root) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	g := interproc.Build(pass.Files, pass.TypesInfo, pass.Pkg, nil)
	spec := &interproc.ValidateSpec{Validator: isVerifier}
	g.ComputeValidates(spec)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !handlerRE.MatchString(fd.Name.Name) {
				continue
			}
			checkHandler(pass, g, spec, fd)
		}
	}
	return nil
}

// isVerifier recognizes the base verification vocabulary by name.
func isVerifier(fn *types.Func) bool {
	return strings.Contains(strings.ToLower(fn.Name()), "verify")
}

// checkHandler runs the path-sensitive pass over one handler body.
func checkHandler(pass *analysis.Pass, g *interproc.Graph, spec *interproc.ValidateSpec, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Seed trackedness for every cert-carrying parameter.
	init := dataflow.NewState()
	var seeds []types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isCertCarrying(obj.Type()) {
					init.Add(obj)
					seeds = append(seeds, obj)
				}
			}
		}
	}
	if len(seeds) == 0 {
		return
	}

	// Every tracked value in the handler derives from the seeded messages,
	// so once all live seeds are verified on a path, derived copies (a
	// reply re-read from the vote table it was just filed into) are
	// verified material too; reassigning a seed re-arms the check.
	anyUnverifiedSeed := func(st *dataflow.State) bool {
		for _, s := range seeds {
			if st.Has(s) && !st.Verified(s) {
				return true
			}
		}
		return false
	}

	// Calls nested inside a validator's own arguments (computing the
	// digest the certificate is checked against) are part of the check,
	// not a protocol sink.
	inVerifierArgs := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := interproc.CalleeFunc(info, call)
		if fn == nil || !isVerifier(fn) && len(g.ValidatedArgs(spec, call)) == 0 {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if inner, ok := m.(*ast.CallExpr); ok {
					inVerifierArgs[inner] = true
				}
				return true
			})
		}
		return true
	})

	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}

	h := &dataflow.Hooks{
		Info: info,
		// Trackedness propagates through any call touching the message
		// (Open/clone helpers, type switches on the envelope payload).
		TransferCall: func(call *ast.CallExpr, ci dataflow.CallInfo, st *dataflow.State) bool {
			return ci.ArgTainted || ci.RecvTainted
		},
		Validates: func(call *ast.CallExpr) []types.Object {
			return g.ValidatedArgs(spec, call)
		},
		OnNode: func(n ast.Node, st *dataflow.State, deferred bool) {
			if !anyUnverifiedSeed(st) {
				return
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if !protectedTarget(pass, lhs, recvObj) {
						continue
					}
					// The message may leak through the stored value or
					// through the map/slice key of the target itself;
					// one diagnostic per statement is enough.
					for _, e := range append([]ast.Expr{lhs}, x.Rhs...) {
						if reportUnverified(pass, st, e, "stored into protocol state") {
							return
						}
					}
				}
			case *ast.CallExpr:
				fn := interproc.CalleeFunc(pass.TypesInfo, x)
				if fn == nil || !sinkRE.MatchString(fn.Name()) {
					return
				}
				if isVerifier(fn) || len(g.ValidatedArgs(spec, x)) > 0 || inVerifierArgs[x] {
					return // the check itself is allowed to see the message
				}
				for _, arg := range x.Args {
					if reportUnverified(pass, st, arg, "passed to "+fn.Name()) {
						return
					}
				}
			}
		},
	}
	dataflow.RunFrom(h, fd.Body, init)
}

// protectedTarget reports whether an assignment target is protocol state: a
// selector/index chain rooted at the handler's receiver, or anything rooted
// at a package-level variable. Plain locals never outlive the handler and
// fail both tests.
func protectedTarget(pass *analysis.Pass, lhs ast.Expr, recvObj types.Object) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		return ok && v.Parent() == pass.Pkg.Scope()
	}
	root := interproc.RootObj(pass.TypesInfo, lhs)
	if root == nil {
		return false
	}
	if recvObj != nil && root == recvObj {
		return true
	}
	v, ok := root.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}

// reportUnverified reports the first tracked, still-unverified
// cert-carrying identifier mentioned in e and reports whether it fired.
func reportUnverified(pass *analysis.Pass, st *dataflow.State, e ast.Expr, what string) bool {
	reported := false
	ast.Inspect(e, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !st.Has(obj) || !isCertCarrying(obj.Type()) || st.Verified(obj) {
			return true
		}
		pass.Reportf(e.Pos(),
			"cert-carrying message %s %s before verification succeeds on this path; check its certificate first (every path to this use must pass a verify)",
			id.Name, what)
		reported = true
		return false
	})
	return reported
}

// maxCertDepth bounds the nesting search: a certificate two levels down
// (StatePrefix → PreparedEntry → PrepareCert) still marks the outer
// message, deeper nesting does not occur in the protocol vocabulary.
const maxCertDepth = 2

// isCertCarrying reports whether t is (or points to) a struct carrying
// authentication material: a field named MAC or suffixed Cert/Tag, or a
// nested struct/slice that carries one.
func isCertCarrying(t types.Type) bool {
	return certCarrying(t, 0)
}

func certCarrying(t types.Type, depth int) bool {
	if t == nil || depth > maxCertDepth {
		return false
	}
	for {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				name := f.Name()
				if name == "MAC" || strings.HasSuffix(name, "Cert") || strings.HasSuffix(name, "Tag") {
					return true
				}
				if certCarrying(f.Type(), depth+1) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
}
