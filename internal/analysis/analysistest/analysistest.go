// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// Fixtures live under the calling test's testdata/src/<import-path>/
// directory, GOPATH-style. Because the suite's analyzers classify packages
// by their module-relative import path, fixtures reuse the real module's
// paths (testdata/src/github.com/troxy-bft/troxy/internal/realnet/...):
// the loader never mixes fixture sources with the real packages, so the
// collision is deliberate and harmless.
//
// A line expecting a diagnostic carries a trailing comment of the form
//
//	code() // want "regexp"
//
// (multiple quoted regexps for multiple diagnostics on one line). Run fails
// the test if any expectation goes unmatched or any unexpected diagnostic
// is reported. Fixture imports resolve first against testdata/src (from
// source, recursively), then against the standard library via the build
// cache's export data (one `go list -export` per package, cached).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// Run loads each fixture package below testdata/src and applies a to it,
// comparing diagnostics against the // want expectations in its sources.
func Run(t *testing.T, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*loadedPackage),
	}
	for _, path := range importPaths {
		lp, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		diags := analysis.Analyze(&analysis.Package{
			Fset:  ld.fset,
			Files: lp.files,
			Types: lp.types,
			Info:  lp.info,
			Path:  analysis.NormalizePath(path),
		}, []*analysis.Analyzer{a})
		check(t, ld.fset, lp.files, diags)
	}
}

// expectation is one // want entry: a position plus an unanchored regexp
// the diagnostic message (or "analyzer: message") must match.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pattern, err := unquote(q[1])
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, q[1], err)
						continue
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp: %v", pos, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) || w.rx.MatchString(d.Analyzer+": "+d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// unquote processes the escape sequences of a want pattern (the fixture
// writes `\"` for a quote inside the regexp).
func unquote(s string) (string, error) {
	return strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(s), nil
}

// loader typechecks fixture packages, resolving fixture imports from source
// and everything else from gc export data.
type loadedPackage struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
	err   error
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*loadedPackage
}

func (l *loader) load(path string) (*loadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, lp.err
	}
	lp := &loadedPackage{}
	l.pkgs[path] = lp // break import cycles; a real cycle fails typechecking

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			lp.err = err
			return lp, err
		}
		lp.files = append(lp.files, f)
	}
	if len(lp.files) == 0 {
		lp.err = fmt.Errorf("no Go files in %s", dir)
		return lp, lp.err
	}

	cfg := types.Config{Importer: &fixtureImporter{l}}
	lp.info = analysis.NewInfo()
	lp.types, lp.err = cfg.Check(path, l.fset, lp.files, lp.info)
	return lp, lp.err
}

type fixtureImporter struct{ l *loader }

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(i.l.srcRoot, filepath.FromSlash(path))); err == nil {
		lp, err := i.l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	return stdImport(i.l.fset, path)
}

// Standard-library imports go through the gc importer, fed by export data
// located with `go list -export -deps` (cached process-wide per path).
var stdMu sync.Mutex
var stdExports = map[string]string{}
var stdImporters = map[*token.FileSet]types.Importer{}

func stdImport(fset *token.FileSet, path string) (*types.Package, error) {
	stdMu.Lock()
	imp, ok := stdImporters[fset]
	if !ok {
		imp = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
			stdMu.Lock()
			file, ok := stdExports[p]
			stdMu.Unlock()
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		})
		stdImporters[fset] = imp
	}
	_, have := stdExports[path]
	stdMu.Unlock()

	if !have {
		if err := listExports(path); err != nil {
			return nil, err
		}
	}
	return imp.Import(path)
}

func listExports(path string) error {
	out, err := exec.Command("go", "list", "-e", "-export", "-deps",
		"-json=ImportPath,Export", path).Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	stdMu.Lock()
	defer stdMu.Unlock()
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			stdExports[p.ImportPath] = p.Export
		}
	}
	if _, ok := stdExports[path]; !ok {
		return fmt.Errorf("no export data produced for %q", path)
	}
	return nil
}
