package quorumcheck_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/quorumcheck"
)

func TestQuorumCheck(t *testing.T) {
	analysistest.Run(t, quorumcheck.Analyzer,
		"github.com/troxy-bft/troxy/internal/hybster/qcpos",
		"github.com/troxy-bft/troxy/internal/troxy/qcneg",
	)
}
