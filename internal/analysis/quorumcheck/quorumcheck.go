// Package quorumcheck encodes the paper's threshold arithmetic (Section IV:
// a hybster certificate needs f+1 matching votes out of N = 2f+1 replicas;
// the Troxy voter needs f+1 matching replies): vote counting must compare
// against the canonical quorum helpers, not hand-rolled F/N arithmetic, and
// must use the non-skipping comparison orientation. Gunn et al. (PAPERS.md)
// document how easily hand-written threshold comparisons go wrong — an
// `>`/`>=` mixup silently weakens a safety quorum by one vote, which no test
// with a lucky schedule will catch.
//
// The analyzer runs over the protocol packages (internal/hybster and
// internal/troxy subtrees) and inspects every ordering/equality comparison
// where one side is a *count* — a len(...) expression or a variable whose
// name says it counts votes (match/vot/vouch/ack/repl/count/seen/got/
// valid/agree) — and the other side derives a quorum threshold:
//
//   - count vs. hand-rolled F/N arithmetic (`matching < c.cfg.F+1`,
//     `votes > 2*cfg.F`): flagged — use the canonical helper so the
//     threshold is defined exactly once;
//   - count vs. len(replicas)-style arithmetic (`votes > len(peers)/2`):
//     flagged — majority-of-membership is not a Byzantine quorum;
//   - count vs. helper-result arithmetic (`matching >= c.quorum()+1`):
//     flagged — the offset belongs inside a named helper;
//   - count vs. a bare helper call with the skipping orientation
//     (`count > quorum()`, `count <= quorum()`, and their mirrored forms):
//     flagged as an off-by-one — reaching a threshold is `count >=
//     quorum()`, missing it is `count < quorum()`; equality tests
//     (fire-exactly-once-at-threshold) are accepted.
//
// A quorum helper is recognized by name (it contains "quorum", any case) or
// by shape: a single-return function whose result is F/N arithmetic or a
// call to another helper (computed to a fixpoint, so a helper delegating to
// a Config-level helper still counts).
//
// Deliberately exempt: comparisons where both sides are config-derived
// (`cfg.N != 2*cfg.F+1` — the constructor validating the relation is where
// the arithmetic *belongs*), and bare `.F`/`.N` reads without arithmetic
// (`i < c.cfg.N` loop bounds; `seen >= c.cfg.N` heard-from-everyone
// checks — N is a membership count, not a derived threshold).
package quorumcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// Analyzer is the quorumcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "quorumcheck",
	Doc:  "vote counts must be compared against the canonical quorum helpers, with the non-skipping orientation",
	Run:  run,
}

// scopeRoots are the protocol subtrees whose vote counting the analyzer
// polices.
var scopeRoots = []string{"internal/hybster", "internal/troxy"}

var countishRE = regexp.MustCompile(`(?i)(match|vot|vouch|ack|repl|count|seen|got|valid|agree)`)
var membersRE = regexp.MustCompile(`(?i)(replica|peer|node|member)`)

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok {
		return nil
	}
	inScope := false
	for _, root := range scopeRoots {
		if analysis.Under(rel, root) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	helpers := collectHelpers(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch cmp.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			checkComparison(pass, helpers, cmp)
			return true
		})
	}
	return nil
}

// checkComparison applies the quorum rules to one comparison.
func checkComparison(pass *analysis.Pass, helpers map[*types.Func]bool, cmp *ast.BinaryExpr) {
	l, r := ast.Unparen(cmp.X), ast.Unparen(cmp.Y)

	// Config validated against config (cfg.N != 2*cfg.F+1) is the one place
	// the raw arithmetic belongs.
	if hasFNLeaf(pass, l) && hasFNLeaf(pass, r) {
		return
	}

	// Orient: exactly one countish side, the other the candidate threshold.
	var count, thr ast.Expr
	var thrOnRight bool
	switch {
	case isCountish(pass, l) && !isCountish(pass, r):
		count, thr, thrOnRight = l, r, true
	case isCountish(pass, r) && !isCountish(pass, l):
		count, thr, thrOnRight = r, l, false
	default:
		return
	}
	_ = count

	switch classifyThreshold(pass, helpers, thr) {
	case thrFNArith:
		pass.Reportf(cmp.Pos(),
			"count compared against hand-rolled quorum arithmetic; define the threshold once in a canonical quorum helper (f+1 / 2f+1) and compare against that")
	case thrMembersArith:
		pass.Reportf(cmp.Pos(),
			"count compared against len-of-membership arithmetic; a majority of the membership is not a Byzantine quorum — use the canonical quorum helper")
	case thrHelperArith:
		pass.Reportf(cmp.Pos(),
			"arithmetic on a quorum helper result obscures the threshold; move the offset into a named helper and compare against it directly")
	case thrHelper:
		if skipsThreshold(cmp.Op, thrOnRight) {
			pass.Reportf(cmp.Pos(),
				"off-by-one quorum comparison: reaching a threshold is `count >= quorum()` and missing it is `count < quorum()`; this orientation skips the exact-threshold case")
		}
	}
}

// skipsThreshold reports whether op, with the helper on the given side,
// treats the exact-threshold count as not-reached: count > q, count <= q,
// and the mirrored q < count / q >= count.
func skipsThreshold(op token.Token, thrOnRight bool) bool {
	if thrOnRight {
		return op == token.GTR || op == token.LEQ
	}
	return op == token.LSS || op == token.GEQ
}

type thresholdKind int

const (
	thrNone thresholdKind = iota
	thrHelper
	thrHelperArith
	thrFNArith
	thrMembersArith
)

// classifyThreshold decides what kind of quorum threshold e is.
func classifyThreshold(pass *analysis.Pass, helpers map[*types.Func]bool, e ast.Expr) thresholdKind {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && isHelperCall(pass, helpers, call) {
		return thrHelper
	}
	if !hasArith(e) {
		return thrNone
	}
	if containsHelperCall(pass, helpers, e) {
		return thrHelperArith
	}
	if hasFNLeaf(pass, e) {
		return thrFNArith
	}
	if hasMembersLen(e) {
		return thrMembersArith
	}
	return thrNone
}

// collectHelpers recognizes the package's quorum helpers: by name
// (containing "quorum") or by shape (single-return function whose result is
// F/N arithmetic or a call to another helper), iterated to a fixpoint so
// delegation chains resolve.
func collectHelpers(pass *analysis.Pass) map[*types.Func]bool {
	helpers := make(map[*types.Func]bool)
	type candidate struct {
		fn  *types.Func
		ret ast.Expr
	}
	var candidates []candidate
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if strings.Contains(strings.ToLower(fn.Name()), "quorum") {
				helpers[fn] = true
				continue
			}
			if len(fd.Body.List) != 1 {
				continue
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			candidates = append(candidates, candidate{fn, ast.Unparen(ret.Results[0])})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range candidates {
			if helpers[c.fn] {
				continue
			}
			isFN := hasArith(c.ret) && hasFNLeaf(pass, c.ret)
			call, isCall := c.ret.(*ast.CallExpr)
			if isFN || (isCall && isHelperCall(pass, helpers, call)) {
				helpers[c.fn] = true
				changed = true
			}
		}
	}
	return helpers
}

func isHelperCall(pass *analysis.Pass, helpers map[*types.Func]bool, call *ast.CallExpr) bool {
	fn := callee(pass, call)
	if fn == nil {
		return false
	}
	// Out-of-package helpers are recognized by name only (a Config-level
	// Quorum() imported from another package).
	return helpers[fn] || strings.Contains(strings.ToLower(fn.Name()), "quorum")
}

func containsHelperCall(pass *analysis.Pass, helpers map[*types.Func]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isHelperCall(pass, helpers, call) {
			found = true
		}
		return !found
	})
	return found
}

// isCountish reports whether e reads as a tally: a len(...) expression or a
// variable/field whose name says it counts.
func isCountish(pass *analysis.Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.Ident:
		return countishRE.MatchString(x.Name)
	case *ast.SelectorExpr:
		return countishRE.MatchString(x.Sel.Name)
	}
	return false
}

// hasFNLeaf reports whether e contains a read of an F or N config field
// (selector .F/.N, or a bare F/N identifier), possibly through int
// conversions.
func hasFNLeaf(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "F" || x.Sel.Name == "N" {
				found = true
			}
			return false // don't descend into x.X: c.cfg is not a leaf
		case *ast.Ident:
			if x.Name == "F" || x.Name == "N" {
				if _, isVar := objOf(pass, x).(*types.Var); isVar {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// hasArith reports whether e contains an arithmetic operator — what turns a
// bare config read into a derived threshold.
func hasArith(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
				found = true
			}
		}
		return !found
	})
	return found
}

// hasMembersLen reports whether e contains len(x) where x names the
// membership (replicas, peers, nodes, members).
func hasMembersLen(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "len" && len(call.Args) == 1 {
			name := ""
			switch a := ast.Unparen(call.Args[0]).(type) {
			case *ast.Ident:
				name = a.Name
			case *ast.SelectorExpr:
				name = a.Sel.Name
			}
			if membersRE.MatchString(name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
