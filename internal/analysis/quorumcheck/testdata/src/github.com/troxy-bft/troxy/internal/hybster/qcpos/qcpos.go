// Package qcpos must trigger quorumcheck: every threshold-arithmetic shape
// the analyzer rejects.
package qcpos

// Config mirrors the protocol config: N = 2F+1.
type Config struct {
	N, F int
}

// Quorum is the canonical helper.
func (c Config) Quorum() int { return c.F + 1 }

type core struct {
	cfg      Config
	replicas []int
}

// certSize and threshold are quorum helpers by shape, not by name: a
// single-return F-arithmetic body, and a delegation to it (the fixpoint).
func (c *core) certSize() int  { return c.cfg.F + 1 }
func (c *core) threshold() int { return c.certSize() }

func (c *core) handRolled(matching int) bool {
	return matching >= c.cfg.F+1 // want "hand-rolled quorum arithmetic"
}

func (c *core) handRolledDouble(votes int) bool {
	return votes > 2*c.cfg.F // want "hand-rolled quorum arithmetic"
}

func (c *core) handRolledMirror(acks int) bool {
	return c.cfg.F+1 <= acks // want "hand-rolled quorum arithmetic"
}

func (c *core) majorityOfMembers(votes int) bool {
	return votes > len(c.replicas)/2 // want "len-of-membership arithmetic"
}

func (c *core) helperPlusOne(matching int) bool {
	return matching >= c.cfg.Quorum()+1 // want "arithmetic on a quorum helper result"
}

func (c *core) offByOneOver(matching int) bool {
	return matching > c.cfg.Quorum() // want "off-by-one quorum comparison"
}

func (c *core) offByOneUnder(acks int) bool {
	return acks <= c.cfg.Quorum() // want "off-by-one quorum comparison"
}

func (c *core) offByOneMirror(matching int) bool {
	return c.cfg.Quorum() >= matching // want "off-by-one quorum comparison"
}

func (c *core) offByOneViaShapeHelper(matching int) bool {
	return matching > c.threshold() // want "off-by-one quorum comparison"
}

func (c *core) lenCountOffByOne(votes []int) bool {
	return len(votes) <= c.cfg.Quorum() // want "off-by-one quorum comparison"
}
