// Package qcneg must stay silent: the canonical comparisons and the
// deliberate exemptions.
package qcneg

type Config struct {
	N, F int
}

func (c Config) Quorum() int { return c.F + 1 }

type core struct {
	cfg  Config
	seen map[int]bool
}

// Constructor validation is where the raw F/N arithmetic belongs: both
// sides are config-derived.
func validate(cfg Config) bool {
	return cfg.N != 2*cfg.F+1
}

// Loop bounds over the membership are bare N reads, not derived thresholds.
func (c *core) walk() int {
	total := 0
	for i := 0; i < c.cfg.N; i++ {
		total += i
	}
	return total
}

// The canonical orientations: reached is >=, not-reached is <.
func (c *core) reached(matching int) bool {
	return matching >= c.cfg.Quorum()
}

func (c *core) notReached(votes []int) bool {
	return len(votes) < c.cfg.Quorum()
}

// Exactly-at-threshold equality fires a completion action once.
func (c *core) justReached(acks int) bool {
	return acks == c.cfg.Quorum()
}

// Mirrored allowed orientation.
func (c *core) mirrorReached(matching int) bool {
	return c.cfg.Quorum() <= matching
}

// Heard-from-everyone compares against bare N: a membership count, not a
// derived threshold.
func (c *core) heardAll(count int) bool {
	return count >= c.cfg.N
}

// Bounds checks on IDs are not vote counting (no countish side).
func (c *core) validID(id int) bool {
	return id >= 0 && id < c.cfg.N
}

// Slicing by the helper is not a comparison at all.
func (c *core) prefix(ids []int) []int {
	if len(ids) < c.cfg.Quorum() {
		return nil
	}
	return ids[:c.cfg.Quorum()]
}
