package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"
)

// This file implements the `go vet -vettool` side of the suite: cmd/go
// invokes the tool once per compilation unit with a JSON config file
// describing the unit's sources and the gc export data of its dependencies.
// The protocol additionally requires the tool to answer `-flags` (the
// analyzer flags it accepts, as JSON) and `-V=full` (a version fingerprint
// for the build cache).

// vetConfig mirrors the subset of cmd/go's vet.cfg the driver needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built from this suite. It dispatches
// between the vet protocol's meta queries, single-unit analysis, and (when
// invoked with package patterns instead of a .cfg file) the standalone
// whole-module driver.
func Main(analyzers ...*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("troxy-lint: ")
	if err := checkRegistry(analyzers); err != nil {
		log.Fatal(err)
	}
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			printFlags()
			return
		case strings.HasPrefix(a, "-V") || strings.HasPrefix(a, "--V"):
			printVersion()
			return
		case a == "-help" || a == "--help" || a == "-h":
			usage(analyzers)
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		usage(analyzers)
		os.Exit(2)
	}
	os.Exit(Standalone(args, analyzers))
}

// checkRegistry verifies the driver registers exactly the analyzers in
// KnownAnalyzerNames: a new analyzer must be added to both the registry (so
// //lint:allow can reference it) and cmd/troxy-lint (so it actually runs),
// and this check makes forgetting either a startup failure instead of a
// silent gap.
func checkRegistry(analyzers []*Analyzer) error {
	registered := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if !KnownAnalyzerNames[a.Name] {
			return fmt.Errorf("analyzer %q is not in KnownAnalyzerNames; add it to the registry in internal/analysis", a.Name)
		}
		registered[a.Name] = true
	}
	for name := range KnownAnalyzerNames {
		if !registered[name] {
			return fmt.Errorf("analyzer %q is in KnownAnalyzerNames but not registered with the driver; add it in cmd/troxy-lint", name)
		}
	}
	return nil
}

func usage(analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "troxy-lint: static enforcement of Troxy's trust boundary and protocol determinism\n\n")
	fmt.Fprintf(os.Stderr, "usage:\n")
	fmt.Fprintf(os.Stderr, "  troxy-lint <packages>          analyze package patterns (e.g. ./...)\n")
	fmt.Fprintf(os.Stderr, "  go vet -vettool=$(which troxy-lint) <packages>\n\n")
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
	}
}

// printFlags answers cmd/go's `-flags` query. The suite has no analyzer
// flags; an empty JSON list tells vet to pass everything through untouched.
func printFlags() {
	fmt.Println("[]")
}

// printVersion answers `-V=full` with the executable's content hash, the
// same convention x/tools' unitchecker uses, so cmd/go can fingerprint the
// tool for its build cache.
func printVersion() {
	f, err := os.Open(os.Args[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)[:16]))
}

// runUnit analyzes one vet compilation unit. Exit status: 0 clean, 1
// operational error, 2 findings.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: %v", cfgFile, err)
		return 1
	}
	// The suite computes no cross-package facts, but the protocol requires a
	// vetx output file per unit regardless.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("troxy-lint: no facts\n"), 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, and we produce none
	}
	norm := NormalizePath(cfg.ImportPath)
	if _, inModule := RelPath(norm); !inModule {
		return 0 // out-of-module dependency (stdlib): nothing to enforce
	}
	if norm != cfg.ImportPath {
		// Test variant of a package. The analyzers never report in _test.go
		// files and the base unit already covers the non-test sources, so
		// analyzing again would only duplicate output.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Printf("parse: %v", err)
			return 1
		}
		files = append(files, f)
	}

	imp := &cfgImporter{
		cfg: &cfg,
		gc:  importer.ForCompiler(fset, "gc", cfgLookup(&cfg)).(types.ImporterFrom),
	}
	tcfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := NewInfo()
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Printf("typecheck %s: %v", cfg.ImportPath, err)
		return 1
	}

	diags := Analyze(&Package{Fset: fset, Files: files, Types: tpkg, Info: info, Path: norm}, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// cfgLookup opens the gc export data recorded for an import path in the vet
// config.
func cfgLookup(cfg *vetConfig) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("vet config of %s has no export data for %q", cfg.ImportPath, path)
		}
		return os.Open(file)
	}
}

// cfgImporter maps source-level import paths through the unit's ImportMap
// (vendoring, test variants) before delegating to the gc importer.
type cfgImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func (i *cfgImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *cfgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := i.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return i.gc.ImportFrom(path, dir, mode)
}
