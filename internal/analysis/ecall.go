package analysis

import "go/types"

// Shared type predicates for recognizing the ecall boundary surface. The
// copydiscipline and secretflow analyzers both identify ecall handlers the
// same way: function values of type func([]byte) ([]byte, error) registered
// in a map[string]func([]byte) ([]byte, error) table (internal/enclave's
// ECall dispatch shape).

// TrustedRoots are the module-relative package roots whose code runs inside
// the enclave (paper Fig. 3: the trusted Troxy subsystem). Everything else
// in the module is host-side, untrusted code.
var TrustedRoots = []string{
	"internal/enclave",
	"internal/tcounter",
	"internal/troxy",
	"internal/securechannel",
}

// Trusted reports whether the module-relative path rel lies under one of
// the trusted roots.
func Trusted(rel string) bool {
	for _, r := range TrustedRoots {
		if Under(rel, r) {
			return true
		}
	}
	return false
}

// IsECallTableType reports whether t is an ecall-table type:
// map[string]func([]byte) ([]byte, error).
func IsECallTableType(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	return IsHandlerSig(m.Elem())
}

// IsHandlerSig reports whether t is func([]byte) ([]byte, error).
func IsHandlerSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	return IsByteSlice(sig.Params().At(0).Type()) &&
		IsByteSlice(sig.Results().At(0).Type()) &&
		IsErrorType(sig.Results().At(1).Type())
}

// IsByteSlice reports whether t's underlying type is []byte.
func IsByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// IsErrorType reports whether t is the built-in error type.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
