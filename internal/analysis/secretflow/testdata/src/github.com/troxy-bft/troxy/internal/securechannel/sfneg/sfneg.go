// Package sfneg must stay clean under secretflow: the sanctioned patterns
// for handling key material inside the trusted packages.
package sfneg

import (
	"crypto/ed25519"
	"crypto/hkdf"
	"crypto/sha256"
	"fmt"
	"log"

	"github.com/troxy-bft/troxy/internal/wire"
)

type handlers = map[string]func(arg []byte) ([]byte, error)

// S holds trusted key material.
type S struct {
	// troxy:secret
	key []byte

	identity ed25519.PrivateKey
}

// derive stores a fresh session key; wrapping the derivation error is fine
// (errors never carry taint), as is logging the key's length.
func (s *S) derive(salt []byte) error {
	sessionKey, err := hkdf.Key(sha256.New, s.key, salt, "session", 32)
	if err != nil {
		return fmt.Errorf("sfneg: derive session key: %w", err)
	}
	s.key = sessionKey
	log.Printf("rotated session key (%d bytes)", len(sessionKey))
	return nil
}

// sign declassifies through the signing call: a signature is publishable.
func (s *S) sign(msg []byte) []byte {
	sig := ed25519.Sign(s.identity, msg)
	log.Printf("signed %d bytes: %x", len(msg), sig)
	return sig
}

// frame writes the key into a wire frame — allowed inside the trusted
// packages, whose callers seal or encrypt the buffer before it leaves.
func (s *S) frame(w *wire.Writer) {
	w.Bytes32(s.key)
}

// ECalls returns only sealed (call-declassified) bytes across the boundary.
func (s *S) ECalls() handlers {
	return handlers{
		"seal-key": func(arg []byte) ([]byte, error) {
			sealed := seal(s.key, arg)
			return sealed, nil
		},
	}
}

func seal(key, aad []byte) []byte { return append([]byte(nil), aad...) }
