// Package sfinter must trigger secretflow's inter-procedural cases: every
// finding here crosses a function boundary, so the intra-procedural engine
// (which declassified at every call) provably missed all of them — the
// call-graph summaries are what make them visible. Reports land at the call
// site, never inside the helper.
package sfinter

import (
	"crypto/ed25519"
	"fmt"
)

// S holds trusted key material.
type S struct {
	// troxy:secret
	master []byte
}

// logHex is a laundering log helper: its own body has no taint source, so
// the old engine reported nothing anywhere. Its summary records that the
// parameter reaches a fmt sink.
func logHex(v []byte) {
	fmt.Printf("%x\n", v)
}

func (s *S) leakViaHelper() {
	logHex(s.master) // want "secret-tainted argument to logHex reaches a formatting/logging sink inside the callee"
}

// clone flows its parameter to its result; the summary's ToResult bit
// carries taint through the call.
func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (s *S) leakViaClone() {
	c := clone(s.master)
	fmt.Println(c) // want "secret-tainted value reaches fmt.Println"
}

// exportKey derives secret material internally and returns it — the
// laundering-helper shape: no tainted inputs, intrinsically tainted result.
func (s *S) exportKey() []byte {
	out := s.master
	return out
}

func (s *S) leakLaundered() {
	fmt.Println(s.exportKey()) // want "secret-tainted value reaches fmt.Println"
}

// pingLog / pongLog are mutually recursive: the parameter-to-sink flow only
// converges through the SCC fixpoint.
func pingLog(v []byte, n int) {
	if n == 0 {
		fmt.Println(v)
		return
	}
	pongLog(v, n-1)
}

func pongLog(v []byte, n int) {
	pingLog(v, n)
}

func leakViaRecursion(key ed25519.PrivateKey) {
	pongLog(key, 3) // want "secret-tainted argument to pongLog reaches a formatting/logging sink inside the callee"
}

// digestLen is clean: the helper consumes the secret but neither sinks it
// nor returns anything derived from it (a secret's length is not a secret).
func digestLen(b []byte) int {
	return len(b)
}

func (s *S) cleanHelperUse() {
	n := digestLen(s.master)
	fmt.Println(n)
}

// sealStub is clean: its result does not derive from the input, so callers
// may log it.
func sealStub(b []byte) []byte {
	ct := make([]byte, 16)
	for range b {
		ct[0]++
	}
	return ct
}

func (s *S) cleanSealedLog() {
	fmt.Println(sealStub(s.master))
}
