// Package sfpos must trigger secretflow: annotated and type-seeded secrets
// reaching format/log sinks and the ecall return path.
package sfpos

import (
	"crypto/ed25519"
	"crypto/hkdf"
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
)

type handlers = map[string]func(arg []byte) ([]byte, error)

// S holds trusted key material.
type S struct {
	// troxy:secret
	key []byte

	macKey []byte // troxy:secret

	identity ed25519.PrivateKey
}

func (s *S) logKey() error {
	return fmt.Errorf("handshake failed with key %x", s.key) // want "secret-tainted value reaches fmt.Errorf"
}

func (s *S) logDerived() {
	sessionKey, err := hkdf.Key(sha256.New, s.macKey, nil, "session", 32)
	if err != nil {
		return
	}
	log.Printf("derived %x", sessionKey) // want "secret-tainted value reaches log.Printf"
}

func (s *S) identityToLog() {
	log.Println(s.identity) // want "secret-tainted value reaches log.Println"
}

func (s *S) errorFromSecret() error {
	return errors.New(string(s.key)) // want "secret-tainted value reaches errors.New"
}

func (s *S) aliasFlow() {
	k := s.key
	buf := append([]byte("key="), k...)
	fmt.Println(buf) // want "secret-tainted value reaches fmt.Println"
}

// ECalls registers a handler that leaks the key across the return path.
func (s *S) ECalls() handlers {
	return handlers{
		"export-key": func(arg []byte) ([]byte, error) {
			out := make([]byte, len(s.key))
			copy(out, s.key)
			return out, nil // want "ecall handler returns a secret-tainted value"
		},
	}
}
