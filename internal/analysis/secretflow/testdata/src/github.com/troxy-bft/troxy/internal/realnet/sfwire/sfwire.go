// Package sfwire must trigger secretflow's host-side wire sink: realnet is
// outside the enclave surface, so secret bytes may not be framed here.
package sfwire

import (
	"bytes"

	"github.com/troxy-bft/troxy/internal/wire"
)

// troxy:secret
var sessionTicket []byte

// leak frames the raw ticket from untrusted code.
func leak(w *wire.Writer) {
	w.Raw(sessionTicket) // want "secret-tainted value written to the wire via wire.Raw outside the enclave surface"
}

// leakFrame exercises the package-function form of the sink.
func leakFrame(dst *bytes.Buffer) error {
	return wire.WriteFrame(dst, sessionTicket) // want "secret-tainted value written to the wire via wire.WriteFrame outside the enclave surface"
}

// forwardCiphertext is clean: the bytes came from a declassifying call.
func forwardCiphertext(w *wire.Writer) {
	ct := encrypt(sessionTicket)
	w.Raw(ct)
}

// plainPayload is clean: nothing secret crosses.
func plainPayload(w *wire.Writer, payload []byte) {
	w.U32(uint32(len(payload)))
	w.Raw(payload)
}

func encrypt(b []byte) []byte { return append([]byte(nil), b...) }
