// Package sfwire must trigger secretflow's host-side wire sink: realnet is
// outside the enclave surface, so secret bytes may not be framed here.
package sfwire

import (
	"bytes"

	"github.com/troxy-bft/troxy/internal/wire"
)

// troxy:secret
var sessionTicket []byte

// leak frames the raw ticket from untrusted code.
func leak(w *wire.Writer) {
	w.Raw(sessionTicket) // want "secret-tainted value written to the wire via wire.Raw outside the enclave surface"
}

// leakFrame exercises the package-function form of the sink.
func leakFrame(dst *bytes.Buffer) error {
	return wire.WriteFrame(dst, sessionTicket) // want "secret-tainted value written to the wire via wire.WriteFrame outside the enclave surface"
}

// forwardCopied is the cross-function case the intra-procedural engine
// provably missed (it treated any call as declassifying): the in-package
// copy helper's summary says its parameter flows to its result, so the
// "ciphertext" still carries the secret bytes.
func forwardCopied(w *wire.Writer) {
	ct := copyBytes(sessionTicket)
	w.Raw(ct) // want "secret-tainted value written to the wire via wire.Raw outside the enclave surface"
}

// forwardCiphertext is clean: the seal stub's result does not derive from
// its input (a real seal returns fresh ciphertext bytes), and the summary
// proves it.
func forwardCiphertext(w *wire.Writer) {
	ct := seal(sessionTicket)
	w.Raw(ct)
}

// plainPayload is clean: nothing secret crosses.
func plainPayload(w *wire.Writer, payload []byte) {
	w.U32(uint32(len(payload)))
	w.Raw(payload)
}

func copyBytes(b []byte) []byte { return append([]byte(nil), b...) }

func seal(b []byte) []byte {
	ct := make([]byte, 16)
	for range b {
		ct[0]++
	}
	return ct
}
