// Package secretflow tracks where secret values flow (paper Section V: the
// trusted Troxy subsystem keeps client session keys, counter-certification
// keys, and sealed state inside the enclave; the untrusted host only ever
// sees ciphertext). boundarycheck pins down *who may call what* across the
// trust boundary; secretflow pins down *where the secret bytes go* within
// each function, using the intra-procedural dataflow engine.
//
// Taint sources:
//
//   - declarations annotated `// troxy:secret` (struct fields, package
//     variables, locals, parameters) — the annotation registry for key
//     material the type system cannot distinguish from ordinary []byte
//     (the trusted counter's HMAC key, the enclave's sealing key, ...);
//   - values of key types: crypto/ed25519.PrivateKey and
//     crypto/ecdh.PrivateKey;
//   - results of key-derivation calls: crypto/hkdf Extract/Expand/Key,
//     (*ecdh.PrivateKey).ECDH, and crypto/hmac.New (the keyed MAC state).
//
// Sinks (a diagnostic means secret bytes can reach untrusted memory or a
// log line):
//
//   - formatting and logging: any call into fmt, log, log/slog, or errors
//     with a tainted argument;
//   - wire encoders outside the enclave surface: calls into internal/wire
//     (Writer methods, WriteFrame) with a tainted argument from a package
//     outside the trusted roots — trusted code may frame secrets because
//     it encrypts or seals them first, host code may not;
//   - the ecall return path: an ecall handler (the func([]byte) ([]byte,
//     error) values registered in an ECall table) returning a tainted
//     value — enclave.ECall copies results into untrusted memory, so
//     returning secret material is a leak regardless of copying.
//
// Taint also propagates *through* same-package calls, via the
// inter-procedural summaries of internal/analysis/interproc: a tainted
// argument to a helper whose summary says the parameter reaches a log/wire
// sink is reported at the call site; a helper whose summary says the
// parameter flows to a result (an identity or copying helper) taints the
// call's results; and a helper that derives key material internally and
// returns it (the laundering shape) yields tainted results with no tainted
// input at all. The summaries are computed bottom-up over the call graph's
// SCCs with a fixpoint, so mutual recursion converges.
//
// Known limits, by design: summaries stop at the package boundary — an
// out-of-package call with tainted arguments still declassifies by default
// (Seal, Encrypt, Sign, mac.Sum legitimately transform secrets into
// publishable bytes), and the discipline stays compositional: the other
// package's bodies face the same analyzer. Calls through func values and
// interface implementations outside the package are invisible to the
// summaries. Error values never carry taint: errors are built for display,
// and wrapping one that came out of a derivation call is not a leak.
package secretflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
	"github.com/troxy-bft/troxy/internal/analysis/dataflow"
	"github.com/troxy-bft/troxy/internal/analysis/interproc"
)

// Analyzer is the secretflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "secretflow",
	Doc:  "secret key material must not reach logs, host-side wire encoders, or the ecall return path",
	Run:  run,
}

// sinkPkgs are the formatting/logging packages: any call into them with a
// tainted argument is a leak.
var sinkPkgs = map[string]bool{
	"fmt":      true,
	"log":      true,
	"log/slog": true,
	"errors":   true,
}

const wirePkg = analysis.ModulePath + "/internal/wire"

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok {
		return nil
	}
	trusted := analysis.Trusted(rel)

	annotated := collectAnnotated(pass)
	handlers := collectHandlers(pass)
	enclosing := collectEnclosing(pass)

	source := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := identObj(pass, x); obj != nil && annotated[obj] {
				return true
			}
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil && annotated[obj] {
				return true
			}
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.IsValue() && isSecretType(tv.Type) {
			return true
		}
		return false
	}
	// callSink classifies an out-of-package callee as a sink for the summary
	// engine (and mirrors the direct reporting below).
	callSink := func(fn *types.Func) interproc.SinkKind {
		pkgPath := fn.Pkg().Path()
		var k interproc.SinkKind
		if sinkPkgs[pkgPath] {
			k |= interproc.SinkLog
		}
		if !trusted && analysis.NormalizePath(pkgPath) == wirePkg {
			k |= interproc.SinkWire
		}
		return k
	}
	graph := interproc.Build(pass.Files, pass.TypesInfo, pass.Pkg, &interproc.TaintSpec{
		Source:     source,
		Derivation: isDerivation,
		CallSink:   callSink,
	})

	h := &dataflow.Hooks{
		Info:   pass.TypesInfo,
		Source: source,
		TransferCall: func(call *ast.CallExpr, info dataflow.CallInfo, st *dataflow.State) bool {
			fn := callee(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return false
			}
			if isDerivation(fn) {
				return true
			}
			if node := graph.Lookup(fn); node != nil {
				// Same-package call: apply the callee's summary — sinks its
				// body (transitively) feeds from tainted inputs, reported at
				// this call site, plus result taint.
				res := node.Sum.ResultsTainted
				var sinks interproc.SinkKind
				if info.RecvTainted {
					sinks |= node.Sum.RecvFlow.Sinks
					res = res || node.Sum.RecvFlow.ToResult
				}
				for i, t := range info.ArgsTainted {
					if !t {
						continue
					}
					f := node.Sum.ArgFlow(i)
					sinks |= f.Sinks
					res = res || f.ToResult
				}
				if info.Reporting {
					if sinks&interproc.SinkLog != 0 {
						pass.Reportf(call.Pos(),
							"secret-tainted argument to %s reaches a formatting/logging sink inside the callee; key material must never be formatted or logged", fn.Name())
					}
					if sinks&interproc.SinkWire != 0 {
						pass.Reportf(call.Pos(),
							"secret-tainted argument to %s reaches a wire encoder inside the callee; only ciphertext may leave the trusted packages", fn.Name())
					}
				}
				return res
			}
			if !info.ArgTainted || !info.Reporting {
				return false
			}
			pkgPath := fn.Pkg().Path()
			if sinkPkgs[pkgPath] {
				pass.Reportf(call.Pos(),
					"secret-tainted value reaches %s.%s; key material must never be formatted or logged", pkgBase(pkgPath), fn.Name())
			}
			if !trusted && analysis.NormalizePath(pkgPath) == wirePkg {
				pass.Reportf(call.Pos(),
					"secret-tainted value written to the wire via %s.%s outside the enclave surface; only ciphertext may leave the trusted packages", pkgBase(pkgPath), fn.Name())
			}
			return false
		},
		OnReturn: func(ret *ast.ReturnStmt, tainted []bool, st *dataflow.State) {
			if !handlers[enclosing[ret]] {
				return
			}
			for i, t := range tainted {
				if t {
					pass.Reportf(ret.Results[i].Pos(),
						"ecall handler returns a secret-tainted value; results are copied into untrusted memory by the ecall runtime")
				}
			}
		},
	}

	for _, f := range pass.Files {
		for _, body := range funcBodies(f) {
			dataflow.Run(h, body)
		}
	}
	return nil
}

// collectAnnotated gathers the objects declared with a `// troxy:secret`
// annotation (on the declaration's doc comment or trailing line comment):
// struct fields, package vars, locals, and parameters.
func collectAnnotated(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if hasSecretMark(n.Doc) || hasSecretMark(n.Comment) {
					mark(n.Names)
				}
			case *ast.ValueSpec:
				if hasSecretMark(n.Doc) || hasSecretMark(n.Comment) {
					mark(n.Names)
				}
			case *ast.GenDecl:
				if hasSecretMark(n.Doc) {
					for _, spec := range n.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							mark(vs.Names)
						}
					}
				}
			}
			return true
		})
	}
	return out
}

func hasSecretMark(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "troxy:secret" || strings.HasPrefix(text, "troxy:secret ") {
			return true
		}
	}
	return false
}

// collectHandlers returns the set of function literals registered as ecall
// handlers (values of an ECall-table composite literal or index assignment).
func collectHandlers(pass *analysis.Pass) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if analysis.IsECallTableType(pass.TypesInfo.Types[n].Type) {
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if lit, ok := kv.Value.(*ast.FuncLit); ok {
								out[lit] = true
							}
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if idx, ok := n.Lhs[i].(*ast.IndexExpr); ok &&
						analysis.IsECallTableType(pass.TypesInfo.Types[idx.X].Type) {
						out[lit] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// collectEnclosing maps every return statement to its innermost enclosing
// function node (FuncDecl or FuncLit).
func collectEnclosing(pass *analysis.Pass) map[*ast.ReturnStmt]ast.Node {
	out := make(map[*ast.ReturnStmt]ast.Node)
	for _, f := range pass.Files {
		var stack []ast.Node
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if len(funcs) > 0 && funcs[len(funcs)-1] == top {
					funcs = funcs[:len(funcs)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			case *ast.ReturnStmt:
				if len(funcs) > 0 {
					out[n] = funcs[len(funcs)-1]
				}
			}
			return true
		})
	}
	return out
}

// funcBodies returns the bodies the engine should be run on directly: every
// function declaration, plus outermost function literals in package-level
// initializers. (Literals nested inside those bodies are analyzed by the
// engine itself, with fresh state.)
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				out = append(out, d.Body)
			}
		case *ast.GenDecl:
			ast.Inspect(d, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return out
}

// isSecretType reports whether t is (a pointer to) a private-key type.
func isSecretType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "crypto/ed25519", "crypto/ecdh":
		return named.Obj().Name() == "PrivateKey"
	}
	return false
}

// isDerivation reports whether fn is a key-derivation call whose results
// carry taint.
func isDerivation(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "crypto/hkdf":
		switch fn.Name() {
		case "Extract", "Expand", "Key":
			return true
		}
	case "crypto/hmac":
		return fn.Name() == "New"
	case "crypto/ecdh":
		return fn.Name() == "ECDH"
	}
	return false
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
