package secretflow_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/secretflow"
)

func TestSecretFlow(t *testing.T) {
	analysistest.Run(t, secretflow.Analyzer,
		"github.com/troxy-bft/troxy/internal/securechannel/sfpos",
		"github.com/troxy-bft/troxy/internal/securechannel/sfneg",
		"github.com/troxy-bft/troxy/internal/securechannel/sfinter",
		"github.com/troxy-bft/troxy/internal/realnet/sfwire",
	)
}
