// Package analysis is a self-contained static-analysis framework for the
// troxy-lint suite. It mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built entirely on the standard
// library's go/ast and go/types, because this repository vendors no
// third-party code.
//
// Two drivers run the analyzers (see cmd/troxy-lint):
//
//   - a unitchecker-compatible driver speaking the `go vet -vettool`
//     protocol (one process per compilation unit, imports resolved from the
//     build cache's gc export data), and
//   - a standalone driver that loads whole package patterns via
//     `go list -export -deps -json`.
//
// Suppression: a diagnostic is dropped when the offending line, or the line
// immediately above it, carries a comment of the form
//
//	//lint:allow <analyzer> <reason...>
//
// The reason is mandatory by convention (reviewed, not machine-checked):
// every allow marks a deliberate, documented exception to a trust-boundary
// or determinism invariant. Inter-procedural findings (a tainted argument
// reaching a sink inside a callee, a lock held across a call that
// transitively blocks) are reported at the *call site*, never inside the
// callee — so the allow goes on the call, where the exception is actually
// taken, and stays attached to the code that owns the decision. Test files
// (*_test.go) are never reported against; the analyzers guard production
// code.
//
// Setting TROXY_LINT_TIMING=1 in the environment prints per-analyzer wall
// time per package to stderr (the variable reaches the vettool subprocesses
// through go vet's inherited environment).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"time"
)

// ModulePath is the import path of this repository's module; the analyzers
// classify packages by their path relative to it.
const ModulePath = "github.com/troxy-bft/troxy"

// KnownAnalyzerNames is the full vocabulary of the suite — every analyzer a
// //lint:allow comment may reference. An allow naming anything else is
// reported as a diagnostic in its own right (analyzer "allowaudit", itself
// unsuppressable): a stale name means the suppression silently stopped
// doing anything, which is worse than a loud failure. Main() also checks
// the drivers register exactly this set, so the registry cannot drift from
// cmd/troxy-lint.
var KnownAnalyzerNames = map[string]bool{
	"boundarycheck":  true,
	"copydiscipline": true,
	"determinism":    true,
	"senderr":        true,
	"secretflow":     true,
	"lockcheck":      true,
	"exhaustive":     true,
	"quorumcheck":    true,
	"certgate":       true,
	"boundedalloc":   true,
	"allocfree":      true,
}

// An Analyzer describes one static check of the suite.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run performs the check on one package, reporting findings through the
	// pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// path is the normalized import path (test-variant decorations removed).
	path   string
	report func(Diagnostic)
}

// Path returns the package's import path, normalized for classification:
// the vet test-variant suffix ("pkg [pkg.test]") and the external-test
// "_test" suffix are stripped.
func (p *Pass) Path() string { return p.path }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Path is the normalized import path (see NormalizePath).
	Path string
}

// NormalizePath strips the decorations cmd/go puts on test compilation
// units: "pkg [pkg.test]" (in-package test variant) becomes "pkg", and the
// external test package "pkg_test" becomes "pkg".
func NormalizePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	return strings.TrimSuffix(importPath, "_test")
}

// RelPath returns the path relative to ModulePath ("" for the module root,
// "internal/hybster" for a package below it) and whether the package is part
// of the module at all.
func RelPath(path string) (string, bool) {
	if path == ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// Under reports whether rel (a module-relative path) equals root or lies in
// a subdirectory of it.
func Under(rel, root string) bool {
	return rel == root || strings.HasPrefix(rel, root+"/")
}

// Analyze runs the analyzers over pkg and returns the surviving diagnostics
// in file/line order: findings in _test.go files and findings suppressed by
// //lint:allow comments are dropped.
func Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	timing := os.Getenv("TROXY_LINT_TIMING") != ""
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			path:      pkg.Path,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
		}
		if timing {
			fmt.Fprintf(os.Stderr, "troxy-lint timing: %-14s %-50s %8.2fms\n",
				a.Name, pkg.Path, float64(time.Since(start).Microseconds())/1000)
		}
	}
	sites := parseAllows(pkg)
	diags = filterTestFiles(diags)
	diags = filterAllowed(sites, diags)
	diags = append(diags, auditAllows(sites)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

func filterTestFiles(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		out = append(out, d)
	}
	return out
}

// allowKey identifies one //lint:allow site.
type allowKey struct {
	file string
	line int
	name string
}

// allowSite is one parsed //lint:allow comment.
type allowSite struct {
	pos    token.Position
	names  []string // comma-separated analyzer names before the reason
	reason string   // everything after the name list
}

// parseAllows extracts every //lint:allow comment in the package, including
// malformed ones (empty name list, missing reason) for the audit.
func parseAllows(pkg *Package) []allowSite {
	var sites []allowSite
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				site := allowSite{pos: pkg.Fset.Position(c.Pos())}
				if fields := strings.Fields(rest); len(fields) > 0 {
					site.names = strings.Split(fields[0], ",")
					site.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				sites = append(sites, site)
			}
		}
	}
	return sites
}

// filterAllowed drops diagnostics covered by a //lint:allow comment on the
// same line or the line immediately above.
func filterAllowed(sites []allowSite, diags []Diagnostic) []Diagnostic {
	allows := make(map[allowKey]bool)
	for _, s := range sites {
		for _, name := range s.names {
			allows[allowKey{s.pos.Filename, s.pos.Line, name}] = true
		}
	}
	if len(allows) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			allows[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// auditAllows validates the suppression comments themselves: an allow that
// names a non-existent analyzer or omits the reason is dead weight that
// LOOKS like a reviewed exception, so it fails the lint run. The resulting
// diagnostics carry the pseudo-analyzer name "allowaudit" and are appended
// after suppression filtering — they cannot themselves be allowed away.
// Allows in _test.go files are audited too: diagnostics are never reported
// against test files, so any allow there is stale by definition.
func auditAllows(sites []allowSite) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: "allowaudit",
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, s := range sites {
		if strings.HasSuffix(s.pos.Filename, "_test.go") {
			report(s.pos, "//lint:allow in a test file is dead: analyzers never report against _test.go files; delete it")
			continue
		}
		if len(s.names) == 0 {
			report(s.pos, "//lint:allow without an analyzer name suppresses nothing; name the analyzer and document the reason")
			continue
		}
		for _, name := range s.names {
			if !KnownAnalyzerNames[name] {
				report(s.pos, "//lint:allow names unknown analyzer %q; the suppression is dead (known: %s)", name, knownNamesList())
			}
		}
		if s.reason == "" {
			report(s.pos, "//lint:allow %s has no reason; every exception must document why it is safe (reviewed in DESIGN.md's allow inventory)", strings.Join(s.names, ","))
		}
	}
	return out
}

func knownNamesList() string {
	names := make([]string, 0, len(KnownAnalyzerNames))
	for n := range KnownAnalyzerNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// NewInfo returns a types.Info with all maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
