package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The standalone driver memoizes per-package results under bin/.lintcache,
// keyed by content: the driver binary itself, the full set of export data
// the typechecker can see (a dependency change anywhere invalidates
// everything — coarse, but sound and cheap to compute), the registered
// analyzer names, and the package's own source bytes. A hit replays the
// recorded diagnostics without parsing or typechecking the package; a
// clean tree re-lints in milliseconds. Entries are content-addressed and
// never mutated, so no locking is needed beyond O_EXCL-free atomic writes
// (rename) and stale entries are simply never read again; `rm -rf
// bin/.lintcache` is always safe. TROXY_LINT_TIMING=1 prints the hit/miss
// tally on stderr.

// lintCacheDir is where the standalone driver keeps its memoized results,
// next to the built linter binary so `git clean`/`rm -rf bin` clears both.
const lintCacheDir = "bin/.lintcache"

// lintCache is the per-run handle: a base hash covering everything shared
// across packages, plus hit/miss counters for the timing report.
type lintCache struct {
	dir      string
	base     []byte
	hits     int
	misses   int
	disabled bool
}

// cacheEntry is the persisted result for one package.
type cacheEntry struct {
	// Diagnostics are the rendered diagnostic lines, in report order.
	Diagnostics []string `json:"diagnostics"`
}

// newLintCache computes the run-wide base hash. Any failure (unreadable
// executable, missing export file) disables caching for the run rather
// than risking a stale replay.
func newLintCache(analyzers []*Analyzer, exports map[string]string) *lintCache {
	c := &lintCache{dir: lintCacheDir}
	h := sha256.New()
	exe, err := os.Executable()
	if err != nil {
		c.disabled = true
		return c
	}
	if err := hashFile(h, exe); err != nil {
		c.disabled = true
		return c
	}
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s\n", a.Name)
	}
	paths := make([]string, 0, len(exports))
	for p := range exports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "export %s\n", p)
		if err := hashFile(h, exports[p]); err != nil {
			c.disabled = true
			return c
		}
	}
	c.base = h.Sum(nil)
	return c
}

// key derives the content address of one package's result.
func (c *lintCache) key(p *listPackage) (string, bool) {
	h := sha256.New()
	h.Write(c.base)
	fmt.Fprintf(h, "package %s\n", p.ImportPath)
	for _, name := range p.GoFiles {
		fmt.Fprintf(h, "file %s\n", name)
		if err := hashFile(h, filepath.Join(p.Dir, name)); err != nil {
			return "", false
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// get replays a memoized result. The second return is false on any miss:
// cold cache, changed content, or unreadable entry.
func (c *lintCache) get(p *listPackage) ([]string, bool) {
	if c.disabled {
		return nil, false
	}
	key, ok := c.key(p)
	if !ok {
		c.misses++
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		c.misses++
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.Diagnostics, true
}

// put records one package's rendered diagnostics. Best-effort: a read-only
// checkout just runs uncached.
func (c *lintCache) put(p *listPackage, diagnostics []string) {
	if c.disabled {
		return
	}
	key, ok := c.key(p)
	if !ok {
		return
	}
	data, err := json.Marshal(cacheEntry{Diagnostics: diagnostics})
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	// Write-then-rename so a concurrent reader never sees a torn entry.
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(c.dir, key+".json")); err != nil {
		os.Remove(name)
	}
}

// report prints the hit/miss tally when TROXY_LINT_TIMING is set.
func (c *lintCache) report() {
	if os.Getenv("TROXY_LINT_TIMING") == "" {
		return
	}
	state := ""
	if c.disabled {
		state = " (caching disabled this run)"
	}
	fmt.Fprintf(os.Stderr, "lintcache: %d hits, %d misses%s\n", c.hits, c.misses, state)
}

func hashFile(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}
