// Package exneg must stay clean under exhaustive: full coverage, explicit
// defaults, and switches the analyzer must not claim.
package exneg

import "github.com/troxy-bft/troxy/internal/msg"

// allKinds covers the full universe.
func allKinds(k msg.Kind) int {
	switch k {
	case msg.KindChannelData:
		return 1
	case msg.KindPrepare, msg.KindCommit:
		return 2
	case msg.KindBatch:
		return 3
	case msg.KindStateChunk, msg.KindStatePrefix:
		return 4
	case msg.KindSpecReply:
		return 5
	}
	return 0
}

// explicitDefault documents the leftovers instead of enumerating them.
func explicitDefault(k msg.Kind) bool {
	switch k {
	case msg.KindPrepare:
		return true
	default:
		return false
	}
}

// allTypes covers every concrete message type.
func allTypes(m msg.Message) int {
	switch m.(type) {
	case *msg.ChannelData:
		return 1
	case *msg.Prepare:
		return 2
	case *msg.Commit:
		return 3
	case *msg.Batch:
		return 4
	case *msg.StateChunk:
		return 5
	case *msg.StatePrefix:
		return 6
	case *msg.SpecReply:
		return 7
	case nil:
		return -1
	}
	return 0
}

// typeDefault rejects unknown messages explicitly.
func typeDefault(m msg.Message) uint64 {
	switch m := m.(type) {
	case *msg.Prepare:
		return m.Seq
	default:
		return 0
	}
}

// otherSwitch is over a plain int: not the analyzer's business.
func otherSwitch(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}

// otherTypeSwitch is over any: not the analyzer's business either.
func otherTypeSwitch(v any) bool {
	switch v.(type) {
	case string:
		return true
	}
	return false
}
