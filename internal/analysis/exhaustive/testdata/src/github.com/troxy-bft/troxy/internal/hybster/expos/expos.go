// Package expos must trigger exhaustive: message switches with silent gaps.
package expos

import "github.com/troxy-bft/troxy/internal/msg"

func dispatchKind(k msg.Kind) int {
	switch k { // want "switch over msg.Kind is not exhaustive: missing KindBatch, KindChannelData, KindSpecReply, KindStateChunk, KindStatePrefix"
	case msg.KindPrepare:
		return 1
	case msg.KindCommit:
		return 2
	}
	return 0
}

func singleCase(k msg.Kind) bool {
	switch k { // want "switch over msg.Kind is not exhaustive: missing KindBatch, KindCommit, KindPrepare, KindSpecReply, KindStateChunk, KindStatePrefix"
	case msg.KindChannelData:
		return true
	}
	return false
}

func dispatchType(m msg.Message) uint64 {
	switch m := m.(type) { // want "type switch over msg.Message is not exhaustive: missing \\*msg.Batch, \\*msg.ChannelData, \\*msg.SpecReply, \\*msg.StateChunk, \\*msg.StatePrefix"
	case *msg.Prepare:
		return m.Seq
	case *msg.Commit:
		return m.Seq
	}
	return 0
}
