// Package msg is a fixture mirror of the real internal/msg surface: a Kind
// discriminator, the Message interface, and a few concrete message types.
package msg

// Kind discriminates message types on the wire.
type Kind uint8

const (
	KindChannelData Kind = iota + 1
	KindPrepare
	KindCommit
	KindBatch
	KindStateChunk
	KindStatePrefix
	KindSpecReply
)

// Message is one protocol message.
type Message interface {
	Kind() Kind
}

type ChannelData struct{ Payload []byte }

func (*ChannelData) Kind() Kind { return KindChannelData }

type Prepare struct{ Seq uint64 }

func (*Prepare) Kind() Kind { return KindPrepare }

type Commit struct{ Seq uint64 }

func (*Commit) Kind() Kind { return KindCommit }

type Batch struct{ Seqs []uint64 }

func (*Batch) Kind() Kind { return KindBatch }

type StateChunk struct{ Index uint32 }

func (*StateChunk) Kind() Kind { return KindStateChunk }

type StatePrefix struct{ Seq uint64 }

func (*StatePrefix) Kind() Kind { return KindStatePrefix }

type SpecReply struct{ Seq uint64 }

func (*SpecReply) Kind() Kind { return KindSpecReply }
