package exhaustive_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer,
		"github.com/troxy-bft/troxy/internal/hybster/expos",
		"github.com/troxy-bft/troxy/internal/hybster/exneg",
	)
}
