// Package exhaustive makes adding a message type a compile-gated event:
// every switch over the msg envelope discriminator (msg.Kind) and every
// type switch over the msg.Message interface must either cover all declared
// message kinds or carry an explicit default arm that counts or rejects the
// leftovers. Without this, a new Kind constant silently falls through
// dispatch switches in hybster, troxy, and realnet and the protocol drops
// (or worse, half-handles) the message.
//
// The declared universe is read from the msg package's own scope — the Kind
// constants and the concrete types implementing Message — so the analyzer
// never needs a hand-maintained list. A switch with an explicit default is
// always accepted: the default documents that the author considered the
// leftovers.
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// Analyzer is the exhaustive analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "switches over msg.Kind and type switches over msg.Message must cover every declared message kind or carry an explicit default",
	Run:  run,
}

const msgPath = analysis.ModulePath + "/internal/msg"

func run(pass *analysis.Pass) error {
	if _, ok := analysis.RelPath(pass.Path()); !ok {
		return nil
	}
	msgPkg := findMsgPackage(pass)
	if msgPkg == nil {
		return nil
	}
	u := newUniverse(msgPkg)
	if u == nil {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkKindSwitch(pass, u, n)
			case *ast.TypeSwitchStmt:
				checkMessageSwitch(pass, u, n)
			}
			return true
		})
	}
	return nil
}

// findMsgPackage locates the msg package: the package under analysis itself
// or one of its direct imports.
func findMsgPackage(pass *analysis.Pass) *types.Package {
	if analysis.NormalizePath(pass.Pkg.Path()) == msgPath {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if analysis.NormalizePath(imp.Path()) == msgPath {
			return imp
		}
	}
	return nil
}

// universe is the declared message surface read from the msg package.
type universe struct {
	kindType *types.Named // msg.Kind
	msgIface *types.Named // msg.Message
	// kinds maps each Kind constant's exact value to its name.
	kinds map[string]string
	// impls is the set of concrete types implementing Message, by name.
	impls []string
}

func newUniverse(msgPkg *types.Package) *universe {
	scope := msgPkg.Scope()
	kindObj, _ := scope.Lookup("Kind").(*types.TypeName)
	ifaceObj, _ := scope.Lookup("Message").(*types.TypeName)
	if kindObj == nil || ifaceObj == nil {
		return nil
	}
	kindType, _ := kindObj.Type().(*types.Named)
	msgIface, _ := ifaceObj.Type().(*types.Named)
	if kindType == nil || msgIface == nil {
		return nil
	}
	iface, _ := msgIface.Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}

	u := &universe{kindType: kindType, msgIface: msgIface, kinds: make(map[string]string)}
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Const:
			if obj.Type() == kindType && obj.Val() != nil {
				u.kinds[obj.Val().ExactString()] = name
			}
		case *types.TypeName:
			if obj == kindObj || obj == ifaceObj || obj.IsAlias() {
				continue
			}
			named, _ := obj.Type().(*types.Named)
			if named == nil {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(types.NewPointer(named), iface) || types.Implements(named, iface) {
				u.impls = append(u.impls, name)
			}
		}
	}
	sort.Strings(u.impls)
	if len(u.kinds) == 0 {
		return nil
	}
	return u
}

// checkKindSwitch verifies a value switch whose tag is typed msg.Kind.
func checkKindSwitch(pass *analysis.Pass, u *universe, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[s.Tag]
	if !ok || !sameNamed(tv.Type, u.kindType) {
		return
	}
	covered := make(map[string]bool)
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: accepted
		}
		for _, e := range cc.List {
			if ctv, ok := pass.TypesInfo.Types[e]; ok && ctv.Value != nil {
				covered[ctv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for val, name := range u.kinds {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(s.Pos(),
		"switch over msg.Kind is not exhaustive: missing %s; add the cases or an explicit default that counts or rejects them",
		strings.Join(missing, ", "))
}

// checkMessageSwitch verifies a type switch whose operand is msg.Message.
func checkMessageSwitch(pass *analysis.Pass, u *universe, s *ast.TypeSwitchStmt) {
	var operand ast.Expr
	switch g := s.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := g.X.(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	case *ast.AssignStmt:
		if len(g.Rhs) == 1 {
			if ta, ok := g.Rhs[0].(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	}
	if operand == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[operand]
	if !ok || !sameNamed(tv.Type, u.msgIface) {
		return
	}
	covered := make(map[string]bool)
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: accepted
		}
		for _, e := range cc.List {
			t := pass.TypesInfo.Types[e].Type
			if t == nil {
				continue
			}
			if sameNamed(t, u.msgIface) {
				return // case msg.Message: covers everything
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				analysis.NormalizePath(named.Obj().Pkg().Path()) == msgPath {
				covered[named.Obj().Name()] = true
			}
		}
	}
	var missing []string
	for _, name := range u.impls {
		if !covered[name] {
			missing = append(missing, "*msg."+name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(s.Pos(),
		"type switch over msg.Message is not exhaustive: missing %s; add the cases or an explicit default that counts or rejects them",
		strings.Join(missing, ", "))
}

// sameNamed reports whether t is the named type want (ignoring the
// fixture/real package distinction by comparing the object's package path
// and name — both passes resolve against the same loaded package, so
// pointer identity would do, but path comparison keeps the check robust
// across re-imports of the same export data).
func sameNamed(t types.Type, want *types.Named) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named == want {
		return true
	}
	a, b := named.Obj(), want.Obj()
	return a.Name() == b.Name() && a.Pkg() != nil && b.Pkg() != nil &&
		a.Pkg().Path() == b.Pkg().Path()
}
