// Package boundedalloc enforces attacker-bounded decode allocations
// (DESIGN.md §9.6): a length read off the wire is a number the peer chose,
// and `make([]T, n)` with an unchecked n lets one malformed frame allocate
// gigabytes — a memory-exhaustion denial of service no checksum catches.
// Every allocation sized by a wire-derived integer must be dominated by a
// comparison of that integer against a named Max* constant, so the bound
// is spelled once, greppable, and survives refactors.
//
// The analyzer runs over the decode-bearing packages (internal/msg,
// internal/wire, internal/securechannel, internal/hybster). Taint: the
// results of raw wire-integer reads — Reader.U16/U32/U64, Uvarint-style
// readers, binary.LittleEndian.UintXX — and anything arithmetic derives
// from them. (Reader.SliceLen, Bytes32 and String are internally bounded
// and deliberately not sources.) Path-sensitive bounds: after
// `if n > MaxParts { return ... }` — or the mirrored/negated orientations,
// through integer conversions — the fallthrough path carries a BoundedFact
// for n (internal/analysis/dataflow), killed by reassignment and at joins
// with unguarded paths. At every `make` size argument and io.CopyN count,
// a tainted value with no live BoundedFact is reported; `min(n, MaxParts)`
// counts as bounded at the allocation itself.
//
// Comparisons against variables (`if n > limit`) do not establish a bound:
// the analyzer cannot tell a constant-derived limit from another wire
// value, and the named-constant discipline is the point. Use a Max*
// constant, or a reviewed //lint:allow boundedalloc with the reason the
// dynamic limit is trusted.
package boundedalloc

import (
	"go/ast"
	"go/types"
	"regexp"

	"github.com/troxy-bft/troxy/internal/analysis"
	"github.com/troxy-bft/troxy/internal/analysis/dataflow"
)

// Analyzer is the boundedalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "boundedalloc",
	Doc:  "allocations sized by wire-derived lengths must be bounded by a named Max* constant",
	Run:  run,
}

// scopeRoots are the subtrees that decode peer-controlled bytes.
var scopeRoots = []string{"internal/msg", "internal/wire", "internal/securechannel", "internal/hybster"}

// rawReadRE matches raw wire-integer read methods; SliceLen/Bytes32/String
// are internally bounded and excluded.
var rawReadRE = regexp.MustCompile(`^(U16|U32|U64|Uint16|Uint32|Uint64|Uvarint|ReadUvarint)$`)

// boundConstRE matches the named bound constants.
var boundConstRE = regexp.MustCompile(`(?i)^max`)

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok {
		return nil
	}
	inScope := false
	for _, root := range scopeRoots {
		if analysis.Under(rel, root) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	h := &dataflow.Hooks{
		Info: info,
		TransferCall: func(call *ast.CallExpr, ci dataflow.CallInfo, st *dataflow.State) bool {
			if isWireLenSource(info, call) {
				return true
			}
			// len/cap of a tainted buffer is host-measured, not
			// peer-chosen; everything else propagates.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
					return false
				}
			}
			return ci.ArgTainted
		},
		Bound: func(e ast.Expr) (string, bool) {
			return boundName(info, e)
		},
		OnNode: func(n ast.Node, st *dataflow.State, deferred bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			for _, size := range sizeArgs(info, call) {
				checkSize(pass, info, st, size)
			}
		},
	}
	dataflow.Run(h, fd.Body)
}

// sizeArgs returns the attacker-relevant size expressions of an allocation
// or bulk-copy call: the length/capacity arguments of make, and the count
// of io.CopyN.
func sizeArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok && fun.Name == "make" && len(call.Args) > 1 {
			return call.Args[1:]
		}
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[pkg].(*types.PkgName); isPkg && pkg.Name == "io" && fun.Sel.Name == "CopyN" && len(call.Args) == 3 {
				return call.Args[2:]
			}
		}
	}
	return nil
}

// checkSize reports a size expression that carries a wire-derived value
// with no live bound.
func checkSize(pass *analysis.Pass, info *types.Info, st *dataflow.State, e ast.Expr) {
	e = ast.Unparen(e)
	// min(n, MaxParts) is bounded at the allocation itself.
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "min" {
				for _, a := range call.Args {
					if _, bounded := boundName(info, a); bounded {
						return
					}
				}
			}
		}
	}
	reported := false
	ast.Inspect(e, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isWireLenSource(info, x) {
				pass.Reportf(e.Pos(),
					"allocation sized directly by a raw wire read; bind the length to a variable and compare it against a named Max* constant first")
				reported = true
				return false
			}
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil || !st.Has(obj) {
				return true
			}
			if _, bounded := st.BoundOf(obj); !bounded {
				pass.Reportf(e.Pos(),
					"allocation sized by wire-derived length %s without a dominating bound check; compare it against a named Max* constant on every path first", x.Name)
				reported = true
				return false
			}
		}
		return true
	})
}

// isWireLenSource recognizes a raw wire-integer read: a rawReadRE-named
// method on a *Reader (any package's decoding reader), or the
// encoding/binary byte-order and varint readers.
func isWireLenSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !rawReadRE.MatchString(sel.Sel.Name) {
		return false
	}
	// binary.Uvarint / binary.ReadUvarint / binary.LittleEndian.UintXX:
	// any selector whose name matches is peer-controlled by construction —
	// except methods on readers that bound internally, which use other
	// names. Method calls qualify only on a type named *Reader.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return recvTypeNamed(sig.Recv().Type(), "Reader") || fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary"
		}
	}
	// Package-level function (binary.Uvarint) or byte-order value method
	// resolved without a *types.Func (shouldn't happen) — trust the name.
	return true
}

// recvTypeNamed reports whether t (behind pointers) is a named type called
// name.
func recvTypeNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// boundName recognizes a named Max* bound constant inside e.
func boundName(info *types.Info, e ast.Expr) (string, bool) {
	name, found := "", false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if c, isConst := obj.(*types.Const); isConst && boundConstRE.MatchString(c.Name()) {
			name, found = c.Name(), true
		}
		return true
	})
	return name, found
}
