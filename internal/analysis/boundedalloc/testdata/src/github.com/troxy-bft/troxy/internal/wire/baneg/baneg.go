// Package baneg holds boundedalloc negative fixtures: properly bounded
// decode allocations.
package baneg

type Reader struct{ buf []byte }

func (r *Reader) U32() uint32   { return 0 }
func (r *Reader) SliceLen() int { return 0 }

const MaxChunks = 1 << 12
const maxEntries = 64

// The canonical guard.
func decodeChunks(r *Reader) [][]byte {
	n := int(r.U32())
	if n < 0 || n > MaxChunks {
		return nil
	}
	return make([][]byte, n)
}

// Mirrored orientation, unexported constant, behind a conversion.
func decodeEntries(r *Reader) []uint64 {
	n := r.U32()
	if maxEntries < n {
		return nil
	}
	return make([]uint64, int(n))
}

// min against the constant bounds at the allocation itself.
func decodeClamped(r *Reader) []byte {
	n := int(r.U32())
	return make([]byte, min(n, MaxChunks))
}

// SliceLen is internally bounded; its result is not wire taint.
func decodeSlices(r *Reader) []byte {
	return make([]byte, r.SliceLen())
}

// Constant and host-measured sizes are never flagged.
func scratch(buf []byte) []byte {
	out := make([]byte, 64)
	return append(out, make([]byte, len(buf))...)
}

// A reviewed allow documents a trusted dynamic limit.
func decodeNegotiated(r *Reader, negotiated int) []byte {
	n := int(r.U32())
	if n > negotiated {
		return nil
	}
	return make([]byte, n) //lint:allow boundedalloc negotiated is clamped at handshake time
}
