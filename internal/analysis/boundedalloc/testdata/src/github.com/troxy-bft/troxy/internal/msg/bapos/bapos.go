// Package bapos holds boundedalloc positive fixtures: decode allocations
// sized by unchecked wire lengths.
package bapos

import (
	"encoding/binary"
	"io"
)

type Reader struct{ buf []byte }

func (r *Reader) U32() uint32   { return 0 }
func (r *Reader) U64() uint64   { return 0 }
func (r *Reader) SliceLen() int { return 0 }

const MaxParts = 1 << 10

// No bound at all.
func decodeParts(r *Reader) [][]byte {
	n := int(r.U32())
	return make([][]byte, n) // want "without a dominating bound check"
}

// Sized directly by the raw read.
func decodeInline(r *Reader) []byte {
	return make([]byte, r.U64()) // want "sized directly by a raw wire read"
}

// A guard against a variable is not a named bound.
func decodeVarLimit(r *Reader, limit int) []byte {
	n := int(r.U32())
	if n > limit {
		return nil
	}
	return make([]byte, n) // want "without a dominating bound check"
}

// One path reaches the allocation unguarded: the join kills the bound.
func decodeMerge(r *Reader, strict bool) []byte {
	n := int(r.U32())
	if strict {
		if n > MaxParts {
			return nil
		}
	}
	return make([]byte, n) // want "without a dominating bound check"
}

// Reassignment from the wire after the check discards the bound.
func decodeRecheck(r *Reader) []byte {
	n := int(r.U32())
	if n > MaxParts {
		return nil
	}
	n = int(r.U32())
	return make([]byte, n) // want "without a dominating bound check"
}

// binary byte-order reads are wire sources too.
func decodeBinary(b []byte, w io.Writer, src io.Reader) error {
	n := binary.LittleEndian.Uint32(b)
	_, err := io.CopyN(w, src, int64(n)) // want "without a dominating bound check"
	return err
}
