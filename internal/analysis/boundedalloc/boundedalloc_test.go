package boundedalloc_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/boundedalloc"
)

func TestBoundedAlloc(t *testing.T) {
	analysistest.Run(t, boundedalloc.Analyzer,
		"github.com/troxy-bft/troxy/internal/msg/bapos",
		"github.com/troxy-bft/troxy/internal/wire/baneg",
	)
}
