// Package cdneg is the boundary-adjacent negative for copydiscipline: the
// same storing patterns in functions that are NOT boundary crossings (not
// registered in an ecall table, not a Provision method) are callee-internal
// policy and must not trigger.
package cdneg

// T is a trusted component with internal state.
type T struct{ stash []byte }

// retain stores its argument, but its signature is not the handler shape.
func (t *T) retain(b []byte) {
	t.stash = b
}

// handle has the handler signature but is never registered in an ecall
// table; it does not cross the boundary.
func (t *T) handle(arg []byte) ([]byte, error) {
	t.stash = arg
	return nil, nil
}

// Provision without a secrets-map parameter is not the provisioning entry
// point.
func (t *T) Provision(b []byte) error {
	t.stash = b
	return nil
}

var _ = (&T{}).retain
var _ = (&T{}).handle
