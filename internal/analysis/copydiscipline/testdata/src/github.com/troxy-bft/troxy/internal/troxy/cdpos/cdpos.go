// Package cdpos must trigger copydiscipline: ecall handlers and a
// Provision method that leak boundary buffers by reference.
package cdpos

type handlers = map[string]func(arg []byte) ([]byte, error)

// T is a trusted component with internal state.
type T struct {
	stash []byte
	buf   []byte
}

// ECalls registers handlers with every flavor of violation plus one clean
// handler proving the sanctioned pattern passes.
func (t *T) ECalls() handlers {
	return handlers{
		"store": func(arg []byte) ([]byte, error) {
			t.stash = arg // want "stores the boundary buffer"
			return nil, nil
		},
		"store-alias": func(arg []byte) ([]byte, error) {
			p := arg[4:]
			t.stash = p // want "stores the boundary buffer"
			return nil, nil
		},
		"ret": func(arg []byte) ([]byte, error) {
			return arg, nil // want "returns the boundary buffer by reference"
		},
		"ret-slice": func(arg []byte) ([]byte, error) {
			return arg[1:], nil // want "returns the boundary buffer by reference"
		},
		"ret-internal": func(arg []byte) ([]byte, error) {
			return t.buf, nil // want "returns an enclave-internal buffer by reference"
		},
		"ok": func(arg []byte) ([]byte, error) {
			c := make([]byte, len(arg))
			copy(c, arg)
			t.stash = c
			out := make([]byte, 0, len(t.buf))
			out = append(out, t.buf...)
			return out, nil
		},
	}
}

var global []byte

// Register exercises the table-assignment registration form.
func Register(tbl handlers) {
	tbl["leak"] = func(arg []byte) ([]byte, error) {
		global = arg // want "stores the boundary buffer"
		return nil, nil
	}
}

// Provision is the post-attestation secret path; storing a map value by
// reference retains untrusted memory inside the enclave.
func (t *T) Provision(secrets map[string][]byte) error {
	t.stash = secrets["k"] // want "stores the boundary buffer"
	return nil
}
