// Package copydiscipline enforces the defensive-copy rule at the enclave
// boundary (paper Section V-A: argument buffers are copied when crossing
// into the enclave, results are copied out, and trusted code never retains
// references to untrusted memory).
//
// The analyzer identifies boundary functions inside the trusted packages:
//
//   - ecall handlers: function literals of type func([]byte) ([]byte, error)
//     registered in an ecall table (a map[string]func([]byte) ([]byte,
//     error) composite literal or assignment), and
//   - provisioning entry points: methods named Provision taking
//     map[string][]byte (the post-attestation secret delivery path).
//
// Within a boundary function, the buffer that crossed the boundary (the
// []byte argument, the secrets map, or any local alias of either) must not
//
//   - be stored into anything that outlives the call (a field, package
//     variable, or element of a non-local map/slice), nor
//   - be returned by reference (directly, re-sliced, or via append to the
//     crossing buffer), and handlers must not return enclave-internal
//     buffers (slice- or map-typed fields) by reference either.
//
// Passing the buffer onward to a callee is permitted: the discipline is
// compositional, and callees in trusted packages face the same analyzer.
// The tracking is intra-procedural and syntactic by design — it is a lint
// for a discipline the enclave runtime (internal/enclave.ECall) backstops
// with real copies, not an escape analysis.
package copydiscipline

import (
	"go/ast"
	"go/types"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// Analyzer is the copydiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "copydiscipline",
	Doc:  "buffers crossing the ecall boundary must be defensively copied before storage and never returned by reference from enclave-internal state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok || !analysis.Trusted(rel) {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isECallTable(pass, n) {
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Value.(*ast.FuncLit); ok {
							checkBoundaryFunc(pass, lit.Type, lit.Body, "ecall handler")
						}
					}
				}
			case *ast.AssignStmt:
				// table[name] = func(arg []byte) ([]byte, error) {...}
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					idx, ok := n.Lhs[i].(*ast.IndexExpr)
					if !ok {
						continue
					}
					if analysis.IsECallTableType(pass.TypesInfo.Types[idx.X].Type) {
						checkBoundaryFunc(pass, lit.Type, lit.Body, "ecall handler")
					}
				}
			case *ast.FuncDecl:
				if n.Name.Name == "Provision" && n.Recv != nil && isSecretsSig(pass, n.Type) {
					checkBoundaryFunc(pass, n.Type, n.Body, "provisioning entry point")
				}
			}
			return true
		})
	}
	return nil
}

// isECallTable reports whether lit is a composite literal of an ecall-table
// type (map[string]func([]byte) ([]byte, error)).
func isECallTable(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	return analysis.IsECallTableType(pass.TypesInfo.Types[lit].Type)
}

// isSecretsSig reports whether ft is func(map[string][]byte) error.
func isSecretsSig(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) != 1 {
		return false
	}
	t := pass.TypesInfo.Types[ft.Params.List[0].Type].Type
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	return analysis.IsByteSlice(m.Elem())
}

// checkBoundaryFunc verifies the copy discipline inside one boundary
// function: ft/body are its type and body, kind names it in diagnostics.
func checkBoundaryFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, kind string) {
	if body == nil || ft.Params == nil {
		return
	}
	// Seed the alias set with the boundary parameters (slice or map typed).
	aliases := make(map[types.Object]bool)
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			switch obj.Type().Underlying().(type) {
			case *types.Slice, *types.Map:
				aliases[obj] = true
			}
		}
	}
	if len(aliases) == 0 {
		return
	}

	// Forward pass: grow the alias set through local rebinding (q := p,
	// for k, v := range p) and report escaping stores and reference
	// returns.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !aliasExpr(pass, aliases, rhs) {
					continue
				}
				lhs := n.Lhs[i]
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					// Local rebinding extends the alias set; assignment to
					// a captured or package-level variable escapes.
					if obj := defOrUse(pass, id); obj != nil {
						if aliases[obj] || isLocalVar(obj, ft, body) {
							aliases[obj] = true
						} else {
							pass.Reportf(n.Pos(),
								"%s stores the boundary buffer into %s without a defensive copy", kind, id.Name)
						}
					}
					continue
				}
				pass.Reportf(n.Pos(),
					"%s stores the boundary buffer into %s without a defensive copy; the untrusted side retains a reference into trusted state", kind, exprString(lhs, pass, aliases))
			}
		case *ast.RangeStmt:
			// for k, v := range <alias>: the value (and, for maps of
			// slices, even the key) aliases boundary memory.
			if aliasExpr(pass, aliases, n.X) {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							switch obj.Type().Underlying().(type) {
							case *types.Slice, *types.Map:
								aliases[obj] = true
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if aliasExpr(pass, aliases, res) {
					pass.Reportf(res.Pos(),
						"%s returns the boundary buffer by reference; copy it (the caller may mutate or retain it)", kind)
					continue
				}
				if kind == "ecall handler" && isInternalBufferRef(pass, res, ft, body) {
					pass.Reportf(res.Pos(),
						"%s returns an enclave-internal buffer by reference; copy it before it crosses the boundary", kind)
				}
			}
		}
		return true
	})
}

// aliasExpr reports whether e syntactically aliases a tracked boundary
// buffer: the identifier itself, a paren/slice/index over it, or an append
// growing it in place.
func aliasExpr(pass *analysis.Pass, aliases map[types.Object]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && aliases[obj]
	case *ast.ParenExpr:
		return aliasExpr(pass, aliases, e.X)
	case *ast.SliceExpr:
		return aliasExpr(pass, aliases, e.X)
	case *ast.IndexExpr:
		// secrets["key"] aliases the stored value of a boundary map.
		return aliasExpr(pass, aliases, e.X)
	case *ast.CallExpr:
		// append(p, ...) may return p's backing array.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return aliasExpr(pass, aliases, e.Args[0])
			}
		}
	}
	return false
}

// defOrUse resolves an identifier whether it defines or uses a variable.
func defOrUse(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// isLocalVar reports whether obj is declared inside the boundary function
// (its signature or body), as opposed to a captured variable, receiver, or
// package-level variable.
func isLocalVar(obj types.Object, ft *ast.FuncType, body *ast.BlockStmt) bool {
	pos := obj.Pos()
	return pos >= ft.Pos() && pos <= body.End()
}

// isInternalBufferRef reports whether res is a selector chain (t.buf,
// t.core.buf) of slice or map type rooted outside the handler — i.e. an
// enclave-internal buffer escaping by reference.
func isInternalBufferRef(pass *analysis.Pass, res ast.Expr, ft *ast.FuncType, body *ast.BlockStmt) bool {
	sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.Types[res].Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return false
	}
	root := sel.X
	for {
		switch x := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			return obj != nil && !isLocalVar(obj, ft, body)
		default:
			return false
		}
	}
}

func exprString(e ast.Expr, pass *analysis.Pass, aliases map[types.Object]bool) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return "a field"
	case *ast.IndexExpr:
		if aliasExpr(pass, aliases, e.X) {
			return "the boundary container itself"
		}
		return "a map/slice element"
	case *ast.StarExpr:
		return "a pointee"
	}
	return "escaping state"
}
