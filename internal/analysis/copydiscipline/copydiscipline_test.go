package copydiscipline_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/copydiscipline"
)

func TestCopyDiscipline(t *testing.T) {
	analysistest.Run(t, copydiscipline.Analyzer,
		"github.com/troxy-bft/troxy/internal/troxy/cdpos",
		"github.com/troxy-bft/troxy/internal/troxy/cdneg",
	)
}
