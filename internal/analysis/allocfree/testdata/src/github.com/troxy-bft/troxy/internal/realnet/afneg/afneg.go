// Package afneg holds allocfree negative fixtures: hot paths that stay
// inside the vocabulary, cold failure blocks, and unannotated functions.
package afneg

import (
	"fmt"
	"net"
	"sync"

	"github.com/troxy-bft/troxy/internal/wire"
)

type Frame struct {
	Seq     uint64
	Payload []byte
}

type Ring struct {
	mu    sync.Mutex
	w     *wire.Writer
	conn  net.Conn
	slots [][]byte
}

// Flush encodes into the pooled writer and writes the frame out; the
// steady state allocates nothing, and the error exit is a cold block.
//
//troxy:hotpath
func (r *Ring) Flush(f *Frame) error {
	r.mu.Lock()
	r.w.Reset()
	r.w.U64(f.Seq)
	r.w.Bytes32(f.Payload)
	buf := r.w.Bytes()
	r.mu.Unlock()
	if _, err := r.conn.Write(buf); err != nil {
		return fmt.Errorf("flush seq %d: %w", f.Seq, err)
	}
	return nil
}

// Settle reuses a pre-allocated slot through an in-package helper.
//
//troxy:hotpath
func (r *Ring) Settle(i int, f *Frame) {
	r.store(i, f.Payload)
}

func (r *Ring) store(i int, p []byte) {
	r.slots[i] = p
}

// Rebuild is unannotated: off the hot path, free to allocate.
func (r *Ring) Rebuild(n int) {
	r.slots = make([][]byte, n)
}

// Scratch documents a reviewed pool escape with an allow.
//
//troxy:hotpath
func (r *Ring) Scratch() []byte {
	return make([]byte, 32) //lint:allow allocfree backed by a fixed per-ring micro-pool in production
}
