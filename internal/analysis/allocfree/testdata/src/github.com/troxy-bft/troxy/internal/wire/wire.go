// Package wire is a fixture stand-in for the real internal/wire surface:
// the allocfree vocabulary is keyed by this import path, so the fixtures
// exercise the clean-method whitelist against a package that resolves to
// the same path. Only the signatures matter.
package wire

// Writer mirrors the pooled append-based encoder.
type Writer struct{ buf []byte }

// GetWriter mirrors the pool acquisition (NOT allocation-free: a pool miss
// allocates).
func GetWriter() *Writer { return &Writer{} }

// PutWriter returns a writer to the pool.
func PutWriter(w *Writer) {}

// U32 appends a fixed-width integer.
func (w *Writer) U32(v uint32) {}

// U64 appends a fixed-width integer.
func (w *Writer) U64(v uint64) {}

// Bytes32 appends a length-prefixed byte slice.
func (w *Writer) Bytes32(b []byte) {}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates for reuse.
func (w *Writer) Reset() {}
