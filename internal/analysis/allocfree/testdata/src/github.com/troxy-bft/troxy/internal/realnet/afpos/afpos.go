// Package afpos holds allocfree positive fixtures: annotated hot paths
// that allocate, spawn, or escape certification.
package afpos

import (
	"fmt"

	"github.com/troxy-bft/troxy/internal/wire"
)

type Frame struct {
	Seq     uint64
	Payload []byte
}

type Ring struct {
	slots []Frame
	w     *wire.Writer
}

// Push stages one frame.
//
//troxy:hotpath
func (r *Ring) Push(f Frame) {
	buf := make([]byte, 64) // want "allocation on hot path \\(Push\\)"
	_ = buf
	r.stage(f)
}

// stage is reached from Push; its violation carries the call path.
func (r *Ring) stage(f Frame) {
	s := string(f.Payload) // want "allocation on hot path \\(Push → stage\\)"
	_ = s
}

// Drain walks the staged frames.
//
//troxy:hotpath
func (r *Ring) Drain(visit func(*Frame)) {
	visit(&r.slots[0]) // want "unresolvable call on hot path \\(Drain\\)"
	go r.compact()     // want "goroutine spawn on hot path \\(Drain\\)"
}

func (r *Ring) compact() {}

// Acquire takes a writer from the pool — the miss path allocates, so the
// acquisition itself is outside the vocabulary.
//
//troxy:hotpath
func (r *Ring) Acquire() {
	r.w = wire.GetWriter() // want "call to wire.GetWriter on hot path \\(Acquire\\): outside the allocation-free vocabulary"
}

// Describe formats on the happy path — fmt is not certifiable.
//
//troxy:hotpath
func (r *Ring) Describe(f *Frame) string {
	return fmt.Sprintf("frame %d", f.Seq) // want "call to fmt.Sprintf on hot path \\(Describe\\)"
}
