package allocfree_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/allocfree"
	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer,
		"github.com/troxy-bft/troxy/internal/realnet/afpos",
		"github.com/troxy-bft/troxy/internal/realnet/afneg",
	)
}
