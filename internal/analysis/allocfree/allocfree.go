// Package allocfree is the static half of the zero-allocation gate
// (DESIGN.md §9.6): functions annotated `//troxy:hotpath` in their doc
// comment — the envelope encode path, the realnet send-ring drain, the
// securechannel seal loop — are certified transitively allocation-free, so
// the 0 allocs/op claim the benchmarks gate (make bench-quick) holds by
// construction instead of by whichever inputs the benchmark happened to
// exercise.
//
// From each annotated root the analyzer walks the package call graph
// (internal/analysis/interproc) breadth-first and reports, with the
// shortest call path from the root in the message:
//
//   - every heap-allocation site (interproc.AllocSite: make/new, slice and
//     map literals, &composite escapes, append, string conversions and
//     concatenation, closures) outside a cold failure block;
//   - goroutine spawns — a spawn allocates a stack, and the spawned work
//     is off the hot path by definition;
//   - calls through func values and dynamic interface calls, which the
//     graph cannot resolve and so cannot certify;
//   - calls into other packages not in the allocation-free vocabulary
//     below.
//
// Cold failure blocks (a nested block ending in panic or in a return
// carrying a constructed error — interproc.ColdRegions) are exempt: the
// benchmark gate measures the steady state, and error exits may allocate
// their diagnostics.
//
// The cross-package vocabulary is deliberately small and explicit:
// internal/wire's append-path Writer methods and PutWriter (amortized
// zero — the writer is pooled and pre-sized; GetWriter is NOT clean, a
// pool miss allocates, so the acquisition site carries the allow, not the
// steady-state encode calls), encoding/binary, sync lock/unlock,
// sync/atomic, math/bits, runtime.Gosched, and the net syscall surface
// (Conn Read/Write/vectored WriteTo/deadlines — kernel-boundary calls the
// allocator never sees). Anything else — fmt, errors, log, crypto —
// either allocates or cannot be audited here, and needs a reviewed
// //lint:allow allocfree naming the pool or the amortization argument.
package allocfree

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
	"github.com/troxy-bft/troxy/internal/analysis/interproc"
)

// Analyzer is the allocfree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "//troxy:hotpath functions must be transitively allocation-free outside cold failure blocks",
	Run:  run,
}

// hotPathMarker is the doc-comment annotation that roots the analysis.
const hotPathMarker = "troxy:hotpath"

// cleanWire is the allocation-free surface of internal/wire: the pooled
// Writer's append-path methods. GetWriter is excluded — a pool miss
// allocates a fresh writer, so the acquisition site documents itself with
// an allow.
var cleanWire = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true, "I64": true,
	"Bool": true, "Bytes32": true, "String": true, "Raw": true,
	"BeginFrame": true, "EndFrame": true, "Len": true, "Bytes": true,
	"Reset": true, "CopyBytes": true, "PutWriter": true,
}

// cleanNet is the syscall surface of net.Conn and friends: kernel-boundary
// calls that do not touch the Go allocator.
var cleanNet = map[string]bool{
	"Read": true, "Write": true, "WriteTo": true, "Close": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// cleanSync is the lock surface of sync; Pool.Get/Put are absent — Get
// allocates through New on a miss.
var cleanSync = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true, "TryLock": true,
}

func run(pass *analysis.Pass) error {
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && isHotPath(fd) {
				roots = append(roots, fd)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	g := interproc.Build(pass.Files, pass.TypesInfo, pass.Pkg, nil)

	// Breadth-first from the roots: the first path to reach a function is
	// a shortest one, and each function is certified once.
	type visit struct {
		node *interproc.Node
		path string
	}
	var queue []visit
	seen := make(map[*interproc.Node]bool)
	for _, fd := range roots {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if node := g.Lookup(fn); node != nil && !seen[node] {
			seen[node] = true
			queue = append(queue, visit{node, fd.Name.Name})
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, callee := range checkBody(pass, g, v.node, v.path) {
			if !seen[callee] {
				seen[callee] = true
				queue = append(queue, visit{callee, v.path + " → " + callee.Fn.Name()})
			}
		}
	}
	return nil
}

// isHotPath reports whether fd's doc comment carries the hotpath marker.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, hotPathMarker) {
			return true
		}
	}
	return false
}

// checkBody reports every allocation obligation in one function reached
// via path and returns the in-package callees to certify next.
func checkBody(pass *analysis.Pass, g *interproc.Graph, n *interproc.Node, path string) []*interproc.Node {
	info := pass.TypesInfo
	cold := interproc.ColdRegions(info, n.Decl.Body)
	var callees []*interproc.Node

	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if cold[node] {
			return false // error exits may allocate their diagnostics
		}
		if desc, ok := interproc.AllocSite(info, node); ok {
			pass.Reportf(node.Pos(), "allocation on hot path (%s): %s", path, desc)
			// A closure's body runs elsewhere; reporting its creation is
			// the whole finding.
			if _, isLit := node.(*ast.FuncLit); isLit {
				return false
			}
		}
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "goroutine spawn on hot path (%s): a spawn allocates its stack and the work leaves the hot path", path)
			return false
		case *ast.CallExpr:
			if callee := checkCall(pass, g, x, path); callee != nil {
				callees = append(callees, callee)
			}
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
	return callees
}

// checkCall certifies one call site: in-package callees are returned for
// traversal, out-of-package callees must be in the clean vocabulary, and
// unresolvable calls are reported outright.
func checkCall(pass *analysis.Pass, g *interproc.Graph, call *ast.CallExpr, path string) *interproc.Node {
	info := pass.TypesInfo
	// Conversions and builtins are covered by AllocSite (string
	// conversions, make/new/append); the rest of them are free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return nil
		}
	}
	fn := interproc.CalleeFunc(info, call)
	if fn == nil {
		pass.Reportf(call.Pos(), "unresolvable call on hot path (%s): a func-value target cannot be certified allocation-free", path)
		return nil
	}
	if node := g.Lookup(fn); node != nil {
		return node
	}
	if fn.Pkg() == pass.Pkg {
		// Declared in this package but absent from the graph: a dynamic
		// interface method — the concrete target is unknowable here.
		pass.Reportf(call.Pos(), "dynamic interface call %s on hot path (%s): the concrete target cannot be certified allocation-free", fn.Name(), path)
		return nil
	}
	if !cleanCallee(fn) {
		pass.Reportf(call.Pos(), "call to %s on hot path (%s): outside the allocation-free vocabulary", calleeLabel(fn), path)
	}
	return nil
}

// cleanCallee reports whether an out-of-package callee is in the
// allocation-free vocabulary.
func cleanCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error and friends from the universe scope
	}
	switch pkg.Path() {
	case analysis.ModulePath + "/internal/wire":
		return cleanWire[fn.Name()]
	case "encoding/binary", "sync/atomic", "math/bits":
		return true
	case "sync":
		return cleanSync[fn.Name()]
	case "runtime":
		return fn.Name() == "Gosched"
	case "net":
		return cleanNet[fn.Name()]
	}
	return false
}

// calleeLabel renders pkg.Func or pkg.Type.Method for diagnostics.
func calleeLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
