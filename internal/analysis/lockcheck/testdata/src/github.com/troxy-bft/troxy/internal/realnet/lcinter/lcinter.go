// Package lcinter must trigger lockcheck's inter-procedural cases: every
// blocking operation here hides behind at least one same-package call, so
// the intra-procedural engine (which saw only direct operations) provably
// missed all of them. Reports land at the call site inside the lock scope —
// the line a //lint:allow would have to cover.
package lcinter

import (
	"net"
	"sync"

	"github.com/troxy-bft/troxy/internal/wire"
)

// G is a gateway-shaped component: a lock, a conn, a channel.
type G struct {
	mu   sync.Mutex
	conn net.Conn
	ch   chan int
	n    int
}

// flushAll wraps the frame write — the helper-laundered I/O shape.
func (g *G) flushAll(p []byte) {
	wire.WriteFrame(g.conn, p)
}

func (g *G) lockedFlush(p []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flushAll(p) // want "call to flushAll \\(transitively: socket/frame I/O"
}

// flushDeep adds a second hop; the diagnostic traces the chain.
func (g *G) flushDeep(p []byte) {
	g.flushAll(p)
}

func (g *G) lockedDeepFlush(p []byte) {
	g.mu.Lock()
	g.flushDeep(p) // want "call to flushDeep \\(transitively: socket/frame I/O, via flushAll"
	g.mu.Unlock()
}

// notify blocks on the channel.
func (g *G) notify() {
	g.ch <- 1
}

func (g *G) lockedNotify() {
	g.mu.Lock()
	g.notify() // want "call to notify \\(transitively: channel send"
	g.mu.Unlock()
}

// drainA / drainB are mutually recursive; the send effect only reaches
// drainA through the SCC fixpoint.
func (g *G) drainA(n int) {
	if n > 0 {
		g.drainB(n - 1)
	}
}

func (g *G) drainB(n int) {
	g.ch <- n
	g.drainA(n)
}

func (g *G) lockedDrain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.drainA(3) // want "call to drainA \\(transitively: channel send"
}

// bumpLocked takes the receiver lock; bumpViaHelper launders the acquire
// through a second method. The transitive receiver-lock summary still sees
// it.
func (g *G) bumpLocked() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *G) bumpViaHelper() {
	g.bumpLocked()
}

func (g *G) lockedBump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bumpViaHelper() // want "call to g.bumpViaHelper re-acquires g.mu already held here; self-deadlock"
}
