// Package lcpos must trigger lockcheck: every deadlock- and leak-shaped
// pattern the analyzer rejects.
package lcpos

import (
	"net"
	"sync"

	"github.com/troxy-bft/troxy/internal/enclave"
	"github.com/troxy-bft/troxy/internal/wire"
)

// B is a bridge-shaped component with a lock, a channel, and a conn.
type B struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn net.Conn
	enc  *enclave.Enclave
	n    int
}

func (b *B) sendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while holding b.mu"
	b.mu.Unlock()
}

func (b *B) connWriteUnderLock(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.conn.Write(p) // want "net Write call while holding b.mu"
}

func (b *B) frameUnderLock(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wire.WriteFrame(b.conn, p) // want "frame I/O \\(wire.WriteFrame\\) while holding b.mu"
}

func (b *B) ecallUnderLock(arg []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.enc.ECall("op", arg) // want "ecall transition while holding b.mu"
}

func (b *B) unlockUnheld() {
	b.n++
	b.mu.Unlock() // want "Unlock of b.mu which is not held"
}

func (b *B) leakOnEarlyReturn(cond bool) int {
	b.mu.Lock()
	if cond {
		return 0 // want "return while still holding b.mu with no deferred unlock"
	}
	n := b.n
	b.mu.Unlock()
	return n
}

func (b *B) doubleLock() {
	b.mu.Lock()
	b.mu.Lock() // want "Lock of b.mu while already holding it; self-deadlock"
	b.mu.Unlock()
}

// bump locks the receiver; calling it with the lock held self-deadlocks.
func (b *B) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *B) callLockingMethod() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump() // want "call to b.bump re-acquires b.mu already held here; self-deadlock"
}

// readCount takes the read lock; a write acquire under it still deadlocks.
func (b *B) readCount() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

func (b *B) writeUnderRead() {
	b.rw.RLock()
	defer b.rw.RUnlock()
	b.rw.Lock() // want "Lock of b.rw while already holding it; self-deadlock"
	b.rw.Unlock()
}
