// Package lcinterneg must stay silent: each helper call under a lock is one
// the transitive-effect summaries must NOT flag — non-blocking sends,
// go-spawned work, function-literal bodies, and pure computation.
package lcinterneg

import (
	"net"
	"sync"

	"github.com/troxy-bft/troxy/internal/wire"
)

type G struct {
	mu   sync.Mutex
	conn net.Conn
	ch   chan int
	done chan struct{}
	n    int
}

// tryNotify's send sits in a select with a default arm: non-blocking by
// construction, so the helper has no send effect.
func (g *G) tryNotify() {
	select {
	case g.ch <- 1:
	default:
	}
}

func (g *G) lockedTryNotify() {
	g.mu.Lock()
	g.tryNotify()
	g.mu.Unlock()
}

// flush performs real I/O...
func (g *G) flush(p []byte) {
	wire.WriteFrame(g.conn, p)
}

// ...but spawnFlush only spawns it: the go statement cannot block the
// spawner, so no effect propagates across the edge.
func (g *G) spawnFlush(p []byte) {
	go g.flush(p)
}

func (g *G) lockedSpawn(p []byte) {
	g.mu.Lock()
	g.spawnFlush(p)
	g.mu.Unlock()
}

// deferredWork's send lives inside a function literal it returns; the
// literal runs in whoever invokes it, not in deferredWork.
func (g *G) deferredWork() func() {
	return func() {
		g.ch <- 1
	}
}

func (g *G) lockedMakeWork() {
	g.mu.Lock()
	_ = g.deferredWork()
	g.mu.Unlock()
}

// tally is pure computation; helpers without effects stay callable under
// the lock.
func (g *G) tally(n int) int {
	return g.n + n
}

func (g *G) lockedTally() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tally(1)
}

// bumpOther locks a *different* receiver's mutex: no self-deadlock on g.
func (g *G) bumpOther(o *G) {
	o.mu.Lock()
	o.n++
	o.mu.Unlock()
}

func (g *G) lockedBumpOther(o *G) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bumpOther(o)
}
