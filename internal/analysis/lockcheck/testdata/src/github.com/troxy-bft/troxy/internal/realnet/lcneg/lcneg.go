// Package lcneg must stay clean under lockcheck: the sanctioned locking
// patterns.
package lcneg

import (
	"net"
	"sync"

	"github.com/troxy-bft/troxy/internal/wire"
)

// B mirrors the bridge shape of lcpos.
type B struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn net.Conn
	n    int
}

// deferUnlock is the standard pattern: defer covers every return path.
func (b *B) deferUnlock(cond bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cond {
		return 0
	}
	return b.n
}

// manualUnlockEveryPath releases on both paths before returning.
func (b *B) manualUnlockEveryPath(cond bool) int {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return 0
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// sendAfterUnlock moves the blocking operation outside the critical section.
func (b *B) sendAfterUnlock() {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	b.ch <- n
}

// nonBlockingSendUnderLock is exempt: a select with a default arm cannot
// block on the send.
func (b *B) nonBlockingSendUnderLock() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- b.n:
		return true
	default:
		return false
	}
}

// writeAfterSnapshot copies under the lock and does I/O outside it.
func (b *B) writeAfterSnapshot(p []byte) error {
	b.mu.Lock()
	buf := make([]byte, len(p))
	copy(buf, p)
	b.mu.Unlock()
	if _, err := b.conn.Write(buf); err != nil {
		return err
	}
	return wire.WriteFrame(b.conn, buf)
}

// bump locks the receiver; callers below release before calling it.
func (b *B) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *B) callAfterUnlock() {
	b.mu.Lock()
	b.n = 0
	b.mu.Unlock()
	b.bump()
}

// readers may stack: an RLock-taking helper under a held RLock is fine.
func (b *B) readCount() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

func (b *B) sumUnderRead() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n + 1
}

// nestedRead calls an RLock-taking helper under a held read lock — accepted
// (deadlock-prone only with a pending writer; see package doc).
func (b *B) nestedRead() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n + b.readCount()
}

// distinctLocks: holding mu while taking rw is not a self-deadlock.
func (b *B) distinctLocks() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rw.Lock()
	b.n++
	b.rw.Unlock()
}
