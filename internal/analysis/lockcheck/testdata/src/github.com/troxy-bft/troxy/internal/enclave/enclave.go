// Package enclave is a fixture mirror of the real internal/enclave surface:
// just the ECall entry point, so the lockcheck ecall-transition sink can
// resolve the callee by package path.
package enclave

type Enclave struct{}

func (e *Enclave) ECall(name string, arg []byte) ([]byte, error) { return nil, nil }
