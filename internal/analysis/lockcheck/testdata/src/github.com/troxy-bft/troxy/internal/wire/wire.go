// Package wire is a fixture mirror of the real internal/wire surface: just
// enough of the Writer API for the secretflow wire-encoder sink to resolve
// callees by package path.
package wire

import "io"

type Writer struct{ buf []byte }

func (w *Writer) U32(v uint32)      {}
func (w *Writer) Bytes32(b []byte)  {}
func (w *Writer) String(s string)   {}
func (w *Writer) Raw(b []byte)      {}
func (w *Writer) Bytes() []byte     { return w.buf }
func WriteFrame(dst io.Writer, payload []byte) error { return nil }
