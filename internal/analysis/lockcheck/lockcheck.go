// Package lockcheck enforces mutex discipline in the packages the pipelined
// ordering core made concurrent (tcounter, realnet, securechannel,
// faultplane): the race detector only catches schedules a test happens to
// run; lockcheck rejects the deadlock- and leak-shaped patterns statically.
//
// Tracking is per function, on the dataflow engine: acquiring sync.Mutex /
// sync.RWMutex locks adds a held-lock fact (keyed by the lock expression's
// root variable and selector path, so c.mu and d.mu are distinct), releasing
// removes it. Within one function the analyzer reports:
//
//   - a blocking operation while holding a lock: a channel send (unless in
//     a select with a default arm — non-blocking by construction), a
//     net.Conn method call or net.Buffers vectored write, frame I/O
//     (internal/wire ReadFrame/WriteFrame), or an ecall transition
//     (internal/enclave ECall) — each can block indefinitely on a peer
//     while every other goroutine piles up on the held lock;
//   - a call into a same-package function whose *transitive* may-effect
//     summary (internal/analysis/interproc: call graph + bottom-up SCC
//     fixpoint) includes a blocking channel send, socket/frame I/O, or an
//     ecall — closing the helper-function blind spot: wrapping
//     wire.WriteFrame in flushAll() no longer hides it from the lock scope;
//   - a call back into a same-package function that acquires a lock this
//     function already holds (the self-deadlock shape), using the
//     inter-procedural receiver-lock summaries, which propagate through
//     same-receiver helper chains;
//   - Unlock/RUnlock of a lock not held on any path reaching it;
//   - a return while a manually-managed lock is still held: an early return
//     that skips the unlock leaks the lock; locks covered by a defer'd
//     unlock anywhere in the function are exempt.
//
// Known limits, by design: the summaries stop at the package boundary — a
// helper that locks in one function and unlocks in another (a lock handoff)
// is reported at the return and needs a //lint:allow with its protocol
// documented; reports for transitive effects are placed at the call site
// inside the lock scope (the natural allow position). Calls through func
// values and interface implementations outside the package are invisible to
// the summaries. sync.Locker values passed as interfaces are not tracked;
// RLock/RLock recursion (deadlock-prone only with a pending writer) is
// accepted.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
	"github.com/troxy-bft/troxy/internal/analysis/dataflow"
	"github.com/troxy-bft/troxy/internal/analysis/interproc"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "locks must not be held across blocking operations, re-acquired through same-package calls, released unheld, or leaked past a return",
	Run:  run,
}

// lockKey identifies one lock within a function: the root variable object,
// the selector path from it to the mutex, and the read/write mode.
type lockKey struct {
	root types.Object
	path string
	read bool
}

func (k lockKey) display() string {
	mode := ""
	if k.read {
		mode = " (read)"
	}
	return k.root.Name() + k.path + mode
}

func run(pass *analysis.Pass) error {
	if _, ok := analysis.RelPath(pass.Path()); !ok {
		return nil
	}

	graph := interproc.Build(pass.Files, pass.TypesInfo, pass.Pkg, nil)
	nonBlocking := collectNonBlockingSends(pass)

	for _, f := range pass.Files {
		for _, fn := range functions(f) {
			checkFunc(pass, fn, graph, nonBlocking)
		}
	}
	return nil
}

// fnInfo is one function to analyze: its body plus the declaration (nil for
// package-level literals).
type fnInfo struct {
	body *ast.BlockStmt
}

func functions(f *ast.File) []fnInfo {
	var out []fnInfo
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				out = append(out, fnInfo{body: d.Body})
			}
		case *ast.GenDecl:
			ast.Inspect(d, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, fnInfo{body: lit.Body})
					return false
				}
				return true
			})
		}
	}
	return out
}

func checkFunc(pass *analysis.Pass, fn fnInfo, graph *interproc.Graph, nonBlocking map[ast.Node]bool) {
	deferred := collectDeferredUnlocks(pass, fn.body)

	h := &dataflow.Hooks{
		Info: pass.TypesInfo,
		TransferCall: func(call *ast.CallExpr, info dataflow.CallInfo, st *dataflow.State) bool {
			sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if key, op, ok := lockOp(pass, call); ok {
				switch op {
				case "Lock", "RLock":
					if info.Deferred {
						return false
					}
					write := lockKey{key.root, key.path, false}
					read := lockKey{key.root, key.path, true}
					if st.Has(write) || (op == "Lock" && st.Has(read)) {
						if info.Reporting {
							pass.Reportf(call.Pos(),
								"%s of %s while already holding it; self-deadlock", op, key.root.Name()+key.path)
						}
					}
					// Record the acquire even after a double-lock report so the
					// paired release below doesn't cascade a second diagnostic.
					key.read = op == "RLock"
					st.Add(key)
				case "Unlock", "RUnlock":
					key.read = op == "RUnlock"
					if info.Deferred {
						// Runs at return; checked via the deferred-unlock set.
						return false
					}
					if !st.Has(key) {
						if info.Reporting {
							pass.Reportf(call.Pos(),
								"%s of %s which is not held on this path", op, key.root.Name()+key.path)
						}
						return false
					}
					st.Kill(key)
				}
				return false
			}

			if st.Len() == 0 || info.Deferred {
				return false
			}
			if why := blockingCall(pass, call, sel); why != "" {
				if info.Reporting {
					pass.Reportf(call.Pos(),
						"%s while holding %s; a stalled peer blocks every goroutine contending for the lock", why, heldList(st))
				}
				return false
			}
			if reportTransitiveEffect(pass, call, st, graph, info.Reporting) {
				return false
			}
			reportSelfDeadlock(pass, call, sel, st, graph, info.Reporting)
			return false
		},
		OnNode: func(n ast.Node, st *dataflow.State, deferredCall bool) {
			send, ok := n.(*ast.SendStmt)
			if !ok || st.Len() == 0 || nonBlocking[send] {
				return
			}
			pass.Reportf(send.Pos(),
				"channel send while holding %s; a blocked receiver blocks every goroutine contending for the lock", heldList(st))
		},
		OnReturn: func(ret *ast.ReturnStmt, _ []bool, st *dataflow.State) {
			var leaked []string
			st.Each(func(f dataflow.Fact) {
				k := f.(lockKey)
				if !deferred[k] {
					leaked = append(leaked, k.display())
				}
			})
			if len(leaked) == 0 {
				return
			}
			sort.Strings(leaked)
			pass.Reportf(ret.Pos(),
				"return while still holding %s with no deferred unlock; an early return leaks the lock", strings.Join(leaked, ", "))
		},
	}
	dataflow.Run(h, fn.body)
}

// lockOp recognizes a mutex method call and returns the lock key and the
// operation name.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	if !isMutexType(pass.TypesInfo.Types[sel.X].Type) {
		return lockKey{}, "", false
	}
	key, ok := keyOf(pass, sel.X)
	if !ok {
		return lockKey{}, "", false
	}
	return key, op, true
}

// keyOf splits a lock expression into its root object and selector path
// (c.state.mu -> root c, path ".state.mu").
func keyOf(pass *analysis.Pass, e ast.Expr) (lockKey, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return lockKey{}, false
			}
			path := ""
			for i := len(parts) - 1; i >= 0; i-- {
				path += "." + parts[i]
			}
			return lockKey{root: obj, path: path}, true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return lockKey{}, false
		}
	}
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// blockingCall classifies call as a blocking operation, returning a short
// description or "".
func blockingCall(pass *analysis.Pass, call *ast.CallExpr, sel *ast.SelectorExpr) string {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := analysis.NormalizePath(fn.Pkg().Path())
	switch path {
	case "net":
		// Interface method calls on net.Conn and friends resolve to package
		// net; only flag the potentially-blocking operations.
		switch fn.Name() {
		case "Read", "Write", "Accept", "Close":
			return fmt.Sprintf("net %s call", fn.Name())
		case "WriteTo":
			// net.Buffers.WriteTo: the vectored write behind the ring
			// transport's flush path.
			return "net vectored write (Buffers.WriteTo)"
		}
		return ""
	case analysis.ModulePath + "/internal/wire":
		if fn.Name() == "ReadFrame" || fn.Name() == "WriteFrame" {
			return fmt.Sprintf("frame I/O (wire.%s)", fn.Name())
		}
		return ""
	case analysis.ModulePath + "/internal/enclave":
		if fn.Name() == "ECall" {
			return "ecall transition"
		}
		return ""
	}
	// Concrete Conn types: a Read/Write/Close method on a value that also
	// implements net.Conn's shape is treated as conn I/O.
	if sel != nil && isConnLike(pass, sel.X) {
		switch fn.Name() {
		case "Read", "Write", "Close":
			return fmt.Sprintf("conn %s call", fn.Name())
		}
	}
	return ""
}

// isConnLike reports whether e's type has the net.Conn core methods
// (Read/Write/Close plus deadlines), without needing the net package loaded.
func isConnLike(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	need := map[string]bool{"Read": false, "Write": false, "Close": false, "SetDeadline": false}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		if _, ok := need[name]; ok {
			need[name] = true
		}
	}
	for _, have := range need {
		if !have {
			return false
		}
	}
	return true
}

// reportTransitiveEffect flags a call into a same-package function whose
// transitive summary includes a blocking effect, while a lock is held. The
// report is placed at the call site — the line a //lint:allow must cover —
// with the call path to the operation in the message. Reports whether a
// diagnostic applies at this call.
func reportTransitiveEffect(pass *analysis.Pass, call *ast.CallExpr, st *dataflow.State, graph *interproc.Graph, reporting bool) bool {
	node := graph.Lookup(interproc.CalleeFunc(pass.TypesInfo, call))
	if node == nil || node.Sum.Effects&interproc.EffectBlocking == 0 {
		return false
	}
	if reporting {
		bit := interproc.EffectSend
		for _, b := range []interproc.Effect{interproc.EffectIO, interproc.EffectECall, interproc.EffectSend} {
			if node.Sum.Effects&b != 0 {
				bit = b
				break
			}
		}
		pass.Reportf(call.Pos(),
			"call to %s (transitively: %s, via %s) while holding %s; a stalled peer blocks every goroutine contending for the lock",
			node.Fn.Name(), bit, node.EffectTrace(bit), heldList(st))
	}
	return true
}

// reportSelfDeadlock flags a call to a same-package method that acquires —
// directly or through same-receiver helper calls — a receiver lock the
// caller already holds on the same object.
func reportSelfDeadlock(pass *analysis.Pass, call *ast.CallExpr, sel *ast.SelectorExpr, st *dataflow.State, graph *interproc.Graph, reporting bool) {
	if sel == nil || !reporting {
		return
	}
	node := graph.Lookup(callee(pass, call))
	if node == nil || len(node.Sum.RecvLocks) == 0 {
		return
	}
	root, ok := keyOf(pass, sel.X)
	if !ok {
		return
	}
	for _, l := range node.Sum.RecvLocks {
		held := lockKey{root.root, l.Path, false}
		heldR := lockKey{root.root, l.Path, true}
		// Write acquire conflicts with anything held; read acquire conflicts
		// with a held write lock.
		if st.Has(held) || (!l.Read && st.Has(heldR)) {
			pass.Reportf(call.Pos(),
				"call to %s.%s re-acquires %s already held here; self-deadlock", root.root.Name(), node.Fn.Name(), root.root.Name()+l.Path)
			return
		}
	}
}

// collectDeferredUnlocks gathers the locks released by defer statements
// anywhere in body: those are legitimately still held at return.
func collectDeferredUnlocks(pass *analysis.Pass, body *ast.BlockStmt) map[lockKey]bool {
	out := make(map[lockKey]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		key, op, ok := lockOp(pass, d.Call)
		if !ok {
			return true
		}
		switch op {
		case "Unlock":
			out[lockKey{key.root, key.path, false}] = true
		case "RUnlock":
			out[lockKey{key.root, key.path, true}] = true
		}
		return true
	})
	return out
}

// collectNonBlockingSends returns the send statements that are comm clauses
// of a select containing a default arm: non-blocking by construction.
func collectNonBlockingSends(pass *analysis.Pass) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, cl := range sel.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, cl := range sel.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
					out[comm.Comm] = true
				}
			}
			return true
		})
	}
	return out
}

func heldList(st *dataflow.State) string {
	var names []string
	st.Each(func(f dataflow.Fact) {
		names = append(names, f.(lockKey).display())
	})
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
