package lockcheck_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer,
		"github.com/troxy-bft/troxy/internal/realnet/lcpos",
		"github.com/troxy-bft/troxy/internal/realnet/lcneg",
		"github.com/troxy-bft/troxy/internal/realnet/lcinter",
		"github.com/troxy-bft/troxy/internal/realnet/lcinterneg",
	)
}
