// Package dataflow is the intra-procedural dataflow engine underneath the
// secretflow and lockcheck analyzers. It performs a forward abstract
// interpretation of one function body over go/ast + go/types (standard
// library only, like the rest of the analysis framework):
//
//   - the abstract state is a set of facts (comparable keys: tainted
//     variables for secretflow, held locks for lockcheck);
//   - assignments propagate expression-level taint and kill facts on
//     overwrite; stores through selectors, indexes, and pointers are weak
//     updates (the container is tainted, nothing is killed);
//   - branches (if/switch/type switch/select) fork the state and join with
//     set union; paths that end in return/break/continue do not flow into
//     the join;
//   - alongside the may-facts, the state carries path-sensitive conditional
//     must-facts (VerifiedFact, BoundedFact) that join with set
//     INTERSECTION: branch refinement on verify guards and integer bound
//     guards establishes them on one side of an if, and a merge with a path
//     that lacks the guard kills them (see Hooks.Validates / Hooks.Bound);
//   - loops (for/range) iterate to a fixpoint: the loop-entry state is
//     joined with the back-edge state until it stabilizes, which terminates
//     because facts only accumulate under union;
//   - function literals are analyzed separately with a fresh state (a
//     goroutine or deferred closure does not inherit the spawner's locks,
//     and captured secrets are re-seeded by the Source hook).
//
// Analyzers customize the walk through Hooks: Source seeds taint on
// expressions, TransferCall applies call effects (lock/unlock, derivation
// functions) and decides result taint, and OnNode observes every statement
// and call with the state in execution order. OnNode fires only during the
// report pass — loop fixpoint iterations run silently, then the body is
// walked once more with the stabilized entry state — so an analyzer may
// report at a node without seeing the same node twice per loop level.
//
// Known limits, by design (the engine is intra-procedural): taint does not
// flow through calls unless TransferCall says so, error-typed results are
// never tainted (errors are built for display; deriving a secret from one
// is out of model), goto is ignored, and a callee mutating memory through a
// pointer argument is invisible.
package dataflow

import (
	"go/ast"
	"go/types"
)

// A Fact is one element of the abstract state. Keys must be comparable;
// analyzers choose their own fact type (types.Object for taint, a
// struct-valued lock key for lockcheck).
type Fact any

// VerifiedFact is the conditional must-fact "Obj passed a successful
// verification on every path reaching here". It is established by branch
// refinement on verify guards (see Hooks.Validates) and killed when Obj is
// reassigned or mutated through a selector/index store.
type VerifiedFact struct{ Obj types.Object }

// BoundedFact is the conditional must-fact "Obj compared no greater than
// the named bound constant on every path reaching here". Established by
// branch refinement on integer comparison guards (see Hooks.Bound), killed
// on reassignment or mutation of Obj.
type BoundedFact struct {
	Obj   types.Object
	Bound string
}

// State is a set of facts plus a reachability flag. The zero State is not
// usable; construct with NewState.
//
// The state holds two kinds of facts with opposite join semantics: the
// original may-facts (taint, held locks — union at joins, a fact survives
// if ANY incoming path carries it) and conditional must-facts
// (VerifiedFact, BoundedFact — intersection at joins, a fact survives only
// if EVERY incoming path established it; a branch that skipped the verify
// kills the fact at the merge point).
type State struct {
	facts map[Fact]bool
	must  map[Fact]bool
	dead  bool // the path ending here cannot continue (return/break/...)
}

// NewState returns an empty, live state.
func NewState() *State {
	return &State{facts: make(map[Fact]bool), must: make(map[Fact]bool)}
}

func deadState() *State {
	return &State{facts: make(map[Fact]bool), must: make(map[Fact]bool), dead: true}
}

// Has reports whether f is in the state.
func (s *State) Has(f Fact) bool { return s.facts[f] }

// Add inserts f.
func (s *State) Add(f Fact) { s.facts[f] = true }

// Kill removes f.
func (s *State) Kill(f Fact) { delete(s.facts, f) }

// Len returns the number of facts held.
func (s *State) Len() int { return len(s.facts) }

// Each calls fn for every fact in the state (iteration order is undefined;
// analyzers sort their rendered diagnostics).
func (s *State) Each(fn func(Fact)) {
	for f := range s.facts {
		fn(f)
	}
}

// AddMust inserts the conditional must-fact f.
func (s *State) AddMust(f Fact) { s.must[f] = true }

// HasMust reports whether the must-fact f holds on every path reaching here.
func (s *State) HasMust(f Fact) bool { return s.must[f] }

// KillMust removes the must-fact f.
func (s *State) KillMust(f Fact) { delete(s.must, f) }

// Verified reports whether obj carries a VerifiedFact.
func (s *State) Verified(obj types.Object) bool { return s.must[VerifiedFact{Obj: obj}] }

// BoundOf returns the name of a bound constant obj is dominated by, if any.
func (s *State) BoundOf(obj types.Object) (string, bool) {
	for f := range s.must {
		if b, ok := f.(BoundedFact); ok && b.Obj == obj {
			return b.Bound, true
		}
	}
	return "", false
}

// killMustObj removes every must-fact about obj: a reassignment or mutation
// invalidates both verification and bounds.
func (s *State) killMustObj(obj types.Object) {
	for f := range s.must {
		switch x := f.(type) {
		case VerifiedFact:
			if x.Obj == obj {
				delete(s.must, f)
			}
		case BoundedFact:
			if x.Obj == obj {
				delete(s.must, f)
			}
		}
	}
}

func (s *State) clone() *State {
	c := &State{
		facts: make(map[Fact]bool, len(s.facts)),
		must:  make(map[Fact]bool, len(s.must)),
		dead:  s.dead,
	}
	for f := range s.facts {
		c.facts[f] = true
	}
	for f := range s.must {
		c.must[f] = true
	}
	return c
}

// become replaces s's contents with o's.
func (s *State) become(o *State) {
	s.facts = o.facts
	s.must = o.must
	s.dead = o.dead
}

// join merges o into s (dead states are the identity element) and reports
// whether s changed: may-facts union, must-facts intersect.
func (s *State) join(o *State) bool {
	if o == nil || o.dead {
		return false
	}
	if s.dead {
		// A dead path contributes nothing: adopt o wholesale.
		s.dead = false
		s.facts = make(map[Fact]bool, len(o.facts))
		for f := range o.facts {
			s.facts[f] = true
		}
		s.must = make(map[Fact]bool, len(o.must))
		for f := range o.must {
			s.must[f] = true
		}
		return true
	}
	changed := false
	for f := range o.facts {
		if !s.facts[f] {
			s.facts[f] = true
			changed = true
		}
	}
	for f := range s.must {
		if !o.must[f] {
			delete(s.must, f)
			changed = true
		}
	}
	return changed
}

// CallInfo describes the context of one call handed to TransferCall.
type CallInfo struct {
	// ArgTainted is true when the receiver or any argument evaluated tainted.
	ArgTainted bool
	// RecvTainted is true when the call is a method call (or selector-based
	// call) whose base expression evaluated tainted.
	RecvTainted bool
	// ArgsTainted holds the per-argument taint, in source order, for
	// summary-based inter-procedural transfer. Nil when the engine had no
	// arguments to evaluate.
	ArgsTainted []bool
	// Deferred is true for the call expression of a defer statement. Its
	// arguments are evaluated here (Go semantics) but the callee runs at
	// return, which the engine does not model — analyzers should report at
	// deferred sinks but not apply state effects (e.g. a deferred Unlock).
	Deferred bool
	// Reporting is true during the single report pass; silent fixpoint
	// iterations over loops run with Reporting false. Analyzers must gate
	// diagnostics on it or they fire once per iteration.
	Reporting bool
}

// Hooks parameterize the engine for one analyzer.
type Hooks struct {
	// Info is the type information of the package under analysis.
	Info *types.Info

	// Source reports whether evaluating e introduces taint by itself
	// (an annotated variable or field read, a secret-typed value, a key
	// derivation call). May be nil.
	Source func(e ast.Expr) bool

	// TransferCall applies the effects of a call to the state and reports
	// whether the call's results are tainted. May be nil, in which case
	// calls have no effect and untainted results.
	TransferCall func(call *ast.CallExpr, info CallInfo, st *State) bool

	// OnNode observes a statement or call expression with the state in
	// effect immediately before its own transfer, during the report pass
	// only. deferred is true for the call of a defer statement. May be nil.
	OnNode func(n ast.Node, st *State, deferred bool)

	// OnReturn observes a return statement during the report pass, with the
	// taint of each result expression in order. May be nil.
	OnReturn func(ret *ast.ReturnStmt, tainted []bool, st *State)

	// Validates reports the objects a call verifies when it succeeds (a
	// non-empty result marks the call as a validator). The engine then
	// performs branch refinement: on the path where the call's bool result
	// is true — or its error result is nil, including through an
	// `err := VerifyX(m); if err != nil { return }` binding — a
	// VerifiedFact is established for each reported object. May be nil.
	Validates func(call *ast.CallExpr) []types.Object

	// Bound recognizes a named bound expression (a Max* constant, possibly
	// behind conversions or arithmetic) in an integer comparison guard and
	// returns its display name. On the path where a variable compares no
	// greater than the bound (`if n > MaxY { ... }` fallthrough,
	// `if n <= MaxY` then-branch, and the mirrored orientations) the engine
	// establishes a BoundedFact for the variable. May be nil.
	Bound func(e ast.Expr) (string, bool)
}

// Run analyzes one function body starting from an empty state. Nested
// function literals are analyzed with their own fresh state.
func Run(h *Hooks, body *ast.BlockStmt) {
	RunFrom(h, body, NewState())
}

// RunFrom analyzes one function body starting from init (which is consumed).
func RunFrom(h *Hooks, body *ast.BlockStmt, init *State) {
	if body == nil {
		return
	}
	e := &engine{h: h, reporting: true}
	e.stmts(body.List, init)
}

// maxLoopIterations caps fixpoint iteration as a defensive backstop; union
// joins guarantee termination long before this in practice.
const maxLoopIterations = 64

type loopCtx struct {
	brk  *State // states flowing out through break
	cont *State // states flowing to the next iteration through continue
}

type engine struct {
	h         *Hooks
	reporting bool
	loops     []*loopCtx

	// bindings maps an identifier holding a validator call's success signal
	// (the bool result, or the error result) to the objects that call
	// validates, so a later `if err != nil { return }` or `if !ok { return }`
	// guard refines the fallthrough path. The map is syntactic and function-
	// wide; a rebinding overwrites, and any other store kills the entry.
	bindings map[types.Object]*condBinding
}

// condBinding records what one bound success-signal identifier means.
type condBinding struct {
	objs   []types.Object
	isBool bool // true: bool convention (true = verified); false: error (nil = verified)
}

func (e *engine) onNode(n ast.Node, st *State, deferred bool) {
	if e.reporting && e.h.OnNode != nil {
		e.h.OnNode(n, st, deferred)
	}
}

func (e *engine) stmts(list []ast.Stmt, st *State) {
	for _, s := range list {
		e.stmt(s, st)
	}
}

func (e *engine) stmt(s ast.Stmt, st *State) {
	if s == nil || st.dead {
		return
	}
	e.onNode(s, st, false)
	switch s := s.(type) {
	case *ast.ExprStmt:
		e.expr(s.X, st)

	case *ast.AssignStmt:
		e.assign(s, st)

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			switch {
			case len(vs.Values) == 1 && len(vs.Names) > 1:
				t := e.expr(vs.Values[0], st)
				for _, name := range vs.Names {
					e.bindIdent(name, t, st)
				}
			default:
				for i, name := range vs.Names {
					t := false
					if i < len(vs.Values) {
						t = e.expr(vs.Values[i], st)
					}
					e.bindIdent(name, t, st)
				}
			}
		}

	case *ast.IfStmt:
		e.stmt(s.Init, st)
		e.expr(s.Cond, st)
		then := st.clone()
		e.refine(s.Cond, true, then)
		e.block(s.Body, then)
		els := st.clone()
		e.refine(s.Cond, false, els)
		if s.Else != nil {
			e.stmt(s.Else, els)
		}
		then.join(els)
		if then.dead && els.dead {
			then.dead = true
		}
		st.become(then)

	case *ast.BlockStmt:
		e.stmts(s.List, st)

	case *ast.ForStmt:
		e.stmt(s.Init, st)
		e.loop(st, s.Cond == nil, func(it *State) {
			if s.Cond != nil {
				e.expr(s.Cond, it)
			}
			e.block(s.Body, it)
		}, s.Post)

	case *ast.RangeStmt:
		xT := e.expr(s.X, st)
		e.loop(st, false, func(it *State) {
			e.bindRangeVars(s, xT, it)
			e.block(s.Body, it)
		}, nil)

	case *ast.SwitchStmt:
		e.stmt(s.Init, st)
		if s.Tag != nil {
			e.expr(s.Tag, st)
		}
		e.switchClauses(s.Body, st, func(cc *ast.CaseClause, cst *State) {
			for _, x := range cc.List {
				e.expr(x, cst)
			}
		})

	case *ast.TypeSwitchStmt:
		e.stmt(s.Init, st)
		var operandTainted bool
		// The guard is either `x.(type)` or `v := x.(type)`.
		switch g := s.Assign.(type) {
		case *ast.ExprStmt:
			operandTainted = e.expr(g.X, st)
		case *ast.AssignStmt:
			if len(g.Rhs) == 1 {
				operandTainted = e.expr(g.Rhs[0], st)
			}
		}
		e.switchClauses(s.Body, st, func(cc *ast.CaseClause, cst *State) {
			if operandTainted {
				if obj := e.h.Info.Implicits[cc]; obj != nil {
					cst.Add(obj)
				}
			}
		})

	case *ast.SelectStmt:
		acc := deadState()
		allDead := true
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cst := st.clone()
			e.stmt(comm.Comm, cst)
			e.stmts(comm.Body, cst)
			acc.join(cst)
			if !cst.dead {
				allDead = false
			}
		}
		if len(s.Body.List) > 0 {
			acc.dead = allDead
			st.become(acc)
		}

	case *ast.SendStmt:
		e.expr(s.Chan, st)
		e.expr(s.Value, st)

	case *ast.ReturnStmt:
		tainted := make([]bool, len(s.Results))
		for i, r := range s.Results {
			tainted[i] = e.expr(r, st)
		}
		if e.reporting && e.h.OnReturn != nil {
			e.h.OnReturn(s, tainted, st)
		}
		st.dead = true

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if lc := e.topLoop(); lc != nil {
				lc.brk.join(st)
				st.dead = true
			}
			// break out of a switch/select: joins handle it naturally.
		case "continue":
			if lc := e.topLoop(); lc != nil {
				lc.cont.join(st)
				st.dead = true
			}
		case "goto":
			// Unsupported; treated as a no-op (documented limit).
		}

	case *ast.DeferStmt:
		e.deferredCall(s.Call, st)

	case *ast.GoStmt:
		// Arguments are evaluated at the go statement; the spawned body runs
		// with its own fresh state.
		e.callAtDistance(s.Call, st)

	case *ast.LabeledStmt:
		e.stmt(s.Stmt, st)

	case *ast.IncDecStmt:
		e.expr(s.X, st)
		if root := e.rootObj(s.X); root != nil {
			st.killMustObj(root)
		}

	case *ast.EmptyStmt:
	}
}

// block walks a block in a fresh syntactic scope (state is shared; Go
// shadowing yields distinct objects, so no extra scoping is needed).
func (e *engine) block(b *ast.BlockStmt, st *State) {
	if b != nil {
		e.stmts(b.List, st)
	}
}

// loop runs a fixpoint over body (cond+body+post combined into iterate and
// post), then one reporting pass, and leaves the exit state in st.
// noNaturalExit marks `for {}` loops that only exit through break.
func (e *engine) loop(st *State, noNaturalExit bool, iterate func(*State), post ast.Stmt) {
	lc := &loopCtx{brk: deadState(), cont: deadState()}
	entry := st.clone()

	saved := e.reporting
	e.reporting = false
	for i := 0; i < maxLoopIterations; i++ {
		it := entry.clone()
		e.loops = append(e.loops, lc)
		iterate(it)
		e.loops = e.loops[:len(e.loops)-1]
		it.join(lc.cont)
		if post != nil && !it.dead {
			e.stmt(post, it)
		}
		if !entry.join(it) {
			break
		}
	}
	e.reporting = saved

	if e.reporting {
		it := entry.clone()
		e.loops = append(e.loops, lc)
		iterate(it)
		e.loops = e.loops[:len(e.loops)-1]
		it.join(lc.cont)
		if post != nil && !it.dead {
			e.stmt(post, it)
		}
	}

	if noNaturalExit {
		st.become(lc.brk) // dead unless some break reaches it
		return
	}
	exit := entry.clone()
	exit.join(lc.brk)
	st.become(exit)
}

func (e *engine) topLoop() *loopCtx {
	if len(e.loops) == 0 {
		return nil
	}
	return e.loops[len(e.loops)-1]
}

// switchClauses forks st per case clause (seeding each via seed), carries
// fallthrough chains, and joins the results; a missing default keeps the
// no-match path alive.
func (e *engine) switchClauses(body *ast.BlockStmt, st *State, seed func(*ast.CaseClause, *State)) {
	acc := deadState()
	hasDefault := false
	var fall *State
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cst := st.clone()
		seed(cc, cst)
		if fall != nil {
			cst.join(fall)
			fall = nil
		}
		e.stmts(cc.Body, cst)
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fall = cst.clone()
				fall.dead = false
			}
		}
		acc.join(cst)
	}
	if !hasDefault {
		acc.join(st)
	}
	if acc.dead && hasDefault {
		st.facts = acc.facts
		st.must = acc.must
		st.dead = true
		return
	}
	st.become(acc)
}

// assign applies one assignment statement.
func (e *engine) assign(a *ast.AssignStmt, st *State) {
	compound := a.Tok.String() != "=" && a.Tok.String() != ":="
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// x, y := f()  /  v, ok := m[k]: one taint decision for all LHS.
		t := e.expr(a.Rhs[0], st)
		for _, lhs := range a.Lhs {
			e.store(lhs, t, st, compound)
		}
		return
	}
	// Pairwise. RHS are all evaluated before any store in Go; with set-union
	// state the simplification of interleaving them is harmless.
	for i, rhs := range a.Rhs {
		if i >= len(a.Lhs) {
			break
		}
		t := e.expr(rhs, st)
		e.store(a.Lhs[i], t, st, compound)
	}
	e.recordCondBinding(a)
}

// recordCondBinding recognizes `err := VerifyX(m)` / `ok := VerifyX(m)` /
// `v, err := VerifyX(m)` shapes and binds the success-signal identifier to
// the objects the call validates, for later guard refinement. The error
// result is preferred when both conventions appear among the targets.
func (e *engine) recordCondBinding(a *ast.AssignStmt) {
	if e.h.Validates == nil || len(a.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	objs := e.h.Validates(call)
	if len(objs) == 0 {
		return
	}
	var target types.Object
	isBool := false
	for _, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := e.objOf(id)
		if obj == nil {
			continue
		}
		if e.errorTyped(obj) {
			target, isBool = obj, false
			break
		}
		if target == nil && isBoolTyped(obj.Type()) {
			target, isBool = obj, true
		}
	}
	if target == nil {
		return
	}
	if e.bindings == nil {
		e.bindings = make(map[types.Object]*condBinding)
	}
	e.bindings[target] = &condBinding{objs: objs, isBool: isBool}
}

func isBoolTyped(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// store binds taint to an assignment target. Identifier stores are strong
// (untainted kills); selector/index/pointer stores weakly taint the root
// container. compound (+=) never kills.
func (e *engine) store(lhs ast.Expr, tainted bool, st *State, compound bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := e.objOf(l)
		if obj == nil {
			return
		}
		// Any write invalidates conditional must-facts and bindings: the
		// verified/bounded value is gone even under a compound assignment.
		st.killMustObj(obj)
		delete(e.bindings, obj)
		if tainted && !e.errorTyped(obj) {
			st.Add(obj)
		} else if !compound {
			st.Kill(obj)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
		// A store through the root mutates the verified/bounded value too.
		if root := e.rootObj(lhs); root != nil {
			st.killMustObj(root)
			if tainted {
				st.Add(root)
			}
		}
	}
}

func (e *engine) bindIdent(id *ast.Ident, tainted bool, st *State) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := e.objOf(id)
	if obj == nil {
		return
	}
	st.killMustObj(obj)
	delete(e.bindings, obj)
	if tainted && !e.errorTyped(obj) {
		st.Add(obj)
	} else {
		st.Kill(obj)
	}
}

func (e *engine) bindRangeVars(s *ast.RangeStmt, xTainted bool, st *State) {
	for _, v := range []ast.Expr{s.Key, s.Value} {
		if v == nil {
			continue
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok {
			e.bindIdent(id, xTainted, st)
		} else {
			e.store(v, xTainted, st, false)
		}
	}
}

// expr evaluates the taint of an expression, firing OnNode for calls and
// applying TransferCall effects.
func (e *engine) expr(x ast.Expr, st *State) bool {
	if x == nil {
		return false
	}
	if e.h.Source != nil && e.h.Source(x) {
		// Still walk sub-expressions of calls for nested sinks/effects.
		if call, ok := x.(*ast.CallExpr); ok {
			e.call(call, st)
		}
		return true
	}
	switch x := x.(type) {
	case *ast.Ident:
		obj := e.objOf(x)
		return obj != nil && st.Has(obj)
	case *ast.SelectorExpr:
		// Field read or method value: tainted if the base is. A qualified
		// package identifier (pkg.Var) resolves through the selection.
		if obj := e.h.Info.Uses[x.Sel]; obj != nil {
			if _, isPkgName := e.h.Info.Uses[baseIdent(x.X)].(*types.PkgName); isPkgName {
				return st.Has(obj)
			}
		}
		return e.expr(x.X, st)
	case *ast.IndexExpr:
		t := e.expr(x.X, st)
		e.expr(x.Index, st)
		return t
	case *ast.IndexListExpr:
		return e.expr(x.X, st)
	case *ast.SliceExpr:
		t := e.expr(x.X, st)
		e.expr(x.Low, st)
		e.expr(x.High, st)
		e.expr(x.Max, st)
		return t
	case *ast.ParenExpr:
		return e.expr(x.X, st)
	case *ast.StarExpr:
		return e.expr(x.X, st)
	case *ast.UnaryExpr:
		return e.expr(x.X, st)
	case *ast.BinaryExpr:
		lt := e.expr(x.X, st)
		rt := e.expr(x.Y, st)
		return lt || rt
	case *ast.TypeAssertExpr:
		return e.expr(x.X, st)
	case *ast.CompositeLit:
		t := false
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if e.expr(kv.Value, st) {
					t = true
				}
				continue
			}
			if e.expr(elt, st) {
				t = true
			}
		}
		return t
	case *ast.KeyValueExpr:
		return e.expr(x.Value, st)
	case *ast.CallExpr:
		return e.call(x, st)
	case *ast.FuncLit:
		// Analyzed with a fresh state; the literal value itself is untainted.
		e.funcLit(x)
		return false
	}
	return false
}

// call evaluates a call expression: conversions and builtins inline, user
// calls through TransferCall.
func (e *engine) call(call *ast.CallExpr, st *State) bool {
	// Type conversions pass taint through.
	if tv, ok := e.h.Info.Types[call.Fun]; ok && tv.IsType() {
		t := false
		for _, a := range call.Args {
			if e.expr(a, st) {
				t = true
			}
		}
		return t
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := e.h.Info.Uses[id].(*types.Builtin); isBuiltin {
			t := e.builtin(id.Name, call, st)
			// Builtins are observable too (boundedalloc checks make sizes);
			// fires after argument evaluation, like user calls.
			e.onNode(call, st, false)
			return t
		}
	}

	argTainted := false
	recvTainted := false
	// A method call's receiver counts as an argument.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if e.expr(sel.X, st) {
			argTainted = true
			recvTainted = true
		}
	} else if e.expr(call.Fun, st) {
		argTainted = true
	}
	var argsTainted []bool
	if len(call.Args) > 0 {
		argsTainted = make([]bool, len(call.Args))
	}
	for i, a := range call.Args {
		if e.expr(a, st) {
			argTainted = true
			argsTainted[i] = true
		}
	}

	e.onNode(call, st, false)
	if e.h.TransferCall != nil {
		return e.h.TransferCall(call, CallInfo{
			ArgTainted:  argTainted,
			RecvTainted: recvTainted,
			ArgsTainted: argsTainted,
			Reporting:   e.reporting,
		}, st)
	}
	return false
}

func (e *engine) builtin(name string, call *ast.CallExpr, st *State) bool {
	switch name {
	case "append":
		t := false
		for _, a := range call.Args {
			if e.expr(a, st) {
				t = true
			}
		}
		return t
	case "copy":
		// copy(dst, src): src taint weakly taints dst's container.
		if len(call.Args) == 2 {
			dstT := e.expr(call.Args[0], st)
			if e.expr(call.Args[1], st) {
				if root := e.rootObj(call.Args[0]); root != nil {
					st.Add(root)
				}
				return true
			}
			return dstT
		}
	case "min", "max":
		t := false
		for _, a := range call.Args {
			if e.expr(a, st) {
				t = true
			}
		}
		return t
	default:
		// len, cap, make, new, delete, panic, print, ...: evaluate arguments
		// for effects; results are untainted (a secret's length is not a
		// secret).
		for _, a := range call.Args {
			e.expr(a, st)
		}
	}
	return false
}

// deferredCall evaluates a defer's arguments now without applying the
// callee's state effects (they happen at return, which the engine does not
// model; lockcheck pre-scans defers syntactically instead).
func (e *engine) deferredCall(call *ast.CallExpr, st *State) {
	argTainted := false
	recvTainted := false
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		e.funcLit(lit)
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if e.expr(sel.X, st) {
			argTainted = true
			recvTainted = true
		}
	} else if e.expr(call.Fun, st) {
		argTainted = true
	}
	var argsTainted []bool
	if len(call.Args) > 0 {
		argsTainted = make([]bool, len(call.Args))
	}
	for i, a := range call.Args {
		if e.expr(a, st) {
			argTainted = true
			argsTainted[i] = true
		}
	}
	e.onNode(call, st, true)
	if e.h.TransferCall != nil {
		e.h.TransferCall(call, CallInfo{
			ArgTainted:  argTainted,
			RecvTainted: recvTainted,
			ArgsTainted: argsTainted,
			Deferred:    true,
			Reporting:   e.reporting,
		}, st)
	}
}

// callAtDistance evaluates a go statement's call: arguments now, body (for
// a literal) in its own world, no state effects, no result.
func (e *engine) callAtDistance(call *ast.CallExpr, st *State) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		e.funcLit(lit)
	} else {
		e.expr(call.Fun, st)
	}
	for _, a := range call.Args {
		e.expr(a, st)
	}
}

// funcLit analyzes a nested function literal with a fresh state, once, during
// the report pass.
func (e *engine) funcLit(lit *ast.FuncLit) {
	if !e.reporting {
		return
	}
	nested := &engine{h: e.h, reporting: true}
	nested.stmts(lit.Body.List, NewState())
}

// refine sharpens st with the conditional must-facts implied by cond
// evaluating to holds. It decomposes boolean structure (&&, ||, !, parens)
// and recognizes three atomic guard shapes:
//
//   - a validator call in boolean position (`if c.Verify(m)`, `if !ok` with
//     ok bound to a validator's bool result): VerifiedFacts on the success
//     side;
//   - an error-nil comparison (`if err != nil`, `if VerifyX(m) == nil`) with
//     the error bound to — or returned directly by — a validator call:
//     VerifiedFacts on the nil side;
//   - an integer comparison against a recognized bound (`if n > MaxY`,
//     `if MaxY >= n`, through conversions): a BoundedFact on the side where
//     the variable is no greater than the bound.
func (e *engine) refine(cond ast.Expr, holds bool, st *State) {
	if e.h.Validates == nil && e.h.Bound == nil {
		return
	}
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op.String() == "!" {
			e.refine(x.X, !holds, st)
		}
	case *ast.BinaryExpr:
		switch x.Op.String() {
		case "&&":
			// Both conjuncts hold on the true side; the false side learns
			// nothing (either could have failed).
			if holds {
				e.refine(x.X, true, st)
				e.refine(x.Y, true, st)
			}
		case "||":
			if !holds {
				e.refine(x.X, false, st)
				e.refine(x.Y, false, st)
			}
		case "==", "!=":
			e.refineNil(x, holds, st)
		case "<", "<=", ">", ">=":
			e.refineBound(x, holds, st)
		}
	case *ast.CallExpr:
		if holds {
			e.addVerified(x, st)
		}
	case *ast.Ident:
		if obj := e.objOf(x); obj != nil {
			if b := e.bindings[obj]; b != nil && b.isBool && holds {
				addVerifiedObjs(b.objs, st)
			}
		}
	}
}

// refineNil handles `X == nil` / `X != nil` where X is a validator call or
// an identifier bound to a validator's error result.
func (e *engine) refineNil(x *ast.BinaryExpr, holds bool, st *State) {
	if e.h.Validates == nil {
		return
	}
	operand, ok := nonNilOperand(x)
	if !ok {
		return
	}
	// The side where the error is nil: `== nil` true, `!= nil` false.
	errNil := (x.Op.String() == "==") == holds
	if !errNil {
		return
	}
	switch o := ast.Unparen(operand).(type) {
	case *ast.CallExpr:
		e.addVerified(o, st)
	case *ast.Ident:
		obj := e.objOf(o)
		if obj == nil {
			return
		}
		if b := e.bindings[obj]; b != nil && !b.isBool {
			addVerifiedObjs(b.objs, st)
		}
	}
}

// nonNilOperand returns the operand of a comparison whose other side is the
// predeclared nil.
func nonNilOperand(x *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilIdent(x.Y) {
		return x.X, true
	}
	if isNilIdent(x.X) {
		return x.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// refineBound handles integer comparisons against a recognized bound in
// either orientation; the bounded side gets a BoundedFact on the variable.
func (e *engine) refineBound(x *ast.BinaryExpr, holds bool, st *State) {
	if e.h.Bound == nil {
		return
	}
	op := x.Op.String()
	// n OP bound: n is bounded when `n < bound` / `n <= bound` holds, or
	// `n > bound` / `n >= bound` does not.
	if obj := e.comparandObj(x.X); obj != nil {
		if name, ok := e.h.Bound(x.Y); ok {
			if (holds && (op == "<" || op == "<=")) || (!holds && (op == ">" || op == ">=")) {
				st.AddMust(BoundedFact{Obj: obj, Bound: name})
			}
		}
	}
	// bound OP n: mirrored.
	if obj := e.comparandObj(x.Y); obj != nil {
		if name, ok := e.h.Bound(x.X); ok {
			if (holds && (op == ">" || op == ">=")) || (!holds && (op == "<" || op == "<=")) {
				st.AddMust(BoundedFact{Obj: obj, Bound: name})
			}
		}
	}
}

// comparandObj resolves the variable a comparison side tests, looking
// through parens and value conversions (`uint64(n)` tests n).
func (e *engine) comparandObj(x ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			obj := e.objOf(v)
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
			return nil
		case *ast.CallExpr:
			// A conversion with one argument passes the test through.
			if tv, ok := e.h.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
				x = v.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

func (e *engine) addVerified(call *ast.CallExpr, st *State) {
	if e.h.Validates == nil {
		return
	}
	addVerifiedObjs(e.h.Validates(call), st)
}

func addVerifiedObjs(objs []types.Object, st *State) {
	for _, obj := range objs {
		if obj != nil {
			st.AddMust(VerifiedFact{Obj: obj})
		}
	}
}

func (e *engine) objOf(id *ast.Ident) types.Object {
	if obj := e.h.Info.Defs[id]; obj != nil {
		return obj
	}
	return e.h.Info.Uses[id]
}

func (e *engine) errorTyped(obj types.Object) bool {
	named, ok := obj.Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// rootObj returns the object of the base identifier of a selector/index/
// star/slice chain (s.a.b[i] -> s), or nil.
func (e *engine) rootObj(x ast.Expr) types.Object {
	if id := baseIdent(x); id != nil {
		return e.objOf(id)
	}
	return nil
}

func baseIdent(x ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.SliceExpr:
			x = v.X
		case *ast.UnaryExpr:
			x = v.X
		default:
			return nil
		}
	}
}
