package dataflow

import (
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// The refinement harness reuses compile() with a second prelude declaring
// the validator vocabulary:
//
//	verifyOK(m) bool / verifyErr(m) error — validators (Hooks.Validates
//	  reports the root objects of their arguments)
//	MaxN — a named bound constant (Hooks.Bound)
//	use(x)   — records whether x's root carries a VerifiedFact
//	alloc(n) — records whether n's root carries a BoundedFact
const refinePrelude = `type M struct{ X int }

func verifyOK(m *M) bool    { return m != nil }
func verifyErr(m *M) error  { return nil }
func cond() bool            { return true }

const MaxN = 64

func use(args ...any) {}
func alloc(n int)     {}
`

// refineHits runs the engine over every function named f/g/h and returns
// the sorted lines (1-based within body) where use() saw a verified first
// argument and where alloc() saw a bounded first argument.
func refineHits(t *testing.T, body string) (verified, bounded []int) {
	t.Helper()
	src := refinePrelude + body
	file, info, fset := compile(t, src)
	offset := strings.Count(prelude, "\n") + strings.Count(refinePrelude, "\n")

	rootOf := func(x ast.Expr) types.Object {
		id := baseIdent(x)
		if id == nil {
			return nil
		}
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	calleeName := func(call *ast.CallExpr) string {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return ""
		}
		return id.Name
	}

	h := &Hooks{
		Info: info,
		Validates: func(call *ast.CallExpr) []types.Object {
			if !strings.HasPrefix(calleeName(call), "verify") {
				return nil
			}
			var objs []types.Object
			for _, a := range call.Args {
				if obj := rootOf(a); obj != nil {
					objs = append(objs, obj)
				}
			}
			return objs
		},
		Bound: func(e ast.Expr) (string, bool) {
			name, found := "", false
			ast.Inspect(e, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if c, isConst := info.Uses[id].(*types.Const); isConst && strings.HasPrefix(c.Name(), "Max") {
					name, found = c.Name(), true
				}
				return true
			})
			return name, found
		},
		OnNode: func(n ast.Node, st *State, deferred bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return
			}
			line := fset.Position(call.Pos()).Line - offset
			switch calleeName(call) {
			case "use":
				if obj := rootOf(call.Args[0]); obj != nil && st.Verified(obj) {
					verified = append(verified, line)
				}
			case "alloc":
				if obj := rootOf(call.Args[0]); obj != nil {
					if _, ok := st.BoundOf(obj); ok {
						bounded = append(bounded, line)
					}
				}
			}
		},
	}

	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		switch fd.Name.Name {
		case "f", "g", "h":
			Run(h, fd.Body)
		}
	}
	sort.Ints(verified)
	sort.Ints(bounded)
	return verified, bounded
}

func TestBranchRefinement(t *testing.T) {
	cases := []struct {
		name         string
		body         string
		wantVerified []int // lines within body where use() sees a verified value
		wantBounded  []int // lines within body where alloc() sees a bounded value
	}{
		{
			name: "error guard establishes on fallthrough",
			body: `func f(m *M) {
	if err := verifyErr(m); err != nil {
		use(m)
		return
	}
	use(m)
}`,
			wantVerified: []int{6},
		},
		{
			name: "negated bool guard",
			body: `func f(m *M) {
	if !verifyOK(m) {
		use(m)
		return
	}
	use(m)
}`,
			wantVerified: []int{6},
		},
		{
			name: "bool binding through ident",
			body: `func f(m *M) {
	ok := verifyOK(m)
	if ok {
		use(m)
	}
	use(m)
}`,
			wantVerified: []int{4},
		},
		{
			name: "merge at join kills the fact",
			body: `func f(m *M, c bool) {
	if c {
		if err := verifyErr(m); err != nil {
			return
		}
		use(m)
	}
	use(m)
}`,
			wantVerified: []int{6},
		},
		{
			name: "reassignment kills",
			body: `func f(m *M) {
	if err := verifyErr(m); err != nil {
		return
	}
	use(m)
	m = nil
	use(m)
}`,
			wantVerified: []int{5},
		},
		{
			name: "field mutation kills",
			body: `func f(m *M) {
	if err := verifyErr(m); err != nil {
		return
	}
	m.X = 1
	use(m)
}`,
			wantVerified: nil,
		},
		{
			name: "loop fixpoint kills an in-loop invalidation",
			body: `func f(m *M) {
	if err := verifyErr(m); err != nil {
		return
	}
	for i := 0; i < 3; i++ {
		use(m)
		m = nil
	}
}`,
			wantVerified: nil,
		},
		{
			name: "loop fixpoint preserves an untouched fact",
			body: `func f(m *M) {
	if err := verifyErr(m); err != nil {
		return
	}
	for i := 0; i < 3; i++ {
		use(m)
	}
	use(m)
}`,
			wantVerified: []int{6, 8},
		},
		{
			name: "bounds guard establishes on fallthrough",
			body: `func g(n int) {
	if n > MaxN {
		alloc(n)
		return
	}
	alloc(n)
}`,
			wantBounded: []int{6},
		},
		{
			name: "mirrored orientation and conversions",
			body: `func g(n int) {
	if MaxN >= n {
		alloc(n)
	}
	if uint64(n) <= uint64(MaxN) {
		alloc(n)
	}
	alloc(n)
}`,
			wantBounded: []int{3, 6},
		},
		{
			name: "conjunction refines both facts",
			body: `func f(m *M, n int) {
	if verifyOK(m) && n <= MaxN {
		use(m)
		alloc(n)
	}
}`,
			wantVerified: []int{3},
			wantBounded:  []int{4},
		},
		{
			name: "disjunction refines the false side",
			body: `func g(m *M, n int) {
	if n > MaxN || m == nil {
		alloc(n)
		return
	}
	alloc(n)
}`,
			wantBounded: []int{6},
		},
		{
			name: "increment kills the bound",
			body: `func g(n int) {
	if n > MaxN {
		return
	}
	alloc(n)
	n++
	alloc(n)
}`,
			wantBounded: []int{5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			verified, bounded := refineHits(t, tc.body)
			if !reflect.DeepEqual(verified, tc.wantVerified) {
				t.Errorf("verified lines = %v, want %v\nbody:\n%s", verified, tc.wantVerified, numbered(tc.body))
			}
			if !reflect.DeepEqual(bounded, tc.wantBounded) {
				t.Errorf("bounded lines = %v, want %v\nbody:\n%s", bounded, tc.wantBounded, numbered(tc.body))
			}
		})
	}
}
