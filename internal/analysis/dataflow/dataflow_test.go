package dataflow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// The harness typechecks one snippet (import-free, so no importer machinery
// is needed) declaring a function f plus three markers:
//
//	source() — its result is tainted (seeded through TransferCall)
//	sink(x)  — records the line when any argument evaluates tainted
//	pass(x)  — propagates argument taint to its result
//
// Each case lists the lines (within f, 1-based from the snippet top) where
// sink must receive taint; any extra or missing hit fails.
const prelude = `package p

func source() []byte { return nil }
func sink(args ...any) {}
func pass(x any) any { return x }
func scrub(x any) any { return nil }
`

func compile(t *testing.T, body string) (*ast.File, *types.Info, *token.FileSet) {
	t.Helper()
	src := prelude + body
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, numbered(src))
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(err error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v\nsource:\n%s", err, numbered(src))
	}
	return file, info, fset
}

func numbered(src string) string {
	out := ""
	line := 1
	start := 0
	for i := 0; i <= len(src); i++ {
		if i == len(src) || src[i] == '\n' {
			out += fmt.Sprintf("%3d| %s\n", line, src[start:i])
			line++
			start = i + 1
		}
	}
	return out
}

// taintedSinkLines runs the engine over every function named f/g/h in the
// snippet and returns the sorted source lines (relative to the body string,
// 1-based) at which sink() saw a tainted argument.
func taintedSinkLines(t *testing.T, body string) []int {
	t.Helper()
	file, info, fset := compile(t, body)
	preludeLines := 0
	for _, c := range prelude {
		if c == '\n' {
			preludeLines++
		}
	}

	var hits []int
	calleeName := func(call *ast.CallExpr) string {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return ""
		}
		return id.Name
	}
	h := &Hooks{
		Info: info,
		TransferCall: func(call *ast.CallExpr, info CallInfo, st *State) bool {
			switch calleeName(call) {
			case "source":
				return true
			case "sink":
				if info.ArgTainted && info.Reporting {
					hits = append(hits, fset.Position(call.Pos()).Line-preludeLines)
				}
				return false
			case "pass":
				return info.ArgTainted
			case "scrub":
				return false
			}
			return false
		},
	}

	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		switch fd.Name.Name {
		case "f", "g", "h":
			Run(h, fd.Body)
		}
	}
	sort.Ints(hits)
	return hits
}

func TestTaintPropagation(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []int // lines within body (1-based) where sink sees taint
	}{
		{
			name: "direct flow",
			body: `func f() {
	s := source()
	sink(s)
	clean := 1
	sink(clean)
}`,
			want: []int{3},
		},
		{
			name: "reassignment kills",
			body: `func f() {
	s := source()
	sink(s)
	s = nil
	sink(s)
}`,
			want: []int{3},
		},
		{
			name: "taint through pass-through call and conversion",
			body: `func f() {
	s := source()
	v := pass(s)
	sink(v)
	w := string(s)
	sink(w)
	u := scrub(s)
	sink(u)
}`,
			want: []int{4, 6},
		},
		{
			name: "branch join: taint from either arm survives",
			body: `func f(c bool) {
	var s any
	if c {
		s = source()
	} else {
		s = 1
	}
	sink(s)
}`,
			want: []int{8},
		},
		{
			name: "branch kill on one arm does not clear the join",
			body: `func f(c bool) {
	s := any(source())
	if c {
		s = nil
	}
	sink(s)
}`,
			want: []int{6},
		},
		{
			name: "kill on both arms clears the join",
			body: `func f(c bool) {
	s := any(source())
	if c {
		s = nil
	} else {
		s = 2
	}
	sink(s)
}`,
			want: nil,
		},
		{
			name: "return path does not leak into join",
			body: `func f(c bool) {
	var s any = 1
	if c {
		s = source()
		sink(s)
		return
	}
	sink(s)
}`,
			want: []int{5},
		},
		{
			name: "loop fixpoint: taint introduced in iteration reaches loop head",
			body: `func f(n int) {
	var s any = 1
	for i := 0; i < n; i++ {
		sink(s)
		s = source()
	}
}`,
			want: []int{4},
		},
		{
			name: "loop kill does not erase pre-loop taint on zero-iteration exit",
			body: `func f(n int) {
	s := any(source())
	for i := 0; i < n; i++ {
		s = nil
	}
	sink(s)
}`,
			want: []int{6},
		},
		{
			name: "range over tainted slice taints element vars",
			body: `func f() {
	xs := []any{source()}
	for _, v := range xs {
		sink(v)
	}
	for i := range xs {
		sink(i)
	}
}`,
			want: []int{4, 7},
		},
		{
			name: "composite literal carries element taint",
			body: `func f() {
	s := source()
	box := struct{ k []byte }{k: s}
	sink(box)
	arr := []any{1, s}
	sink(arr)
	clean := []any{1, 2}
	sink(clean)
}`,
			want: []int{4, 6},
		},
		{
			name: "map element store weakly taints the map",
			body: `func f() {
	m := map[string]any{}
	sink(m)
	m["k"] = source()
	sink(m)
	sink(m["k"])
}`,
			want: []int{5, 6},
		},
		{
			name: "slice element store weakly taints the slice",
			body: `func f() {
	xs := make([]any, 2)
	xs[0] = source()
	sink(xs)
	sink(xs[1])
}`,
			want: []int{4, 5},
		},
		{
			name: "field store weakly taints the struct",
			body: `func f() {
	var box struct{ k []byte }
	box.k = source()
	sink(box)
	sink(box.k)
}`,
			want: []int{4, 5},
		},
		{
			name: "append and copy propagate",
			body: `func f() {
	s := source()
	xs := append([]byte(nil), s...)
	sink(xs)
	dst := make([]byte, 8)
	copy(dst, s)
	sink(dst)
	n := len(s)
	sink(n)
}`,
			want: []int{4, 7},
		},
		{
			name: "multi-assign from one rhs taints all lhs",
			body: `func f(m map[string]any) {
	m["k"] = source()
	v, ok := m["k"]
	sink(v)
	sink(ok)
}`,
			want: []int{4, 5},
		},
		{
			name: "switch: taint from any case joins, dead default respected",
			body: `func f(n int) {
	var s any = 1
	switch n {
	case 0:
		s = source()
	case 1:
		s = 2
	}
	sink(s)
}`,
			want: []int{9},
		},
		{
			name: "type switch binds taint to clause var",
			body: `func f() {
	var v any = source()
	switch x := v.(type) {
	case []byte:
		sink(x)
	case string:
		sink(x)
	}
}`,
			want: []int{5, 7},
		},
		{
			name: "select joins clause states",
			body: `func f(ch chan any) {
	var s any = 1
	select {
	case s = <-ch:
		s = source()
	default:
	}
	sink(s)
}`,
			want: []int{8},
		},
		{
			name: "binary and unary expressions propagate",
			body: `func f() {
	s := source()
	cat := string(s) + "x"
	sink(cat)
	p := &s
	sink(p)
	sink(*p)
}`,
			want: []int{4, 6, 7},
		},
		{
			name: "defer arguments evaluated",
			body: `func f() {
	s := source()
	defer sink(s)
	s = nil
	sink(s)
}`,
			want: []int{3},
		},
		{
			name: "function literal analyzed with fresh state",
			body: `func f() {
	s := source()
	_ = s
	fn := func() {
		t := source()
		sink(t)
		u := 1
		sink(u)
	}
	fn()
}`,
			want: []int{6},
		},
		{
			name: "break carries state out of infinite loop",
			body: `func f(c bool) {
	var s any = 1
	for {
		if c {
			s = source()
			break
		}
		s = nil
	}
	sink(s)
}`,
			want: []int{10},
		},
		{
			name: "continue re-joins at loop head",
			body: `func f(n int) {
	var s any = 1
	for i := 0; i < n; i++ {
		if i == 0 {
			s = source()
			continue
		}
		sink(s)
	}
}`,
			want: []int{8},
		},
		{
			name: "slice expression keeps base taint",
			body: `func f() {
	s := source()
	sink(s[1:])
	sink(s[0])
}`,
			want: []int{3, 4},
		},
		{
			name: "var decl with tainted initializer",
			body: `func f() {
	var s = source()
	sink(s)
	var t []byte
	sink(t)
}`,
			want: []int{3},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := taintedSinkLines(t, tc.body)
			if !equalInts(got, tc.want) {
				t.Errorf("tainted sink lines = %v, want %v\nbody:\n%s", got, tc.want, numbered(tc.body))
			}
		})
	}
}

// TestErrorResultsNeverTainted pins the engine rule that an error-typed
// binding never carries taint: fmt.Errorf-style wrapping of an error that
// came out of a key-derivation call must not propagate.
func TestErrorResultsNeverTainted(t *testing.T) {
	body := `func deriveKey() ([]byte, error) { return source(), nil }

func f() {
	key, err := deriveKey()
	sink(key)
	sink(err)
}`
	file, info, fset := compile(t, body)
	preludeLines := 0
	for _, c := range prelude {
		if c == '\n' {
			preludeLines++
		}
	}
	var hits []int
	h := &Hooks{
		Info: info,
		TransferCall: func(call *ast.CallExpr, info CallInfo, st *State) bool {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return false
			}
			switch id.Name {
			case "deriveKey", "source":
				return true
			case "sink":
				if info.ArgTainted && info.Reporting {
					hits = append(hits, fset.Position(call.Pos()).Line-preludeLines)
				}
			}
			return false
		},
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			Run(h, fd.Body)
		}
	}
	sort.Ints(hits)
	if want := []int{5}; !equalInts(hits, want) {
		t.Errorf("tainted sink lines = %v, want %v (err must stay clean)", hits, want)
	}
}

// TestOnNodeReportPass checks that OnNode fires exactly once per statement
// even under loop fixpointing, and that deferred calls are flagged.
func TestOnNodeReportPass(t *testing.T) {
	body := `func f(n int) {
	s := source()
	for i := 0; i < n; i++ {
		sink(s)
	}
	defer sink(s)
}`
	file, info, fset := compile(t, body)
	counts := make(map[int]int)
	deferredLines := make(map[int]bool)
	h := &Hooks{
		Info: info,
		TransferCall: func(call *ast.CallExpr, info CallInfo, st *State) bool {
			id, _ := ast.Unparen(call.Fun).(*ast.Ident)
			return id != nil && id.Name == "source"
		},
		OnNode: func(n ast.Node, st *State, deferred bool) {
			if call, ok := n.(*ast.CallExpr); ok {
				line := fset.Position(call.Pos()).Line
				counts[line]++
				if deferred {
					deferredLines[line] = true
				}
			}
		},
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			Run(h, fd.Body)
		}
	}
	for line, c := range counts {
		if c != 1 {
			t.Errorf("OnNode fired %d times for call at line %d, want exactly 1", c, line)
		}
	}
	if len(deferredLines) != 1 {
		t.Errorf("deferred call lines = %v, want exactly one", deferredLines)
	}
}

// TestStateOps covers the set semantics directly.
func TestStateOps(t *testing.T) {
	s := NewState()
	if s.Has("a") {
		t.Fatal("fresh state has facts")
	}
	s.Add("a")
	s.Add("b")
	if !s.Has("a") || !s.Has("b") || s.Len() != 2 {
		t.Fatalf("add failed: len=%d", s.Len())
	}
	s.Kill("a")
	if s.Has("a") || s.Len() != 1 {
		t.Fatal("kill failed")
	}
	var seen []string
	s.Each(func(f Fact) { seen = append(seen, f.(string)) })
	if len(seen) != 1 || seen[0] != "b" {
		t.Fatalf("each = %v", seen)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
