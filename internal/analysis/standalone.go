package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
)

// The standalone driver loads whole package patterns in one process,
// resolving every import from the gc export data that `go list -export`
// leaves in the build cache, and memoizes per-package results under
// bin/.lintcache (see lintcache.go) so an unchanged tree re-lints from the
// cache. `make lint` runs this path; the vet vettool protocol (runUnit)
// remains available for editor integrations.

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Standalone analyzes the packages matched by patterns. Exit status
// semantics mirror runUnit: 0 clean, 1 operational error, 2 findings.
func Standalone(patterns []string, analyzers []*Analyzer) int {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Printf("go list: %v", err)
		return 1
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			log.Printf("go list output: %v", err)
			return 1
		}
		if p.Error != nil {
			log.Printf("%s: %s", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if _, ok := RelPath(p.ImportPath); ok && !p.DepOnly && !p.Standard {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	cache := newLintCache(analyzers, exports)
	defer cache.report()

	status := 0
	for _, p := range targets {
		if lines, ok := cache.get(p); ok {
			for _, line := range lines {
				fmt.Fprintln(os.Stderr, line)
			}
			if len(lines) > 0 {
				status = 2
			}
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				log.Printf("parse: %v", err)
				return 1
			}
			files = append(files, f)
		}
		tcfg := types.Config{Importer: imp}
		info := NewInfo()
		tpkg, err := tcfg.Check(p.ImportPath, fset, files, info)
		if err != nil {
			log.Printf("typecheck %s: %v", p.ImportPath, err)
			return 1
		}
		diags := Analyze(&Package{
			Fset: fset, Files: files, Types: tpkg, Info: info,
			Path: NormalizePath(p.ImportPath),
		}, analyzers)
		lines := make([]string, len(diags))
		for i, d := range diags {
			lines[i] = d.String()
			fmt.Fprintln(os.Stderr, lines[i])
		}
		cache.put(p, lines)
		if len(diags) > 0 {
			status = 2
		}
	}
	return status
}
