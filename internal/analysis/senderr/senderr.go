// Package senderr flags silently dropped errors on the wire encode/send
// path. A BFT system's liveness accounting depends on knowing when a send
// failed (the paper's client-side Troxy re-issues requests and widens
// quorums on failure); a discarded write error turns a detectable fault
// into silent message loss.
//
// The analyzer is scoped to callees where a dropped error is message loss:
//
//   - functions and methods of internal/wire that return an error
//     (WriteFrame, ReadFrame, Reader.Finish, ...),
//   - *bufio.Writer's buffered-output methods (Flush, Write, WriteByte,
//     WriteString, WriteRune, ReadFrom), and
//   - Write/Read/SetDeadline/SetReadDeadline/SetWriteDeadline on any type
//     named Conn (net.Conn, tls.Conn, securechannel.Conn).
//
// Close is deliberately out of scope: dropping a close error during
// teardown is idiomatic. An error is "dropped" when the call appears as a
// bare statement (including defer/go) or when every error result is
// assigned to the blank identifier.
package senderr

import (
	"go/ast"
	"go/types"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// bufioMethods are the *bufio.Writer methods whose error reports buffered
// bytes that never reached the wire.
var bufioMethods = map[string]bool{
	"Flush":       true,
	"Write":       true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteString": true,
	"ReadFrom":    true,
}

// connMethods are the Conn methods whose error means the transport is no
// longer delivering bytes (or deadlines).
var connMethods = map[string]bool{
	"Write":            true,
	"Read":             true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// Analyzer is the senderr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "senderr",
	Doc:  "errors on wire encode/send paths must not be silently dropped",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if _, ok := analysis.RelPath(pass.Path()); !ok {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscarded(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscarded(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscarded(pass, n.Call, "")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscarded reports a qualifying call whose results are discarded
// entirely (bare statement, defer, go).
func checkDiscarded(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	fn, why := qualifies(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"%serror from %s.%s dropped on the %s path: check it (a lost send must be visible to retry/monitoring logic)",
		prefix, recvOrPkg(fn), fn.Name(), why)
}

// checkBlankAssign reports `_, _ = call(...)` / `n, _ := conn.Write(p)`
// forms where every error result lands in the blank identifier.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, why := qualifies(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || len(as.Lhs) != sig.Results().Len() {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return // at least one error result is bound
		}
	}
	pass.Reportf(as.Pos(),
		"error from %s.%s assigned to _ on the %s path: check it (a lost send must be visible to retry/monitoring logic)",
		recvOrPkg(fn), fn.Name(), why)
}

// qualifies resolves the call's static callee and reports whether dropping
// its error loses wire traffic; why names the path for the diagnostic.
func qualifies(pass *analysis.Pass, call *ast.CallExpr) (fn *types.Func, why string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return nil, ""
	}

	if rel, ok := analysis.RelPath(analysis.NormalizePath(fn.Pkg().Path())); ok && analysis.Under(rel, "internal/wire") {
		return fn, "wire encode"
	}
	recv := recvName(sig)
	if fn.Pkg().Path() == "bufio" && recv == "Writer" && bufioMethods[fn.Name()] {
		return fn, "buffered send"
	}
	if recv == "Conn" && connMethods[fn.Name()] {
		return fn, "connection send"
	}
	return nil, ""
}

func returnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// recvName returns the bare name of the receiver's (pointer-stripped) named
// or interface type, or "" for package-level functions.
func recvName(sig *types.Signature) string {
	if sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func recvOrPkg(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok {
		if name := recvName(sig); name != "" {
			return name
		}
	}
	return fn.Pkg().Name()
}
