package senderr_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/senderr"
)

func TestSendErr(t *testing.T) {
	analysistest.Run(t, senderr.Analyzer,
		"github.com/troxy-bft/troxy/internal/realnet/sepos",
	)
}
