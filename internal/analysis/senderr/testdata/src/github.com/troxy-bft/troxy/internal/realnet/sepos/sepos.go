// Package sepos must trigger senderr: dropped errors on every scoped wire
// path, next to checked (negative) counterparts that must not trigger.
package sepos

import (
	"bufio"
	"net"
	"time"

	wire "github.com/troxy-bft/troxy/internal/wire/wfake"
)

func send(conn net.Conn, bw *bufio.Writer, frame []byte) {
	wire.WriteFrame(bw, frame)    // want "error from wfake.WriteFrame dropped on the wire encode path"
	defer bw.Flush()              // want "deferred error from Writer.Flush dropped on the buffered send path"
	conn.SetDeadline(time.Time{}) // want "error from Conn.SetDeadline dropped on the connection send path"
	n, _ := conn.Write(frame)     // want "error from Conn.Write assigned to _ on the connection send path"
	_ = n
}

// sendChecked handles every error: must not trigger.
func sendChecked(conn net.Conn, bw *bufio.Writer, frame []byte) error {
	if err := wire.WriteFrame(bw, frame); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Close is deliberately out of scope: dropping its error is idiomatic.
	conn.Close()
	return nil
}

// teardown documents a reviewed exception: the allow comment suppresses the
// finding, so no diagnostic may surface.
func teardown(bw *bufio.Writer) {
	//lint:allow senderr best-effort teardown flush with no caller to report to
	bw.Flush()
}

var _ = send
var _ = sendChecked
var _ = teardown
