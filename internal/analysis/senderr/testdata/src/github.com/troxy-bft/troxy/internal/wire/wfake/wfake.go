// Package wfake stands in for the wire serialization package in senderr
// fixtures.
package wfake

import "io"

// WriteFrame pretends to frame and send a payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return nil
}
