package interproc

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// The harness typechecks one import-free snippet (the prelude declares the
// marker functions) and builds the call graph over it. The markers mirror
// secretflow's vocabulary:
//
//	source()  — evaluating its call introduces taint (TaintSpec.Source)
//	derive()  — results carry taint by fiat (TaintSpec.Derivation)
//	sink()    — tainted arguments reach a log sink (TaintSpec.CallSink)
//	wiresink() — tainted arguments reach a wire sink
const prelude = `package p

func source() []byte { return nil }
func derive() []byte { return nil }
func sink(args ...any) {}
func wiresink(args ...any) {}
`

func compile(t *testing.T, body string) (*ast.File, *types.Info, *types.Package) {
	t.Helper()
	src := prelude + body
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, numbered(src))
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(err error) {}}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v\nsource:\n%s", err, numbered(src))
	}
	return file, info, pkg
}

func numbered(src string) string {
	out := ""
	line := 1
	start := 0
	for i := 0; i <= len(src); i++ {
		if i == len(src) || src[i] == '\n' {
			out += fmt.Sprintf("%3d| %s\n", line, src[start:i])
			line++
			start = i + 1
		}
	}
	return out
}

func testSpec() *TaintSpec {
	return &TaintSpec{
		Source: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && id.Name == "source"
		},
		Derivation: func(fn *types.Func) bool { return fn.Name() == "derive" },
		CallSink: func(fn *types.Func) SinkKind {
			switch fn.Name() {
			case "sink":
				return SinkLog
			case "wiresink":
				return SinkWire
			}
			return 0
		},
	}
}

func build(t *testing.T, body string, spec *TaintSpec) *Graph {
	t.Helper()
	file, info, pkg := compile(t, body)
	return Build([]*ast.File{file}, info, pkg, spec)
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for fn, n := range g.Nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// TestModulePathMatchesDriver pins the package-local copy of the module path
// (kept local to avoid an import cycle in production code) to the driver's
// canonical constant.
func TestModulePathMatchesDriver(t *testing.T) {
	if modulePath != analysis.ModulePath {
		t.Fatalf("interproc.modulePath = %q, analysis.ModulePath = %q; keep them identical", modulePath, analysis.ModulePath)
	}
}

func TestCallGraphEdges(t *testing.T) {
	g := build(t, `
type T struct{ n int }

func (t *T) a(o *T) {
	t.b()
	helper()
	go t.c()
	o.b()
}
func (t *T) b() {}
func (t *T) c() {}
func helper() {
	f := func() {}
	f()
}
`, nil)

	a := nodeByName(t, g, "a")
	want := []struct {
		callee   string
		sameRecv bool
		goCall   bool
	}{
		{"b", true, false},
		{"helper", false, false},
		{"c", true, true},
		{"b", false, false}, // o.b(): same method, different receiver object
	}
	if len(a.Edges) != len(want) {
		t.Fatalf("a has %d edges, want %d", len(a.Edges), len(want))
	}
	for i, w := range want {
		e := a.Edges[i]
		if e.Callee.Fn.Name() != w.callee || e.SameRecv != w.sameRecv || e.Go != w.goCall {
			t.Errorf("edge %d = %s (sameRecv=%v go=%v), want %s (sameRecv=%v go=%v)",
				i, e.Callee.Fn.Name(), e.SameRecv, e.Go, w.callee, w.sameRecv, w.goCall)
		}
	}

	if h := nodeByName(t, g, "helper"); !h.CallsFuncValue {
		t.Errorf("helper calls through a func value; CallsFuncValue should be set")
	}
	if a.CallsFuncValue {
		t.Errorf("a resolves every call; CallsFuncValue should be clear")
	}
}

func TestSCCBottomUpOrder(t *testing.T) {
	g := build(t, `
func a() { b() }
func b() { c(); d(0) }
func c() {}
func d(n int) { e(n) }
func e(n int) { d(n) }
`, nil)

	pos := make(map[string]int)
	for i, scc := range g.SCCs {
		for _, n := range scc {
			pos[n.Fn.Name()] = i
		}
	}
	if pos["d"] != pos["e"] {
		t.Errorf("d and e are mutually recursive; want one SCC, got %d and %d", pos["d"], pos["e"])
	}
	for _, edge := range [][2]string{{"c", "b"}, {"d", "b"}, {"b", "a"}} {
		if pos[edge[0]] >= pos[edge[1]] {
			t.Errorf("SCC order not bottom-up: %s (component %d) should precede its caller %s (component %d)",
				edge[0], pos[edge[0]], edge[1], pos[edge[1]])
		}
	}
}

func TestEffectPropagation(t *testing.T) {
	g := build(t, `
type S struct{ ch chan int }

func (s *S) send()    { s.ch <- 1 }
func (s *S) mid()     { s.send() }
func (s *S) top()     { s.mid() }
func (s *S) spawn()   { go s.send() }
func (s *S) deferred() { defer s.send() }
func (s *S) trySend() {
	select {
	case s.ch <- 1:
	default:
	}
}
func (s *S) makeWork() func() {
	return func() { s.ch <- 1 }
}
func (s *S) pingA() { s.pingB() }
func (s *S) pingB() { s.pingA(); s.ch <- 1 }
`, nil)

	effects := func(name string) Effect { return nodeByName(t, g, name).Sum.Effects }

	if effects("send")&EffectSend == 0 {
		t.Errorf("send performs a direct channel send; EffectSend missing")
	}
	if effects("top")&EffectSend == 0 {
		t.Errorf("top reaches the send through mid; EffectSend missing")
	}
	if trace := nodeByName(t, g, "top").EffectTrace(EffectSend); trace != "mid → send → channel send" {
		t.Errorf("top send trace = %q, want %q", trace, "mid → send → channel send")
	}
	for _, name := range []string{"spawn", "trySend", "makeWork"} {
		if e := effects(name) & EffectBlocking; e != 0 {
			t.Errorf("%s must have no blocking effects (go spawn / select-default / func literal), got %v", name, e)
		}
	}
	// The spawn and the closure are allocations even though they do not
	// block; the select with a default arm allocates nothing.
	if effects("spawn")&EffectAlloc == 0 || effects("makeWork")&EffectAlloc == 0 {
		t.Errorf("goroutine spawn / closure creation must carry EffectAlloc: spawn=%v makeWork=%v",
			effects("spawn"), effects("makeWork"))
	}
	if effects("trySend")&EffectAlloc != 0 {
		t.Errorf("trySend allocates nothing, got %v", effects("trySend"))
	}
	if effects("deferred")&EffectSend == 0 {
		t.Errorf("deferred runs the send before returning; EffectSend missing")
	}
	// Recursive SCC: both members converge on the send effect.
	if effects("pingA")&EffectSend == 0 || effects("pingB")&EffectSend == 0 {
		t.Errorf("pingA/pingB SCC fixpoint lost the send effect: A=%v B=%v", effects("pingA"), effects("pingB"))
	}
}

func TestTaintSummaries(t *testing.T) {
	g := build(t, `
func logIt(v []byte)  { sink(v) }
func clone(v []byte) []byte { return v }
func wrap(v []byte)   { logIt(v) }
func passThru(v []byte) []byte { return clone(v) }
func ship(v []byte)   { wiresink(clone(v)) }
func gen() []byte     { return source() }
func indirect() []byte { return gen() }
func useDerive() []byte { return derive() }
func clean(v []byte) int { return len(v) }
func ping(v []byte, n int) {
	if n > 0 {
		pong(v, n-1)
	}
}
func pong(v []byte, n int) {
	if n > 0 {
		ping(v, n-1)
	}
	sink(v)
}
`, testSpec())

	flow := func(name string, i int) ParamFlow { return nodeByName(t, g, name).Sum.ArgFlow(i) }

	if f := flow("logIt", 0); f.Sinks&SinkLog == 0 {
		t.Errorf("logIt passes its parameter to sink; SinkLog missing (got %v)", f.Sinks)
	}
	if f := flow("clone", 0); !f.ToResult {
		t.Errorf("clone returns its parameter; ToResult missing")
	}
	if f := flow("wrap", 0); f.Sinks&SinkLog == 0 {
		t.Errorf("wrap reaches sink through logIt's summary; SinkLog missing (got %v)", f.Sinks)
	}
	if f := flow("passThru", 0); !f.ToResult {
		t.Errorf("passThru returns clone(v); transitive ToResult missing")
	}
	if f := flow("ship", 0); f.Sinks&SinkWire == 0 {
		t.Errorf("ship wires clone(v); SinkWire through a ToResult helper missing (got %v)", f.Sinks)
	}
	for _, name := range []string{"gen", "indirect", "useDerive"} {
		if !nodeByName(t, g, name).Sum.ResultsTainted {
			t.Errorf("%s returns secret material; ResultsTainted missing", name)
		}
	}
	if f := flow("clean", 0); f.Sinks != 0 || f.ToResult {
		t.Errorf("clean has no flow; got %+v", f)
	}
	// Recursive SCC fixpoint: the sink in pong must surface on ping's
	// parameter too (ping only reaches it through the cycle).
	if f := flow("ping", 0); f.Sinks&SinkLog == 0 {
		t.Errorf("ping's parameter reaches sink through the ping/pong cycle; SinkLog missing (got %v)", f.Sinks)
	}
	if f := flow("pong", 0); f.Sinks&SinkLog == 0 {
		t.Errorf("pong's parameter reaches sink directly; SinkLog missing (got %v)", f.Sinks)
	}
	// The int counter parameter never touches a sink.
	if f := flow("ping", 1); f.Sinks != 0 {
		t.Errorf("ping's counter parameter is clean; got %v", f.Sinks)
	}
}

func TestValidatesSummaries(t *testing.T) {
	g := build(t, `
type M struct{ X int }
type C struct{ m *M }
type vError struct{}

func (vError) Error() string { return "bad" }

var ErrBad error = vError{}

func baseVerify(m *M) bool { return m != nil }

func checkTail(m *M) bool { return baseVerify(m) }

func checkGuard(m *M) error {
	if !baseVerify(m) {
		return ErrBad
	}
	return nil
}

func leaky(m *M, ok bool) bool {
	if ok {
		return true
	}
	return baseVerify(m)
}

func (c *C) check() error {
	if !baseVerify(c.m) {
		return ErrBad
	}
	return nil
}

func checkA(m *M, d int) bool {
	if d > 0 {
		return checkB(m, d-1)
	}
	return baseVerify(m)
}

func checkB(m *M, d int) bool {
	if !baseVerify(m) {
		return false
	}
	return checkA(m, d)
}
`, nil)
	g.ComputeValidates(&ValidateSpec{
		Validator: func(fn *types.Func) bool { return fn.Name() == "baseVerify" },
	})

	validates := func(name string, i int) bool { return nodeByName(t, g, name).Sum.ValidatesParam(i) }

	if !validates("checkTail", 0) {
		t.Errorf("checkTail tail-calls the base validator; ValidatesParam(0) missing")
	}
	if !validates("checkGuard", 0) {
		t.Errorf("checkGuard's only success return is verify-dominated; ValidatesParam(0) missing")
	}
	if validates("leaky", 0) {
		t.Errorf("leaky has an unverified success return (return true); must not validate")
	}
	if !nodeByName(t, g, "check").Sum.ValidatesRecv {
		t.Errorf("check verifies a field of its receiver on every success path; ValidatesRecv missing")
	}
	// Mutually recursive SCC: checkB validates via its own guard on the
	// first iteration, which makes checkA's tail call into checkB covering
	// on the next — the per-SCC fixpoint must converge with both set.
	if !validates("checkB", 0) || !validates("checkA", 0) {
		t.Errorf("validates-param lost through the checkA/checkB SCC: A=%v B=%v",
			validates("checkA", 0), validates("checkB", 0))
	}
	// The depth counter is never verified anywhere in the cycle.
	if validates("checkA", 1) || validates("checkB", 1) {
		t.Errorf("depth counter must not be marked validated")
	}
}
