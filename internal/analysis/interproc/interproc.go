// Package interproc is the inter-procedural layer of the troxy-lint suite:
// a package-level call graph over go/ast + go/types and a per-function
// summary computed bottom-up over the graph's strongly connected components
// (with a fixpoint for recursion). The summaries close the blind spots the
// intra-procedural dataflow engine documents as limits — a secret laundered
// through a helper, or a lock held across a call whose *callee* performs
// socket I/O — by recording, for every declared function:
//
//   - which parameters (receiver included) reach taint sinks inside the
//     function or anything it transitively calls (ParamFlow.Sinks);
//   - which parameters flow into the function's results (ParamFlow.ToResult),
//     so taint propagates through helper calls at the call site;
//   - whether the function's results are intrinsically secret (derived from
//     key material with no tainted input — the classic laundering helper);
//   - the may-effects of the function and everything it transitively calls:
//     channel sends, socket/frame I/O, and ecall transitions (Effects);
//   - which receiver locks it acquires, transitively through same-receiver
//     calls (RecvLocks — the callee side of the self-deadlock check).
//
// Call-graph resolution, and its soundness caveats (DESIGN.md §9.5):
//
//   - static calls and method calls on concrete receivers resolve exactly
//     (go/types Uses);
//   - interface method calls resolve conservatively to every package-local
//     type implementing the interface (a class-hierarchy approximation);
//     implementations outside the package are invisible — cross-package
//     discipline stays compositional, each package faces its own analysis;
//   - calls through func values (fields, variables, parameters of func
//     type) are not resolved; a node making such calls is marked
//     CallsFuncValue and its summary under-approximates. Function literals
//     are analyzed where they are written, not where they are invoked.
//
// Calls under a `go` statement contribute graph edges but no effects: the
// spawn itself cannot block the caller, and the goroutine's locks are its
// own. Deferred calls contribute effects — they run within the dynamic
// extent of the call, before control returns to the caller.
//
// All summary components are monotone (bit sets and booleans that only turn
// on), so the SCC fixpoint terminates; iteration is additionally capped as
// a defensive backstop.
package interproc

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis/dataflow"
)

// Effect is the may-effect bitmask of a function: operations that can block
// the caller indefinitely on a peer.
type Effect uint8

const (
	// EffectSend is a potentially blocking channel send (sends in a select
	// with a default arm are non-blocking by construction and excluded).
	EffectSend Effect = 1 << iota
	// EffectIO is socket or frame I/O: net.Conn methods, net.Buffers
	// vectored writes, internal/wire frame I/O, or concrete conn-shaped
	// Read/Write/Close calls.
	EffectIO
	// EffectECall is a trusted-subsystem transition (enclave.ECall).
	EffectECall
	// EffectAlloc is a transitive heap allocation on a non-failure path:
	// make/new, slice or map literals, &composite escapes, append growth,
	// string conversions/concatenation, closures, and goroutine spawns.
	// Allocations inside cold failure blocks (a block ending in a
	// `return ..., fmt.Errorf(...)`-shaped error exit or a panic) are
	// exempt — they match the happy-path semantics of the 0 allocs/op
	// benchmark gate. The allocfree analyzer consumes this bit.
	EffectAlloc
)

// EffectBlocking masks the effects that can block the caller indefinitely;
// lockcheck gates on this mask so the orthogonal EffectAlloc bit does not
// turn every allocating helper into a held-lock finding.
const EffectBlocking = EffectSend | EffectIO | EffectECall

func (e Effect) String() string {
	var parts []string
	if e&EffectSend != 0 {
		parts = append(parts, "channel send")
	}
	if e&EffectIO != 0 {
		parts = append(parts, "socket/frame I/O")
	}
	if e&EffectECall != 0 {
		parts = append(parts, "ecall transition")
	}
	if e&EffectAlloc != 0 {
		parts = append(parts, "heap allocation")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// SinkKind is the taint-sink bitmask of a parameter flow.
type SinkKind uint8

const (
	// SinkLog is a formatting/logging call (fmt, log, log/slog, errors).
	SinkLog SinkKind = 1 << iota
	// SinkWire is an internal/wire encoder (Writer methods, WriteFrame).
	SinkWire
)

// ParamFlow summarizes where one parameter's taint goes inside a function,
// transitively through same-package calls.
type ParamFlow struct {
	// Sinks are the sink kinds this parameter's taint reaches.
	Sinks SinkKind
	// ToResult reports whether the parameter taints a result value, so a
	// caller passing a tainted argument receives a tainted result.
	ToResult bool
}

// LockUse is one receiver lock a function acquires (directly or through a
// call on the same receiver): the selector path from the receiver to the
// mutex and the read/write mode.
type LockUse struct {
	Path string
	Read bool
}

// Summary is the inter-procedural summary of one declared function.
type Summary struct {
	// Effects are the transitive may-effects.
	Effects Effect

	// RecvFlow is the receiver's taint flow (zero value for non-methods).
	RecvFlow ParamFlow
	// Params are the taint flows of the declared parameters, in order.
	Params []ParamFlow
	// ResultsTainted reports whether a result carries taint with no tainted
	// input — the function derives secret material internally.
	ResultsTainted bool

	// ValidatesRecv / ValidatesParams report that the function verifies its
	// receiver / i-th declared parameter on every non-failure path: each
	// success return (bool true, nil error, or a tail call into another
	// validator) is dominated by a successful verification of that value.
	// Computed by ComputeValidates; zero until then.
	ValidatesRecv   bool
	ValidatesParams []bool

	// RecvLocks are the receiver locks acquired somewhere inside, including
	// through same-receiver calls.
	RecvLocks []LockUse
}

// ValidatesParam reports whether the function validates its i-th declared
// argument, folding variadic overflow onto the last parameter.
func (s *Summary) ValidatesParam(i int) bool {
	if len(s.ValidatesParams) == 0 {
		return false
	}
	if i >= len(s.ValidatesParams) {
		i = len(s.ValidatesParams) - 1
	}
	return s.ValidatesParams[i]
}

// ArgFlow maps a call-argument index to the matching parameter flow,
// folding variadic overflow onto the last parameter.
func (s *Summary) ArgFlow(i int) ParamFlow {
	if len(s.Params) == 0 {
		return ParamFlow{}
	}
	if i >= len(s.Params) {
		i = len(s.Params) - 1
	}
	return s.Params[i]
}

// hasRecvLock reports whether path/read is already recorded.
func (s *Summary) hasRecvLock(l LockUse) bool {
	for _, have := range s.RecvLocks {
		if have == l {
			return true
		}
	}
	return false
}

// Node is one declared function in the package call graph.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl

	// RecvObj is the receiver identifier's object (nil for functions and
	// unnamed receivers).
	RecvObj types.Object

	// Edges are the same-package calls this function makes.
	Edges []Edge

	// CallsFuncValue marks a call through a func value (unresolvable); the
	// summary under-approximates (documented caveat).
	CallsFuncValue bool

	// Sum is the function's summary, valid after Build returns.
	Sum Summary

	// effectTrace explains, per effect bit, the shortest call path to the
	// operation ("flushAll → wire.WriteFrame") for diagnostics.
	effectTrace map[Effect]string

	// ownReturns are the return statements belonging to this function's
	// body directly (not to nested literals).
	ownReturns map[*ast.ReturnStmt]bool

	// paramObjs are receiver (index 0 if present) + parameter objects; used
	// by the taint pass. paramStart is 1 when a receiver occupies slot 0.
	paramObjs  []types.Object
	paramStart int

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// EffectTrace renders the call path to one effect bit for a diagnostic,
// e.g. "flushAll → wire.WriteFrame". Empty when the node lacks the bit.
func (n *Node) EffectTrace(e Effect) string { return n.effectTrace[e] }

// TaintSpec parameterizes the taint half of the summaries; the analyzer
// that owns the source/sink vocabulary (secretflow) provides it. A nil spec
// skips taint computation (lockcheck needs only effects and locks).
type TaintSpec struct {
	// Source reports whether evaluating e introduces taint by itself.
	Source func(e ast.Expr) bool
	// Derivation reports whether fn's results carry taint when called
	// (key-derivation functions).
	Derivation func(fn *types.Func) bool
	// CallSink classifies an out-of-package callee as a sink for tainted
	// arguments (zero: not a sink).
	CallSink func(fn *types.Func) SinkKind
}

// Graph is the package-level call graph with computed summaries.
type Graph struct {
	info *types.Info
	pkg  *types.Package

	// Nodes maps every declared function and method to its node.
	Nodes map[*types.Func]*Node

	// SCCs lists the strongly connected components bottom-up: every
	// component appears after the components it calls into.
	SCCs [][]*Node
}

// maxSCCIterations caps the per-SCC fixpoint as a defensive backstop;
// monotone summaries converge far earlier in practice.
const maxSCCIterations = 32

// Build constructs the call graph for one package and computes the
// summaries bottom-up. spec may be nil to skip the taint half.
func Build(files []*ast.File, info *types.Info, pkg *types.Package, spec *TaintSpec) *Graph {
	g := &Graph{info: info, pkg: pkg, Nodes: make(map[*types.Func]*Node)}
	nonBlocking := collectNonBlockingSends(files)

	var order []*Node // declaration order, for deterministic iteration
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{Fn: fn, Decl: fd, effectTrace: make(map[Effect]string), index: -1}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if names := fd.Recv.List[0].Names; len(names) == 1 {
					n.RecvObj = info.Defs[names[0]]
				}
			}
			n.ownReturns = collectOwnReturns(fd.Body)
			n.collectParams(info)
			g.Nodes[fn] = n
			order = append(order, n)
		}
	}

	for _, n := range order {
		g.buildEdges(n)
	}
	g.computeSCCs(order)
	g.computeEffects(nonBlocking)
	g.computeLocks()
	if spec != nil {
		g.computeTaint(spec)
	}
	return g
}

// Lookup returns the node of fn, or nil for out-of-package or undeclared
// functions.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

func (n *Node) collectParams(info *types.Info) {
	if n.RecvObj != nil {
		n.paramObjs = append(n.paramObjs, n.RecvObj)
		n.paramStart = 1
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	if n.Decl.Type.Params == nil {
		return
	}
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			// Unnamed parameter: unusable inside the body, no flow possible,
			// but keep the slot so indexes line up.
			n.paramObjs = append(n.paramObjs, nil)
			continue
		}
		for _, name := range field.Names {
			n.paramObjs = append(n.paramObjs, info.Defs[name])
		}
	}
}

// Edge is one same-package call.
type Edge struct {
	Site   *ast.CallExpr
	Callee *Node
	// SameRecv marks a method call on this function's own receiver object,
	// the edge kind receiver-lock summaries propagate across.
	SameRecv bool
	// Go marks a call spawned by a go statement: a graph edge, but no
	// effect contribution (the spawn does not block the spawner).
	Go bool
}

// buildEdges resolves the calls in n's body. Function-literal bodies are
// skipped: literals are analyzed where they are written by the dataflow
// engine, and attributing their effects to the enclosing function would
// claim a goroutine's sends for its spawner.
func (g *Graph) buildEdges(n *Node) {
	goCalls := make(map[*ast.CallExpr]bool)
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.CallExpr:
			g.resolveCall(n, x, goCalls[x])
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
}

func (g *Graph) resolveCall(n *Node, call *ast.CallExpr, isGo bool) {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := g.info.Uses[f].(type) {
		case *types.Func:
			g.addEdge(n, call, obj, false, isGo)
		case *types.Var:
			n.CallsFuncValue = true // call through a func-typed variable
		}
	case *ast.SelectorExpr:
		sel := g.info.Selections[f]
		if sel == nil {
			// Qualified identifier (pkg.Func) or package-level selector.
			if fn, ok := g.info.Uses[f.Sel].(*types.Func); ok {
				g.addEdge(n, call, fn, false, isGo)
			} else if _, ok := g.info.Uses[f.Sel].(*types.Var); ok {
				n.CallsFuncValue = true
			}
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			if _, isVar := sel.Obj().(*types.Var); isVar {
				n.CallsFuncValue = true // func-typed struct field
			}
			return
		}
		recvType := sel.Recv()
		if types.IsInterface(recvType) {
			g.addInterfaceEdges(n, call, recvType, fn.Name(), isGo)
			return
		}
		sameRecv := false
		if n.RecvObj != nil {
			if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
				obj := g.info.Uses[id]
				if obj == nil {
					obj = g.info.Defs[id]
				}
				sameRecv = obj == n.RecvObj
			}
		}
		g.addEdge(n, call, fn, sameRecv, isGo)
	default:
		// Call of a call result, index expression, etc.: a func value.
		n.CallsFuncValue = true
	}
}

// addEdge records a call to fn if fn is declared in this package.
func (g *Graph) addEdge(n *Node, call *ast.CallExpr, fn *types.Func, sameRecv, isGo bool) {
	callee, ok := g.Nodes[fn]
	if !ok {
		return
	}
	n.Edges = append(n.Edges, Edge{Site: call, Callee: callee, SameRecv: sameRecv, Go: isGo})
}

// addInterfaceEdges resolves an interface method call conservatively: an
// edge to the matching method of every package-local type implementing the
// interface (class-hierarchy approximation).
func (g *Graph) addInterfaceEdges(n *Node, call *ast.CallExpr, iface types.Type, method string, isGo bool) {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return
	}
	scope := g.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(named, it):
			impl = named
		case types.Implements(types.NewPointer(named), it):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, g.pkg, method)
		if fn, ok := obj.(*types.Func); ok {
			g.addEdge(n, call, fn, false, isGo)
		}
	}
}

// computeSCCs runs Tarjan's algorithm; components are emitted callees-first
// (reverse topological order of the condensation), which is exactly the
// bottom-up order summary computation needs.
func (g *Graph) computeSCCs(order []*Node) {
	var (
		index int
		stack []*Node
	)
	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		n.index, n.lowlink = index, index
		index++
		stack = append(stack, n)
		n.onStack = true
		for _, e := range n.Edges {
			c := e.Callee
			if c.index < 0 {
				strongconnect(c)
				if c.lowlink < n.lowlink {
					n.lowlink = c.lowlink
				}
			} else if c.onStack && c.index < n.lowlink {
				n.lowlink = c.index
			}
		}
		if n.lowlink == n.index {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, n := range order {
		if n.index < 0 {
			strongconnect(n)
		}
	}
}

// computeEffects seeds each node with its direct effects, then propagates
// callee effects bottom-up over the SCCs (fixpoint within each component).
func (g *Graph) computeEffects(nonBlocking map[ast.Node]bool) {
	for _, scc := range g.SCCs {
		for _, n := range scc {
			g.directEffects(n, nonBlocking)
		}
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, n := range scc {
				for _, e := range n.Edges {
					if e.Go {
						continue
					}
					for _, bit := range []Effect{EffectSend, EffectIO, EffectECall, EffectAlloc} {
						if e.Callee.Sum.Effects&bit == 0 || n.Sum.Effects&bit != 0 {
							continue
						}
						n.Sum.Effects |= bit
						n.effectTrace[bit] = e.Callee.Fn.Name() + " → " + e.Callee.effectTrace[bit]
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
}

// directEffects records the blocking operations and allocation sites in n's
// own body (function-literal bodies and go-spawned calls excluded; the
// literal's own creation and the spawn itself are allocations).
func (g *Graph) directEffects(n *Node, nonBlocking map[ast.Node]bool) {
	cold := ColdRegions(g.info, n.Decl.Body)
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if desc, ok := AllocSite(g.info, node); ok && !cold[node] {
			n.addEffect(EffectAlloc, desc)
		}
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goCalls[x.Call] = true
			if !cold[node] {
				n.addEffect(EffectAlloc, "goroutine spawn")
			}
		case *ast.SendStmt:
			if !nonBlocking[x] {
				n.addEffect(EffectSend, "channel send")
			}
		case *ast.CallExpr:
			if goCalls[x] {
				return true
			}
			if why, bit := BlockingCall(g.info, x); bit != 0 {
				n.addEffect(bit, why)
			}
		}
		return true
	})
}

func (n *Node) addEffect(bit Effect, why string) {
	if n.Sum.Effects&bit != 0 {
		return
	}
	n.Sum.Effects |= bit
	n.effectTrace[bit] = why
}

// computeLocks records the receiver locks each method acquires, propagated
// across same-receiver edges bottom-up.
func (g *Graph) computeLocks() {
	for _, scc := range g.SCCs {
		for _, n := range scc {
			if n.RecvObj == nil {
				continue
			}
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				if _, ok := node.(*ast.FuncLit); ok {
					return false // a goroutine's locks are its own
				}
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				root, path, op, ok := MutexOp(g.info, call)
				if !ok || root != n.RecvObj {
					return true
				}
				if op == "Lock" || op == "RLock" {
					l := LockUse{Path: path, Read: op == "RLock"}
					if !n.Sum.hasRecvLock(l) {
						n.Sum.RecvLocks = append(n.Sum.RecvLocks, l)
					}
				}
				return true
			})
		}
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, n := range scc {
				if n.RecvObj == nil {
					continue
				}
				for _, e := range n.Edges {
					if !e.SameRecv || e.Go {
						continue
					}
					for _, l := range e.Callee.Sum.RecvLocks {
						if !n.Sum.hasRecvLock(l) {
							n.Sum.RecvLocks = append(n.Sum.RecvLocks, l)
							changed = true
						}
					}
				}
			}
			if !changed {
				break
			}
		}
	}
}

// computeTaint fills the ParamFlow / ResultsTainted halves of the
// summaries, bottom-up with a per-SCC fixpoint: each iteration reruns the
// dataflow engine over every function in the component — once per parameter
// (seeding only that parameter) and once with no seeds (intrinsic result
// taint) — against the summaries of the previous iteration.
func (g *Graph) computeTaint(spec *TaintSpec) {
	for _, scc := range g.SCCs {
		for _, n := range scc {
			n.Sum.Params = make([]ParamFlow, len(n.paramObjs)-n.paramStart)
		}
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, n := range scc {
				if g.taintOnce(n, spec) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// taintOnce recomputes n's taint summary against current callee summaries
// and reports whether it grew.
func (g *Graph) taintOnce(n *Node, spec *TaintSpec) bool {
	changed := false
	for i, obj := range n.paramObjs {
		if obj == nil {
			continue
		}
		flow := g.paramFlow(n, spec, obj)
		var dst *ParamFlow
		if n.paramStart == 1 && i == 0 {
			dst = &n.Sum.RecvFlow
		} else {
			dst = &n.Sum.Params[i-n.paramStart]
		}
		if flow.Sinks&^dst.Sinks != 0 || (flow.ToResult && !dst.ToResult) {
			dst.Sinks |= flow.Sinks
			dst.ToResult = dst.ToResult || flow.ToResult
			changed = true
		}
	}
	if !n.Sum.ResultsTainted && g.intrinsicResults(n, spec) {
		n.Sum.ResultsTainted = true
		changed = true
	}
	return changed
}

// paramFlow runs the engine over n's body with only obj seeded tainted and
// records which sinks and results the taint reaches.
func (g *Graph) paramFlow(n *Node, spec *TaintSpec, obj types.Object) ParamFlow {
	var flow ParamFlow
	h := &dataflow.Hooks{
		Info: g.info,
		TransferCall: func(call *ast.CallExpr, info dataflow.CallInfo, st *dataflow.State) bool {
			fn := CalleeFunc(g.info, call)
			if fn == nil || fn.Pkg() == nil {
				return false
			}
			if spec.Derivation(fn) {
				// Result derives from the inputs; with only this parameter
				// seeded, the result is param-dependent iff an input was.
				return info.ArgTainted
			}
			res := false
			if callee := g.Nodes[fn]; callee != nil {
				res = applySummary(&callee.Sum, info, func(k SinkKind) { flow.Sinks |= k })
			}
			// CallSink owns the sink vocabulary independently of summaries,
			// so it is consulted for every callee.
			if info.ArgTainted {
				flow.Sinks |= spec.CallSink(fn)
			}
			return res
		},
		OnReturn: func(ret *ast.ReturnStmt, tainted []bool, st *dataflow.State) {
			if !n.ownReturns[ret] {
				return
			}
			for _, t := range tainted {
				if t {
					flow.ToResult = true
				}
			}
		},
	}
	init := dataflow.NewState()
	init.Add(obj)
	dataflow.RunFrom(h, n.Decl.Body, init)
	return flow
}

// intrinsicResults runs the engine with the analyzer's own sources active
// and no parameters seeded, and reports whether a result carries taint —
// the laundering-helper shape (`func key() []byte { return hkdf.Key(...) }`).
func (g *Graph) intrinsicResults(n *Node, spec *TaintSpec) bool {
	tainted := false
	h := &dataflow.Hooks{
		Info:   g.info,
		Source: spec.Source,
		TransferCall: func(call *ast.CallExpr, info dataflow.CallInfo, st *dataflow.State) bool {
			fn := CalleeFunc(g.info, call)
			if fn == nil || fn.Pkg() == nil {
				return false
			}
			if spec.Derivation(fn) {
				return true
			}
			if callee := g.Nodes[fn]; callee != nil {
				return applySummary(&callee.Sum, info, func(SinkKind) {})
			}
			return false
		},
		OnReturn: func(ret *ast.ReturnStmt, ts []bool, st *dataflow.State) {
			if !n.ownReturns[ret] {
				return
			}
			for _, t := range ts {
				if t {
					tainted = true
				}
			}
		},
	}
	dataflow.Run(h, n.Decl.Body)
	return tainted
}

// applySummary folds a callee summary into a call site: sink bits of every
// tainted argument are reported through onSink, and the return value is
// tainted when the callee's results are intrinsically tainted or a tainted
// input flows to a result.
func applySummary(sum *Summary, info dataflow.CallInfo, onSink func(SinkKind)) bool {
	res := sum.ResultsTainted
	if info.RecvTainted {
		onSink(sum.RecvFlow.Sinks)
		res = res || sum.RecvFlow.ToResult
	}
	for i, t := range info.ArgsTainted {
		if !t {
			continue
		}
		f := sum.ArgFlow(i)
		onSink(f.Sinks)
		res = res || f.ToResult
	}
	return res
}

// collectOwnReturns gathers the return statements of body itself, skipping
// nested function literals.
func collectOwnReturns(body *ast.BlockStmt) map[*ast.ReturnStmt]bool {
	out := make(map[*ast.ReturnStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out[x] = true
		}
		return true
	})
	return out
}

// collectNonBlockingSends returns the send statements that are comm clauses
// of a select containing a default arm: non-blocking by construction.
func collectNonBlockingSends(files []*ast.File) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, cl := range sel.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, cl := range sel.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
					out[comm.Comm] = true
				}
			}
			return true
		})
	}
	return out
}

// ValidateSpec parameterizes the validates-param half of the summaries; the
// analyzer that owns the verification vocabulary (certgate) provides it.
type ValidateSpec struct {
	// Validator reports whether fn is a base verification function: a
	// successful call (true bool result or nil error result) establishes
	// that the values rooted at its arguments — and at its receiver chain —
	// were verified.
	Validator func(fn *types.Func) bool
}

// ComputeValidates fills the ValidatesRecv/ValidatesParams halves of the
// summaries, bottom-up with a per-SCC fixpoint: a function validates a
// parameter when every non-failure return is dominated by a successful
// verification of it (established by branch refinement against the base
// vocabulary plus the callee summaries of the previous iteration) or is a
// direct tail call into a validator covering it. Monotone — bits only turn
// on — so the fixpoint terminates.
func (g *Graph) ComputeValidates(spec *ValidateSpec) {
	for _, scc := range g.SCCs {
		for _, n := range scc {
			if n.Sum.ValidatesParams == nil {
				n.Sum.ValidatesParams = make([]bool, len(n.paramObjs)-n.paramStart)
			}
		}
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, n := range scc {
				if g.validatesOnce(n, spec) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// validateReturn is what one own-return statement looked like to the
// validates pass.
type validateReturn struct {
	failure  bool                  // a recognizably failing exit (false, fmt.Errorf, ErrX)
	tail     []types.Object        // objects a direct tail validator call covers
	verified map[types.Object]bool // param objects holding a VerifiedFact here
}

// validatesOnce recomputes n's validates summary against current callee
// summaries and reports whether it grew.
func (g *Graph) validatesOnce(n *Node, spec *ValidateSpec) bool {
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	res := sig.Results()
	convError := res.Len() >= 1 && isErrorType(res.At(res.Len()-1).Type())
	convBool := !convError && res.Len() == 1 && isBoolType(res.At(0).Type())
	if !convError && !convBool {
		return false // no recognizable success signal to summarize against
	}

	var rets []validateReturn
	h := &dataflow.Hooks{
		Info: g.info,
		Validates: func(call *ast.CallExpr) []types.Object {
			return g.ValidatedArgs(spec, call)
		},
		OnReturn: func(ret *ast.ReturnStmt, _ []bool, st *dataflow.State) {
			if !n.ownReturns[ret] {
				return
			}
			vr := validateReturn{verified: make(map[types.Object]bool)}
			if len(ret.Results) > 0 {
				last := ast.Unparen(ret.Results[len(ret.Results)-1])
				switch {
				case convBool && isIdentNamed(last, "false"),
					convError && failureErrorExpr(g.info, last):
					vr.failure = true
				default:
					if call, ok := last.(*ast.CallExpr); ok {
						vr.tail = g.ValidatedArgs(spec, call)
					} else if convError && !isIdentNamed(last, "nil") {
						// `return err` with err's provenance unknown:
						// conservative, counts as an unverified success path.
					}
				}
			}
			for _, obj := range n.paramObjs {
				if obj != nil && st.Verified(obj) {
					vr.verified[obj] = true
				}
			}
			rets = append(rets, vr)
		},
	}
	dataflow.Run(h, n.Decl.Body)

	changed := false
	for i, obj := range n.paramObjs {
		if obj == nil {
			continue
		}
		if !validatesObj(rets, obj) {
			continue
		}
		if n.paramStart == 1 && i == 0 {
			if !n.Sum.ValidatesRecv {
				n.Sum.ValidatesRecv = true
				changed = true
			}
		} else if !n.Sum.ValidatesParams[i-n.paramStart] {
			n.Sum.ValidatesParams[i-n.paramStart] = true
			changed = true
		}
	}
	return changed
}

// validatesObj reports whether every non-failure return covers obj and at
// least one such return exists.
func validatesObj(rets []validateReturn, obj types.Object) bool {
	success := 0
	for _, vr := range rets {
		if vr.failure {
			continue
		}
		success++
		if vr.verified[obj] {
			continue
		}
		covered := false
		for _, t := range vr.tail {
			if t == obj {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return success > 0
}

// ValidatedArgs returns the objects a call verifies when it succeeds: the
// roots of all arguments (and the receiver chain) for a base validator, and
// the roots of summarized parameters for an in-package callee with a
// validates-param summary. Empty when the call is not a validator. This is
// the closure analyzers hand to dataflow.Hooks.Validates.
func (g *Graph) ValidatedArgs(spec *ValidateSpec, call *ast.CallExpr) []types.Object {
	fn := CalleeFunc(g.info, call)
	if fn == nil {
		return nil
	}
	base := spec != nil && spec.Validator != nil && spec.Validator(fn)
	var node *Node
	if !base {
		node = g.Nodes[fn]
		if node == nil || (!node.Sum.ValidatesRecv && !anyTrue(node.Sum.ValidatesParams)) {
			return nil
		}
	}
	var out []types.Object
	add := func(e ast.Expr) {
		if obj := RootObj(g.info, e); obj != nil {
			out = append(out, obj)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base || node.Sum.ValidatesRecv {
			add(sel.X)
		}
	}
	for i, arg := range call.Args {
		if base || node.Sum.ValidatesParam(i) {
			add(arg)
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// RootObj returns the object at the base of a selector/index/star/slice
// chain, looking through parens, unary operators, type assertions, and
// single-argument conversions (m.Cert.Value → m, (*T)(p).X → p).
func RootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

// AllocSite classifies one AST node as a direct heap allocation and returns
// a short description. The vocabulary (shared by the EffectAlloc summary
// bit and the allocfree analyzer's site-level reporting): make/new, append
// growth, string↔slice conversions, slice/map literals, &composite escapes,
// string concatenation, and closures. Goroutine spawns are handled by the
// walkers (the GoStmt, not a sub-expression, is the site). Plain struct
// composites by value are not flagged (usually stack-allocated), and
// interface conversions are a documented under-approximation.
func AllocSite(info *types.Info, node ast.Node) (string, bool) {
	switch x := node.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					return "make", true
				case "new":
					return "new", true
				case "append":
					return "append (may grow its backing array)", true
				}
				return "", false
			}
		}
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			if isStringSliceConv(tv.Type, typeOf(info, x.Args[0])) {
				return "string conversion (copies)", true
			}
		}
	case *ast.CompositeLit:
		switch typeOf(info, x).Underlying().(type) {
		case *types.Slice:
			return "slice literal", true
		case *types.Map:
			return "map literal", true
		}
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				return "&composite literal (escapes to heap)", true
			}
		}
	case *ast.FuncLit:
		return "function literal (closure)", true
	case *ast.BinaryExpr:
		if x.Op.String() == "+" {
			if b, ok := typeOf(info, x).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return "string concatenation", true
			}
		}
	}
	return "", false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if t := info.Types[e].Type; t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func isStringSliceConv(to, from types.Type) bool {
	return (isStringy(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringy(from))
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// ColdRegions marks every node inside a cold failure block of body: a
// nested block whose last statement is a panic or a return carrying a
// recognizable error construction (fmt.Errorf, errors.New/Join, &FooError{},
// a package-level ErrX). Allocations there serve the failure path only —
// fmt.Errorf in an oversize-frame branch — and are exempt from EffectAlloc,
// matching the happy-path semantics of the 0 allocs/op benchmark gates.
// The function body itself never qualifies (a trailing `return err` is the
// happy path, not a failure exit).
func ColdRegions(info *types.Info, body *ast.BlockStmt) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	ast.Inspect(body, func(nd ast.Node) bool {
		b, ok := nd.(*ast.BlockStmt)
		if !ok || b == body || len(b.List) == 0 {
			return true
		}
		if !failureExit(info, b.List[len(b.List)-1]) {
			return true
		}
		ast.Inspect(b, func(m ast.Node) bool {
			if m != nil {
				cold[m] = true
			}
			return true
		})
		return false
	})
	return cold
}

// failureExit reports whether stmt is a recognizable failure-path exit.
func failureExit(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		return isIdentNamed(call.Fun, "panic")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if failureErrorExpr(info, r) {
				return true
			}
		}
	}
	return false
}

// failureErrorExpr recognizes an error-construction expression marking a
// failure return: fmt.Errorf(...), errors.New/Join(...), &FooError{...},
// or a package-level ErrX sentinel.
func failureErrorExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := CalleeFunc(info, x)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "fmt":
			return fn.Name() == "Errorf"
		case "errors":
			return fn.Name() == "New" || fn.Name() == "Join"
		}
	case *ast.UnaryExpr:
		if x.Op.String() != "&" {
			return false
		}
		cl, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		if !ok {
			return false
		}
		if named, ok := typeOf(info, cl).(*types.Named); ok {
			return strings.HasSuffix(named.Obj().Name(), "Error")
		}
	case *ast.Ident:
		return strings.HasPrefix(x.Name, "Err")
	}
	return false
}

// CalleeFunc resolves a call expression's static callee (nil for func
// values and unresolvable calls).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// MutexOp recognizes a sync.Mutex / sync.RWMutex method call and returns
// the lock's root object, the selector path from the root to the mutex
// (".state.mu" for c.state.mu), and the operation name.
func MutexOp(info *types.Info, call *ast.CallExpr) (root types.Object, path, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", "", false
	}
	if !isMutexType(info.Types[sel.X].Type) {
		return nil, "", "", false
	}
	root, path, ok = SplitLockExpr(info, sel.X)
	if !ok {
		return nil, "", "", false
	}
	return root, path, op, true
}

// SplitLockExpr splits a lock expression into its root object and selector
// path (c.state.mu -> root c, path ".state.mu").
func SplitLockExpr(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return nil, "", false
			}
			path := ""
			for i := len(parts) - 1; i >= 0; i-- {
				path += "." + parts[i]
			}
			return obj, path, true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil, "", false
		}
	}
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// BlockingCall classifies a call as a potentially indefinitely blocking
// operation, returning a short description and the effect bit (0 if not
// blocking). The vocabulary: net.Conn-shaped I/O, net.Buffers vectored
// writes, internal/wire frame I/O, and enclave ecall transitions.
func BlockingCall(info *types.Info, call *ast.CallExpr) (string, Effect) {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", 0
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	path := normalizePath(fn.Pkg().Path())
	switch path {
	case "net":
		switch fn.Name() {
		case "Read", "Write", "Accept", "Close":
			return fmt.Sprintf("net %s call", fn.Name()), EffectIO
		case "WriteTo":
			// net.Buffers.WriteTo: the vectored write behind the ring
			// transport's flush.
			return "net vectored write (Buffers.WriteTo)", EffectIO
		}
		return "", 0
	case modulePath + "/internal/wire":
		if fn.Name() == "ReadFrame" || fn.Name() == "WriteFrame" {
			return fmt.Sprintf("frame I/O (wire.%s)", fn.Name()), EffectIO
		}
		return "", 0
	case modulePath + "/internal/enclave":
		if fn.Name() == "ECall" {
			return "ecall transition", EffectECall
		}
		return "", 0
	}
	// Concrete Conn types: a Read/Write/Close method on a value with
	// net.Conn's core shape is treated as conn I/O.
	if sel != nil && isConnLike(info, sel.X) {
		switch fn.Name() {
		case "Read", "Write", "Close":
			return fmt.Sprintf("conn %s call", fn.Name()), EffectIO
		}
	}
	return "", 0
}

// modulePath mirrors analysis.ModulePath without importing the analysis
// package (which would be an import cycle once analysis grows helpers on
// top of interproc); the constant is asserted equal in the unit tests.
const modulePath = "github.com/troxy-bft/troxy"

func normalizePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	return strings.TrimSuffix(importPath, "_test")
}

// isConnLike reports whether e's type has the net.Conn core methods
// (Read/Write/Close plus deadlines) without needing the net package loaded.
func isConnLike(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	need := map[string]bool{"Read": false, "Write": false, "Close": false, "SetDeadline": false}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		if _, ok := need[name]; ok {
			need[name] = true
		}
	}
	for _, have := range need {
		if !have {
			return false
		}
	}
	return true
}
