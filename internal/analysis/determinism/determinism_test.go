package determinism_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer,
		"github.com/troxy-bft/troxy/internal/hybster/detpos",
		"github.com/troxy-bft/troxy/internal/realnet/detneg",
	)
}
