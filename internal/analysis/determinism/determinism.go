// Package determinism guards the replicated state machine's determinism
// (paper Section IV: all replicas must process the agreed sequence
// identically, and the Troxy's reply voting hashes must match across
// replicas). Inside the ordering core and the serialization/digest packages
// it flags the three classic determinism leaks:
//
//  1. wall-clock reads (time.Now, time.Since) — replicas disagree on time;
//     deterministic code receives time through node.Env.Now;
//
//  2. the process-global math/rand source (rand.Intn et al.) — shared,
//     unseeded state; deterministic code draws from an explicitly seeded
//     *rand.Rand (constructing one via rand.New(rand.NewSource(seed)) is
//     the sanctioned pattern and is not flagged);
//
//  3. protocol-visible iteration over a map — Go randomizes map order, so
//     any loop over a map whose body sends messages, feeds a digest, writes
//     wire bytes, collects the map's values, or calls a helper that takes
//     the runtime environment (a node.Env argument can send, set timers, or
//     charge costs) must first extract and sort the keys. Loops that only
//     collect keys (for later sorting), count votes, or delete entries are
//     order-insensitive and pass.
package determinism

import (
	"go/ast"
	"go/types"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// scopeRoots are the packages whose behavior is replicated or digest-visible:
// the ordering core, the trusted proxy logic, the trusted counters, and the
// message/wire serialization they all feed.
var scopeRoots = []string{
	"internal/hybster",
	"internal/troxy",
	"internal/tcounter",
	"internal/msg",
	"internal/wire",
}

// randConstructors are the math/rand package-level functions that build
// seeded sources rather than draw from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// effectCallees are method/function names whose invocation inside a
// map-range body makes the iteration order protocol-visible.
var effectCallees = map[string]bool{
	"Send":      true,
	"Broadcast": true,
	"SendTo":    true,
	"Certify":   true,
	"Digest":    true,
	"DigestOf":  true,
}

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global math/rand, and protocol-visible map iteration in the replicated ordering and digest path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok {
		return nil
	}
	inScope := false
	for _, r := range scopeRoots {
		if analysis.Under(rel, r) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"wall clock (time.%s) in replicated code: replicas disagree on time; take it from node.Env.Now or pass it across the boundary explicitly", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicitly constructed (seeded) source are fine
		}
		if randConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global math/rand source (rand.%s) in replicated code: draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead", fn.Name())
	}
}

// checkMapRange flags `for ... := range m` over a map whose body has a
// protocol-visible effect that depends on iteration order.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	valObj := rangeVarObj(pass, rng.Value)

	var effect string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(acc, v): accumulating the map's values (or anything beyond
		// the bare key) bakes iteration order into the result. Accumulating
		// only keys for a later sort is the sanctioned pattern.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args[1:] {
					if usesObj(pass, arg, valObj) {
						effect = "appends the map's values"
						return false
					}
				}
				return true
			}
		}
		// Any call that receives the runtime environment can send, set
		// timers, or charge costs — all protocol-visible. This is what makes
		// the pipeline's in-flight window safe to keep in a map: helpers like
		// the leader's re-proposal pump take node.Env, so iterating the
		// window map while driving them would leak map order into the
		// protocol. (hybster re-drives the window in sequence order instead.)
		for _, arg := range call.Args {
			if t := pass.TypesInfo.Types[arg].Type; t != nil && isNodeEnv(t) {
				effect = "drives the protocol (node.Env argument)"
				return false
			}
		}
		fn := callee(pass, call)
		if fn == nil {
			return true
		}
		if effectCallees[fn.Name()] {
			effect = "calls " + fn.Name()
			return false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "hash" {
			effect = "feeds a hash" // interface method of hash.Hash
			return false
		}
		if recv := recvNamed(fn); recv != nil {
			if relp, ok := analysis.RelPath(recv.Obj().Pkg().Path()); ok &&
				relp == "internal/wire" && recv.Obj().Name() == "Writer" {
				effect = "writes wire bytes"
				return false
			}
		}
		return true
	})
	if effect != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order is randomized but this loop %s: extract the keys, sort them, then iterate", effect)
	}
}

// isNodeEnv reports whether t is the node.Env runtime interface (identified
// by name and module-relative package path, so analysistest fixtures that
// mirror the module layout are recognized too).
func isNodeEnv(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Env" {
		return false
	}
	rel, ok := analysis.RelPath(obj.Pkg().Path())
	return ok && rel == "internal/node"
}

// callee resolves the static callee of a call, if it is a known function or
// method.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// usesObj reports whether expression e references obj.
func usesObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}
