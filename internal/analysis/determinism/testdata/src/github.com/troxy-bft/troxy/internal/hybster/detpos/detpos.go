// Package detpos must trigger determinism: wall clocks, the global
// math/rand source, and protocol-visible map iteration inside the ordering
// core's scope.
package detpos

import (
	"math/rand"
	"sort"
	"time"

	"github.com/troxy-bft/troxy/internal/node"
)

type out struct{}

// Send is protocol-visible: its name matches the effect set.
func (out) Send(to uint64, m any) {}

type core struct {
	pending map[uint64]string
	o       out
}

func (c *core) tick() time.Time {
	return time.Now() // want "wall clock"
}

func (c *core) pick() int {
	return rand.Intn(10) // want "global math/rand source"
}

// seeded draws from an explicitly constructed source: the sanctioned
// pattern, must not trigger.
func (c *core) seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func (c *core) flush() {
	for to, m := range c.pending { // want "map iteration order is randomized but this loop calls Send"
		c.o.Send(to, m)
	}
}

// collect gathers keys for later sorting: order-insensitive, must not
// trigger.
func (c *core) collect() []uint64 {
	keys := make([]uint64, 0, len(c.pending))
	for k := range c.pending {
		keys = append(keys, k)
	}
	return keys
}

func (c *core) values() []string {
	var vals []string
	for _, v := range c.pending { // want "appends the map's values"
		vals = append(vals, v)
	}
	return vals
}

// gc only deletes during iteration: order-insensitive, must not trigger.
func (c *core) gc() {
	for k := range c.pending {
		delete(c.pending, k)
	}
}

// forward is a helper that takes the runtime environment: calling it makes
// whatever loop drives it protocol-visible.
func (c *core) forward(env node.Env, seq uint64, m string) {
	env.Send(seq, m)
}

// redrive iterates the in-flight window map while driving a node.Env-taking
// helper: the re-proposal order leaks map order into the protocol.
func (c *core) redrive(env node.Env) {
	for seq, m := range c.pending { // want "drives the protocol"
		c.forward(env, seq, m)
	}
}

// redriveSorted extracts and sorts the window's sequence numbers before
// driving the helper: the sanctioned pattern, must not trigger.
func (c *core) redriveSorted(env node.Env) {
	seqs := make([]uint64, 0, len(c.pending))
	for s := range c.pending {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		c.forward(env, s, c.pending[s])
	}
}

// logOnly calls a method ON env rather than passing env as an argument:
// the Env-argument rule flags handing the environment onward, while bare
// method calls on env are judged by the effect-callee names (Send et al.).
// Logf is debug output, not protocol state, so this must not trigger.
func (c *core) logOnly(env node.Env) {
	for seq := range c.pending {
		env.Logf("pending %d", seq)
	}
}
