// Package detpos must trigger determinism: wall clocks, the global
// math/rand source, and protocol-visible map iteration inside the ordering
// core's scope.
package detpos

import (
	"math/rand"
	"time"
)

type out struct{}

// Send is protocol-visible: its name matches the effect set.
func (out) Send(to uint64, m any) {}

type core struct {
	pending map[uint64]string
	o       out
}

func (c *core) tick() time.Time {
	return time.Now() // want "wall clock"
}

func (c *core) pick() int {
	return rand.Intn(10) // want "global math/rand source"
}

// seeded draws from an explicitly constructed source: the sanctioned
// pattern, must not trigger.
func (c *core) seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func (c *core) flush() {
	for to, m := range c.pending { // want "map iteration order is randomized but this loop calls Send"
		c.o.Send(to, m)
	}
}

// collect gathers keys for later sorting: order-insensitive, must not
// trigger.
func (c *core) collect() []uint64 {
	keys := make([]uint64, 0, len(c.pending))
	for k := range c.pending {
		keys = append(keys, k)
	}
	return keys
}

func (c *core) values() []string {
	var vals []string
	for _, v := range c.pending { // want "appends the map's values"
		vals = append(vals, v)
	}
	return vals
}

// gc only deletes during iteration: order-insensitive, must not trigger.
func (c *core) gc() {
	for k := range c.pending {
		delete(c.pending, k)
	}
}
