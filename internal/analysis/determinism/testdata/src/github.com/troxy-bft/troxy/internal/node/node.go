// Package node mirrors the shape of the real internal/node runtime package
// just enough for the determinism fixtures: the analyzer identifies the Env
// interface by name and module-relative package path, so a fixture-local
// copy under the same import path is recognized.
package node

// Env is the runtime environment handed to a protocol handler. Any call
// receiving one can send messages, set timers, or charge costs, so its
// invocation is protocol-visible.
type Env interface {
	Send(to uint64, m any)
	Logf(format string, args ...any)
}
