// Package detneg is the boundary-adjacent negative for determinism: the
// untrusted network runtime legitimately owns wall clocks and real
// randomness, and sits outside the analyzer's scope — nothing here may
// trigger.
package detneg

import (
	"math/rand"
	"time"
)

// Jitter uses time and global randomness on the untrusted side.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(int(time.Since(time.Unix(0, 0)))))
}
