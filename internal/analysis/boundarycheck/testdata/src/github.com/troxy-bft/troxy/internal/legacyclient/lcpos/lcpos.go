// Package lcpos exercises the symbol-level check: legacyclient may import
// securechannel (a declared edge), but only its client surface.
package lcpos

import (
	sc "github.com/troxy-bft/troxy/internal/securechannel/scfake"
)

// Dial uses the declared client surface (allowed) and then reaches for the
// enclave-only server side (flagged).
func Dial() {
	h := sc.NewClientHandshake()
	h.Finish()
	var s sc.ServerHandshake // want "reaches trusted symbol internal/securechannel.ServerHandshake outside the declared ecall surface"
	_ = s
}
