// Package encfake stands in for the trusted enclave substrate in
// boundarycheck fixtures.
package encfake

// Launch pretends to start an enclave.
func Launch() {}
