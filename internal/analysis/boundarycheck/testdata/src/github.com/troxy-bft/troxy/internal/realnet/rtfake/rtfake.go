// Package rtfake stands in for the active untrusted network runtime in
// boundarycheck fixtures.
package rtfake

// Listen pretends to open a socket.
func Listen() {}
