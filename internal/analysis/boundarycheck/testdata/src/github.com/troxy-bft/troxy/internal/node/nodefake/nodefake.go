// Package nodefake stands in for the passive node interfaces in
// boundarycheck fixtures.
package nodefake

// Now pretends to read logical time.
func Now() int64 { return 0 }
