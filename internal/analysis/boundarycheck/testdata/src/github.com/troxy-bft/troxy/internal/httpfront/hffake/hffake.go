// Package hffake stands in for the passive HTTP codec in boundarycheck
// fixtures.
package hffake

// Parse pretends to parse a request.
func Parse() {}
