// Package tpos must trigger boundarycheck's no-ocall rule: a trusted
// package importing an active untrusted runtime.
package tpos

import (
	rn "github.com/troxy-bft/troxy/internal/realnet/rtfake" // want "trusted package internal/troxy must not import the untrusted runtime internal/realnet"
)

// Boot would give enclave code a socket.
func Boot() { rn.Listen() }
