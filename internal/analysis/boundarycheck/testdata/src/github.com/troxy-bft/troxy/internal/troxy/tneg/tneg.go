// Package tneg is the boundary-adjacent negative for the no-ocall rule:
// trusted code importing the PASSIVE untrusted packages (the node
// interfaces and the HTTP codec the enclave's reply voting needs) is
// explicitly permitted and must not trigger.
package tneg

import (
	hf "github.com/troxy-bft/troxy/internal/httpfront/hffake"
	nd "github.com/troxy-bft/troxy/internal/node/nodefake"
)

// Wire composes the permitted passive dependencies.
func Wire() {
	hf.Parse()
	_ = nd.Now()
}
