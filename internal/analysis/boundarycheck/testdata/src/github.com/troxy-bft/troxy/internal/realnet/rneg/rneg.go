// Package rneg is the boundary-adjacent negative for the ecall-surface
// rule: untrusted-to-untrusted imports are outside the boundary and must
// not trigger.
package rneg

import (
	nd "github.com/troxy-bft/troxy/internal/node/nodefake"
)

// Tick stays on the untrusted side.
func Tick() int64 { return nd.Now() }
