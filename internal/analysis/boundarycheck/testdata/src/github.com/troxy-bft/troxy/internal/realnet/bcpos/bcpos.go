// Package bcpos must trigger boundarycheck: an untrusted runtime package
// importing the trusted enclave substrate directly.
package bcpos

import (
	enclave "github.com/troxy-bft/troxy/internal/enclave/encfake" // want "untrusted package internal/realnet must not import trusted package internal/enclave"
)

// Boot bypasses the ecall surface.
func Boot() {
	enclave.Launch() // want "reaches trusted symbol internal/enclave.Launch outside the declared ecall surface"
}
