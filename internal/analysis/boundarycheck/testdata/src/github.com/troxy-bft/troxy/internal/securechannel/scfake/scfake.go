// Package scfake stands in for the secure-channel package in boundarycheck
// fixtures: a declared client surface plus an enclave-only server side.
package scfake

// ClientHandshake is part of the declared client surface.
type ClientHandshake struct{}

// NewClientHandshake is part of the declared client surface.
func NewClientHandshake() *ClientHandshake { return &ClientHandshake{} }

// Finish is covered by the ClientHandshake.* wildcard.
func (*ClientHandshake) Finish() {}

// ServerHandshake holds the service identity key; it exists only inside the
// enclave and is not part of the declared surface.
type ServerHandshake struct{}
