// Package boundarycheck enforces the enclave trust boundary of the paper's
// Section V-A ("the Troxy defines only 16 ecalls and no ocalls") on the
// import and reference graph:
//
//  1. Ecall surface (untrusted → trusted): the untrusted runtime packages
//     (realnet, httpfront, node, legacyclient, simnet) may not import the
//     trusted substrate (enclave, tcounter, troxy, securechannel) at all,
//     with one declared exception — legacyclient speaks the secure channel's
//     client side. Where an import is permitted, only the declared boundary
//     API may be referenced; reaching for enclave-internal symbols (e.g.
//     securechannel.ServerHandshake, which handles the service identity
//     private key) is a violation even through a permitted import.
//
//  2. No ocalls (trusted → untrusted): the trusted packages may not depend
//     on the active untrusted runtimes (realnet, simnet, legacyclient) —
//     enclave-resident code cannot own sockets, wall clocks, or goroutine
//     scheduling. Passive untrusted packages (node: pure interfaces;
//     httpfront: a pure protocol codec the Troxy's protocol handlers need
//     inside the enclave, as in the paper's protocol-specific reply voting)
//     remain importable.
package boundarycheck

import (
	"go/types"
	"strconv"
	"strings"

	"github.com/troxy-bft/troxy/internal/analysis"
)

// Trusted substrate roots (module-relative).
var trustedRoots = []string{
	"internal/enclave",
	"internal/tcounter",
	"internal/troxy",
	"internal/securechannel",
}

// Untrusted runtime roots (module-relative).
var untrustedRoots = []string{
	"internal/realnet",
	"internal/httpfront",
	"internal/node",
	"internal/legacyclient",
	"internal/simnet",
}

// activeUntrusted are the untrusted packages that own I/O, wall clocks, or
// scheduling; trusted code may never depend on them (rule 2).
var activeUntrusted = []string{
	"internal/realnet",
	"internal/simnet",
	"internal/legacyclient",
}

// allowedImports whitelists (untrusted package root → trusted package root)
// import edges. Everything not listed is a violation at the import site.
var allowedImports = map[string]map[string]bool{
	"internal/legacyclient": {"internal/securechannel": true},
}

// allowedSymbols is the declared boundary API per trusted root: the symbols
// untrusted code may reference through a permitted import. Keys are "Name"
// for package-level objects and "Type.Member" for methods and fields;
// "Type.*" admits every member of a type.
var allowedSymbols = map[string]map[string]bool{
	"internal/securechannel": {
		// Client-side handshake and record protection: this is the wire
		// protocol a legacy client speaks toward the Troxy. The server side
		// (ServerHandshake, ServerConn) holds the service identity key and
		// exists only inside the enclave boundary.
		"NewClientHandshake": true,
		"ClientHandshake":    true,
		"ClientHandshake.*":  true,
		"Session":            true,
		"Session.Seal":       true,
		"Session.Open":       true,
		// Coalesced-record siblings of Seal/Open: one AEAD pass per flushed
		// batch. Same trust story — record protection is exactly what the
		// client side of the channel is for.
		"Session.SealFrames":      true,
		"Session.OpenFrames":      true,
		"Session.Established":     true,
		"Conn":                    true,
		"Conn.*":                  true,
		"ClientConn":              true,
		"IsHandshakeFrame":        true,
		"RecordSize":              true,
		"Overhead":                true,
		"HandshakeOverheadClient": true,
		"HandshakeOverheadServer": true,
		"ErrHandshake":            true,
		"ErrRecord":               true,
		"ErrNotEstablished":       true,
	},
	// No other trusted root has a declared surface toward the untrusted
	// runtimes: the replica composition layer (internal/replica, cmd/*)
	// launches enclaves and routes ecalls, and it is deliberately not part
	// of the untrusted set checked here.
	"internal/enclave":  {},
	"internal/tcounter": {},
	"internal/troxy":    {},
}

// Analyzer is the boundarycheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "boundarycheck",
	Doc:  "enforce the enclave trust boundary: untrusted code reaches trusted packages only through the declared ecall surface, and trusted code performs no ocalls into active untrusted runtimes",
	Run:  run,
}

func rootOf(rel string, roots []string) (string, bool) {
	for _, r := range roots {
		if analysis.Under(rel, r) {
			return r, true
		}
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPath(pass.Path())
	if !ok {
		return nil
	}
	if root, ok := rootOf(rel, trustedRoots); ok {
		checkTrusted(pass, root)
	}
	if root, ok := rootOf(rel, untrustedRoots); ok {
		checkUntrusted(pass, root)
	}
	return nil
}

// checkTrusted enforces the no-ocall rule on a trusted package's imports.
func checkTrusted(pass *analysis.Pass, selfRoot string) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			rel, ok := analysis.RelPath(analysis.NormalizePath(path))
			if !ok {
				continue
			}
			if root, ok := rootOf(rel, activeUntrusted); ok {
				pass.Reportf(imp.Pos(),
					"trusted package %s must not import the untrusted runtime %s: enclave-resident code performs no ocalls (sockets, clocks, scheduling stay outside the boundary)",
					selfRoot, root)
			}
		}
	}
}

// checkUntrusted enforces the ecall-surface rule on an untrusted package.
func checkUntrusted(pass *analysis.Pass, selfRoot string) {
	// Import-level: untrusted may import trusted only along declared edges.
	permitted := allowedImports[selfRoot]
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			rel, ok := analysis.RelPath(analysis.NormalizePath(path))
			if !ok {
				continue
			}
			if root, ok := rootOf(rel, trustedRoots); ok && !permitted[root] {
				pass.Reportf(imp.Pos(),
					"untrusted package %s must not import trusted package %s: the enclave is entered only through the declared ecall surface (see DESIGN.md, trust-boundary enforcement)",
					selfRoot, root)
			}
		}
	}

	// Symbol-level: through a permitted import, only the declared boundary
	// API may be referenced.
	for id, obj := range pass.TypesInfo.Uses {
		if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
			continue
		}
		rel, ok := analysis.RelPath(analysis.NormalizePath(obj.Pkg().Path()))
		if !ok {
			continue
		}
		root, ok := rootOf(rel, trustedRoots)
		if !ok {
			continue
		}
		key, ok := symbolKey(obj)
		if !ok {
			continue // fields/methods without resolvable owners are covered via their type
		}
		if !symbolAllowed(allowedSymbols[root], key) {
			pass.Reportf(id.Pos(),
				"untrusted package %s reaches trusted symbol %s.%s outside the declared ecall surface",
				selfRoot, root, key)
		}
	}
}

// symbolKey maps an object to its allowlist key: "Name" for package-level
// objects, "Recv.Name" for methods. Struct fields return ok=false — their
// owning type's own uses gate access.
func symbolKey(obj types.Object) (string, bool) {
	switch obj := obj.(type) {
	case *types.Func:
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return obj.Name(), true
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name(), true
		}
		return obj.Name(), true
	case *types.Var:
		if obj.IsField() {
			return "", false
		}
		return obj.Name(), true
	case *types.Const, *types.TypeName:
		return obj.Name(), true
	}
	return "", false
}

func symbolAllowed(set map[string]bool, key string) bool {
	if set[key] {
		return true
	}
	if typ, _, ok := strings.Cut(key, "."); ok && set[typ+".*"] {
		return true
	}
	return false
}
