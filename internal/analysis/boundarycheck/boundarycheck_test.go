package boundarycheck_test

import (
	"testing"

	"github.com/troxy-bft/troxy/internal/analysis/analysistest"
	"github.com/troxy-bft/troxy/internal/analysis/boundarycheck"
)

func TestBoundaryCheck(t *testing.T) {
	analysistest.Run(t, boundarycheck.Analyzer,
		"github.com/troxy-bft/troxy/internal/realnet/bcpos",
		"github.com/troxy-bft/troxy/internal/legacyclient/lcpos",
		"github.com/troxy-bft/troxy/internal/troxy/tpos",
		"github.com/troxy-bft/troxy/internal/troxy/tneg",
		"github.com/troxy-bft/troxy/internal/realnet/rneg",
	)
}
