package standalone

import (
	"bytes"
	"crypto/ed25519"
	"math/rand"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/httpfront"
	"github.com/troxy-bft/troxy/internal/legacyclient"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/workload"
)

func identity() ([]byte, ed25519.PublicKey) {
	seed := bytes.Repeat([]byte{9}, ed25519.SeedSize)
	return seed, ed25519.NewKeyFromSeed(seed).Public().(ed25519.PublicKey)
}

type scriptGen struct {
	ops []workload.Op
	i   int
}

func (g *scriptGen) Next(*rand.Rand) workload.Op {
	if g.i >= len(g.ops) {
		return g.ops[len(g.ops)-1]
	}
	op := g.ops[g.i]
	g.i++
	return op
}

func TestStandaloneKVRoundTrip(t *testing.T) {
	seed, pub := identity()
	srv := New(Config{Self: 60, IdentitySeed: seed, App: app.NewStore()})
	net := simnet.New(1, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	net.Attach(60, srv)

	rec := workload.NewRecorder()
	rec.Begin(0)
	lc := legacyclient.New(legacyclient.Config{
		Machine: 100, Clients: 1, FirstClientID: 1,
		Replicas:  []msg.NodeID{60},
		ServerPub: pub,
		Gen: &scriptGen{ops: []workload.Op{
			{Op: []byte("PUT a 1")},
			{Op: []byte("GET a"), Read: true},
		}},
		Rec: rec, MaxOps: 2, Timeout: time.Second,
	})
	net.Attach(100, lc)
	net.Run(10 * time.Second)
	if lc.Done() != 2 {
		t.Fatalf("done = %d/2", lc.Done())
	}
	if srv.Executed() != 2 {
		t.Errorf("server executed %d", srv.Executed())
	}
}

func TestStandaloneHTTP(t *testing.T) {
	seed, pub := identity()
	srv := New(Config{
		Self:         60,
		IdentitySeed: seed,
		App:          httpfront.NewAppFactory(map[string][]byte{"/x": []byte("body")})(),
		HTTP:         true,
	})
	net := simnet.New(1, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	net.Attach(60, srv)

	lc := legacyclient.New(legacyclient.Config{
		Machine: 100, Clients: 1, FirstClientID: 1,
		Replicas:  []msg.NodeID{60},
		ServerPub: pub,
		Gen: &scriptGen{ops: []workload.Op{
			{Op: []byte("GET /x HTTP/1.1\r\nHost: t\r\n\r\n"), Read: true},
		}},
		MaxOps: 1, Timeout: time.Second, HTTP: true,
	})
	net.Attach(100, lc)
	net.Run(10 * time.Second)
	if lc.Done() != 1 {
		t.Fatalf("done = %d/1", lc.Done())
	}
}

func TestStandaloneIgnoresGarbage(t *testing.T) {
	seed, _ := identity()
	srv := New(Config{Self: 60, IdentitySeed: seed, App: app.NewStore()})
	net := simnet.New(1, nil)
	net.Attach(60, srv)
	net.Attach(100, &garbageSender{to: 60})
	net.Run(time.Second)
	if srv.Executed() != 0 {
		t.Error("garbage led to execution")
	}
}

type garbageSender struct{ to msg.NodeID }

func (g *garbageSender) OnStart(env node.Env) {
	env.Send(msg.Seal(env.Self(), g.to, &msg.ChannelData{ConnID: 1, Payload: []byte("junk")}))
}

func (g *garbageSender) OnEnvelope(node.Env, *msg.Envelope) {}
func (g *garbageSender) OnTimer(node.Env, node.TimerKey)    {}
