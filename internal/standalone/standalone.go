// Package standalone implements the unreplicated service used as the
// latency reference in the HTTP experiment (the "Jetty" configuration of
// Fig. 11): a single node terminating secure channels and executing the
// application directly, with no agreement protocol, no voter and no cache.
package standalone

import (
	"crypto/ed25519"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/httpfront"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/securechannel"
)

// Config parameterizes the standalone server.
type Config struct {
	// Self is the server's node ID.
	Self msg.NodeID

	// IdentitySeed is the Ed25519 seed of the TLS identity.
	IdentitySeed []byte

	// App is the application served.
	App app.Application

	// HTTP switches the client protocol to HTTP/1.1 byte streams.
	HTTP bool
}

type session struct {
	connID  uint64
	nodeID  msg.NodeID
	sc      *securechannel.Session
	httpBuf []byte
}

// Server is the standalone service node.
type Server struct {
	cfg      Config
	identity ed25519.PrivateKey
	sessions map[uint64]*session
	executed uint64
}

var _ node.Handler = (*Server)(nil)

// New creates a standalone server.
func New(cfg Config) *Server {
	return &Server{
		cfg:      cfg,
		identity: ed25519.NewKeyFromSeed(cfg.IdentitySeed),
		sessions: make(map[uint64]*session),
	}
}

// Executed returns the number of operations served.
func (s *Server) Executed() uint64 { return s.executed }

// OnStart implements node.Handler.
func (s *Server) OnStart(node.Env) {}

// OnTimer implements node.Handler.
func (s *Server) OnTimer(node.Env, node.TimerKey) {}

// OnEnvelope implements node.Handler.
func (s *Server) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindChannelData {
		return
	}
	raw, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := raw.(*msg.ChannelData)
	if !ok {
		return
	}
	sess, ok := s.sessions[cd.ConnID]
	if !ok {
		sess = &session{connID: cd.ConnID, nodeID: e.From}
		s.sessions[cd.ConnID] = sess
	}
	sess.nodeID = e.From

	if securechannel.IsHandshakeFrame(cd.Payload) {
		sc, hello, err := securechannel.ServerHandshake(s.identity, cd.Payload, env.Rand())
		if err != nil {
			return
		}
		sess.sc = sc
		sess.httpBuf = nil
		s.reply(env, sess, hello)
		return
	}
	if !sess.sc.Established() {
		return
	}
	// Plain or coalesced record: one AEAD pass authenticates every sub-frame
	// before any of them execute.
	frames, err := sess.sc.OpenFrames(cd.Payload)
	if err != nil {
		return
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, total)

	if s.cfg.HTTP {
		for _, plaintext := range frames {
			sess.httpBuf = append(sess.httpBuf, plaintext...)
		}
		for {
			op, consumed, err := httpfront.ExtractRequest(sess.httpBuf)
			if err != nil || op == nil {
				return
			}
			sess.httpBuf = sess.httpBuf[consumed:]
			s.execute(env, sess, 0, op, true)
		}
	}

	for _, plaintext := range frames {
		frame, err := msg.DecodeChannelRequest(plaintext)
		if err != nil {
			return
		}
		s.execute(env, sess, frame.Seq, frame.Op, false)
	}
}

func (s *Server) execute(env node.Env, sess *session, seq uint64, op []byte, http bool) {
	result := s.cfg.App.Execute(op)
	env.Charge(node.ProfileJava, node.ChargeExec, len(op)+len(result))
	s.executed++

	plaintext := result
	if !http {
		plaintext = msg.EncodeChannelReply(&msg.ChannelReply{
			Seq:    seq,
			Status: msg.StatusOK,
			Result: result,
		})
	}
	record, err := sess.sc.Seal(plaintext)
	if err != nil {
		return
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, len(plaintext))
	s.reply(env, sess, record)
}

func (s *Server) reply(env node.Env, sess *session, frame []byte) {
	env.Send(msg.Seal(s.cfg.Self, sess.nodeID, &msg.ChannelData{
		ConnID:  sess.connID,
		Payload: frame,
	}))
}
