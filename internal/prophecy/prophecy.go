// Package prophecy implements the Prophecy-style middlebox baseline the
// paper compares against (Section VI-D and Table I): a trusted proxy box
// placed between clients and the replicas that keeps a *sketch cache* —
// per-operation digests of previously voted read results.
//
//   - A read whose sketch is cached goes to ONE randomly chosen replica for
//     speculative execution; the full reply is returned to the client if its
//     digest matches the sketch.
//   - Sketches are updated by ordered reads, not invalidated by writes:
//     "the reply of a read operation reflects the state of the latest read,
//     so in the worst case it would return a stale but correct result" —
//     weak consistency, the trade-off Table I records.
//   - Unlike Troxy, the whole middlebox (OS, network stack, proxy process)
//     must be trusted, and it is a separate hop on the client path.
//
// The original Prophecy runs over 3f+1 PBFT; this reproduction runs it over
// the same 2f+1 hybrid substrate as everything else (see DESIGN.md), which
// preserves the properties the Fig. 11 experiment measures: one extra
// network hop, near-replica voting, and single-replica fast reads.
package prophecy

import (
	"crypto/ed25519"
	"time"

	"github.com/troxy-bft/troxy/internal/authn"
	"github.com/troxy-bft/troxy/internal/httpfront"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/securechannel"
)

// Config parameterizes the middlebox.
type Config struct {
	// Self is the middlebox's node ID.
	Self msg.NodeID

	// N and F are the replication parameters of the backing cluster.
	N, F int

	// Directory provides middlebox↔replica MAC keys.
	Directory *authn.Directory

	// IdentitySeed is the Ed25519 seed of the TLS identity clients pin.
	IdentitySeed []byte

	// Classify reports whether an operation is read-only.
	Classify func(op []byte) bool

	// HTTP switches the client protocol to HTTP/1.1 byte streams.
	HTTP bool

	// Timeout bounds ordered requests and speculative reads before
	// retransmission (zero: 1s).
	Timeout time.Duration

	// MaxSketches bounds the sketch cache (zero: 1<<20 entries).
	MaxSketches int
}

// Stats counts middlebox events.
type Stats struct {
	Requests   uint64
	FastOK     uint64 // sketch-validated single-replica reads
	FastMiss   uint64 // sketch misses or mismatches
	Ordered    uint64
	BadReplies uint64
	Unhandled  uint64 // envelopes of a kind the middlebox does not speak
}

type session struct {
	connID  uint64
	nodeID  msg.NodeID
	sc      *securechannel.Session
	httpBuf []byte
	nextSeq uint64
}

type pendKey struct {
	client uint64
	seq    uint64
}

type pending struct {
	connID  uint64
	opHash  msg.Digest
	op      []byte
	read    bool
	direct  bool
	target  msg.NodeID // expected executor for direct reads
	replies map[msg.NodeID]msg.Digest
	results map[msg.Digest][]byte
}

const (
	timerOp = "prophecy/op"
)

// Middlebox is the Prophecy proxy node.
type Middlebox struct {
	cfg      Config
	identity ed25519.PrivateKey
	auth     *authn.Authenticator

	sessions map[uint64]*session
	sketches map[msg.Digest]msg.Digest
	pending  map[pendKey]*pending

	stats Stats
}

var _ node.Handler = (*Middlebox)(nil)

// New creates a middlebox.
func New(cfg Config) *Middlebox {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.MaxSketches <= 0 {
		cfg.MaxSketches = 1 << 20
	}
	return &Middlebox{
		cfg:      cfg,
		identity: ed25519.NewKeyFromSeed(cfg.IdentitySeed),
		auth:     authn.NewAuthenticator(cfg.Self, cfg.Directory),
		sessions: make(map[uint64]*session),
		sketches: make(map[msg.Digest]msg.Digest),
		pending:  make(map[pendKey]*pending),
	}
}

// Stats returns the middlebox counters.
func (m *Middlebox) Stats() Stats { return m.stats }

// OnStart implements node.Handler.
func (m *Middlebox) OnStart(node.Env) {}

// OnEnvelope implements node.Handler.
func (m *Middlebox) OnEnvelope(env node.Env, e *msg.Envelope) {
	switch e.Kind {
	case msg.KindChannelData:
		m.onChannelData(env, e)
	case msg.KindBFTReply:
		m.onReply(env, e)
	default:
		// The middlebox sits on the client edge: it only speaks the secure
		// channel and the reply path. Replica-to-replica kinds never route
		// here; count them so a routing bug is visible.
		m.stats.Unhandled++
	}
}

func (m *Middlebox) onChannelData(env node.Env, e *msg.Envelope) {
	raw, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := raw.(*msg.ChannelData)
	if !ok {
		return
	}
	sess, ok := m.sessions[cd.ConnID]
	if !ok {
		sess = &session{connID: cd.ConnID, nodeID: e.From}
		m.sessions[cd.ConnID] = sess
	}
	sess.nodeID = e.From

	if securechannel.IsHandshakeFrame(cd.Payload) {
		sc, hello, err := securechannel.ServerHandshake(m.identity, cd.Payload, env.Rand())
		if err != nil {
			return
		}
		sess.sc = sc
		sess.httpBuf = nil
		m.sendToClient(env, sess, hello)
		return
	}
	if !sess.sc.Established() {
		return
	}
	// Plain or coalesced record: one AEAD pass authenticates every sub-frame
	// before any of them reach the cache.
	frames, err := sess.sc.OpenFrames(cd.Payload)
	if err != nil {
		return
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, total)

	if m.cfg.HTTP {
		for _, plaintext := range frames {
			sess.httpBuf = append(sess.httpBuf, plaintext...)
		}
		for {
			op, consumed, err := httpfront.ExtractRequest(sess.httpBuf)
			if err != nil || op == nil {
				return
			}
			sess.httpBuf = sess.httpBuf[consumed:]
			sess.nextSeq++
			m.handleOp(env, sess, cd.ConnID, sess.nextSeq, op)
		}
	}

	for _, plaintext := range frames {
		frame, err := msg.DecodeChannelRequest(plaintext)
		if err != nil {
			return
		}
		m.handleOp(env, sess, frame.Client, frame.Seq, frame.Op)
	}
}

// handleOp routes one client operation through the sketch cache.
func (m *Middlebox) handleOp(env node.Env, sess *session, client, seq uint64, op []byte) {
	m.stats.Requests++
	read := m.cfg.Classify != nil && m.cfg.Classify(op)
	opHash := msg.DigestOf(op)
	env.Charge(node.ProfileJava, node.ChargeHash, len(op))

	key := pendKey{client: client, seq: seq}
	if _, dup := m.pending[key]; dup {
		return // retransmission of an in-flight request
	}
	p := &pending{
		connID:  sess.connID,
		opHash:  opHash,
		op:      op,
		read:    read,
		replies: make(map[msg.NodeID]msg.Digest),
		results: make(map[msg.Digest][]byte),
	}
	m.pending[key] = p

	if read {
		if _, cached := m.sketches[opHash]; cached {
			// Fast path: one randomly chosen replica executes speculatively.
			p.direct = true
			p.target = msg.NodeID(env.Rand().Intn(m.cfg.N))
			m.sendToReplica(env, p.target, &msg.BFTRequest{
				Client:    client,
				ClientSeq: seq,
				Flags:     msg.FlagReadOnly | msg.FlagDirect,
				Op:        op,
			})
			env.SetTimer(m.cfg.Timeout, m.timerKey(key))
			return
		}
		m.stats.FastMiss++
	}
	m.order(env, key, p)
}

// order submits the request for regular BFT ordering.
func (m *Middlebox) order(env node.Env, key pendKey, p *pending) {
	m.stats.Ordered++
	p.direct = false
	p.replies = make(map[msg.NodeID]msg.Digest)
	p.results = make(map[msg.Digest][]byte)
	flags := uint8(0)
	if p.read {
		flags = msg.FlagReadOnly
	}
	req := &msg.BFTRequest{
		Client:    key.client,
		ClientSeq: key.seq,
		Flags:     flags,
		Op:        p.op,
	}
	// The middlebox does not track views; broadcasting lets any leader pick
	// the request up (followers forward).
	for i := 0; i < m.cfg.N; i++ {
		m.sendToReplica(env, msg.NodeID(i), req)
	}
	env.SetTimer(m.cfg.Timeout, m.timerKey(key))
}

func (m *Middlebox) timerKey(key pendKey) node.TimerKey {
	return node.TimerKey{Kind: timerOp, ID: key.client<<20 ^ key.seq}
}

func (m *Middlebox) sendToReplica(env node.Env, to msg.NodeID, req *msg.BFTRequest) {
	e := msg.Seal(m.cfg.Self, to, req)
	env.Charge(node.ProfileJava, node.ChargeMAC, len(e.Body))
	m.auth.SealMAC(e)
	env.Send(e)
}

func (m *Middlebox) sendToClient(env node.Env, sess *session, frame []byte) {
	env.Send(msg.Seal(m.cfg.Self, sess.nodeID, &msg.ChannelData{
		ConnID:  sess.connID,
		Payload: frame,
	}))
}

// onReply processes replica replies for both paths.
func (m *Middlebox) onReply(env node.Env, e *msg.Envelope) {
	env.Charge(node.ProfileJava, node.ChargeMAC, len(e.Body))
	if !m.auth.VerifyMAC(e) {
		m.stats.BadReplies++
		return
	}
	raw, err := e.Open()
	if err != nil {
		return
	}
	rep, ok := raw.(*msg.BFTReply)
	if !ok || rep.Executor != e.From {
		m.stats.BadReplies++
		return
	}
	key := pendKey{client: rep.Client, seq: rep.ClientSeq}
	p, ok := m.pending[key]
	if !ok {
		return
	}

	if p.direct {
		if !rep.Direct || rep.Executor != p.target {
			return
		}
		h := msg.DigestOf(rep.Result)
		env.Charge(node.ProfileJava, node.ChargeHash, len(rep.Result))
		if rep.Conflict || h != m.sketches[p.opHash] {
			// Sketch mismatch: fall back to ordering.
			m.stats.FastMiss++
			m.order(env, key, p)
			return
		}
		m.stats.FastOK++
		m.finish(env, key, p, rep.Result)
		return
	}

	if rep.Direct {
		return // stale speculative reply from an earlier attempt
	}
	if _, dup := p.replies[rep.Executor]; dup {
		return
	}
	h := msg.DigestOf(rep.Result)
	env.Charge(node.ProfileJava, node.ChargeHash, len(rep.Result))
	p.replies[rep.Executor] = h
	if _, ok := p.results[h]; !ok {
		p.results[h] = rep.Result
	}
	matching := 0
	for _, vh := range p.replies {
		if vh == h {
			matching++
		}
	}
	if matching < m.cfg.F+1 {
		return
	}
	// Voted: update the sketch (Prophecy caches the result of ordered
	// reads) and answer the client.
	if p.read {
		if len(m.sketches) >= m.cfg.MaxSketches {
			m.sketches = make(map[msg.Digest]msg.Digest) // crude reset
		}
		m.sketches[p.opHash] = h
	}
	m.finish(env, key, p, p.results[h])
}

// finish returns the result to the client and clears the request state.
func (m *Middlebox) finish(env node.Env, key pendKey, p *pending, result []byte) {
	delete(m.pending, key)
	env.CancelTimer(m.timerKey(key))
	sess, ok := m.sessions[p.connID]
	if !ok || !sess.sc.Established() {
		return
	}
	plaintext := result
	if !m.cfg.HTTP {
		plaintext = msg.EncodeChannelReply(&msg.ChannelReply{
			Seq:    key.seq,
			Status: msg.StatusOK,
			Result: result,
		})
	}
	record, err := sess.sc.Seal(plaintext)
	if err != nil {
		return
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, len(plaintext))
	m.sendToClient(env, sess, record)
}

// OnTimer implements node.Handler: a stalled request is re-ordered.
func (m *Middlebox) OnTimer(env node.Env, key node.TimerKey) {
	if key.Kind != timerOp {
		return
	}
	for k, p := range m.pending {
		if m.timerKey(k) == key {
			m.order(env, k, p)
			return
		}
	}
}
