package prophecy

import (
	"math/rand"
	"testing"
	"time"

	troxy "github.com/troxy-bft/troxy"
	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/legacyclient"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/workload"
)

const middleboxID msg.NodeID = 50

func benchClassifier(op []byte) bool { return app.BenchIsRead(op) }

// deployment wires a Baseline cluster, a middlebox, and one client machine.
func deployment(t *testing.T, gen workload.Generator, maxOps int) (*troxy.Cluster, *Middlebox, *legacyclient.Machine, *simnet.Network) {
	t.Helper()
	cluster, err := troxy.NewCluster(troxy.ClusterConfig{
		Mode:              troxy.Baseline,
		App:               app.NewBenchFactory(128),
		Classify:          benchClassifier,
		Seed:              3,
		ViewChangeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(3, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	cluster.Attach(net)

	mb := New(Config{
		Self:         middleboxID,
		N:            3,
		F:            1,
		Directory:    cluster.Directory,
		IdentitySeed: cluster.Directory.ServiceIdentitySeed(),
		Classify:     benchClassifier,
		Timeout:      2 * time.Second,
	})
	net.Attach(middleboxID, mb)

	lc := legacyclient.New(legacyclient.Config{
		Machine:       100,
		Clients:       1,
		FirstClientID: 1000,
		Replicas:      []msg.NodeID{middleboxID},
		ServerPub:     cluster.ServerPub,
		Gen:           gen,
		MaxOps:        maxOps,
		Timeout:       5 * time.Second,
	})
	net.Attach(100, lc)
	return cluster, mb, lc, net
}

// scriptGen replays a fixed operation sequence (repeating the last one).
type scriptGen struct {
	ops []workload.Op
	i   int
}

func (g *scriptGen) Next(*rand.Rand) workload.Op {
	if g.i >= len(g.ops) {
		return g.ops[len(g.ops)-1]
	}
	op := g.ops[g.i]
	g.i++
	return op
}

func TestMiddleboxOrderedPath(t *testing.T) {
	gen := &scriptGen{ops: []workload.Op{
		{Op: app.BenchWrite(1, 16), Read: false},
		{Op: app.BenchRead(1, 16), Read: true},
	}}
	_, mb, lc, net := deployment(t, gen, 2)
	net.Run(20 * time.Second)
	if lc.Done() != 2 {
		t.Fatalf("client completed %d/2", lc.Done())
	}
	st := mb.Stats()
	if st.Ordered < 2 {
		t.Errorf("ordered = %d, want ≥2", st.Ordered)
	}
	if st.FastOK != 0 {
		t.Errorf("unexpected fast reads on cold sketches: %d", st.FastOK)
	}
}

func TestMiddleboxFastReadAfterSketch(t *testing.T) {
	ops := []workload.Op{{Op: app.BenchWrite(1, 16), Read: false}}
	for i := 0; i < 6; i++ {
		ops = append(ops, workload.Op{Op: app.BenchRead(1, 16), Read: true})
	}
	_, mb, lc, net := deployment(t, &scriptGen{ops: ops}, len(ops))
	net.Run(30 * time.Second)
	if lc.Done() != len(ops) {
		t.Fatalf("client completed %d/%d", lc.Done(), len(ops))
	}
	st := mb.Stats()
	// The first read orders (sketch miss) and populates the sketch; later
	// identical reads take the single-replica fast path.
	if st.FastOK == 0 {
		t.Errorf("no fast reads served: %+v", st)
	}
}

func TestMiddleboxStaleSketchFallsBack(t *testing.T) {
	// read (sketch) -> write (changes state, sketch NOT invalidated) ->
	// read: the speculative reply no longer matches the sketch, so the
	// middlebox must re-order the read — and then return the FRESH value.
	ops := []workload.Op{
		{Op: app.BenchRead(1, 16), Read: true},
		{Op: app.BenchWrite(1, 16), Read: false},
		{Op: app.BenchRead(1, 16), Read: true},
	}
	cluster, mb, lc, net := deployment(t, &scriptGen{ops: ops}, len(ops))
	net.Run(30 * time.Second)
	if lc.Done() != len(ops) {
		t.Fatalf("client completed %d/%d", lc.Done(), len(ops))
	}
	st := mb.Stats()
	if st.FastMiss == 0 {
		t.Errorf("stale sketch never detected: %+v", st)
	}
	_ = cluster
}

func TestMiddleboxRejectsBadMAC(t *testing.T) {
	gen := &scriptGen{ops: []workload.Op{{Op: app.BenchWrite(1, 16), Read: false}}}
	_, mb, _, net := deployment(t, gen, 1)
	// Inject a reply with a garbage MAC.
	net.At(0, func() {})
	net.Attach(200, &badReplySender{to: middleboxID})
	net.Run(5 * time.Second)
	if mb.Stats().BadReplies == 0 {
		t.Error("unauthenticated reply accepted")
	}
}

type badReplySender struct{ to msg.NodeID }

func (b *badReplySender) OnStart(env node.Env) {
	e := msg.Seal(env.Self(), b.to, &msg.BFTReply{Executor: 0, Client: 1000, ClientSeq: 1})
	e.MAC = []byte("garbage")
	env.Send(e)
}

func (b *badReplySender) OnEnvelope(node.Env, *msg.Envelope) {}
func (b *badReplySender) OnTimer(node.Env, node.TimerKey)    {}
