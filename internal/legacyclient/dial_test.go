package legacyclient

import (
	"errors"
	mrand "math/rand"
	"testing"
	"time"
)

// TestRequestBackoffGrows drives Request against dead addresses and checks
// the retry delays: jittered (each in [backoff/2, backoff]), exponentially
// growing, and capped at dialBackoffMax.
func TestRequestBackoffGrows(t *testing.T) {
	var sleeps []time.Duration
	c := &TCPClient{
		addrs:   []string{"127.0.0.1:1", "127.0.0.1:1", "127.0.0.1:1"},
		timeout: 50 * time.Millisecond,
		rng:     mrand.New(mrand.NewSource(1)),
		sleepFn: func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	if _, err := c.Request([]byte("op"), false); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Request against dead addresses: err = %v, want ErrExhausted", err)
	}
	// attempts = 2*len(addrs); a sleep precedes every attempt but the first.
	if want := 2*len(c.addrs) - 1; len(sleeps) != want {
		t.Fatalf("recorded %d sleeps, want %d", len(sleeps), want)
	}
	level := dialBackoffMin
	for i, d := range sleeps {
		if d < level/2 || d > level {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, d, level/2, level)
		}
		if i > 0 && d < sleeps[i-1]/2 {
			t.Errorf("sleep %d = %v shrank below half of previous %v", i, d, sleeps[i-1])
		}
		if level < dialBackoffMax {
			level *= 2
			if level > dialBackoffMax {
				level = dialBackoffMax
			}
		}
	}

	// A second failing Request keeps growing from where it left off until
	// the cap.
	before := c.backoff
	if _, err := c.Request([]byte("op"), false); !errors.Is(err, ErrExhausted) {
		t.Fatalf("second Request: err = %v, want ErrExhausted", err)
	}
	if c.backoff < before || c.backoff > dialBackoffMax {
		t.Errorf("backoff after second failing Request = %v, want in [%v, %v]",
			c.backoff, before, dialBackoffMax)
	}
	for _, d := range sleeps {
		if d > dialBackoffMax {
			t.Errorf("sleep %v exceeds cap %v", d, dialBackoffMax)
		}
	}
}
