package legacyclient

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/securechannel"
	"github.com/troxy-bft/troxy/internal/wire"
)

// TCPClient is a blocking legacy client for real deployments: it dials a
// replica's client gateway over TCP, establishes the secure channel to the
// Troxy behind it, and issues generic request/reply operations. On timeouts
// or channel errors it fails over to the next address and retransmits with
// the same sequence number, so the cluster's deduplication applies.
type TCPClient struct {
	addrs     []string
	serverPub ed25519.PublicKey
	identity  uint64
	timeout   time.Duration

	next int
	conn net.Conn
	sess *securechannel.Session
	seq  uint64

	// backoff is the current retry delay: it grows exponentially (with
	// jitter, capped at dialBackoffMax) across failed attempts so a
	// fully-partitioned client doesn't hot-loop, and resets on the next
	// successful request.
	backoff time.Duration
	rng     *mrand.Rand
	sleepFn func(time.Duration) // test seam; nil means time.Sleep
}

// Reconnect backoff bounds. The first retry waits around dialBackoffMin;
// each subsequent failure doubles the delay up to dialBackoffMax.
const (
	dialBackoffMin = 20 * time.Millisecond
	dialBackoffMax = 2 * time.Second
)

// ErrExhausted reports that all replica addresses failed.
var ErrExhausted = errors.New("legacyclient: all replicas failed")

// Dial creates a client that will connect to the first reachable address.
// identity must be unique among clients of the deployment.
func Dial(addrs []string, serverPub ed25519.PublicKey, identity uint64, timeout time.Duration) (*TCPClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("legacyclient: no addresses")
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &TCPClient{
		addrs:     addrs,
		serverPub: serverPub,
		identity:  identity,
		timeout:   timeout,
	}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *TCPClient) reconnect() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.sess = nil
	}
	var lastErr error
	for range c.addrs {
		addr := c.addrs[c.next%len(c.addrs)]
		c.next++
		conn, err := net.DialTimeout("tcp", addr, c.timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		sess, err := c.handshake(conn)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		if err := conn.SetDeadline(time.Time{}); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		c.conn = conn
		c.sess = sess
		return nil
	}
	return fmt.Errorf("%w: %v", ErrExhausted, lastErr)
}

func (c *TCPClient) handshake(conn net.Conn) (*securechannel.Session, error) {
	hs, hello, err := securechannel.NewClientHandshake(c.serverPub, rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	serverHello, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	return hs.Finish(serverHello)
}

// Request executes one operation against the replicated service, retrying
// across replicas until a reply arrives or every address failed twice.
func (c *TCPClient) Request(op []byte, readOnly bool) ([]byte, error) {
	c.seq++
	flags := uint8(0)
	if readOnly {
		flags = msg.FlagReadOnly
	}
	plaintext := msg.EncodeChannelRequest(&msg.ChannelRequest{
		Client: c.identity,
		Seq:    c.seq,
		Flags:  flags,
		Op:     op,
	})

	attempts := 2 * len(c.addrs)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.backoffSleep()
		}
		if c.sess == nil {
			if err := c.reconnect(); err != nil {
				lastErr = err
				continue
			}
		}
		result, err := c.tryOnce(plaintext)
		if err == nil {
			c.backoff = 0
			return result, nil
		}
		lastErr = err
		if err := c.reconnect(); err != nil {
			lastErr = err
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrExhausted, lastErr)
}

// backoffSleep pauses before the next attempt, doubling the delay (with
// jitter in [backoff/2, backoff]) up to dialBackoffMax. The delay carries
// over across Request calls until a request succeeds.
func (c *TCPClient) backoffSleep() {
	if c.backoff == 0 {
		c.backoff = dialBackoffMin
	} else if c.backoff < dialBackoffMax {
		c.backoff *= 2
		if c.backoff > dialBackoffMax {
			c.backoff = dialBackoffMax
		}
	}
	if c.rng == nil {
		c.rng = mrand.New(mrand.NewSource(time.Now().UnixNano()))
	}
	d := c.backoff/2 + time.Duration(c.rng.Int63n(int64(c.backoff)/2+1))
	if c.sleepFn != nil {
		c.sleepFn(d)
	} else {
		time.Sleep(d)
	}
}

func (c *TCPClient) tryOnce(plaintext []byte) ([]byte, error) {
	record, err := c.sess.Seal(plaintext)
	if err != nil {
		return nil, err
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	defer func() {
		// If the deadline cannot be cleared the connection is unusable for
		// the idle period before the next request; drop it so the next
		// Request reconnects instead of timing out mid-operation.
		if err := c.conn.SetDeadline(time.Time{}); err != nil {
			c.conn.Close()
			c.conn = nil
			c.sess = nil
		}
	}()
	if err := wire.WriteFrame(c.conn, record); err != nil {
		return nil, err
	}
	for {
		frame, err := wire.ReadFrame(c.conn)
		if err != nil {
			return nil, err
		}
		// Plain or coalesced record: a reply batched with stale replies from
		// earlier attempts still arrives in one authenticated unit.
		replies, err := c.sess.OpenFrames(frame)
		if err != nil {
			// Tampered or out-of-order channel data: treat the channel as
			// corrupted and fail over (Section III-D).
			return nil, err
		}
		for _, replyPlain := range replies {
			reply, err := msg.DecodeChannelReply(replyPlain)
			if err != nil {
				return nil, err
			}
			if reply.Seq != c.seq {
				continue // stale reply from a previous attempt
			}
			if reply.Status != msg.StatusOK {
				return reply.Result, fmt.Errorf("legacyclient: service error (%d)", reply.Status)
			}
			return reply.Result, nil
		}
	}
}

// Close tears the connection down.
func (c *TCPClient) Close() error {
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}
