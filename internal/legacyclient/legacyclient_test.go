package legacyclient

import (
	"math/rand"
	"net"
	"testing"
	"time"

	troxy "github.com/troxy-bft/troxy"
	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/realnet"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/workload"
)

type scriptGen struct {
	ops []workload.Op
	i   int
}

func (g *scriptGen) Next(*rand.Rand) workload.Op {
	if g.i >= len(g.ops) {
		return g.ops[len(g.ops)-1]
	}
	op := g.ops[g.i]
	g.i++
	return op
}

func kvCluster(t *testing.T) (*troxy.Cluster, *simnet.Network) {
	t.Helper()
	cluster, err := troxy.NewCluster(troxy.ClusterConfig{
		Mode:              troxy.ETroxy,
		App:               app.NewStoreFactory(),
		Classify:          app.NewStore().IsRead,
		Seed:              9,
		ViewChangeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(9, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	cluster.Attach(net)
	return cluster, net
}

func TestMultipleLogicalClientsShareOneMachine(t *testing.T) {
	cluster, net := kvCluster(t)
	rec := workload.NewRecorder()
	rec.Begin(0)
	m := New(Config{
		Machine:       100,
		Clients:       8,
		FirstClientID: 1000,
		Replicas:      cluster.ReplicaIDs(),
		ServerPub:     cluster.ServerPub,
		Gen:           workload.KVGen{Keys: 4, ReadRatio: 0.5},
		Rec:           rec,
		MaxOps:        5,
		Timeout:       2 * time.Second,
	})
	net.Attach(100, m)
	net.Run(60 * time.Second)
	if m.Done() != 40 {
		t.Fatalf("done = %d/40", m.Done())
	}
	if rec.Snapshot(net.Now()).Count != 40 {
		t.Error("recorder missed completions")
	}
}

func TestPacedClientsApproximateRate(t *testing.T) {
	cluster, net := kvCluster(t)
	rec := workload.NewRecorder()
	rec.Begin(0)
	m := New(Config{
		Machine:       100,
		Clients:       10,
		FirstClientID: 1000,
		Replicas:      cluster.ReplicaIDs(),
		ServerPub:     cluster.ServerPub,
		Gen:           workload.KVGen{Keys: 4, ReadRatio: 1},
		Rec:           rec,
		Rate:          20, // per client: 10 clients x 20/s = 200/s
		Timeout:       2 * time.Second,
	})
	net.Attach(100, m)
	net.Run(10 * time.Second)
	res := rec.Snapshot(net.Now())
	if res.OpsPerSec < 120 || res.OpsPerSec > 260 {
		t.Errorf("paced throughput = %.1f/s, want ≈200/s", res.OpsPerSec)
	}
}

func TestStopCeasesTraffic(t *testing.T) {
	cluster, net := kvCluster(t)
	m := New(Config{
		Machine: 100, Clients: 2, FirstClientID: 1000,
		Replicas: cluster.ReplicaIDs(), ServerPub: cluster.ServerPub,
		Gen: workload.KVGen{Keys: 2, ReadRatio: 0}, Timeout: time.Second,
	})
	net.Attach(100, m)
	net.Run(100 * time.Millisecond)
	m.Stop()
	done := m.Done()
	net.Run(5 * time.Second)
	// A couple of in-flight ops may still land; traffic must not continue.
	if m.Done() > done+2 {
		t.Errorf("ops continued after Stop: %d -> %d", done, m.Done())
	}
}

func TestTCPClientAgainstRealCluster(t *testing.T) {
	cluster, err := troxy.NewCluster(troxy.ClusterConfig{
		Mode:     troxy.ETroxy,
		App:      app.NewStoreFactory(),
		Classify: app.NewStore().IsRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := realnet.NewRouter()
	defer router.Close()
	cluster.Attach(router)

	var addrs []string
	var gws []*realnet.Gateway
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		gw := realnet.NewGateway(router, msg.NodeID(i), msg.NodeID(5000+i*1000))
		go gw.Serve(l)
		gws = append(gws, gw)
		addrs = append(addrs, l.Addr().String())
	}
	defer func() {
		for _, gw := range gws {
			gw.Close()
		}
	}()

	client, err := Dial(addrs, cluster.ServerPub, 7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if res, err := client.Request([]byte("PUT a 1"), false); err != nil || string(res) != "OK" {
		t.Fatalf("PUT: %q, %v", res, err)
	}
	if res, err := client.Request([]byte("GET a"), true); err != nil || string(res) != "VALUE 1" {
		t.Fatalf("GET: %q, %v", res, err)
	}

	// Crash the connected replica: the client fails over transparently and
	// the retransmitted request deduplicates.
	router.Crash(0)
	if res, err := client.Request([]byte("PUT a 2"), false); err != nil || string(res) != "OK" {
		t.Fatalf("PUT after crash: %q, %v", res, err)
	}
	router.Restore(0)
	// The failed attempts above grew the retry backoff; a successful request
	// must reset it.
	if res, err := client.Request([]byte("GET a"), true); err != nil || string(res) != "VALUE 2" {
		t.Fatalf("GET after failover: %q, %v", res, err)
	}
	if client.backoff != 0 {
		t.Errorf("backoff after successful request = %v, want 0", client.backoff)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(nil, nil, 1, 0); err == nil {
		t.Error("Dial with no addresses succeeded")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, nil, 1, 200*time.Millisecond); err == nil {
		t.Error("Dial to a dead port succeeded")
	}
}
