// Package legacyclient implements the unmodified-client side of a
// Troxy-backed deployment as a node.Handler: a "client machine" hosting a
// configurable number of logical clients, each holding one secure channel to
// a single replica's Troxy — exactly what a legacy client does (Figure 2).
// Clients never see BFT messages, never vote, and never learn replica
// identities beyond an address list for failover.
//
// Fault handling follows Section III-D: a request that times out (Troxy
// crash, corrupted channel, lost reply) makes the client reconnect to the
// next replica in its list and retransmit — the behaviour user-facing
// clients already have.
package legacyclient

import (
	"crypto/ed25519"
	"time"

	"github.com/troxy-bft/troxy/internal/httpfront"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/securechannel"
	"github.com/troxy-bft/troxy/internal/workload"
)

// Config parameterizes a client machine.
type Config struct {
	// Machine is this node's ID.
	Machine msg.NodeID

	// Clients is the number of logical clients hosted (≥1).
	Clients int

	// FirstClientID is the identity of the first logical client; identities
	// must be globally unique across machines.
	FirstClientID uint64

	// Replicas lists the service addresses in failover order. Client i
	// initially connects to Replicas[i % len].
	Replicas []msg.NodeID

	// ServerPub pins the service identity (the key inside the Troxies).
	ServerPub ed25519.PublicKey

	// Gen produces operations; Rec receives measurements (both may be
	// shared across machines).
	Gen workload.Generator
	Rec *workload.Recorder

	// Rate, when positive, paces each logical client at this many
	// operations per second (open loop); zero means closed loop.
	Rate float64

	// Timeout is the per-request deadline before failover (zero: 2s).
	Timeout time.Duration

	// MaxOps stops each client after this many operations (zero: run
	// forever).
	MaxOps int

	// HTTP switches the channel payload from the generic framing to raw
	// HTTP/1.1 (responses are delimited by Content-Length).
	HTTP bool

	// FastCommit opts every request into the crash-tolerant commit tier: a
	// StatusSpeculative answer (f+1 PREPARE-round certificates) completes the
	// operation immediately, and the client keeps the request retained until
	// the durable tier confirms (StatusOK), repairs, or the confirm timeout
	// retransmits it. Generic framing only — HTTP clients opt in per request
	// via the X-Troxy-Consistency header in the workload's own request bytes.
	FastCommit bool

	// Observe, when set, receives every completed operation with the result
	// the client accepted and its invocation/response times (runtime clock).
	// Chaos suites collect linearizability histories through it. The op and
	// result slices are only valid during the call; the callback must copy
	// what it keeps.
	Observe func(client, seq uint64, op []byte, read bool, invoked, responded time.Duration, result []byte)

	// ObserveTier, when set, receives the speculative tier's lifecycle
	// events for a retained request: kind is "spec" (answered speculatively;
	// data is the speculative result), "retract" (the answer was withdrawn;
	// data is the attribution string), or "confirm" (the durable tier
	// settled it; data is the durable result — after a retraction this is
	// the repair). The data slice is only valid during the call.
	ObserveTier func(kind string, client, seq uint64, data []byte, now time.Duration)
}

const (
	timerOp      = "lclient/op"      // per-client request timeout
	timerPace    = "lclient/pace"    // per-client open-loop pacing
	timerConnect = "lclient/connect" // staggered start
	timerConfirm = "lclient/confirm" // retained-speculation confirm deadline
)

// specRetained is a request completed on a speculative answer and not yet
// settled by the durable tier.
type specRetained struct {
	op        workload.Op
	result    []byte
	retracted bool
}

type clientState struct {
	idx      int
	identity uint64
	connID   uint64

	replicaIdx int
	hs         *securechannel.ClientHandshake
	sess       *securechannel.Session

	seq      uint64
	op       workload.Op
	inflight bool
	started  time.Duration
	done     int
	respBuf  []byte

	// specs retains speculatively answered operations by sequence number
	// until the durable tier confirms or repairs them.
	specs map[uint64]*specRetained
}

// Machine is the client-machine handler.
type Machine struct {
	cfg     Config
	clients []*clientState
	byConn  map[uint64]*clientState
	stopped bool
}

var _ node.Handler = (*Machine)(nil)

// New creates a client machine.
func New(cfg Config) *Machine {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	m := &Machine{cfg: cfg, byConn: make(map[uint64]*clientState)}
	for i := 0; i < cfg.Clients; i++ {
		cs := &clientState{
			idx:        i,
			identity:   cfg.FirstClientID + uint64(i),
			connID:     cfg.FirstClientID + uint64(i),
			replicaIdx: i % len(cfg.Replicas),
		}
		m.clients = append(m.clients, cs)
		m.byConn[cs.connID] = cs
	}
	return m
}

// Stop makes the machine cease issuing new operations.
func (m *Machine) Stop() { m.stopped = true }

// Done reports how many operations completed across all clients.
func (m *Machine) Done() int {
	total := 0
	for _, cs := range m.clients {
		total += cs.done
	}
	return total
}

// Unsettled reports how many speculatively answered operations are still
// awaiting their durable confirmation or repair. Chaos harnesses drain this
// to zero before checking histories, so every fast-tier op has a settled
// outcome.
func (m *Machine) Unsettled() int {
	total := 0
	for _, cs := range m.clients {
		total += len(cs.specs)
	}
	return total
}

// OnStart implements node.Handler: clients connect with a small stagger to
// avoid a synchronized handshake burst.
func (m *Machine) OnStart(env node.Env) {
	for _, cs := range m.clients {
		env.SetTimer(time.Duration(cs.idx)*50*time.Microsecond,
			node.TimerKey{Kind: timerConnect, ID: uint64(cs.idx)})
	}
}

func (m *Machine) replica(cs *clientState) msg.NodeID {
	return m.cfg.Replicas[cs.replicaIdx%len(m.cfg.Replicas)]
}

// connect starts (or restarts) a client's secure channel.
func (m *Machine) connect(env node.Env, cs *clientState) {
	hs, hello, err := securechannel.NewClientHandshake(m.cfg.ServerPub, env.Rand())
	if err != nil {
		env.Logf("legacyclient %d: handshake: %v", cs.identity, err)
		return
	}
	cs.hs = hs
	cs.sess = nil
	cs.respBuf = nil
	m.sendFrame(env, cs, hello)
	env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
}

func (m *Machine) sendFrame(env node.Env, cs *clientState, frame []byte) {
	env.Send(msg.Seal(m.cfg.Machine, m.replica(cs), &msg.ChannelData{
		ConnID:  cs.connID,
		Payload: frame,
	}))
}

// nextOp issues the next operation (or schedules it under pacing).
func (m *Machine) nextOp(env node.Env, cs *clientState) {
	if m.stopped || (m.cfg.MaxOps > 0 && cs.done >= m.cfg.MaxOps) {
		cs.inflight = false
		return
	}
	if m.cfg.Rate > 0 {
		interval := time.Duration(float64(time.Second) / m.cfg.Rate)
		// Jitter spreads the fixed-rate clients over the interval.
		jitter := time.Duration(env.Rand().Int63n(int64(interval)/4 + 1))
		cs.inflight = false
		env.SetTimer(interval-interval/8+jitter, node.TimerKey{Kind: timerPace, ID: uint64(cs.idx)})
		return
	}
	m.issue(env, cs)
}

// issue draws an operation and transmits it.
func (m *Machine) issue(env node.Env, cs *clientState) {
	cs.op = m.cfg.Gen.Next(env.Rand())
	cs.seq++
	cs.started = env.Now()
	cs.inflight = true
	m.transmit(env, cs)
	env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
}

// transmit (re)sends the current operation over the established channel.
func (m *Machine) transmit(env node.Env, cs *clientState) {
	if !cs.sess.Established() {
		return // will be retransmitted once the channel is up
	}
	var plaintext []byte
	if m.cfg.HTTP {
		plaintext = cs.op.Op
	} else {
		flags := uint8(0)
		if cs.op.Read {
			flags = msg.FlagReadOnly
		}
		if m.cfg.FastCommit {
			flags |= msg.FlagFastCommit
		}
		plaintext = msg.EncodeChannelRequest(&msg.ChannelRequest{
			Client: cs.identity,
			Seq:    cs.seq,
			Flags:  flags,
			Op:     cs.op.Op,
		})
	}
	record, err := cs.sess.Seal(plaintext)
	if err != nil {
		env.Logf("legacyclient %d: seal: %v", cs.identity, err)
		return
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, len(plaintext))
	m.sendFrame(env, cs, record)
}

// OnEnvelope implements node.Handler.
func (m *Machine) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindChannelData {
		return
	}
	raw, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := raw.(*msg.ChannelData)
	if !ok {
		return
	}
	cs, ok := m.byConn[cd.ConnID]
	if !ok {
		return
	}
	if e.From != m.replica(cs) {
		// Bytes for this connection can only arrive over the transport to
		// the replica we are connected to; anything else is a bypass
		// attempt by a third party and is dropped on the floor.
		return
	}

	// Handshake completion.
	if cs.sess == nil {
		if cs.hs == nil {
			return
		}
		sess, err := cs.hs.Finish(cd.Payload)
		if err != nil {
			env.Logf("legacyclient %d: bad server hello: %v", cs.identity, err)
			return
		}
		cs.sess = sess
		cs.hs = nil
		if cs.inflight {
			// Failover: retransmit the pending operation on the new channel.
			m.transmit(env, cs)
			env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
		} else {
			m.nextOp(env, cs)
		}
		return
	}

	// Plain or coalesced record from the Troxy: every sub-frame verified
	// before any of them is interpreted.
	frames, err := cs.sess.OpenFrames(cd.Payload)
	if err != nil {
		// Tampered or replayed data on the channel: reconnect (Section
		// III-D fault handling).
		env.Logf("legacyclient %d: corrupted channel: %v", cs.identity, err)
		m.failover(env, cs)
		return
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, total)

	if m.cfg.HTTP {
		for _, plaintext := range frames {
			cs.respBuf = append(cs.respBuf, plaintext...)
		}
		resp, consumed, err := httpfront.ExtractResponse(cs.respBuf)
		if err != nil || resp == nil {
			return
		}
		cs.respBuf = cs.respBuf[consumed:]
		m.complete(env, cs, resp)
		return
	}

	for _, plaintext := range frames {
		reply, err := msg.DecodeChannelReply(plaintext)
		if err != nil {
			continue
		}
		m.onReply(env, cs, reply)
	}
}

// onReply dispatches one decoded reply frame by status and sequence number.
func (m *Machine) onReply(env node.Env, cs *clientState, reply *msg.ChannelReply) {
	// Retained speculations settle independently of the current in-flight
	// operation: the client has usually moved on by the time the durable
	// tier reports back.
	if rec, ok := cs.specs[reply.Seq]; ok {
		switch reply.Status {
		case msg.StatusRetracted:
			// The fast answer was withdrawn; the durable repair follows
			// (the confirm timer retransmits if it does not).
			if !rec.retracted {
				rec.retracted = true
				if m.cfg.ObserveTier != nil {
					m.cfg.ObserveTier("retract", cs.identity, reply.Seq, reply.Result, env.Now())
				}
			}
		case msg.StatusOK:
			// Durable settlement: confirmation when it matches the
			// speculative result, repair otherwise (including after a
			// retraction).
			delete(cs.specs, reply.Seq)
			env.CancelTimer(node.TimerKey{Kind: timerConfirm, ID: confirmTimerID(cs.idx, reply.Seq)})
			if m.cfg.ObserveTier != nil {
				m.cfg.ObserveTier("confirm", cs.identity, reply.Seq, reply.Result, env.Now())
			}
		}
		return
	}

	if reply.Seq != cs.seq || !cs.inflight {
		return
	}
	switch reply.Status {
	case msg.StatusSpeculative:
		// Crash-commit answer: complete the operation now and retain it
		// until the durable tier settles it.
		rec := &specRetained{op: cs.op, result: append([]byte(nil), reply.Result...)}
		if cs.specs == nil {
			cs.specs = make(map[uint64]*specRetained)
		}
		cs.specs[cs.seq] = rec
		if m.cfg.ObserveTier != nil {
			m.cfg.ObserveTier("spec", cs.identity, cs.seq, reply.Result, env.Now())
		}
		env.SetTimer(m.confirmTimeout(), node.TimerKey{Kind: timerConfirm, ID: confirmTimerID(cs.idx, cs.seq)})
		m.complete(env, cs, reply.Result)
	case msg.StatusOK:
		m.complete(env, cs, reply.Result)
	}
}

// confirmTimerID packs (client index, sequence number) into one timer ID;
// sequence numbers stay far below 2^32 for any practical run length.
func confirmTimerID(idx int, seq uint64) uint64 {
	return uint64(idx)<<32 | (seq & 0xffffffff)
}

func (m *Machine) confirmTimeout() time.Duration {
	return 2 * m.cfg.Timeout
}

func (m *Machine) complete(env node.Env, cs *clientState, result []byte) {
	if !cs.inflight {
		return
	}
	cs.inflight = false
	cs.done++
	env.CancelTimer(node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
	if m.cfg.Rec != nil {
		m.cfg.Rec.Record(env.Now(), env.Now()-cs.started, cs.op.Read)
	}
	if m.cfg.Observe != nil {
		// started is the first transmission of this op: failover retransmits
		// keep it, so the invocation window is conservative (never shrunk).
		m.cfg.Observe(cs.identity, cs.seq, cs.op.Op, cs.op.Read, cs.started, env.Now(), result)
	}
	m.nextOp(env, cs)
}

// retransmitRetained resends a retained operation under its original
// sequence number, without the fast-commit flag: the retry wants the durable
// answer. The Troxy re-registers the vote and the ordering layer either
// re-executes the request (the speculation was lost) or replays the cached
// reply (it had committed and the confirmation was lost) — exactly-once
// either way, by the client-table dedup rule.
func (m *Machine) retransmitRetained(env node.Env, cs *clientState, seq uint64, rec *specRetained) {
	if !cs.sess.Established() {
		return // the reconnect path retransmits once the channel is up
	}
	flags := uint8(0)
	if rec.op.Read {
		flags = msg.FlagReadOnly
	}
	plaintext := msg.EncodeChannelRequest(&msg.ChannelRequest{
		Client: cs.identity,
		Seq:    seq,
		Flags:  flags,
		Op:     rec.op.Op,
	})
	record, err := cs.sess.Seal(plaintext)
	if err != nil {
		env.Logf("legacyclient %d: seal retained %d: %v", cs.identity, seq, err)
		return
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, len(plaintext))
	m.sendFrame(env, cs, record)
	if m.cfg.Rec != nil {
		m.cfg.Rec.RecordRetry()
	}
}

// failover reconnects to the next replica; the pending operation (if any)
// is retransmitted after the new handshake.
func (m *Machine) failover(env node.Env, cs *clientState) {
	cs.replicaIdx++
	if m.cfg.Rec != nil && cs.inflight {
		m.cfg.Rec.RecordRetry()
	}
	m.connect(env, cs)
}

// OnTimer implements node.Handler.
func (m *Machine) OnTimer(env node.Env, key node.TimerKey) {
	if key.Kind == timerConfirm {
		// The durable settlement for a retained speculation never arrived
		// (crash before commit, or a lost repair). Retransmit the old
		// operation under its original sequence number on the durable tier:
		// if it already committed, the reply-cache replay answers it; if the
		// speculation was lost, this is the retry that re-executes it.
		idx := int(key.ID >> 32)
		seq := key.ID & 0xffffffff
		if idx < 0 || idx >= len(m.clients) {
			return
		}
		cs := m.clients[idx]
		rec, ok := cs.specs[seq]
		if !ok {
			return
		}
		m.retransmitRetained(env, cs, seq, rec)
		env.SetTimer(m.confirmTimeout(), node.TimerKey{Kind: timerConfirm, ID: key.ID})
		return
	}
	idx := int(key.ID)
	if idx < 0 || idx >= len(m.clients) {
		return
	}
	cs := m.clients[idx]
	switch key.Kind {
	case timerConnect:
		m.connect(env, cs)
	case timerPace:
		if !cs.inflight {
			m.issue(env, cs)
		}
	case timerOp:
		if m.stopped {
			return
		}
		if cs.sess == nil || cs.inflight {
			// Handshake or request timed out: switch replicas.
			m.failover(env, cs)
		}
	}
}
