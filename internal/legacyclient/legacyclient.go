// Package legacyclient implements the unmodified-client side of a
// Troxy-backed deployment as a node.Handler: a "client machine" hosting a
// configurable number of logical clients, each holding one secure channel to
// a single replica's Troxy — exactly what a legacy client does (Figure 2).
// Clients never see BFT messages, never vote, and never learn replica
// identities beyond an address list for failover.
//
// Fault handling follows Section III-D: a request that times out (Troxy
// crash, corrupted channel, lost reply) makes the client reconnect to the
// next replica in its list and retransmit — the behaviour user-facing
// clients already have.
package legacyclient

import (
	"crypto/ed25519"
	"time"

	"github.com/troxy-bft/troxy/internal/httpfront"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/securechannel"
	"github.com/troxy-bft/troxy/internal/workload"
)

// Config parameterizes a client machine.
type Config struct {
	// Machine is this node's ID.
	Machine msg.NodeID

	// Clients is the number of logical clients hosted (≥1).
	Clients int

	// FirstClientID is the identity of the first logical client; identities
	// must be globally unique across machines.
	FirstClientID uint64

	// Replicas lists the service addresses in failover order. Client i
	// initially connects to Replicas[i % len].
	Replicas []msg.NodeID

	// ServerPub pins the service identity (the key inside the Troxies).
	ServerPub ed25519.PublicKey

	// Gen produces operations; Rec receives measurements (both may be
	// shared across machines).
	Gen workload.Generator
	Rec *workload.Recorder

	// Rate, when positive, paces each logical client at this many
	// operations per second (open loop); zero means closed loop.
	Rate float64

	// Timeout is the per-request deadline before failover (zero: 2s).
	Timeout time.Duration

	// MaxOps stops each client after this many operations (zero: run
	// forever).
	MaxOps int

	// HTTP switches the channel payload from the generic framing to raw
	// HTTP/1.1 (responses are delimited by Content-Length).
	HTTP bool

	// Observe, when set, receives every completed operation with the result
	// the client accepted and its invocation/response times (runtime clock).
	// Chaos suites collect linearizability histories through it. The op and
	// result slices are only valid during the call; the callback must copy
	// what it keeps.
	Observe func(client, seq uint64, op []byte, read bool, invoked, responded time.Duration, result []byte)
}

const (
	timerOp      = "lclient/op"      // per-client request timeout
	timerPace    = "lclient/pace"    // per-client open-loop pacing
	timerConnect = "lclient/connect" // staggered start
)

type clientState struct {
	idx      int
	identity uint64
	connID   uint64

	replicaIdx int
	hs         *securechannel.ClientHandshake
	sess       *securechannel.Session

	seq      uint64
	op       workload.Op
	inflight bool
	started  time.Duration
	done     int
	respBuf  []byte
}

// Machine is the client-machine handler.
type Machine struct {
	cfg     Config
	clients []*clientState
	byConn  map[uint64]*clientState
	stopped bool
}

var _ node.Handler = (*Machine)(nil)

// New creates a client machine.
func New(cfg Config) *Machine {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	m := &Machine{cfg: cfg, byConn: make(map[uint64]*clientState)}
	for i := 0; i < cfg.Clients; i++ {
		cs := &clientState{
			idx:        i,
			identity:   cfg.FirstClientID + uint64(i),
			connID:     cfg.FirstClientID + uint64(i),
			replicaIdx: i % len(cfg.Replicas),
		}
		m.clients = append(m.clients, cs)
		m.byConn[cs.connID] = cs
	}
	return m
}

// Stop makes the machine cease issuing new operations.
func (m *Machine) Stop() { m.stopped = true }

// Done reports how many operations completed across all clients.
func (m *Machine) Done() int {
	total := 0
	for _, cs := range m.clients {
		total += cs.done
	}
	return total
}

// OnStart implements node.Handler: clients connect with a small stagger to
// avoid a synchronized handshake burst.
func (m *Machine) OnStart(env node.Env) {
	for _, cs := range m.clients {
		env.SetTimer(time.Duration(cs.idx)*50*time.Microsecond,
			node.TimerKey{Kind: timerConnect, ID: uint64(cs.idx)})
	}
}

func (m *Machine) replica(cs *clientState) msg.NodeID {
	return m.cfg.Replicas[cs.replicaIdx%len(m.cfg.Replicas)]
}

// connect starts (or restarts) a client's secure channel.
func (m *Machine) connect(env node.Env, cs *clientState) {
	hs, hello, err := securechannel.NewClientHandshake(m.cfg.ServerPub, env.Rand())
	if err != nil {
		env.Logf("legacyclient %d: handshake: %v", cs.identity, err)
		return
	}
	cs.hs = hs
	cs.sess = nil
	cs.respBuf = nil
	m.sendFrame(env, cs, hello)
	env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
}

func (m *Machine) sendFrame(env node.Env, cs *clientState, frame []byte) {
	env.Send(msg.Seal(m.cfg.Machine, m.replica(cs), &msg.ChannelData{
		ConnID:  cs.connID,
		Payload: frame,
	}))
}

// nextOp issues the next operation (or schedules it under pacing).
func (m *Machine) nextOp(env node.Env, cs *clientState) {
	if m.stopped || (m.cfg.MaxOps > 0 && cs.done >= m.cfg.MaxOps) {
		cs.inflight = false
		return
	}
	if m.cfg.Rate > 0 {
		interval := time.Duration(float64(time.Second) / m.cfg.Rate)
		// Jitter spreads the fixed-rate clients over the interval.
		jitter := time.Duration(env.Rand().Int63n(int64(interval)/4 + 1))
		cs.inflight = false
		env.SetTimer(interval-interval/8+jitter, node.TimerKey{Kind: timerPace, ID: uint64(cs.idx)})
		return
	}
	m.issue(env, cs)
}

// issue draws an operation and transmits it.
func (m *Machine) issue(env node.Env, cs *clientState) {
	cs.op = m.cfg.Gen.Next(env.Rand())
	cs.seq++
	cs.started = env.Now()
	cs.inflight = true
	m.transmit(env, cs)
	env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
}

// transmit (re)sends the current operation over the established channel.
func (m *Machine) transmit(env node.Env, cs *clientState) {
	if !cs.sess.Established() {
		return // will be retransmitted once the channel is up
	}
	var plaintext []byte
	if m.cfg.HTTP {
		plaintext = cs.op.Op
	} else {
		flags := uint8(0)
		if cs.op.Read {
			flags = msg.FlagReadOnly
		}
		plaintext = msg.EncodeChannelRequest(&msg.ChannelRequest{
			Client: cs.identity,
			Seq:    cs.seq,
			Flags:  flags,
			Op:     cs.op.Op,
		})
	}
	record, err := cs.sess.Seal(plaintext)
	if err != nil {
		env.Logf("legacyclient %d: seal: %v", cs.identity, err)
		return
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, len(plaintext))
	m.sendFrame(env, cs, record)
}

// OnEnvelope implements node.Handler.
func (m *Machine) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindChannelData {
		return
	}
	raw, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := raw.(*msg.ChannelData)
	if !ok {
		return
	}
	cs, ok := m.byConn[cd.ConnID]
	if !ok {
		return
	}
	if e.From != m.replica(cs) {
		// Bytes for this connection can only arrive over the transport to
		// the replica we are connected to; anything else is a bypass
		// attempt by a third party and is dropped on the floor.
		return
	}

	// Handshake completion.
	if cs.sess == nil {
		if cs.hs == nil {
			return
		}
		sess, err := cs.hs.Finish(cd.Payload)
		if err != nil {
			env.Logf("legacyclient %d: bad server hello: %v", cs.identity, err)
			return
		}
		cs.sess = sess
		cs.hs = nil
		if cs.inflight {
			// Failover: retransmit the pending operation on the new channel.
			m.transmit(env, cs)
			env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
		} else {
			m.nextOp(env, cs)
		}
		return
	}

	// Plain or coalesced record from the Troxy: every sub-frame verified
	// before any of them is interpreted.
	frames, err := cs.sess.OpenFrames(cd.Payload)
	if err != nil {
		// Tampered or replayed data on the channel: reconnect (Section
		// III-D fault handling).
		env.Logf("legacyclient %d: corrupted channel: %v", cs.identity, err)
		m.failover(env, cs)
		return
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	env.Charge(node.ProfileJava, node.ChargeAEAD, total)

	if m.cfg.HTTP {
		for _, plaintext := range frames {
			cs.respBuf = append(cs.respBuf, plaintext...)
		}
		resp, consumed, err := httpfront.ExtractResponse(cs.respBuf)
		if err != nil || resp == nil {
			return
		}
		cs.respBuf = cs.respBuf[consumed:]
		m.complete(env, cs, resp)
		return
	}

	for _, plaintext := range frames {
		reply, err := msg.DecodeChannelReply(plaintext)
		if err != nil || reply.Seq != cs.seq || !cs.inflight {
			continue
		}
		m.complete(env, cs, reply.Result)
	}
}

func (m *Machine) complete(env node.Env, cs *clientState, result []byte) {
	if !cs.inflight {
		return
	}
	cs.inflight = false
	cs.done++
	env.CancelTimer(node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
	if m.cfg.Rec != nil {
		m.cfg.Rec.Record(env.Now(), env.Now()-cs.started, cs.op.Read)
	}
	if m.cfg.Observe != nil {
		// started is the first transmission of this op: failover retransmits
		// keep it, so the invocation window is conservative (never shrunk).
		m.cfg.Observe(cs.identity, cs.seq, cs.op.Op, cs.op.Read, cs.started, env.Now(), result)
	}
	m.nextOp(env, cs)
}

// failover reconnects to the next replica; the pending operation (if any)
// is retransmitted after the new handshake.
func (m *Machine) failover(env node.Env, cs *clientState) {
	cs.replicaIdx++
	if m.cfg.Rec != nil && cs.inflight {
		m.cfg.Rec.RecordRetry()
	}
	m.connect(env, cs)
}

// OnTimer implements node.Handler.
func (m *Machine) OnTimer(env node.Env, key node.TimerKey) {
	idx := int(key.ID)
	if idx < 0 || idx >= len(m.clients) {
		return
	}
	cs := m.clients[idx]
	switch key.Kind {
	case timerConnect:
		m.connect(env, cs)
	case timerPace:
		if !cs.inflight {
			m.issue(env, cs)
		}
	case timerOp:
		if m.stopped {
			return
		}
		if cs.sess == nil || cs.inflight {
			// Handshake or request timed out: switch replicas.
			m.failover(env, cs)
		}
	}
}
