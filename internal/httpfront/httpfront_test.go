package httpfront

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/troxy-bft/troxy/internal/app"
)

func get(path string) []byte {
	return []byte("GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n")
}

func post(path, body string) []byte {
	return fmt.Appendf(nil, "POST %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s",
		path, len(body), body)
}

func TestExtractRequestComplete(t *testing.T) {
	req := post("/a", "hello")
	got, n, err := ExtractRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(req) || !bytes.Equal(got, req) {
		t.Errorf("consumed %d of %d", n, len(req))
	}
}

func TestExtractRequestIncremental(t *testing.T) {
	req := post("/a", "hello world")
	for cut := 0; cut < len(req); cut++ {
		got, n, err := ExtractRequest(req[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got != nil || n != 0 {
			t.Fatalf("cut %d: incomplete request extracted", cut)
		}
	}
	got, n, err := ExtractRequest(req)
	if err != nil || n != len(req) || got == nil {
		t.Fatalf("full request: %v, n=%d", err, n)
	}
}

func TestExtractRequestPipelined(t *testing.T) {
	buf := append(get("/a"), post("/b", "xy")...)
	first, n, err := ExtractRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, get("/a")) {
		t.Errorf("first = %q", first)
	}
	second, n2, err := ExtractRequest(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, post("/b", "xy")) || n+n2 != len(buf) {
		t.Errorf("second = %q", second)
	}
}

func TestExtractRequestBadContentLength(t *testing.T) {
	raw := []byte("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
	if _, _, err := ExtractRequest(raw); err == nil {
		t.Error("bad Content-Length accepted")
	}
	raw = []byte("GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
	if _, _, err := ExtractRequest(raw); err == nil {
		t.Error("negative Content-Length accepted")
	}
}

func TestExtractRequestTooLarge(t *testing.T) {
	raw := fmt.Appendf(nil, "POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n", MaxRequestSize+1)
	if _, _, err := ExtractRequest(raw); err == nil {
		t.Error("oversized request accepted")
	}
}

func TestIsRead(t *testing.T) {
	if !IsRead(get("/a")) {
		t.Error("GET not classified as read")
	}
	if IsRead(post("/a", "x")) {
		t.Error("POST classified as read")
	}
	if IsRead([]byte("junk")) {
		t.Error("garbage classified as read")
	}
}

func newTestApp() *App {
	return NewAppFactory(map[string][]byte{"/index.html": []byte("<h1>hi</h1>")})().(*App)
}

func TestAppGet(t *testing.T) {
	a := newTestApp()
	res := string(a.Execute(get("/index.html")))
	if !strings.HasPrefix(res, "HTTP/1.1 200 OK\r\n") {
		t.Errorf("response = %q", res)
	}
	if !strings.HasSuffix(res, "<h1>hi</h1>") {
		t.Errorf("response body missing: %q", res)
	}
	if !strings.Contains(res, "Content-Length: 11\r\n") {
		t.Errorf("content length wrong: %q", res)
	}
}

func TestAppGetMissing(t *testing.T) {
	a := newTestApp()
	res := string(a.Execute(get("/nope")))
	if !strings.HasPrefix(res, "HTTP/1.1 404") {
		t.Errorf("response = %q", res)
	}
}

func TestAppPostThenGet(t *testing.T) {
	a := newTestApp()
	res := string(a.Execute(post("/new", "payload")))
	if !strings.HasPrefix(res, "HTTP/1.1 200") {
		t.Errorf("POST response = %q", res)
	}
	res = string(a.Execute(get("/new")))
	if !strings.HasSuffix(res, "payload") {
		t.Errorf("GET after POST = %q", res)
	}
}

func TestAppHead(t *testing.T) {
	a := newTestApp()
	res := string(a.Execute([]byte("HEAD /index.html HTTP/1.1\r\nHost: x\r\n\r\n")))
	if !strings.HasPrefix(res, "HTTP/1.1 200") {
		t.Errorf("HEAD response = %q", res)
	}
	if strings.HasSuffix(res, "<h1>hi</h1>") {
		t.Error("HEAD response carries a body")
	}
}

func TestAppBadRequests(t *testing.T) {
	a := newTestApp()
	if res := string(a.Execute([]byte("garbage\r\n\r\n"))); !strings.HasPrefix(res, "HTTP/1.1 400") {
		t.Errorf("garbage = %q", res)
	}
	if res := string(a.Execute([]byte("DELETE /x HTTP/1.1\r\n\r\n"))); !strings.HasPrefix(res, "HTTP/1.1 405") {
		t.Errorf("DELETE = %q", res)
	}
}

func TestAppClassificationAndKeys(t *testing.T) {
	a := newTestApp()
	if !a.IsRead(get("/p")) || a.IsRead(post("/p", "x")) {
		t.Error("classification wrong")
	}
	keys := a.Keys(post("/p", "x"))
	if len(keys) != 1 || keys[0] != "page/p" {
		t.Errorf("Keys = %v", keys)
	}
	if a.Keys([]byte("junk")) != nil {
		t.Error("Keys on garbage should be nil")
	}
}

func TestAppDeterminism(t *testing.T) {
	f := NewAppFactory(map[string][]byte{"/p": []byte("v")})
	a, b := f(), f()
	ops := [][]byte{get("/p"), post("/p", "new"), get("/p"), get("/q")}
	for _, op := range ops {
		if !bytes.Equal(a.Execute(op), b.Execute(op)) {
			t.Fatalf("instances diverge on %q", op)
		}
	}
	if app.StateDigest(a) != app.StateDigest(b) {
		t.Error("state digests diverge")
	}
}

func TestAppSnapshotRoundTrip(t *testing.T) {
	a := newTestApp()
	a.Execute(post("/x", "1"))
	snap := a.Snapshot()
	b := NewApp(app.NewPages())
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Execute(get("/x")), b.Execute(get("/x"))) {
		t.Error("restored app differs")
	}
}

func TestQuickExtractNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, n, err := ExtractRequest(b)
		return err != nil || n >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPostRoundTrip(t *testing.T) {
	a := newTestApp()
	f := func(body []byte) bool {
		a.Execute(post("/q", string(body)))
		res := a.Execute(get("/q"))
		return bytes.HasSuffix(res, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
