// Package httpfront makes the replicated system speak HTTP/1.1 to legacy
// clients, in the two places the paper requires (Sections III-E and VI-D):
//
//   - ExtractRequest finds message boundaries in a byte stream. This is the
//     only HTTP knowledge the Troxy needs: it does not parse or understand
//     requests, it only delimits them so each complete request becomes the
//     payload of one BFT request ("it is sufficient for the Troxy to
//     identify request boundaries").
//   - App adapts the replicated page store (internal/app.Pages) to raw
//     HTTP/1.1 operations: Execute parses a full request, applies GET/POST
//     to the store, and renders a complete HTTP response. Requests are
//     classified read/write by their method.
package httpfront

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/troxy-bft/troxy/internal/app"
)

// MaxRequestSize bounds a single HTTP request (head plus body).
const MaxRequestSize = 8 << 20

// ErrRequestTooLarge reports a request exceeding MaxRequestSize.
var ErrRequestTooLarge = errors.New("httpfront: request too large")

// ErrMalformed reports an unparseable request head.
var ErrMalformed = errors.New("httpfront: malformed request")

// ExtractRequest scans buf for one complete HTTP/1.1 request. It returns the
// request bytes and the number of bytes consumed. If the buffer does not yet
// hold a complete request it returns (nil, 0, nil); the caller buffers more
// input. Requests use Content-Length framing (chunked uploads are not
// supported by the page service).
func ExtractRequest(buf []byte) (req []byte, consumed int, err error) {
	headEnd := bytes.Index(buf, []byte("\r\n\r\n"))
	if headEnd < 0 {
		if len(buf) > MaxRequestSize {
			return nil, 0, ErrRequestTooLarge
		}
		return nil, 0, nil
	}
	head := buf[:headEnd]
	bodyStart := headEnd + 4

	contentLength := 0
	for _, line := range bytes.Split(head, []byte("\r\n"))[1:] {
		name, value, found := bytes.Cut(line, []byte(":"))
		if !found {
			continue
		}
		if strings.EqualFold(string(bytes.TrimSpace(name)), "Content-Length") {
			n, err := strconv.Atoi(string(bytes.TrimSpace(value)))
			if err != nil || n < 0 {
				return nil, 0, fmt.Errorf("%w: bad Content-Length", ErrMalformed)
			}
			contentLength = n
		}
	}
	total := bodyStart + contentLength
	if total > MaxRequestSize {
		return nil, 0, ErrRequestTooLarge
	}
	if len(buf) < total {
		return nil, 0, nil
	}
	out := make([]byte, total)
	copy(out, buf[:total])
	return out, total, nil
}

// ExtractResponse scans buf for one complete HTTP/1.1 response (legacy
// clients use it to delimit replies on the byte stream). Responses use
// Content-Length framing; it returns (nil, 0, nil) while incomplete.
func ExtractResponse(buf []byte) (resp []byte, consumed int, err error) {
	// Responses and requests share Content-Length framing; the head differs
	// only in its first line, which ExtractRequest does not interpret.
	return ExtractRequest(buf)
}

// IsRead classifies a raw HTTP request as read-only by its method. This is
// the service-specific classifier handed to the Troxy.
func IsRead(rawRequest []byte) bool {
	method, _, _, _, err := parseRequest(rawRequest)
	if err != nil {
		return false
	}
	return method == "GET" || method == "HEAD"
}

// ConsistencyHeader is the per-request commit-level selector for HTTP
// clients. A request carrying "X-Troxy-Consistency: fast" opts into the
// crash-tolerant tier (answered at PREPARE time, f+1 counter-certified
// speculative votes); any other value — or no header — keeps the durable
// Byzantine tier. Note that plain HTTP cannot express a retraction: a fast
// HTTP client that loses its speculation receives no repair response, which
// is exactly the weaker guarantee the header opts into.
const ConsistencyHeader = "X-Troxy-Consistency"

// FastCommit reports whether a raw HTTP request opts into the crash-tolerant
// commit tier via the X-Troxy-Consistency header.
func FastCommit(rawRequest []byte) bool {
	_, _, headers, _, err := parseRequest(rawRequest)
	if err != nil {
		return false
	}
	return strings.EqualFold(headers[strings.ToLower(ConsistencyHeader)], "fast")
}

// parseRequest splits a raw request into method, path, headers and body.
func parseRequest(raw []byte) (method, path string, headers map[string]string, body []byte, err error) {
	headEnd := bytes.Index(raw, []byte("\r\n\r\n"))
	if headEnd < 0 {
		return "", "", nil, nil, ErrMalformed
	}
	lines := strings.Split(string(raw[:headEnd]), "\r\n")
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return "", "", nil, nil, fmt.Errorf("%w: request line %q", ErrMalformed, lines[0])
	}
	method, path = parts[0], parts[1]
	headers = make(map[string]string, len(lines)-1)
	for _, line := range lines[1:] {
		name, value, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		headers[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}
	return method, path, headers, raw[headEnd+4:], nil
}

// App adapts the replicated page store to raw HTTP/1.1 operations.
type App struct {
	pages *app.Pages
}

// NewApp creates an HTTP application over an existing page store.
func NewApp(pages *app.Pages) *App { return &App{pages: pages} }

// NewAppFactory returns a factory producing HTTP applications over page
// stores pre-populated with initial.
func NewAppFactory(initial map[string][]byte) app.Factory {
	inner := app.NewPagesFactory(initial)
	return func() app.Application { return NewApp(inner().(*app.Pages)) }
}

var _ app.Application = (*App)(nil)

// Execute implements app.Application: it serves one raw HTTP request.
func (a *App) Execute(op []byte) []byte {
	method, path, _, body, err := parseRequest(op)
	if err != nil {
		return renderResponse(400, "Bad Request", []byte("malformed request\n"))
	}
	switch method {
	case "GET", "HEAD":
		res := a.pages.Execute(app.PageGet(path))
		if len(res) == 0 || res[0] != app.PageOK {
			return renderResponse(404, "Not Found", []byte("no such page\n"))
		}
		content := res[1:]
		if method == "HEAD" {
			content = nil
		}
		return renderResponse(200, "OK", content)
	case "POST", "PUT":
		res := a.pages.Execute(app.PagePost(path, body))
		if len(res) == 0 || res[0] != app.PageOK {
			return renderResponse(500, "Internal Server Error", nil)
		}
		return renderResponse(200, "OK", res[1:])
	default:
		return renderResponse(405, "Method Not Allowed", nil)
	}
}

func renderResponse(code int, reason string, body []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", code, reason)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
	b.WriteString("Content-Type: text/html\r\n")
	b.WriteString("Connection: keep-alive\r\n")
	b.WriteString("\r\n")
	b.Write(body)
	return b.Bytes()
}

// IsRead implements app.Application.
func (a *App) IsRead(op []byte) bool { return IsRead(op) }

// Keys implements app.Application.
func (a *App) Keys(op []byte) []string {
	_, path, _, _, err := parseRequest(op)
	if err != nil {
		return nil
	}
	return a.pages.Keys(app.PageGet(path))
}

// Snapshot implements app.Application.
func (a *App) Snapshot() []byte { return a.pages.Snapshot() }

// Restore implements app.Application.
func (a *App) Restore(snapshot []byte) error { return a.pages.Restore(snapshot) }
