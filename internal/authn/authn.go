// Package authn implements the message-authentication primitives of a
// Troxy-backed system:
//
//   - a pairwise HMAC-SHA256 authenticator matrix for replica↔replica and
//     client↔replica messages (the "common message certificates" of BFT
//     systems), used by the untrusted replica parts; and
//   - the Troxy group authenticator, an HMAC keyed with a secret shared only
//     among the trusted subsystems, bound to each Troxy's instance ID
//     (Section IV-A of the paper).
//
// Keys are derived from a deployment master secret with HKDF so that tests
// and deployments can provision a whole cluster from a single secret. In a
// real SGX deployment the per-enclave secrets would be delivered during
// post-attestation provisioning; internal/enclave models that step.
package authn

import (
	"crypto/hkdf"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"strconv"

	"github.com/troxy-bft/troxy/internal/msg"
)

// TagSize is the size of all authentication tags.
const TagSize = sha256.Size

// KeySize is the size of all derived symmetric keys.
const KeySize = 32

// ErrBadKeySize reports a malformed master secret.
var ErrBadKeySize = errors.New("authn: master secret must not be empty")

// Directory derives and serves all symmetric keys of a deployment. It is an
// abstraction of the key-provisioning step: each node receives only the keys
// it is entitled to (see Provision).
type Directory struct {
	master []byte // troxy:secret deployment master secret; every other key derives from it
}

// NewDirectory creates a key directory from a deployment master secret.
func NewDirectory(master []byte) (*Directory, error) {
	if len(master) == 0 {
		return nil, ErrBadKeySize
	}
	m := make([]byte, len(master))
	copy(m, master)
	return &Directory{master: m}, nil
}

func (d *Directory) derive(label string) []byte {
	key, err := hkdf.Key(sha256.New, d.master, nil, label, KeySize)
	if err != nil {
		// hkdf.Key only fails for absurd output lengths; KeySize is fixed.
		panic(fmt.Sprintf("authn: hkdf: %v", err))
	}
	return key
}

// PairKey returns the shared secret between nodes a and b. The key is
// symmetric in its arguments.
func (d *Directory) PairKey(a, b msg.NodeID) []byte {
	if a > b {
		a, b = b, a
	}
	return d.derive("pair/" + strconv.FormatInt(int64(a), 10) + "/" + strconv.FormatInt(int64(b), 10))
}

// TroxyGroupKey returns the secret shared among all trusted subsystems.
func (d *Directory) TroxyGroupKey() []byte { return d.derive("troxy-group") }

// ServiceIdentitySeed returns the Ed25519 seed of the service's TLS
// identity, provisioned into every Troxy enclave after attestation.
func (d *Directory) ServiceIdentitySeed() []byte { return d.derive("service-identity") }

// CounterKey returns the secret the trusted-counter subsystems use to
// certify counter values. Like the Troxy group key it is only ever handed to
// trusted subsystems.
func (d *Directory) CounterKey() []byte { return d.derive("trusted-counter") }

// Authenticator computes and verifies point-to-point HMACs for one node. It
// lazily derives pairwise keys from the directory. Authenticator is not safe
// for concurrent use; each protocol state machine owns one.
type Authenticator struct {
	self msg.NodeID
	dir  *Directory
	macs map[msg.NodeID]hash.Hash
}

// NewAuthenticator creates the authenticator for node self.
func NewAuthenticator(self msg.NodeID, dir *Directory) *Authenticator {
	return &Authenticator{self: self, dir: dir, macs: make(map[msg.NodeID]hash.Hash)}
}

// mac returns the cached keyed HMAC for a peer (creating one costs four
// SHA-256 compressions; reusing via Reset costs none).
func (a *Authenticator) mac(peer msg.NodeID) hash.Hash {
	m, ok := a.macs[peer]
	if !ok {
		m = hmac.New(sha256.New, a.dir.PairKey(a.self, peer))
		a.macs[peer] = m
	}
	m.Reset()
	return m
}

// macInput returns the canonical byte string a point-to-point MAC covers.
func macInput(e *msg.Envelope) []byte {
	b := make([]byte, 0, 9+len(e.Body))
	b = append(b, byte(e.Kind))
	b = append(b,
		byte(e.From), byte(e.From>>8), byte(e.From>>16), byte(e.From>>24),
		byte(e.To), byte(e.To>>8), byte(e.To>>16), byte(e.To>>24))
	b = append(b, e.Body...)
	return b
}

// SealMAC computes and attaches the point-to-point MAC for an outgoing
// envelope. The envelope's From must be the authenticator's node.
func (a *Authenticator) SealMAC(e *msg.Envelope) {
	mac := a.mac(e.To)
	mac.Write(macInput(e))
	e.MAC = mac.Sum(nil)
}

// VerifyMAC checks the point-to-point MAC of an incoming envelope. The
// envelope's To must be the authenticator's node.
func (a *Authenticator) VerifyMAC(e *msg.Envelope) bool {
	if len(e.MAC) != TagSize {
		return false
	}
	mac := a.mac(e.From)
	mac.Write(macInput(e))
	return hmac.Equal(mac.Sum(nil), e.MAC)
}

// GroupTagger computes Troxy group tags. It lives inside the trusted
// subsystem: the group key never leaves the enclave boundary. Tags are bound
// to the producing Troxy's instance ID so a Troxy cannot impersonate another
// one even though the group secret is shared.
type GroupTagger struct {
	mac hash.Hash
}

// NewGroupTagger creates a tagger over the Troxy group secret.
func NewGroupTagger(groupKey []byte) *GroupTagger {
	return &GroupTagger{mac: hmac.New(sha256.New, groupKey)}
}

func (g *GroupTagger) sum(instance msg.NodeID, input []byte) []byte {
	g.mac.Reset()
	var id [4]byte
	id[0], id[1], id[2], id[3] = byte(instance), byte(instance>>8), byte(instance>>16), byte(instance>>24)
	g.mac.Write(id[:])
	g.mac.Write(input)
	return g.mac.Sum(nil)
}

// Tag computes the group tag of input as produced by the given instance.
func (g *GroupTagger) Tag(instance msg.NodeID, input []byte) []byte {
	return g.sum(instance, input)
}

// Verify checks a group tag allegedly produced by instance over input.
func (g *GroupTagger) Verify(instance msg.NodeID, input, tag []byte) bool {
	if len(tag) != TagSize {
		return false
	}
	return hmac.Equal(g.sum(instance, input), tag)
}
