package authn

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/troxy-bft/troxy/internal/msg"
)

func newDir(t *testing.T) *Directory {
	t.Helper()
	d, err := NewDirectory([]byte("test-master-secret"))
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	return d
}

func TestNewDirectoryRejectsEmpty(t *testing.T) {
	if _, err := NewDirectory(nil); err == nil {
		t.Error("expected error for empty master secret")
	}
}

func TestPairKeySymmetric(t *testing.T) {
	d := newDir(t)
	if !bytes.Equal(d.PairKey(1, 2), d.PairKey(2, 1)) {
		t.Error("PairKey must be symmetric")
	}
	if bytes.Equal(d.PairKey(1, 2), d.PairKey(1, 3)) {
		t.Error("distinct pairs must have distinct keys")
	}
	if len(d.PairKey(0, 1)) != KeySize {
		t.Errorf("key size = %d, want %d", len(d.PairKey(0, 1)), KeySize)
	}
}

func TestDistinctRoleKeys(t *testing.T) {
	d := newDir(t)
	if bytes.Equal(d.TroxyGroupKey(), d.CounterKey()) {
		t.Error("group key and counter key must differ")
	}
	if bytes.Equal(d.TroxyGroupKey(), d.PairKey(0, 1)) {
		t.Error("group key must differ from pair keys")
	}
}

func TestDirectoryCopiesMaster(t *testing.T) {
	master := []byte("secret")
	d, err := NewDirectory(master)
	if err != nil {
		t.Fatal(err)
	}
	before := d.TroxyGroupKey()
	master[0] = 'X'
	if !bytes.Equal(before, d.TroxyGroupKey()) {
		t.Error("directory must copy the master secret at the boundary")
	}
}

func TestSealVerifyMAC(t *testing.T) {
	d := newDir(t)
	sender := NewAuthenticator(1, d)
	receiver := NewAuthenticator(2, d)

	e := msg.Seal(1, 2, &msg.Checkpoint{Seq: 5})
	sender.SealMAC(e)
	if !receiver.VerifyMAC(e) {
		t.Fatal("valid MAC rejected")
	}

	// Any mutation must break verification.
	tampered := *e
	tampered.Body = append([]byte{}, e.Body...)
	tampered.Body[0] ^= 1
	if receiver.VerifyMAC(&tampered) {
		t.Error("tampered body accepted")
	}

	wrongFrom := *e
	wrongFrom.From = 0
	if receiver.VerifyMAC(&wrongFrom) {
		t.Error("spoofed sender accepted")
	}

	wrongKind := *e
	wrongKind.Kind = msg.KindCommit
	if receiver.VerifyMAC(&wrongKind) {
		t.Error("kind substitution accepted")
	}

	// Replaying to a different destination must fail: node 3 shares a
	// different key with node 1.
	third := NewAuthenticator(3, d)
	redirected := *e
	redirected.To = 3
	if third.VerifyMAC(&redirected) {
		t.Error("redirected envelope accepted")
	}
}

func TestVerifyMACRejectsShortTag(t *testing.T) {
	d := newDir(t)
	receiver := NewAuthenticator(2, d)
	e := msg.Seal(1, 2, &msg.Checkpoint{Seq: 5})
	e.MAC = []byte{1, 2, 3}
	if receiver.VerifyMAC(e) {
		t.Error("short MAC accepted")
	}
	e.MAC = nil
	if receiver.VerifyMAC(e) {
		t.Error("missing MAC accepted")
	}
}

func TestGroupTagger(t *testing.T) {
	d := newDir(t)
	tagger := NewGroupTagger(d.TroxyGroupKey())
	verifier := NewGroupTagger(d.TroxyGroupKey())

	input := []byte("reply-content")
	tag := tagger.Tag(0, input)
	if !verifier.Verify(0, input, tag) {
		t.Fatal("valid group tag rejected")
	}
	// A tag is bound to the producing instance.
	if verifier.Verify(1, input, tag) {
		t.Error("tag accepted for wrong instance")
	}
	if verifier.Verify(0, []byte("other"), tag) {
		t.Error("tag accepted for wrong input")
	}
	if verifier.Verify(0, input, tag[:10]) {
		t.Error("truncated tag accepted")
	}
}

func TestGroupTaggerDifferentKeysDisagree(t *testing.T) {
	a := NewGroupTagger([]byte("key-a"))
	b := NewGroupTagger([]byte("key-b"))
	input := []byte("x")
	if b.Verify(0, input, a.Tag(0, input)) {
		t.Error("tag from different key accepted")
	}
}

func TestQuickMACRoundTrip(t *testing.T) {
	d := newDir(t)
	f := func(body []byte, fromRaw, toRaw uint8) bool {
		from := msg.NodeID(fromRaw % 8)
		to := msg.NodeID(toRaw % 8)
		if from == to {
			to = (to + 1) % 8
		}
		e := &msg.Envelope{From: from, To: to, Kind: msg.KindChannelData, Body: body}
		NewAuthenticator(from, d).SealMAC(e)
		return NewAuthenticator(to, d).VerifyMAC(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTamperDetected(t *testing.T) {
	d := newDir(t)
	sender := NewAuthenticator(1, d)
	receiver := NewAuthenticator(2, d)
	f := func(body []byte, flip uint16) bool {
		if len(body) == 0 {
			return true
		}
		e := &msg.Envelope{From: 1, To: 2, Kind: msg.KindChannelData, Body: body}
		sender.SealMAC(e)
		idx := int(flip) % len(body)
		e.Body[idx] ^= 0x80
		return !receiver.VerifyMAC(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
