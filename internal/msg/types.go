package msg

import (
	"fmt"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Request flags.
const (
	// FlagReadOnly marks a request that does not modify service state. The
	// paper assumes read and write requests can be distinguished before
	// execution (Section IV-A).
	FlagReadOnly uint8 = 1 << iota

	// FlagDirect marks a read that should be executed speculatively without
	// ordering (the PBFT-like read optimization used by the baseline and by
	// Prophecy fast reads).
	FlagDirect

	// FlagBroadcast marks a request the client already sent to every
	// replica (the PBFT-style client protocol the baseline library uses);
	// followers verify it but do not forward it to the leader.
	FlagBroadcast

	// FlagFastCommit marks a request whose client accepts the crash-tolerant
	// commit level: replicas answer it speculatively at PREPARE time with a
	// SpecReply while the durable Byzantine commit completes in the
	// background. The flag is part of the request's canonical encoding, so
	// the commit level is bound into the digest replicas vote on.
	FlagFastCommit
)

// ChannelData carries opaque secure-channel bytes (handshake frames or
// encrypted records) between a legacy client and a replica. ConnID
// distinguishes connections multiplexed over the same node pair.
type ChannelData struct {
	ConnID  uint64
	Payload []byte
}

// Kind implements Message.
func (*ChannelData) Kind() Kind { return KindChannelData }

// MarshalWire implements Message.
func (m *ChannelData) MarshalWire(w *wire.Writer) {
	w.U64(m.ConnID)
	w.Bytes32(m.Payload)
}

// UnmarshalWire implements Message.
func (m *ChannelData) UnmarshalWire(r *wire.Reader) error {
	m.ConnID = r.U64()
	m.Payload = r.Bytes32()
	return r.Err()
}

// BFTRequest is issued by a baseline BFT client (which talks the BFT
// protocol itself) or by the Prophecy middlebox. Troxy-backed deployments
// never expose this message to clients.
type BFTRequest struct {
	Client    uint64
	ClientSeq uint64
	Flags     uint8
	Op        []byte
}

// Kind implements Message.
func (*BFTRequest) Kind() Kind { return KindBFTRequest }

// MarshalWire implements Message.
func (m *BFTRequest) MarshalWire(w *wire.Writer) {
	w.U64(m.Client)
	w.U64(m.ClientSeq)
	w.U8(m.Flags)
	w.Bytes32(m.Op)
}

// UnmarshalWire implements Message.
func (m *BFTRequest) UnmarshalWire(r *wire.Reader) error {
	m.Client = r.U64()
	m.ClientSeq = r.U64()
	m.Flags = r.U8()
	m.Op = r.Bytes32()
	return r.Err()
}

// BFTReply answers a BFTRequest. The baseline client library votes over
// f+1 (ordered) or all 2f+1 (direct-read) matching replies.
type BFTReply struct {
	Executor  NodeID
	Client    uint64
	ClientSeq uint64
	ReqDigest Digest
	Direct    bool // reply to a speculative (non-ordered) read
	Conflict  bool // direct read rejected, client must re-issue ordered
	Result    []byte
}

// Kind implements Message.
func (*BFTReply) Kind() Kind { return KindBFTReply }

// MarshalWire implements Message.
func (m *BFTReply) MarshalWire(w *wire.Writer) {
	w.U32(uint32(m.Executor))
	w.U64(m.Client)
	w.U64(m.ClientSeq)
	writeDigest(w, m.ReqDigest)
	w.Bool(m.Direct)
	w.Bool(m.Conflict)
	w.Bytes32(m.Result)
}

// UnmarshalWire implements Message.
func (m *BFTReply) UnmarshalWire(r *wire.Reader) error {
	m.Executor = NodeID(int32(r.U32()))
	m.Client = r.U64()
	m.ClientSeq = r.U64()
	readDigest(r, &m.ReqDigest)
	m.Direct = r.Bool()
	m.Conflict = r.Bool()
	m.Result = r.Bytes32()
	return r.Err()
}

// OrderRequest is the unit submitted to the agreement protocol: a client
// operation plus the identity of the node that votes over its replies
// (a replica's Troxy, a BFT client, or the Prophecy middlebox).
type OrderRequest struct {
	// Origin is the node to which all replicas send their OrderedReply (for
	// Troxy: the replica holding the client connection; for the baseline:
	// the client itself).
	Origin    NodeID
	Client    uint64
	ClientSeq uint64
	Flags     uint8
	Op        []byte
}

// MarshalWire encodes the request canonically.
func (m *OrderRequest) MarshalWire(w *wire.Writer) {
	w.U32(uint32(m.Origin))
	w.U64(m.Client)
	w.U64(m.ClientSeq)
	w.U8(m.Flags)
	w.Bytes32(m.Op)
}

// UnmarshalWire decodes the request.
func (m *OrderRequest) UnmarshalWire(r *wire.Reader) error {
	m.Origin = NodeID(int32(r.U32()))
	m.Client = r.U64()
	m.ClientSeq = r.U64()
	m.Flags = r.U8()
	m.Op = r.Bytes32()
	return r.Err()
}

// ReadOnly reports whether the read-only flag is set.
func (m *OrderRequest) ReadOnly() bool { return m.Flags&FlagReadOnly != 0 }

// FastCommit reports whether the request accepts the crash-tolerant commit
// level (speculative PREPARE-time replies).
func (m *OrderRequest) FastCommit() bool { return m.Flags&FlagFastCommit != 0 }

// Digest returns the SHA-256 digest of the canonical encoding. Replicas vote
// and invalidate caches by this digest.
func (m *OrderRequest) Digest() Digest {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	m.MarshalWire(w)
	return DigestOf(w.Bytes())
}

// String implements fmt.Stringer for log lines.
func (m *OrderRequest) String() string {
	return fmt.Sprintf("req{c=%d s=%d origin=%d flags=%#x op=%dB}",
		m.Client, m.ClientSeq, m.Origin, m.Flags, len(m.Op))
}

// Batch groups client requests that are ordered as a single unit: one
// trusted-counter certification and one PREPARE/COMMIT round covers the whole
// batch, amortizing the protocol's fixed per-slot cost over Len() requests.
// An empty batch is a valid no-op proposal; the new leader uses it to fill
// sequence gaps during a view change.
type Batch struct {
	Reqs []OrderRequest
}

// Kind implements Message.
func (*Batch) Kind() Kind { return KindBatch }

// MarshalWire implements Message.
func (m *Batch) MarshalWire(w *wire.Writer) {
	w.U32(uint32(len(m.Reqs)))
	for i := range m.Reqs {
		m.Reqs[i].MarshalWire(w)
	}
}

// UnmarshalWire implements Message.
func (m *Batch) UnmarshalWire(r *wire.Reader) error {
	n := r.SliceLen()
	if r.Err() != nil {
		return r.Err()
	}
	m.Reqs = nil
	if n > 0 {
		m.Reqs = make([]OrderRequest, 0, min(n, 64))
	}
	for i := 0; i < n; i++ {
		var req OrderRequest
		if err := req.UnmarshalWire(r); err != nil {
			return err
		}
		m.Reqs = append(m.Reqs, req)
	}
	return r.Err()
}

// Len returns the number of requests in the batch.
func (m *Batch) Len() int { return len(m.Reqs) }

// ReqDigests returns the digest of every request, in batch order.
func (m *Batch) ReqDigests() []Digest {
	if len(m.Reqs) == 0 {
		return nil
	}
	out := make([]Digest, len(m.Reqs))
	for i := range m.Reqs {
		out[i] = m.Reqs[i].Digest()
	}
	return out
}

// BatchDigestOf combines per-request digests into the digest that the batch's
// PREPARE/COMMIT certificates bind. The "troxy-batch" marker and the request
// count domain-separate it from single-request digests and from concatenation
// ambiguities between adjacent batches.
func BatchDigestOf(reqDigests []Digest) Digest {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.String("troxy-batch")
	w.U32(uint32(len(reqDigests)))
	for i := range reqDigests {
		writeDigest(w, reqDigests[i])
	}
	return DigestOf(w.Bytes())
}

// Digest returns the combined batch digest (see BatchDigestOf).
func (m *Batch) Digest() Digest { return BatchDigestOf(m.ReqDigests()) }

// String implements fmt.Stringer for log lines.
func (m *Batch) String() string { return fmt.Sprintf("batch{%d reqs}", len(m.Reqs)) }

// CounterCert is a trusted-counter certificate binding a message digest to
// the (ID, Value) pair of a trusted monotonic counter. Produced and verified
// only inside the trusted subsystem; the untrusted replica part treats it as
// opaque. See internal/tcounter.
type CounterCert struct {
	Replica NodeID // owner of the counter
	Counter uint32 // counter index within the owner's subsystem
	Value   uint64 // certified counter value
	MAC     []byte // HMAC over (Replica, Counter, Value, digest)
}

// MarshalWire encodes the certificate.
func (c *CounterCert) MarshalWire(w *wire.Writer) {
	w.U32(uint32(c.Replica))
	w.U32(c.Counter)
	w.U64(c.Value)
	w.Bytes32(c.MAC)
}

// UnmarshalWire decodes the certificate.
func (c *CounterCert) UnmarshalWire(r *wire.Reader) error {
	c.Replica = NodeID(int32(r.U32()))
	c.Counter = r.U32()
	c.Value = r.U64()
	c.MAC = r.Bytes32()
	return r.Err()
}

// Forward carries a client request from a follower replica to the leader,
// which alone may initiate agreement (Hybster is leader-based).
type Forward struct {
	Req OrderRequest
}

// Kind implements Message.
func (*Forward) Kind() Kind { return KindForward }

// MarshalWire implements Message.
func (m *Forward) MarshalWire(w *wire.Writer) { m.Req.MarshalWire(w) }

// UnmarshalWire implements Message.
func (m *Forward) UnmarshalWire(r *wire.Reader) error { return m.Req.UnmarshalWire(r) }

// Prepare is the leader's ordering proposal for sequence number Seq in View.
// The certificate binds (View, Seq, batch digest) to the leader's ordering
// counter, which makes equivocation impossible: the counter can certify each
// value exactly once, and followers require consecutive values.
type Prepare struct {
	View  uint64
	Seq   uint64
	Batch Batch
	Cert  CounterCert
}

// Kind implements Message.
func (*Prepare) Kind() Kind { return KindPrepare }

// MarshalWire implements Message.
func (m *Prepare) MarshalWire(w *wire.Writer) {
	w.U64(m.View)
	w.U64(m.Seq)
	m.Batch.MarshalWire(w)
	m.Cert.MarshalWire(w)
}

// UnmarshalWire implements Message.
func (m *Prepare) UnmarshalWire(r *wire.Reader) error {
	m.View = r.U64()
	m.Seq = r.U64()
	if err := m.Batch.UnmarshalWire(r); err != nil {
		return err
	}
	return m.Cert.UnmarshalWire(r)
}

// Commit acknowledges a Prepare. It is certified by the sender's trusted
// counter so a Byzantine replica cannot send conflicting commits.
type Commit struct {
	View        uint64
	Seq         uint64
	BatchDigest Digest
	Cert        CounterCert
}

// Kind implements Message.
func (*Commit) Kind() Kind { return KindCommit }

// MarshalWire implements Message.
func (m *Commit) MarshalWire(w *wire.Writer) {
	w.U64(m.View)
	w.U64(m.Seq)
	writeDigest(w, m.BatchDigest)
	m.Cert.MarshalWire(w)
}

// UnmarshalWire implements Message.
func (m *Commit) UnmarshalWire(r *wire.Reader) error {
	m.View = r.U64()
	m.Seq = r.U64()
	readDigest(r, &m.BatchDigest)
	return m.Cert.UnmarshalWire(r)
}

// OrderedReply carries the result of an executed request from the executing
// replica to the request's Origin, whose Troxy (or client library) votes.
//
// As required by the fast-read cache protocol (Section IV-A), the reply
// (1) is authenticated by the *executing replica's Troxy* (TroxyTag), which
// forces every counted reply through that Troxy and thereby guarantees cache
// invalidation before a write completes; and (2) carries the digest of the
// original request so the voting Troxy can identify the cache entry.
type OrderedReply struct {
	Executor  NodeID
	Seq       uint64 // agreement sequence number that executed the request
	Client    uint64
	ClientSeq uint64
	ReqDigest Digest
	Result    []byte
	// InvalidKeys lists the state parts the request modified, so the voting
	// Troxy can invalidate cache entries for reads of those parts.
	InvalidKeys []string
	// TroxyTag is the HMAC computed inside the executor's trusted subsystem
	// over the reply's canonical content with the Troxy group secret and the
	// executor's instance ID.
	TroxyTag []byte
}

// Kind implements Message.
func (*OrderedReply) Kind() Kind { return KindOrderedReply }

// MarshalWire implements Message.
func (m *OrderedReply) MarshalWire(w *wire.Writer) {
	m.marshalCore(w)
	w.Bytes32(m.TroxyTag)
}

func (m *OrderedReply) marshalCore(w *wire.Writer) {
	w.U32(uint32(m.Executor))
	w.U64(m.Seq)
	w.U64(m.Client)
	w.U64(m.ClientSeq)
	writeDigest(w, m.ReqDigest)
	w.Bytes32(m.Result)
	w.U32(uint32(len(m.InvalidKeys)))
	for _, k := range m.InvalidKeys {
		w.String(k)
	}
}

// TagInput returns the canonical bytes the TroxyTag authenticates.
func (m *OrderedReply) TagInput() []byte {
	w := wire.NewWriter(64 + len(m.Result))
	m.marshalCore(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalWire implements Message.
func (m *OrderedReply) UnmarshalWire(r *wire.Reader) error {
	m.Executor = NodeID(int32(r.U32()))
	m.Seq = r.U64()
	m.Client = r.U64()
	m.ClientSeq = r.U64()
	readDigest(r, &m.ReqDigest)
	m.Result = r.Bytes32()
	n := r.SliceLen()
	if r.Err() != nil {
		return r.Err()
	}
	m.InvalidKeys = nil
	if n > 0 {
		m.InvalidKeys = make([]string, 0, min(n, 64))
	}
	for i := 0; i < n; i++ {
		m.InvalidKeys = append(m.InvalidKeys, r.String())
	}
	m.TroxyTag = r.Bytes32()
	return r.Err()
}

// SpecReply carries the speculative (crash-tolerant tier) result of a
// fast-commit request from a replica that accepted the batch's PREPARE to
// the request's Origin. The voting Troxy answers the client after f+1
// matching SpecReplies and keeps the vote open for the durable tier.
//
// Cert is the sender's trusted-counter certificate for the PREPARE round
// that justifies the speculation: the leader's prepare certificate when
// Executor led View, the follower's commit certificate otherwise. It binds
// (View, Seq, BatchDigest), so a speculative result cannot be fabricated
// without the trusted counter having committed to that exact proposal —
// this is the anchor that makes rollback attributable when the batch loses
// a view change. TroxyTag authenticates the reply content exactly like
// OrderedReply's tag.
type SpecReply struct {
	Executor    NodeID
	View        uint64
	Seq         uint64 // agreement sequence number of the speculated batch
	BatchDigest Digest
	Client      uint64
	ClientSeq   uint64
	ReqDigest   Digest
	Result      []byte
	Cert        CounterCert
	// TroxyTag is the HMAC computed inside the executor's trusted subsystem
	// over the reply's canonical content (everything above, certificate
	// included) with the Troxy group secret and the executor's instance ID.
	TroxyTag []byte
}

// Kind implements Message.
func (*SpecReply) Kind() Kind { return KindSpecReply }

// MarshalWire implements Message.
func (m *SpecReply) MarshalWire(w *wire.Writer) {
	m.marshalCore(w)
	w.Bytes32(m.TroxyTag)
}

func (m *SpecReply) marshalCore(w *wire.Writer) {
	w.U32(uint32(m.Executor))
	w.U64(m.View)
	w.U64(m.Seq)
	writeDigest(w, m.BatchDigest)
	w.U64(m.Client)
	w.U64(m.ClientSeq)
	writeDigest(w, m.ReqDigest)
	w.Bytes32(m.Result)
	m.Cert.MarshalWire(w)
}

// TagInput returns the canonical bytes the TroxyTag authenticates.
func (m *SpecReply) TagInput() []byte {
	w := wire.NewWriter(160 + len(m.Result))
	m.marshalCore(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalWire implements Message.
func (m *SpecReply) UnmarshalWire(r *wire.Reader) error {
	m.Executor = NodeID(int32(r.U32()))
	m.View = r.U64()
	m.Seq = r.U64()
	readDigest(r, &m.BatchDigest)
	m.Client = r.U64()
	m.ClientSeq = r.U64()
	readDigest(r, &m.ReqDigest)
	m.Result = r.Bytes32()
	if err := m.Cert.UnmarshalWire(r); err != nil {
		return err
	}
	m.TroxyTag = r.Bytes32()
	return r.Err()
}

// Checkpoint announces the digest of the application state after executing
// all requests up to and including Seq. f+1 matching checkpoints make Seq
// stable and let replicas garbage-collect their logs.
type Checkpoint struct {
	Seq         uint64
	StateDigest Digest
}

// Kind implements Message.
func (*Checkpoint) Kind() Kind { return KindCheckpoint }

// MarshalWire implements Message.
func (m *Checkpoint) MarshalWire(w *wire.Writer) {
	w.U64(m.Seq)
	writeDigest(w, m.StateDigest)
}

// UnmarshalWire implements Message.
func (m *Checkpoint) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.U64()
	readDigest(r, &m.StateDigest)
	return r.Err()
}

// PreparedEntry is a batch a replica has prepared (verified the leader's
// Prepare for) but that may not yet be stable. View changes carry these so
// the new leader can re-propose them and no in-flight batch is lost.
type PreparedEntry struct {
	View  uint64
	Seq   uint64
	Batch Batch
	// PrepareCert is the certificate from the original Prepare, proving the
	// old leader proposed this batch at this sequence number.
	PrepareCert CounterCert
}

// MarshalWire encodes the entry.
func (m *PreparedEntry) MarshalWire(w *wire.Writer) {
	w.U64(m.View)
	w.U64(m.Seq)
	m.Batch.MarshalWire(w)
	m.PrepareCert.MarshalWire(w)
}

// UnmarshalWire decodes the entry.
func (m *PreparedEntry) UnmarshalWire(r *wire.Reader) error {
	m.View = r.U64()
	m.Seq = r.U64()
	if err := m.Batch.UnmarshalWire(r); err != nil {
		return err
	}
	return m.PrepareCert.UnmarshalWire(r)
}

// ViewChange announces that the sender wants to move to view NewView. It
// carries the sender's stable checkpoint and everything prepared above it,
// certified by the sender's trusted counter (so a replica cannot send two
// different view-change messages for the same view).
type ViewChange struct {
	Replica      NodeID
	NewView      uint64
	StableSeq    uint64
	StableDigest Digest
	Prepared     []PreparedEntry
	Cert         CounterCert
}

// Kind implements Message.
func (*ViewChange) Kind() Kind { return KindViewChange }

// MarshalWire implements Message.
func (m *ViewChange) MarshalWire(w *wire.Writer) {
	m.marshalCore(w)
	m.Cert.MarshalWire(w)
}

func (m *ViewChange) marshalCore(w *wire.Writer) {
	w.U32(uint32(m.Replica))
	w.U64(m.NewView)
	w.U64(m.StableSeq)
	writeDigest(w, m.StableDigest)
	w.U32(uint32(len(m.Prepared)))
	for i := range m.Prepared {
		m.Prepared[i].MarshalWire(w)
	}
}

// CertInput returns the canonical bytes the view-change certificate signs.
func (m *ViewChange) CertInput() []byte {
	w := wire.NewWriter(256)
	m.marshalCore(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalWire implements Message.
func (m *ViewChange) UnmarshalWire(r *wire.Reader) error {
	m.Replica = NodeID(int32(r.U32()))
	m.NewView = r.U64()
	m.StableSeq = r.U64()
	readDigest(r, &m.StableDigest)
	n := r.SliceLen()
	if r.Err() != nil {
		return r.Err()
	}
	m.Prepared = nil
	if n > 0 {
		m.Prepared = make([]PreparedEntry, 0, min(n, 64))
	}
	for i := 0; i < n; i++ {
		var e PreparedEntry
		if err := e.UnmarshalWire(r); err != nil {
			return err
		}
		m.Prepared = append(m.Prepared, e)
	}
	return m.Cert.UnmarshalWire(r)
}

// NewView installs view View. It carries the f+1 view-change messages that
// justify the switch and is certified by the new leader's counter.
type NewView struct {
	Leader      NodeID
	View        uint64
	ViewChanges []ViewChange
	Cert        CounterCert
}

// Kind implements Message.
func (*NewView) Kind() Kind { return KindNewView }

// MarshalWire implements Message.
func (m *NewView) MarshalWire(w *wire.Writer) {
	m.marshalCore(w)
	m.Cert.MarshalWire(w)
}

func (m *NewView) marshalCore(w *wire.Writer) {
	w.U32(uint32(m.Leader))
	w.U64(m.View)
	w.U32(uint32(len(m.ViewChanges)))
	for i := range m.ViewChanges {
		m.ViewChanges[i].MarshalWire(w)
	}
}

// CertInput returns the canonical bytes the new-view certificate signs.
func (m *NewView) CertInput() []byte {
	w := wire.NewWriter(512)
	m.marshalCore(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalWire implements Message.
func (m *NewView) UnmarshalWire(r *wire.Reader) error {
	m.Leader = NodeID(int32(r.U32()))
	m.View = r.U64()
	n := r.SliceLen()
	if r.Err() != nil {
		return r.Err()
	}
	m.ViewChanges = nil
	if n > 0 {
		m.ViewChanges = make([]ViewChange, 0, min(n, 16))
	}
	for i := 0; i < n; i++ {
		var vc ViewChange
		if err := vc.UnmarshalWire(r); err != nil {
			return err
		}
		m.ViewChanges = append(m.ViewChanges, vc)
	}
	return m.Cert.UnmarshalWire(r)
}

// CacheQuery asks the Troxy of a remote replica whether its fast-read cache
// holds an entry for the request identified by ReqDigest. Tag is the Troxy
// group-secret HMAC computed inside the querying trusted subsystem.
type CacheQuery struct {
	From      NodeID
	QueryID   uint64
	ReqDigest Digest
	Tag       []byte
}

// Kind implements Message.
func (*CacheQuery) Kind() Kind { return KindCacheQuery }

// MarshalWire implements Message.
func (m *CacheQuery) MarshalWire(w *wire.Writer) {
	m.marshalCore(w)
	w.Bytes32(m.Tag)
}

func (m *CacheQuery) marshalCore(w *wire.Writer) {
	w.U32(uint32(m.From))
	w.U64(m.QueryID)
	writeDigest(w, m.ReqDigest)
}

// TagInput returns the canonical bytes the query tag authenticates.
func (m *CacheQuery) TagInput() []byte {
	w := wire.NewWriter(48)
	m.marshalCore(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalWire implements Message.
func (m *CacheQuery) UnmarshalWire(r *wire.Reader) error {
	m.From = NodeID(int32(r.U32()))
	m.QueryID = r.U64()
	readDigest(r, &m.ReqDigest)
	m.Tag = r.Bytes32()
	return r.Err()
}

// CacheReply answers a CacheQuery. By default only the digest of the cached
// reply is transferred (the paper's hash optimization: "the fast-read cache
// only needs to transfer the hash of the reply between replicas"); the
// querying Troxy compares it against its own full entry. The base variant
// the paper also describes returns the full entry in ReplyData (compare
// Section IV-A: "the request and associated reply, both authenticated, are
// returned"). Tag is computed inside the answering trusted subsystem.
type CacheReply struct {
	From        NodeID
	QueryID     uint64
	ReqDigest   Digest
	Found       bool
	ReplyDigest Digest
	ReplyData   []byte // full entry (base variant only)
	Tag         []byte
}

// Kind implements Message.
func (*CacheReply) Kind() Kind { return KindCacheReply }

// MarshalWire implements Message.
func (m *CacheReply) MarshalWire(w *wire.Writer) {
	m.marshalCore(w)
	w.Bytes32(m.Tag)
}

func (m *CacheReply) marshalCore(w *wire.Writer) {
	w.U32(uint32(m.From))
	w.U64(m.QueryID)
	writeDigest(w, m.ReqDigest)
	w.Bool(m.Found)
	writeDigest(w, m.ReplyDigest)
	w.Bytes32(m.ReplyData)
}

// TagInput returns the canonical bytes the reply tag authenticates.
func (m *CacheReply) TagInput() []byte {
	w := wire.NewWriter(96)
	m.marshalCore(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalWire implements Message.
func (m *CacheReply) UnmarshalWire(r *wire.Reader) error {
	m.From = NodeID(int32(r.U32()))
	m.QueryID = r.U64()
	readDigest(r, &m.ReqDigest)
	m.Found = r.Bool()
	readDigest(r, &m.ReplyDigest)
	m.ReplyData = r.Bytes32()
	m.Tag = r.Bytes32()
	return r.Err()
}

// StateRequest asks a peer for state-transfer data at the stable checkpoint
// Seq. The requester has already agreed on the checkpoint digest (f+1
// matching Checkpoint messages) and verifies everything it receives against
// it. An empty Chunks slice asks for the chunk manifest (and the certified
// prefix of in-flight prepared entries); a non-empty one asks for the listed
// chunk indices of the manifest the requester already holds.
type StateRequest struct {
	Seq    uint64
	Chunks []uint32
}

// Kind implements Message.
func (*StateRequest) Kind() Kind { return KindStateRequest }

// MarshalWire implements Message.
func (m *StateRequest) MarshalWire(w *wire.Writer) {
	w.U64(m.Seq)
	w.U32(uint32(len(m.Chunks)))
	for _, idx := range m.Chunks {
		w.U32(idx)
	}
}

// UnmarshalWire implements Message.
func (m *StateRequest) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.U64()
	n := r.SliceLen()
	if r.Err() != nil {
		return r.Err()
	}
	m.Chunks = make([]uint32, 0, min(n, 64))
	for i := 0; i < n; i++ {
		m.Chunks = append(m.Chunks, r.U32())
	}
	return r.Err()
}

// StateReply answers a manifest-requesting StateRequest with the chunk
// manifest of the snapshot at Seq (per-chunk digests plus layout — see
// internal/hybster/snapshot.go). The manifest needs no authentication beyond
// the transport MAC: its hash is exactly the digest the requester agreed on
// through f+1 matching CHECKPOINT votes, and each later chunk is verified
// against the per-chunk digest inside it.
type StateReply struct {
	Seq      uint64
	Manifest []byte
}

// Kind implements Message.
func (*StateReply) Kind() Kind { return KindStateReply }

// MarshalWire implements Message.
func (m *StateReply) MarshalWire(w *wire.Writer) {
	w.U64(m.Seq)
	w.Bytes32(m.Manifest)
}

// UnmarshalWire implements Message.
func (m *StateReply) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.U64()
	m.Manifest = r.Bytes32()
	return r.Err()
}

// StateChunk carries one piece of the chunked snapshot at checkpoint Seq.
// Data must hash to the manifest's digest for Index (and match its declared
// length), so a tampered chunk is rejected without trusting the server.
type StateChunk struct {
	Seq   uint64
	Index uint32
	Data  []byte
}

// Kind implements Message.
func (*StateChunk) Kind() Kind { return KindStateChunk }

// MarshalWire implements Message.
func (m *StateChunk) MarshalWire(w *wire.Writer) {
	w.U64(m.Seq)
	w.U32(m.Index)
	w.Bytes32(m.Data)
}

// UnmarshalWire implements Message.
func (m *StateChunk) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.U64()
	m.Index = r.U32()
	m.Data = r.Bytes32()
	return r.Err()
}

// StatePrefix hands a state-transferring replica the serving peer's
// in-flight prepared entries above checkpoint Seq. Every entry carries the
// original leader's counter certificate (the same evidence view changes
// carry), so the joiner verifies each entry independently of the server's
// honesty and can resume ordering mid-window instead of replaying from the
// checkpoint or waiting for the next one. LastExec is the server's executed
// high mark, advisory only.
//
// NewView, when present, is the NEW-VIEW message that installed the server's
// current view. A joiner that slept through a view change would otherwise
// skip every prefix entry (wrong view) and defer the cluster's live traffic
// indefinitely; carrying the installing evidence lets it adopt the view —
// after full certificate verification — atomically with the snapshot. Nil
// when the server is still in the initial view.
type StatePrefix struct {
	Seq      uint64
	LastExec uint64
	Entries  []PreparedEntry
	NewView  *NewView
}

// Kind implements Message.
func (*StatePrefix) Kind() Kind { return KindStatePrefix }

// MarshalWire implements Message.
func (m *StatePrefix) MarshalWire(w *wire.Writer) {
	w.U64(m.Seq)
	w.U64(m.LastExec)
	w.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].MarshalWire(w)
	}
	w.Bool(m.NewView != nil)
	if m.NewView != nil {
		m.NewView.MarshalWire(w)
	}
}

// UnmarshalWire implements Message.
func (m *StatePrefix) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.U64()
	m.LastExec = r.U64()
	n := r.SliceLen()
	if r.Err() != nil {
		return r.Err()
	}
	m.Entries = make([]PreparedEntry, 0, min(n, 64))
	for i := 0; i < n; i++ {
		var e PreparedEntry
		if err := e.UnmarshalWire(r); err != nil {
			return err
		}
		m.Entries = append(m.Entries, e)
	}
	m.NewView = nil
	if r.Bool() {
		m.NewView = &NewView{}
		if err := m.NewView.UnmarshalWire(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// NewViewRequest solicits the NEW-VIEW that installed the receiver's current
// view (or any later one it holds). View is the lowest view the requester
// needs evidence for — the view of the certified message whose deferral
// triggered the solicitation.
type NewViewRequest struct {
	View uint64
}

// Kind implements Message.
func (*NewViewRequest) Kind() Kind { return KindNewViewRequest }

// MarshalWire implements Message.
func (m *NewViewRequest) MarshalWire(w *wire.Writer) {
	w.U64(m.View)
}

// UnmarshalWire implements Message.
func (m *NewViewRequest) UnmarshalWire(r *wire.Reader) error {
	m.View = r.U64()
	return r.Err()
}

// Interface compliance checks.
var (
	_ Message = (*ChannelData)(nil)
	_ Message = (*BFTRequest)(nil)
	_ Message = (*BFTReply)(nil)
	_ Message = (*Forward)(nil)
	_ Message = (*Prepare)(nil)
	_ Message = (*Commit)(nil)
	_ Message = (*OrderedReply)(nil)
	_ Message = (*Checkpoint)(nil)
	_ Message = (*ViewChange)(nil)
	_ Message = (*NewView)(nil)
	_ Message = (*CacheQuery)(nil)
	_ Message = (*CacheReply)(nil)
	_ Message = (*StateRequest)(nil)
	_ Message = (*StateReply)(nil)
	_ Message = (*Batch)(nil)
	_ Message = (*StateChunk)(nil)
	_ Message = (*StatePrefix)(nil)
	_ Message = (*NewViewRequest)(nil)
	_ Message = (*SpecReply)(nil)
)
