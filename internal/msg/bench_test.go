package msg

import (
	"fmt"
	"testing"
)

// Allocation benchmarks for the encode hot path. The pooled writers in
// internal/wire should keep steady-state encoding at one allocation per call
// (the returned copy); run with -benchmem to see it.

func benchBatch(n int) *Batch {
	b := &Batch{Reqs: make([]OrderRequest, n)}
	for i := range b.Reqs {
		b.Reqs[i] = OrderRequest{
			Origin:    NodeID(i % 3),
			Client:    uint64(100 + i),
			ClientSeq: uint64(i + 1),
			Op:        []byte(fmt.Sprintf("PUT key-%d value-%d", i, i)),
		}
	}
	return b
}

func BenchmarkEncodeForward(b *testing.B) {
	fwd := &Forward{Req: benchBatch(1).Reqs[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(fwd)
	}
}

func BenchmarkEncodePrepareBatch16(b *testing.B) {
	prep := &Prepare{View: 1, Seq: 7, Batch: *benchBatch(16),
		Cert: CounterCert{Replica: 0, Counter: 1, Value: 7, MAC: make([]byte, 32)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(prep)
	}
}

func BenchmarkEncodeEnvelope(b *testing.B) {
	env := Seal(0, 1, &Commit{View: 1, Seq: 7,
		Cert: CounterCert{Replica: 1, Counter: 1, Value: 7, MAC: make([]byte, 32)}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeEnvelope(env)
	}
}

func BenchmarkBatchDigest16(b *testing.B) {
	batch := benchBatch(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Digest()
	}
}
