package msg

import (
	"fmt"
	"testing"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Allocation benchmarks for the encode hot path. The pooled writers in
// internal/wire should keep steady-state encoding at one allocation per call
// (the returned copy); run with -benchmem to see it.

func benchBatch(n int) *Batch {
	b := &Batch{Reqs: make([]OrderRequest, n)}
	for i := range b.Reqs {
		b.Reqs[i] = OrderRequest{
			Origin:    NodeID(i % 3),
			Client:    uint64(100 + i),
			ClientSeq: uint64(i + 1),
			Op:        []byte(fmt.Sprintf("PUT key-%d value-%d", i, i)),
		}
	}
	return b
}

func BenchmarkEncodeForward(b *testing.B) {
	fwd := &Forward{Req: benchBatch(1).Reqs[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(fwd)
	}
}

func BenchmarkEncodePrepareBatch16(b *testing.B) {
	prep := &Prepare{View: 1, Seq: 7, Batch: *benchBatch(16),
		Cert: CounterCert{Replica: 0, Counter: 1, Value: 7, MAC: make([]byte, 32)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(prep)
	}
}

func BenchmarkEncodeEnvelope(b *testing.B) {
	env := Seal(0, 1, &Commit{View: 1, Seq: 7,
		Cert: CounterCert{Replica: 1, Counter: 1, Value: 7, MAC: make([]byte, 32)}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeEnvelope(env)
	}
}

func BenchmarkBatchDigest16(b *testing.B) {
	batch := benchBatch(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Digest()
	}
}

// BenchmarkAppendEnvelopeFrame measures the specialized transport's encode
// path: frame header plus envelope appended into a pooled writer that
// becomes a ring slot, with no intermediate copy. The benchmark gates, not
// just reports: any allocation per op fails it (`make bench-quick` runs it
// in CI), because one stray alloc here multiplies by every frame the
// transport sends.
func BenchmarkAppendEnvelopeFrame(b *testing.B) {
	env := Seal(0, 1, &Commit{View: 1, Seq: 7,
		Cert: CounterCert{Replica: 1, Counter: 1, Value: 7, MAC: make([]byte, 32)}})
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	if allocs := testing.AllocsPerRun(1000, func() {
		w.Reset()
		if err := AppendEnvelopeFrame(w, env); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("pooled frame encode allocates %.1f/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := AppendEnvelopeFrame(w, env); err != nil {
			b.Fatal(err)
		}
	}
}
