package msg

import (
	"reflect"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := []*Batch{
		{}, // empty batch: the view-change no-op filler
		{Reqs: []OrderRequest{sampleRequest()}}, // degenerate single-request batch
		{Reqs: []OrderRequest{
			sampleRequest(),
			{Origin: 4, Client: 78, ClientSeq: 5, Flags: FlagReadOnly, Op: []byte("GET other")},
			{Origin: NoNode}, // embedded no-op
		}},
	}
	for _, b := range cases {
		got := roundTrip(t, b)
		if !reflect.DeepEqual(got, b) {
			t.Errorf("batch round trip mismatch:\n got  %#v\n want %#v", got, b)
		}
	}
}

func TestBatchDigest(t *testing.T) {
	req := sampleRequest()
	single := &Batch{Reqs: []OrderRequest{req}}

	// A single-request batch digest must differ from the bare request digest
	// (domain separation), and the empty batch must have a defined digest
	// distinct from everything else.
	if single.Digest() == req.Digest() {
		t.Error("single-request batch digest must not equal the request digest")
	}
	empty := &Batch{}
	if empty.Digest() == single.Digest() {
		t.Error("empty batch digest must differ from non-empty batch digest")
	}
	if empty.Digest() != BatchDigestOf(nil) {
		t.Error("empty batch digest must equal BatchDigestOf(nil)")
	}

	// Order matters: [a,b] and [b,a] are different proposals.
	other := OrderRequest{Origin: 4, Client: 78, ClientSeq: 5, Op: []byte("PUT b 2")}
	ab := &Batch{Reqs: []OrderRequest{req, other}}
	ba := &Batch{Reqs: []OrderRequest{other, req}}
	if ab.Digest() == ba.Digest() {
		t.Error("batch digest must depend on request order")
	}

	// Digest is consistent with the per-request digests it is built from.
	if BatchDigestOf(ab.ReqDigests()) != ab.Digest() {
		t.Error("Digest() must equal BatchDigestOf(ReqDigests())")
	}
	if len(ab.ReqDigests()) != 2 || ab.ReqDigests()[0] != req.Digest() {
		t.Error("ReqDigests must return per-request digests in batch order")
	}
}

func TestBatchDecodeRejectsGarbage(t *testing.T) {
	// A length header promising more requests than the buffer holds.
	if _, err := Decode([]byte{byte(KindBatch), 0xff, 0xff, 0xff, 0x00}); err == nil {
		t.Error("expected error for truncated batch")
	}
}
