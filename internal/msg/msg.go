// Package msg defines every wire message exchanged in a Troxy-backed system:
// client secure-channel records, Hybster agreement messages (PREPARE/COMMIT
// with trusted-counter certificates), checkpoint and view-change messages,
// Troxy-to-Troxy fast-read cache messages, and the baseline BFT client
// messages. All messages marshal to a canonical binary form; digests and MACs
// are always computed over that canonical form, never over in-memory
// representations.
//
// Messages travel inside an Envelope carrying source, destination, and an
// optional point-to-point HMAC appended by the untrusted replica part.
// Troxy-to-Troxy authentication tags (computed inside the trusted subsystem)
// are fields of the respective message types instead, because the untrusted
// part must not be able to produce them.
package msg

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"github.com/troxy-bft/troxy/internal/wire"
)

// NodeID identifies a node (replica, client, or middlebox) in a deployment.
// Replicas are numbered 0..n-1; other nodes use higher IDs.
type NodeID int32

// NoNode is the zero NodeID used when a field is unset.
const NoNode NodeID = -1

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. Start at one so an accidental zero is invalid.
const (
	// KindChannelData carries opaque secure-channel bytes between a legacy
	// client and the Troxy of the replica it is connected to.
	KindChannelData Kind = iota + 1

	// KindBFTRequest is a request from a baseline BFT client (or the
	// Prophecy middlebox) to a replica.
	KindBFTRequest

	// KindBFTReply is a reply from a replica to a baseline BFT client.
	KindBFTReply

	// KindForward carries a client request from a follower's Troxy to the
	// current leader for ordering.
	KindForward

	// KindPrepare is the leader's ordering proposal, certified by the
	// leader's trusted counter.
	KindPrepare

	// KindCommit acknowledges a Prepare, certified by the sender's trusted
	// counter.
	KindCommit

	// KindOrderedReply carries an execution result from the executing
	// replica to the replica whose Troxy votes for the client.
	KindOrderedReply

	// KindCheckpoint announces a state digest at a checkpoint interval.
	KindCheckpoint

	// KindViewChange asks to install a new view.
	KindViewChange

	// KindNewView installs a new view.
	KindNewView

	// KindCacheQuery asks a remote Troxy for its fast-read cache entry.
	KindCacheQuery

	// KindCacheReply answers a CacheQuery with a (possibly absent) entry.
	KindCacheReply

	// KindStateRequest asks a peer for the application snapshot at a stable
	// checkpoint (state transfer for replicas that fell behind).
	KindStateRequest

	// KindStateReply answers a StateRequest.
	KindStateReply

	// KindBatch is an ordered group of client requests certified and agreed
	// on as one unit (one trusted-counter certification and one
	// PREPARE/COMMIT round per batch). It travels embedded in Prepare and
	// ViewChange messages but is registered as a wire kind of its own so
	// tooling and fuzzers can round-trip it standalone.
	KindBatch

	// KindStateChunk carries one fixed-size piece of a chunked checkpoint
	// snapshot during state transfer. Each chunk is verified against the
	// per-chunk digest in the manifest the peers' CHECKPOINT votes agreed on.
	KindStateChunk

	// KindStatePrefix hands a state-transferring replica the serving peer's
	// in-flight prepared entries above the checkpoint, each carrying its
	// original leader counter certificate, so the joiner can resume ordering
	// mid-window instead of waiting for the next checkpoint.
	KindStatePrefix

	// KindNewViewRequest solicits the NEW-VIEW that installed the receiver's
	// current view. A replica that sees certified traffic from a view it
	// never installed (it slept through the view change) sends this to the
	// traffic's sender; the answer is the original KindNewView message, whose
	// certificates the requester verifies as usual.
	KindNewViewRequest

	// KindSpecReply carries a speculative (crash-tolerant tier) execution
	// result for a fast-commit request from a replica that accepted the
	// batch's PREPARE to the replica whose Troxy votes for the client. The
	// durable OrderedReply for the same request follows once the batch
	// commits in the Byzantine tier.
	KindSpecReply
)

var kindNames = map[Kind]string{
	KindChannelData:    "ChannelData",
	KindBFTRequest:     "BFTRequest",
	KindBFTReply:       "BFTReply",
	KindForward:        "Forward",
	KindPrepare:        "Prepare",
	KindCommit:         "Commit",
	KindOrderedReply:   "OrderedReply",
	KindCheckpoint:     "Checkpoint",
	KindViewChange:     "ViewChange",
	KindNewView:        "NewView",
	KindCacheQuery:     "CacheQuery",
	KindCacheReply:     "CacheReply",
	KindStateRequest:   "StateRequest",
	KindStateReply:     "StateReply",
	KindBatch:          "Batch",
	KindStateChunk:     "StateChunk",
	KindStatePrefix:    "StatePrefix",
	KindNewViewRequest: "NewViewRequest",
	KindSpecReply:      "SpecReply",
}

// String returns the kind's protocol name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is implemented by every wire message.
type Message interface {
	// Kind returns the message's wire discriminator.
	Kind() Kind

	// MarshalWire appends the canonical encoding of the message body.
	MarshalWire(w *wire.Writer)

	// UnmarshalWire decodes the message body. Implementations must tolerate
	// arbitrary untrusted input without panicking.
	UnmarshalWire(r *wire.Reader) error
}

// ErrUnknownKind reports an envelope with an unregistered kind.
var ErrUnknownKind = errors.New("msg: unknown message kind")

// Digest is a SHA-256 digest of a canonical message encoding.
type Digest [sha256.Size]byte

// DigestOf hashes b.
func DigestOf(b []byte) Digest { return sha256.Sum256(b) }

// Short returns a short hex prefix for logs.
func (d Digest) Short() string { return fmt.Sprintf("%x", d[:6]) }

func writeDigest(w *wire.Writer, d Digest) { w.Raw(d[:]) }

func readDigest(r *wire.Reader, d *Digest) {
	b := r.FixedBytes(len(d))
	if b != nil {
		copy(d[:], b)
	}
}

// Encode marshals m with its kind prefix.
func Encode(m Message) []byte {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(uint8(m.Kind()))
	m.MarshalWire(w)
	return w.CopyBytes()
}

// EncodeBody marshals m without the kind prefix. MACs and digests are
// computed over this form together with the kind passed separately.
func EncodeBody(m Message) []byte {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	m.MarshalWire(w)
	return w.CopyBytes()
}

// Decode parses a message encoded by Encode.
func Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, wire.ErrTruncated
	}
	m, err := New(Kind(b[0]))
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(b[1:])
	if err := m.UnmarshalWire(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// New returns a fresh zero message of the given kind.
func New(k Kind) (Message, error) {
	switch k {
	case KindChannelData:
		return &ChannelData{}, nil
	case KindBFTRequest:
		return &BFTRequest{}, nil
	case KindBFTReply:
		return &BFTReply{}, nil
	case KindForward:
		return &Forward{}, nil
	case KindPrepare:
		return &Prepare{}, nil
	case KindCommit:
		return &Commit{}, nil
	case KindOrderedReply:
		return &OrderedReply{}, nil
	case KindCheckpoint:
		return &Checkpoint{}, nil
	case KindViewChange:
		return &ViewChange{}, nil
	case KindNewView:
		return &NewView{}, nil
	case KindCacheQuery:
		return &CacheQuery{}, nil
	case KindCacheReply:
		return &CacheReply{}, nil
	case KindStateRequest:
		return &StateRequest{}, nil
	case KindStateReply:
		return &StateReply{}, nil
	case KindBatch:
		return &Batch{}, nil
	case KindStateChunk:
		return &StateChunk{}, nil
	case KindStatePrefix:
		return &StatePrefix{}, nil
	case KindNewViewRequest:
		return &NewViewRequest{}, nil
	case KindSpecReply:
		return &SpecReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
}

// Envelope is the transport unit exchanged between nodes. MAC, when present,
// is a point-to-point HMAC over (From, To, Kind, Body) computed by the
// untrusted replica part (or the BFT client library).
type Envelope struct {
	From NodeID
	To   NodeID
	Kind Kind
	Body []byte
	MAC  []byte
}

// EncodeEnvelope marshals e for the transport.
func EncodeEnvelope(e *Envelope) []byte {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U32(uint32(e.From))
	w.U32(uint32(e.To))
	w.U8(uint8(e.Kind))
	w.Bytes32(e.Body)
	w.Bytes32(e.MAC)
	return w.CopyBytes()
}

// AppendEnvelopeFrame encodes e, complete with its 4-byte transport frame
// header, directly into w. It is the zero-allocation sibling of
// EncodeEnvelope for the specialized transport: the pooled writer becomes a
// ring slot and its buffer a single iovec entry of the vectored write, so no
// intermediate copy is made. The error mirrors wire.WriteFrame's oversize
// check.
//
//troxy:hotpath
func AppendEnvelopeFrame(w *wire.Writer, e *Envelope) error {
	mark := w.BeginFrame()
	w.U32(uint32(e.From))
	w.U32(uint32(e.To))
	w.U8(uint8(e.Kind))
	w.Bytes32(e.Body)
	w.Bytes32(e.MAC)
	return w.EndFrame(mark)
}

// DecodeEnvelope parses a transport frame into an Envelope.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	r := wire.NewReader(b)
	e := &Envelope{
		From: NodeID(int32(r.U32())),
		To:   NodeID(int32(r.U32())),
		Kind: Kind(r.U8()),
		Body: r.Bytes32(),
		MAC:  r.Bytes32(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decode envelope: %w", err)
	}
	return e, nil
}

// WireSize returns the number of bytes e occupies on the wire (including the
// transport frame header). The simulator charges NIC bandwidth per this size.
func (e *Envelope) WireSize() int {
	return 4 /*frame hdr*/ + 4 + 4 + 1 + wire.SizeBytes32(e.Body) + wire.SizeBytes32(e.MAC)
}

// Open decodes the envelope's body into a typed message.
func (e *Envelope) Open() (Message, error) {
	m, err := New(e.Kind)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(e.Body)
	if err := m.UnmarshalWire(r); err != nil {
		return nil, fmt.Errorf("open %s envelope: %w", e.Kind, err)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("open %s envelope: %w", e.Kind, err)
	}
	return m, nil
}

// Seal encodes m into an envelope from→to with no MAC. Callers that need
// point-to-point authentication pass the envelope through authn.SealMAC.
func Seal(from, to NodeID, m Message) *Envelope {
	return &Envelope{From: from, To: to, Kind: m.Kind(), Body: EncodeBody(m)}
}
