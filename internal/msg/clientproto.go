package msg

import (
	"errors"

	"github.com/troxy-bft/troxy/internal/wire"
)

// This file defines the plaintext frames exchanged *inside* a legacy
// client's secure channel for the generic request/reply service protocol
// (used by the microbenchmark service and the KV store). HTTP clients use
// raw HTTP/1.1 bytes instead; see internal/httpfront.

// ChannelRequest is one client operation sent over a secure channel. Client
// is the caller's self-chosen identity; it survives reconnects so that the
// ordering protocol can deduplicate retransmitted writes after a failover.
type ChannelRequest struct {
	Client uint64
	Seq    uint64
	Flags  uint8
	Op     []byte
}

// ChannelReply answers a ChannelRequest over the same channel.
type ChannelReply struct {
	Seq    uint64
	Status uint8
	Result []byte
}

// Channel reply status codes.
const (
	// StatusOK reports successful execution.
	StatusOK uint8 = iota + 1

	// StatusError reports that the service rejected the operation.
	StatusError

	// StatusSpeculative reports a crash-tolerant-tier result: f+1 replicas
	// answered at PREPARE time for a fast-commit request. The durable tier
	// is still completing; the same Seq is later confirmed silently or
	// retracted with StatusRetracted.
	StatusSpeculative

	// StatusRetracted withdraws an earlier StatusSpeculative result for the
	// same Seq: the speculation lost a view change (or the durable quorum
	// disagreed with it). Result carries the attribution string; a durable
	// repair reply for the same Seq follows once the retried request
	// commits.
	StatusRetracted
)

// ErrBadChannelFrame reports a malformed plaintext frame.
var ErrBadChannelFrame = errors.New("msg: malformed channel frame")

// EncodeChannelRequest marshals the request frame.
func EncodeChannelRequest(m *ChannelRequest) []byte {
	w := wire.NewWriter(24 + len(m.Op))
	w.U64(m.Client)
	w.U64(m.Seq)
	w.U8(m.Flags)
	w.Bytes32(m.Op)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// DecodeChannelRequest parses a request frame.
func DecodeChannelRequest(b []byte) (*ChannelRequest, error) {
	r := wire.NewReader(b)
	m := &ChannelRequest{
		Client: r.U64(),
		Seq:    r.U64(),
		Flags:  r.U8(),
		Op:     r.Bytes32(),
	}
	if err := r.Finish(); err != nil {
		return nil, errors.Join(ErrBadChannelFrame, err)
	}
	return m, nil
}

// EncodeChannelReply marshals the reply frame.
func EncodeChannelReply(m *ChannelReply) []byte {
	w := wire.NewWriter(16 + len(m.Result))
	w.U64(m.Seq)
	w.U8(m.Status)
	w.Bytes32(m.Result)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// DecodeChannelReply parses a reply frame.
func DecodeChannelReply(b []byte) (*ChannelReply, error) {
	r := wire.NewReader(b)
	m := &ChannelReply{
		Seq:    r.U64(),
		Status: r.U8(),
		Result: r.Bytes32(),
	}
	if err := r.Finish(); err != nil {
		return nil, errors.Join(ErrBadChannelFrame, err)
	}
	return m, nil
}
