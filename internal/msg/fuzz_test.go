package msg

import (
	"bytes"
	"testing"
)

// Fuzz targets: decoders face bytes from Byzantine peers and must never
// panic; whatever decodes must re-encode to an equivalent message.

func FuzzDecode(f *testing.F) {
	f.Add(Encode(&Checkpoint{Seq: 1}))
	f.Add(Encode(&Prepare{View: 1, Seq: 2,
		Batch: Batch{Reqs: []OrderRequest{{Op: []byte("x")}}},
		Cert:  CounterCert{MAC: []byte("m")}}))
	f.Add(Encode(&Batch{Reqs: []OrderRequest{{Op: []byte("a")}, {Op: []byte("b")}}}))
	f.Add(Encode(&OrderedReply{Result: []byte("r"), InvalidKeys: []string{"k"}}))
	f.Add(Encode(&SpecReply{Executor: 1, View: 2, Seq: 3, Client: 7, ClientSeq: 9,
		Result: []byte("r"), Cert: CounterCert{MAC: []byte("m")}, TroxyTag: []byte("t")}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Round-trip stability: re-encoding a decoded message and decoding
		// again yields the same encoding.
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, Encode(m2)) {
			t.Fatal("encoding not a fixed point")
		}
	})
}

func FuzzBatch(f *testing.F) {
	f.Add(Encode(&Batch{}))
	f.Add(Encode(&Batch{Reqs: []OrderRequest{{Origin: 2, Client: 7, ClientSeq: 1, Op: []byte("GET k")}}}))
	f.Add(Encode(&Batch{Reqs: []OrderRequest{
		{Origin: 2, Client: 7, ClientSeq: 1, Op: []byte("GET k")},
		{Origin: 3, Client: 8, ClientSeq: 4, Flags: FlagReadOnly, Op: []byte("PUT k v")},
	}}))
	f.Add([]byte{byte(KindBatch), 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		b, ok := m.(*Batch)
		if !ok {
			return
		}
		// The digest must be a pure function of the re-encodable content.
		d1 := b.Digest()
		re := Encode(b)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		b2 := m2.(*Batch)
		if d1 != b2.Digest() {
			t.Fatal("batch digest not stable across re-encode")
		}
		if len(b.ReqDigests()) != b.Len() {
			t.Fatal("ReqDigests length mismatch")
		}
	})
}

func FuzzDecodeEnvelope(f *testing.F) {
	f.Add(EncodeEnvelope(Seal(1, 2, &Checkpoint{Seq: 9})))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		re := EncodeEnvelope(e)
		e2, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, EncodeEnvelope(e2)) {
			t.Fatal("envelope encoding not a fixed point")
		}
		_, _ = e.Open() // must not panic
	})
}

func FuzzDecodeChannelFrames(f *testing.F) {
	f.Add(EncodeChannelRequest(&ChannelRequest{Client: 1, Seq: 2, Op: []byte("GET k")}))
	f.Add(EncodeChannelReply(&ChannelReply{Seq: 2, Status: StatusOK, Result: []byte("v")}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeChannelRequest(data); err == nil {
			if !bytes.Equal(EncodeChannelRequest(req), data) {
				t.Fatal("request decode/encode mismatch")
			}
		}
		if rep, err := DecodeChannelReply(data); err == nil {
			if !bytes.Equal(EncodeChannelReply(rep), data) {
				t.Fatal("reply decode/encode mismatch")
			}
		}
	})
}
