package msg

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/troxy-bft/troxy/internal/wire"
)

func sampleRequest() OrderRequest {
	return OrderRequest{
		Origin:    2,
		Client:    77,
		ClientSeq: 1234,
		Flags:     FlagReadOnly,
		Op:        []byte("GET key-17"),
	}
}

func sampleCert() CounterCert {
	return CounterCert{Replica: 1, Counter: 3, Value: 42, MAC: []byte("macmacmac")}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m.Kind(), err)
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind mismatch: got %s, want %s", got.Kind(), m.Kind())
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	req := sampleRequest()
	cases := []Message{
		&ChannelData{ConnID: 9, Payload: []byte("ciphertext")},
		&BFTRequest{Client: 1, ClientSeq: 2, Flags: FlagDirect, Op: []byte("op")},
		&BFTReply{Executor: 2, Client: 1, ClientSeq: 2, ReqDigest: DigestOf([]byte("r")),
			Direct: true, Conflict: false, Result: []byte("res")},
		&Forward{Req: req},
		&Batch{Reqs: []OrderRequest{req, {Origin: 3, Client: 78, ClientSeq: 1, Op: []byte("PUT k v")}}},
		&Prepare{View: 1, Seq: 10, Batch: Batch{Reqs: []OrderRequest{req}}, Cert: sampleCert()},
		&Commit{View: 1, Seq: 10, BatchDigest: (&Batch{Reqs: []OrderRequest{req}}).Digest(), Cert: sampleCert()},
		&OrderedReply{Executor: 0, Seq: 10, Client: 77, ClientSeq: 1234,
			ReqDigest: req.Digest(), Result: []byte("result"),
			InvalidKeys: []string{"a", "b"}, TroxyTag: []byte("tag")},
		&Checkpoint{Seq: 128, StateDigest: DigestOf([]byte("state"))},
		&ViewChange{Replica: 1, NewView: 2, StableSeq: 128,
			StableDigest: DigestOf([]byte("s")),
			Prepared: []PreparedEntry{
				{View: 1, Seq: 129, Batch: Batch{Reqs: []OrderRequest{req}}, PrepareCert: sampleCert()},
			},
			Cert: sampleCert()},
		&NewView{Leader: 2, View: 2, ViewChanges: []ViewChange{
			{Replica: 1, NewView: 2, StableSeq: 128, Cert: sampleCert()},
			{Replica: 2, NewView: 2, StableSeq: 128, Cert: sampleCert()},
		}, Cert: sampleCert()},
		&CacheQuery{From: 0, QueryID: 5, ReqDigest: req.Digest(), Tag: []byte("t")},
		&CacheReply{From: 1, QueryID: 5, ReqDigest: req.Digest(), Found: true,
			ReplyDigest: DigestOf([]byte("reply")), Tag: []byte("t")},
		&StateRequest{Seq: 128, Chunks: []uint32{0, 3, 7}},
		&StateReply{Seq: 128, Manifest: []byte("manifest-bytes")},
		&StateChunk{Seq: 128, Index: 3, Data: []byte("chunk-bytes")},
		&StatePrefix{Seq: 128, LastExec: 131, Entries: []PreparedEntry{
			{View: 2, Seq: 129, Batch: Batch{Reqs: []OrderRequest{req}}, PrepareCert: sampleCert()},
		}},
		&StatePrefix{Seq: 128, LastExec: 131,
			Entries: []PreparedEntry{
				{View: 2, Seq: 129, Batch: Batch{Reqs: []OrderRequest{req}}, PrepareCert: sampleCert()},
			},
			NewView: &NewView{Leader: 2, View: 2, ViewChanges: []ViewChange{
				{Replica: 1, NewView: 2, StableSeq: 128, Cert: sampleCert()},
				{Replica: 2, NewView: 2, StableSeq: 128, Cert: sampleCert()},
			}, Cert: sampleCert()}},
		&NewViewRequest{View: 2},
		&SpecReply{Executor: 1, View: 2, Seq: 10,
			BatchDigest: (&Batch{Reqs: []OrderRequest{req}}).Digest(),
			Client:      77, ClientSeq: 1234, ReqDigest: req.Digest(),
			Result: []byte("spec-result"), Cert: sampleCert(), TroxyTag: []byte("tag")},
	}
	for _, m := range cases {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s round trip mismatch:\n got  %#v\n want %#v", m.Kind(), got, m)
		}
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{0xff, 1, 2, 3}); err == nil {
		t.Error("expected error for unknown kind")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	b := Encode(&Checkpoint{Seq: 1})
	b = append(b, 0xee)
	if _, err := Decode(b); err == nil {
		t.Error("expected error for trailing bytes")
	}
}

func TestOrderRequestDigestStable(t *testing.T) {
	a, b := sampleRequest(), sampleRequest()
	if a.Digest() != b.Digest() {
		t.Error("identical requests must have identical digests")
	}
	b.ClientSeq++
	if a.Digest() == b.Digest() {
		t.Error("different requests must have different digests")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := Seal(3, 0, &Checkpoint{Seq: 7, StateDigest: DigestOf([]byte("x"))})
	e.MAC = []byte("mac-bytes")
	b := EncodeEnvelope(e)
	if len(b) != e.WireSize()-4 {
		t.Errorf("WireSize = %d, want %d (+4 frame header)", e.WireSize(), len(b)+4)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("envelope mismatch: got %#v, want %#v", got, e)
	}
	m, err := got.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cp, ok := m.(*Checkpoint)
	if !ok || cp.Seq != 7 {
		t.Errorf("opened message = %#v", m)
	}
}

func TestEnvelopeOpenRejectsGarbageBody(t *testing.T) {
	e := &Envelope{From: 1, To: 2, Kind: KindPrepare, Body: []byte{1, 2}}
	if _, err := e.Open(); err == nil {
		t.Error("expected decode error for garbage Prepare body")
	}
}

func TestTagInputExcludesTag(t *testing.T) {
	r := &OrderedReply{Executor: 1, Result: []byte("r"), TroxyTag: []byte("A")}
	in1 := r.TagInput()
	r.TroxyTag = []byte("B")
	in2 := r.TagInput()
	if !bytes.Equal(in1, in2) {
		t.Error("TagInput must not cover the tag itself")
	}
	r.Result = []byte("other")
	if bytes.Equal(in1, r.TagInput()) {
		t.Error("TagInput must cover the result")
	}
}

func TestSpecReplyTagInputExcludesTag(t *testing.T) {
	r := &SpecReply{Executor: 1, View: 2, Seq: 3, Result: []byte("r"),
		Cert: sampleCert(), TroxyTag: []byte("A")}
	in1 := r.TagInput()
	r.TroxyTag = []byte("B")
	if !bytes.Equal(in1, r.TagInput()) {
		t.Error("TagInput must not cover the tag itself")
	}
	r.Result = []byte("other")
	if bytes.Equal(in1, r.TagInput()) {
		t.Error("TagInput must cover the result")
	}
	r.Result = []byte("r")
	r.Cert.Value++
	if bytes.Equal(in1, r.TagInput()) {
		t.Error("TagInput must cover the counter certificate")
	}
}

func TestFastCommitFlagShapesDigest(t *testing.T) {
	// The commit level is part of the canonical encoding: a fast-commit
	// request and its durable twin must never share a digest, or a replica
	// could count votes across tiers.
	a, b := sampleRequest(), sampleRequest()
	b.Flags |= FlagFastCommit
	if !b.FastCommit() || a.FastCommit() {
		t.Fatal("FastCommit() does not reflect the flag")
	}
	if a.Digest() == b.Digest() {
		t.Error("fast-commit flag must change the request digest")
	}
}

func TestChannelReplyStatusRoundTrip(t *testing.T) {
	for _, status := range []uint8{StatusOK, StatusError, StatusSpeculative, StatusRetracted} {
		rep := &ChannelReply{Seq: 4, Status: status, Result: []byte("r")}
		got, err := DecodeChannelReply(EncodeChannelReply(rep))
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Errorf("status %d mismatch: %#v vs %#v", status, got, rep)
		}
	}
}

func TestChannelFrames(t *testing.T) {
	req := &ChannelRequest{Seq: 9, Flags: FlagReadOnly, Op: []byte("GET a")}
	gotReq, err := DecodeChannelRequest(EncodeChannelRequest(req))
	if err != nil {
		t.Fatalf("DecodeChannelRequest: %v", err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Errorf("request mismatch: %#v vs %#v", gotReq, req)
	}

	rep := &ChannelReply{Seq: 9, Status: StatusOK, Result: []byte("v")}
	gotRep, err := DecodeChannelReply(EncodeChannelReply(rep))
	if err != nil {
		t.Fatalf("DecodeChannelReply: %v", err)
	}
	if !reflect.DeepEqual(gotRep, rep) {
		t.Errorf("reply mismatch: %#v vs %#v", gotRep, rep)
	}

	if _, err := DecodeChannelRequest([]byte{1}); err == nil {
		t.Error("expected error for short request frame")
	}
	if _, err := DecodeChannelReply([]byte{1}); err == nil {
		t.Error("expected error for short reply frame")
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)         // must not panic
		_, _ = DecodeEnvelope(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(from, to int32, payload, mac []byte) bool {
		e := &Envelope{From: NodeID(from), To: NodeID(to), Kind: KindChannelData,
			Body: payload, MAC: mac}
		got, err := DecodeEnvelope(EncodeEnvelope(e))
		if err != nil {
			return false
		}
		return got.From == e.From && got.To == e.To &&
			bytes.Equal(got.Body, e.Body) && bytes.Equal(got.MAC, e.MAC)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindPrepare.String() != "Prepare" {
		t.Errorf("KindPrepare.String() = %q", KindPrepare.String())
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}

func TestAppendEnvelopeFrameMatchesEncodeEnvelope(t *testing.T) {
	// The zero-copy transport encoder must emit exactly WriteFrame's bytes:
	// a 4-byte length header followed by the EncodeEnvelope encoding, so
	// receivers cannot tell which path framed an envelope.
	e := Seal(3, 0, &Checkpoint{Seq: 7, StateDigest: DigestOf([]byte("x"))})
	e.MAC = []byte("mac-bytes")
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	if err := AppendEnvelopeFrame(w, e); err != nil {
		t.Fatalf("AppendEnvelopeFrame: %v", err)
	}
	flat := EncodeEnvelope(e)
	if got := w.Bytes(); len(got) != len(flat)+4 || !bytes.Equal(got[4:], flat) {
		t.Errorf("frame body diverges from EncodeEnvelope (got %d bytes, want %d+4)",
			len(got), len(flat))
	}
	frame, err := wire.ReadFrame(bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("envelope mismatch: got %#v, want %#v", got, e)
	}
}

func TestAppendEnvelopeFrameZeroAlloc(t *testing.T) {
	// Hard allocation gate for the pooled frame path (the benchmark variant
	// in bench_test.go gates the same property under -bench): encoding into
	// a warm caller-held writer must not allocate at all.
	e := Seal(0, 1, &ChannelData{ConnID: 9, Payload: bytes.Repeat([]byte{0xab}, 1024)})
	w := wire.NewWriter(4096)
	if allocs := testing.AllocsPerRun(1000, func() {
		w.Reset()
		if err := AppendEnvelopeFrame(w, e); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("pooled frame encode allocates %.1f/op, want 0", allocs)
	}
}
