package securechannel

import (
	"bytes"
	"crypto/ed25519"
	"testing"
)

// fuzzIdentity derives a fixed server identity so every fuzz execution sees
// the same key material (the fuzzer must explore the parser, not the key
// space).
func fuzzIdentity(t testing.TB) ed25519.PrivateKey {
	t.Helper()
	seed := bytes.Repeat([]byte{0x42}, ed25519.SeedSize)
	return ed25519.NewKeyFromSeed(seed)
}

// zeroReader is a deterministic randomness source for handshakes under fuzz.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x5a
	}
	return len(p), nil
}

// FuzzServerHandshake throws arbitrary client hellos at the server side of
// the handshake: it must reject malformed frames with an error and never
// panic, and a rejected hello must not produce a session.
func FuzzServerHandshake(f *testing.F) {
	identity := fuzzIdentity(f)
	pub := identity.Public().(ed25519.PublicKey)

	// Seed with a genuine hello (must be accepted) and truncations of it.
	_, hello, err := NewClientHandshake(pub, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hello)
	f.Add(hello[:len(hello)/2])
	f.Add([]byte{})
	f.Add([]byte{frameClientHello})
	f.Add(bytes.Repeat([]byte{0xff}, HandshakeOverheadClient))

	f.Fuzz(func(t *testing.T, clientHello []byte) {
		sess, serverHello, err := ServerHandshake(identity, clientHello, zeroReader{})
		if err != nil {
			if sess != nil {
				t.Fatal("failed handshake returned a session")
			}
			return
		}
		if sess == nil || !sess.Established() {
			t.Fatal("accepted handshake without an established session")
		}
		if !IsHandshakeFrame(serverHello) {
			t.Fatal("server hello is not marked as a handshake frame")
		}
	})
}

// FuzzClientFinish throws arbitrary server hellos at a client handshake:
// only the genuine hello may complete, everything else must error without
// panicking. Completed handshakes must agree on the record keys.
func FuzzClientFinish(f *testing.F) {
	identity := fuzzIdentity(f)
	pub := identity.Public().(ed25519.PublicKey)

	hs, hello, err := NewClientHandshake(pub, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	srv, serverHello, err := ServerHandshake(identity, hello, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(serverHello)
	f.Add(serverHello[:len(serverHello)/2])
	f.Add([]byte{})
	f.Add([]byte{frameServerHello})
	f.Add(bytes.Repeat([]byte{0x00}, HandshakeOverheadServer))

	f.Fuzz(func(t *testing.T, sh []byte) {
		// A fresh client handshake per execution: Finish consumes state.
		cli, chello, err := NewClientHandshake(pub, zeroReader{})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := cli.Finish(sh)
		if err != nil {
			if sess != nil {
				t.Fatal("failed finish returned a session")
			}
			return
		}
		if sess == nil || !sess.Established() {
			t.Fatal("accepted finish without an established session")
		}
		// The accepted hello must actually interoperate: it can only be a
		// hello the server produced for this client hello (the deterministic
		// randSource makes the genuine one reproducible).
		srv2, sh2, err := ServerHandshake(identity, chello, zeroReader{})
		if err != nil || !bytes.Equal(sh2, sh) {
			t.Fatalf("client accepted a server hello the server would not produce (err=%v)", err)
		}
		record, err := sess.Seal([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv2.Open(record); err != nil {
			t.Fatalf("accepted session does not interoperate: %v", err)
		}
	})
	_ = srv
	_ = hs
}

// FuzzSessionOpen throws arbitrary records at an established session: only
// genuine sealed records may open, tampering must error, and Open must
// never panic regardless of framing.
func FuzzSessionOpen(f *testing.F) {
	identity := fuzzIdentity(f)
	pub := identity.Public().(ed25519.PublicKey)
	hs, hello, err := NewClientHandshake(pub, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	srv, serverHello, err := ServerHandshake(identity, hello, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	cli, err := hs.Finish(serverHello)
	if err != nil {
		f.Fatal(err)
	}

	genuine, err := cli.Seal([]byte("request payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{})
	f.Add([]byte{frameRecord, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xa5}, RecordSize(16)))

	f.Fuzz(func(t *testing.T, record []byte) {
		// Fresh sessions per execution: sequence numbers advance on use,
		// and the deterministic randomness makes them byte-reproducible.
		srvSess, shello, err := ServerHandshake(identity, hello, zeroReader{})
		if err != nil {
			t.Fatal(err)
		}
		cli2, _, err := NewClientHandshake(pub, zeroReader{})
		if err != nil {
			t.Fatal(err)
		}
		cliSess, err := cli2.Finish(shello)
		if err != nil {
			t.Fatal(err)
		}

		// Arbitrary record: must not panic, and anything a fresh session
		// accepts must be a frame the client's deterministic session would
		// genuinely seal from the recovered plaintext — i.e. no forgery.
		pt, err := srvSess.Open(record)
		if err != nil {
			return
		}
		want, err := cliSess.Seal(pt)
		if err != nil || !bytes.Equal(want, record) {
			t.Fatalf("server opened a record the client would not produce (err=%v)", err)
		}
	})
	_ = srv
}

// FuzzIsHandshakeFrame ensures the frame classifier is total: any byte
// string classifies without panicking, and classification agrees with the
// leading frame byte.
func FuzzIsHandshakeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameClientHello})
	f.Add([]byte{frameServerHello})
	f.Add([]byte{frameRecord, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		got := IsHandshakeFrame(b)
		want := len(b) > 0 && (b[0] == frameClientHello || b[0] == frameServerHello)
		if got != want {
			t.Fatalf("IsHandshakeFrame(%x) = %v, want %v", b, got, want)
		}
	})
}

// FuzzOpenFrames throws arbitrary records at OpenFrames: plain records,
// coalesced records, and garbage. It must never panic, never dispatch a
// frame from a record the deterministic peer session would not produce, and
// must reject structurally malformed coalesced plaintexts wholesale.
func FuzzOpenFrames(f *testing.F) {
	identity := fuzzIdentity(f)
	pub := identity.Public().(ed25519.PublicKey)
	hs, hello, err := NewClientHandshake(pub, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	_, serverHello, err := ServerHandshake(identity, hello, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	cli, err := hs.Finish(serverHello)
	if err != nil {
		f.Fatal(err)
	}

	plain, err := cli.Seal([]byte("single"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain)
	cli2, _, _ := NewClientHandshake(pub, zeroReader{})
	cliSess0, err := cli2.Finish(serverHello)
	if err != nil {
		f.Fatal(err)
	}
	multi, err := cliSess0.SealFrames([][]byte{[]byte("alpha"), {}, []byte("gamma")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(multi)
	f.Add([]byte{})
	f.Add([]byte{frameCoalesced})
	f.Add(bytes.Repeat([]byte{frameCoalesced}, RecordSize(64)))

	f.Fuzz(func(t *testing.T, record []byte) {
		// Fresh deterministic sessions per execution: sequence numbers
		// advance on use.
		srvSess, shello, err := ServerHandshake(identity, hello, zeroReader{})
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := NewClientHandshake(pub, zeroReader{})
		if err != nil {
			t.Fatal(err)
		}
		cliSess, err := c.Finish(shello)
		if err != nil {
			t.Fatal(err)
		}

		frames, err := srvSess.OpenFrames(record)
		if err != nil {
			if frames != nil {
				t.Fatal("failed OpenFrames returned frames")
			}
			return
		}
		if len(frames) == 0 {
			t.Fatal("OpenFrames accepted a record carrying no frames")
		}
		// Anything accepted must be exactly what the deterministic client
		// session seals from the recovered frames — i.e. no forgery, and the
		// sub-frame layout is canonical.
		var want []byte
		if record[0] == frameRecord {
			want, err = cliSess.Seal(frames[0])
		} else {
			want, err = cliSess.SealFrames(frames)
		}
		if err != nil || !bytes.Equal(want, record) {
			t.Fatalf("server opened a record the client would not produce (err=%v)", err)
		}
	})
}
