// Package securechannel implements the TLS-like secure channel between
// legacy clients and Troxy instances. It substitutes for the TaLoS library
// of the paper's prototype: the handshake and record protection logic run
// inside the enclave boundary, the session keys never leave it, and the
// untrusted replica part only ever sees opaque handshake frames and
// encrypted records.
//
// The protocol is a compact TLS 1.3 analogue:
//
//   - X25519 ephemeral key agreement,
//   - an Ed25519 server signature over the handshake transcript (the
//     server's identity key is provisioned into the enclave after
//     attestation, like the private key in Section V-A),
//   - HKDF-SHA256 key derivation into two directional AES-256-GCM keys,
//   - per-direction 64-bit record sequence numbers used as nonces.
//
// Replay protection falls out of the record layer: each endpoint's receive
// sequence number advances on every successfully opened record, so a
// replayed or reordered ciphertext fails authentication ("each endpoint
// will never accept the same chunk of encrypted data twice", Section III-D).
package securechannel

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hkdf"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame type bytes on the wire.
const (
	frameClientHello byte = iota + 1
	frameServerHello
	frameRecord
	// frameCoalesced is a record whose plaintext carries several
	// length-prefixed sub-frames sealed under one AES-GCM operation — the
	// record-layer analogue of the transport's vectored writes: crypto cost
	// amortizes with the flush size instead of being paid per message.
	frameCoalesced
)

// Overhead is the per-record ciphertext expansion (type byte + GCM tag).
const Overhead = 1 + 16

// HandshakeOverheadClient and HandshakeOverheadServer are the wire sizes of
// the two handshake frames; the simulator uses them for byte accounting.
const (
	HandshakeOverheadClient = 1 + 32 + 16
	HandshakeOverheadServer = 1 + 32 + 16 + ed25519.SignatureSize
)

// Errors.
var (
	// ErrHandshake reports a malformed or unauthentic handshake frame.
	ErrHandshake = errors.New("securechannel: handshake failed")

	// ErrRecord reports a record that failed authentication (tampering,
	// replay, reordering, or truncation).
	ErrRecord = errors.New("securechannel: record rejected")

	// ErrNotEstablished reports record I/O before the handshake completed.
	ErrNotEstablished = errors.New("securechannel: not established")
)

// MaxCoalescedPlaintext bounds the total plaintext of one coalesced record
// (sub-frame headers included). It is deliberately larger than the stream
// adapter's per-chunk limit: a flushed ring of small frames should fit one
// record, which is the whole point of coalescing.
const MaxCoalescedPlaintext = 64 * 1024

// Session is an established secure channel endpoint. The two directions are
// independent: Seal/SealFrames touch only the send state and
// Open/OpenFrames only the receive state, so one writer and one reader may
// run concurrently — but concurrent writers (or concurrent readers) must
// serialize, as the Troxy state machine and the net.Conn adapter both do.
type Session struct {
	sendAEAD cipher.AEAD
	recvAEAD cipher.AEAD
	sendSeq  uint64
	recvSeq  uint64
}

// Established reports whether the handshake completed.
func (s *Session) Established() bool { return s != nil && s.sendAEAD != nil }

// Seal encrypts one plaintext frame into a record.
func (s *Session) Seal(plaintext []byte) ([]byte, error) {
	if !s.Established() {
		return nil, ErrNotEstablished
	}
	var nonce [12]byte
	putSeq(nonce[:], s.sendSeq)
	s.sendSeq++
	out := make([]byte, 1, 1+len(plaintext)+16)
	out[0] = frameRecord
	return s.sendAEAD.Seal(out, nonce[:], plaintext, out[:1]), nil
}

// SealFrames encrypts a whole flush of frames into one coalesced record:
// one nonce, one AES-GCM pass, one tag covering every sub-frame. The frames
// are laid out length-prefixed inside the plaintext so the receiver
// recovers the original message boundaries. An empty flush is a caller bug
// and errors rather than emitting a record that burns a sequence number for
// nothing; a flush whose total exceeds MaxCoalescedPlaintext must be split
// by the caller (the Conn flusher does).
//
//troxy:hotpath
func (s *Session) SealFrames(frames [][]byte) ([]byte, error) {
	if !s.Established() {
		return nil, ErrNotEstablished
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("%w: empty flush", ErrRecord)
	}
	total := 0
	for _, f := range frames {
		total += 4 + len(f)
	}
	if total > MaxCoalescedPlaintext {
		return nil, fmt.Errorf("%w: coalesced flush of %d bytes", ErrRecord, total)
	}
	pt := make([]byte, 0, total) //lint:allow allocfree one coalesced plaintext buffer per flush, amortized over every frame in it
	for _, f := range frames {
		pt = binary.LittleEndian.AppendUint32(pt, uint32(len(f)))
		pt = append(pt, f...) //lint:allow allocfree appends into the pre-sized plaintext buffer (cap == total), never grows
	}
	var nonce [12]byte
	putSeq(nonce[:], s.sendSeq)
	s.sendSeq++
	out := make([]byte, 1, 1+total+16) //lint:allow allocfree one output record per flush, sized exactly for ciphertext plus tag
	out[0] = frameCoalesced
	return s.sendAEAD.Seal(out, nonce[:], pt, out[:1]), nil //lint:allow allocfree Seal writes into the pre-sized dst; stdlib GCM does not allocate when dst capacity suffices
}

// Open authenticates and decrypts one record. A record can be opened exactly
// once and only in order; anything else fails.
func (s *Session) Open(record []byte) ([]byte, error) {
	if !s.Established() {
		return nil, ErrNotEstablished
	}
	if len(record) < Overhead || record[0] != frameRecord {
		return nil, ErrRecord
	}
	var nonce [12]byte
	putSeq(nonce[:], s.recvSeq)
	pt, err := s.recvAEAD.Open(nil, nonce[:], record[1:], record[:1])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecord, err)
	}
	s.recvSeq++
	return pt, nil
}

// OpenFrames authenticates and decrypts one record and returns the frames
// it carries: a plain record yields its plaintext as a single frame, a
// coalesced record yields each sub-frame in order. The entire record
// authenticates in one AEAD operation *before* any frame is handed out, so
// ingress verification cost amortizes over the flush exactly as sealing
// did — no sub-frame from a tampered record is ever dispatched.
//
// The record type byte rides in the AEAD's additional data, so a plain
// record cannot be replayed as a coalesced one or vice versa. A structurally
// malformed coalesced record that nevertheless authenticates means the peer
// holds the session keys and is broken or malicious; the record is rejected
// wholesale (and the sequence number has advanced, poisoning the channel,
// which is the correct response).
func (s *Session) OpenFrames(record []byte) ([][]byte, error) {
	if !s.Established() {
		return nil, ErrNotEstablished
	}
	if len(record) < Overhead {
		return nil, ErrRecord
	}
	typ := record[0]
	if typ != frameRecord && typ != frameCoalesced {
		return nil, ErrRecord
	}
	var nonce [12]byte
	putSeq(nonce[:], s.recvSeq)
	pt, err := s.recvAEAD.Open(nil, nonce[:], record[1:], record[:1])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecord, err)
	}
	s.recvSeq++
	if typ == frameRecord {
		return [][]byte{pt}, nil
	}
	var frames [][]byte
	for off := 0; off < len(pt); {
		if len(pt)-off < 4 {
			return nil, fmt.Errorf("%w: truncated sub-frame header", ErrRecord)
		}
		n := int(binary.LittleEndian.Uint32(pt[off:]))
		off += 4
		if n > len(pt)-off {
			return nil, fmt.Errorf("%w: truncated sub-frame", ErrRecord)
		}
		frames = append(frames, pt[off:off+n:off+n])
		off += n
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("%w: empty coalesced record", ErrRecord)
	}
	return frames, nil
}

func putSeq(nonce []byte, seq uint64) {
	// The low 8 bytes of the 12-byte nonce carry the sequence number.
	for i := 0; i < 8; i++ {
		nonce[4+i] = byte(seq >> (8 * i))
	}
}

// ClientHandshake is the in-flight client side of a handshake.
type ClientHandshake struct {
	serverPub ed25519.PublicKey
	priv      *ecdh.PrivateKey
	hello     []byte
}

// NewClientHandshake starts a handshake towards a server whose identity
// public key is serverPub. It returns the handshake state and the
// ClientHello frame to transmit. randSource supplies ephemeral key material
// (crypto/rand.Reader in production, a seeded reader in the simulator).
func NewClientHandshake(serverPub ed25519.PublicKey, randSource io.Reader) (*ClientHandshake, []byte, error) {
	priv, err := ecdh.X25519().GenerateKey(randSource)
	if err != nil {
		return nil, nil, fmt.Errorf("securechannel: ephemeral key: %w", err)
	}
	random := make([]byte, 16)
	if _, err := io.ReadFull(randSource, random); err != nil {
		return nil, nil, fmt.Errorf("securechannel: client random: %w", err)
	}
	hello := make([]byte, 0, HandshakeOverheadClient)
	hello = append(hello, frameClientHello)
	hello = append(hello, priv.PublicKey().Bytes()...)
	hello = append(hello, random...)
	return &ClientHandshake{serverPub: serverPub, priv: priv, hello: hello}, hello, nil
}

// Finish consumes the ServerHello frame and returns the established session.
func (h *ClientHandshake) Finish(serverHello []byte) (*Session, error) {
	if len(serverHello) != HandshakeOverheadServer || serverHello[0] != frameServerHello {
		return nil, fmt.Errorf("%w: bad server hello", ErrHandshake)
	}
	serverECDH := serverHello[1:33]
	sig := serverHello[49:]

	transcript := transcriptHash(h.hello, serverHello[:49])
	if !ed25519.Verify(h.serverPub, transcript, sig) {
		return nil, fmt.Errorf("%w: bad server signature", ErrHandshake)
	}
	peer, err := ecdh.X25519().NewPublicKey(serverECDH)
	if err != nil {
		return nil, fmt.Errorf("%w: bad server key share: %v", ErrHandshake, err)
	}
	shared, err := h.priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("%w: ECDH: %v", ErrHandshake, err)
	}
	c2s, s2c, err := deriveKeys(shared, transcript)
	if err != nil {
		return nil, err
	}
	return newSession(c2s, s2c)
}

// ServerHandshake processes a ClientHello and produces the ServerHello plus
// the established session in one step (the server has no further flights).
// identity is the server's Ed25519 private key, held inside the enclave.
func ServerHandshake(identity ed25519.PrivateKey, clientHello []byte, randSource io.Reader) (*Session, []byte, error) {
	if len(clientHello) != HandshakeOverheadClient || clientHello[0] != frameClientHello {
		return nil, nil, fmt.Errorf("%w: bad client hello", ErrHandshake)
	}
	clientECDH := clientHello[1:33]

	priv, err := ecdh.X25519().GenerateKey(randSource)
	if err != nil {
		return nil, nil, fmt.Errorf("securechannel: ephemeral key: %w", err)
	}
	random := make([]byte, 16)
	if _, err := io.ReadFull(randSource, random); err != nil {
		return nil, nil, fmt.Errorf("securechannel: server random: %w", err)
	}

	core := make([]byte, 0, 49)
	core = append(core, frameServerHello)
	core = append(core, priv.PublicKey().Bytes()...)
	core = append(core, random...)

	transcript := transcriptHash(clientHello, core)
	sig := ed25519.Sign(identity, transcript)
	serverHello := append(core, sig...)

	peer, err := ecdh.X25519().NewPublicKey(clientECDH)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: bad client key share: %v", ErrHandshake, err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: ECDH: %v", ErrHandshake, err)
	}
	c2s, s2c, err := deriveKeys(shared, transcript)
	if err != nil {
		return nil, nil, err
	}
	sess, err := newServerSession(c2s, s2c)
	if err != nil {
		return nil, nil, err
	}
	return sess, serverHello, nil
}

func transcriptHash(clientHello, serverCore []byte) []byte {
	h := sha256.New()
	h.Write([]byte("securechannel-transcript"))
	h.Write(clientHello)
	h.Write(serverCore)
	return h.Sum(nil)
}

func deriveKeys(shared, transcript []byte) (c2s, s2c []byte, err error) {
	prk, err := hkdf.Extract(sha256.New, shared, transcript)
	if err != nil {
		return nil, nil, fmt.Errorf("securechannel: hkdf extract: %w", err)
	}
	c2s, err = hkdf.Expand(sha256.New, prk, "client-to-server", 32)
	if err != nil {
		return nil, nil, fmt.Errorf("securechannel: hkdf expand: %w", err)
	}
	s2c, err = hkdf.Expand(sha256.New, prk, "server-to-client", 32)
	if err != nil {
		return nil, nil, fmt.Errorf("securechannel: hkdf expand: %w", err)
	}
	return c2s, s2c, nil
}

func aead(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("securechannel: cipher: %w", err)
	}
	g, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("securechannel: GCM: %w", err)
	}
	return g, nil
}

func newSession(sendKey, recvKey []byte) (*Session, error) {
	send, err := aead(sendKey)
	if err != nil {
		return nil, err
	}
	recv, err := aead(recvKey)
	if err != nil {
		return nil, err
	}
	return &Session{sendAEAD: send, recvAEAD: recv}, nil
}

func newServerSession(c2s, s2c []byte) (*Session, error) {
	return newSession(s2c, c2s)
}

// IsHandshakeFrame reports whether b looks like a handshake frame (as
// opposed to a record); the Troxy uses it to route incoming channel bytes.
func IsHandshakeFrame(b []byte) bool {
	return len(b) > 0 && (b[0] == frameClientHello || b[0] == frameServerHello)
}

// RecordSize returns the wire size of a record carrying n plaintext bytes,
// including the transport length prefix.
func RecordSize(n int) int { return 4 + n + Overhead }
