package securechannel

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/troxy-bft/troxy/internal/testutil"
)

func testIdentity(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func handshake(t *testing.T) (client, server *Session) {
	t.Helper()
	pub, priv := testIdentity(t)
	hs, hello, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatalf("NewClientHandshake: %v", err)
	}
	if len(hello) != HandshakeOverheadClient {
		t.Fatalf("client hello size = %d, want %d", len(hello), HandshakeOverheadClient)
	}
	server, serverHello, err := ServerHandshake(priv, hello, rand.Reader)
	if err != nil {
		t.Fatalf("ServerHandshake: %v", err)
	}
	if len(serverHello) != HandshakeOverheadServer {
		t.Fatalf("server hello size = %d, want %d", len(serverHello), HandshakeOverheadServer)
	}
	client, err = hs.Finish(serverHello)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return client, server
}

func TestRoundTripBothDirections(t *testing.T) {
	client, server := handshake(t)
	for i := 0; i < 5; i++ {
		rec, err := client.Seal([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err := server.Open(rec)
		if err != nil {
			t.Fatalf("server open %d: %v", i, err)
		}
		if string(pt) != "ping" {
			t.Errorf("plaintext = %q", pt)
		}
		rec, err = server.Seal([]byte("pong"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err = client.Open(rec)
		if err != nil {
			t.Fatalf("client open %d: %v", i, err)
		}
		if string(pt) != "pong" {
			t.Errorf("plaintext = %q", pt)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	client, server := handshake(t)
	rec, err := client.Seal([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("replayed record error = %v", err)
	}
}

func TestReorderRejected(t *testing.T) {
	client, server := handshake(t)
	r1, _ := client.Seal([]byte("1"))
	r2, _ := client.Seal([]byte("2"))
	if _, err := server.Open(r2); !errors.Is(err, ErrRecord) {
		t.Errorf("out-of-order record error = %v", err)
	}
	// After the failure, in-order delivery still works.
	if _, err := server.Open(r1); err != nil {
		t.Errorf("in-order record after failure: %v", err)
	}
}

func TestTamperRejected(t *testing.T) {
	client, server := handshake(t)
	rec, _ := client.Seal([]byte("data"))
	rec[len(rec)-1] ^= 1
	if _, err := server.Open(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("tampered record error = %v", err)
	}
}

func TestDirectionKeysDiffer(t *testing.T) {
	client, server := handshake(t)
	rec, _ := client.Seal([]byte("c2s"))
	// The client must not accept its own direction's traffic (reflection).
	if _, err := client.Open(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("reflected record error = %v", err)
	}
	if _, err := server.Open(rec); err != nil {
		t.Errorf("legitimate receive failed: %v", err)
	}
}

func TestServerSignatureVerified(t *testing.T) {
	pub, _ := testIdentity(t)
	_, rogusPriv := testIdentity(t) // attacker key

	hs, hello, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// A malicious replica (without the enclave identity key) answers.
	_, serverHello, err := ServerHandshake(rogusPriv, hello, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Finish(serverHello); !errors.Is(err, ErrHandshake) {
		t.Errorf("rogue server hello error = %v", err)
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	_, priv := testIdentity(t)
	if _, _, err := ServerHandshake(priv, []byte("junk"), rand.Reader); !errors.Is(err, ErrHandshake) {
		t.Errorf("garbage client hello error = %v", err)
	}
	pub, _ := testIdentity(t)
	hs, _, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Finish([]byte("junk")); !errors.Is(err, ErrHandshake) {
		t.Errorf("garbage server hello error = %v", err)
	}
}

func TestNotEstablished(t *testing.T) {
	var s *Session
	if _, err := s.Seal([]byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Errorf("nil session Seal error = %v", err)
	}
	empty := &Session{}
	if _, err := empty.Open([]byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Errorf("empty session Open error = %v", err)
	}
}

func TestIsHandshakeFrame(t *testing.T) {
	client, _ := handshake(t)
	pub, _ := testIdentity(t)
	_, hello, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !IsHandshakeFrame(hello) {
		t.Error("client hello not recognized as handshake frame")
	}
	rec, _ := client.Seal([]byte("x"))
	if IsHandshakeFrame(rec) {
		t.Error("record misclassified as handshake frame")
	}
	if IsHandshakeFrame(nil) {
		t.Error("empty frame misclassified")
	}
}

func TestQuickSealOpen(t *testing.T) {
	client, server := handshake(t)
	f := func(data []byte) bool {
		rec, err := client.Seal(data)
		if err != nil {
			return false
		}
		if len(rec) != len(data)+Overhead {
			return false
		}
		pt, err := server.Open(rec)
		return err == nil && bytes.Equal(pt, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConnAdapter(t *testing.T) {
	testutil.CheckGoroutines(t)
	pub, priv := testIdentity(t)
	clientRaw, serverRaw := net.Pipe()
	t.Cleanup(func() {
		clientRaw.Close()
		serverRaw.Close()
	})

	type res struct {
		conn *Conn
		err  error
	}
	serverCh := make(chan res, 1)
	go func() {
		c, err := ServerConn(serverRaw, priv)
		serverCh <- res{c, err}
	}()
	client, err := ClientConn(clientRaw, pub)
	if err != nil {
		t.Fatalf("ClientConn: %v", err)
	}
	sr := <-serverCh
	if sr.err != nil {
		t.Fatalf("ServerConn: %v", sr.err)
	}
	server := sr.conn

	// Big payload exercises record chunking.
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	go func() {
		if _, err := client.Write(payload); err != nil {
			t.Errorf("client write: %v", err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted through Conn")
	}

	// And the reverse direction.
	go func() {
		if _, err := server.Write([]byte("reply")); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(buf) != "reply" {
		t.Errorf("reply = %q", buf)
	}
}

func TestRecordSize(t *testing.T) {
	client, _ := handshake(t)
	rec, err := client.Seal(make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if RecordSize(100) != 4+len(rec) {
		t.Errorf("RecordSize(100) = %d, want %d", RecordSize(100), 4+len(rec))
	}
}

// sealRawCoalesced bypasses SealFrames' structural checks and seals an
// arbitrary plaintext as a coalesced record. It models a peer that holds the
// session keys but violates the sub-frame layout — the only way a malformed
// coalesced record can ever authenticate.
func sealRawCoalesced(t *testing.T, s *Session, pt []byte) []byte {
	t.Helper()
	var nonce [12]byte
	putSeq(nonce[:], s.sendSeq)
	s.sendSeq++
	out := make([]byte, 1, 1+len(pt)+16)
	out[0] = frameCoalesced
	return s.sendAEAD.Seal(out, nonce[:], pt, out[:1])
}

func TestCoalescedRoundTripBothDirections(t *testing.T) {
	client, server := handshake(t)
	frames := [][]byte{[]byte("one"), {}, []byte("three"), bytes.Repeat([]byte{9}, 4096)}

	rec, err := client.SealFrames(frames)
	if err != nil {
		t.Fatalf("SealFrames: %v", err)
	}
	got, err := server.OpenFrames(rec)
	if err != nil {
		t.Fatalf("OpenFrames: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d mismatch: %d bytes vs %d", i, len(got[i]), len(frames[i]))
		}
	}

	rec, err = server.SealFrames([][]byte{[]byte("reply-a"), []byte("reply-b")})
	if err != nil {
		t.Fatalf("server SealFrames: %v", err)
	}
	got, err = client.OpenFrames(rec)
	if err != nil {
		t.Fatalf("client OpenFrames: %v", err)
	}
	if len(got) != 2 || string(got[0]) != "reply-a" || string(got[1]) != "reply-b" {
		t.Errorf("server→client frames = %q", got)
	}
}

func TestOpenFramesAcceptsPlainRecord(t *testing.T) {
	// A mixed stream of plain and coalesced records must open in sequence
	// through the one OpenFrames entry point: receivers should not need to
	// know which egress path the peer used.
	client, server := handshake(t)
	r1, _ := client.Seal([]byte("plain"))
	r2, err := client.SealFrames([][]byte{[]byte("co-1"), []byte("co-2")})
	if err != nil {
		t.Fatal(err)
	}
	r3, _ := client.Seal([]byte("plain-again"))

	got, err := server.OpenFrames(r1)
	if err != nil || len(got) != 1 || string(got[0]) != "plain" {
		t.Fatalf("plain via OpenFrames = %q, %v", got, err)
	}
	got, err = server.OpenFrames(r2)
	if err != nil || len(got) != 2 || string(got[1]) != "co-2" {
		t.Fatalf("coalesced after plain = %q, %v", got, err)
	}
	if _, err := server.OpenFrames(r3); err != nil {
		t.Fatalf("plain after coalesced: %v", err)
	}
}

func TestSealFramesEmptyFlushRejected(t *testing.T) {
	client, _ := handshake(t)
	if _, err := client.SealFrames(nil); !errors.Is(err, ErrRecord) {
		t.Errorf("SealFrames(nil) error = %v", err)
	}
	if _, err := client.SealFrames([][]byte{}); !errors.Is(err, ErrRecord) {
		t.Errorf("SealFrames(empty) error = %v", err)
	}
	// The rejected flushes must not have burned a sequence number.
	if _, err := client.Seal([]byte("still in sync")); err != nil {
		t.Fatal(err)
	}
	if client.sendSeq != 1 {
		t.Errorf("sendSeq after rejected flushes = %d, want 1", client.sendSeq)
	}
}

func TestSealFramesMaxSizeFlush(t *testing.T) {
	client, server := handshake(t)
	// One frame whose header+payload exactly fills MaxCoalescedPlaintext.
	exact := make([]byte, MaxCoalescedPlaintext-4)
	rec, err := client.SealFrames([][]byte{exact})
	if err != nil {
		t.Fatalf("max-size flush rejected: %v", err)
	}
	got, err := server.OpenFrames(rec)
	if err != nil || len(got) != 1 || len(got[0]) != len(exact) {
		t.Fatalf("max-size round trip: %d frames, %v", len(got), err)
	}
	// One byte over must be rejected before any sealing happens.
	over := make([]byte, MaxCoalescedPlaintext-4+1)
	if _, err := client.SealFrames([][]byte{over}); !errors.Is(err, ErrRecord) {
		t.Errorf("oversized flush error = %v", err)
	}
	if client.sendSeq != 1 {
		t.Errorf("sendSeq after oversized flush = %d, want 1", client.sendSeq)
	}
}

func TestOpenFramesTruncatedSubFrame(t *testing.T) {
	cases := []struct {
		name string
		pt   []byte
	}{
		{"empty plaintext", nil},
		{"truncated header", []byte{1, 0, 0}},
		{"length beyond payload", []byte{5, 0, 0, 0, 'a', 'b'}},
		{"good frame then truncated trailer", append([]byte{1, 0, 0, 0, 'x'}, 9, 0, 0, 0, 'y')},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			client, server := handshake(t)
			rec := sealRawCoalesced(t, client, tc.pt)
			if _, err := server.OpenFrames(rec); !errors.Is(err, ErrRecord) {
				t.Errorf("malformed coalesced plaintext %q error = %v", tc.pt, err)
			}
		})
	}
}

func TestOpenFramesCrossTypeRejected(t *testing.T) {
	// The record type byte is AEAD additional data: a plain record cannot be
	// reinterpreted as coalesced (its plaintext bytes would be parsed as
	// sub-frame headers) nor a coalesced one as plain.
	client, server := handshake(t)
	rec, _ := client.Seal([]byte("plain"))
	rec[0] = frameCoalesced
	if _, err := server.OpenFrames(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("plain-as-coalesced error = %v", err)
	}

	client2, server2 := handshake(t)
	rec2, err := client2.SealFrames([][]byte{[]byte("co")})
	if err != nil {
		t.Fatal(err)
	}
	rec2[0] = frameRecord
	if _, err := server2.Open(rec2); !errors.Is(err, ErrRecord) {
		t.Errorf("coalesced-as-plain error = %v", err)
	}
}

func TestCoalescedReplayAndTamperRejected(t *testing.T) {
	client, server := handshake(t)
	rec, err := client.SealFrames([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), rec...)
	tampered[len(tampered)-1] ^= 1
	if _, err := server.OpenFrames(tampered); !errors.Is(err, ErrRecord) {
		t.Errorf("tampered coalesced record error = %v", err)
	}
	// The failed open must not advance recvSeq: the genuine record still opens.
	if _, err := server.OpenFrames(rec); err != nil {
		t.Fatalf("genuine record after tamper rejection: %v", err)
	}
	if _, err := server.OpenFrames(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("replayed coalesced record error = %v", err)
	}
}

func TestOpenFramesNotEstablished(t *testing.T) {
	var s *Session
	if _, err := s.OpenFrames([]byte{frameCoalesced}); !errors.Is(err, ErrNotEstablished) {
		t.Errorf("nil session error = %v", err)
	}
	if _, err := (&Session{}).SealFrames([][]byte{[]byte("x")}); !errors.Is(err, ErrNotEstablished) {
		t.Errorf("zero session error = %v", err)
	}
}

// dribbleConn delivers reads a few bytes at a time, so a record's length
// prefix and body arrive split across many TCP reads.
type dribbleConn struct {
	net.Conn
	chunk int
}

func (d *dribbleConn) Read(p []byte) (int, error) {
	if len(p) > d.chunk {
		p = p[:d.chunk]
	}
	return d.Conn.Read(p)
}

func connPair(t *testing.T, wrapServer func(net.Conn) net.Conn) (client, server *Conn) {
	t.Helper()
	pub, priv := testIdentity(t)
	clientRaw, serverRaw := net.Pipe()
	t.Cleanup(func() {
		clientRaw.Close()
		serverRaw.Close()
	})
	raw := net.Conn(serverRaw)
	if wrapServer != nil {
		raw = wrapServer(raw)
	}
	type res struct {
		conn *Conn
		err  error
	}
	serverCh := make(chan res, 1)
	go func() {
		c, err := ServerConn(raw, priv)
		serverCh <- res{c, err}
	}()
	cli, err := ClientConn(clientRaw, pub)
	if err != nil {
		t.Fatalf("ClientConn: %v", err)
	}
	sr := <-serverCh
	if sr.err != nil {
		t.Fatalf("ServerConn: %v", sr.err)
	}
	return cli, sr.conn
}

func TestConnCoalescedRecordSplitAcrossReads(t *testing.T) {
	// A coalesced record split across many small TCP reads must reassemble:
	// the frame reader buffers until the whole record arrived, then the
	// record authenticates as a unit.
	testutil.CheckGoroutines(t)
	client, server := connPair(t, func(raw net.Conn) net.Conn {
		return &dribbleConn{Conn: raw, chunk: 3}
	})

	payload := bytes.Repeat([]byte("split me "), 128)
	go func() {
		if _, err := client.Write(payload); err != nil {
			t.Errorf("client write: %v", err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted across dribbled reads")
	}
}

func TestConnConcurrentWritersGroupCommit(t *testing.T) {
	// Concurrent writers ride each other's flushes; every byte must arrive
	// exactly once and each writer's payload must stay contiguous enough to
	// be recovered (we use fixed-size cells so reassembly is order-free).
	testutil.CheckGoroutines(t)
	client, server := connPair(t, nil)

	const writers, cell = 8, 512
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{id}, cell)
			if _, err := client.Write(buf); err != nil {
				t.Errorf("writer %d: %v", id, err)
			}
		}(byte(i + 1))
	}

	got := make([]byte, writers*cell)
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	wg.Wait()
	counts := make(map[byte]int)
	for _, b := range got {
		counts[b]++
	}
	for i := 1; i <= writers; i++ {
		if counts[byte(i)] != cell {
			t.Errorf("writer %d delivered %d bytes, want %d", i, counts[byte(i)], cell)
		}
	}
}

func TestConnWriteAfterPeerClose(t *testing.T) {
	// A failed flush poisons the conn: the sticky error surfaces on every
	// later Write instead of silently desynchronizing record sequence state.
	client, server := connPair(t, nil)
	server.Close()
	client.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := client.Write([]byte("doomed")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
	if _, err := client.Write([]byte("still doomed")); err == nil {
		t.Fatal("sticky flush error not surfaced")
	}
}
