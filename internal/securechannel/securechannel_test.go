package securechannel

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"

	"github.com/troxy-bft/troxy/internal/testutil"
)

func testIdentity(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func handshake(t *testing.T) (client, server *Session) {
	t.Helper()
	pub, priv := testIdentity(t)
	hs, hello, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatalf("NewClientHandshake: %v", err)
	}
	if len(hello) != HandshakeOverheadClient {
		t.Fatalf("client hello size = %d, want %d", len(hello), HandshakeOverheadClient)
	}
	server, serverHello, err := ServerHandshake(priv, hello, rand.Reader)
	if err != nil {
		t.Fatalf("ServerHandshake: %v", err)
	}
	if len(serverHello) != HandshakeOverheadServer {
		t.Fatalf("server hello size = %d, want %d", len(serverHello), HandshakeOverheadServer)
	}
	client, err = hs.Finish(serverHello)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return client, server
}

func TestRoundTripBothDirections(t *testing.T) {
	client, server := handshake(t)
	for i := 0; i < 5; i++ {
		rec, err := client.Seal([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err := server.Open(rec)
		if err != nil {
			t.Fatalf("server open %d: %v", i, err)
		}
		if string(pt) != "ping" {
			t.Errorf("plaintext = %q", pt)
		}
		rec, err = server.Seal([]byte("pong"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err = client.Open(rec)
		if err != nil {
			t.Fatalf("client open %d: %v", i, err)
		}
		if string(pt) != "pong" {
			t.Errorf("plaintext = %q", pt)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	client, server := handshake(t)
	rec, err := client.Seal([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("replayed record error = %v", err)
	}
}

func TestReorderRejected(t *testing.T) {
	client, server := handshake(t)
	r1, _ := client.Seal([]byte("1"))
	r2, _ := client.Seal([]byte("2"))
	if _, err := server.Open(r2); !errors.Is(err, ErrRecord) {
		t.Errorf("out-of-order record error = %v", err)
	}
	// After the failure, in-order delivery still works.
	if _, err := server.Open(r1); err != nil {
		t.Errorf("in-order record after failure: %v", err)
	}
}

func TestTamperRejected(t *testing.T) {
	client, server := handshake(t)
	rec, _ := client.Seal([]byte("data"))
	rec[len(rec)-1] ^= 1
	if _, err := server.Open(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("tampered record error = %v", err)
	}
}

func TestDirectionKeysDiffer(t *testing.T) {
	client, server := handshake(t)
	rec, _ := client.Seal([]byte("c2s"))
	// The client must not accept its own direction's traffic (reflection).
	if _, err := client.Open(rec); !errors.Is(err, ErrRecord) {
		t.Errorf("reflected record error = %v", err)
	}
	if _, err := server.Open(rec); err != nil {
		t.Errorf("legitimate receive failed: %v", err)
	}
}

func TestServerSignatureVerified(t *testing.T) {
	pub, _ := testIdentity(t)
	_, rogusPriv := testIdentity(t) // attacker key

	hs, hello, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// A malicious replica (without the enclave identity key) answers.
	_, serverHello, err := ServerHandshake(rogusPriv, hello, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Finish(serverHello); !errors.Is(err, ErrHandshake) {
		t.Errorf("rogue server hello error = %v", err)
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	_, priv := testIdentity(t)
	if _, _, err := ServerHandshake(priv, []byte("junk"), rand.Reader); !errors.Is(err, ErrHandshake) {
		t.Errorf("garbage client hello error = %v", err)
	}
	pub, _ := testIdentity(t)
	hs, _, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hs.Finish([]byte("junk")); !errors.Is(err, ErrHandshake) {
		t.Errorf("garbage server hello error = %v", err)
	}
}

func TestNotEstablished(t *testing.T) {
	var s *Session
	if _, err := s.Seal([]byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Errorf("nil session Seal error = %v", err)
	}
	empty := &Session{}
	if _, err := empty.Open([]byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Errorf("empty session Open error = %v", err)
	}
}

func TestIsHandshakeFrame(t *testing.T) {
	client, _ := handshake(t)
	pub, _ := testIdentity(t)
	_, hello, err := NewClientHandshake(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !IsHandshakeFrame(hello) {
		t.Error("client hello not recognized as handshake frame")
	}
	rec, _ := client.Seal([]byte("x"))
	if IsHandshakeFrame(rec) {
		t.Error("record misclassified as handshake frame")
	}
	if IsHandshakeFrame(nil) {
		t.Error("empty frame misclassified")
	}
}

func TestQuickSealOpen(t *testing.T) {
	client, server := handshake(t)
	f := func(data []byte) bool {
		rec, err := client.Seal(data)
		if err != nil {
			return false
		}
		if len(rec) != len(data)+Overhead {
			return false
		}
		pt, err := server.Open(rec)
		return err == nil && bytes.Equal(pt, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConnAdapter(t *testing.T) {
	testutil.CheckGoroutines(t)
	pub, priv := testIdentity(t)
	clientRaw, serverRaw := net.Pipe()
	t.Cleanup(func() {
		clientRaw.Close()
		serverRaw.Close()
	})

	type res struct {
		conn *Conn
		err  error
	}
	serverCh := make(chan res, 1)
	go func() {
		c, err := ServerConn(serverRaw, priv)
		serverCh <- res{c, err}
	}()
	client, err := ClientConn(clientRaw, pub)
	if err != nil {
		t.Fatalf("ClientConn: %v", err)
	}
	sr := <-serverCh
	if sr.err != nil {
		t.Fatalf("ServerConn: %v", sr.err)
	}
	server := sr.conn

	// Big payload exercises record chunking.
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	go func() {
		if _, err := client.Write(payload); err != nil {
			t.Errorf("client write: %v", err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted through Conn")
	}

	// And the reverse direction.
	go func() {
		if _, err := server.Write([]byte("reply")); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(buf) != "reply" {
		t.Errorf("reply = %q", buf)
	}
}

func TestRecordSize(t *testing.T) {
	client, _ := handshake(t)
	rec, err := client.Seal(make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if RecordSize(100) != 4+len(rec) {
		t.Errorf("RecordSize(100) = %d, want %d", RecordSize(100), 4+len(rec))
	}
}
