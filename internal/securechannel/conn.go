package securechannel

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/troxy-bft/troxy/internal/wire"
)

// maxRecordPlaintext bounds the plaintext carried by a single sub-frame on
// byte-stream transports. It is smaller than MaxCoalescedPlaintext so a
// group-committed flush can still coalesce several writers' chunks into one
// record.
const maxRecordPlaintext = 16 * 1024

// Conn adapts a Session to net.Conn over a byte-stream transport, so that
// completely unmodified legacy clients (e.g. net/http with a custom dialer)
// can talk to a Troxy. Records are length-prefixed on the underlying stream.
//
// The write side is a group-commit flusher: writers enqueue plaintext chunks
// under a short mutex and one writer at a time becomes the flusher, sealing
// the entire queue into coalesced records (one AES-GCM pass per record) and
// pushing them to the socket in a single vectored write with no lock held.
// Writers whose chunks rode along in someone else's flush just wait for the
// completion ticket. This is what lets sealing live outside any lock held
// across I/O — the serialization the old writeMu provided now comes from the
// flushing flag, which is only ever held across CPU work.
//
// Read and Write may be used concurrently with each other (as net.Conn
// requires) but each is serialized internally. The Session's two directions
// are independent, so the reader and the flusher never contend.
type Conn struct {
	raw net.Conn

	readMu  sync.Mutex
	readBuf []byte
	readQ   [][]byte // decoded sub-frames not yet surfaced to Read

	// Write side: group-commit state, all guarded by wmu. wmu is never held
	// across socket I/O — only across enqueueing and sealing.
	wmu      sync.Mutex
	wcond    *sync.Cond
	pending  [][]byte // enqueued chunks, FIFO; alias caller buffers until flushed
	pendSeq  uint64   // ticket of the most recently enqueued Write
	doneSeq  uint64   // ticket of the most recently completed flush
	flushing bool     // a flusher is sealing or writing; at most one at a time
	flushErr error    // sticky: a failed flush poisons the conn

	sess *Session
}

func newConn(raw net.Conn, sess *Session) *Conn {
	c := &Conn{raw: raw, sess: sess}
	c.wcond = sync.NewCond(&c.wmu)
	return c
}

// ClientConn performs the client side of the handshake over raw and returns
// the secured connection. serverPub pins the service identity.
func ClientConn(raw net.Conn, serverPub ed25519.PublicKey) (*Conn, error) {
	hs, hello, err := NewClientHandshake(serverPub, rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(raw, hello); err != nil {
		return nil, fmt.Errorf("securechannel: send client hello: %w", err)
	}
	serverHello, err := wire.ReadFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("securechannel: read server hello: %w", err)
	}
	sess, err := hs.Finish(serverHello)
	if err != nil {
		return nil, err
	}
	return newConn(raw, sess), nil
}

// ServerConn performs the server side of the handshake over raw. identity is
// the service's Ed25519 private key (inside the enclave in a Troxy replica;
// this adapter is also used by the standalone and Prophecy services).
func ServerConn(raw net.Conn, identity ed25519.PrivateKey) (*Conn, error) {
	clientHello, err := wire.ReadFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("securechannel: read client hello: %w", err)
	}
	sess, serverHello, err := ServerHandshake(identity, clientHello, rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(raw, serverHello); err != nil {
		return nil, fmt.Errorf("securechannel: send server hello: %w", err)
	}
	return newConn(raw, sess), nil
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for len(c.readBuf) == 0 {
		if len(c.readQ) > 0 {
			c.readBuf, c.readQ = c.readQ[0], c.readQ[1:]
			continue
		}
		// readMu exists to serialize concurrent readers around exactly this
		// blocking read: record boundaries would interleave otherwise. Only
		// other Read calls contend on it, which is the semantics net.Conn
		// promises, and Close on the raw conn unblocks it.
		record, err := wire.ReadFrame(c.raw) //lint:allow lockcheck readMu is the read-serialization lock; holding it across the frame read is its purpose
		if err != nil {
			return 0, err
		}
		// The record may be plain or coalesced; the whole record
		// authenticates before any sub-frame is surfaced. Only this reader
		// touches the session's receive direction, so no session lock is
		// needed.
		frames, err := c.sess.OpenFrames(record)
		if err != nil {
			return 0, err
		}
		c.readQ = frames
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Write implements net.Conn. The caller's buffer is enqueued in chunks and
// sealed by whichever writer drains the queue; Write returns only once its
// chunks are on the socket (or the conn failed), so p is never retained past
// the call.
//
// The flush itself lives inline: the flusher seals the whole queue under wmu
// (pure CPU — the session's send direction advances in queue order), then
// releases wmu for the vectored socket write. The flushing flag keeps the
// next flusher out until this one publishes its completion ticket, so
// records hit the stream in seal order without any lock held across I/O.
func (c *Conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.flushErr != nil {
		return 0, c.flushErr
	}
	for off := 0; off < len(p); off += maxRecordPlaintext {
		end := off + maxRecordPlaintext
		if end > len(p) {
			end = len(p)
		}
		c.pending = append(c.pending, p[off:end])
	}
	c.pendSeq++
	ticket := c.pendSeq
	for c.doneSeq < ticket && c.flushErr == nil {
		if c.flushing {
			c.wcond.Wait()
			continue
		}
		// Become the flusher for everything enqueued so far (our own chunks
		// included — they cannot have been consumed yet, or doneSeq would
		// already cover our ticket).
		c.flushing = true
		batch := c.pending
		c.pending = nil
		upTo := c.pendSeq
		bufs, err := c.sealBatch(batch)

		c.wmu.Unlock()
		if err == nil {
			_, err = bufs.WriteTo(c.raw)
		}
		c.wmu.Lock()

		if err != nil && c.flushErr == nil {
			c.flushErr = err
		}
		c.doneSeq = upTo
		c.flushing = false
		c.wcond.Broadcast()
	}
	if c.flushErr != nil {
		return 0, c.flushErr
	}
	return len(p), nil
}

// sealBatch seals a drained queue into length-prefixed coalesced records,
// greedily packing chunks up to MaxCoalescedPlaintext per record — one
// AES-GCM pass per record however many writers contributed. Called with wmu
// held; it performs no I/O and takes no locks.
func (c *Conn) sealBatch(batch [][]byte) (net.Buffers, error) {
	var bufs net.Buffers
	appendRecord := func(frames [][]byte) error {
		rec, err := c.sess.SealFrames(frames)
		if err != nil {
			return err
		}
		hdr := make([]byte, 4)
		binary.LittleEndian.PutUint32(hdr, uint32(len(rec)))
		bufs = append(bufs, hdr, rec)
		return nil
	}
	var group [][]byte
	groupBytes := 0
	for _, chunk := range batch {
		if groupBytes+4+len(chunk) > MaxCoalescedPlaintext && len(group) > 0 {
			if err := appendRecord(group); err != nil {
				return nil, err
			}
			group, groupBytes = nil, 0
		}
		group = append(group, chunk)
		groupBytes += 4 + len(chunk)
	}
	if len(group) > 0 {
		if err := appendRecord(group); err != nil {
			return nil, err
		}
	}
	return bufs, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.raw.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

var _ net.Conn = (*Conn)(nil)
