package securechannel

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/troxy-bft/troxy/internal/wire"
)

// maxRecordPlaintext bounds the plaintext carried by a single record on
// byte-stream transports.
const maxRecordPlaintext = 16 * 1024

// Conn adapts a Session to net.Conn over a byte-stream transport, so that
// completely unmodified legacy clients (e.g. net/http with a custom dialer)
// can talk to a Troxy. Records are length-prefixed on the underlying stream.
//
// Read and Write may be used concurrently with each other (as net.Conn
// requires) but each is serialized internally.
type Conn struct {
	raw net.Conn

	readMu  sync.Mutex
	writeMu sync.Mutex
	sessMu  sync.Mutex
	sess    *Session
	readBuf []byte
}

// ClientConn performs the client side of the handshake over raw and returns
// the secured connection. serverPub pins the service identity.
func ClientConn(raw net.Conn, serverPub ed25519.PublicKey) (*Conn, error) {
	hs, hello, err := NewClientHandshake(serverPub, rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(raw, hello); err != nil {
		return nil, fmt.Errorf("securechannel: send client hello: %w", err)
	}
	serverHello, err := wire.ReadFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("securechannel: read server hello: %w", err)
	}
	sess, err := hs.Finish(serverHello)
	if err != nil {
		return nil, err
	}
	return &Conn{raw: raw, sess: sess}, nil
}

// ServerConn performs the server side of the handshake over raw. identity is
// the service's Ed25519 private key (inside the enclave in a Troxy replica;
// this adapter is also used by the standalone and Prophecy services).
func ServerConn(raw net.Conn, identity ed25519.PrivateKey) (*Conn, error) {
	clientHello, err := wire.ReadFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("securechannel: read client hello: %w", err)
	}
	sess, serverHello, err := ServerHandshake(identity, clientHello, rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(raw, serverHello); err != nil {
		return nil, fmt.Errorf("securechannel: send server hello: %w", err)
	}
	return &Conn{raw: raw, sess: sess}, nil
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for len(c.readBuf) == 0 {
		// readMu exists to serialize concurrent readers around exactly this
		// blocking read: record boundaries would interleave otherwise. Only
		// other Read calls contend on it, which is the semantics net.Conn
		// promises, and Close on the raw conn unblocks it.
		record, err := wire.ReadFrame(c.raw) //lint:allow lockcheck readMu is the read-serialization lock; holding it across the frame read is its purpose
		if err != nil {
			return 0, err
		}
		c.sessMu.Lock()
		pt, err := c.sess.Open(record)
		c.sessMu.Unlock()
		if err != nil {
			return 0, err
		}
		c.readBuf = pt
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	written := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > maxRecordPlaintext {
			chunk = chunk[:maxRecordPlaintext]
		}
		c.sessMu.Lock()
		record, err := c.sess.Seal(chunk)
		c.sessMu.Unlock()
		if err != nil {
			return written, err
		}
		// Same serialization-around-I/O pattern as Read: writeMu keeps
		// records whole under concurrent Write calls; only writers contend.
		if err := wire.WriteFrame(c.raw, record); err != nil { //lint:allow lockcheck writeMu is the write-serialization lock; holding it across the frame write is its purpose
			return written, err
		}
		written += len(chunk)
		p = p[len(chunk):]
	}
	return written, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.raw.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

var _ net.Conn = (*Conn)(nil)
