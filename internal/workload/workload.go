// Package workload provides the load generators and measurement machinery of
// the evaluation: operation generators matching the paper's microbenchmark
// (configurable request/reply sizes, read/write mixes over a keyed state)
// and its HTTP experiment (JMeter-like fixed-rate GET/POST traffic), plus a
// latency/throughput recorder.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
)

// Op is one generated client operation.
type Op struct {
	// Op is the operation payload handed to the service.
	Op []byte
	// Read reports whether the operation is read-only (drives client-side
	// read optimizations and per-class statistics).
	Read bool
}

// Generator produces operations. Implementations must be deterministic
// given the caller's random source.
type Generator interface {
	Next(r *rand.Rand) Op
}

// BenchGen generates the microbenchmark workload of Section VI-C: requests
// of RequestSize bytes against a key space of Keys keys, a fraction
// ReadRatio of which are reads.
type BenchGen struct {
	// RequestSize is the operation payload size in bytes.
	RequestSize int
	// Keys is the key-space size (≥1).
	Keys uint64
	// ReadRatio is the fraction of reads in [0,1].
	ReadRatio float64
}

var _ Generator = BenchGen{}

// Next implements Generator.
func (g BenchGen) Next(r *rand.Rand) Op {
	keys := g.Keys
	if keys == 0 {
		keys = 1
	}
	key := uint64(r.Int63n(int64(keys)))
	if r.Float64() < g.ReadRatio {
		return Op{Op: app.BenchRead(key, g.RequestSize), Read: true}
	}
	return Op{Op: app.BenchWrite(key, g.RequestSize), Read: false}
}

// KVGen generates text-protocol operations against the KV store; used by
// examples and integration tests.
type KVGen struct {
	Keys      int
	ReadRatio float64
	ValueSize int
}

var _ Generator = KVGen{}

// Next implements Generator.
func (g KVGen) Next(r *rand.Rand) Op {
	keys := g.Keys
	if keys <= 0 {
		keys = 16
	}
	key := fmt.Sprintf("key-%d", r.Intn(keys))
	if r.Float64() < g.ReadRatio {
		return Op{Op: []byte("GET " + key), Read: true}
	}
	size := g.ValueSize
	if size <= 0 {
		size = 16
	}
	value := make([]byte, size)
	for i := range value {
		value[i] = byte('a' + r.Intn(26))
	}
	return Op{Op: []byte("PUT " + key + " " + string(value)), Read: false}
}

// HTTPGen generates raw HTTP/1.1 GET and POST requests against a set of
// pages, as in the Fig. 11 experiment (200 B request payloads; the response
// size is a property of the served pages).
type HTTPGen struct {
	// Paths are the page paths addressed.
	Paths []string
	// ReadRatio is the fraction of GETs.
	ReadRatio float64
	// PostSize is the POST body size in bytes.
	PostSize int
}

var _ Generator = HTTPGen{}

// Next implements Generator.
func (g HTTPGen) Next(r *rand.Rand) Op {
	path := "/index.html"
	if len(g.Paths) > 0 {
		path = g.Paths[r.Intn(len(g.Paths))]
	}
	if r.Float64() < g.ReadRatio {
		return Op{
			Op:   fmt.Appendf(nil, "GET %s HTTP/1.1\r\nHost: troxy\r\n\r\n", path),
			Read: true,
		}
	}
	body := make([]byte, g.PostSize)
	for i := range body {
		body[i] = byte('0' + r.Intn(10))
	}
	return Op{
		Op: fmt.Appendf(nil, "POST %s HTTP/1.1\r\nHost: troxy\r\nContent-Length: %d\r\n\r\n%s",
			path, len(body), body),
		Read: false,
	}
}

// Recorder accumulates per-operation measurements. It is safe for concurrent
// use (realnet clients run on their own goroutines). Measurements before
// Begin is called (the warm-up phase) are discarded.
type Recorder struct {
	mu        sync.Mutex
	measuring bool
	begin     time.Duration
	end       time.Duration

	count     uint64
	readCount uint64
	retries   uint64
	sum       time.Duration
	latencies []time.Duration
}

// maxSamples bounds the latency sample buffer; beyond it, reservoir
// sampling keeps the percentile estimates unbiased.
const maxSamples = 1 << 19

// NewRecorder creates an idle recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin starts the measurement phase at the given (virtual or wall) time.
func (r *Recorder) Begin(now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.measuring = true
	r.begin = now
	r.end = now
	r.count = 0
	r.readCount = 0
	r.retries = 0
	r.sum = 0
	r.latencies = r.latencies[:0]
}

// End stops the measurement phase.
func (r *Recorder) End(now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.measuring = false
	r.end = now
}

// Record notes one completed operation.
func (r *Recorder) Record(now, latency time.Duration, read bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.measuring {
		return
	}
	r.count++
	if read {
		r.readCount++
	}
	r.sum += latency
	if len(r.latencies) < maxSamples {
		r.latencies = append(r.latencies, latency)
	} else {
		// Reservoir replacement keeps a uniform sample.
		idx := int(r.count % uint64(maxSamples))
		r.latencies[idx] = latency
	}
}

// RecordRetry notes a client-level retry (e.g. a failed speculative read
// that had to be re-issued as an ordered request).
func (r *Recorder) RecordRetry() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.measuring {
		r.retries++
	}
}

// Result summarizes a measurement phase.
type Result struct {
	Count     uint64
	Reads     uint64
	Retries   uint64
	Duration  time.Duration
	Mean      time.Duration
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	Max       time.Duration
	OpsPerSec float64
}

// Snapshot computes the current result; now closes the interval for
// throughput if End was not called.
func (r *Recorder) Snapshot(now time.Duration) Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	end := r.end
	if r.measuring {
		end = now
	}
	res := Result{
		Count:    r.count,
		Reads:    r.readCount,
		Retries:  r.retries,
		Duration: end - r.begin,
	}
	if r.count > 0 {
		res.Mean = r.sum / time.Duration(r.count)
	}
	if res.Duration > 0 {
		res.OpsPerSec = float64(r.count) / res.Duration.Seconds()
	}
	if len(r.latencies) > 0 {
		sorted := make([]time.Duration, len(r.latencies))
		copy(sorted, r.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.P50 = sorted[len(sorted)*50/100]
		res.P90 = sorted[len(sorted)*90/100]
		res.P99 = sorted[len(sorted)*99/100]
		res.Max = sorted[len(sorted)-1]
	}
	return res
}

// String renders a result for harness output.
func (r Result) String() string {
	return fmt.Sprintf("ops=%d thr=%.0f/s mean=%s p50=%s p90=%s p99=%s",
		r.Count, r.OpsPerSec,
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond))
}
