package workload

import (
	"math/rand"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/httpfront"
)

func TestBenchGenRatioAndShape(t *testing.T) {
	g := BenchGen{RequestSize: 128, Keys: 8, ReadRatio: 0.75}
	r := rand.New(rand.NewSource(1))
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		op := g.Next(r)
		if len(op.Op) != 128 {
			t.Fatalf("op size = %d", len(op.Op))
		}
		if op.Read != app.BenchIsRead(op.Op) {
			t.Fatal("Read flag disagrees with the operation payload")
		}
		key, ok := app.BenchKey(op.Op)
		if !ok || key >= 8 {
			t.Fatalf("key = %d, ok=%v", key, ok)
		}
		if op.Read {
			reads++
		}
	}
	ratio := float64(reads) / n
	if ratio < 0.72 || ratio > 0.78 {
		t.Errorf("read ratio = %.3f, want ≈0.75", ratio)
	}
}

func TestBenchGenZeroValues(t *testing.T) {
	g := BenchGen{}
	r := rand.New(rand.NewSource(2))
	op := g.Next(r)
	if len(op.Op) == 0 {
		t.Error("zero-value generator produced empty op")
	}
}

func TestKVGenProducesValidOps(t *testing.T) {
	g := KVGen{Keys: 4, ReadRatio: 0.5, ValueSize: 8}
	r := rand.New(rand.NewSource(3))
	store := app.NewStore()
	for i := 0; i < 1000; i++ {
		op := g.Next(r)
		res := store.Execute(op.Op)
		if len(res) == 0 || string(res[:2]) == "ER" {
			t.Fatalf("generated invalid op %q -> %q", op.Op, res)
		}
		if op.Read != store.IsRead(op.Op) {
			t.Fatal("Read flag wrong")
		}
	}
}

func TestHTTPGenProducesParsableRequests(t *testing.T) {
	g := HTTPGen{Paths: []string{"/a", "/b"}, ReadRatio: 0.5, PostSize: 64}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		op := g.Next(r)
		req, n, err := httpfront.ExtractRequest(op.Op)
		if err != nil || req == nil || n != len(op.Op) {
			t.Fatalf("unparsable request: %q (%v)", op.Op, err)
		}
		if op.Read != httpfront.IsRead(op.Op) {
			t.Fatal("Read flag disagrees with method")
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	// Measurements before Begin are dropped (warm-up).
	r.Record(0, time.Millisecond, true)
	r.Begin(time.Second)
	for i := 1; i <= 100; i++ {
		r.Record(time.Second, time.Duration(i)*time.Millisecond, i%2 == 0)
	}
	r.RecordRetry()
	r.End(3 * time.Second)
	// Measurements after End are dropped too.
	r.Record(0, time.Hour, false)

	res := r.Snapshot(4 * time.Second)
	if res.Count != 100 || res.Reads != 50 || res.Retries != 1 {
		t.Errorf("count=%d reads=%d retries=%d", res.Count, res.Reads, res.Retries)
	}
	if res.Duration != 2*time.Second {
		t.Errorf("duration = %v", res.Duration)
	}
	if res.OpsPerSec != 50 {
		t.Errorf("ops/s = %v", res.OpsPerSec)
	}
	if res.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", res.Mean)
	}
	if res.P50 != 51*time.Millisecond || res.P99 != 100*time.Millisecond {
		t.Errorf("p50=%v p99=%v", res.P50, res.P99)
	}
	if res.Max != 100*time.Millisecond {
		t.Errorf("max = %v", res.Max)
	}
}

func TestRecorderSnapshotWhileMeasuring(t *testing.T) {
	r := NewRecorder()
	r.Begin(0)
	r.Record(time.Second, time.Millisecond, false)
	res := r.Snapshot(2 * time.Second)
	if res.Duration != 2*time.Second || res.Count != 1 {
		t.Errorf("open snapshot: %+v", res)
	}
}

func TestRecorderReservoirBounded(t *testing.T) {
	r := NewRecorder()
	r.Begin(0)
	for i := 0; i < maxSamples+1000; i++ {
		r.Record(0, time.Microsecond, false)
	}
	res := r.Snapshot(time.Second)
	if res.Count != uint64(maxSamples+1000) {
		t.Errorf("count = %d", res.Count)
	}
	// The percentile buffer must not grow beyond the reservoir bound.
	r.mu.Lock()
	n := len(r.latencies)
	r.mu.Unlock()
	if n > maxSamples {
		t.Errorf("latency buffer = %d > %d", n, maxSamples)
	}
}

func TestRecorderBeginResets(t *testing.T) {
	r := NewRecorder()
	r.Begin(0)
	r.Record(0, time.Second, false)
	r.Begin(time.Second)
	res := r.Snapshot(2 * time.Second)
	if res.Count != 0 {
		t.Errorf("count after re-Begin = %d", res.Count)
	}
}

func TestResultString(t *testing.T) {
	res := Result{Count: 10, OpsPerSec: 100, Mean: time.Millisecond}
	if s := res.String(); len(s) == 0 {
		t.Error("empty String()")
	}
}
