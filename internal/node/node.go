// Package node defines the runtime-agnostic abstractions all protocol state
// machines are written against. The same Handler implementations (Hybster
// replicas, Troxy-backed replicas, BFT clients, the Prophecy middlebox,
// workload clients) run unchanged under two runtimes:
//
//   - internal/realnet drives them with goroutines, wall-clock timers and
//     (optionally) TCP transports — this is the deployable library; and
//   - internal/simnet drives them under a deterministic discrete-event
//     scheduler with a virtual clock, CPU/NIC/link models and a calibrated
//     cost model — this is what regenerates the paper's evaluation,
//     including the 100±20 ms WAN experiments, in milliseconds of real time.
//
// Handlers are single-threaded: a runtime never runs two handler invocations
// of the same node concurrently, so handlers need no internal locking.
package node

import (
	"math/rand"
	"time"

	"github.com/troxy-bft/troxy/internal/msg"
)

// TimerKey identifies a pending timer of a node. Setting a timer with a key
// that is already pending replaces the previous deadline.
type TimerKey struct {
	// Kind names the purpose (e.g. "viewchange", "resend").
	Kind string
	// ID disambiguates timers of the same kind (e.g. a client sequence
	// number).
	ID uint64
}

// Profile identifies the implementation technology whose processing costs an
// operation incurs. The evaluation's central asymmetry — the baseline's Java
// message authentication being slower per byte than Troxy's C/C++ — enters
// the simulation through these profiles (Section VI-C1).
type Profile uint8

// Profiles.
const (
	// ProfileJava is the baseline Hybster implementation (Java, JNI).
	ProfileJava Profile = iota + 1

	// ProfileCpp is Troxy's C/C++ implementation outside SGX ("ctroxy").
	ProfileCpp

	// ProfileEnclave is Troxy's C/C++ implementation inside SGX ("etroxy").
	ProfileEnclave
)

// ChargeKind enumerates the operations the cost model prices.
type ChargeKind uint8

// Charge kinds.
const (
	// ChargeBase is the fixed cost of handling one protocol message
	// (dispatch, bookkeeping, socket syscalls).
	ChargeBase ChargeKind = iota + 1

	// ChargeMAC prices computing or verifying an HMAC over n bytes.
	ChargeMAC

	// ChargeAEAD prices sealing or opening a secure-channel record of
	// n plaintext bytes.
	ChargeAEAD

	// ChargeHash prices hashing n bytes.
	ChargeHash

	// ChargeExec prices executing an application request of n bytes.
	ChargeExec

	// ChargeTransition prices one enclave boundary crossing copying n bytes.
	ChargeTransition

	// ChargeJNI prices one JNI crossing (Java host into native Troxy code).
	ChargeJNI
)

// Env is the interface a runtime presents to a node's handler during an
// invocation. Envs must only be used from within the invocation they were
// passed to.
type Env interface {
	// Self returns the node's ID.
	Self() msg.NodeID

	// Now returns the elapsed time since the runtime started (virtual time
	// under simulation, wall-clock time otherwise).
	Now() time.Duration

	// Send transmits an envelope. The envelope's From must equal Self.
	// Delivery is asynchronous and, to Byzantine-faulty or crashed peers,
	// may silently fail.
	Send(e *msg.Envelope)

	// SetTimer schedules (or reschedules) a timer.
	SetTimer(after time.Duration, key TimerKey)

	// CancelTimer cancels a pending timer; canceling an unknown key is a
	// no-op.
	CancelTimer(key TimerKey)

	// Rand returns the node's random source (seeded deterministically under
	// simulation).
	Rand() *rand.Rand

	// Charge accounts CPU time for an operation of the given kind over n
	// bytes under the given implementation profile. Real runtimes ignore
	// it; the simulator converts it to virtual service time.
	Charge(p Profile, k ChargeKind, n int)

	// Logf emits a debug log line attributed to the node.
	Logf(format string, args ...any)
}

// Handler is a protocol state machine. Runtimes guarantee that OnStart runs
// before any other callback and that callbacks never overlap for one node.
type Handler interface {
	// OnStart initializes the node.
	OnStart(env Env)

	// OnEnvelope delivers a received envelope. Handlers must treat the
	// envelope as untrusted input.
	OnEnvelope(env Env, e *msg.Envelope)

	// OnTimer delivers a timer expiry.
	OnTimer(env Env, key TimerKey)
}

// Runtime is the minimal interface experiments use to compose deployments.
// Both simnet.Network and realnet.Router implement it.
type Runtime interface {
	// Attach registers a handler under an ID. It must be called before the
	// runtime starts delivering events to that node.
	Attach(id msg.NodeID, h Handler)
}
