// Package bftclient implements the baseline (BL) client-side library of the
// evaluation: the traditional BFT client that Troxy makes unnecessary. A
// client machine hosts many logical clients; each one
//
//   - knows the identity and number of all replicas and shares MAC keys
//     with them (Section II-A),
//   - sends ordered requests to the current leader and votes over f+1
//     matching, authenticated replies, and
//   - optionally uses the PBFT-like read optimization: reads go to all
//     replicas for speculative execution and the result counts only if all
//     2f+1 replies match; a mismatch (write concurrency) forces a re-issue
//     as an ordered request (Section VI-C2/C3).
//
// The per-reply authentication and comparison work this library performs on
// the client machine is exactly the overhead Troxy relocates to the server
// side.
package bftclient

import (
	"bytes"
	"time"

	"github.com/troxy-bft/troxy/internal/authn"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/workload"
)

// Config parameterizes a baseline client machine.
type Config struct {
	// Machine is this node's ID.
	Machine msg.NodeID

	// Clients is the number of logical clients hosted.
	Clients int

	// FirstClientID is the first logical client identity.
	FirstClientID uint64

	// N and F are the replication parameters.
	N, F int

	// Directory provides the client↔replica MAC keys.
	Directory *authn.Directory

	// Gen produces operations; Rec receives measurements.
	Gen workload.Generator
	Rec *workload.Recorder

	// ReadOpt enables the speculative read optimization.
	ReadOpt bool

	// Broadcast sends ordered requests to every replica (the PBFT-style
	// client protocol of the original system) instead of only the leader.
	Broadcast bool

	// Rate, when positive, paces each logical client (open loop).
	Rate float64

	// Timeout is the per-request deadline before retransmission (zero: 2s).
	Timeout time.Duration

	// MaxOps stops each client after this many operations (zero: forever).
	MaxOps int
}

const (
	timerOp   = "bftclient/op"
	timerPace = "bftclient/pace"
	timerKick = "bftclient/kick"
)

type clientState struct {
	idx      int
	identity uint64

	seq      uint64
	op       workload.Op
	direct   bool // current attempt is a speculative read
	inflight bool
	started  time.Duration
	done     int

	replies map[msg.NodeID][]byte // executor -> result (verified)
	votes   map[msg.Digest]int    // result hash -> count
}

// Machine is the baseline client-machine handler.
type Machine struct {
	cfg     Config
	auth    *authn.Authenticator
	clients []*clientState
	byID    map[uint64]*clientState
	leader  msg.NodeID
	stopped bool

	stats Stats
}

// Stats counts client-side events.
type Stats struct {
	// Conflicts counts speculative reads that failed (mismatch or explicit
	// conflict) and were re-issued as ordered requests.
	Conflicts uint64
	// DirectOK counts speculative reads accepted with all replies matching.
	DirectOK uint64
	// BadReplies counts replies dropped by MAC verification.
	BadReplies uint64
}

var _ node.Handler = (*Machine)(nil)

// New creates a baseline client machine.
func New(cfg Config) *Machine {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	m := &Machine{
		cfg:  cfg,
		auth: authn.NewAuthenticator(cfg.Machine, cfg.Directory),
		byID: make(map[uint64]*clientState),
	}
	for i := 0; i < cfg.Clients; i++ {
		cs := &clientState{idx: i, identity: cfg.FirstClientID + uint64(i)}
		m.clients = append(m.clients, cs)
		m.byID[cs.identity] = cs
	}
	return m
}

// Stop makes the machine cease issuing new operations.
func (m *Machine) Stop() { m.stopped = true }

// Stats returns client-side counters.
func (m *Machine) Stats() Stats { return m.stats }

// Done reports completed operations across all clients.
func (m *Machine) Done() int {
	total := 0
	for _, cs := range m.clients {
		total += cs.done
	}
	return total
}

// OnStart implements node.Handler.
func (m *Machine) OnStart(env node.Env) {
	for _, cs := range m.clients {
		env.SetTimer(time.Duration(cs.idx)*50*time.Microsecond,
			node.TimerKey{Kind: timerKick, ID: uint64(cs.idx)})
	}
}

func (m *Machine) nextOp(env node.Env, cs *clientState) {
	if m.stopped || (m.cfg.MaxOps > 0 && cs.done >= m.cfg.MaxOps) {
		cs.inflight = false
		return
	}
	if m.cfg.Rate > 0 {
		interval := time.Duration(float64(time.Second) / m.cfg.Rate)
		jitter := time.Duration(env.Rand().Int63n(int64(interval)/4 + 1))
		cs.inflight = false
		env.SetTimer(interval-interval/8+jitter, node.TimerKey{Kind: timerPace, ID: uint64(cs.idx)})
		return
	}
	m.issue(env, cs)
}

func (m *Machine) issue(env node.Env, cs *clientState) {
	cs.op = m.cfg.Gen.Next(env.Rand())
	cs.seq++
	cs.started = env.Now()
	cs.inflight = true
	cs.direct = m.cfg.ReadOpt && cs.op.Read
	m.transmit(env, cs)
}

// transmit sends the current attempt: ordered requests to the presumed
// leader, speculative reads to everyone.
func (m *Machine) transmit(env node.Env, cs *clientState) {
	cs.replies = make(map[msg.NodeID][]byte)
	cs.votes = make(map[msg.Digest]int)

	flags := uint8(0)
	if cs.op.Read {
		flags |= msg.FlagReadOnly
	}
	if cs.direct {
		flags |= msg.FlagDirect
	}
	req := &msg.BFTRequest{
		Client:    cs.identity,
		ClientSeq: cs.seq,
		Flags:     flags,
		Op:        cs.op.Op,
	}
	// The request authenticator contains one MAC per replica (PBFT-style):
	// the client pays N-1 additional MACs beyond the one charged per send.
	if !cs.direct && !m.cfg.Broadcast {
		for i := 0; i < m.cfg.N-1; i++ {
			env.Charge(node.ProfileJava, node.ChargeMAC, len(cs.op.Op))
		}
	}
	switch {
	case cs.direct:
		for i := 0; i < m.cfg.N; i++ {
			m.send(env, msg.NodeID(i), req)
		}
	case m.cfg.Broadcast:
		req.Flags |= msg.FlagBroadcast
		for i := 0; i < m.cfg.N; i++ {
			m.send(env, msg.NodeID(i), req)
		}
	default:
		m.send(env, m.leader, req)
	}
	env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
}

func (m *Machine) send(env node.Env, to msg.NodeID, req *msg.BFTRequest) {
	e := msg.Seal(m.cfg.Machine, to, req)
	env.Charge(node.ProfileJava, node.ChargeMAC, len(e.Body))
	m.auth.SealMAC(e)
	env.Send(e)
}

// OnEnvelope implements node.Handler.
func (m *Machine) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind != msg.KindBFTReply {
		return
	}
	// The client authenticates every reply it receives — the per-reply cost
	// Troxy eliminates.
	env.Charge(node.ProfileJava, node.ChargeMAC, len(e.Body))
	if !m.auth.VerifyMAC(e) {
		m.stats.BadReplies++
		return
	}
	raw, err := e.Open()
	if err != nil {
		m.stats.BadReplies++
		return
	}
	rep, ok := raw.(*msg.BFTReply)
	if !ok {
		return
	}
	cs, ok := m.byID[rep.Client]
	if !ok || !cs.inflight || rep.ClientSeq != cs.seq {
		return
	}
	if rep.Executor != e.From {
		m.stats.BadReplies++
		return
	}
	if rep.Direct != cs.direct {
		return // stale reply from a previous attempt mode
	}

	if cs.direct {
		m.onDirectReply(env, cs, rep)
		return
	}

	// Ordered path: f+1 matching replies from distinct replicas.
	if _, dup := cs.replies[rep.Executor]; dup {
		return
	}
	cs.replies[rep.Executor] = rep.Result
	h := msg.DigestOf(rep.Result)
	env.Charge(node.ProfileJava, node.ChargeHash, len(rep.Result))
	cs.votes[h]++
	if cs.votes[h] >= m.cfg.F+1 {
		m.complete(env, cs)
	}
}

// onDirectReply handles the speculative read path: all N replies must match
// and none may report a conflict; otherwise the read is re-issued ordered.
func (m *Machine) onDirectReply(env node.Env, cs *clientState, rep *msg.BFTReply) {
	if rep.Conflict {
		m.conflict(env, cs)
		return
	}
	if prev, dup := cs.replies[rep.Executor]; dup {
		if !bytes.Equal(prev, rep.Result) {
			m.conflict(env, cs)
		}
		return
	}
	// Any disagreement among replicas aborts the optimization.
	for _, other := range cs.replies {
		if !bytes.Equal(other, rep.Result) {
			m.conflict(env, cs)
			return
		}
	}
	cs.replies[rep.Executor] = rep.Result
	env.Charge(node.ProfileJava, node.ChargeHash, len(rep.Result))
	if len(cs.replies) == m.cfg.N {
		m.stats.DirectOK++
		m.complete(env, cs)
	}
}

// conflict re-issues the current read as an ordered request.
func (m *Machine) conflict(env node.Env, cs *clientState) {
	m.stats.Conflicts++
	if m.cfg.Rec != nil {
		m.cfg.Rec.RecordRetry()
	}
	cs.direct = false
	m.transmit(env, cs)
}

func (m *Machine) complete(env node.Env, cs *clientState) {
	cs.inflight = false
	cs.done++
	env.CancelTimer(node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
	if m.cfg.Rec != nil {
		m.cfg.Rec.Record(env.Now(), env.Now()-cs.started, cs.op.Read)
	}
	m.nextOp(env, cs)
}

// OnTimer implements node.Handler.
func (m *Machine) OnTimer(env node.Env, key node.TimerKey) {
	idx := int(key.ID)
	if idx < 0 || idx >= len(m.clients) {
		return
	}
	cs := m.clients[idx]
	switch key.Kind {
	case timerKick:
		m.issue(env, cs)
	case timerPace:
		if !cs.inflight {
			m.issue(env, cs)
		}
	case timerOp:
		if !cs.inflight || m.stopped {
			return
		}
		// Retransmission: the leader may have changed, so broadcast the
		// ordered request to all replicas (speculative attempts demote to
		// ordered).
		if m.cfg.Rec != nil {
			m.cfg.Rec.RecordRetry()
		}
		cs.direct = false
		cs.replies = make(map[msg.NodeID][]byte)
		cs.votes = make(map[msg.Digest]int)
		var flags uint8
		if cs.op.Read {
			flags = msg.FlagReadOnly
		}
		req := &msg.BFTRequest{
			Client:    cs.identity,
			ClientSeq: cs.seq,
			Flags:     flags,
			Op:        cs.op.Op,
		}
		for i := 0; i < m.cfg.N; i++ {
			m.send(env, msg.NodeID(i), req)
		}
		env.SetTimer(m.cfg.Timeout, node.TimerKey{Kind: timerOp, ID: uint64(cs.idx)})
	}
}
