package bftclient

import (
	"math/rand"
	"testing"
	"time"

	troxy "github.com/troxy-bft/troxy"
	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/workload"
)

type scriptGen struct {
	ops []workload.Op
	i   int
}

func (g *scriptGen) Next(*rand.Rand) workload.Op {
	if g.i >= len(g.ops) {
		return g.ops[len(g.ops)-1]
	}
	op := g.ops[g.i]
	g.i++
	return op
}

func deployment(t *testing.T, gen workload.Generator, maxOps int, readOpt, broadcast bool) (*troxy.Cluster, *Machine, *simnet.Network, *workload.Recorder) {
	t.Helper()
	cluster, err := troxy.NewCluster(troxy.ClusterConfig{
		Mode:              troxy.Baseline,
		App:               app.NewBenchFactory(64),
		Classify:          app.BenchIsRead,
		Seed:              5,
		ViewChangeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(5, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	cluster.Attach(net)

	rec := workload.NewRecorder()
	rec.Begin(0)
	bc := New(Config{
		Machine:       100,
		Clients:       1,
		FirstClientID: 1000,
		N:             3,
		F:             1,
		Directory:     cluster.Directory,
		Gen:           gen,
		Rec:           rec,
		ReadOpt:       readOpt,
		Broadcast:     broadcast,
		Timeout:       2 * time.Second,
		MaxOps:        maxOps,
	})
	net.Attach(100, bc)
	return cluster, bc, net, rec
}

func TestOrderedWritesComplete(t *testing.T) {
	ops := []workload.Op{
		{Op: app.BenchWrite(1, 16)},
		{Op: app.BenchWrite(2, 16)},
		{Op: app.BenchRead(1, 16), Read: true},
	}
	_, bc, net, rec := deployment(t, &scriptGen{ops: ops}, 3, false, false)
	net.Run(20 * time.Second)
	if bc.Done() != 3 {
		t.Fatalf("done = %d/3", bc.Done())
	}
	if rec.Snapshot(net.Now()).Count != 3 {
		t.Error("recorder missed completions")
	}
}

func TestBroadcastModeCompletes(t *testing.T) {
	ops := []workload.Op{{Op: app.BenchWrite(1, 16)}, {Op: app.BenchWrite(2, 16)}}
	cluster, bc, net, _ := deployment(t, &scriptGen{ops: ops}, 2, false, true)
	net.Run(20 * time.Second)
	if bc.Done() != 2 {
		t.Fatalf("done = %d/2", bc.Done())
	}
	// Followers must not have amplified the broadcast into Forwards that
	// double-execute; every replica executed each request exactly once.
	for i := 0; i < 3; i++ {
		if got := cluster.Replicas[i].Core().Metrics().Executed; got != 2 {
			t.Errorf("replica %d executed %d, want 2", i, got)
		}
	}
}

func TestDirectReadsUsedOnReadOnlyWorkload(t *testing.T) {
	ops := []workload.Op{
		{Op: app.BenchRead(1, 16), Read: true},
		{Op: app.BenchRead(2, 16), Read: true},
	}
	_, bc, net, _ := deployment(t, &scriptGen{ops: ops}, 2, true, false)
	net.Run(20 * time.Second)
	if bc.Done() != 2 {
		t.Fatalf("done = %d/2", bc.Done())
	}
	if bc.Stats().DirectOK != 2 {
		t.Errorf("DirectOK = %d, want 2", bc.Stats().DirectOK)
	}
	if bc.Stats().Conflicts != 0 {
		t.Errorf("conflicts on read-only workload: %d", bc.Stats().Conflicts)
	}
}

func TestLeaderCrashRetransmissionRecovers(t *testing.T) {
	ops := []workload.Op{
		{Op: app.BenchWrite(1, 16)},
		{Op: app.BenchWrite(2, 16)},
		{Op: app.BenchWrite(3, 16)},
	}
	_, bc, net, rec := deployment(t, &scriptGen{ops: ops}, 3, false, false)
	net.Run(5 * time.Millisecond)
	net.Crash(0) // leader; the client's pending request must survive
	net.Run(60 * time.Second)
	if bc.Done() != 3 {
		t.Fatalf("done = %d/3 after leader crash", bc.Done())
	}
	if rec.Snapshot(net.Now()).Retries == 0 {
		t.Error("no retries recorded despite a leader crash")
	}
}

func TestRejectsUnauthenticatedReplies(t *testing.T) {
	ops := []workload.Op{{Op: app.BenchWrite(1, 16)}}
	_, bc, net, _ := deployment(t, &scriptGen{ops: ops}, 1, false, false)
	net.Attach(200, &forger{to: 100})
	net.Run(10 * time.Second)
	if bc.Stats().BadReplies == 0 {
		t.Error("forged reply not counted as bad")
	}
	if bc.Done() != 1 {
		t.Fatalf("done = %d/1", bc.Done())
	}
}

// forger spams unauthenticated replies at the client machine.
type forger struct{ to msg.NodeID }

func (f *forger) OnStart(env node.Env) {
	for seq := uint64(1); seq <= 3; seq++ {
		e := msg.Seal(env.Self(), f.to, &msg.BFTReply{
			Executor: 0, Client: 1000, ClientSeq: seq, Result: []byte("evil"),
		})
		e.MAC = []byte("not-a-mac")
		env.Send(e)
	}
}
func (f *forger) OnEnvelope(node.Env, *msg.Envelope) {}
func (f *forger) OnTimer(node.Env, node.TimerKey)    {}
