// Package wire provides small binary-encoding helpers used by all wire
// messages in the system. The encoding is deliberately simple: fixed-width
// little-endian integers and length-prefixed byte strings. Every message in
// internal/msg is marshalled with a Writer and unmarshalled with a Reader so
// that the exact same bytes flow through the real TCP transport and the
// simulated network (message sizes in the simulator are the real encoded
// sizes, not estimates).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Encoding limits. They bound allocations when decoding data received from
// untrusted peers; a correct component discards messages it cannot verify,
// and it must not be crashable by a length field pointing at 2^32 bytes.
const (
	// MaxBytesLen is the maximum length of a single length-prefixed byte
	// string. Large application payloads (HTTP pages, KV values) stay well
	// below this.
	MaxBytesLen = 64 << 20 // 64 MiB

	// MaxSliceLen is the maximum element count of an encoded slice.
	MaxSliceLen = 1 << 20
)

var (
	// ErrTruncated reports that the buffer ended before a field was complete.
	ErrTruncated = errors.New("wire: truncated input")

	// ErrTooLarge reports a length field exceeding the configured limits.
	ErrTooLarge = errors.New("wire: length exceeds limit")

	// ErrTrailing reports unconsumed bytes after a complete decode.
	ErrTrailing = errors.New("wire: trailing bytes after message")
)

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The returned slice aliases the writer's
// internal buffer; callers must not retain it across further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// CopyBytes returns a copy of the encoded bytes, safe to retain after the
// writer is reset or returned to the pool.
func (w *Writer) CopyBytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Encoder-buffer pool. Every message encode on the hot path (transport
// framing, digests, MAC inputs) runs through a Writer; pooling the buffers
// removes one allocation plus the append-growth garbage per encode. Writers
// whose buffer grew beyond pooledWriterCap are dropped instead of pooled so
// a rare giant message (e.g. a state-transfer snapshot) cannot pin memory.
const pooledWriterCap = 64 << 10

var writerPool = sync.Pool{
	New: func() any { return &Writer{buf: make([]byte, 0, 512)} },
}

// GetWriter returns an empty pooled Writer. Release it with PutWriter after
// copying out any bytes still needed (Bytes aliases the pooled buffer).
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns a Writer obtained from GetWriter to the pool.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > pooledWriterCap {
		return
	}
	writerPool.Put(w)
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a length-prefixed byte string (uint32 length).
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes verbatim with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a message from a byte slice. Methods record the first error
// encountered; callers may check Err once after decoding all fields.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or bytes remain unconsumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 decodes a single byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 decodes a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 decodes a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool decodes a one-byte boolean; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 decodes a length-prefixed byte string. The result is a copy and is
// safe to retain: decoded messages from untrusted peers must never alias
// network buffers (the enclave copies buffers across its boundary for the
// same reason).
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(ErrTooLarge)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if n > MaxBytesLen {
		r.fail(ErrTooLarge)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

// FixedBytes decodes exactly n bytes with no length prefix, returning a copy.
func (r *Reader) FixedBytes(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// SliceLen decodes and validates a slice length header.
func (r *Reader) SliceLen() int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if n > MaxSliceLen {
		r.fail(ErrTooLarge)
		return 0
	}
	return int(n)
}

// Frame I/O: every TCP connection in realnet exchanges length-prefixed
// frames. The 4-byte header holds the payload length.

// MaxFrameLen bounds a single transport frame.
const MaxFrameLen = MaxBytesLen + (1 << 16)

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("read frame payload: %w", err)
	}
	return payload, nil
}

// In-place frame building: the specialized transport encodes the 4-byte
// frame header and the payload into one pooled buffer, so a ring slot is a
// single contiguous iovec entry for the vectored write — no intermediate
// copy, no per-frame allocation.

// BeginFrame reserves space for a frame header at the writer's current
// position and returns a mark to pass to EndFrame once the payload has been
// appended.
func (w *Writer) BeginFrame() int {
	w.U32(0)
	return w.Len()
}

// EndFrame patches the header reserved by BeginFrame with the number of
// payload bytes appended since. It fails if the payload outgrew MaxFrameLen.
func (w *Writer) EndFrame(mark int) error {
	n := w.Len() - mark
	if n > MaxFrameLen {
		return fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	binary.LittleEndian.PutUint32(w.buf[mark-4:mark], uint32(n))
	return nil
}

// AppendFramePayload appends one complete length-prefixed frame carrying
// payload to w. It is WriteFrame without the io.Writer: the frame lands in
// w's buffer, ready to join a vectored write.
func AppendFramePayload(w *Writer, payload []byte) error {
	mark := w.BeginFrame()
	w.Raw(payload)
	return w.EndFrame(mark)
}

// Batched frame ingress: the ring transport's receive side mirrors its send
// side. ReadFrame on a raw connection costs two blocking reads and one
// allocation per frame; a ChunkReader instead drains whatever the socket has
// buffered into a large chunk with a single read syscall and slices frames
// out of it, so a coalesced burst arriving from a vectored write is consumed
// at one syscall and one allocation per chunk rather than per frame.

// chunkSize is the ingress chunk allocation unit. Frames larger than a chunk
// get a dedicated allocation of their exact size.
const chunkSize = 64 << 10

// ChunkReader reads length-prefixed frames from r in batched chunks.
// It is not safe for concurrent use.
type ChunkReader struct {
	r   io.Reader
	buf []byte // current chunk; never reused once frames alias it
	off int    // consumed bytes
	end int    // filled bytes
}

// NewChunkReader returns a ChunkReader over r.
func NewChunkReader(r io.Reader) *ChunkReader {
	return &ChunkReader{r: r}
}

// ReadFrame returns the next frame's payload. The slice aliases the reader's
// current chunk and stays valid indefinitely: chunks are never recycled, so
// the garbage collector reclaims one when every frame sliced from it is dead.
// Errors match ReadFrame's: a clean close at a frame boundary surfaces as a
// header read error wrapping io.EOF.
func (c *ChunkReader) ReadFrame() ([]byte, error) {
	for {
		if c.end-c.off >= 4 {
			n := int(binary.LittleEndian.Uint32(c.buf[c.off:]))
			if n > MaxFrameLen {
				return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
			}
			if c.end-c.off >= 4+n {
				payload := c.buf[c.off+4 : c.off+4+n : c.off+4+n]
				c.off += 4 + n
				return payload, nil
			}
			if err := c.fill(4 + n); err != nil {
				return nil, fmt.Errorf("read frame payload: %w", err)
			}
			continue
		}
		if err := c.fill(4); err != nil {
			return nil, fmt.Errorf("read frame header: %w", err)
		}
	}
}

// fill grows the buffered window to at least need bytes, starting a fresh
// chunk when the current one's tail cannot hold them. Pending bytes are
// copied to the new chunk, never compacted in place: frames already returned
// still alias the old one.
func (c *ChunkReader) fill(need int) error {
	if len(c.buf)-c.off < need {
		size := chunkSize
		if need > size {
			size = need
		}
		buf := make([]byte, size)
		copy(buf, c.buf[c.off:c.end])
		c.end -= c.off
		c.off = 0
		c.buf = buf
	}
	for c.end-c.off < need {
		n, err := c.r.Read(c.buf[c.end:])
		c.end += n
		if c.end-c.off >= need {
			return nil
		}
		if err != nil {
			if err == io.EOF && c.end > c.off {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if n == 0 {
			return io.ErrUnexpectedEOF
		}
	}
	return nil
}

// PutU64 encodes v into an 8-byte little-endian slice. It is a convenience
// for building MAC inputs.
func PutU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// CheckLen validates that an announced length n fits the remaining input and
// the global limit; it exists for decoders that slice manually.
func CheckLen(n, remaining int) error {
	if n < 0 || n > MaxBytesLen {
		return ErrTooLarge
	}
	if n > remaining {
		return ErrTruncated
	}
	return nil
}

// Uvarint support for compact encodings inside cache digests.

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// Uvarint decodes an unsigned varint from b, returning the value and the
// number of bytes consumed, or an error.
func Uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrTruncated
	}
	return v, n, nil
}

// SizeBytes32 returns the encoded size of a Bytes32 field.
func SizeBytes32(b []byte) int { return 4 + len(b) }

// SizeString returns the encoded size of a String field.
func SizeString(s string) int { return 4 + len(s) }
