package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Bool(true)
	w.Bool(false)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x, want 0xab", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x, want 0xbeef", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x, want 0xdeadbeef", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d, want -42", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripBytesAndStrings(t *testing.T) {
	cases := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{7}, 4096)}
	for _, c := range cases {
		w := NewWriter(16)
		w.Bytes32(c)
		w.String(string(c))
		r := NewReader(w.Bytes())
		if got := r.Bytes32(); !bytes.Equal(got, c) {
			t.Errorf("Bytes32 round trip: got %d bytes, want %d", len(got), len(c))
		}
		if got := r.String(); got != string(c) {
			t.Errorf("String round trip mismatch for len %d", len(c))
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
}

func TestBytes32Copies(t *testing.T) {
	w := NewWriter(16)
	w.Bytes32([]byte("hello"))
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes32()
	buf[4] = 'X' // mutate underlying buffer after decode
	if string(got) != "hello" {
		t.Errorf("decoded bytes alias input buffer: %q", got)
	}
}

func TestTruncated(t *testing.T) {
	w := NewWriter(16)
	w.U64(1)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		if r.Err() == nil {
			t.Errorf("cut=%d: expected truncation error", cut)
		}
	}
}

func TestOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxBytesLen+1))
	r := NewReader(hdr[:])
	if got := r.Bytes32(); got != nil {
		t.Errorf("Bytes32 on oversized length = %d bytes, want nil", len(got))
	}
	if r.Err() == nil {
		t.Error("expected ErrTooLarge")
	}
}

func TestTrailingBytes(t *testing.T) {
	w := NewWriter(8)
	w.U32(9)
	w.U8(1)
	r := NewReader(w.Bytes())
	r.U32()
	if err := r.Finish(); err == nil {
		t.Error("Finish with trailing bytes should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte{3}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestReadFrameRejectsHugeHeader(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrameLen+1))
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Error("expected error for oversized frame header")
	}
}

func TestUvarint(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1} {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		if err != nil || got != v || n != len(b) {
			t.Errorf("Uvarint(%d): got %d, n=%d, err=%v", v, got, n, err)
		}
	}
	if _, _, err := Uvarint(nil); err == nil {
		t.Error("Uvarint(nil) should fail")
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(a, b []byte, s string, x uint64) bool {
		w := NewWriter(0)
		w.Bytes32(a)
		w.U64(x)
		w.Bytes32(b)
		w.String(s)
		r := NewReader(w.Bytes())
		ga := r.Bytes32()
		gx := r.U64()
		gb := r.Bytes32()
		gs := r.String()
		return r.Finish() == nil &&
			bytes.Equal(ga, a) && gx == x && bytes.Equal(gb, b) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReaderNeverPanics(t *testing.T) {
	// Decoding arbitrary bytes must never panic, only error: decoders face
	// untrusted peers.
	f := func(b []byte) bool {
		r := NewReader(b)
		_ = r.U8()
		_ = r.Bytes32()
		_ = r.U32()
		_ = r.String()
		_ = r.SliceLen()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeHelpers(t *testing.T) {
	if got := SizeBytes32([]byte("abc")); got != 7 {
		t.Errorf("SizeBytes32 = %d, want 7", got)
	}
	if got := SizeString("abcd"); got != 8 {
		t.Errorf("SizeString = %d, want 8", got)
	}
}

func TestPutU64(t *testing.T) {
	b := PutU64(0x0102030405060708)
	if len(b) != 8 || b[0] != 0x08 || b[7] != 0x01 {
		t.Errorf("PutU64 = %v", b)
	}
}

func TestCheckLen(t *testing.T) {
	if err := CheckLen(10, 20); err != nil {
		t.Errorf("valid length rejected: %v", err)
	}
	if err := CheckLen(-1, 20); err == nil {
		t.Error("negative length accepted")
	}
	if err := CheckLen(MaxBytesLen+1, MaxBytesLen*2); err == nil {
		t.Error("oversized length accepted")
	}
	if err := CheckLen(30, 20); err == nil {
		t.Error("length beyond remaining accepted")
	}
}

func TestFixedBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	got := r.FixedBytes(3)
	if len(got) != 3 || got[0] != 1 {
		t.Errorf("FixedBytes = %v", got)
	}
	if r.FixedBytes(2) != nil || r.Err() == nil {
		t.Error("overread not detected")
	}
}

func TestWriterConveniences(t *testing.T) {
	w := NewWriter(8)
	w.Raw([]byte{1, 2})
	w.String("ab")
	if w.Len() != 8 {
		t.Errorf("Len = %d", w.Len())
	}
	r := NewReader(w.Bytes())
	if got := r.FixedBytes(2); got[1] != 2 {
		t.Errorf("raw bytes = %v", got)
	}
	if got := r.String(); got != "ab" {
		t.Errorf("string = %q", got)
	}
}

func TestBeginEndFrameMatchesWriteFrame(t *testing.T) {
	// The in-place frame builder must produce byte-identical output to the
	// streaming WriteFrame path: receivers cannot tell which encoder ran.
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte{7}, 100000)}
	w := NewWriter(0)
	var want bytes.Buffer
	for _, p := range payloads {
		mark := w.BeginFrame()
		w.Raw(p)
		if err := w.EndFrame(mark); err != nil {
			t.Fatalf("EndFrame: %v", err)
		}
		if err := WriteFrame(&want, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if !bytes.Equal(w.Bytes(), want.Bytes()) {
		t.Error("BeginFrame/EndFrame encoding diverges from WriteFrame")
	}
	r := bytes.NewReader(w.Bytes())
	for _, p := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestAppendFramePayload(t *testing.T) {
	w := NewWriter(0)
	if err := AppendFramePayload(w, []byte("xyz")); err != nil {
		t.Fatalf("AppendFramePayload: %v", err)
	}
	got, err := ReadFrame(bytes.NewReader(w.Bytes()))
	if err != nil || !bytes.Equal(got, []byte("xyz")) {
		t.Errorf("round trip = %q, %v", got, err)
	}
}

func TestEndFrameRejectsOversizedPayload(t *testing.T) {
	// A Writer whose cursor sits MaxFrameLen+4 bytes past the header mark
	// models a payload one byte over the limit without building one byte at
	// a time.
	w := &Writer{buf: make([]byte, 4+MaxFrameLen+4)}
	if err := w.EndFrame(4); err == nil {
		t.Error("EndFrame accepted a payload beyond MaxFrameLen")
	}
}

func TestFrameEncodeZeroAlloc(t *testing.T) {
	// The pooled frame path is the transport's allocation budget: encoding a
	// frame into a caller-held Writer must not allocate at all once the
	// buffer has grown to size (the ring reuses writers across flushes).
	payload := bytes.Repeat([]byte{0x5c}, 1024)
	w := NewWriter(2048)
	if allocs := testing.AllocsPerRun(1000, func() {
		w.Reset()
		mark := w.BeginFrame()
		w.Raw(payload)
		if err := w.EndFrame(mark); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("frame encode allocates %.1f times per op, want 0", allocs)
	}
}

// chunkingReader hands out at most n bytes per Read, exercising partial
// fills and frames spanning chunk refills.
type chunkingReader struct {
	data []byte
	n    int
}

func (c *chunkingReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data) {
		n = len(c.data)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestChunkReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{},
		[]byte("a"),
		bytes.Repeat([]byte{3}, 100),
		bytes.Repeat([]byte{7}, chunkSize+5), // larger than one chunk
		[]byte("tail"),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	// Dribble the stream in awkward sizes so frames straddle refills and
	// chunk boundaries.
	for _, step := range []int{1, 3, 1000, 1 << 20} {
		cr := NewChunkReader(&chunkingReader{data: append([]byte(nil), buf.Bytes()...), n: step})
		var got [][]byte
		for range payloads {
			p, err := cr.ReadFrame()
			if err != nil {
				t.Fatalf("step %d: ReadFrame: %v", step, err)
			}
			got = append(got, p)
		}
		// Earlier frames must survive later reads: chunks are never recycled.
		for i, p := range payloads {
			if !bytes.Equal(got[i], p) {
				t.Errorf("step %d: frame %d mismatch: got %d bytes, want %d", step, i, len(got[i]), len(p))
			}
		}
		if _, err := cr.ReadFrame(); !errors.Is(err, io.EOF) {
			t.Errorf("step %d: at stream end got %v, want io.EOF", step, err)
		}
	}
}

func TestChunkReaderTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		cr := NewChunkReader(bytes.NewReader(full[:cut]))
		if _, err := cr.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestChunkReaderRejectsHugeHeader(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrameLen+1))
	cr := NewChunkReader(bytes.NewReader(hdr[:]))
	if _, err := cr.ReadFrame(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
}
