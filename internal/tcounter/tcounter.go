// Package tcounter implements the trusted monotonic-counter subsystem that
// Hybster (and hence Troxy's prototype) relies on to reduce the replica
// count to 2f+1. It is the TrInc/TrInX analogue: a small trusted service
// that certifies (counter, value, message-digest) bindings with a key shared
// only among trusted subsystems, and guarantees that
//
//   - each counter value is certified at most once (no equivocation), and
//   - values are strictly increasing (no rollback).
//
// The subsystem runs inside an enclave (internal/enclave) and is reachable
// from the untrusted replica part only through its ecall facade; the
// certification key arrives via post-attestation provisioning. Trusted code
// co-located in the same enclave (the Troxy) may call it directly.
package tcounter

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"sync"

	"github.com/troxy-bft/troxy/internal/enclave"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Well-known counter IDs. Ordering counters are indexed by view number and
// therefore use the low ID space; control counters live high.
const (
	// ViewChangeCounter certifies view-change messages.
	ViewChangeCounter uint32 = 1<<31 + iota

	// NewViewCounter certifies new-view messages.
	NewViewCounter
)

// OrderCounter returns the ordering-counter ID for a view.
func OrderCounter(view uint64) uint32 { return uint32(view & 0x7fffffff) }

// LaneOf returns the certification lane of a sequence number under a
// pipeline of the given depth: lanes stripe the sequence space round-robin,
// so any window of depth consecutive sequence numbers touches each lane at
// most once. Depth <= 1 collapses to a single lane.
func LaneOf(seq uint64, depth int) int {
	if depth <= 1 {
		return 0
	}
	return int((seq - 1) % uint64(depth))
}

// OrderLaneCounter returns the ordering-counter ID for (view, lane) under a
// pipeline of the given depth. A counter certifies strictly increasing
// values, which forces in-order certification; partitioning the sequence
// space into depth lanes — each lane a distinct counter whose values within
// a view are exactly seq, seq+depth, seq+2*depth, ... — keeps every
// certified statement on a monotonic counter while letting statements for
// different lanes be certified (and voted on) in any order. The receiver's
// per-lane continuity check (next value in a lane is previous + depth)
// preserves the hole-freedom and no-equivocation arguments lane by lane.
//
// Depth <= 1 reduces to OrderCounter, so the unpipelined wire format is
// unchanged. The masking keeps all lane counters below the control-counter
// space at 1<<31 (ViewChangeCounter, NewViewCounter).
func OrderLaneCounter(view uint64, lane, depth int) uint32 {
	if depth <= 1 {
		return OrderCounter(view)
	}
	return uint32((view*uint64(depth) + uint64(lane)) & 0x7fffffff)
}

// Errors returned by the subsystem.
var (
	// ErrNotProvisioned reports certification before the key arrived.
	ErrNotProvisioned = errors.New("tcounter: not provisioned")

	// ErrNotMonotonic reports an attempt to certify a value at or below the
	// counter's last certified value.
	ErrNotMonotonic = errors.New("tcounter: value not monotonically increasing")
)

// SecretName is the provisioning key under which the certification secret is
// delivered to the enclave.
const SecretName = "counter-key"

// Subsystem is the trusted-counter state of one replica. It is safe for
// concurrent use.
type Subsystem struct {
	owner msg.NodeID

	mu       sync.Mutex
	key      []byte // troxy:secret certification key shared among the deployment's trusted counters
	mac      hash.Hash
	counters map[uint32]uint64
	certs    uint64
}

// NewSubsystem creates the (unprovisioned) subsystem for a replica.
func NewSubsystem(owner msg.NodeID) *Subsystem {
	return &Subsystem{owner: owner, counters: make(map[uint32]uint64)}
}

// Reset wipes volatile state (counters and key); used on enclave restart.
func (s *Subsystem) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.key = nil
	s.mac = nil
	s.counters = make(map[uint32]uint64)
	s.certs = 0
}

// SetKey installs the certification secret (from provisioning).
func (s *Subsystem) SetKey(key []byte) {
	k := make([]byte, len(key))
	copy(k, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.key = k
	s.mac = hmac.New(sha256.New, k)
}

// Owner returns the replica this subsystem belongs to.
func (s *Subsystem) Owner() msg.NodeID { return s.owner }

func certInput(replica msg.NodeID, counter uint32, value uint64, digest msg.Digest) []byte {
	w := wire.NewWriter(64)
	w.String("tcounter-cert")
	w.U32(uint32(replica))
	w.U32(counter)
	w.U64(value)
	w.Raw(digest[:])
	return w.Bytes()
}

// Certify binds digest to the next value of the given counter. The value
// must be strictly greater than the last certified value; the first
// certified value of a counter may be arbitrary (>0), which lets a new
// leader start its ordering counter at the sequence number where the
// previous view ended.
func (s *Subsystem) Certify(counter uint32, value uint64, digest msg.Digest) (msg.CounterCert, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.key == nil {
		return msg.CounterCert{}, ErrNotProvisioned
	}
	last, used := s.counters[counter]
	if used && value <= last {
		return msg.CounterCert{}, fmt.Errorf("%w: counter %d at %d, asked %d",
			ErrNotMonotonic, counter, last, value)
	}
	if !used && value == 0 {
		return msg.CounterCert{}, fmt.Errorf("%w: first value must be positive", ErrNotMonotonic)
	}
	s.counters[counter] = value
	s.certs++

	s.mac.Reset()
	s.mac.Write(certInput(s.owner, counter, value, digest))
	return msg.CounterCert{
		Replica: s.owner,
		Counter: counter,
		Value:   value,
		MAC:     s.mac.Sum(nil),
	}, nil
}

// Verify checks a certificate produced by any replica's subsystem against
// the digest it allegedly binds.
func (s *Subsystem) Verify(cert msg.CounterCert, digest msg.Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mac == nil || len(cert.MAC) != sha256.Size {
		return false
	}
	s.mac.Reset()
	s.mac.Write(certInput(cert.Replica, cert.Counter, cert.Value, digest))
	return hmac.Equal(s.mac.Sum(nil), cert.MAC)
}

// Value returns the last certified value of a counter (0 if unused).
func (s *Subsystem) Value(counter uint32) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[counter]
}

// Certifications returns the number of successful Certify calls since the
// last Reset. Batching tests assert amortization against this counter: one
// certification must cover a whole batch.
func (s *Subsystem) Certifications() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.certs
}

// Authority is the interface through which protocol code (which runs in the
// untrusted replica part) uses the trusted counters. The enclave-backed
// implementation crosses the boundary per call, which is exactly where the
// paper's JNI+SGX overhead sits.
type Authority interface {
	// Certify binds digest to value on counter; it fails if the binding
	// would violate monotonicity.
	Certify(counter uint32, value uint64, digest msg.Digest) (msg.CounterCert, error)

	// Verify checks a certificate against a digest.
	Verify(cert msg.CounterCert, digest msg.Digest) bool
}

// Direct adapts a Subsystem to Authority without an enclave boundary (used
// by trusted code co-located in the same enclave, and by the "ctroxy"
// configuration of the evaluation that runs outside SGX).
type Direct struct {
	S *Subsystem
}

// Certify implements Authority.
func (d Direct) Certify(counter uint32, value uint64, digest msg.Digest) (msg.CounterCert, error) {
	return d.S.Certify(counter, value, digest)
}

// Verify implements Authority.
func (d Direct) Verify(cert msg.CounterCert, digest msg.Digest) bool {
	return d.S.Verify(cert, digest)
}

var _ Authority = Direct{}

// ECall names exposed by the counter subsystem when hosted in an enclave.
const (
	ECallCertify = "counter_certify"
	ECallVerify  = "counter_verify"
)

// ECallHandlers returns the ecall table fragment for hosting s inside an
// enclave; Troxy merges it into its own fixed ecall table.
func ECallHandlers(s *Subsystem) map[string]func([]byte) ([]byte, error) {
	return map[string]func([]byte) ([]byte, error){
		ECallCertify: func(arg []byte) ([]byte, error) {
			r := wire.NewReader(arg)
			counter := r.U32()
			value := r.U64()
			var digest msg.Digest
			copy(digest[:], r.FixedBytes(len(digest)))
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("tcounter: certify args: %w", err)
			}
			cert, err := s.Certify(counter, value, digest)
			if err != nil {
				return nil, err
			}
			w := wire.NewWriter(64)
			cert.MarshalWire(w)
			return w.Bytes(), nil
		},
		ECallVerify: func(arg []byte) ([]byte, error) {
			r := wire.NewReader(arg)
			var cert msg.CounterCert
			if err := cert.UnmarshalWire(r); err != nil {
				return nil, fmt.Errorf("tcounter: verify args: %w", err)
			}
			var digest msg.Digest
			copy(digest[:], r.FixedBytes(len(digest)))
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("tcounter: verify args: %w", err)
			}
			if s.Verify(cert, digest) {
				return []byte{1}, nil
			}
			return []byte{0}, nil
		},
	}
}

// Hosted wraps a Subsystem as standalone enclave-trusted code, for replicas
// that run only the counter subsystem inside SGX (the baseline Hybster
// configuration, which has no Troxy).
type Hosted struct {
	S *Subsystem
}

var _ enclave.Trusted = Hosted{}

// ECalls implements enclave.Trusted.
func (h Hosted) ECalls() map[string]func([]byte) ([]byte, error) {
	return ECallHandlers(h.S)
}

// OnStart implements enclave.Trusted.
func (h Hosted) OnStart(*enclave.Services) { h.S.Reset() }

// Provision implements enclave.Trusted.
func (h Hosted) Provision(secrets map[string][]byte) error {
	key, ok := secrets[SecretName]
	if !ok {
		return ErrNotProvisioned
	}
	h.S.SetKey(key)
	return nil
}

// EnclaveAuthority is the untrusted-side Authority that crosses an enclave
// boundary per operation.
type EnclaveAuthority struct {
	E *enclave.Enclave
}

// Certify implements Authority via the counter_certify ecall.
func (a EnclaveAuthority) Certify(counter uint32, value uint64, digest msg.Digest) (msg.CounterCert, error) {
	w := wire.NewWriter(48)
	w.U32(counter)
	w.U64(value)
	w.Raw(digest[:])
	out, err := a.E.ECall(ECallCertify, w.Bytes())
	if err != nil {
		return msg.CounterCert{}, err
	}
	r := wire.NewReader(out)
	var cert msg.CounterCert
	if err := cert.UnmarshalWire(r); err != nil {
		return msg.CounterCert{}, fmt.Errorf("tcounter: certify result: %w", err)
	}
	if err := r.Finish(); err != nil {
		return msg.CounterCert{}, fmt.Errorf("tcounter: certify result: %w", err)
	}
	return cert, nil
}

// Verify implements Authority via the counter_verify ecall.
func (a EnclaveAuthority) Verify(cert msg.CounterCert, digest msg.Digest) bool {
	w := wire.NewWriter(96)
	cert.MarshalWire(w)
	w.Raw(digest[:])
	out, err := a.E.ECall(ECallVerify, w.Bytes())
	if err != nil {
		return false
	}
	return len(out) == 1 && out[0] == 1
}

var _ Authority = EnclaveAuthority{}
