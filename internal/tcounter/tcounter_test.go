package tcounter

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/troxy-bft/troxy/internal/enclave"
	"github.com/troxy-bft/troxy/internal/msg"
)

func provisioned(owner msg.NodeID) *Subsystem {
	s := NewSubsystem(owner)
	s.SetKey([]byte("shared-counter-key"))
	return s
}

func TestCertifyVerify(t *testing.T) {
	a := provisioned(0)
	b := provisioned(1)

	d := msg.DigestOf([]byte("prepare"))
	cert, err := a.Certify(OrderCounter(0), 1, d)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if cert.Replica != 0 || cert.Counter != OrderCounter(0) || cert.Value != 1 {
		t.Errorf("cert fields = %+v", cert)
	}
	if !b.Verify(cert, d) {
		t.Error("peer subsystem rejected valid certificate")
	}
	if b.Verify(cert, msg.DigestOf([]byte("other"))) {
		t.Error("certificate accepted for wrong digest")
	}

	forged := cert
	forged.Value = 2
	if b.Verify(forged, d) {
		t.Error("value-modified certificate accepted")
	}
	forged = cert
	forged.Replica = 1
	if b.Verify(forged, d) {
		t.Error("owner-modified certificate accepted")
	}
}

func TestMonotonicity(t *testing.T) {
	s := provisioned(0)
	d := msg.DigestOf([]byte("m"))

	if _, err := s.Certify(1, 5, d); err != nil { // first value may be arbitrary
		t.Fatalf("first certify: %v", err)
	}
	if _, err := s.Certify(1, 5, d); !errors.Is(err, ErrNotMonotonic) {
		t.Errorf("re-certify same value: %v", err)
	}
	if _, err := s.Certify(1, 4, d); !errors.Is(err, ErrNotMonotonic) {
		t.Errorf("certify lower value: %v", err)
	}
	if _, err := s.Certify(1, 6, d); err != nil {
		t.Errorf("certify next value: %v", err)
	}
	if got := s.Value(1); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
	// Independent counters do not interfere.
	if _, err := s.Certify(2, 1, d); err != nil {
		t.Errorf("independent counter: %v", err)
	}
	if _, err := s.Certify(1, 0, d); !errors.Is(err, ErrNotMonotonic) {
		t.Errorf("zero value: %v", err)
	}
}

func TestZeroFirstValueRejected(t *testing.T) {
	s := provisioned(0)
	if _, err := s.Certify(9, 0, msg.Digest{}); !errors.Is(err, ErrNotMonotonic) {
		t.Errorf("first value 0: %v", err)
	}
}

func TestUnprovisioned(t *testing.T) {
	s := NewSubsystem(0)
	if _, err := s.Certify(1, 1, msg.Digest{}); !errors.Is(err, ErrNotProvisioned) {
		t.Errorf("unprovisioned certify: %v", err)
	}
	p := provisioned(1)
	cert, err := p.Certify(1, 1, msg.Digest{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Verify(cert, msg.Digest{}) {
		t.Error("unprovisioned subsystem verified a certificate")
	}
}

func TestDifferentKeysDisagree(t *testing.T) {
	a := NewSubsystem(0)
	a.SetKey([]byte("key-a"))
	b := NewSubsystem(1)
	b.SetKey([]byte("key-b"))
	cert, err := a.Certify(1, 1, msg.Digest{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Verify(cert, msg.Digest{}) {
		t.Error("certificate verified under different key")
	}
}

func TestReset(t *testing.T) {
	s := provisioned(0)
	if _, err := s.Certify(1, 10, msg.Digest{}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if _, err := s.Certify(1, 1, msg.Digest{}); !errors.Is(err, ErrNotProvisioned) {
		t.Errorf("reset must drop the key: %v", err)
	}
}

func TestOrderCounterIDs(t *testing.T) {
	if OrderCounter(0) == ViewChangeCounter || OrderCounter(1) == NewViewCounter {
		t.Error("ordering counters collide with control counters")
	}
	if OrderCounter(3) != 3 {
		t.Errorf("OrderCounter(3) = %d", OrderCounter(3))
	}
}

func TestLaneCounters(t *testing.T) {
	// Depth <= 1 collapses to the unpipelined scheme: one lane, the classic
	// per-view counter ID.
	for _, depth := range []int{0, 1} {
		if LaneOf(7, depth) != 0 {
			t.Errorf("LaneOf(7, %d) = %d, want 0", depth, LaneOf(7, depth))
		}
		if OrderLaneCounter(3, 0, depth) != OrderCounter(3) {
			t.Errorf("OrderLaneCounter(3, 0, %d) != OrderCounter(3)", depth)
		}
	}

	// Lanes stripe the sequence space round-robin: a window of depth
	// consecutive sequence numbers touches each lane exactly once.
	const depth = 4
	seen := make(map[int]bool)
	for seq := uint64(9); seq < 9+depth; seq++ {
		seen[LaneOf(seq, depth)] = true
	}
	if len(seen) != depth {
		t.Errorf("window of %d seqs covered %d lanes, want %d", depth, len(seen), depth)
	}
	// Within a lane the values step by exactly depth.
	if LaneOf(2, depth) != LaneOf(2+depth, depth) {
		t.Error("seq and seq+depth must share a lane")
	}

	// Distinct (view, lane) pairs must map to distinct counter IDs, and no
	// lane counter may collide with the control counters.
	ids := make(map[uint32]string)
	for view := uint64(0); view < 8; view++ {
		for lane := 0; lane < depth; lane++ {
			id := OrderLaneCounter(view, lane, depth)
			if id >= ViewChangeCounter {
				t.Errorf("lane counter (view=%d lane=%d) = %d collides with control space", view, lane, id)
			}
			if prev, dup := ids[id]; dup {
				t.Errorf("counter %d assigned to both %s and (view=%d lane=%d)", id, prev, view, lane)
			}
			ids[id] = fmt.Sprintf("(view=%d lane=%d)", view, lane)
		}
	}

	// The subsystem accepts per-lane certification out of sequence order:
	// seq 2 (lane 1) before seq 1 (lane 0), then 5 and 6 riding their lanes.
	s := provisioned(0)
	for _, seq := range []uint64{2, 1, 4, 3, 6, 5} {
		c := OrderLaneCounter(0, LaneOf(seq, depth), depth)
		if _, err := s.Certify(c, seq, msg.Digest{1}); err != nil {
			t.Fatalf("lane certify seq %d: %v", seq, err)
		}
	}
	// ...but still refuses to re-certify or roll back within a lane.
	c := OrderLaneCounter(0, LaneOf(5, depth), depth)
	if _, err := s.Certify(c, 5, msg.Digest{2}); !errors.Is(err, ErrNotMonotonic) {
		t.Errorf("re-certifying seq 5 on its lane: %v, want ErrNotMonotonic", err)
	}
}

func TestQuickMonotoneInvariant(t *testing.T) {
	// Property: for any sequence of certify attempts, the accepted values on
	// a counter are strictly increasing.
	f := func(values []uint16) bool {
		s := provisioned(0)
		var accepted []uint64
		for _, raw := range values {
			v := uint64(raw)
			if _, err := s.Certify(7, v, msg.Digest{}); err == nil {
				accepted = append(accepted, v)
			}
		}
		for i := 1; i < len(accepted); i++ {
			if accepted[i] <= accepted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// enclaveHost hosts a counter subsystem inside a simulated enclave for the
// facade tests.
type enclaveHost struct {
	s *Subsystem
}

func (h *enclaveHost) ECalls() map[string]func([]byte) ([]byte, error) {
	return ECallHandlers(h.s)
}

func (h *enclaveHost) OnStart(*enclave.Services) { h.s.Reset() }

func (h *enclaveHost) Provision(secrets map[string][]byte) error {
	key, ok := secrets[SecretName]
	if !ok {
		return errors.New("missing counter key")
	}
	h.s.SetKey(key)
	return nil
}

func TestEnclaveAuthority(t *testing.T) {
	platform := enclave.NewPlatformWithKey([]byte("hw"))
	host := &enclaveHost{s: NewSubsystem(2)}
	enc, err := platform.Launch(
		enclave.Definition{Name: "tc", CodeIdentity: "tc-v1"}, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Provision(map[string][]byte{SecretName: []byte("k")}); err != nil {
		t.Fatal(err)
	}

	auth := EnclaveAuthority{E: enc}
	d := msg.DigestOf([]byte("x"))
	cert, err := auth.Certify(5, 1, d)
	if err != nil {
		t.Fatalf("Certify via ecall: %v", err)
	}
	if cert.Replica != 2 || cert.Value != 1 {
		t.Errorf("cert = %+v", cert)
	}
	if !auth.Verify(cert, d) {
		t.Error("Verify via ecall rejected valid cert")
	}
	if auth.Verify(cert, msg.DigestOf([]byte("y"))) {
		t.Error("Verify via ecall accepted wrong digest")
	}
	if _, err := auth.Certify(5, 1, d); err == nil {
		t.Error("monotonicity not enforced through ecall")
	}

	// Transition accounting: 4 ecalls so far (certify, verify, verify,
	// failed certify).
	if got := enc.Stats().Transitions; got != 4 {
		t.Errorf("transitions = %d, want 4", got)
	}

	// Restart wipes the key: the authority stops working until
	// re-provisioned (rollback does not resurrect old counter state).
	enc.Restart()
	if _, err := auth.Certify(5, 10, d); err == nil {
		t.Error("certify succeeded after restart without provisioning")
	}
}

func TestDirectAuthority(t *testing.T) {
	s := provisioned(1)
	var auth Authority = Direct{S: s}
	d := msg.DigestOf([]byte("z"))
	cert, err := auth.Certify(1, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	if !auth.Verify(cert, d) {
		t.Error("direct verify failed")
	}
}
