package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestParseGoroutineID(t *testing.T) {
	cases := []struct {
		in   string
		id   string
		ok   bool
		desc string
	}{
		{"goroutine 17 [running]:\nmain.main()", "17", true, "running header"},
		{"goroutine 1 [chan receive]:\nfoo()", "1", true, "blocked header"},
		{"not a header", "", false, "garbage"},
		{"goroutine x [running]:", "", false, "non-numeric id"},
		{"goroutine ", "", false, "truncated"},
	}
	for _, c := range cases {
		id, ok := parseGoroutineID(c.in)
		if id != c.id || ok != c.ok {
			t.Errorf("%s: parseGoroutineID = (%q, %v), want (%q, %v)", c.desc, id, ok, c.id, c.ok)
		}
	}
}

func TestLeakedSinceDetectsAndDrains(t *testing.T) {
	base := make(map[string]bool)
	for _, g := range liveGoroutines() {
		base[g.id] = true
	}

	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-block
		close(done)
	}()

	// The blocked goroutine must show up as a leak against the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaked := leakedSince(base)
		if len(leaked) == 1 && strings.Contains(leaked[0].stack, "TestLeakedSinceDetectsAndDrains") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocked goroutine not reported as leaked: %v", leaked)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// After it exits, the report must drain to empty.
	close(block)
	<-done
	deadline = time.Now().Add(2 * time.Second)
	for {
		if len(leakedSince(base)) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("leak report did not drain after the goroutine exited")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckGoroutinesCleanExit(t *testing.T) {
	CheckGoroutines(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
