// Package testutil provides shared test helpers. It must only be imported
// from _test.go files.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutines alive when it is called and, via
// t.Cleanup, fails the test if new ones are still running once the test body
// (including its own deferred Close calls) has finished. Shutdown is
// asynchronous almost everywhere — read loops notice a closed conn only when
// their blocking Read returns — so the check polls for a grace period before
// declaring a leak.
//
// Call it first in the test, before anything that spawns goroutines:
//
//	func TestServer(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := make(map[string]bool)
	for _, g := range liveGoroutines() {
		base[g.id] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked := leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				for _, g := range leaked {
					t.Errorf("leaked goroutine:\n%s", g.stack)
				}
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// goroutine is one parsed entry of a full runtime.Stack dump.
type goroutine struct {
	id    string
	stack string
}

// leakedSince returns goroutines that are neither in the baseline snapshot
// nor recognizably benign.
func leakedSince(base map[string]bool) []goroutine {
	var leaked []goroutine
	for _, g := range liveGoroutines() {
		if !base[g.id] && !benign(g.stack) {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// benign reports stacks that are allowed to outlive a test: the runtime's and
// the testing package's own workers, which come and go on their own schedule.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run(",
		"testing.Main(",
		"testing.runTests(",
		"testing.(*M).startAlarm",
		"runtime.ReadTrace",
		"os/signal.signal_recv",
		"runtime.gc(",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// liveGoroutines parses a full runtime.Stack dump into per-goroutine records.
// The current goroutine is excluded (it is the one running the check).
func liveGoroutines() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	self := currentGoroutineID()
	var gs []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		id, ok := parseGoroutineID(block)
		if !ok || id == self {
			continue
		}
		gs = append(gs, goroutine{id: id, stack: block})
	}
	return gs
}

func currentGoroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	id, _ := parseGoroutineID(string(buf))
	return id
}

// parseGoroutineID extracts the numeric ID from a "goroutine N [state]:"
// header line.
func parseGoroutineID(block string) (string, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(block, prefix) {
		return "", false
	}
	rest := block[len(prefix):]
	end := strings.IndexByte(rest, ' ')
	if end <= 0 {
		return "", false
	}
	id := rest[:end]
	for i := 0; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return "", false
		}
	}
	return id, true
}
