package hybster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
)

// These tests pin the two view-synchronization paths for a replica that
// slept through a view change: the NEW-VIEW attached to a state-transfer
// prefix, and the NewViewRequest solicitation triggered by deferring
// certified traffic from a future view. Before either existed, such a
// replica installed the transferred checkpoint but stayed in its stale view
// forever — skipping every prefix entry, deferring the cluster's live
// PREPAREs, and silently ceasing to vote (the large-state soak caught it as
// a replica wedged exactly at its transferred checkpoint).

// runViewChangeWhileDown crashes replica 2, then forces a view change among
// the survivors by crashing the view-0 leader until the escalation protocol
// moves the cluster to a later view, and finally restores replica 2 once
// ordering has resumed and checkpoints have advanced past its state.
func runViewChangeWhileDown(t *testing.T, cl *cluster) (behind uint64) {
	t.Helper()
	cl.net.Run(100 * time.Millisecond)
	cl.net.Crash(2)
	cl.net.Run(900 * time.Millisecond)

	// With the leader down and fresh requests pending, replica 1 escalates
	// view changes it cannot complete alone; when replica 0 returns it joins
	// the highest one and the view installs — all while replica 2 is
	// crashed, so it never sees the VIEW-CHANGE or NEW-VIEW traffic.
	cl.net.Crash(0)
	mid := &testClient{id: 98, n: 3, f: 1, ops: toOps(opScript(20))}
	cl.net.AttachConfig(98, mid, simnet.NodeConfig{})
	cl.net.Run(2500 * time.Millisecond)
	cl.net.Restore(0)
	cl.net.Run(12 * time.Second)

	if v := cl.replicas[0].core.View(); v == 0 {
		t.Fatalf("no view change completed while replica 2 was down (view still %d)", v)
	}
	if !mid.done {
		t.Fatalf("mid-crash client stalled across the view change: %d/%d", mid.current, len(mid.ops))
	}
	if !cl.client.done {
		t.Fatalf("client stalled across the view change: %d/%d", cl.client.current, len(cl.client.ops))
	}
	behind = cl.replicas[2].core.LastExecuted()
	cl.net.Restore(2)
	return behind
}

// finishAndCheckConvergence drives fresh traffic past the restart and
// asserts the joiner caught up: same view, same executed state.
func finishAndCheckConvergence(t *testing.T, cl *cluster, behind uint64) {
	t.Helper()
	extra := &testClient{id: 99, n: 3, f: 1, ops: toOps(opScript(30))}
	cl.net.AttachConfig(99, extra, simnet.NodeConfig{})
	cl.net.Run(60 * time.Second)
	if !extra.done {
		t.Fatalf("extra client stalled: %d/30", extra.current)
	}

	r2 := cl.replicas[2].core
	if got, want := r2.View(), cl.replicas[0].core.View(); got != want {
		t.Errorf("replica 2 finished in view %d, cluster in view %d: joiner never adopted the current view", got, want)
	}
	if r2.LastExecuted() <= behind {
		t.Errorf("replica 2 did not catch up: %d -> %d", behind, r2.LastExecuted())
	}
	if got, want := r2.LastExecuted(), cl.replicas[0].core.LastExecuted(); got != want {
		t.Errorf("replica 2 executed to %d, cluster to %d", got, want)
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica 2 state diverged after catch-up")
	}
}

// TestJoinerAdoptsViewFromStatePrefix forces the prefix path: every NEW-VIEW
// message toward replica 2 is dropped (so neither the original broadcast nor
// a solicitation answer can reach it), leaving the copy embedded in the
// state-transfer prefix as its only evidence of the view change.
func TestJoinerAdoptsViewFromStatePrefix(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(40)...)
	cl.net.SetFault(judgeFunc(func(_ time.Duration, _, to msg.NodeID, kind msg.Kind) faultplane.Decision {
		if kind == msg.KindNewView && to == 2 {
			return faultplane.Decision{Drop: true}
		}
		return faultplane.Decision{}
	}))

	behind := runViewChangeWhileDown(t, cl)
	finishAndCheckConvergence(t, cl, behind)

	// With every other NEW-VIEW route severed, an adoption can only have come
	// from the copy embedded in the StatePrefix. Whether the prefix also
	// carried in-flight entries depends on where the checkpoint boundary fell
	// when the transfer was served; the entry-replay path itself is pinned
	// deterministically by TestPrefixReplayAfterViewAdoption below.
	if m := cl.replicas[2].core.Metrics(); m.ViewAdoptions == 0 {
		t.Error("replica 2 installed no view from the state-transfer prefix")
	}
}

// TestStaleReplicaSolicitsNewView forces the solicitation path: every
// StatePrefix toward replica 2 is dropped (no prefix, no embedded NEW-VIEW),
// so the only way it can learn the view is deferring the cluster's live
// higher-view traffic, soliciting with NewViewRequest, and verifying the
// relayed answer.
func TestStaleReplicaSolicitsNewView(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(40)...)
	cl.net.SetFault(judgeFunc(func(_ time.Duration, _, to msg.NodeID, kind msg.Kind) faultplane.Decision {
		if kind == msg.KindStatePrefix && to == 2 {
			return faultplane.Decision{Drop: true}
		}
		return faultplane.Decision{}
	}))

	behind := runViewChangeWhileDown(t, cl)
	finishAndCheckConvergence(t, cl, behind)

	m := cl.replicas[2].core.Metrics()
	if m.ViewSolicits == 0 {
		t.Error("replica 2 deferred higher-view traffic without soliciting the NEW-VIEW")
	}
	if m.ViewAdoptions == 0 {
		t.Error("replica 2 installed no view from relayed evidence")
	}
	if relays := cl.replicas[0].core.Metrics().NewViewRelays + cl.replicas[1].core.Metrics().NewViewRelays; relays == 0 {
		t.Error("no peer answered the solicitation")
	}
}

// captureEnv satisfies node.Env and records outbound envelopes for manual
// delivery, so the exact interleaving around a replica that sleeps through a
// view change can be scripted without a simulated network.
type captureEnv struct {
	id  msg.NodeID
	out []*msg.Envelope
}

func (e *captureEnv) Self() msg.NodeID                          { return e.id }
func (e *captureEnv) Now() time.Duration                        { return 0 }
func (e *captureEnv) Send(ev *msg.Envelope)                     { e.out = append(e.out, ev) }
func (e *captureEnv) SetTimer(time.Duration, node.TimerKey)     {}
func (e *captureEnv) CancelTimer(node.TimerKey)                 {}
func (e *captureEnv) Rand() *rand.Rand                          { return rand.New(rand.NewSource(1)) }
func (e *captureEnv) Charge(node.Profile, node.ChargeKind, int) {}
func (e *captureEnv) Logf(string, ...any)                       {}

// shuttleNet moves captured envelopes between standalone cores in node-id
// order until the system quiesces. Traffic addressed to a node not in live is
// stashed, modeling a crashed replica whose inbound queue drains later.
type shuttleNet struct {
	ids      []msg.NodeID
	replicas map[msg.NodeID]*testReplica
	envs     map[msg.NodeID]*captureEnv
	live     map[msg.NodeID]bool
	stash    []*msg.Envelope
}

func newShuttleNet(chunkSize, window int, ids ...msg.NodeID) *shuttleNet {
	n := &shuttleNet{
		ids:      ids,
		replicas: make(map[msg.NodeID]*testReplica),
		envs:     make(map[msg.NodeID]*captureEnv),
		live:     make(map[msg.NodeID]bool),
	}
	for _, id := range ids {
		n.replicas[id] = newStateCore(id, chunkSize, window)
		n.envs[id] = &captureEnv{id: id}
		n.live[id] = true
	}
	return n
}

func (n *shuttleNet) run() {
	for {
		moved := false
		for _, id := range n.ids {
			pending := n.envs[id].out
			n.envs[id].out = nil
			for _, ev := range pending {
				if !n.live[ev.To] {
					n.stash = append(n.stash, ev)
					continue
				}
				if r, ok := n.replicas[ev.To]; ok {
					moved = true
					r.OnEnvelope(n.envs[ev.To], ev)
				}
			}
		}
		if !moved {
			return
		}
	}
}

// TestPrefixReplayAfterViewAdoption pins the entry-replay half of prefix
// adoption deterministically: a real view change runs between replicas 0 and 1
// while replica 2 sleeps, the new leader orders past a checkpoint boundary
// leaving one prepared entry above it, and replica 2 then wakes hearing only
// checkpoint gossip. Its state fetch must install the checkpoint, adopt view 1
// from the NEW-VIEW certificate embedded in the prefix, verify the carried
// entry against the leader's counter certificate, and execute it — landing on
// the exact application state of the survivors.
func TestPrefixReplayAfterViewAdoption(t *testing.T) {
	const chunkSize, window = 32, 4
	net := newShuttleNet(chunkSize, window, 0, 1, 2)
	net.live[2] = false
	r0, r1, r2 := net.replicas[0], net.replicas[1], net.replicas[2]

	// A certified view change replica 2 never sees.
	r0.core.startViewChange(net.envs[0], 1)
	r1.core.startViewChange(net.envs[1], 1)
	net.run()
	if v0, v1 := r0.core.View(), r1.core.View(); v0 != 1 || v1 != 1 {
		t.Fatalf("view change did not install: views %d, %d", v0, v1)
	}

	// The view-1 leader orders nine entries: checkpoint stabilizes at 8,
	// entry 9 stays above it as the certified prefix a fetcher must replay.
	for i := 1; i <= 9; i++ {
		r1.core.Submit(net.envs[1], &msg.OrderRequest{
			Origin: -1, Client: 7, ClientSeq: uint64(i),
			Op: []byte(fmt.Sprintf("PUT key-%02d value-%02d", i, i)),
		})
		net.run()
	}
	if got := r0.core.LastExecuted(); got != 9 {
		t.Fatalf("survivors executed to %d, want 9", got)
	}
	if r0.core.stableSeq != 8 || r1.core.stableSeq != 8 {
		t.Fatalf("stable checkpoint at %d/%d, want 8", r0.core.stableSeq, r1.core.stableSeq)
	}

	// Replica 2 wakes hearing only the checkpoint gossip from its sleep —
	// crucially not the NEW-VIEW broadcast — so the prefix is its only
	// evidence of the view change.
	net.live[2] = true
	for _, ev := range net.stash {
		if ev.To == 2 && ev.Kind == msg.KindCheckpoint {
			r2.OnEnvelope(net.envs[2], ev)
		}
	}
	net.stash = nil
	net.run()

	m := r2.core.Metrics()
	if got := r2.core.View(); got != 1 {
		t.Fatalf("replica 2 in view %d after fetch, want 1 (metrics %+v)", got, m)
	}
	if m.ViewAdoptions != 1 {
		t.Errorf("ViewAdoptions = %d, want 1", m.ViewAdoptions)
	}
	if m.PrefixEntriesInstalled != 1 || m.PrefixResumes != 1 {
		t.Errorf("prefix replay: entries %d, resumes %d, want 1/1",
			m.PrefixEntriesInstalled, m.PrefixResumes)
	}
	if got := r2.core.LastExecuted(); got != 9 {
		t.Errorf("replica 2 executed to %d, want 9 (prefix entry not replayed)", got)
	}
	if !bytes.Equal(r2.core.cfg.App.(*app.Store).Snapshot(), r0.core.cfg.App.(*app.Store).Snapshot()) {
		t.Error("replica 2 state diverged from the survivors")
	}
}
