package hybster

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
)

// Fuzz targets for the state-transfer decoders and the chunk assembler.
// Manifests, composite heads and chunks all arrive from peers that may be
// Byzantine; decoding must never panic, and whatever decodes must be
// internally consistent and canonical (re-encoding is a fixed point).

// fuzzSnapshot builds one small chunked snapshot shared by the fuzz targets
// (read-only; each iteration works on copies).
func fuzzSnapshot(chunkSize, window int) (*testReplica, *chunkedSnapshot) {
	srv := newStateCore(0, chunkSize, window)
	store := srv.core.cfg.App.(*app.Store)
	for i := 0; i < 12; i++ {
		store.Execute([]byte(fmt.Sprintf("PUT key-%d value-%d", i, i)))
	}
	srv.core.clients[3] = &clientRecord{lastSeq: 1, seq: 2, result: []byte("OK")}
	srv.core.clients[9] = &clientRecord{seq: 5, read: true, keys: []string{"key-1"}}
	return srv, srv.core.buildChunkedSnapshot()
}

func FuzzManifestDecode(f *testing.F) {
	_, cs := fuzzSnapshot(16, 4)
	f.Add(cs.manifestBytes)
	f.Add(cs.manifestBytes[:len(cs.manifestBytes)-7]) // truncated digest table
	f.Add(cs.manifestBytes[:9])                       // truncated header
	// Oversize chunk-count claim: valid header, absurd table length.
	huge := append([]byte(nil), cs.manifestBytes[:21]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("TXCM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		// Decoded layouts must be arithmetically sound: the assembler
		// trusts nChunks and chunkLen downstream.
		if m.chunkSize == 0 {
			t.Fatal("decoded manifest with chunk size 0")
		}
		n := m.nChunks()
		if want := (m.totalLen + uint64(m.chunkSize) - 1) / uint64(m.chunkSize); uint64(n) != want {
			t.Fatalf("chunk count %d inconsistent with %d bytes at size %d", n, m.totalLen, m.chunkSize)
		}
		var sum uint64
		for i := uint32(0); i < n; i++ {
			l := m.chunkLen(i)
			if l <= 0 || l > int(m.chunkSize) {
				t.Fatalf("chunk %d length %d outside (0, %d]", i, l, m.chunkSize)
			}
			sum += uint64(l)
		}
		if sum != m.totalLen {
			t.Fatalf("chunk lengths sum to %d, total %d", sum, m.totalLen)
		}
		// Canonical: re-encoding is a fixed point.
		re := m.encode()
		m2, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, m2.encode()) {
			t.Fatal("manifest encoding not a fixed point")
		}
	})
}

func FuzzSnapshotHead(f *testing.F) {
	srv, cs := fuzzSnapshot(16, 4)
	head := cs.data[:cs.manifest.clientLen]
	f.Add(head)
	f.Add(head[:len(head)-3])
	f.Add((&Core{}).encodeSnapshotHead()) // empty table
	f.Add([]byte{snapshotVersion, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{snapshotVersion + 1, 0, 0, 0, 0})
	_ = srv
	f.Fuzz(func(t *testing.T, data []byte) {
		clients, err := decodeSnapshotHead(data)
		if err != nil {
			return
		}
		// Canonical: encoding the decoded table (sorted by client ID) must
		// itself decode, and re-encode byte-identically.
		enc := (&Core{clients: clients}).encodeSnapshotHead()
		c2, err := decodeSnapshotHead(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(c2) != len(clients) {
			t.Fatalf("round trip lost clients: %d -> %d", len(clients), len(c2))
		}
		if !bytes.Equal(enc, (&Core{clients: c2}).encodeSnapshotHead()) {
			t.Fatal("head encoding not a fixed point")
		}
	})
}

// FuzzChunkAssembly drives the fetch state machine with an adversarial chunk
// schedule — duplicates, overlaps (data of one index under another), stale
// and out-of-range indices, corrupted and truncated payloads — and checks the
// two invariants the protocol promises: buffering stays within the window
// bound, and if the transfer completes, the installed state is exactly the
// server's.
func FuzzChunkAssembly(f *testing.F) {
	const chunkSize, window = 8, 4
	srv, cs := fuzzSnapshot(chunkSize, window)
	srvSnap := srv.core.cfg.App.(*app.Store).Snapshot()
	n := cs.manifest.nChunks()

	f.Add([]byte{0, 0, 1, 0, 2, 0})       // in-order prefix
	f.Add([]byte{2, 0, 1, 0, 0, 0, 2, 0}) // out of order with duplicate
	f.Add([]byte{0, 1, 0, 2, 0, 4, 0, 0}) // corrupted, truncated, overlapped, then honest
	f.Add(bytes.Repeat([]byte{9, 0}, 8))  // hammer one out-of-window index
	inOrder := make([]byte, 0, 2*n)
	for i := uint32(0); i < n; i++ {
		inOrder = append(inOrder, byte(i), 0)
	}
	f.Add(inOrder) // full transfer
	f.Fuzz(func(t *testing.T, ops []byte) {
		var env fakeEnv
		fc := newStateCore(2, chunkSize, window).core
		fc.fetch = &stateFetch{seq: 8, digest: cs.digest, peers: []msg.NodeID{0, 1}}
		fc.OnStateReply(&env, 0, &msg.StateReply{Seq: 8, Manifest: cs.manifestBytes})
		for i := 0; i+1 < len(ops); i += 2 {
			idx := uint32(ops[i]) % (n + 3) // includes out-of-range indices
			data, ok := cs.chunk(idx % n)
			if !ok {
				t.Fatalf("no chunk %d", idx%n)
			}
			data = append([]byte(nil), data...)
			switch ops[i+1] % 4 {
			case 1: // corrupt
				data[0] ^= 0x01
			case 2: // truncate
				data = data[:len(data)-1]
			case 3: // overlap: this index, another index's bytes
				data, _ = cs.chunk((idx + 1) % n)
			}
			fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: idx, Data: data})
			if fc.fetch != nil && fc.fetch.buffered > window*chunkSize {
				t.Fatalf("buffered %d bytes, window bound %d", fc.fetch.buffered, window*chunkSize)
			}
		}
		if fc.LastExecuted() == 8 {
			if !bytes.Equal(fc.cfg.App.(*app.Store).Snapshot(), srvSnap) {
				t.Fatal("completed transfer installed state differing from the server's")
			}
		}
	})
}
