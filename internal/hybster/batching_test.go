package hybster

import (
	"fmt"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/realnet"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// discardOut drops all protocol output; used to drive a leader core directly
// without peers.
type discardOut struct{}

func (discardOut) Send(node.Env, msg.NodeID, msg.Message)                                      {}
func (discardOut) Committed(node.Env, uint64, *msg.OrderRequest, []byte, []string, bool, bool) {}

// certificationsWithBatchSize drives nReqs distinct client requests into a
// stand-alone leader core and reports how many trusted-counter certifications
// they cost, plus the core's metrics.
func certificationsWithBatchSize(t *testing.T, batchSize, nReqs int) (uint64, Metrics) {
	t.Helper()
	sub := tcounter.NewSubsystem(0)
	sub.SetKey([]byte("test-counter-key"))
	core := New(Config{
		Self:               0,
		N:                  3,
		F:                  1,
		CheckpointInterval: 1 << 30,
		ViewChangeTimeout:  time.Minute,
		Authority:          tcounter.Direct{S: sub},
		App:                app.NewStore(),
		BatchSize:          batchSize,
		// A long delay isolates the size-based cut policy: with fakeEnv the
		// timer never fires, so only full batches are proposed.
		BatchDelay: time.Minute,
	}, discardOut{})
	var env fakeEnv
	for i := 0; i < nReqs; i++ {
		core.Submit(&env, &msg.OrderRequest{
			Origin:    100,
			Client:    uint64(1000 + i),
			ClientSeq: 1,
			Op:        []byte(fmt.Sprintf("PUT key-%d %d", i, i)),
		})
	}
	return sub.Certifications(), core.Metrics()
}

// TestBatchCertificationAmortization is the headline property of the batched
// ordering pipeline: BatchSize=16 must spend 16x fewer trusted-counter
// certifications per request than unbatched ordering.
func TestBatchCertificationAmortization(t *testing.T) {
	const nReqs = 32
	unbatchedCerts, unbatched := certificationsWithBatchSize(t, 1, nReqs)
	batchedCerts, batched := certificationsWithBatchSize(t, 16, nReqs)

	if unbatchedCerts != nReqs {
		t.Fatalf("unbatched: %d certifications for %d requests, want %d", unbatchedCerts, nReqs, nReqs)
	}
	if batchedCerts != nReqs/16 {
		t.Fatalf("batched: %d certifications for %d requests, want %d", batchedCerts, nReqs, nReqs/16)
	}
	if 16*batchedCerts > unbatchedCerts {
		t.Errorf("amortization below 16x: %d batched vs %d unbatched certifications",
			batchedCerts, unbatchedCerts)
	}
	if batched.Proposed != nReqs || batched.Batches != nReqs/16 {
		t.Errorf("batched metrics: proposed=%d batches=%d, want %d/%d",
			batched.Proposed, batched.Batches, nReqs, nReqs/16)
	}
	if unbatched.Proposed != nReqs || unbatched.Batches != nReqs {
		t.Errorf("unbatched metrics: proposed=%d batches=%d, want %d/%d",
			unbatched.Proposed, unbatched.Batches, nReqs, nReqs)
	}
}

// TestBatchDelayCutsUnderfullBatch checks the time-based half of the cut
// policy: with a batch-size limit far above the offered load, requests must
// still be ordered once BatchDelay expires.
func TestBatchDelayCutsUnderfullBatch(t *testing.T) {
	cl := newCluster(t, 3, func(c *Config) {
		c.BatchSize = 64
		c.BatchDelay = 10 * time.Millisecond
	}, "PUT a 1", "GET a", "PUT b 2")
	cl.net.Run(10 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops: underfull batches never cut", cl.client.current, len(cl.client.ops))
	}
	lead := cl.replicas[0].core.Metrics()
	if lead.Batches == 0 || lead.Executed < 3 {
		t.Errorf("leader metrics: batches=%d executed=%d, want >0 and >=3", lead.Batches, lead.Executed)
	}
}

// assertNoDuplicateExecutions fails if a replica executed any (client,
// clientSeq) pair at more than one sequence number of the ordered history.
// Repeated records at the SAME sequence number are cached-reply replays for
// client retransmissions, which are benign; two distinct sequence numbers
// mean the operation really ran twice.
func assertNoDuplicateExecutions(t *testing.T, r *testReplica) {
	t.Helper()
	seen := make(map[[2]uint64]map[uint64]struct{})
	for _, rec := range r.executed {
		key := [2]uint64{rec.client, rec.clientSeq}
		if seen[key] == nil {
			seen[key] = make(map[uint64]struct{})
		}
		seen[key][rec.seq] = struct{}{}
	}
	for k, seqs := range seen {
		if len(seqs) > 1 {
			t.Errorf("replica %d executed client %d seq %d at %d distinct sequence numbers",
				r.id, k[0], k[1], len(seqs))
		}
	}
}

// TestBatchedOrderingConverges drives four concurrent client streams through
// a batching cluster and checks the batched path preserves the baseline
// guarantees: every op completes, replicas execute identical histories, and
// the leader actually amortized (fewer ordering rounds than requests).
func TestBatchedOrderingConverges(t *testing.T) {
	cl := newCluster(t, 3, func(c *Config) {
		c.BatchSize = 4
		c.BatchDelay = 10 * time.Millisecond
	}, opScript(8)...)
	extras := make([]*testClient, 3)
	for i := range extras {
		extras[i] = &testClient{id: msg.NodeID(40 + i), n: 3, f: 1, ops: toOps(opScript(8))}
		cl.net.AttachConfig(extras[i].id, extras[i], simnet.NodeConfig{})
	}
	cl.net.Run(30 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops", cl.client.current, len(cl.client.ops))
	}
	for _, ec := range extras {
		if !ec.done {
			t.Fatalf("client %d finished %d/%d ops", ec.id, ec.current, len(ec.ops))
		}
	}
	for i := 1; i < 3; i++ {
		if len(cl.replicas[i].executed) != len(cl.replicas[0].executed) {
			t.Fatalf("replica %d executed %d ops, replica 0 executed %d",
				i, len(cl.replicas[i].executed), len(cl.replicas[0].executed))
		}
		for j, rec := range cl.replicas[i].executed {
			if rec != cl.replicas[0].executed[j] {
				t.Errorf("replica %d record %d = %+v, replica 0 = %+v",
					i, j, rec, cl.replicas[0].executed[j])
			}
		}
	}
	for _, r := range cl.replicas {
		assertNoDuplicateExecutions(t, r)
	}
	lead := cl.replicas[0].core.Metrics()
	if lead.Proposed < 32 {
		t.Errorf("leader proposed %d requests, want >=32", lead.Proposed)
	}
	if lead.Batches >= lead.Proposed {
		t.Errorf("no amortization: %d batches for %d requests", lead.Batches, lead.Proposed)
	}
}

// countClient floods the cluster with back-to-back requests (no waiting
// between them, unlike the serial testClient) and closes done once every
// request has f+1 replies. It provides the concurrent submit load for the
// race test below.
type countClient struct {
	id      msg.NodeID
	n, f    int
	reqs    int
	replies map[uint64]map[msg.NodeID]struct{}
	missing int
	done    chan struct{}
}

func newCountClient(id msg.NodeID, n, f, reqs int) *countClient {
	return &countClient{
		id: id, n: n, f: f, reqs: reqs,
		replies: make(map[uint64]map[msg.NodeID]struct{}),
		missing: reqs,
		done:    make(chan struct{}),
	}
}

func (c *countClient) op(seq int) []byte {
	return []byte(fmt.Sprintf("PUT c%d-k%d v%d", c.id, seq, seq))
}

func (c *countClient) sendAll(env node.Env, seq int) {
	for i := 0; i < c.n; i++ {
		env.Send(msg.Seal(c.id, msg.NodeID(i), &msg.BFTRequest{
			Client:    uint64(c.id),
			ClientSeq: uint64(seq),
			Op:        c.op(seq),
		}))
	}
}

func (c *countClient) OnStart(env node.Env) {
	for seq := 1; seq <= c.reqs; seq++ {
		c.sendAll(env, seq)
	}
	env.SetTimer(300*time.Millisecond, node.TimerKey{Kind: "client/flood-retry"})
}

func (c *countClient) OnEnvelope(_ node.Env, e *msg.Envelope) {
	m, err := e.Open()
	if err != nil {
		return
	}
	rep, ok := m.(*msg.BFTReply)
	if !ok || rep.ClientSeq == 0 || rep.ClientSeq > uint64(c.reqs) || c.missing == 0 {
		return
	}
	set := c.replies[rep.ClientSeq]
	if set == nil {
		set = make(map[msg.NodeID]struct{})
		c.replies[rep.ClientSeq] = set
	}
	before := len(set)
	set[e.From] = struct{}{}
	if before < c.f+1 && len(set) == c.f+1 {
		c.missing--
		if c.missing == 0 {
			close(c.done)
		}
	}
}

func (c *countClient) OnTimer(env node.Env, key node.TimerKey) {
	if key.Kind != "client/flood-retry" || c.missing == 0 {
		return
	}
	for seq := 1; seq <= c.reqs; seq++ {
		if len(c.replies[uint64(seq)]) < c.f+1 {
			c.sendAll(env, seq)
		}
	}
	env.SetTimer(300*time.Millisecond, node.TimerKey{Kind: "client/flood-retry"})
}

// TestBatchedConcurrentSubmitRealnet runs the batching pipeline on the real
// runtime with several clients flooding concurrently. Under -race it is the
// concurrency check for the leader's batch accumulator: all access must stay
// serialized by the node mailbox.
func TestBatchedConcurrentSubmitRealnet(t *testing.T) {
	const (
		nReplicas = 3
		nClients  = 4
		perClient = 25
	)
	router := realnet.NewRouter()
	defer router.Close()

	replicas := make([]*testReplica, nReplicas)
	for i := range replicas {
		sub := tcounter.NewSubsystem(msg.NodeID(i))
		sub.SetKey([]byte("test-counter-key"))
		r := &testReplica{id: msg.NodeID(i)}
		r.core = New(Config{
			Self:               msg.NodeID(i),
			N:                  nReplicas,
			F:                  1,
			CheckpointInterval: 16,
			ViewChangeTimeout:  5 * time.Second,
			Authority:          tcounter.Direct{S: sub},
			App:                app.NewStore(),
			BatchSize:          8,
			BatchDelay:         2 * time.Millisecond,
		}, r)
		replicas[i] = r
		router.Attach(msg.NodeID(i), r)
	}
	clients := make([]*countClient, nClients)
	for i := range clients {
		clients[i] = newCountClient(msg.NodeID(100+i), nReplicas, 1, perClient)
		router.Attach(clients[i].id, clients[i])
	}

	for _, c := range clients {
		select {
		case <-c.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("client %d timed out waiting for replies", c.id)
		}
	}
	// Joining all node goroutines makes the replica state safe to inspect.
	router.Close()

	for _, r := range replicas {
		assertNoDuplicateExecutions(t, r)
	}
	lead := replicas[0].core.Metrics()
	if lead.Proposed < nClients*perClient {
		t.Errorf("leader proposed %d requests, want >=%d", lead.Proposed, nClients*perClient)
	}
	if lead.Batches == 0 || lead.Batches >= lead.Proposed {
		t.Errorf("no amortization under flood: %d batches for %d requests", lead.Batches, lead.Proposed)
	}
}
