package hybster

import (
	"fmt"
	"sort"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Checkpoint snapshots are a composite of the client table and the
// application snapshot. The client table is replicated state, not a local
// cache: its per-client latest-executed sequence decides whether a request
// re-proposed across a view change executes or is skipped as a duplicate
// (see execute), and its cached results answer retransmissions. A state
// transfer that installed only the application state would leave the table
// missing every entry in the jumped gap — the transferred replica would
// later re-execute a request the rest of the cluster skips, overwriting
// newer application state with an older write and silently diverging. The
// realnet chaos suite caught exactly that: a replica cut off mid-stream
// state-transferred back in, then a view-change re-proposal replayed a
// gap-covered write only on that replica.

// snapshotVersion guards the composite layout; a decoder seeing any other
// version rejects the snapshot (it would be verified against the agreed
// digest anyway, so this only sharpens the error).
const snapshotVersion uint8 = 1

// encodeSnapshot serializes the client table — in client-ID order, so every
// replica produces the identical byte string for identical state — followed
// by the application snapshot.
func (c *Core) encodeSnapshot(appSnap []byte) []byte {
	w := wire.NewWriter(64 + len(appSnap))
	w.U8(snapshotVersion)
	ids := make([]uint64, 0, len(c.clients))
	for id := range c.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		rec := c.clients[id]
		w.U64(id)
		w.U64(rec.lastSeq)
		w.U64(rec.seq)
		w.Bool(rec.read)
		w.Raw(rec.reqDigest[:])
		w.Bytes32(rec.result)
		w.U32(uint32(len(rec.keys)))
		for _, k := range rec.keys {
			w.String(k)
		}
	}
	w.Bytes32(appSnap)
	return w.Bytes()
}

// decodeSnapshot splits a composite snapshot back into the client table and
// the application snapshot. Snapshots come from peers, so decoding must not
// trust the layout — but the caller has already verified the bytes against
// the quorum-agreed checkpoint digest, so errors here indicate version skew,
// not forgery.
func decodeSnapshot(data []byte) (map[uint64]*clientRecord, []byte, error) {
	r := wire.NewReader(data)
	if v := r.U8(); v != snapshotVersion && r.Err() == nil {
		return nil, nil, fmt.Errorf("snapshot version %d, want %d", v, snapshotVersion)
	}
	n := r.SliceLen()
	clients := make(map[uint64]*clientRecord, n)
	for i := 0; i < n; i++ {
		id := r.U64()
		rec := &clientRecord{
			lastSeq: r.U64(),
			seq:     r.U64(),
			read:    r.Bool(),
		}
		copy(rec.reqDigest[:], r.FixedBytes(len(msg.Digest{})))
		rec.result = r.Bytes32()
		nk := r.SliceLen()
		for j := 0; j < nk; j++ {
			rec.keys = append(rec.keys, r.String())
		}
		clients[id] = rec
	}
	appSnap := r.Bytes32()
	if err := r.Finish(); err != nil {
		return nil, nil, err
	}
	return clients, appSnap, nil
}
