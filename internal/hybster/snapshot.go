package hybster

import (
	"fmt"
	"sort"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Checkpoint snapshots are a composite of the client table and the
// application snapshot. The client table is replicated state, not a local
// cache: its per-client latest-executed sequence decides whether a request
// re-proposed across a view change executes or is skipped as a duplicate
// (see execute), and its cached results answer retransmissions. A state
// transfer that installed only the application state would leave the table
// missing every entry in the jumped gap — the transferred replica would
// later re-execute a request the rest of the cluster skips, overwriting
// newer application state with an older write and silently diverging. The
// realnet chaos suite caught exactly that: a replica cut off mid-stream
// state-transferred back in, then a view-change re-proposal replayed a
// gap-covered write only on that replica.
//
// The composite is transferred in chunks, not as one blob. What CHECKPOINT
// votes agree on is the digest of a *chunk manifest*: the composite's layout
// (total length, chunk size, client-table head length) plus one digest per
// fixed-size chunk. Quorum semantics are unchanged — f+1 matching manifest
// digests still make a checkpoint stable — but a joiner that has fetched the
// manifest can verify every chunk independently as it arrives, re-request
// exactly the missing ones, and stream the application part of the composite
// into an app.RestoreSink without ever materializing the whole snapshot.

// snapshotVersion guards the composite layout; a decoder seeing any other
// version rejects the snapshot (it would be verified against the agreed
// digest anyway, so this only sharpens the error). Version 2 drops the length
// prefix on the application part: the composite is the client-table head
// followed by raw application bytes to the end, so the app part can be
// streamed without knowing its length up front.
const snapshotVersion uint8 = 2

// encodeSnapshotHead serializes the composite's head: the version byte and
// the client table — in client-ID order, so every replica produces the
// identical byte string for identical state. The application snapshot bytes
// follow the head verbatim (no length prefix) to form the full composite.
func (c *Core) encodeSnapshotHead() []byte {
	w := wire.NewWriter(64)
	w.U8(snapshotVersion)
	ids := make([]uint64, 0, len(c.clients))
	for id := range c.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		rec := c.clients[id]
		w.U64(id)
		w.U64(rec.lastSeq)
		w.U64(rec.seq)
		w.Bool(rec.read)
		w.Raw(rec.reqDigest[:])
		w.Bytes32(rec.result)
		w.U32(uint32(len(rec.keys)))
		for _, k := range rec.keys {
			w.String(k)
		}
	}
	return w.Bytes()
}

// decodeSnapshotHead parses a composite head produced by encodeSnapshotHead,
// consuming the buffer exactly. Heads come from peers, so decoding must not
// trust the layout — but the caller has already verified the enclosing chunks
// against the quorum-agreed manifest, so errors here indicate version skew,
// not forgery.
func decodeSnapshotHead(data []byte) (map[uint64]*clientRecord, error) {
	r := wire.NewReader(data)
	if v := r.U8(); v != snapshotVersion && r.Err() == nil {
		return nil, fmt.Errorf("snapshot version %d, want %d", v, snapshotVersion)
	}
	n := r.SliceLen()
	clients := make(map[uint64]*clientRecord, min(n, 4096))
	for i := 0; i < n; i++ {
		id := r.U64()
		rec := &clientRecord{
			lastSeq: r.U64(),
			seq:     r.U64(),
			read:    r.Bool(),
		}
		copy(rec.reqDigest[:], r.FixedBytes(len(msg.Digest{})))
		rec.result = r.Bytes32()
		nk := r.SliceLen()
		for j := 0; j < nk; j++ {
			rec.keys = append(rec.keys, r.String())
		}
		clients[id] = rec
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return clients, nil
}

// Manifest layout limits. maxManifestChunks bounds the digest-table
// allocation when decoding a manifest received from an untrusted peer
// (32 MiB of digests at the cap — far above any real snapshot, far below a
// crash-by-allocation).
const (
	manifestMagic     = "TXCM"
	manifestVersion   = 1
	maxManifestChunks = 1 << 20
)

// snapshotManifest describes a chunked composite snapshot: its layout and
// one digest per chunk. The digest of the *encoded manifest* is what
// CHECKPOINT votes agree on, so a joiner holding f+1 matching votes can
// verify first the manifest and then every chunk against evidence it trusts.
type snapshotManifest struct {
	totalLen  uint64       // composite length in bytes
	chunkSize uint32       // every chunk but the last is exactly this long
	clientLen uint32       // head length: version byte + client table
	chunks    []msg.Digest // per-chunk digests, in order
}

// nChunks returns the number of chunks the manifest describes.
func (m *snapshotManifest) nChunks() uint32 { return uint32(len(m.chunks)) }

// chunkLen returns the byte length of chunk i.
func (m *snapshotManifest) chunkLen(i uint32) int {
	if i+1 < m.nChunks() || m.totalLen == 0 {
		return int(m.chunkSize)
	}
	return int(m.totalLen - uint64(i)*uint64(m.chunkSize))
}

// encode serializes the manifest canonically.
func (m *snapshotManifest) encode() []byte {
	w := wire.NewWriter(32 + len(m.chunks)*len(msg.Digest{}))
	w.Raw([]byte(manifestMagic))
	w.U8(manifestVersion)
	w.U64(m.totalLen)
	w.U32(m.chunkSize)
	w.U32(m.clientLen)
	w.U32(uint32(len(m.chunks)))
	for i := range m.chunks {
		w.Raw(m.chunks[i][:])
	}
	return w.Bytes()
}

// decodeManifest parses and validates a manifest received from a peer. The
// caller verifies the raw bytes against the agreed checkpoint digest before
// trusting the contents; validation here bounds allocations and rejects
// internally inconsistent layouts so the fetch state machine can rely on the
// arithmetic (chunk count and per-chunk lengths) downstream.
func decodeManifest(data []byte) (*snapshotManifest, error) {
	r := wire.NewReader(data)
	if magic := r.FixedBytes(len(manifestMagic)); r.Err() == nil && string(magic) != manifestMagic {
		return nil, fmt.Errorf("manifest magic %q, want %q", magic, manifestMagic)
	}
	if v := r.U8(); r.Err() == nil && v != manifestVersion {
		return nil, fmt.Errorf("manifest version %d, want %d", v, manifestVersion)
	}
	m := &snapshotManifest{
		totalLen:  r.U64(),
		chunkSize: r.U32(),
		clientLen: r.U32(),
	}
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > maxManifestChunks {
		return nil, fmt.Errorf("manifest claims %d chunks, cap %d", n, maxManifestChunks)
	}
	// Bound the digest-table allocation by the bytes actually present: a
	// short message claiming a huge table must fail before allocating it.
	if uint64(n)*uint64(len(msg.Digest{})) > uint64(r.Remaining()) {
		return nil, fmt.Errorf("manifest claims %d chunks with %d bytes left", n, r.Remaining())
	}
	if m.chunkSize == 0 {
		return nil, fmt.Errorf("manifest chunk size 0")
	}
	// The head is at least the version byte plus the client-table count.
	if uint64(m.clientLen) > m.totalLen || m.clientLen < 5 {
		return nil, fmt.Errorf("manifest head length %d inconsistent with total %d", m.clientLen, m.totalLen)
	}
	want := (m.totalLen + uint64(m.chunkSize) - 1) / uint64(m.chunkSize)
	if uint64(n) != want {
		return nil, fmt.Errorf("manifest claims %d chunks for %d bytes at chunk size %d, want %d",
			n, m.totalLen, m.chunkSize, want)
	}
	m.chunks = make([]msg.Digest, n)
	for i := uint32(0); i < n; i++ {
		b := r.FixedBytes(len(msg.Digest{}))
		if b == nil {
			break
		}
		copy(m.chunks[i][:], b)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// chunkedSnapshot is a retained checkpoint snapshot in serving form: the
// composite bytes plus the manifest describing them. digest is the digest of
// the encoded manifest — the value CHECKPOINT votes carry.
type chunkedSnapshot struct {
	manifest      *snapshotManifest
	manifestBytes []byte
	digest        msg.Digest
	data          []byte
}

// chunk returns the bytes of chunk i.
func (cs *chunkedSnapshot) chunk(i uint32) ([]byte, bool) {
	if i >= cs.manifest.nChunks() {
		return nil, false
	}
	lo := uint64(i) * uint64(cs.manifest.chunkSize)
	hi := min(lo+uint64(cs.manifest.chunkSize), cs.manifest.totalLen)
	return cs.data[lo:hi], true
}

// buildChunkedSnapshot assembles the composite for the current state (client
// table head + application snapshot streamed through the incremental
// iterator) and derives its manifest. chunkSize comes from the configured
// SnapshotChunkSize.
func (c *Core) buildChunkedSnapshot() *chunkedSnapshot {
	chunkSize := c.cfg.SnapshotChunkSize
	head := c.encodeSnapshotHead()
	data := make([]byte, 0, len(head)*2)
	data = append(data, head...)
	it := app.SnapshotIterOf(c.cfg.App, chunkSize)
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		data = append(data, p...)
	}
	m := &snapshotManifest{
		totalLen:  uint64(len(data)),
		chunkSize: uint32(chunkSize),
		clientLen: uint32(len(head)),
	}
	n := (m.totalLen + uint64(m.chunkSize) - 1) / uint64(m.chunkSize)
	m.chunks = make([]msg.Digest, n)
	for i := uint64(0); i < n; i++ {
		lo := i * uint64(m.chunkSize)
		hi := min(lo+uint64(m.chunkSize), m.totalLen)
		m.chunks[i] = msg.DigestOf(data[lo:hi])
	}
	mb := m.encode()
	return &chunkedSnapshot{
		manifest:      m,
		manifestBytes: mb,
		digest:        msg.DigestOf(mb),
		data:          data,
	}
}
