package hybster

import (
	"bytes"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// TestCertKindConfusionRejected checks that a certificate produced for one
// statement kind (commit) cannot be replayed as another (prepare): the
// certified digests are domain-separated.
func TestCertKindConfusionRejected(t *testing.T) {
	cl := newCluster(t, 3, nil)
	sub := tcounter.NewSubsystem(0)
	sub.SetKey([]byte("test-counter-key"))

	req := msg.OrderRequest{Origin: 3, Client: 9, ClientSeq: 1, Op: []byte("PUT x 1")}
	batch := msg.Batch{Reqs: []msg.OrderRequest{req}}
	// A commit certificate for (view 0, seq 1, digest)...
	cert, err := sub.Certify(tcounter.OrderCounter(0), 1, commitDigest(0, 1, batch.Digest()))
	if err != nil {
		t.Fatal(err)
	}
	// ...presented inside a Prepare.
	evil := &msg.Prepare{View: 0, Seq: 1, Batch: batch, Cert: cert}
	cl.net.AttachConfig(50, &injector{to: 1, m: evil}, simnet.NodeConfig{})
	cl.net.Run(time.Second)
	if cl.replicas[1].core.LastExecuted() != 0 {
		t.Error("commit certificate accepted as prepare certificate")
	}
	if cl.replicas[1].core.Metrics().RejectedCerts == 0 {
		t.Error("confused certificate not rejected")
	}
}

// TestStaleViewMessagesDropped checks that messages from an older view are
// ignored after a view change.
func TestStaleViewMessagesDropped(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(4)...)
	cl.net.Run(40 * time.Millisecond)
	cl.net.Crash(0)
	cl.net.Run(30 * time.Second) // view change to view 1 completes
	r1 := cl.replicas[1]
	if r1.core.View() == 0 {
		t.Fatal("view change did not happen")
	}
	execBefore := r1.core.LastExecuted()

	// Replay a view-0-style prepare (certified by the OLD leader's counter
	// cannot even be built here; an uncertified one suffices to check the
	// view guard runs first).
	stale := &msg.Prepare{View: 0, Seq: 99, Batch: msg.Batch{Reqs: []msg.OrderRequest{
		{Origin: 3, Client: 1, ClientSeq: 9, Op: []byte("PUT z 9")}}}}
	cl.net.AttachConfig(51, &injector{to: 1, m: stale}, simnet.NodeConfig{})
	cl.net.Run(time.Second)
	if r1.core.LastExecuted() != execBefore {
		t.Error("stale-view prepare affected execution")
	}
}

// TestMinorityCheckpointNotStable checks that a single (possibly faulty)
// replica's checkpoint claim does not become stable.
func TestMinorityCheckpointNotStable(t *testing.T) {
	cl := newCluster(t, 3, nil)
	evilCp := &msg.Checkpoint{Seq: 64, StateDigest: msg.DigestOf([]byte("fabricated"))}
	cl.net.AttachConfig(52, &injector{to: 1, m: evilCp}, simnet.NodeConfig{})
	cl.net.Run(time.Second)
	if got := cl.replicas[1].core.Metrics().StableSeq; got != 0 {
		t.Errorf("minority checkpoint became stable at %d", got)
	}
}

// TestDuplicateCommitsCountOnce checks the quorum counts distinct replicas,
// not messages.
func TestDuplicateCommitsCountOnce(t *testing.T) {
	// Build a 3-replica cluster but keep replica 2 crashed so commits can
	// only come from replica 1; the leader must NOT commit on replica 1's
	// commit counted twice (it needs f+1 = 2 vouchers: itself + one other,
	// which it has — so instead check the follower side: replica 1 needs
	// leader prepare + own commit, which suffices; the real duplicate risk
	// is counting one peer twice toward a larger quorum, covered at f=2).
	cl := newCluster(t, 5, nil, "PUT a 1")
	// Crash two followers; quorum f+1 = 3 still reachable via 0,1,2.
	cl.net.Crash(3)
	cl.net.Crash(4)
	cl.net.Run(20 * time.Second)
	if !cl.client.done {
		t.Fatal("client stalled with f crashed followers")
	}
	for _, i := range []int{0, 1, 2} {
		if cl.replicas[i].core.LastExecuted() == 0 {
			t.Errorf("replica %d executed nothing", i)
		}
	}
}

// TestCheckpointIntervalRespected checks checkpoints appear exactly at
// interval boundaries.
func TestCheckpointIntervalRespected(t *testing.T) {
	cl := newCluster(t, 3, func(c *Config) { c.CheckpointInterval = 4 }, opScript(10)...)
	cl.net.Run(20 * time.Second)
	if !cl.client.done {
		t.Fatal("client stalled")
	}
	m := cl.replicas[0].core.Metrics()
	if m.StableSeq != 8 {
		t.Errorf("stable seq = %d, want 8 (two intervals of 4)", m.StableSeq)
	}
}

// inFlightBatchAt returns the requests of a multi-request batch the replica
// has prepared above its stable checkpoint, or nil if there is none. Such a
// batch is in flight across a view change: it is not covered by a checkpoint,
// so the replica's VIEW-CHANGE must carry it and the new leader must
// re-propose it at the same sequence number.
func inFlightBatchAt(c *Core) []msg.OrderRequest {
	for seq, e := range c.log {
		if seq > c.stableSeq && e.hasPrep && e.batch != nil && e.batch.Len() >= 2 {
			return append([]msg.OrderRequest(nil), e.batch.Reqs...)
		}
	}
	return nil
}

// TestViewChangeReproposesInFlightBatch crashes the leader at a moment when a
// follower holds an in-flight multi-request batch. The follower's VIEW-CHANGE
// must carry the batch and the new leader must re-propose it: every request
// in it executes exactly once and no client stalls.
func TestViewChangeReproposesInFlightBatch(t *testing.T) {
	cl := newCluster(t, 3, func(c *Config) {
		c.BatchSize = 4
		c.BatchDelay = 10 * time.Millisecond
	}, opScript(6)...)
	// Three extra concurrent clients keep multi-request batches flowing.
	extras := make([]*testClient, 3)
	for i := range extras {
		extras[i] = &testClient{id: msg.NodeID(40 + i), n: 3, f: 1, ops: toOps(opScript(6))}
		cl.net.AttachConfig(extras[i].id, extras[i], simnet.NodeConfig{})
	}

	// Step the simulation until replica 1 holds an in-flight batch, then
	// crash the leader: only the view change can carry the batch over.
	var inFlight []msg.OrderRequest
	for until := time.Millisecond; until < 2*time.Second; until += time.Millisecond {
		cl.net.Run(until)
		if inFlight = inFlightBatchAt(cl.replicas[1].core); inFlight != nil {
			break
		}
	}
	if inFlight == nil {
		t.Fatal("never observed an in-flight prepared batch at replica 1")
	}
	cl.net.Crash(0)
	cl.net.Run(60 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops after leader crash", cl.client.current, len(cl.client.ops))
	}
	for _, ec := range extras {
		if !ec.done {
			t.Fatalf("client %d finished %d/%d ops after leader crash", ec.id, ec.current, len(ec.ops))
		}
	}
	for _, i := range []int{1, 2} {
		r := cl.replicas[i]
		if r.core.View() == 0 {
			t.Errorf("replica %d still in view 0", i)
		}
		assertNoDuplicateExecutions(t, r)
	}
	// No request of the in-flight batch was lost or executed twice: each
	// appears at exactly one sequence number of the new view's history
	// (repeated records at one seq are cached-reply replays, not
	// re-executions).
	for _, req := range inFlight {
		if req.Origin == msg.NoNode {
			continue
		}
		seqs := make(map[uint64]struct{})
		for _, rec := range cl.replicas[1].executed {
			if rec.client == req.Client && rec.clientSeq == req.ClientSeq {
				seqs[rec.seq] = struct{}{}
			}
		}
		if len(seqs) != 1 {
			t.Errorf("in-flight request client=%d seq=%d executed at %d sequence numbers, want 1",
				req.Client, req.ClientSeq, len(seqs))
		}
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("surviving replicas diverged")
	}
}

// TestOwnsTimer guards the timer-namespace contract between the replica
// host and the protocol core.
func TestOwnsTimer(t *testing.T) {
	if !OwnsTimer(timerKeyOf(timerProgress)) || !OwnsTimer(timerKeyOf(timerViewChange)) {
		t.Error("core timers not recognized")
	}
	if OwnsTimer(timerKeyOf("replica/tick")) || OwnsTimer(timerKeyOf("x")) {
		t.Error("foreign timers claimed")
	}
}

func timerKeyOf(kind string) node.TimerKey { return node.TimerKey{Kind: kind} }

// TestViewChangeUnderAsymmetricPartition cuts only the leader->replica-2
// direction: replica 2 still hears commits and can reach everyone, but never
// receives PREPAREs, so it starves and votes for view 1. A single certified
// VIEW-CHANGE drags replica 1 in, replica 1 (= Leader(1)) installs the new
// view, and once the partition heals all three replicas converge under the
// new leader with no request lost or executed twice.
func TestViewChangeUnderAsymmetricPartition(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(12)...)
	cl.net.Run(40 * time.Millisecond)

	now := cl.net.Now()
	cl.net.SetFault(faultplane.NewInjector(1, faultplane.Plan{
		Partitions: []faultplane.Partition{{
			Start:  now,
			Heal:   now + 4*time.Second,
			A:      []msg.NodeID{0},
			B:      []msg.NodeID{2},
			OneWay: true,
		}},
	}))
	cl.net.Run(60 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops under asymmetric partition",
			cl.client.current, len(cl.client.ops))
	}
	for i, r := range cl.replicas {
		if r.core.View() == 0 {
			t.Errorf("replica %d still in view 0", i)
		}
		assertNoDuplicateExecutions(t, r)
	}
	// The starved replica caught up after the heal: states converged.
	if !bytes.Equal(cl.apps[0].Snapshot(), cl.apps[1].Snapshot()) ||
		!bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica states diverged after partition heal")
	}
	// The view change was driven by starvation, not crashes: no correct
	// replica's certificates were rejected anywhere.
	for i, r := range cl.replicas {
		for j := range cl.replicas {
			if i != j && r.core.RejectedCertsFrom(msg.NodeID(j)) != 0 {
				t.Errorf("replica %d rejected %d certs from correct replica %d",
					i, r.core.RejectedCertsFrom(msg.NodeID(j)), j)
			}
		}
	}
}
