package hybster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// testReplica is a minimal host: it dispatches envelopes into the core and
// sends BFTReply messages to request origins (the baseline frontend shape).
// Transport authentication is omitted; these tests target ordering logic.
type testReplica struct {
	core *Core
	id   msg.NodeID

	executed []execRecord
}

type execRecord struct {
	seq       uint64
	client    uint64
	clientSeq uint64
	result    string
}

func (r *testReplica) OnStart(node.Env) {}

func (r *testReplica) OnEnvelope(env node.Env, e *msg.Envelope) {
	m, err := e.Open()
	if err != nil {
		return
	}
	switch m := m.(type) {
	case *msg.BFTRequest:
		r.core.Submit(env, &msg.OrderRequest{
			Origin:    e.From,
			Client:    m.Client,
			ClientSeq: m.ClientSeq,
			Flags:     m.Flags,
			Op:        m.Op,
		})
	case *msg.Forward:
		r.core.OnForward(env, e.From, m)
	case *msg.Prepare:
		r.core.OnPrepare(env, e.From, m)
	case *msg.Commit:
		r.core.OnCommit(env, e.From, m)
	case *msg.Checkpoint:
		r.core.OnCheckpoint(env, e.From, m)
	case *msg.ViewChange:
		r.core.OnViewChange(env, e.From, m)
	case *msg.NewView:
		r.core.OnNewView(env, e.From, m)
	case *msg.StateRequest:
		r.core.OnStateRequest(env, e.From, m)
	case *msg.StateReply:
		r.core.OnStateReply(env, e.From, m)
	case *msg.StateChunk:
		r.core.OnStateChunk(env, e.From, m)
	case *msg.StatePrefix:
		r.core.OnStatePrefix(env, e.From, m)
	case *msg.NewViewRequest:
		r.core.OnNewViewRequest(env, e.From, m)
	}
}

func (r *testReplica) OnTimer(env node.Env, key node.TimerKey) {
	if OwnsTimer(key) {
		r.core.OnTimer(env, key)
	}
}

// Outbound implementation.

func (r *testReplica) Send(env node.Env, to msg.NodeID, m msg.Message) {
	env.Send(msg.Seal(r.id, to, m))
}

func (r *testReplica) Committed(env node.Env, seq uint64, req *msg.OrderRequest, result []byte, _ []string, _, _ bool) {
	r.executed = append(r.executed, execRecord{
		seq: seq, client: req.Client, clientSeq: req.ClientSeq, result: string(result),
	})
	if req.Origin >= 0 {
		env.Send(msg.Seal(r.id, req.Origin, &msg.BFTReply{
			Executor:  r.id,
			Client:    req.Client,
			ClientSeq: req.ClientSeq,
			ReqDigest: req.Digest(),
			Result:    result,
		}))
	}
}

// testClient drives a scripted sequence of operations: it sends each to all
// replicas (simplest retransmission-free way to survive leader crashes is to
// resend on timeout, which it also does) and waits for f+1 matching replies.
type testClient struct {
	id      msg.NodeID
	n, f    int
	ops     [][]byte
	results []string

	current int
	seq     uint64
	replies map[msg.NodeID]string
	done    bool
}

func (c *testClient) OnStart(env node.Env) { c.next(env) }

func (c *testClient) next(env node.Env) {
	if c.current >= len(c.ops) {
		c.done = true
		return
	}
	c.seq++
	c.replies = make(map[msg.NodeID]string)
	c.sendCurrent(env)
	env.SetTimer(500*time.Millisecond, node.TimerKey{Kind: "client/retry", ID: c.seq})
}

func (c *testClient) sendCurrent(env node.Env) {
	for i := 0; i < c.n; i++ {
		env.Send(msg.Seal(c.id, msg.NodeID(i), &msg.BFTRequest{
			Client:    uint64(c.id),
			ClientSeq: c.seq,
			Op:        c.ops[c.current],
		}))
	}
}

func (c *testClient) OnEnvelope(env node.Env, e *msg.Envelope) {
	m, err := e.Open()
	if err != nil {
		return
	}
	rep, ok := m.(*msg.BFTReply)
	if !ok || rep.ClientSeq != c.seq || c.done || c.replies == nil {
		return
	}
	c.replies[e.From] = string(rep.Result)
	counts := make(map[string]int)
	for _, res := range c.replies {
		counts[res]++
	}
	for res, n := range counts {
		if n >= c.f+1 {
			c.results = append(c.results, res)
			env.CancelTimer(node.TimerKey{Kind: "client/retry", ID: c.seq})
			c.current++
			c.next(env)
			return
		}
	}
}

func (c *testClient) OnTimer(env node.Env, key node.TimerKey) {
	if key.Kind == "client/retry" && key.ID == c.seq && !c.done {
		c.sendCurrent(env)
		env.SetTimer(500*time.Millisecond, node.TimerKey{Kind: "client/retry", ID: c.seq})
	}
}

// cluster wires N replicas plus one client into a simnet.
type cluster struct {
	net      *simnet.Network
	replicas []*testReplica
	apps     []*app.Store
	client   *testClient
}

func newCluster(t *testing.T, nReplicas int, cfgMut func(*Config), ops ...string) *cluster {
	t.Helper()
	f := (nReplicas - 1) / 2
	net := simnet.New(7, nil)
	// A visible link latency keeps the tests' crash points inside the
	// workload instead of after it.
	net.SetDefaultLink(simnet.FixedLatency(5 * time.Millisecond))
	cl := &cluster{net: net}
	for i := 0; i < nReplicas; i++ {
		sub := tcounter.NewSubsystem(msg.NodeID(i))
		sub.SetKey([]byte("test-counter-key"))
		store := app.NewStore()
		cl.apps = append(cl.apps, store)
		cfg := Config{
			Self:               msg.NodeID(i),
			N:                  nReplicas,
			F:                  f,
			CheckpointInterval: 8,
			ViewChangeTimeout:  time.Second,
			Profile:            node.ProfileJava,
			Authority:          tcounter.Direct{S: sub},
			App:                store,
		}
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		r := &testReplica{id: msg.NodeID(i)}
		r.core = New(cfg, r)
		cl.replicas = append(cl.replicas, r)
		net.AttachConfig(msg.NodeID(i), r, simnet.NodeConfig{})
	}
	opBytes := make([][]byte, len(ops))
	for i, op := range ops {
		opBytes[i] = []byte(op)
	}
	cl.client = &testClient{id: msg.NodeID(nReplicas), n: nReplicas, f: f, ops: opBytes}
	net.AttachConfig(cl.client.id, cl.client, simnet.NodeConfig{})
	return cl
}

func opScript(n int) []string {
	ops := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, fmt.Sprintf("PUT key-%d value-%d", i%5, i))
	}
	return ops
}

func TestOrderedExecution(t *testing.T) {
	cl := newCluster(t, 3, nil,
		"PUT a 1", "GET a", "PUT b 2", "GET b", "DEL a", "GET a")
	cl.net.Run(10 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops", cl.client.current, len(cl.client.ops))
	}
	want := []string{"OK", "VALUE 1", "OK", "VALUE 2", "OK", "NOTFOUND"}
	for i, res := range cl.client.results {
		if res != want[i] {
			t.Errorf("op %d result = %q, want %q", i, res, want[i])
		}
	}

	// All replicas executed the same history and converged.
	for i := 1; i < 3; i++ {
		if len(cl.replicas[i].executed) != len(cl.replicas[0].executed) {
			t.Fatalf("replica %d executed %d ops, replica 0 executed %d",
				i, len(cl.replicas[i].executed), len(cl.replicas[0].executed))
		}
		for j, rec := range cl.replicas[i].executed {
			if rec != cl.replicas[0].executed[j] {
				t.Errorf("replica %d record %d = %+v, replica 0 = %+v",
					i, j, rec, cl.replicas[0].executed[j])
			}
		}
	}
	if !bytes.Equal(cl.apps[0].Snapshot(), cl.apps[1].Snapshot()) ||
		!bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica states diverged")
	}
}

func TestClientConnectedToFollower(t *testing.T) {
	// The client library sends to all replicas, so Forward paths are
	// exercised; here we restrict the first send to a follower only.
	cl := newCluster(t, 3, nil, "PUT x 9", "GET x")
	cl.net.Run(10 * time.Second)
	if !cl.client.done {
		t.Fatal("client did not finish")
	}
	if cl.client.results[1] != "VALUE 9" {
		t.Errorf("GET = %q", cl.client.results[1])
	}
}

func TestDuplicateRequestExecutesOnce(t *testing.T) {
	cl := newCluster(t, 3, nil, "PUT k 1")
	cl.net.Run(5 * time.Second)
	// The client sends the same (client, seq) request to all three
	// replicas; two of them forward it to the leader. It must execute once.
	execs := 0
	for _, rec := range cl.replicas[0].executed {
		if rec.client == uint64(cl.client.id) {
			execs++
		}
	}
	if execs != 1 {
		t.Errorf("request executed %d times, want 1", execs)
	}
}

func TestCheckpointingAndGC(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(30)...)
	cl.net.Run(20 * time.Second)
	if !cl.client.done {
		t.Fatalf("client finished %d/30", cl.client.current)
	}
	for i, r := range cl.replicas {
		m := r.core.Metrics()
		if m.StableSeq < 24 {
			t.Errorf("replica %d stable seq = %d, want ≥24", i, m.StableSeq)
		}
		if len(r.core.log) > 10 {
			t.Errorf("replica %d log holds %d entries after GC", i, len(r.core.log))
		}
	}
}

func TestViewChangeOnLeaderCrash(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(6)...)
	// Let a couple of operations commit, then crash the leader.
	cl.net.Run(40 * time.Millisecond)
	if cl.client.current == 0 {
		t.Fatal("no progress before crash")
	}
	if cl.client.done {
		t.Fatal("workload finished before the crash point; slow the links down")
	}
	cl.net.Crash(0)
	cl.net.Run(60 * time.Second)

	if !cl.client.done {
		t.Fatalf("client stalled after leader crash: %d/%d ops", cl.client.current, len(cl.client.ops))
	}
	for _, i := range []int{1, 2} {
		if v := cl.replicas[i].core.View(); v == 0 {
			t.Errorf("replica %d still in view 0", i)
		}
		if cl.replicas[i].core.InViewChange() {
			t.Errorf("replica %d stuck in view change", i)
		}
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("surviving replicas diverged")
	}
	// Verify final state is what the script produced.
	for i := 0; i < 5; i++ {
		want := ""
		for j := 0; j < 6; j++ {
			if j%5 == i {
				want = fmt.Sprintf("value-%d", j)
			}
		}
		if want == "" {
			continue
		}
		got := cl.apps[1].Execute([]byte(fmt.Sprintf("GET key-%d", i)))
		if string(got) != "VALUE "+want {
			t.Errorf("key-%d = %q, want VALUE %s", i, got, want)
		}
	}
}

func TestViewChangeToCrashedLeaderEscalates(t *testing.T) {
	// Crash replicas 0 ... wait, f=1 allows only one crash. Instead crash
	// the leader and verify the cluster settles in a view led by a live
	// replica (view 1 → leader 1).
	cl := newCluster(t, 3, nil, opScript(4)...)
	cl.net.Run(40 * time.Millisecond)
	cl.net.Crash(0)
	cl.net.Run(60 * time.Second)
	if !cl.client.done {
		t.Fatal("client stalled")
	}
	leader := cl.replicas[1].core.Leader(cl.replicas[1].core.View())
	if leader == 0 {
		t.Errorf("settled on crashed leader %d", leader)
	}
}

func TestStateTransferAfterPartition(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(40)...)
	// Partition replica 2 early; the other two make progress and stabilize
	// checkpoints. Then heal: replica 2 must catch up via state transfer.
	cl.net.Run(100 * time.Millisecond)
	cl.net.Crash(2)
	cl.net.Run(30 * time.Second)
	if !cl.client.done {
		t.Fatalf("client stalled during partition: %d/40", cl.client.current)
	}
	behind := cl.replicas[2].core.LastExecuted()
	cl.net.Restore(2)

	// New traffic forces a fresh checkpoint that replica 2 agrees on and
	// fetches. Drive more operations through a second client.
	extra := &testClient{id: 99, n: 3, f: 1, ops: toOps(opScript(30))}
	cl.net.AttachConfig(99, extra, simnet.NodeConfig{})
	cl.net.Run(60 * time.Second)

	if !extra.done {
		t.Fatalf("extra client stalled: %d/30", extra.current)
	}
	r2 := cl.replicas[2].core
	if r2.LastExecuted() <= behind {
		t.Errorf("replica 2 did not catch up: %d -> %d", behind, r2.LastExecuted())
	}
	if r2.Metrics().StateTransfers == 0 {
		t.Error("no state transfer recorded")
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica 2 state diverged after catch-up")
	}
}

// TestStateTransferCarriesClientTable pins the composite-snapshot format
// (snapshot.go): checkpoint snapshots carry the client table alongside the
// application state. A replica that state-transfers over a gap and later
// becomes leader re-proposes its stale pendingLocal requests at fresh
// sequence numbers; the peers skip them through their client tables, so the
// transferred replica must hold the same table — or it re-executes an old
// write over newer state and silently diverges. (Found by the wall-clock
// chaos suite; this is the deterministic reduction.)
func TestStateTransferCarriesClientTable(t *testing.T) {
	// Phase A: "PUT marker stale" reaches every replica's pendingLocal, but
	// replica 2 is cut off before the commit lands: 0 and 1 execute it,
	// overwrite the key with "PUT marker fresh", and stabilize checkpoints
	// covering both writes, while replica 2 keeps the request pending.
	ops := []string{"PUT marker stale"}
	ops = append(ops, opScript(10)...)
	ops = append(ops, "PUT marker fresh")
	cl := newCluster(t, 3, func(cfg *Config) { cfg.PipelineDepth = 4 }, ops...)
	// 5 ms links: the request reaches replica 2 (and its pendingLocal) at
	// ~5 ms, the leader's PREPARE — which commits it there — at ~10 ms.
	cl.net.Run(7 * time.Millisecond)
	cl.net.Crash(2)
	cl.net.Run(30 * time.Second)
	if !cl.client.done {
		t.Fatalf("phase A stalled: %d/%d", cl.client.current, len(cl.client.ops))
	}
	r2 := cl.replicas[2].core
	stalePending := func() bool {
		for _, req := range r2.pendingLocal {
			if string(req.Op) == "PUT marker stale" {
				return true
			}
		}
		return false
	}
	if !stalePending() {
		t.Fatal("crash point missed: the marker write is not pending on replica 2")
	}

	// Phase B: heal replica 2 and push fresh traffic over the next
	// checkpoint boundary so it catches up by state transfer, jumping the
	// gap that contains both marker writes. From there the stale request
	// drives the rest by itself: once post-transfer traffic executes on
	// replica 2, clearProgress re-arms its leader-suspicion timer while the
	// marker write stays pending, so it escalates a view change; the view-1
	// re-drive forwards the request to leader 1, whose client table drops
	// it silently, so suspicion fires again and view 2 installs — with
	// replica 2 leading. Its re-drive now enqueues the stale write directly
	// (bypassing submit-time dedup) at a fresh sequence number. Replicas 0
	// and 1 skip it through their client tables; replica 2 can only skip it
	// too if the table came along with the transferred snapshot — without
	// it, the replay overwrites "fresh" with "stale" on replica 2 alone.
	cl.net.Restore(2)
	clB := &testClient{id: 98, n: 3, f: 1, ops: toOps(opScript(12))}
	cl.net.AttachConfig(98, clB, simnet.NodeConfig{})
	cl.net.Run(60 * time.Second)
	if !clB.done {
		t.Fatalf("phase B stalled: %d/12", clB.current)
	}
	if r2.Metrics().StateTransfers == 0 {
		t.Fatal("replica 2 caught up without a state transfer; the test needs the gap jump")
	}
	if r2.Leader(r2.View()) != 2 {
		t.Fatalf("cluster settled in view %d (leader %d); the regression needs replica 2 to lead and re-propose",
			r2.View(), r2.Leader(r2.View()))
	}
	if stalePending() {
		t.Fatal("stale marker write still pending on replica 2; the re-proposal never happened")
	}

	if got := string(cl.apps[2].Execute([]byte("GET marker"))); got != "VALUE fresh" {
		t.Errorf("replica 2 marker = %q, want VALUE fresh (stale re-proposal re-executed)", got)
	}
	if !bytes.Equal(cl.apps[0].Snapshot(), cl.apps[1].Snapshot()) ||
		!bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica states diverged after the stale re-proposal")
	}
}

func toOps(script []string) [][]byte {
	out := make([][]byte, len(script))
	for i, s := range script {
		out[i] = []byte(s)
	}
	return out
}

func TestForgedPrepareRejected(t *testing.T) {
	cl := newCluster(t, 3, nil)
	req := &msg.OrderRequest{Origin: 3, Client: 9, ClientSeq: 1, Op: []byte("PUT x 1")}
	forged := &msg.Prepare{
		View: 0, Seq: 1, Batch: msg.Batch{Reqs: []msg.OrderRequest{*req}},
		Cert: msg.CounterCert{Replica: 0, Counter: 0, Value: 1, MAC: []byte("forged-mac-bytes")},
	}
	// Inject the forged prepare as if it came from the leader.
	cl.net.At(0, func() {})
	follower := cl.replicas[1]
	cl.net.AttachConfig(50, &injector{to: 1, from: 0, m: forged}, simnet.NodeConfig{})
	cl.net.Run(time.Second)
	if follower.core.Metrics().RejectedCerts == 0 {
		t.Error("forged certificate not rejected")
	}
	if follower.core.LastExecuted() != 0 {
		t.Error("forged prepare led to execution")
	}
}

// injector sends one crafted message pretending a chosen source.
type injector struct {
	to   msg.NodeID
	from msg.NodeID
	m    msg.Message
}

func (i *injector) OnStart(env node.Env) {
	e := msg.Seal(env.Self(), i.to, i.m)
	e.From = i.from // spoof: in these tests transport identity is unchecked
	// simnet requires From == Self, so wrap: encode with spoofed From by
	// sending a pre-built envelope through a relay is not possible here;
	// instead send with our own ID and let the replica check certificate
	// fields (the certificate names replica 0, the envelope source is 50).
	e.From = env.Self()
	env.Send(e)
}
func (i *injector) OnEnvelope(node.Env, *msg.Envelope) {}
func (i *injector) OnTimer(node.Env, node.TimerKey)    {}

func TestWrongSenderPrepareRejected(t *testing.T) {
	// A prepare whose envelope source is not the leader is rejected even
	// with a structurally plausible certificate.
	cl := newCluster(t, 3, nil)
	req := &msg.OrderRequest{Origin: 3, Client: 9, ClientSeq: 1, Op: []byte("PUT x 1")}
	sub := tcounter.NewSubsystem(2)
	sub.SetKey([]byte("test-counter-key"))
	batch := msg.Batch{Reqs: []msg.OrderRequest{*req}}
	cert, err := sub.Certify(tcounter.OrderCounter(0), 1, prepareDigest(0, 1, batch.Digest()))
	if err != nil {
		t.Fatal(err)
	}
	evil := &msg.Prepare{View: 0, Seq: 1, Batch: batch, Cert: cert}
	cl.net.AttachConfig(50, &injector{to: 1, m: evil}, simnet.NodeConfig{})
	cl.net.Run(time.Second)
	if cl.replicas[1].core.LastExecuted() != 0 {
		t.Error("prepare from non-leader executed")
	}
}

func TestMetricsProgression(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(10)...)
	cl.net.Run(10 * time.Second)
	lead := cl.replicas[0].core.Metrics()
	if lead.Proposed < 10 {
		t.Errorf("leader proposed %d, want ≥10", lead.Proposed)
	}
	if lead.Executed < 10 {
		t.Errorf("leader executed %d, want ≥10", lead.Executed)
	}
}

func TestReadOnlyExecution(t *testing.T) {
	cl := newCluster(t, 3, nil, "PUT a 5")
	cl.net.Run(5 * time.Second)
	core := cl.replicas[0].core
	var env fakeEnv
	res, ok := core.ExecuteReadOnly(&env, []byte("GET a"))
	if !ok || string(res) != "VALUE 5" {
		t.Errorf("ExecuteReadOnly = %q, %v", res, ok)
	}
	if _, ok := core.ExecuteReadOnly(&env, []byte("PUT a 6")); ok {
		t.Error("write accepted as read-only")
	}
}

// fakeEnv satisfies node.Env for direct core calls in tests.
type fakeEnv struct{}

func (fakeEnv) Self() msg.NodeID                          { return 0 }
func (fakeEnv) Now() time.Duration                        { return 0 }
func (fakeEnv) Send(*msg.Envelope)                        {}
func (fakeEnv) SetTimer(time.Duration, node.TimerKey)     {}
func (fakeEnv) CancelTimer(node.TimerKey)                 {}
func (fakeEnv) Rand() *rand.Rand                          { return rand.New(rand.NewSource(1)) }
func (fakeEnv) Charge(node.Profile, node.ChargeKind, int) {}
func (fakeEnv) Logf(string, ...any)                       {}
