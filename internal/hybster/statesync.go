package hybster

import (
	"sort"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// Chunked, streaming state transfer with a certified-prefix handoff.
//
// A replica that agreed on a checkpoint it cannot reach by execution (f+1
// matching CHECKPOINT votes, lastExec below the checkpoint) fetches the
// snapshot from the replicas that voted the digest. The protocol is
// requester-driven:
//
//  1. StateRequest{Seq} (no chunk list) asks for the chunk manifest. The
//     server answers with StateReply{Manifest} — whose digest is exactly the
//     voted checkpoint digest — followed by StatePrefix carrying its
//     in-flight prepared entries above the checkpoint, each with the
//     original leader's counter certificate.
//  2. The requester verifies the manifest against the agreed digest, then
//     pulls chunks in windows: StateRequest{Seq, Chunks} lists missing
//     indices, the server answers each with StateChunk{Seq, Index, Data}.
//     Every chunk is verified against the manifest's per-chunk digest, so
//     nothing the server sends is taken on trust.
//  3. Chunks apply in index order; the composite head (client table) is
//     decoded once complete, the application part streams into an
//     app.RestoreSink. Out-of-order chunks buffer in a bounded window of
//     StateChunkWindow chunks — peak extra memory is window × chunk size
//     regardless of state size.
//  4. A fetch round that goes unanswered (dropped request, dropped reply,
//     crashed or Byzantine server) is retried on a jittered
//     exponential-backoff timer, rotating across the digest voters.
//  5. On completion the sink commits atomically, the client table installs,
//     and the certified prefix is replayed: each entry's certificate is
//     verified exactly as a view change would, then fed through OnPrepare,
//     so the joiner starts voting mid-window instead of waiting out the
//     remainder of the checkpoint interval.
//
// Safety: the manifest digest is the quorum-agreed checkpoint digest, so the
// manifest and (transitively) every chunk carry quorum evidence; a tampered
// chunk is detected by its digest and attributed to the serving peer. Prefix
// entries carry leader counter certificates — the same evidence view changes
// rely on — so a Byzantine server cannot forge ordering statements, only
// withhold them (in which case the joiner catches up through the ordinary
// vote flow).

// Server-side bounds per request, so one StateRequest cannot make a replica
// burst an unbounded reply volume.
const (
	maxChunksPerRequest = 256
	maxPrefixEntries    = 512
)

// stateFetch is the requester-side state machine of one chunked transfer.
type stateFetch struct {
	seq    uint64
	digest msg.Digest
	// rewind marks a divergence recovery: the install may then move
	// lastExec backwards, rolling the replica onto the quorum-agreed state.
	rewind bool

	// peers are the digest voters (sorted, self excluded); peerIdx is the
	// current server, rotated on timeout.
	peers    []msg.NodeID
	peerIdx  int
	attempts int

	manifest      *snapshotManifest
	manifestBytes []byte

	next     uint32            // lowest chunk index not yet applied
	reqHigh  uint32            // exclusive high mark of requested indices
	window   map[uint32][]byte // verified out-of-order chunks above next
	buffered int               // bytes held in window

	headBuf []byte                   // composite head accumulator
	fed     uint64                   // composite bytes consumed so far
	clients map[uint64]*clientRecord // decoded client table
	sink    app.RestoreSink          // streaming application restore

	prefix     *msg.StatePrefix
	prefixFrom msg.NodeID
}

// requestState starts a chunked state transfer for the stable checkpoint at
// seq, fetching from the peers whose votes matched digest. rewind marks a
// divergence recovery (the install may move lastExec backwards).
func (c *Core) requestState(env node.Env, seq uint64, digest msg.Digest, rewind bool, votes map[msg.NodeID]msg.Digest) {
	if c.fetch != nil && c.fetch.seq >= seq && !rewind {
		return
	}
	peers := make([]msg.NodeID, 0, len(votes))
	for id, d := range votes {
		if id != c.cfg.Self && d == digest {
			peers = append(peers, id)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	if len(peers) == 0 {
		return
	}
	// An older in-progress fetch is simply abandoned: its sink never
	// committed, so the application state is untouched.
	c.fetch = &stateFetch{seq: seq, digest: digest, rewind: rewind, peers: peers}
	c.metrics.StateTransfers++
	c.sendFetchRound(env)
	c.armFetchTimer(env)
}

// cancelFetch abandons the in-progress fetch (already caught up, or the
// stream turned out undecodable). The uncommitted sink leaves the
// application state untouched.
func (c *Core) cancelFetch(env node.Env) {
	c.fetch = nil
	env.CancelTimer(node.TimerKey{Kind: timerFetch})
}

// sendFetchRound sends the current peer whatever the fetch needs next: the
// manifest if we do not hold one, the full missing chunk window otherwise.
func (c *Core) sendFetchRound(env node.Env) {
	f := c.fetch
	if f.manifest == nil {
		c.out.Send(env, f.peers[f.peerIdx], &msg.StateRequest{Seq: f.seq})
		return
	}
	c.requestChunks(env, f.next)
}

// requestChunks asks the current peer for the chunks in [from, next+window)
// that are neither applied nor buffered, and advances the requested high
// mark. Passing f.next re-requests the whole missing window; passing
// f.reqHigh extends it as applied chunks slide it forward.
func (c *Core) requestChunks(env node.Env, from uint32) {
	f := c.fetch
	hi := min(f.next+uint32(c.cfg.StateChunkWindow), f.manifest.nChunks())
	want := make([]uint32, 0, c.cfg.StateChunkWindow)
	for i := max(from, f.next); i < hi; i++ {
		if _, buffered := f.window[i]; buffered {
			continue
		}
		want = append(want, i)
	}
	f.reqHigh = hi
	if len(want) == 0 {
		return
	}
	c.out.Send(env, f.peers[f.peerIdx], &msg.StateRequest{Seq: f.seq, Chunks: want})
}

// armFetchTimer schedules the fetch retry with exponential backoff and
// jitter (full-jitter around the doubled base, so simultaneous fetchers
// spread out; env.Rand is the node-seeded deterministic source).
func (c *Core) armFetchTimer(env node.Env) {
	d := c.cfg.StateFetchTimeout << min(c.fetch.attempts, 5)
	d = d/2 + time.Duration(env.Rand().Int63n(int64(d)))
	env.SetTimer(d, node.TimerKey{Kind: timerFetch})
}

// onFetchTimer fires when a fetch round went unanswered: back off, rotate to
// the next digest voter, and re-request everything still missing.
func (c *Core) onFetchTimer(env node.Env) {
	f := c.fetch
	if f == nil {
		return
	}
	if f.seq <= c.lastExec && !f.rewind {
		c.cancelFetch(env)
		return
	}
	f.attempts++
	c.metrics.StateFetchRetries++
	if len(f.peers) > 1 {
		f.peerIdx = (f.peerIdx + 1) % len(f.peers)
		c.metrics.StateFetchRotations++
	}
	c.sendFetchRound(env)
	c.armFetchTimer(env)
}

// OnStateRequest serves state-transfer data from the stable checkpoint.
// Without a chunk list the reply is the manifest plus the certified prefix
// of in-flight prepared entries; with one, the listed chunks.
func (c *Core) OnStateRequest(env node.Env, from msg.NodeID, req *msg.StateRequest) {
	if req.Seq != c.stableSeq || c.stableChunks == nil {
		return
	}
	cs := c.stableChunks
	if len(req.Chunks) == 0 {
		c.out.Send(env, from, &msg.StateReply{Seq: req.Seq, Manifest: cs.manifestBytes})
		entries := c.preparedAbove(req.Seq)
		if len(entries) > maxPrefixEntries {
			entries = entries[:maxPrefixEntries]
		}
		// Attach the NEW-VIEW that installed our current view (nil in view
		// 0): a fetcher that slept through the view change needs it to adopt
		// the view, or every prefix entry would be skipped as wrong-view and
		// the cluster's live traffic deferred indefinitely.
		c.out.Send(env, from, &msg.StatePrefix{
			Seq: req.Seq, LastExec: c.lastExec, Entries: entries, NewView: c.curNewView,
		})
		return
	}
	served := 0
	for _, idx := range req.Chunks {
		if served >= maxChunksPerRequest {
			break
		}
		data, ok := cs.chunk(idx)
		if !ok {
			continue
		}
		c.out.Send(env, from, &msg.StateChunk{Seq: req.Seq, Index: idx, Data: data})
		c.metrics.StateChunksServed++
		served++
	}
}

// OnStateReply installs a fetched manifest after verifying it against the
// agreed checkpoint digest, then starts pulling chunks.
func (c *Core) OnStateReply(env node.Env, from msg.NodeID, rep *msg.StateReply) {
	f := c.fetch
	if f == nil || rep.Seq != f.seq || f.manifest != nil {
		return
	}
	if rep.Seq <= c.lastExec && !f.rewind {
		// Ordinary execution caught up past the snapshot while the reply
		// was in flight. Installing it now would rewind both the
		// application state and lastExec below already-executed entries,
		// wedging the commit queue's low mark permanently. (A rewind
		// transfer is the exception: it exists precisely to roll a diverged
		// replica back.)
		c.cancelFetch(env)
		return
	}
	env.Charge(c.cfg.Profile, node.ChargeHash, len(rep.Manifest))
	if msg.DigestOf(rep.Manifest) != f.digest {
		// We only ask digest voters, and a correct voter serves exactly the
		// manifest it voted — a mismatch is the server's fabrication.
		c.metrics.StateChunkRejects++
		c.rejectCert(from)
		return
	}
	m, err := decodeManifest(rep.Manifest)
	if err != nil {
		// Digest-correct but undecodable means version skew, not forgery.
		env.Logf("hybster: decode state manifest at %d: %v", rep.Seq, err)
		c.cancelFetch(env)
		return
	}
	f.manifest = m
	f.manifestBytes = rep.Manifest
	f.window = make(map[uint32][]byte, c.cfg.StateChunkWindow)
	f.sink = app.RestoreSinkOf(c.cfg.App)
	f.attempts = 0
	c.requestChunks(env, f.next)
	c.armFetchTimer(env)
}

// OnStatePrefix stores the certified prefix accompanying a manifest reply.
// It is held until the snapshot install completes; verification happens at
// replay time (applyPrefix), against the leader's counter certificates.
func (c *Core) OnStatePrefix(env node.Env, from msg.NodeID, pfx *msg.StatePrefix) {
	f := c.fetch
	if f == nil || pfx.Seq != f.seq || f.prefix != nil {
		return
	}
	if len(pfx.Entries) > maxPrefixEntries {
		pfx.Entries = pfx.Entries[:maxPrefixEntries]
	}
	f.prefix = pfx
	f.prefixFrom = from
}

// OnStateChunk verifies one received chunk against the manifest and feeds it
// to the assembler: in-order chunks apply immediately (draining any buffered
// successors), out-of-order chunks within the window buffer, anything else
// is rejected.
func (c *Core) OnStateChunk(env node.Env, from msg.NodeID, ch *msg.StateChunk) {
	f := c.fetch
	if f == nil || f.manifest == nil || ch.Seq != f.seq {
		return
	}
	m := f.manifest
	if ch.Index >= m.nChunks() || ch.Index < f.next {
		return // stale duplicate after a re-request; normal under retries
	}
	if ch.Index >= f.next+uint32(c.cfg.StateChunkWindow) {
		c.metrics.StateChunkRejects++
		return // beyond anything we asked for; never buffer unbounded
	}
	if len(ch.Data) != m.chunkLen(ch.Index) {
		c.metrics.StateChunkRejects++
		c.rejectCert(from)
		return
	}
	env.Charge(c.cfg.Profile, node.ChargeHash, len(ch.Data))
	if msg.DigestOf(ch.Data) != m.chunks[ch.Index] {
		// The transport MAC authenticated the sender and correct replicas
		// serve only digest-verified chunks, so a mismatch is attributable
		// tampering. The timer rotates us to another voter.
		c.metrics.StateChunkRejects++
		c.rejectCert(from)
		return
	}
	c.metrics.StateChunksReceived++
	if ch.Index == f.next {
		if !c.applyFetchedChunk(env, ch.Data) {
			return
		}
		for {
			data, ok := f.window[f.next]
			if !ok {
				break
			}
			delete(f.window, f.next)
			f.buffered -= len(data)
			if !c.applyFetchedChunk(env, data) {
				return
			}
		}
	} else {
		if _, dup := f.window[ch.Index]; dup {
			return
		}
		f.window[ch.Index] = ch.Data
		f.buffered += len(ch.Data)
		if uint64(f.buffered) > c.metrics.MaxFetchBufferBytes {
			c.metrics.MaxFetchBufferBytes = uint64(f.buffered)
		}
	}
	// Progress: reset the backoff, slide the request window, re-arm.
	f.attempts = 0
	if f.next >= m.nChunks() {
		c.finishFetch(env)
		return
	}
	if f.reqHigh < f.next+uint32(c.cfg.StateChunkWindow) {
		c.requestChunks(env, f.reqHigh)
	}
	c.armFetchTimer(env)
}

// applyFetchedChunk consumes the next in-order chunk: head bytes accumulate
// until the client table is complete, everything after streams into the
// restore sink. Returns false if the stream is undecodable (version skew —
// the digests already verified), aborting the fetch.
func (c *Core) applyFetchedChunk(env node.Env, data []byte) bool {
	f := c.fetch
	if f.fed < uint64(f.manifest.clientLen) {
		take := min(uint64(f.manifest.clientLen)-f.fed, uint64(len(data)))
		f.headBuf = append(f.headBuf, data[:take]...)
		data = data[take:]
		f.fed += take
		if f.fed == uint64(f.manifest.clientLen) {
			clients, err := decodeSnapshotHead(f.headBuf)
			if err != nil {
				env.Logf("hybster: decode snapshot head at %d: %v", f.seq, err)
				c.cancelFetch(env)
				return false
			}
			f.clients = clients
			f.headBuf = nil
		}
	}
	f.next++
	if len(data) == 0 {
		return true
	}
	f.fed += uint64(len(data))
	if err := f.sink.Write(data); err != nil {
		env.Logf("hybster: stream snapshot at %d: %v", f.seq, err)
		c.cancelFetch(env)
		return false
	}
	return true
}

// finishFetch commits the streamed snapshot and installs the checkpoint:
// client table, execution low mark, continuity, then the certified prefix,
// so ordering resumes mid-window.
func (c *Core) finishFetch(env node.Env) {
	f := c.fetch
	if err := f.sink.Commit(); err != nil {
		// Every chunk digest verified, so this is version skew or an
		// application bug, not an attack; a later checkpoint will retry.
		env.Logf("hybster: commit snapshot at %d: %v", f.seq, err)
		c.cancelFetch(env)
		return
	}
	// The client table travels with the snapshot: its per-client dedup
	// marks decide whether a view-change re-proposal executes or is
	// skipped, so it must match the peers' tables exactly after the
	// transfer.
	c.clients = f.clients
	// Entries above the snapshot point re-execute against the restored
	// state. After a forward transfer none are marked executed (the
	// executed prefix sits at or below lastExec < seq); after a rewind this
	// re-opens the entries the diverged execution had consumed.
	for _, e := range c.log {
		if e.seq > f.seq {
			e.executed = false
		}
	}
	c.lastExec = f.seq
	c.stableSeq = f.seq
	c.stableDigest = f.digest
	// We streamed the composite into the application without materializing
	// it, so we hold no serving form of this checkpoint; we can serve again
	// after our next own checkpoint.
	c.stableChunks = nil
	if c.seqNext <= f.seq {
		c.seqNext = f.seq + 1
	}
	// Continuity restarts after the snapshot point.
	c.advanceContinuity(f.seq)
	prefix, prefixFrom := f.prefix, f.prefixFrom
	c.cancelFetch(env)
	c.gc(f.seq)
	// The shadow's speculated history is unrelated to the state just
	// installed (and after a rewind, possibly ahead of it): re-anchor it on
	// the transferred snapshot and retract outstanding fast answers. The
	// certified prefix replayed below re-speculates via the PREPARE path.
	c.rollbackSpec(env)
	if prefix != nil {
		if nv := prefix.NewView; nv != nil && nv.View > c.view {
			// Adopt the server's view — full certificate verification
			// included — before replaying the prefix: a joiner that slept
			// through the view change would otherwise skip every entry.
			// installView anchors lane continuity at the newer of the view
			// change's stable point and the checkpoint just installed, so
			// the prefix entries above the snapshot edge are next-in-order.
			c.OnNewView(env, prefixFrom, nv)
		}
		c.applyPrefix(env, prefixFrom, prefix)
	}
	c.executeReady(env)
	// Ordered messages buffered while we lagged may now be in-order.
	c.drainPrepares(env)
	for i := 0; i < c.cfg.N; i++ {
		c.drainCommits(env, msg.NodeID(i))
	}
}

// applyPrefix replays the certified prefix after an install: every in-flight
// prepared entry the server handed over is verified against the leader's
// counter certificate — exactly the checks a view change applies to carried
// entries — and fed through the ordinary PREPARE path, so the joiner
// certifies its own commits and resumes mid-window without replaying
// pre-checkpoint entries. A bad certificate is the *server's* fabrication
// (it vouched for the entry), so rejection is attributed to it, not to the
// leader.
func (c *Core) applyPrefix(env node.Env, from msg.NodeID, pfx *msg.StatePrefix) {
	installed := false
	for i := range pfx.Entries {
		pe := &pfx.Entries[i]
		if pe.View != c.view || pe.Seq <= c.lastExec {
			continue // stale across a view change or below the checkpoint
		}
		leader := c.Leader(pe.View)
		if pe.PrepareCert.Replica != leader ||
			pe.PrepareCert.Counter != c.laneCounter(pe.View, pe.Seq) ||
			pe.PrepareCert.Value != pe.Seq ||
			!c.cfg.Authority.Verify(pe.PrepareCert, prepareDigest(pe.View, pe.Seq, pe.Batch.Digest())) {
			c.rejectCert(from)
			continue
		}
		c.chargeCounterOp(env)
		c.metrics.PrefixEntriesInstalled++
		installed = true
		batch := pe.Batch
		c.OnPrepare(env, leader, &msg.Prepare{View: pe.View, Seq: pe.Seq, Batch: batch, Cert: pe.PrepareCert})
	}
	if installed {
		c.metrics.PrefixResumes++
	}
}

// resyncCommits jumps the per-lane commit-continuity expectations for one
// peer forward onto the counter values it is actually sending. A peer that
// installed a checkpoint via state transfer advanced its commit counters
// past the gap it jumped without us ever seeing those values; without the
// jump, everything it sends afterwards buffers in pendingCommits forever —
// a memory leak and a permanently lost voucher stream.
//
// Safety: expectations only move forward, so the replay protection of the
// continuity check is preserved (anything below the new expectation is
// dropped exactly as before). Skipping values forfeits only this peer's
// vouchers for entries we will never complete through it; each certified
// value binds one (view, seq, digest) through the trusted counter, so
// accepting later values cannot admit a conflicting commit. Liveness is
// unaffected: prepared entries reach quorum from the leader's and our own
// certificates even if a third voter's stream has a hole.
func (c *Core) resyncCommits(env node.Env, from msg.NodeID) {
	byVal := c.pendingCommits[from]
	vals := make([]uint64, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	jumped := false
	seen := make(map[int]bool, c.lanes())
	for _, v := range vals {
		lane := tcounter.LaneOf(v, c.cfg.PipelineDepth)
		if seen[lane] {
			continue // only the smallest buffered value per lane matters
		}
		seen[lane] = true
		if v > c.nextCommitValue[from][lane] {
			c.nextCommitValue[from][lane] = v
			jumped = true
		}
	}
	if jumped {
		c.metrics.CommitResyncs++
		env.Logf("hybster: resynced commit continuity for replica %d", from)
		c.drainCommits(env, from)
	}
}
