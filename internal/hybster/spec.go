package hybster

import (
	"sort"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
)

// Speculative crash-commit fast path (tunable commit levels).
//
// A request flagged msg.FlagFastCommit opts into the crash-tolerant tier: the
// client accepts an answer backed by f+1 PREPARE-round counter certificates
// instead of f+1 durable execution replies. To produce that answer without
// touching the durable application state, each replica runs the contiguous
// *prepared* prefix of its log — entries holding a verified PREPARE but not
// necessarily a commit quorum — against a shadow application instance
// (Config.SpecShadow) and emits a SpecReply per fast-flagged request, carrying
// the certificate it already holds for the batch: the leader's own PREPARE
// certificate, or the follower's COMMIT certificate minted when it accepted
// the PREPARE. Both bind (view, seq, batchDigest) through the trusted
// counter, so f+1 of them prove f+1 replicas adopted this batch at this slot
// — a crash-commit: it survives any combination of crashes (the quorum
// intersects every later view-change quorum in at least one replica), but a
// Byzantine replica inside the intersection can still make the view change
// drop it.
//
// When that happens — or whenever the speculated prefix stops matching the
// durable one — the shadow is rolled back: it is restored from the durable
// application's own snapshot (the durable prefix is, by definition, the
// certified anchor), the speculative client table is rebuilt from the durable
// one, and every outstanding speculation is retracted so the origin's Troxy
// can tell its client the fast answer was withdrawn before the durable repair
// arrives. Rollback triggers are view installation (the new view may drop or
// reorder prepared entries), state-transfer installs (the shadow's history is
// unrelated to the jumped-to state), and execution-time divergence (the
// durable batch at a slot differs from the one speculated there).
//
// The shadow never feeds back into agreement: durable execution, checkpoints,
// and state transfer read Config.App only, so a speculation bug can produce a
// wrong *fast* answer (later retracted and repaired) but never a wrong
// durable one.

// SpecOutbound is an optional extension of Outbound. An Outbound that also
// implements it receives the speculative fast-path callbacks; one that does
// not simply never sees them (speculation still maintains the shadow so the
// divergence checks stay armed).
type SpecOutbound interface {
	// Speculated reports that the prepared-but-uncommitted request req was
	// executed against the shadow at agreement slot seq in view, producing
	// result. cert is this replica's PREPARE-round counter certificate for
	// the enclosing batch (prepare cert if this replica leads view, its own
	// commit cert otherwise); batchDigest is the digest of the enclosing
	// batch that cert binds. The receiver forwards both in a msg.SpecReply
	// to the request's origin.
	Speculated(env node.Env, view, seq uint64, batchDigest msg.Digest, req *msg.OrderRequest, result []byte, cert msg.CounterCert)

	// Retracted reports that a speculation previously reported via
	// Speculated was withdrawn: a view change, state transfer, or divergence
	// rolled the shadow back before the durable tier settled the request.
	// It is only invoked for requests this replica originated — every
	// correct replica computes the same durable history, so the origin
	// detects its own losses without a retraction protocol message. The
	// durable execution (or reply-cache replay) of the retried request
	// follows and repairs the client.
	Retracted(env node.Env, seq uint64, req *msg.OrderRequest, view uint64)
}

type specKey struct {
	client    uint64
	clientSeq uint64
}

// specRecord is one outstanding speculation: a fast-flagged request answered
// from the shadow and not yet settled by durable execution.
type specRecord struct {
	seq    uint64
	view   uint64
	result []byte
	req    *msg.OrderRequest
}

// specEnabled reports whether the fast path is active.
func (c *Core) specEnabled() bool { return c.cfg.SpecShadow != nil && !c.specBroken }

// SpecFrontier returns the highest sequence number executed against the
// shadow (>= LastExecuted; equal when speculation is disabled or fully
// rolled back).
func (c *Core) SpecFrontier() uint64 { return c.specExec }

// advanceSpec runs the contiguous prepared prefix above the speculation
// frontier through the shadow. Called after every point that can extend the
// prefix (PREPARE acceptance, leader proposal, rollback re-anchoring) and
// *before* the corresponding durable commit attempt, so the fast answer for
// an entry is emitted no later than its durable one.
func (c *Core) advanceSpec(env node.Env) {
	if !c.specEnabled() || c.inVC {
		return
	}
	for {
		e, ok := c.log[c.specExec+1]
		if !ok || !e.hasPrep || !e.hasSpecCert {
			return
		}
		c.speculate(env, e)
	}
}

// speculate executes one prepared entry against the shadow and reports every
// fast-flagged request in it. The shadow client table mirrors the durable
// table's dedup rule so the speculated history and the durable history make
// identical skip decisions as long as they run the same batches in the same
// order — any other outcome is caught as divergence at durable execution
// time.
func (c *Core) speculate(env node.Env, e *entry) {
	c.specExec = e.seq
	c.specLog[e.seq] = e.digest
	so, hasOut := c.out.(SpecOutbound)
	for i := range e.batch.Reqs {
		req := &e.batch.Reqs[i]
		if req.Origin == msg.NoNode && len(req.Op) == 0 {
			continue // gap-filling no-op from a view change
		}
		if last, ok := c.specClients[req.Client]; ok && req.ClientSeq <= last {
			continue // duplicate under the speculated history
		}
		result := c.cfg.SpecShadow.Execute(req.Op)
		env.Charge(c.cfg.Profile, node.ChargeExec, len(req.Op)+len(result))
		c.specClients[req.Client] = req.ClientSeq
		if !req.FastCommit() || req.Origin == msg.NoNode {
			continue
		}
		c.metrics.Speculated++
		c.specOut[specKey{req.Client, req.ClientSeq}] = &specRecord{
			seq: e.seq, view: e.view, result: result, req: req,
		}
		if hasOut {
			so.Speculated(env, e.view, e.seq, e.digest, req, result, e.specCert)
		}
	}
}

// VerifySpecReply checks the counter certificate carried by a SpecReply
// received from a peer: the certificate must have been minted by the claimed
// executor, on the ordering-counter lane for (View, Seq), with the counter
// value Seq, over the PREPARE binding if the executor leads View (the leader
// vouches with its prepare cert) or the COMMIT binding otherwise (a follower
// vouches with the commit cert it minted when accepting the PREPARE). A
// failure is counted and attributed to from, exactly like any other rejected
// certificate.
func (c *Core) VerifySpecReply(env node.Env, from msg.NodeID, sr *msg.SpecReply) bool {
	if sr.Cert.Replica != sr.Executor ||
		sr.Cert.Counter != c.laneCounter(sr.View, sr.Seq) ||
		sr.Cert.Value != sr.Seq {
		c.rejectCert(from)
		return false
	}
	var bound msg.Digest
	if c.Leader(sr.View) == sr.Executor {
		bound = prepareDigest(sr.View, sr.Seq, sr.BatchDigest)
	} else {
		bound = commitDigest(sr.View, sr.Seq, sr.BatchDigest)
	}
	if !c.cfg.Authority.Verify(sr.Cert, bound) {
		c.rejectCert(from)
		return false
	}
	c.chargeCounterOp(env)
	return true
}

// settleSpec resolves the outstanding speculation for a durably settled
// request, if any. The durable reply (already flowing via Committed) is what
// confirms or repairs the client; the core only needs to stop tracking the
// speculation so a later rollback does not retract an already-settled answer.
func (c *Core) settleSpec(req *msg.OrderRequest) {
	k := specKey{req.Client, req.ClientSeq}
	if _, ok := c.specOut[k]; ok {
		delete(c.specOut, k)
		c.metrics.SpecConfirmed++
	}
}

// rollbackSpec rewinds the shadow onto the durable prefix: retract every
// outstanding speculation, restore the shadow from the durable application's
// snapshot (the certified anchor — everything at or below lastExec carries a
// commit quorum or a stable checkpoint), rebuild the speculative client
// table from the durable one, and re-advance over whatever prepared prefix
// survived. Retraction is conservative: a speculation whose batch survives
// the view change intact is retracted anyway and the client repaired by the
// durable reply — cheap, and it keeps the retraction rule independent of
// *why* the prefix changed.
func (c *Core) rollbackSpec(env node.Env) {
	if !c.specEnabled() {
		return
	}
	c.metrics.SpecRollbacks++
	so, hasOut := c.out.(SpecOutbound)
	keys := make([]specKey, 0, len(c.specOut))
	for k := range c.specOut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].client != keys[j].client {
			return keys[i].client < keys[j].client
		}
		return keys[i].clientSeq < keys[j].clientSeq
	})
	for _, k := range keys {
		rec := c.specOut[k]
		delete(c.specOut, k)
		c.metrics.SpecRetractions++
		if hasOut && rec.req.Origin == c.cfg.Self {
			so.Retracted(env, rec.seq, rec.req, rec.view)
		}
	}
	if err := c.cfg.SpecShadow.Restore(c.cfg.App.Snapshot()); err != nil {
		// The shadow cannot re-anchor (an application whose snapshot does not
		// round-trip). Disable the fast path rather than answer from a stale
		// shadow; durable operation is unaffected.
		env.Logf("hybster: spec shadow restore failed, disabling fast path: %v", err)
		c.specBroken = true
		c.specOut = make(map[specKey]*specRecord)
		c.specLog = make(map[uint64]msg.Digest)
		c.specExec = c.lastExec
		return
	}
	c.specExec = c.lastExec
	c.specLog = make(map[uint64]msg.Digest)
	c.specClients = make(map[uint64]uint64, len(c.clients))
	for id, rec := range c.clients {
		c.specClients[id] = rec.lastSeq
	}
	c.advanceSpec(env)
}
