package hybster

import (
	"bytes"
	"crypto/sha256"
	"sort"

	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// timerViewChange escalates to the next view if an initiated view change
// does not complete in time. The key's ID is the pending view number.
const timerViewChange = "hybster/viewchange"

// startViewChange certifies and broadcasts this replica's VIEW-CHANGE for
// newView. The certificate value equals the view number, so the trusted
// counter enforces at most one view-change statement per view and replica.
func (c *Core) startViewChange(env node.Env, newView uint64) {
	if newView <= c.view || newView <= c.vcVoted {
		return
	}
	c.inVC = true
	c.metrics.ViewChanges++
	// Requests sitting in the batch accumulator have no PREPARE yet, so no
	// view change will carry them; requeue them for the new view's leader.
	c.flushBatchBuf(env)

	vc := &msg.ViewChange{
		Replica:      c.cfg.Self,
		NewView:      newView,
		StableSeq:    c.stableSeq,
		StableDigest: c.stableDigest,
		Prepared:     c.preparedAbove(c.stableSeq),
	}
	digest := sha256.Sum256(vc.CertInput())
	cert, err := c.cfg.Authority.Certify(tcounter.ViewChangeCounter, newView, digest)
	c.chargeCounterOp(env)
	if err != nil {
		env.Logf("hybster: certify view change %d: %v", newView, err)
		return
	}
	vc.Cert = cert
	c.vcVoted = newView

	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, vc)
		}
	}
	c.recordViewChange(env, vc)
	env.SetTimer(c.cfg.ViewChangeTimeout, node.TimerKey{Kind: timerViewChange, ID: newView})
}

// preparedAbove collects this replica's prepared entries above seq, in
// sequence order.
func (c *Core) preparedAbove(seq uint64) []msg.PreparedEntry {
	var seqs []uint64
	for s, e := range c.log {
		if s > seq && e.hasPrep {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]msg.PreparedEntry, 0, len(seqs))
	for _, s := range seqs {
		e := c.log[s]
		out = append(out, msg.PreparedEntry{
			View:        e.view,
			Seq:         s,
			Batch:       *e.batch,
			PrepareCert: e.prepCert,
		})
	}
	return out
}

// verifyViewChange checks a VIEW-CHANGE message's certificate and the
// prepare certificates of every entry it carries.
func (c *Core) verifyViewChange(env node.Env, vc *msg.ViewChange) bool {
	digest := sha256.Sum256(vc.CertInput())
	if vc.Cert.Replica != vc.Replica ||
		vc.Cert.Counter != tcounter.ViewChangeCounter ||
		vc.Cert.Value != vc.NewView ||
		!c.cfg.Authority.Verify(vc.Cert, digest) {
		return false
	}
	c.chargeCounterOp(env)
	for i := range vc.Prepared {
		pe := &vc.Prepared[i]
		leader := c.Leader(pe.View)
		if pe.PrepareCert.Replica != leader ||
			pe.PrepareCert.Counter != c.laneCounter(pe.View, pe.Seq) ||
			pe.PrepareCert.Value != pe.Seq ||
			!c.cfg.Authority.Verify(pe.PrepareCert, prepareDigest(pe.View, pe.Seq, pe.Batch.Digest())) {
			return false
		}
		c.chargeCounterOp(env)
	}
	return true
}

// OnViewChange handles a peer's VIEW-CHANGE.
func (c *Core) OnViewChange(env node.Env, from msg.NodeID, vc *msg.ViewChange) {
	if vc.Replica != from || vc.NewView <= c.view {
		return
	}
	if !c.verifyViewChange(env, vc) {
		c.rejectCert(from)
		return
	}
	c.recordViewChange(env, vc)
	// A certified view-change from any replica is evidence enough to join:
	// with 2f+1 replicas, waiting for f+1 independent suspicions could
	// stall forever because only the replica that owns the pending request
	// watches its progress.
	if vc.NewView > c.vcVoted {
		c.startViewChange(env, vc.NewView)
	}
}

func (c *Core) recordViewChange(env node.Env, vc *msg.ViewChange) {
	votes, ok := c.vcs[vc.NewView]
	if !ok {
		votes = make(map[msg.NodeID]*msg.ViewChange)
		c.vcs[vc.NewView] = votes
	}
	votes[vc.Replica] = vc
	c.maybeInstall(env, vc.NewView)
}

// maybeInstall creates and broadcasts the NEW-VIEW once this replica is the
// designated leader of newView and holds f+1 view-change messages.
func (c *Core) maybeInstall(env node.Env, newView uint64) {
	if c.Leader(newView) != c.cfg.Self || newView <= c.view {
		return
	}
	votes := c.vcs[newView]
	if len(votes) < c.quorum() {
		return
	}
	ids := make([]msg.NodeID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nv := &msg.NewView{Leader: c.cfg.Self, View: newView}
	for _, id := range ids[:c.quorum()] {
		nv.ViewChanges = append(nv.ViewChanges, *votes[id])
	}
	digest := sha256.Sum256(nv.CertInput())
	cert, err := c.cfg.Authority.Certify(tcounter.NewViewCounter, newView, digest)
	c.chargeCounterOp(env)
	if err != nil {
		env.Logf("hybster: certify new view %d: %v", newView, err)
		return
	}
	nv.Cert = cert
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, nv)
		}
	}
	c.installView(env, nv)
}

// OnNewView handles a NEW-VIEW: the new leader's broadcast, or a relay of it
// (a solicited replica answering NewViewRequest, or a state-transfer server
// attaching it to the prefix). The leader's counter certificate proves
// authorship regardless of who delivered the message, so a relay needs no
// authority of its own; a message that fails verification is blamed on the
// sender (the transport MAC authenticated it), relay or not.
func (c *Core) OnNewView(env node.Env, from msg.NodeID, nv *msg.NewView) {
	if nv.View <= c.view {
		return
	}
	if nv.Leader == c.cfg.Self {
		// A relay of a view this replica once led (and forgot across a
		// crash). Re-entering it as leader would mean re-certifying counter
		// values the pre-crash incarnation already consumed; stay put and let
		// the cluster's escalation move everyone past it.
		return
	}
	if c.Leader(nv.View) != nv.Leader {
		c.rejectCert(from)
		return
	}
	digest := sha256.Sum256(nv.CertInput())
	if nv.Cert.Replica != nv.Leader ||
		nv.Cert.Counter != tcounter.NewViewCounter ||
		nv.Cert.Value != nv.View ||
		!c.cfg.Authority.Verify(nv.Cert, digest) {
		c.rejectCert(from)
		return
	}
	c.chargeCounterOp(env)
	seen := make(map[msg.NodeID]struct{})
	for i := range nv.ViewChanges {
		vc := &nv.ViewChanges[i]
		if vc.NewView != nv.View || !c.verifyViewChange(env, vc) {
			c.rejectCert(from)
			return
		}
		seen[vc.Replica] = struct{}{}
	}
	if len(seen) < c.quorum() {
		c.rejectCert(from)
		return
	}
	c.installView(env, nv)
}

// installView switches to the view described by a verified NEW-VIEW,
// re-proposing (as leader) or expecting re-proposals for (as follower) every
// prepared entry above the maximum stable checkpoint among the view changes.
func (c *Core) installView(env node.Env, nv *msg.NewView) {
	var maxStable uint64
	reproposals := make(map[uint64]msg.PreparedEntry)
	var maxPrepared uint64
	for i := range nv.ViewChanges {
		vc := &nv.ViewChanges[i]
		if vc.StableSeq > maxStable {
			maxStable = vc.StableSeq
		}
		for _, pe := range vc.Prepared {
			cur, ok := reproposals[pe.Seq]
			if !ok || pe.View > cur.View {
				reproposals[pe.Seq] = pe
			}
			if pe.Seq > maxPrepared {
				maxPrepared = pe.Seq
			}
		}
	}

	if c.vcVoted < nv.View {
		// Installing a view we never voted a VIEW-CHANGE for means we learned
		// it from evidence (a relayed NEW-VIEW or a state-transfer prefix)
		// rather than joining the change live.
		c.metrics.ViewAdoptions++
	}
	c.view = nv.View
	c.inVC = false
	c.curNewView = nv
	env.CancelTimer(node.TimerKey{Kind: timerViewChange, ID: nv.View})
	// A replica can install a view straight from a NEW-VIEW without having
	// voted; anything still in its accumulator must be re-driven below.
	c.flushBatchBuf(env)

	// Reset per-view ordering state. Entries that were not executed are
	// dropped; the new leader's re-proposals will recreate them.
	startSeq := maxStable + 1
	if c.stableSeq > maxStable {
		// Our own stable checkpoint can postdate the view change's evidence:
		// an adopter installing a relayed NEW-VIEW after a state transfer
		// (its snapshot already covers the change's stable point), or a
		// replica whose latest checkpoint quorum is absent from the carried
		// view changes. Everything at or below a stable checkpoint is
		// settled cluster-wide; anchoring below it would expect re-proposals
		// that already flowed — or, as the new leader, propose fresh batches
		// below our own executed state.
		startSeq = c.stableSeq + 1
	}
	for seq, e := range c.log {
		if !e.executed {
			delete(c.log, seq)
		}
	}
	c.pendingPrepares = make(map[uint64]*msg.Prepare)
	c.pendingCommits = make(map[msg.NodeID]map[uint64]*msg.Commit)
	c.proposed = make(map[msg.Digest]struct{})
	c.resetContinuity(startSeq)
	c.maxAcceptedPrep = 0
	for v := range c.vcs {
		if v <= nv.View {
			delete(c.vcs, v)
		}
	}
	// The new view may drop or reorder prepared entries: rewind the
	// speculation shadow onto the durable prefix and retract outstanding
	// fast answers. Re-proposals below re-speculate through the ordinary
	// accept path.
	c.rollbackSpec(env)

	env.Logf("hybster: installed view %d (stable %d, re-proposals %d)",
		nv.View, maxStable, len(reproposals))

	reproposed := make(map[msg.Digest]struct{}, len(reproposals))
	if c.IsLeader() {
		c.seqNext = startSeq
		for seq := startSeq; seq <= maxPrepared; seq++ {
			if pe, ok := reproposals[seq]; ok {
				batch := pe.Batch
				for _, d := range batch.ReqDigests() {
					reproposed[d] = struct{}{}
				}
				c.proposeBatch(env, &batch)
				continue
			}
			// Fill the hole with an empty batch so counter continuity holds.
			c.proposeBatch(env, &msg.Batch{})
		}
	} else {
		for _, pe := range reproposals {
			for _, d := range pe.Batch.ReqDigests() {
				reproposed[d] = struct{}{}
			}
		}
	}

	// Re-drive requests this replica is responsible for: queued ones and
	// locally submitted ones that are not covered by a re-proposal (their
	// Forward may have died with the old leader). Duplicates are filtered
	// by the execution-time client table.
	pending := c.queued
	c.queued = nil
	var missed []msg.Digest
	for digest := range c.pendingLocal {
		if _, ok := reproposed[digest]; ok {
			continue
		}
		missed = append(missed, digest)
	}
	sort.Slice(missed, func(i, j int) bool {
		return bytes.Compare(missed[i][:], missed[j][:]) < 0
	})
	for _, digest := range missed {
		pending = append(pending, c.pendingLocal[digest])
	}
	// Sort the whole re-drive set by (Client, ClientSeq): the re-drive order
	// below is protocol-visible (enqueue/Forward order), and this order both
	// is deterministic and preserves per-client FIFO — the execution-time
	// client table drops any request whose ClientSeq is behind that client's
	// latest executed one, so re-driving a client's later request ahead of
	// an earlier one (possible from retries queued during the view change)
	// would silently discard the earlier request. The stable sort falls back
	// to the digest order established above for any tie.
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].Client != pending[j].Client {
			return pending[i].Client < pending[j].Client
		}
		return pending[i].ClientSeq < pending[j].ClientSeq
	})
	for _, req := range pending {
		if c.IsLeader() {
			c.enqueue(env, req, req.Digest())
		} else {
			c.out.Send(env, c.Leader(c.view), &msg.Forward{Req: *req})
		}
	}
	if len(c.pendingLocal) > 0 {
		env.SetTimer(c.cfg.ViewChangeTimeout, node.TimerKey{Kind: timerProgress})
	}

	c.replayDeferred(env)
}

// onViewChangeTimer escalates a stalled view change.
func (c *Core) onViewChangeTimer(env node.Env, pendingView uint64) {
	if c.view >= pendingView || !c.inVC {
		return
	}
	env.Logf("hybster: view change to %d stalled, escalating", pendingView)
	c.startViewChange(env, pendingView+1)
}
