package hybster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// judgeFunc adapts a plain function to faultplane.Judge for targeted drops.
type judgeFunc func(now time.Duration, from, to msg.NodeID, kind msg.Kind) faultplane.Decision

func (f judgeFunc) Judge(now time.Duration, from, to msg.NodeID, kind msg.Kind) faultplane.Decision {
	return f(now, from, to, kind)
}

// TestStateFetchRetryAfterDroppedReply is the deterministic regression for
// the state-fetch wedge: before the fetch timer existed, a single dropped
// StateReply stalled recovery forever, because re-notification of the same
// stable checkpoint was suppressed and nothing ever re-sent the request. Now
// the jittered backoff timer must fire, re-request, and complete the
// transfer.
func TestStateFetchRetryAfterDroppedReply(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(40)...)
	// Drop every StateReply toward replica 2 until its fetch timer has fired
	// at least once: under continuous traffic a newer checkpoint can
	// supersede a wedged fetch before the backoff expires, so a single drop
	// would not pin the timer path. This judge forces exactly the old wedge
	// condition — replies lost, nothing but the timer to recover — then
	// heals.
	dropped := 0
	cl.net.SetFault(judgeFunc(func(_ time.Duration, _, to msg.NodeID, kind msg.Kind) faultplane.Decision {
		if kind == msg.KindStateReply && to == 2 &&
			cl.replicas[2].core.Metrics().StateFetchRetries == 0 {
			dropped++
			return faultplane.Decision{Drop: true}
		}
		return faultplane.Decision{}
	}))

	cl.net.Run(100 * time.Millisecond)
	cl.net.Crash(2)
	cl.net.Run(30 * time.Second)
	if !cl.client.done {
		t.Fatalf("client stalled during partition: %d/40", cl.client.current)
	}
	behind := cl.replicas[2].core.LastExecuted()
	cl.net.Restore(2)

	extra := &testClient{id: 99, n: 3, f: 1, ops: toOps(opScript(30))}
	cl.net.AttachConfig(99, extra, simnet.NodeConfig{})
	cl.net.Run(60 * time.Second)

	if !extra.done {
		t.Fatalf("extra client stalled: %d/30", extra.current)
	}
	if dropped == 0 {
		t.Fatal("judge never intercepted a StateReply")
	}
	r2 := cl.replicas[2].core
	m := r2.Metrics()
	if m.StateFetchRetries == 0 {
		t.Error("no fetch retry recorded after the dropped StateReply")
	}
	if r2.LastExecuted() <= behind {
		t.Errorf("replica 2 did not catch up: %d -> %d", behind, r2.LastExecuted())
	}
	if m.StateChunksReceived == 0 {
		t.Error("no chunks received")
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica 2 state diverged after catch-up")
	}
}

// TestStateFetchRotatesOnUnresponsivePeer starves the fetcher's first-choice
// server: replica 0 never answers replica 2's state-transfer traffic (its
// replies and chunks are dropped). The retry timer must rotate the fetch to
// replica 1 — the other digest voter — and complete from there.
func TestStateFetchRotatesOnUnresponsivePeer(t *testing.T) {
	cl := newCluster(t, 3, nil, opScript(40)...)
	dropped := 0
	cl.net.SetFault(judgeFunc(func(_ time.Duration, from, to msg.NodeID, kind msg.Kind) faultplane.Decision {
		if from == 0 && to == 2 && (kind == msg.KindStateReply || kind == msg.KindStateChunk || kind == msg.KindStatePrefix) {
			dropped++
			return faultplane.Decision{Drop: true}
		}
		return faultplane.Decision{}
	}))

	cl.net.Run(100 * time.Millisecond)
	cl.net.Crash(2)
	cl.net.Run(30 * time.Second)
	if !cl.client.done {
		t.Fatalf("client stalled during partition: %d/40", cl.client.current)
	}
	behind := cl.replicas[2].core.LastExecuted()
	cl.net.Restore(2)

	extra := &testClient{id: 99, n: 3, f: 1, ops: toOps(opScript(30))}
	cl.net.AttachConfig(99, extra, simnet.NodeConfig{})
	cl.net.Run(60 * time.Second)

	if !extra.done {
		t.Fatalf("extra client stalled: %d/30", extra.current)
	}
	if dropped == 0 {
		t.Fatal("judge never intercepted state traffic from replica 0")
	}
	r2 := cl.replicas[2].core
	m := r2.Metrics()
	if m.StateFetchRotations == 0 {
		t.Error("fetch never rotated away from the unresponsive peer")
	}
	if m.StateChunksReceived == 0 {
		t.Error("no chunks received from the responsive peer")
	}
	if r2.LastExecuted() <= behind {
		t.Errorf("replica 2 did not catch up: %d -> %d", behind, r2.LastExecuted())
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica 2 state diverged after catch-up")
	}
}

// newStateCore builds a standalone core (no simnet) with a small chunk size,
// for driving the statesync handlers directly.
func newStateCore(id msg.NodeID, chunkSize, window int) *testReplica {
	sub := tcounter.NewSubsystem(id)
	sub.SetKey([]byte("test-counter-key"))
	cfg := Config{
		Self:               id,
		N:                  3,
		F:                  1,
		CheckpointInterval: 8,
		ViewChangeTimeout:  time.Second,
		Profile:            node.ProfileJava,
		Authority:          tcounter.Direct{S: sub},
		App:                app.NewStore(),
		SnapshotChunkSize:  chunkSize,
		StateChunkWindow:   window,
	}
	r := &testReplica{id: id}
	r.core = New(cfg, r)
	return r
}

// TestStateChunkVerification drives OnStateChunk directly through the
// verification table: a Byzantine peer serving tampered or malformed chunks
// must be rejected (and attributed), stale and out-of-window traffic must be
// bounded, and the fetch must still complete from another peer's correct
// chunks — including out-of-order arrival through the bounded window.
func TestStateChunkVerification(t *testing.T) {
	const chunkSize, window = 16, 4
	var env fakeEnv

	// A server with real state: application keys plus a client-table entry,
	// so the composite head spans chunk boundaries.
	srv := newStateCore(0, chunkSize, window)
	srvStore := srv.core.cfg.App.(*app.Store)
	for i := 0; i < 50; i++ {
		srvStore.Execute([]byte(fmt.Sprintf("PUT key-%02d value-%04d", i, i)))
	}
	srv.core.clients[7] = &clientRecord{lastSeq: 3, seq: 9, result: []byte("OK")}
	cs := srv.core.buildChunkedSnapshot()
	n := cs.manifest.nChunks()
	if n < uint32(window)+2 {
		t.Fatalf("snapshot has %d chunks, need > %d for window cases", n, window+2)
	}

	// A fetcher with an active transfer; the manifest installs through the
	// real handler, verified against the agreed digest.
	fc := newStateCore(2, chunkSize, window).core
	fc.fetch = &stateFetch{seq: 8, digest: cs.digest, peers: []msg.NodeID{0, 1}}
	fc.OnStateReply(&env, 0, &msg.StateReply{Seq: 8, Manifest: cs.manifestBytes})
	if fc.fetch == nil || fc.fetch.manifest == nil {
		t.Fatal("manifest did not install from a digest-correct StateReply")
	}

	chunkData := func(i uint32) []byte {
		data, ok := cs.chunk(i)
		if !ok {
			t.Fatalf("no chunk %d", i)
		}
		return append([]byte(nil), data...)
	}

	// Stale seq: silently ignored, nothing counted.
	fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 4, Index: 0, Data: chunkData(0)})
	if m := fc.Metrics(); m.StateChunksReceived != 0 || m.StateChunkRejects != 0 {
		t.Fatalf("stale-seq chunk counted: %+v", m)
	}

	// Tampered payload from the Byzantine peer 0: rejected and attributed.
	bad := chunkData(0)
	bad[0] ^= 0x01
	fc.OnStateChunk(&env, 0, &msg.StateChunk{Seq: 8, Index: 0, Data: bad})
	if m := fc.Metrics(); m.StateChunkRejects != 1 || m.StateChunksReceived != 0 {
		t.Fatalf("tampered chunk not rejected: %+v", m)
	}
	if got := fc.RejectedCertsFrom(0); got != 1 {
		t.Fatalf("tampering not attributed to peer 0: RejectedCertsFrom = %d", got)
	}
	if fc.fetch.next != 0 {
		t.Fatalf("tampered chunk advanced the stream to %d", fc.fetch.next)
	}

	// Wrong length: rejected and attributed before any hashing.
	fc.OnStateChunk(&env, 0, &msg.StateChunk{Seq: 8, Index: 0, Data: chunkData(0)[:chunkSize-1]})
	if m := fc.Metrics(); m.StateChunkRejects != 2 {
		t.Fatalf("short chunk not rejected: %+v", m)
	}
	if got := fc.RejectedCertsFrom(0); got != 2 {
		t.Fatalf("short chunk not attributed: RejectedCertsFrom = %d", got)
	}

	// Beyond the request window: refused (bounded buffering) but not
	// attributed — it can be honest traffic racing a window slide.
	fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: window, Data: chunkData(window)})
	if m := fc.Metrics(); m.StateChunkRejects != 3 {
		t.Fatalf("out-of-window chunk not refused: %+v", m)
	}
	if got := fc.RejectedCertsFrom(1); got != 0 {
		t.Fatalf("out-of-window chunk wrongly attributed: RejectedCertsFrom = %d", got)
	}

	// Correct out-of-order chunk from peer 1 buffers; a duplicate is dropped
	// without growing the window.
	fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: 2, Data: chunkData(2)})
	fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: 2, Data: chunkData(2)})
	if len(fc.fetch.window) != 1 || fc.fetch.buffered != len(chunkData(2)) {
		t.Fatalf("duplicate buffered: window %d entries, %d bytes", len(fc.fetch.window), fc.fetch.buffered)
	}
	if fc.fetch.next != 0 {
		t.Fatalf("out-of-order chunk advanced the stream to %d", fc.fetch.next)
	}

	// In-order chunks 0 and 1 apply; 1 drains the buffered 2 behind it.
	fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: 0, Data: chunkData(0)})
	if fc.fetch.next != 1 {
		t.Fatalf("next = %d after chunk 0, want 1", fc.fetch.next)
	}
	fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: 1, Data: chunkData(1)})
	if fc.fetch.next != 3 || len(fc.fetch.window) != 0 || fc.fetch.buffered != 0 {
		t.Fatalf("buffered chunk did not drain: next %d, window %d, buffered %d",
			fc.fetch.next, len(fc.fetch.window), fc.fetch.buffered)
	}

	// The rest arrives in order from the correct peer; the transfer must
	// complete despite peer 0's earlier tampering.
	for i := uint32(3); i < n; i++ {
		fc.OnStateChunk(&env, 1, &msg.StateChunk{Seq: 8, Index: i, Data: chunkData(i)})
	}
	if fc.fetch != nil {
		t.Fatalf("fetch still active after all %d chunks", n)
	}
	if got := fc.LastExecuted(); got != 8 {
		t.Fatalf("LastExecuted = %d after install, want 8", got)
	}
	fcStore := fc.cfg.App.(*app.Store)
	if !bytes.Equal(fcStore.Snapshot(), srvStore.Snapshot()) {
		t.Error("installed application state differs from the server's")
	}
	rec := fc.clients[7]
	if rec == nil || rec.seq != 9 || rec.lastSeq != 3 || string(rec.result) != "OK" {
		t.Errorf("client table not installed: %+v", rec)
	}
}
