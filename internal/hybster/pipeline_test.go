package hybster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/faultplane"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/realnet"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// pipelineFollower builds a stand-alone follower core (Self=1 of N=3) with
// the given pipeline depth, plus a counter subsystem playing the view-0
// leader so tests can hand it certified PREPAREs in any order.
func pipelineFollower(t *testing.T, depth int) (*testReplica, *tcounter.Subsystem) {
	t.Helper()
	leaderSub := tcounter.NewSubsystem(0)
	leaderSub.SetKey([]byte("test-counter-key"))
	sub := tcounter.NewSubsystem(1)
	sub.SetKey([]byte("test-counter-key"))
	r := &testReplica{id: 1}
	r.core = New(Config{
		Self:               1,
		N:                  3,
		F:                  1,
		CheckpointInterval: 1 << 30,
		ViewChangeTimeout:  time.Minute,
		Authority:          tcounter.Direct{S: sub},
		App:                app.NewStore(),
		PipelineDepth:      depth,
	}, r)
	return r, leaderSub
}

// leaderPrepare certifies a single-request batch at seq with the leader's
// lane counter, exactly as proposeBatch would.
func leaderPrepare(t *testing.T, sub *tcounter.Subsystem, depth int, seq uint64) *msg.Prepare {
	t.Helper()
	batch := msg.Batch{Reqs: []msg.OrderRequest{{
		Origin: 3, Client: 7, ClientSeq: seq,
		Op: []byte(fmt.Sprintf("PUT k%d v%d", seq, seq)),
	}}}
	counter := tcounter.OrderLaneCounter(0, tcounter.LaneOf(seq, depth), depth)
	cert, err := sub.Certify(counter, seq, prepareDigest(0, seq, batch.Digest()))
	if err != nil {
		t.Fatalf("certify prepare seq %d: %v", seq, err)
	}
	return &msg.Prepare{View: 0, Seq: seq, Batch: batch, Cert: cert}
}

// TestOutOfOrderPrepareCommitsInOrder is the core pipelining property on the
// follower side: PREPAREs for different lanes are accepted and voted on in
// any arrival order, but the commit queue applies them strictly in sequence
// order. With N=3 a follower commits an entry from the leader's PREPARE plus
// its own COMMIT, so acceptance alone drives the whole path.
func TestOutOfOrderPrepareCommitsInOrder(t *testing.T) {
	const depth = 4
	r, leaderSub := pipelineFollower(t, depth)
	var env fakeEnv

	// Deliver the window out of order: 2 and 3 commit but must not apply
	// while seq 1 — the stalled batch — is missing.
	r.core.OnPrepare(&env, 0, leaderPrepare(t, leaderSub, depth, 2))
	r.core.OnPrepare(&env, 0, leaderPrepare(t, leaderSub, depth, 3))
	if got := r.core.LastExecuted(); got != 0 {
		t.Fatalf("executed up to %d before the gap at seq 1 was filled", got)
	}
	if m := r.core.Metrics(); m.Committed != 2 {
		t.Fatalf("Committed = %d after two out-of-order prepares, want 2", m.Committed)
	}

	// The gap fills: everything applies, in order.
	r.core.OnPrepare(&env, 0, leaderPrepare(t, leaderSub, depth, 1))
	r.core.OnPrepare(&env, 0, leaderPrepare(t, leaderSub, depth, 4))
	if got := r.core.LastExecuted(); got != 4 {
		t.Fatalf("executed up to %d, want 4", got)
	}
	for i, rec := range r.executed {
		if rec.seq != uint64(i+1) {
			t.Errorf("execution %d at seq %d: application left sequence order", i, rec.seq)
		}
	}
	m := r.core.Metrics()
	if m.OutOfOrderPrepares == 0 {
		t.Error("OutOfOrderPrepares = 0 after accepting seq 1 below seq 3")
	}
	if m.Executed != 4 {
		t.Errorf("Executed = %d, want 4", m.Executed)
	}
}

// TestPrepareAheadOfLaneWaits checks per-lane continuity: a PREPARE one full
// lane round ahead (seq 1+depth on seq 1's lane) must wait for its lane
// predecessor even though the window has moved past other lanes.
func TestPrepareAheadOfLaneWaits(t *testing.T) {
	const depth = 2
	r, leaderSub := pipelineFollower(t, depth)
	var env fakeEnv

	p1 := leaderPrepare(t, leaderSub, depth, 1)
	p3 := leaderPrepare(t, leaderSub, depth, 3) // same lane as 1
	r.core.OnPrepare(&env, 0, p3)
	if m := r.core.Metrics(); m.Committed != 0 {
		t.Fatalf("lane-skipping prepare committed (%d)", m.Committed)
	}
	r.core.OnPrepare(&env, 0, p1)
	if got := r.core.LastExecuted(); got != 1 {
		t.Fatalf("executed up to %d, want 1 (seq 2 still missing)", got)
	}
	r.core.OnPrepare(&env, 0, leaderPrepare(t, leaderSub, depth, 2))
	if got := r.core.LastExecuted(); got != 3 {
		t.Fatalf("executed up to %d, want 3", got)
	}
}

// followerCommit certifies a COMMIT for the given prepare from follower
// replica 1, as acceptPrepare would.
func followerCommit(t *testing.T, sub *tcounter.Subsystem, depth int, prep *msg.Prepare) *msg.Commit {
	t.Helper()
	batchDigest := prep.Batch.Digest()
	counter := tcounter.OrderLaneCounter(0, tcounter.LaneOf(prep.Seq, depth), depth)
	cert, err := sub.Certify(counter, prep.Seq, commitDigest(0, prep.Seq, batchDigest))
	if err != nil {
		t.Fatalf("certify commit seq %d: %v", prep.Seq, err)
	}
	return &msg.Commit{View: 0, Seq: prep.Seq, BatchDigest: batchDigest, Cert: cert}
}

// prepareCollector records the PREPAREs a leader core broadcasts.
type prepareCollector struct {
	preps []*msg.Prepare
}

func (p *prepareCollector) Send(_ node.Env, to msg.NodeID, m msg.Message) {
	if prep, ok := m.(*msg.Prepare); ok && to == 1 {
		p.preps = append(p.preps, prep)
	}
}
func (p *prepareCollector) Committed(node.Env, uint64, *msg.OrderRequest, []byte, []string, bool, bool) {
}

// TestWindowBackpressureAndRelease drives a stand-alone leader: with
// PipelineDepth 3 it may disseminate seqs 1..3 concurrently, then the window
// is full and further due requests must wait (backpressure, WindowStalls).
// Commits arriving out of order commit batches but apply nothing until the
// stalled head arrives; once the low mark advances, the window releases and
// the held-back requests are proposed.
func TestWindowBackpressureAndRelease(t *testing.T) {
	const depth = 3
	leadSub := tcounter.NewSubsystem(0)
	leadSub.SetKey([]byte("test-counter-key"))
	followSub := tcounter.NewSubsystem(1)
	followSub.SetKey([]byte("test-counter-key"))
	out := &prepareCollector{}
	core := New(Config{
		Self:               0,
		N:                  3,
		F:                  1,
		CheckpointInterval: 1 << 30,
		ViewChangeTimeout:  time.Minute,
		Authority:          tcounter.Direct{S: leadSub},
		App:                app.NewStore(),
		PipelineDepth:      depth,
	}, out)
	var env fakeEnv

	for i := 1; i <= 6; i++ {
		core.Submit(&env, &msg.OrderRequest{
			Origin: 3, Client: 7, ClientSeq: uint64(i),
			Op: []byte(fmt.Sprintf("PUT k%d v%d", i, i)),
		})
	}
	// The first depth batches are in flight; the rest wait on the window.
	m := core.Metrics()
	if m.Batches != depth {
		t.Fatalf("Batches = %d with a full window, want %d", m.Batches, depth)
	}
	if len(out.preps) != depth {
		t.Fatalf("disseminated %d PREPAREs, want %d", len(out.preps), depth)
	}
	if m.WindowStalls == 0 {
		t.Error("WindowStalls = 0 although requests 4..6 had to wait")
	}
	if got := core.LastExecuted(); got != 0 {
		t.Fatalf("executed up to %d with no commits, want 0", got)
	}

	// Out-of-order commits: seqs 2 and 3 reach quorum (leader + replica 1)
	// but seq 1 — the stalled batch — blocks application and the window.
	r1Commits := make([]*msg.Commit, 0, depth)
	for _, prep := range out.preps {
		r1Commits = append(r1Commits, followerCommit(t, followSub, depth, prep))
	}
	core.OnCommit(&env, 1, r1Commits[1])
	core.OnCommit(&env, 1, r1Commits[2])
	if got := core.LastExecuted(); got != 0 {
		t.Fatalf("executed up to %d while seq 1 stalled, want 0", got)
	}
	if m := core.Metrics(); m.Batches != depth {
		t.Fatalf("window released without the low mark advancing: %d batches", m.Batches)
	}

	// The stalled head commits: seqs 1..3 apply in order, the window slides,
	// and the pump proposes the held-back requests 4..6.
	core.OnCommit(&env, 1, r1Commits[0])
	if got := core.LastExecuted(); got != depth {
		t.Fatalf("executed up to %d after the head committed, want %d", got, depth)
	}
	if m := core.Metrics(); m.Batches != 6 {
		t.Errorf("Batches = %d after window release, want 6", m.Batches)
	}
	if len(out.preps) != 6 {
		t.Errorf("disseminated %d PREPAREs after release, want 6", len(out.preps))
	}
	for i, prep := range out.preps {
		if prep.Seq != uint64(i+1) {
			t.Errorf("PREPARE %d carries seq %d: leader proposals left sequence order", i, prep.Seq)
		}
	}
}

// pipelinedInFlight returns how many prepared-but-unapplied entries the
// replica holds above its stable checkpoint.
func pipelinedInFlight(c *Core) int {
	n := 0
	for seq, e := range c.log {
		if seq > c.stableSeq && e.hasPrep && !e.executed {
			n++
		}
	}
	return n
}

// TestViewChangeReproposesPartialWindow crashes the leader while a follower
// holds several in-flight batches of a pipelined window (some applied, some
// not). The view change must re-propose every in-flight batch exactly once:
// each request lands at exactly one sequence number of the final history, no
// client stalls, and the surviving replicas converge.
func TestViewChangeReproposesPartialWindow(t *testing.T) {
	cl := newCluster(t, 3, func(c *Config) {
		c.PipelineDepth = 4
		c.BatchSize = 2
		c.BatchDelay = 10 * time.Millisecond
	}, opScript(8)...)
	// Flood clients keep the leader's window full (serial clients never have
	// enough outstanding batches for the window to matter).
	floods := make([]*countClient, 2)
	for i := range floods {
		floods[i] = newCountClient(msg.NodeID(40+i), 3, 1, 20)
		cl.net.AttachConfig(floods[i].id, floods[i], simnet.NodeConfig{})
	}
	// Jitter on the leader's outgoing links reorders PREPAREs, so replica 1
	// builds up committed-but-unapplied entries behind a delayed head — the
	// partially-committed window the crash must interrupt.
	cl.net.SetFault(faultplane.NewInjector(5, faultplane.Plan{
		Links: []faultplane.LinkFault{{
			From:   0,
			To:     faultplane.Wildcard,
			Jitter: 40 * time.Millisecond,
		}},
	}))

	// Step until replica 1 holds a partially-committed window: at least two
	// in-flight batches, with some earlier batch already applied.
	found := false
	var inFlightReqs []msg.OrderRequest
	for until := time.Millisecond; until < 4*time.Second; until += time.Millisecond {
		cl.net.Run(until)
		c := cl.replicas[1].core
		if pipelinedInFlight(c) >= 2 && c.LastExecuted() > c.stableSeq {
			found = true
			for seq, e := range c.log {
				if seq > c.stableSeq && e.hasPrep && !e.executed {
					inFlightReqs = append(inFlightReqs, e.batch.Reqs...)
				}
			}
			break
		}
	}
	if !found {
		t.Fatal("never observed a partially-committed pipeline window at replica 1")
	}
	cl.net.Crash(0)
	cl.net.Run(60 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops after leader crash", cl.client.current, len(cl.client.ops))
	}
	for _, fc := range floods {
		if fc.missing != 0 {
			t.Fatalf("flood client %d still missing %d replies after leader crash", fc.id, fc.missing)
		}
	}
	for _, i := range []int{1, 2} {
		r := cl.replicas[i]
		if r.core.View() == 0 {
			t.Errorf("replica %d still in view 0", i)
		}
		assertNoDuplicateExecutions(t, r)
	}
	// Every request of the interrupted window was re-proposed exactly once:
	// it appears at exactly one sequence number of the new view's history.
	for _, req := range inFlightReqs {
		if req.Origin == msg.NoNode {
			continue
		}
		seqs := make(map[uint64]struct{})
		for _, rec := range cl.replicas[1].executed {
			if rec.client == req.Client && rec.clientSeq == req.ClientSeq {
				seqs[rec.seq] = struct{}{}
			}
		}
		if len(seqs) != 1 {
			t.Errorf("in-flight request client=%d seq=%d executed at %d sequence numbers, want 1",
				req.Client, req.ClientSeq, len(seqs))
		}
	}
	if !bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("surviving replicas diverged")
	}
}

// TestPipelinedOrderingUnderJitter runs a pipelined cluster end to end with
// link jitter reordering deliveries: the protocol must converge with no
// duplicate executions, and the jitter must actually have exercised the
// out-of-order acceptance path on some follower (the run is deterministic
// for the fixed simnet seed, so this is a stable assertion).
func TestPipelinedOrderingUnderJitter(t *testing.T) {
	cl := newCluster(t, 3, func(c *Config) {
		c.PipelineDepth = 4
		c.BatchSize = 2
		c.BatchDelay = 2 * time.Millisecond
	}, opScript(12)...)
	extras := make([]*testClient, 3)
	for i := range extras {
		extras[i] = &testClient{id: msg.NodeID(40 + i), n: 3, f: 1, ops: toOps(opScript(12))}
		cl.net.AttachConfig(extras[i].id, extras[i], simnet.NodeConfig{})
	}
	cl.net.SetFault(faultplane.NewInjector(3, faultplane.Plan{
		Links: []faultplane.LinkFault{{
			From:   faultplane.Wildcard,
			To:     faultplane.Wildcard,
			Jitter: 12 * time.Millisecond,
		}},
	}))
	cl.net.Run(120 * time.Second)

	if !cl.client.done {
		t.Fatalf("client finished %d/%d ops under jitter", cl.client.current, len(cl.client.ops))
	}
	for _, ec := range extras {
		if !ec.done {
			t.Fatalf("client %d finished %d/%d ops under jitter", ec.id, ec.current, len(ec.ops))
		}
	}
	for _, r := range cl.replicas {
		assertNoDuplicateExecutions(t, r)
	}
	if !bytes.Equal(cl.apps[0].Snapshot(), cl.apps[1].Snapshot()) ||
		!bytes.Equal(cl.apps[1].Snapshot(), cl.apps[2].Snapshot()) {
		t.Error("replica states diverged under jitter")
	}
	var ooo uint64
	for _, r := range cl.replicas {
		ooo += r.core.Metrics().OutOfOrderPrepares
	}
	if ooo == 0 {
		t.Error("jitter never exercised out-of-order PREPARE acceptance; raise Jitter or the seed")
	}
}

// TestPipelinedConcurrentSubmitRealnet is the wall-clock concurrency check
// for the pipelined leader path (window accounting, pump, per-lane
// continuity): several clients flood a 3-replica cluster on the goroutine
// runtime; under -race every unsynchronized access to the new pipeline state
// would surface here.
func TestPipelinedConcurrentSubmitRealnet(t *testing.T) {
	const (
		nReplicas = 3
		nClients  = 4
		perClient = 25
	)
	router := realnet.NewRouter()
	defer router.Close()

	replicas := make([]*testReplica, nReplicas)
	for i := range replicas {
		sub := tcounter.NewSubsystem(msg.NodeID(i))
		sub.SetKey([]byte("test-counter-key"))
		r := &testReplica{id: msg.NodeID(i)}
		r.core = New(Config{
			Self:               msg.NodeID(i),
			N:                  nReplicas,
			F:                  1,
			CheckpointInterval: 16,
			ViewChangeTimeout:  5 * time.Second,
			Authority:          tcounter.Direct{S: sub},
			App:                app.NewStore(),
			BatchSize:          8,
			BatchDelay:         2 * time.Millisecond,
			PipelineDepth:      4,
		}, r)
		replicas[i] = r
		router.Attach(msg.NodeID(i), r)
	}
	clients := make([]*countClient, nClients)
	for i := range clients {
		clients[i] = newCountClient(msg.NodeID(100+i), nReplicas, 1, perClient)
		router.Attach(clients[i].id, clients[i])
	}

	for _, c := range clients {
		select {
		case <-c.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("client %d timed out waiting for replies", c.id)
		}
	}
	router.Close()

	for _, r := range replicas {
		assertNoDuplicateExecutions(t, r)
	}
	lead := replicas[0].core.Metrics()
	if lead.Proposed < nClients*perClient {
		t.Errorf("leader proposed %d requests, want >=%d", lead.Proposed, nClients*perClient)
	}
	if lead.Batches == 0 || lead.Batches >= lead.Proposed {
		t.Errorf("no amortization under pipelined flood: %d batches for %d requests",
			lead.Batches, lead.Proposed)
	}
}
