package hybster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// specEvent records one Speculated or Retracted callback.
type specEvent struct {
	view, seq         uint64
	client, clientSeq uint64
	digest            msg.Digest
	cert              msg.CounterCert
	result            string
}

// specTestReplica extends the minimal host with the SpecOutbound callbacks,
// so a core-level test can observe speculations and retractions directly.
type specTestReplica struct {
	*testReplica
	specs    []specEvent
	retracts []specEvent
}

func (r *specTestReplica) Speculated(_ node.Env, view, seq uint64, batchDigest msg.Digest, req *msg.OrderRequest, result []byte, cert msg.CounterCert) {
	r.specs = append(r.specs, specEvent{
		view: view, seq: seq, client: req.Client, clientSeq: req.ClientSeq,
		digest: batchDigest, cert: cert, result: string(result),
	})
}

func (r *specTestReplica) Retracted(_ node.Env, seq uint64, req *msg.OrderRequest, view uint64) {
	r.retracts = append(r.retracts, specEvent{
		view: view, seq: seq, client: req.Client, clientSeq: req.ClientSeq,
	})
}

// specShuttle is the shuttleNet pattern over spec-enabled cores: captured
// envelopes move between replicas in node-id order, traffic toward a
// non-live node is stashed.
type specShuttle struct {
	ids      []msg.NodeID
	replicas map[msg.NodeID]*specTestReplica
	envs     map[msg.NodeID]*captureEnv
	live     map[msg.NodeID]bool
	stash    []*msg.Envelope
}

func newSpecShuttle(ids ...msg.NodeID) *specShuttle {
	n := &specShuttle{
		ids:      ids,
		replicas: make(map[msg.NodeID]*specTestReplica),
		envs:     make(map[msg.NodeID]*captureEnv),
		live:     make(map[msg.NodeID]bool),
	}
	for _, id := range ids {
		sub := tcounter.NewSubsystem(id)
		sub.SetKey([]byte("test-counter-key"))
		r := &specTestReplica{testReplica: &testReplica{id: id}}
		r.core = New(Config{
			Self:               id,
			N:                  3,
			F:                  1,
			CheckpointInterval: 8,
			ViewChangeTimeout:  time.Second,
			Profile:            node.ProfileJava,
			Authority:          tcounter.Direct{S: sub},
			App:                app.NewStore(),
			SpecShadow:         app.NewStore(),
			SnapshotChunkSize:  32,
			StateChunkWindow:   4,
		}, r)
		n.replicas[id] = r
		n.envs[id] = &captureEnv{id: id}
		n.live[id] = true
	}
	return n
}

func (n *specShuttle) run() {
	for {
		moved := false
		for _, id := range n.ids {
			pending := n.envs[id].out
			n.envs[id].out = nil
			for _, ev := range pending {
				if !n.live[ev.To] {
					n.stash = append(n.stash, ev)
					continue
				}
				if r, ok := n.replicas[ev.To]; ok {
					moved = true
					r.OnEnvelope(n.envs[ev.To], ev)
				}
			}
		}
		if !moved {
			return
		}
	}
}

func (r *specTestReplica) findSpec(client, clientSeq uint64) *specEvent {
	for i := range r.specs {
		if r.specs[i].client == client && r.specs[i].clientSeq == clientSeq {
			return &r.specs[i]
		}
	}
	return nil
}

func (r *specTestReplica) executions(client, clientSeq uint64) []execRecord {
	var out []execRecord
	for _, e := range r.executed {
		if e.client == client && e.clientSeq == clientSeq {
			out = append(out, e)
		}
	}
	return out
}

// TestSpeculationRollbackOnViewChange is the deterministic message-shuttle
// choreography for counter-certified rollback:
//
//  1. a fast-commit request settles durably in view 0 (speculated, then
//     confirmed — never retracted);
//  2. the leader speculates a second fast-commit request whose PREPARE never
//     reaches the followers, answering from the shadow at a slot only it
//     knows about;
//  3. the followers change view while the leader sleeps, so the certified
//     prefix of view 1 provably excludes the speculated slot;
//  4. the woken leader adopts the NEW-VIEW: it must roll the shadow back to
//     the durable prefix, retract exactly the lost speculation, and leave
//     the durable tier untouched;
//  5. adoption re-forwards the lost request to the new leader, whose durable
//     re-execution repairs the history exactly once, and every replica (and
//     the shadow) converges.
func TestSpeculationRollbackOnViewChange(t *testing.T) {
	net := newSpecShuttle(0, 1, 2)
	r0, r1, r2 := net.replicas[0], net.replicas[1], net.replicas[2]
	env0, env1 := net.envs[0], net.envs[1]

	// (1) Durable traffic plus one fast-commit request that settles normally.
	for i := uint64(1); i <= 3; i++ {
		r0.core.Submit(env0, &msg.OrderRequest{
			Origin: 0, Client: 7, ClientSeq: i,
			Op: []byte(fmt.Sprintf("PUT key-%02d value-%02d", i, i)),
		})
		net.run()
	}
	r0.core.Submit(env0, &msg.OrderRequest{
		Origin: 0, Client: 7, ClientSeq: 4, Flags: msg.FlagFastCommit,
		Op: []byte("PUT key-settled value-settled"),
	})
	net.run()
	if got := r0.core.LastExecuted(); got != 4 {
		t.Fatalf("prime phase executed to %d, want 4", got)
	}

	// Every replica speculated the fast request: the leader at proposal time
	// (vouching with its PREPARE certificate), the followers at PREPARE
	// acceptance (vouching with their COMMIT certificates) — and the fast
	// answer must never lag the durable one (SpecFrontier >= LastExecuted).
	for id, r := range net.replicas {
		ev := r.findSpec(7, 4)
		if ev == nil {
			t.Fatalf("replica %d never speculated the fast request", id)
		}
		if ev.result != "OK" {
			t.Fatalf("replica %d speculated %q, want OK", id, ev.result)
		}
		m := r.core.Metrics()
		if m.SpecConfirmed != 1 || m.SpecRetractions != 0 {
			t.Fatalf("replica %d settle metrics: %+v", id, m)
		}
		if r.core.SpecFrontier() < r.core.LastExecuted() {
			t.Fatalf("replica %d spec frontier %d behind durable %d",
				id, r.core.SpecFrontier(), r.core.LastExecuted())
		}
	}

	// The certificates carried by those speculations verify exactly as an
	// origin replica would check an incoming SpecReply — and a tampered
	// batch digest is rejected and attributed.
	lev := r0.findSpec(7, 4)
	sr := &msg.SpecReply{
		Executor: 0, View: lev.view, Seq: lev.seq, BatchDigest: lev.digest,
		Client: 7, ClientSeq: 4, Result: []byte(lev.result), Cert: lev.cert,
	}
	if !r1.core.VerifySpecReply(env1, 0, sr) {
		t.Fatal("leader's prepare-bound spec certificate did not verify")
	}
	fev := r1.findSpec(7, 4)
	fsr := &msg.SpecReply{
		Executor: 1, View: fev.view, Seq: fev.seq, BatchDigest: fev.digest,
		Client: 7, ClientSeq: 4, Result: []byte(fev.result), Cert: fev.cert,
	}
	if !r2.core.VerifySpecReply(net.envs[2], 1, fsr) {
		t.Fatal("follower's commit-bound spec certificate did not verify")
	}
	tampered := *sr
	tampered.BatchDigest[0] ^= 0x01
	before := r1.core.RejectedCertsFrom(0)
	if r1.core.VerifySpecReply(env1, 0, &tampered) {
		t.Fatal("tampered spec reply verified")
	}
	if got := r1.core.RejectedCertsFrom(0); got != before+1 {
		t.Fatalf("tampering not attributed: RejectedCertsFrom = %d, want %d", got, before+1)
	}

	// (2) The doomed speculation: followers sleep, so the PREPARE for slot 5
	// exists only at the leader — which still answers fast from the shadow.
	net.live[1], net.live[2] = false, false
	r0.core.Submit(env0, &msg.OrderRequest{
		Origin: 0, Client: 7, ClientSeq: 5, Flags: msg.FlagFastCommit,
		Op: []byte("PUT key-lost value-lost"),
	})
	net.run()
	if ev := r0.findSpec(7, 5); ev == nil {
		t.Fatal("leader did not speculate the doomed request")
	}
	if f, d := r0.core.SpecFrontier(), r0.core.LastExecuted(); f != 5 || d != 4 {
		t.Fatalf("leader frontier/durable = %d/%d, want 5/4", f, d)
	}
	net.stash = nil // the PREPAREs are lost for good

	// (3) The followers change view while the leader sleeps: view 1's
	// certified prefix is built from their VIEW-CHANGE messages alone and
	// cannot contain slot 5.
	net.live[0] = false
	net.live[1], net.live[2] = true, true
	r1.core.startViewChange(env1, 1)
	r2.core.startViewChange(net.envs[2], 1)
	net.run()
	if v1, v2 := r1.core.View(), r2.core.View(); v1 != 1 || v2 != 1 {
		t.Fatalf("view change did not install at the followers: views %d, %d", v1, v2)
	}

	// (4) The leader wakes on the NEW-VIEW and must adopt it, roll back, and
	// retract exactly the lost speculation. The rest of its sleep backlog
	// (view-1 re-proposal PREPAREs and COMMITs) is replayed afterwards: the
	// retraction must come from the NEW-VIEW adoption itself, not from
	// comparing re-proposals.
	net.live[0] = true
	backlog := net.stash
	net.stash = nil
	for _, ev := range backlog {
		if ev.To == 0 && ev.Kind == msg.KindNewView {
			r0.OnEnvelope(env0, ev)
		}
	}

	if got := r0.core.View(); got != 1 {
		t.Fatalf("old leader in view %d after NEW-VIEW, want 1", got)
	}
	if len(r0.retracts) != 1 {
		t.Fatalf("retractions after NEW-VIEW adoption = %d, want exactly 1: %+v", len(r0.retracts), r0.retracts)
	}
	ret := r0.retracts[0]
	if ret.client != 7 || ret.clientSeq != 5 || ret.seq != 5 || ret.view != 0 {
		t.Fatalf("wrong retraction: %+v", ret)
	}
	m := r0.core.Metrics()
	if m.SpecRollbacks == 0 {
		t.Error("no shadow rollback recorded")
	}
	if m.SpecRetractions != 1 {
		t.Errorf("SpecRetractions = %d, want 1", m.SpecRetractions)
	}
	if m.SpecDivergences != 0 {
		t.Errorf("SpecDivergences = %d, want 0 (rollback is not divergence)", m.SpecDivergences)
	}
	if f, d := r0.core.SpecFrontier(), r0.core.LastExecuted(); f != d || d != 4 {
		t.Fatalf("shadow not rewound to the certified prefix: frontier/durable = %d/%d, want 4/4", f, d)
	}

	// (5) Repair. Adoption already re-forwarded the locally-submitted request
	// to the new leader (pendingLocal re-drive); replaying the sleep backlog
	// restores counter continuity for the view-1 re-proposals, and the retry
	// must execute exactly once. A read through the new leader then observes
	// the repaired write.
	for _, ev := range backlog {
		if ev.To == 0 && ev.Kind != msg.KindNewView {
			r0.OnEnvelope(env0, ev)
		}
	}
	net.run()
	r1.core.Submit(env1, &msg.OrderRequest{
		Origin: 1, Client: 8, ClientSeq: 1,
		Op: []byte("GET key-lost"),
	})
	net.run()

	for id, r := range net.replicas {
		if got := r.core.LastExecuted(); got != 6 {
			t.Fatalf("replica %d executed to %d, want 6", id, got)
		}
		if execs := r.executions(7, 5); len(execs) != 1 {
			t.Fatalf("replica %d executed the retried request %d times: %+v", id, len(execs), execs)
		}
		if reads := r.executions(8, 1); len(reads) != 1 || reads[0].result != "VALUE value-lost" {
			t.Fatalf("replica %d read-back = %+v, want VALUE value-lost", id, reads)
		}
	}

	// Convergence, shadow included: after the rollback re-anchored it, the
	// shadow tracked the durable history straight through the repair.
	durable0 := r0.core.cfg.App.(*app.Store).Snapshot()
	for id, r := range net.replicas {
		if !bytes.Equal(r.core.cfg.App.(*app.Store).Snapshot(), durable0) {
			t.Errorf("replica %d durable state diverged", id)
		}
		if !bytes.Equal(r.core.cfg.SpecShadow.(*app.Store).Snapshot(), r.core.cfg.App.(*app.Store).Snapshot()) {
			t.Errorf("replica %d shadow diverged from its durable state", id)
		}
	}
}
