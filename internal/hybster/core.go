// Package hybster implements a Hybster-style hybrid Byzantine fault-tolerant
// state-machine replication protocol: a leader-based ordering protocol that
// tolerates f Byzantine faults with only 2f+1 replicas by certifying every
// ordering statement with a trusted monotonic counter (internal/tcounter).
//
// Protocol outline (following Hybster/MinBFT):
//
//   - The leader of view v assigns sequence numbers by certifying
//     (v, seq, request digest) with its ordering counter and broadcasting a
//     PREPARE. Counter monotonicity plus the followers' continuity check
//     (values must be consecutive) make equivocation and sequence-number
//     holes impossible.
//   - Followers acknowledge with COMMITs certified by their own counters.
//     A request is committed once f+1 distinct replicas have certified it
//     (the PREPARE counts as the leader's COMMIT); committed requests are
//     executed in sequence order.
//   - Every checkpoint-interval requests, replicas exchange CHECKPOINTs;
//     f+1 matching digests make a checkpoint stable and allow log
//     truncation. Replicas that fell behind fetch the stable snapshot from
//     a peer and verify it against the agreed digest.
//   - If a replica suspects the leader (a locally submitted request misses
//     its deadline), it certifies and broadcasts a VIEW-CHANGE carrying its
//     prepared-but-unstable entries; the new leader installs the view with
//     a NEW-VIEW justified by f+1 VIEW-CHANGEs and re-proposes the union of
//     their prepared entries (filling gaps with no-ops).
//
// The package contains only the protocol state machine; replica composition
// (message authentication, the Troxy, connection handling) lives in
// internal/replica.
package hybster

import (
	"crypto/sha256"
	"fmt"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/tcounter"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Config parameterizes a replica's protocol core.
type Config struct {
	// Self is this replica's ID; replicas are numbered 0..N-1.
	Self msg.NodeID

	// N is the number of replicas (N = 2F+1).
	N int

	// F is the number of tolerated faults.
	F int

	// CheckpointInterval is the number of sequence numbers between
	// checkpoints. Zero means 128.
	CheckpointInterval uint64

	// ViewChangeTimeout is how long a locally submitted request may stay
	// unexecuted before the replica suspects the leader. Zero means 2s.
	ViewChangeTimeout time.Duration

	// BatchSize is the maximum number of requests ordered per
	// PREPARE/COMMIT round. The leader cuts a batch as soon as it holds
	// BatchSize requests. Zero or one disables batching (each request is
	// proposed individually, the seed behavior).
	BatchSize int

	// BatchDelay bounds how long the leader may hold an underfull batch
	// before cutting it anyway. Zero means an underfull batch is cut
	// immediately, so batches larger than one form only when several
	// requests arrive within one handler invocation.
	BatchDelay time.Duration

	// PipelineDepth bounds how many batches the leader keeps in flight
	// (certified and broadcast but not yet executed) and sets the number of
	// certification lanes, which let followers certify COMMITs for
	// in-window sequence numbers out of order (tcounter.OrderLaneCounter).
	// The window acts as PBFT-style low/high water marks: the low mark is
	// the last executed sequence number, the high mark trails it by
	// PipelineDepth, and the window slides as commit application advances.
	// Zero (the default) keeps the unpipelined behavior: a single ordering
	// counter per view, strictly in-order dissemination, and no in-flight
	// limit. Like N and F, all replicas must be configured with the same
	// value — it determines the counter IDs on the wire.
	PipelineDepth int

	// Profile attributes the protocol host's CPU costs (Java for the
	// original Hybster implementation).
	Profile node.Profile

	// Authority is the trusted-counter subsystem.
	Authority tcounter.Authority

	// App is the replicated application.
	App app.Application

	// SpecShadow, when non-nil, enables the speculative crash-commit fast
	// path (spec.go): the contiguous prepared-but-uncommitted log prefix is
	// executed against this shadow instance ahead of durable commitment, and
	// requests flagged msg.FlagFastCommit are answered from it with this
	// replica's PREPARE-round counter certificate attached. The shadow must
	// be a fresh instance of the same application type as App — it is
	// re-anchored from App's snapshot whenever a view change, state
	// transfer, or execution divergence invalidates the speculation. Nil
	// (the default) disables the fast path.
	SpecShadow app.Application

	// SnapshotChunkSize is the chunk size for checkpoint snapshots and
	// state transfer, in bytes. Zero means 64 KiB. Like N and F it must be
	// identical on all replicas: it shapes the chunk manifest whose digest
	// CHECKPOINT votes agree on.
	SnapshotChunkSize int

	// StateChunkWindow bounds how many chunks a state-transferring replica
	// requests (and buffers out of order) at a time; peak extra fetch
	// memory is StateChunkWindow × SnapshotChunkSize regardless of total
	// state size. Zero means 16.
	StateChunkWindow int

	// StateFetchTimeout is the base re-request timeout for an unanswered
	// state-transfer round; retries back off exponentially with jitter and
	// rotate across the peers that voted the stable digest. Zero means
	// 400ms.
	StateFetchTimeout time.Duration
}

// Quorum is the certificate size: f+1 distinct replicas suffice because
// trusted counters remove equivocation (Section II — hybrid fault model
// quorums, not PBFT's 2f+1). Every vote-count comparison goes through this
// helper — quorumcheck rejects hand-rolled F-arithmetic.
func (c Config) Quorum() int { return c.F + 1 }

// Outbound receives the core's outputs. Implementations route messages
// through the replica's authenticated transport and deliver execution
// results to the reply path (Troxy voter or BFT client).
type Outbound interface {
	// Send transmits a protocol message to a peer replica.
	Send(env node.Env, to msg.NodeID, m msg.Message)

	// Committed reports the execution of a request. keys lists the state
	// parts the operation touched: for writes the Troxy invalidates cache
	// entries under them, for reads the voting Troxy indexes the cache
	// entry it installs. fresh distinguishes a first execution from a
	// reply-cache replay answering a client retransmission: a replayed read
	// result may predate later writes and must not repopulate any cache.
	Committed(env node.Env, seq uint64, req *msg.OrderRequest, result []byte, keys []string, read, fresh bool)
}

// Metrics counts protocol events for tests and experiments. Proposed and
// Executed count individual requests; Batches counts PREPARE/COMMIT rounds,
// so Proposed/Batches is the achieved amortization factor.
type Metrics struct {
	Proposed       uint64
	Batches        uint64
	Committed      uint64
	Executed       uint64
	ViewChanges    uint64
	StableSeq      uint64
	StateTransfers uint64
	RejectedCerts  uint64

	// WindowStalls counts the times the leader had a due batch but the
	// in-flight window was full; OutOfOrderPrepares counts PREPAREs a
	// follower accepted below the highest sequence number it had already
	// accepted in the view. Both stay zero with PipelineDepth == 0.
	WindowStalls       uint64
	OutOfOrderPrepares uint64

	// DroppedDeferred counts replayed deferred messages of a kind the
	// defer path should never have parked (only PREPARE and COMMIT are
	// deferred across views); nonzero means a protocol bug.
	DroppedDeferred uint64

	// Chunked state transfer (statesync.go). StateChunksServed counts
	// chunks sent to fetching peers; StateChunksReceived counts chunks a
	// fetch accepted; StateChunkRejects counts chunks refused (wrong
	// digest, wrong length, out of window). StateFetchRetries counts fetch
	// timer firings that re-requested, StateFetchRotations the peer
	// switches among the digest voters. MaxFetchBufferBytes is the peak
	// bytes held in the out-of-order chunk window — the soak asserts it
	// stays bounded by StateChunkWindow × SnapshotChunkSize, not state
	// size. PrefixEntriesInstalled counts certified-prefix entries
	// re-admitted after an install; PrefixResumes counts installs that
	// admitted at least one. CommitResyncs counts commit-continuity jumps
	// for peers whose counter stream we lost across their state transfer.
	StateChunksServed      uint64
	StateChunksReceived    uint64
	StateChunkRejects      uint64
	StateFetchRetries      uint64
	StateFetchRotations    uint64
	MaxFetchBufferBytes    uint64
	PrefixEntriesInstalled uint64
	PrefixResumes          uint64
	CommitResyncs          uint64

	// View synchronization for replicas that slept through a view change (a
	// NEW-VIEW is broadcast once; a replica crashed or partitioned at that
	// moment never sees it and nothing retransmits it). ViewSolicits counts
	// NEW-VIEW solicitations sent after deferring a certified message from a
	// future view; NewViewRelays counts solicitations this replica answered
	// with its stored NEW-VIEW; ViewAdoptions counts views this replica
	// installed without having voted a VIEW-CHANGE for them — i.e. views
	// learned from relayed or state-transfer evidence rather than joined
	// live.
	ViewSolicits  uint64
	NewViewRelays uint64
	ViewAdoptions uint64

	// Speculative fast path (spec.go). Speculated counts fast-flagged
	// requests answered from the shadow; SpecConfirmed counts those later
	// settled by durable execution; SpecRetractions counts speculations
	// withdrawn by a rollback before settling. SpecRollbacks counts shadow
	// re-anchors (view installs, state-transfer installs, divergences);
	// SpecDivergences counts the subset where durable execution found a
	// different batch at a speculated slot — the speculation actually *lost*,
	// rather than being conservatively re-anchored.
	Speculated      uint64
	SpecConfirmed   uint64
	SpecRetractions uint64
	SpecRollbacks   uint64
	SpecDivergences uint64
}

type entry struct {
	view       uint64
	seq        uint64
	batch      *msg.Batch
	digest     msg.Digest // combined batch digest
	reqDigests []msg.Digest
	hasPrep    bool
	prepCert   msg.CounterCert
	vouchers   map[msg.NodeID]struct{}
	executed   bool

	// specCert is the certificate a SpecReply for this batch carries: the
	// prepare cert when this replica leads the entry's view, this replica's
	// own commit cert otherwise. Both bind (view, seq, batchDigest) through
	// the trusted counter.
	specCert    msg.CounterCert
	hasSpecCert bool
}

type clientRecord struct {
	lastSeq   uint64
	result    []byte
	keys      []string
	read      bool
	reqDigest msg.Digest
	seq       uint64
}

type deferredMsg struct {
	from msg.NodeID
	view uint64
	m    msg.Message
}

// maxDeferred bounds the future-view holdback buffer.
const maxDeferred = 4096

// Core is the protocol state machine of one replica. It is not safe for
// concurrent use; the hosting node.Handler serializes access.
type Core struct {
	cfg Config
	out Outbound

	view    uint64
	inVC    bool
	seqNext uint64 // next sequence number to propose (leader only)

	lastExec  uint64
	stableSeq uint64
	// stableDigest/stableChunks describe the last stable checkpoint.
	// stableChunks is nil when this replica cannot serve it (it installed
	// the checkpoint via state transfer without retaining the composite, or
	// its own state diverged from the agreed digest).
	stableDigest msg.Digest
	stableChunks *chunkedSnapshot

	log map[uint64]*entry

	// Continuity tracking for the current view, one slot per certification
	// lane (a single slot when PipelineDepth == 0): the next counter value
	// expected on each lane. Within a lane consecutive certificates step by
	// exactly the lane count, so hole-freedom holds lane by lane.
	nextPrepareValue []uint64
	pendingPrepares  map[uint64]*msg.Prepare
	nextCommitValue  map[msg.NodeID][]uint64
	pendingCommits   map[msg.NodeID]map[uint64]*msg.Commit

	// maxAcceptedPrep is the highest sequence number accepted via PREPARE
	// in the current view; accepting below it means the pipeline delivered
	// out of order (metrics.OutOfOrderPrepares).
	maxAcceptedPrep uint64

	// Checkpoint votes: seq -> replica -> digest.
	checkpoints map[uint64]map[msg.NodeID]msg.Digest
	// ownCheckpoints retains this replica's chunked snapshots per unstable
	// checkpoint seq so a stable one can be served to lagging peers.
	ownCheckpoints map[uint64]*chunkedSnapshot

	// Client dedup and reply retransmission.
	clients map[uint64]*clientRecord

	// Requests queued while a view change is in progress.
	queued []*msg.OrderRequest

	// batchBuf accumulates requests on the leader until the batch is cut
	// (full, or the BatchDelay timer fires). The hosting node.Handler
	// serializes access, so no locking is needed. batchDue marks the
	// accumulator as ready to propose: the pump drains it in batch-size
	// chunks as the in-flight window frees up. pumping breaks the
	// pump -> propose -> commit -> execute -> pump recursion.
	batchBuf []msg.OrderRequest
	batchDue bool
	pumping  bool

	// Locally submitted requests not yet executed (leader-progress watch,
	// and re-submission after a view change).
	pendingLocal map[msg.Digest]*msg.OrderRequest

	// In-flight proposals by request digest (leader-side retransmission
	// dedup); cleared on execution and view change.
	proposed map[msg.Digest]struct{}

	// View change state. vcVoted is the highest view this replica has
	// certified a VIEW-CHANGE for.
	vcs     map[uint64]map[msg.NodeID]*msg.ViewChange
	vcVoted uint64

	// curNewView retains the NEW-VIEW that installed the current view (nil
	// in the initial view), for two consumers: state-transfer prefixes carry
	// it so a joiner adopts the view with the snapshot, and NewViewRequest
	// solicitations from stale replicas are answered with it. vcSolicited is
	// the highest view this replica has solicited evidence for;
	// deferSinceSolicit counts deferrals since, so a lost solicitation is
	// eventually retried while higher-view traffic keeps arriving.
	curNewView        *msg.NewView
	vcSolicited       uint64
	deferSinceSolicit int

	// deferred holds messages for future views until the view is installed
	// (the network may reorder a NEW-VIEW behind the new leader's first
	// PREPAREs).
	deferred []deferredMsg

	// State transfer (statesync.go): the in-progress chunked fetch, nil
	// when idle.
	fetch *stateFetch

	// Speculative fast path (spec.go). specExec is the shadow execution
	// frontier (always >= lastExec); specLog maps each speculated slot to
	// the batch digest the shadow ran there, checked against the durable
	// batch at execution time; specClients is the shadow's dedup table;
	// specOut tracks fast-answered requests not yet durably settled, so a
	// rollback knows what to retract. specStale marks a detected divergence
	// for rollback once the current execution run completes; specBroken
	// permanently disables the fast path after a shadow restore failure.
	specExec    uint64
	specLog     map[uint64]msg.Digest
	specClients map[uint64]uint64
	specOut     map[specKey]*specRecord
	specStale   bool
	specBroken  bool

	metrics Metrics

	// rejectedBy attributes certificate rejections to the claimed message
	// source, so fault-injection suites can separate expected rejections (a
	// Byzantine peer's tampered messages) from protocol bugs (a correct
	// peer's certificate refused).
	rejectedBy map[msg.NodeID]uint64
}

const (
	defaultCheckpointInterval = 128
	defaultViewChangeTimeout  = 2 * time.Second
	defaultSnapshotChunkSize  = 64 << 10
	defaultStateChunkWindow   = 16
	defaultStateFetchTimeout  = 400 * time.Millisecond
)

// timer kinds
const (
	timerProgress = "hybster/progress"
	timerBatch    = "hybster/batch"
	timerFetch    = "hybster/fetch"
)

// New creates a protocol core.
func New(cfg Config, out Outbound) *Core {
	if cfg.N != 2*cfg.F+1 {
		panic(fmt.Sprintf("hybster: N=%d must equal 2F+1 (F=%d)", cfg.N, cfg.F))
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = defaultCheckpointInterval
	}
	if cfg.ViewChangeTimeout == 0 {
		cfg.ViewChangeTimeout = defaultViewChangeTimeout
	}
	if cfg.SnapshotChunkSize <= 0 {
		cfg.SnapshotChunkSize = defaultSnapshotChunkSize
	}
	if cfg.StateChunkWindow <= 0 {
		cfg.StateChunkWindow = defaultStateChunkWindow
	}
	if cfg.StateFetchTimeout <= 0 {
		cfg.StateFetchTimeout = defaultStateFetchTimeout
	}
	c := &Core{
		cfg:             cfg,
		out:             out,
		seqNext:         1,
		log:             make(map[uint64]*entry),
		pendingPrepares: make(map[uint64]*msg.Prepare),
		nextCommitValue: make(map[msg.NodeID][]uint64),
		pendingCommits:  make(map[msg.NodeID]map[uint64]*msg.Commit),
		checkpoints:     make(map[uint64]map[msg.NodeID]msg.Digest),
		ownCheckpoints:  make(map[uint64]*chunkedSnapshot),
		clients:         make(map[uint64]*clientRecord),
		pendingLocal:    make(map[msg.Digest]*msg.OrderRequest),
		vcs:             make(map[uint64]map[msg.NodeID]*msg.ViewChange),
		proposed:        make(map[msg.Digest]struct{}),
		specLog:         make(map[uint64]msg.Digest),
		specClients:     make(map[uint64]uint64),
		specOut:         make(map[specKey]*specRecord),
	}
	c.resetContinuity(1)
	return c
}

// View returns the current view number.
func (c *Core) View() uint64 { return c.view }

// Leader returns the leader of the given view.
func (c *Core) Leader(view uint64) msg.NodeID { return msg.NodeID(view % uint64(c.cfg.N)) }

// IsLeader reports whether this replica leads the current view.
func (c *Core) IsLeader() bool { return c.Leader(c.view) == c.cfg.Self }

// InViewChange reports whether a view change is in progress.
func (c *Core) InViewChange() bool { return c.inVC }

// LastExecuted returns the highest executed sequence number.
func (c *Core) LastExecuted() uint64 { return c.lastExec }

// Metrics returns a copy of the protocol counters.
func (c *Core) Metrics() Metrics { return c.metrics }

// rejectCert counts a rejected certificate and attributes it to the claimed
// source of the carrying message.
func (c *Core) rejectCert(from msg.NodeID) {
	c.metrics.RejectedCerts++
	if c.rejectedBy == nil {
		c.rejectedBy = make(map[msg.NodeID]uint64)
	}
	c.rejectedBy[from]++
}

// RejectedCertsFrom returns how many certificates carried by messages
// claiming to come from source were rejected.
func (c *Core) RejectedCertsFrom(source msg.NodeID) uint64 { return c.rejectedBy[source] }

// quorum is the certificate size, delegated to the canonical Config helper.
func (c *Core) quorum() int { return c.cfg.Quorum() }

func prepareDigest(view, seq uint64, reqDigest msg.Digest) msg.Digest {
	w := wire.NewWriter(64)
	w.String("hybster-prepare")
	w.U64(view)
	w.U64(seq)
	w.Raw(reqDigest[:])
	return sha256.Sum256(w.Bytes())
}

func commitDigest(view, seq uint64, reqDigest msg.Digest) msg.Digest {
	w := wire.NewWriter(64)
	w.String("hybster-commit")
	w.U64(view)
	w.U64(seq)
	w.Raw(reqDigest[:])
	return sha256.Sum256(w.Bytes())
}

// chargeCounterOp accounts the cost of one trusted-counter operation: a JNI
// crossing from the Java host, an enclave transition, and a short HMAC.
func (c *Core) chargeCounterOp(env node.Env) {
	env.Charge(c.cfg.Profile, node.ChargeJNI, 48)
	env.Charge(c.cfg.Profile, node.ChargeTransition, 48)
	env.Charge(c.cfg.Profile, node.ChargeMAC, 48)
}

// Submit hands a client request to the ordering protocol. Origin must be set
// to the node that votes over the replies. Duplicate requests (same client,
// same or older sequence number) are answered from the reply cache.
func (c *Core) Submit(env node.Env, req *msg.OrderRequest) {
	if rec, ok := c.clients[req.Client]; ok && req.ClientSeq <= rec.lastSeq {
		if req.ClientSeq == rec.lastSeq {
			// Retransmission: replay the cached reply locally, and let the
			// peers replay theirs too — the origin's voter needs f+1 fresh
			// replies, not just ours.
			c.out.Committed(env, rec.seq, req, rec.result, rec.keys, rec.read, false)
			fwd := &msg.Forward{Req: *req}
			for i := 0; i < c.cfg.N; i++ {
				if to := msg.NodeID(i); to != c.cfg.Self {
					c.out.Send(env, to, fwd)
				}
			}
		}
		return
	}
	if c.inVC {
		c.queued = append(c.queued, req)
		return
	}
	digest := req.Digest()
	env.Charge(c.cfg.Profile, node.ChargeHash, len(req.Op))
	c.watchProgress(env, digest, req)
	if c.IsLeader() {
		c.enqueue(env, req, digest)
		return
	}
	c.out.Send(env, c.Leader(c.view), &msg.Forward{Req: *req})
}

// watchProgress arms the leader-suspicion timer for a locally submitted
// request.
func (c *Core) watchProgress(env node.Env, digest msg.Digest, req *msg.OrderRequest) {
	if _, exists := c.pendingLocal[digest]; exists {
		// A retransmission must not reset the suspicion deadline, or a dead
		// leader would never be suspected while the client keeps retrying.
		return
	}
	c.pendingLocal[digest] = req
	if len(c.pendingLocal) == 1 {
		env.SetTimer(c.cfg.ViewChangeTimeout, node.TimerKey{Kind: timerProgress})
	}
}

func (c *Core) clearProgress(env node.Env, digest msg.Digest) {
	if _, ok := c.pendingLocal[digest]; !ok {
		return
	}
	delete(c.pendingLocal, digest)
	if len(c.pendingLocal) == 0 {
		env.CancelTimer(node.TimerKey{Kind: timerProgress})
	} else {
		env.SetTimer(c.cfg.ViewChangeTimeout, node.TimerKey{Kind: timerProgress})
	}
}

// OnTimer must be called by the host for timers with the "hybster/" prefix.
func (c *Core) OnTimer(env node.Env, key node.TimerKey) {
	switch key.Kind {
	case timerProgress:
		if len(c.pendingLocal) > 0 && !c.inVC {
			env.Logf("hybster: leader %d suspected, moving to view %d", c.Leader(c.view), c.view+1)
			c.startViewChange(env, c.view+1)
		}
	case timerBatch:
		c.cutBatch(env)
	case timerFetch:
		c.onFetchTimer(env)
	case timerViewChange:
		c.onViewChangeTimer(env, key.ID)
	}
}

// OwnsTimer reports whether a timer key belongs to the protocol core.
func OwnsTimer(key node.TimerKey) bool {
	return len(key.Kind) >= 8 && key.Kind[:8] == "hybster/"
}

// batchSize returns the effective batch-size limit (at least one).
func (c *Core) batchSize() int {
	if c.cfg.BatchSize < 1 {
		return 1
	}
	return c.cfg.BatchSize
}

// lanes returns the number of certification lanes (one when unpipelined).
func (c *Core) lanes() int {
	if c.cfg.PipelineDepth < 1 {
		return 1
	}
	return c.cfg.PipelineDepth
}

// laneCounter returns the ordering-counter ID that must certify seq in view.
func (c *Core) laneCounter(view, seq uint64) uint32 {
	return tcounter.OrderLaneCounter(view,
		tcounter.LaneOf(seq, c.cfg.PipelineDepth), c.cfg.PipelineDepth)
}

// inFlight is the number of sequence numbers this leader has proposed but
// not yet executed: the distance between the window's high and low marks.
func (c *Core) inFlight() uint64 {
	if c.seqNext <= c.lastExec+1 {
		return 0 // state transfer can move lastExec past our proposals
	}
	return c.seqNext - 1 - c.lastExec
}

// windowFree reports whether the leader may propose another batch.
func (c *Core) windowFree() bool {
	if c.cfg.PipelineDepth < 1 {
		return true // unpipelined: no in-flight limit
	}
	return c.inFlight() < uint64(c.cfg.PipelineDepth)
}

// laneCeil returns the smallest sequence number >= start that belongs to
// lane l. start must be positive.
func laneCeil(start uint64, l, lanes int) uint64 {
	return start + uint64((l+lanes-int((start-1)%uint64(lanes)))%lanes)
}

// resetContinuity restarts the per-lane continuity expectations so that the
// next acceptable value on every lane is the smallest lane member >= startSeq
// (view installation, and initial state with startSeq 1).
func (c *Core) resetContinuity(startSeq uint64) {
	lanes := c.lanes()
	c.nextPrepareValue = make([]uint64, lanes)
	for l := 0; l < lanes; l++ {
		c.nextPrepareValue[l] = laneCeil(startSeq, l, lanes)
	}
	for i := 0; i < c.cfg.N; i++ {
		vals := make([]uint64, lanes)
		for l := 0; l < lanes; l++ {
			vals[l] = laneCeil(startSeq, l, lanes)
		}
		c.nextCommitValue[msg.NodeID(i)] = vals
	}
}

// advanceContinuity raises lagging lane expectations past seq without
// lowering any lane that already progressed further (state transfer: ordered
// messages at or below the snapshot point are obsolete, later ones are not).
func (c *Core) advanceContinuity(seq uint64) {
	lanes := c.lanes()
	for l := 0; l < lanes; l++ {
		if v := laneCeil(seq+1, l, lanes); c.nextPrepareValue[l] < v {
			c.nextPrepareValue[l] = v
		}
	}
	for _, vals := range c.nextCommitValue {
		for l := 0; l < lanes; l++ {
			if v := laneCeil(seq+1, l, lanes); vals[l] < v {
				vals[l] = v
			}
		}
	}
}

// enqueue adds a request to the leader's batch accumulator and cuts the
// batch per the cut policy (full, or delay expired). Re-submissions of an
// in-flight digest are suppressed (retransmissions may reach the leader
// through several forwarders).
func (c *Core) enqueue(env node.Env, req *msg.OrderRequest, digest msg.Digest) {
	if req.Origin != msg.NoNode {
		if _, inFlight := c.proposed[digest]; inFlight {
			return
		}
		c.proposed[digest] = struct{}{}
	}
	c.batchBuf = append(c.batchBuf, *req)
	if len(c.batchBuf) >= c.batchSize() || c.cfg.BatchDelay <= 0 {
		c.cutBatch(env)
		return
	}
	if len(c.batchBuf) == 1 {
		env.SetTimer(c.cfg.BatchDelay, node.TimerKey{Kind: timerBatch})
	}
}

// cutBatch marks the accumulator due and pumps as much of it as the
// in-flight window allows; the remainder is proposed when executing batches
// release window slots.
func (c *Core) cutBatch(env node.Env) {
	if len(c.batchBuf) == 0 {
		return
	}
	c.batchDue = true
	c.pump(env)
}

// pump proposes due requests in batch-size chunks while the in-flight window
// has room. It is the single choke point between the batch accumulator and
// proposeBatch, called both when a batch is cut and when execution advances
// the window's low mark. The pumping flag breaks the recursion through
// proposeBatch -> tryCommit -> executeReady -> pump (a proposal can commit
// immediately when N == 1 quorums or buffered votes are already present).
func (c *Core) pump(env node.Env) {
	if c.pumping {
		return
	}
	c.pumping = true
	defer func() { c.pumping = false }()
	for c.batchDue && len(c.batchBuf) > 0 {
		if !c.windowFree() {
			c.metrics.WindowStalls++
			return // executeReady re-pumps when the low mark advances
		}
		n := c.batchSize()
		if n > len(c.batchBuf) {
			n = len(c.batchBuf)
		}
		chunk := c.batchBuf[:n:n]
		c.batchBuf = c.batchBuf[n:]
		c.proposeBatch(env, &msg.Batch{Reqs: chunk})
	}
	if len(c.batchBuf) == 0 {
		c.batchBuf = nil
		c.batchDue = false
		env.CancelTimer(node.TimerKey{Kind: timerBatch})
	}
}

// flushBatchBuf moves accumulated-but-unproposed requests back to the
// queue (view change: the new view's leader must drive them).
func (c *Core) flushBatchBuf(env node.Env) {
	if len(c.batchBuf) == 0 {
		return
	}
	env.CancelTimer(node.TimerKey{Kind: timerBatch})
	for i := range c.batchBuf {
		req := c.batchBuf[i]
		c.queued = append(c.queued, &req)
	}
	c.batchBuf = nil
	c.batchDue = false
}

// proposeBatch assigns the next sequence number to a batch (leader only):
// one trusted-counter certification and one PREPARE covers every request in
// it. An empty batch is a view-change gap filler.
func (c *Core) proposeBatch(env node.Env, batch *msg.Batch) {
	seq := c.seqNext
	c.seqNext++
	reqDigests := batch.ReqDigests()
	digest := msg.BatchDigestOf(reqDigests)
	cert, err := c.cfg.Authority.Certify(c.laneCounter(c.view, seq), seq, prepareDigest(c.view, seq, digest))
	c.chargeCounterOp(env)
	if err != nil {
		env.Logf("hybster: certify prepare seq %d: %v", seq, err)
		return
	}
	for i := range batch.Reqs {
		if batch.Reqs[i].Origin != msg.NoNode {
			c.proposed[reqDigests[i]] = struct{}{}
		}
	}
	prep := &msg.Prepare{View: c.view, Seq: seq, Batch: *batch, Cert: cert}
	e := c.getEntry(seq)
	e.view = c.view
	e.batch = batch
	e.digest = digest
	e.reqDigests = reqDigests
	e.hasPrep = true
	e.prepCert = cert
	// The leader's spec replies ride on its prepare certificate.
	e.specCert = cert
	e.hasSpecCert = true
	e.vouchers[c.cfg.Self] = struct{}{}
	c.metrics.Proposed += uint64(batch.Len())
	c.metrics.Batches++
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, prep)
		}
	}
	// Speculate before attempting the durable commit, so the fast answer for
	// this batch is emitted no later than its durable one.
	c.advanceSpec(env)
	c.tryCommit(env, e)
}

func (c *Core) getEntry(seq uint64) *entry {
	e, ok := c.log[seq]
	if !ok {
		e = &entry{seq: seq, vouchers: make(map[msg.NodeID]struct{})}
		c.log[seq] = e
	}
	return e
}

// OnForward handles a request forwarded by a follower.
func (c *Core) OnForward(env node.Env, from msg.NodeID, fwd *msg.Forward) {
	req := fwd.Req
	if rec, ok := c.clients[req.Client]; ok && req.ClientSeq <= rec.lastSeq {
		if req.ClientSeq == rec.lastSeq {
			c.out.Committed(env, rec.seq, &req, rec.result, rec.keys, rec.read, false)
		}
		return
	}
	if c.inVC {
		c.queued = append(c.queued, &req)
		return
	}
	if !c.IsLeader() {
		// Misrouted (e.g. the sender has a stale view): pass it on.
		c.out.Send(env, c.Leader(c.view), fwd)
		return
	}
	env.Charge(c.cfg.Profile, node.ChargeHash, len(req.Op))
	c.enqueue(env, &req, req.Digest())
}

// deferToView parks a message for a view that has not been installed yet —
// and solicits the missing NEW-VIEW. A certified message from a future view
// is proof its sender installed a view this replica never saw; the NEW-VIEW
// broadcast is not retransmitted, so a replica that was crashed or cut off at
// that moment would otherwise defer the cluster's live traffic forever and
// silently stop contributing to quorums. One solicitation per view suffices
// in the common case; while deferral persists it is refreshed periodically in
// case the request or its answer was itself lost.
func (c *Core) deferToView(env node.Env, from msg.NodeID, view uint64, m msg.Message) {
	if len(c.deferred) < maxDeferred {
		c.deferred = append(c.deferred, deferredMsg{from: from, view: view, m: m})
	}
	c.deferSinceSolicit++
	if view > c.vcSolicited || c.deferSinceSolicit >= 64 {
		c.vcSolicited = view
		c.deferSinceSolicit = 0
		c.metrics.ViewSolicits++
		c.out.Send(env, from, &msg.NewViewRequest{View: view})
	}
}

// OnNewViewRequest answers a stale replica's solicitation with the NEW-VIEW
// that installed our current view. Anything at or above the requested view
// un-wedges the requester (it verifies and adopts whatever it receives), so
// the comparison is against what we hold, not equality.
func (c *Core) OnNewViewRequest(env node.Env, from msg.NodeID, req *msg.NewViewRequest) {
	if c.curNewView == nil || c.curNewView.View < req.View {
		return
	}
	c.metrics.NewViewRelays++
	c.out.Send(env, from, c.curNewView)
}

// replayDeferred re-dispatches messages parked for the now-current view.
func (c *Core) replayDeferred(env node.Env) {
	pending := c.deferred
	c.deferred = nil
	for _, d := range pending {
		if d.view > c.view {
			c.deferred = append(c.deferred, d)
			continue
		}
		if d.view < c.view {
			continue
		}
		switch m := d.m.(type) {
		case *msg.Prepare:
			c.OnPrepare(env, d.from, m)
		case *msg.Commit:
			c.OnCommit(env, d.from, m)
		default:
			// Only certified ordering messages are deferred (deferToView's
			// callers); anything else parked here would be a protocol bug.
			c.metrics.DroppedDeferred++
		}
	}
}

// OnPrepare handles the leader's ordering proposal.
func (c *Core) OnPrepare(env node.Env, from msg.NodeID, prep *msg.Prepare) {
	if prep.View > c.view {
		c.deferToView(env, from, prep.View, prep)
		return
	}
	if prep.View != c.view || c.inVC {
		return
	}
	if from != c.Leader(c.view) || prep.Cert.Replica != from {
		c.rejectCert(from)
		return
	}
	reqDigests := prep.Batch.ReqDigests()
	batchDigest := msg.BatchDigestOf(reqDigests)
	for i := range prep.Batch.Reqs {
		opLen := len(prep.Batch.Reqs[i].Op)
		env.Charge(c.cfg.Profile, node.ChargeHash, opLen)
		// Verify the client's authenticator share over the request payload.
		env.Charge(c.cfg.Profile, node.ChargeMAC, opLen)
	}
	if !c.cfg.Authority.Verify(prep.Cert, prepareDigest(prep.View, prep.Seq, batchDigest)) {
		c.rejectCert(from)
		return
	}
	c.chargeCounterOp(env)
	if prep.Cert.Counter != c.laneCounter(c.view, prep.Seq) || prep.Cert.Value != prep.Seq {
		c.rejectCert(from)
		return
	}
	// Continuity: process prepares in per-lane counter order so the leader
	// cannot leave holes. Prepares ahead of their lane wait; sequence
	// numbers on *different* lanes are accepted in any arrival order, which
	// is what lets votes for the whole in-flight window proceed while an
	// earlier batch is still in transit.
	lane := tcounter.LaneOf(prep.Seq, c.cfg.PipelineDepth)
	if prep.Cert.Value > c.nextPrepareValue[lane] {
		c.pendingPrepares[prep.Cert.Value] = prep
		return
	}
	if prep.Cert.Value < c.nextPrepareValue[lane] {
		return // stale duplicate
	}
	c.acceptPrepare(env, prep, reqDigests, batchDigest)
	c.drainPrepares(env)
}

// drainPrepares accepts buffered prepares that have become next-in-order on
// their lane. Lanes are scanned in ascending index order to a fixpoint, so
// the acceptance order is deterministic regardless of arrival order.
func (c *Core) drainPrepares(env node.Env) {
	for progressed := true; progressed; {
		progressed = false
		for l := 0; l < c.lanes(); l++ {
			next, ok := c.pendingPrepares[c.nextPrepareValue[l]]
			if !ok {
				continue
			}
			delete(c.pendingPrepares, c.nextPrepareValue[l])
			reqDigests := next.Batch.ReqDigests()
			c.acceptPrepare(env, next, reqDigests, msg.BatchDigestOf(reqDigests))
			progressed = true
		}
	}
}

func (c *Core) acceptPrepare(env node.Env, prep *msg.Prepare, reqDigests []msg.Digest, batchDigest msg.Digest) {
	lane := tcounter.LaneOf(prep.Seq, c.cfg.PipelineDepth)
	c.nextPrepareValue[lane] = prep.Cert.Value + uint64(c.lanes())
	if prep.Seq < c.maxAcceptedPrep {
		c.metrics.OutOfOrderPrepares++
	} else {
		c.maxAcceptedPrep = prep.Seq
	}

	e := c.getEntry(prep.Seq)
	batch := prep.Batch
	e.view = prep.View
	e.batch = &batch
	e.digest = batchDigest
	e.reqDigests = reqDigests
	e.hasPrep = true
	e.prepCert = prep.Cert
	e.vouchers[prep.Cert.Replica] = struct{}{}

	// Certify and broadcast our commit: one certification acknowledges the
	// whole batch.
	cert, err := c.cfg.Authority.Certify(c.laneCounter(c.view, prep.Seq), prep.Seq,
		commitDigest(prep.View, prep.Seq, batchDigest))
	c.chargeCounterOp(env)
	if err != nil {
		env.Logf("hybster: certify commit seq %d: %v", prep.Seq, err)
		return
	}
	com := &msg.Commit{View: prep.View, Seq: prep.Seq, BatchDigest: batchDigest, Cert: cert}
	// A follower's spec replies ride on the commit certificate it just
	// minted for the batch.
	e.specCert = cert
	e.hasSpecCert = true
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, com)
		}
	}
	e.vouchers[c.cfg.Self] = struct{}{}
	// Speculate before attempting the durable commit, so the fast answer for
	// this batch is emitted no later than its durable one.
	c.advanceSpec(env)
	c.tryCommit(env, e)
}

// OnCommit handles a commit acknowledgment.
func (c *Core) OnCommit(env node.Env, from msg.NodeID, com *msg.Commit) {
	if com.View > c.view {
		c.deferToView(env, from, com.View, com)
		return
	}
	if com.View != c.view || c.inVC {
		return
	}
	if com.Cert.Replica != from || from == c.cfg.Self {
		c.rejectCert(from)
		return
	}
	if !c.cfg.Authority.Verify(com.Cert, commitDigest(com.View, com.Seq, com.BatchDigest)) {
		c.rejectCert(from)
		return
	}
	c.chargeCounterOp(env)
	if com.Cert.Counter != c.laneCounter(c.view, com.Seq) || com.Cert.Value != com.Seq {
		c.rejectCert(from)
		return
	}
	lane := tcounter.LaneOf(com.Seq, c.cfg.PipelineDepth)
	next := c.nextCommitValue[from][lane]
	if com.Cert.Value > next {
		byVal, ok := c.pendingCommits[from]
		if !ok {
			byVal = make(map[uint64]*msg.Commit)
			c.pendingCommits[from] = byVal
		}
		byVal[com.Cert.Value] = com
		// A peer that installed a checkpoint via state transfer advanced its
		// own counters past the gap it jumped, so the values we still expect
		// from it will never arrive and its commits would buffer here
		// forever — a slow leak and a lost voucher stream. Once the buffer
		// clearly exceeds anything in-flight ordering can explain, jump our
		// expectations forward to what the peer actually sends.
		if len(byVal) > c.lanes()*8 {
			c.resyncCommits(env, from)
		}
		return
	}
	if com.Cert.Value < next {
		return
	}
	c.acceptCommit(env, from, com)
	c.drainCommits(env, from)
}

// drainCommits accepts buffered commits from one replica that have become
// next-in-order on their lane, scanning lanes in ascending index order to a
// fixpoint for a deterministic acceptance order.
func (c *Core) drainCommits(env node.Env, from msg.NodeID) {
	for progressed := true; progressed; {
		progressed = false
		for l := 0; l < c.lanes(); l++ {
			byVal := c.pendingCommits[from]
			nextCom, ok := byVal[c.nextCommitValue[from][l]]
			if !ok {
				continue
			}
			delete(byVal, c.nextCommitValue[from][l])
			c.acceptCommit(env, from, nextCom)
			progressed = true
		}
	}
}

func (c *Core) acceptCommit(env node.Env, from msg.NodeID, com *msg.Commit) {
	lane := tcounter.LaneOf(com.Seq, c.cfg.PipelineDepth)
	c.nextCommitValue[from][lane] = com.Cert.Value + uint64(c.lanes())
	e := c.getEntry(com.Seq)
	if e.hasPrep && e.digest != com.BatchDigest {
		// A conflicting commit for a certified prepare can only come from a
		// faulty replica; the certificate pins it to its counter, so just
		// ignore it.
		c.rejectCert(from)
		return
	}
	e.vouchers[from] = struct{}{}
	c.tryCommit(env, e)
}

// tryCommit executes the log prefix that has become committed.
func (c *Core) tryCommit(env node.Env, e *entry) {
	if !e.hasPrep || len(e.vouchers) < c.quorum() {
		return
	}
	c.metrics.Committed++
	c.executeReady(env)
}

// executeReady applies the committed log prefix strictly in sequence order
// (the commit queue's low mark), then re-pumps the leader's batch
// accumulator: each executed batch releases one in-flight window slot.
func (c *Core) executeReady(env node.Env) {
	executed := false
	for {
		e, ok := c.log[c.lastExec+1]
		if !ok || !e.hasPrep || e.executed || len(e.vouchers) < c.quorum() {
			break
		}
		c.execute(env, e)
		executed = true
	}
	if c.specStale {
		// Durable execution found a batch the shadow speculated differently;
		// rewind the shadow onto the durable prefix just extended.
		c.specStale = false
		c.rollbackSpec(env)
	}
	if executed && !c.inVC && c.IsLeader() {
		c.pump(env)
	}
}

func (c *Core) execute(env node.Env, e *entry) {
	e.executed = true
	c.lastExec = e.seq

	// Speculation bookkeeping: if the shadow ran a *different* batch at this
	// slot, the speculated history diverged from the durable one and must be
	// rolled back once this execution run completes (executeReady). If the
	// durable path overtook the shadow (a batch can commit in the same
	// handler invocation that accepted it), the executed requests below are
	// replayed into the shadow so it stays a superset of the durable prefix.
	specCatchup := c.specEnabled() && e.seq > c.specExec
	if d, ok := c.specLog[e.seq]; ok {
		delete(c.specLog, e.seq)
		if d != e.digest {
			c.specStale = true
			c.metrics.SpecDivergences++
		}
	}

	// Per-request fan-out: each request in the batch is executed, recorded
	// in the client table, and reported individually, so the Troxy voter
	// and fast-read cache invalidation see the same replies as before.
	for i := range e.batch.Reqs {
		req := &e.batch.Reqs[i]
		reqDigest := e.reqDigests[i]
		c.clearProgress(env, reqDigest)
		delete(c.proposed, reqDigest)

		if req.Origin == msg.NoNode && len(req.Op) == 0 {
			// Gap-filling no-op from a view change.
			continue
		}
		// Durable settlement (fresh execution or duplicate skip) closes the
		// outstanding speculation for this request, if any: the durable
		// reply flowing from here is what confirms or repairs the client.
		c.settleSpec(req)
		if rec, ok := c.clients[req.Client]; ok && req.ClientSeq <= rec.lastSeq {
			// The request was already executed at an earlier sequence
			// number (it can be proposed twice across a view change).
			// Skipping is deterministic: every replica's client table is
			// identical at this point in the log.
			continue
		}

		result := c.cfg.App.Execute(req.Op)
		env.Charge(c.cfg.Profile, node.ChargeExec, len(req.Op)+len(result))
		keys := c.cfg.App.Keys(req.Op)
		read := c.cfg.App.IsRead(req.Op)
		if specCatchup {
			// Mirror into the shadow: at this point specExec == lastExec-1,
			// so the shadow state and dedup table are identical to the
			// durable ones and the same skip decisions were made above.
			c.cfg.SpecShadow.Execute(req.Op)
			c.specClients[req.Client] = req.ClientSeq
		}

		rec, ok := c.clients[req.Client]
		if !ok {
			rec = &clientRecord{}
			c.clients[req.Client] = rec
		}
		rec.lastSeq = req.ClientSeq
		rec.result = result
		rec.keys = keys
		rec.read = read
		rec.reqDigest = reqDigest
		rec.seq = e.seq

		c.metrics.Executed++
		c.out.Committed(env, e.seq, req, result, keys, read, true)
	}
	if specCatchup {
		c.specExec = e.seq
	}
	c.maybeCheckpoint(env)
}

// ExecuteReadOnly speculatively executes a read without ordering (the
// PBFT-like read optimization of the baseline and Prophecy; Section VI-C2).
// The caller is responsible for the client-side matching rule.
func (c *Core) ExecuteReadOnly(env node.Env, op []byte) ([]byte, bool) {
	if !c.cfg.App.IsRead(op) {
		return nil, false
	}
	result := c.cfg.App.Execute(op)
	env.Charge(c.cfg.Profile, node.ChargeExec, len(op)+len(result))
	return result, true
}

// maybeCheckpoint emits a checkpoint when the interval boundary is crossed.
func (c *Core) maybeCheckpoint(env node.Env) {
	if c.lastExec == 0 || c.lastExec%c.cfg.CheckpointInterval != 0 {
		return
	}
	seq := c.lastExec
	if _, done := c.ownCheckpoints[seq]; done {
		return
	}
	// The snapshot is a composite of the client table and the application
	// state (see snapshot.go): both are replicated state, and a state
	// transfer that carried only the application half would let a
	// view-change re-proposal replay a gap-covered request on the
	// transferred replica alone. What peers vote on is the digest of the
	// chunk manifest derived from the composite, so a lagging replica can
	// later verify individual chunks against it.
	cs := c.buildChunkedSnapshot()
	env.Charge(c.cfg.Profile, node.ChargeHash, len(cs.data)+len(cs.manifestBytes))
	c.ownCheckpoints[seq] = cs
	cp := &msg.Checkpoint{Seq: seq, StateDigest: cs.digest}
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, cp)
		}
	}
	c.recordCheckpoint(env, c.cfg.Self, seq, cs.digest)
}

// OnCheckpoint handles a peer's checkpoint announcement.
func (c *Core) OnCheckpoint(env node.Env, from msg.NodeID, cp *msg.Checkpoint) {
	if cp.Seq <= c.stableSeq {
		return
	}
	c.recordCheckpoint(env, from, cp.Seq, cp.StateDigest)
}

func (c *Core) recordCheckpoint(env node.Env, from msg.NodeID, seq uint64, digest msg.Digest) {
	votes, ok := c.checkpoints[seq]
	if !ok {
		votes = make(map[msg.NodeID]msg.Digest)
		c.checkpoints[seq] = votes
	}
	votes[from] = digest
	matching := 0
	for _, d := range votes {
		if d == digest {
			matching++
		}
	}
	if matching < c.quorum() {
		return
	}
	// Checkpoint seq is stable at this digest.
	if seq <= c.stableSeq {
		return
	}
	c.stableSeq = seq
	c.stableDigest = digest
	c.metrics.StableSeq = seq
	if cs, ok := c.ownCheckpoints[seq]; ok {
		if cs.digest == digest {
			c.stableChunks = cs
		} else {
			// We executed through seq but our state does not match the
			// quorum-agreed digest: this replica has silently diverged
			// (e.g. it state-transferred before this snapshot format
			// carried the client table). Never serve the wrong bytes, and
			// rewind onto the agreed state via a state transfer that is
			// allowed to move lastExec backwards.
			c.stableChunks = nil
			env.Logf("hybster: replica %d diverged at checkpoint %d (own digest != agreed); rewinding via state transfer", c.cfg.Self, seq)
			c.requestState(env, seq, digest, true, votes)
		}
	} else if c.lastExec < seq {
		// We agreed on a checkpoint we cannot reach by execution: fetch the
		// snapshot from the peers that voted it (state transfer).
		c.stableChunks = nil
		c.requestState(env, seq, digest, false, votes)
	} else {
		// Reachable by our own execution but we never snapshotted it (e.g.
		// we installed this very checkpoint via state transfer, which does
		// not retain the serving composite). We cannot serve it.
		c.stableChunks = nil
	}
	c.gc(seq)
}

func (c *Core) gc(stable uint64) {
	for seq := range c.log {
		if seq <= stable {
			delete(c.log, seq)
		}
	}
	for seq := range c.checkpoints {
		if seq < stable {
			delete(c.checkpoints, seq)
		}
	}
	for seq := range c.ownCheckpoints {
		if seq < stable {
			delete(c.ownCheckpoints, seq)
		}
	}
	// Buffered commits at or below the stable point can never drain (their
	// entries are gone); counter values equal sequence numbers, so drop by
	// value. The continuity jump past them happens via advanceContinuity or
	// resyncCommits.
	for _, byVal := range c.pendingCommits {
		for val := range byVal {
			if val <= stable {
				delete(byVal, val)
			}
		}
	}
}
