// Package hybster implements a Hybster-style hybrid Byzantine fault-tolerant
// state-machine replication protocol: a leader-based ordering protocol that
// tolerates f Byzantine faults with only 2f+1 replicas by certifying every
// ordering statement with a trusted monotonic counter (internal/tcounter).
//
// Protocol outline (following Hybster/MinBFT):
//
//   - The leader of view v assigns sequence numbers by certifying
//     (v, seq, request digest) with its ordering counter and broadcasting a
//     PREPARE. Counter monotonicity plus the followers' continuity check
//     (values must be consecutive) make equivocation and sequence-number
//     holes impossible.
//   - Followers acknowledge with COMMITs certified by their own counters.
//     A request is committed once f+1 distinct replicas have certified it
//     (the PREPARE counts as the leader's COMMIT); committed requests are
//     executed in sequence order.
//   - Every checkpoint-interval requests, replicas exchange CHECKPOINTs;
//     f+1 matching digests make a checkpoint stable and allow log
//     truncation. Replicas that fell behind fetch the stable snapshot from
//     a peer and verify it against the agreed digest.
//   - If a replica suspects the leader (a locally submitted request misses
//     its deadline), it certifies and broadcasts a VIEW-CHANGE carrying its
//     prepared-but-unstable entries; the new leader installs the view with
//     a NEW-VIEW justified by f+1 VIEW-CHANGEs and re-proposes the union of
//     their prepared entries (filling gaps with no-ops).
//
// The package contains only the protocol state machine; replica composition
// (message authentication, the Troxy, connection handling) lives in
// internal/replica.
package hybster

import (
	"crypto/sha256"
	"fmt"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/tcounter"
	"github.com/troxy-bft/troxy/internal/wire"
)

// Config parameterizes a replica's protocol core.
type Config struct {
	// Self is this replica's ID; replicas are numbered 0..N-1.
	Self msg.NodeID

	// N is the number of replicas (N = 2F+1).
	N int

	// F is the number of tolerated faults.
	F int

	// CheckpointInterval is the number of sequence numbers between
	// checkpoints. Zero means 128.
	CheckpointInterval uint64

	// ViewChangeTimeout is how long a locally submitted request may stay
	// unexecuted before the replica suspects the leader. Zero means 2s.
	ViewChangeTimeout time.Duration

	// BatchSize is the maximum number of requests ordered per
	// PREPARE/COMMIT round. The leader cuts a batch as soon as it holds
	// BatchSize requests. Zero or one disables batching (each request is
	// proposed individually, the seed behavior).
	BatchSize int

	// BatchDelay bounds how long the leader may hold an underfull batch
	// before cutting it anyway. Zero means an underfull batch is cut
	// immediately, so batches larger than one form only when several
	// requests arrive within one handler invocation.
	BatchDelay time.Duration

	// Profile attributes the protocol host's CPU costs (Java for the
	// original Hybster implementation).
	Profile node.Profile

	// Authority is the trusted-counter subsystem.
	Authority tcounter.Authority

	// App is the replicated application.
	App app.Application
}

// Outbound receives the core's outputs. Implementations route messages
// through the replica's authenticated transport and deliver execution
// results to the reply path (Troxy voter or BFT client).
type Outbound interface {
	// Send transmits a protocol message to a peer replica.
	Send(env node.Env, to msg.NodeID, m msg.Message)

	// Committed reports the execution of a request. keys lists the state
	// parts the operation touched: for writes the Troxy invalidates cache
	// entries under them, for reads the voting Troxy indexes the cache
	// entry it installs. fresh distinguishes a first execution from a
	// reply-cache replay answering a client retransmission: a replayed read
	// result may predate later writes and must not repopulate any cache.
	Committed(env node.Env, seq uint64, req *msg.OrderRequest, result []byte, keys []string, read, fresh bool)
}

// Metrics counts protocol events for tests and experiments. Proposed and
// Executed count individual requests; Batches counts PREPARE/COMMIT rounds,
// so Proposed/Batches is the achieved amortization factor.
type Metrics struct {
	Proposed       uint64
	Batches        uint64
	Committed      uint64
	Executed       uint64
	ViewChanges    uint64
	StableSeq      uint64
	StateTransfers uint64
	RejectedCerts  uint64
}

type entry struct {
	view       uint64
	seq        uint64
	batch      *msg.Batch
	digest     msg.Digest // combined batch digest
	reqDigests []msg.Digest
	hasPrep    bool
	prepCert   msg.CounterCert
	vouchers   map[msg.NodeID]struct{}
	executed   bool
}

type clientRecord struct {
	lastSeq   uint64
	result    []byte
	keys      []string
	read      bool
	reqDigest msg.Digest
	seq       uint64
}

type deferredMsg struct {
	from msg.NodeID
	view uint64
	m    msg.Message
}

// maxDeferred bounds the future-view holdback buffer.
const maxDeferred = 4096

// Core is the protocol state machine of one replica. It is not safe for
// concurrent use; the hosting node.Handler serializes access.
type Core struct {
	cfg Config
	out Outbound

	view    uint64
	inVC    bool
	seqNext uint64 // next sequence number to propose (leader only)

	lastExec  uint64
	stableSeq uint64
	// stableDigest/stableSnapshot describe the last stable checkpoint.
	stableDigest   msg.Digest
	stableSnapshot []byte

	log map[uint64]*entry

	// Continuity tracking for the current view.
	nextPrepareValue uint64
	pendingPrepares  map[uint64]*msg.Prepare
	nextCommitValue  map[msg.NodeID]uint64
	pendingCommits   map[msg.NodeID]map[uint64]*msg.Commit

	// Checkpoint votes: seq -> replica -> digest.
	checkpoints map[uint64]map[msg.NodeID]msg.Digest
	// ownCheckpoints retains this replica's snapshots per unstable
	// checkpoint seq so a stable one can be served to lagging peers.
	ownCheckpoints map[uint64][]byte

	// Client dedup and reply retransmission.
	clients map[uint64]*clientRecord

	// Requests queued while a view change is in progress.
	queued []*msg.OrderRequest

	// batchBuf accumulates requests on the leader until the batch is cut
	// (full, or the BatchDelay timer fires). The hosting node.Handler
	// serializes access, so no locking is needed.
	batchBuf []msg.OrderRequest

	// Locally submitted requests not yet executed (leader-progress watch,
	// and re-submission after a view change).
	pendingLocal map[msg.Digest]*msg.OrderRequest

	// In-flight proposals by request digest (leader-side retransmission
	// dedup); cleared on execution and view change.
	proposed map[msg.Digest]struct{}

	// View change state. vcVoted is the highest view this replica has
	// certified a VIEW-CHANGE for.
	vcs     map[uint64]map[msg.NodeID]*msg.ViewChange
	vcVoted uint64

	// deferred holds messages for future views until the view is installed
	// (the network may reorder a NEW-VIEW behind the new leader's first
	// PREPAREs).
	deferred []deferredMsg

	// State transfer.
	fetchingSeq    uint64
	fetchingDigest msg.Digest
	fetching       bool

	metrics Metrics

	// rejectedBy attributes certificate rejections to the claimed message
	// source, so fault-injection suites can separate expected rejections (a
	// Byzantine peer's tampered messages) from protocol bugs (a correct
	// peer's certificate refused).
	rejectedBy map[msg.NodeID]uint64
}

const (
	defaultCheckpointInterval = 128
	defaultViewChangeTimeout  = 2 * time.Second
)

// timer kinds
const (
	timerProgress = "hybster/progress"
	timerBatch    = "hybster/batch"
)

// New creates a protocol core.
func New(cfg Config, out Outbound) *Core {
	if cfg.N != 2*cfg.F+1 {
		panic(fmt.Sprintf("hybster: N=%d must equal 2F+1 (F=%d)", cfg.N, cfg.F))
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = defaultCheckpointInterval
	}
	if cfg.ViewChangeTimeout == 0 {
		cfg.ViewChangeTimeout = defaultViewChangeTimeout
	}
	c := &Core{
		cfg:             cfg,
		out:             out,
		seqNext:         1,
		log:             make(map[uint64]*entry),
		pendingPrepares: make(map[uint64]*msg.Prepare),
		nextCommitValue: make(map[msg.NodeID]uint64),
		pendingCommits:  make(map[msg.NodeID]map[uint64]*msg.Commit),
		checkpoints:     make(map[uint64]map[msg.NodeID]msg.Digest),
		ownCheckpoints:  make(map[uint64][]byte),
		clients:         make(map[uint64]*clientRecord),
		pendingLocal:    make(map[msg.Digest]*msg.OrderRequest),
		vcs:             make(map[uint64]map[msg.NodeID]*msg.ViewChange),
		proposed:        make(map[msg.Digest]struct{}),
	}
	c.nextPrepareValue = 1
	for i := 0; i < cfg.N; i++ {
		c.nextCommitValue[msg.NodeID(i)] = 1
	}
	return c
}

// View returns the current view number.
func (c *Core) View() uint64 { return c.view }

// Leader returns the leader of the given view.
func (c *Core) Leader(view uint64) msg.NodeID { return msg.NodeID(view % uint64(c.cfg.N)) }

// IsLeader reports whether this replica leads the current view.
func (c *Core) IsLeader() bool { return c.Leader(c.view) == c.cfg.Self }

// InViewChange reports whether a view change is in progress.
func (c *Core) InViewChange() bool { return c.inVC }

// LastExecuted returns the highest executed sequence number.
func (c *Core) LastExecuted() uint64 { return c.lastExec }

// Metrics returns a copy of the protocol counters.
func (c *Core) Metrics() Metrics { return c.metrics }

// rejectCert counts a rejected certificate and attributes it to the claimed
// source of the carrying message.
func (c *Core) rejectCert(from msg.NodeID) {
	c.metrics.RejectedCerts++
	if c.rejectedBy == nil {
		c.rejectedBy = make(map[msg.NodeID]uint64)
	}
	c.rejectedBy[from]++
}

// RejectedCertsFrom returns how many certificates carried by messages
// claiming to come from source were rejected.
func (c *Core) RejectedCertsFrom(source msg.NodeID) uint64 { return c.rejectedBy[source] }

// quorum is the certificate size: f+1 distinct replicas.
func (c *Core) quorum() int { return c.cfg.F + 1 }

func prepareDigest(view, seq uint64, reqDigest msg.Digest) msg.Digest {
	w := wire.NewWriter(64)
	w.String("hybster-prepare")
	w.U64(view)
	w.U64(seq)
	w.Raw(reqDigest[:])
	return sha256.Sum256(w.Bytes())
}

func commitDigest(view, seq uint64, reqDigest msg.Digest) msg.Digest {
	w := wire.NewWriter(64)
	w.String("hybster-commit")
	w.U64(view)
	w.U64(seq)
	w.Raw(reqDigest[:])
	return sha256.Sum256(w.Bytes())
}

// chargeCounterOp accounts the cost of one trusted-counter operation: a JNI
// crossing from the Java host, an enclave transition, and a short HMAC.
func (c *Core) chargeCounterOp(env node.Env) {
	env.Charge(c.cfg.Profile, node.ChargeJNI, 48)
	env.Charge(c.cfg.Profile, node.ChargeTransition, 48)
	env.Charge(c.cfg.Profile, node.ChargeMAC, 48)
}

// Submit hands a client request to the ordering protocol. Origin must be set
// to the node that votes over the replies. Duplicate requests (same client,
// same or older sequence number) are answered from the reply cache.
func (c *Core) Submit(env node.Env, req *msg.OrderRequest) {
	if rec, ok := c.clients[req.Client]; ok && req.ClientSeq <= rec.lastSeq {
		if req.ClientSeq == rec.lastSeq {
			// Retransmission: replay the cached reply locally, and let the
			// peers replay theirs too — the origin's voter needs f+1 fresh
			// replies, not just ours.
			c.out.Committed(env, rec.seq, req, rec.result, rec.keys, rec.read, false)
			fwd := &msg.Forward{Req: *req}
			for i := 0; i < c.cfg.N; i++ {
				if to := msg.NodeID(i); to != c.cfg.Self {
					c.out.Send(env, to, fwd)
				}
			}
		}
		return
	}
	if c.inVC {
		c.queued = append(c.queued, req)
		return
	}
	digest := req.Digest()
	env.Charge(c.cfg.Profile, node.ChargeHash, len(req.Op))
	c.watchProgress(env, digest, req)
	if c.IsLeader() {
		c.enqueue(env, req, digest)
		return
	}
	c.out.Send(env, c.Leader(c.view), &msg.Forward{Req: *req})
}

// watchProgress arms the leader-suspicion timer for a locally submitted
// request.
func (c *Core) watchProgress(env node.Env, digest msg.Digest, req *msg.OrderRequest) {
	if _, exists := c.pendingLocal[digest]; exists {
		// A retransmission must not reset the suspicion deadline, or a dead
		// leader would never be suspected while the client keeps retrying.
		return
	}
	c.pendingLocal[digest] = req
	if len(c.pendingLocal) == 1 {
		env.SetTimer(c.cfg.ViewChangeTimeout, node.TimerKey{Kind: timerProgress})
	}
}

func (c *Core) clearProgress(env node.Env, digest msg.Digest) {
	if _, ok := c.pendingLocal[digest]; !ok {
		return
	}
	delete(c.pendingLocal, digest)
	if len(c.pendingLocal) == 0 {
		env.CancelTimer(node.TimerKey{Kind: timerProgress})
	} else {
		env.SetTimer(c.cfg.ViewChangeTimeout, node.TimerKey{Kind: timerProgress})
	}
}

// OnTimer must be called by the host for timers with the "hybster/" prefix.
func (c *Core) OnTimer(env node.Env, key node.TimerKey) {
	switch key.Kind {
	case timerProgress:
		if len(c.pendingLocal) > 0 && !c.inVC {
			env.Logf("hybster: leader %d suspected, moving to view %d", c.Leader(c.view), c.view+1)
			c.startViewChange(env, c.view+1)
		}
	case timerBatch:
		c.cutBatch(env)
	case timerViewChange:
		c.onViewChangeTimer(env, key.ID)
	}
}

// OwnsTimer reports whether a timer key belongs to the protocol core.
func OwnsTimer(key node.TimerKey) bool {
	return len(key.Kind) >= 8 && key.Kind[:8] == "hybster/"
}

// batchSize returns the effective batch-size limit (at least one).
func (c *Core) batchSize() int {
	if c.cfg.BatchSize < 1 {
		return 1
	}
	return c.cfg.BatchSize
}

// enqueue adds a request to the leader's batch accumulator and cuts the
// batch per the cut policy (full, or delay expired). Re-submissions of an
// in-flight digest are suppressed (retransmissions may reach the leader
// through several forwarders).
func (c *Core) enqueue(env node.Env, req *msg.OrderRequest, digest msg.Digest) {
	if req.Origin != msg.NoNode {
		if _, inFlight := c.proposed[digest]; inFlight {
			return
		}
		c.proposed[digest] = struct{}{}
	}
	c.batchBuf = append(c.batchBuf, *req)
	if len(c.batchBuf) >= c.batchSize() || c.cfg.BatchDelay <= 0 {
		c.cutBatch(env)
		return
	}
	if len(c.batchBuf) == 1 {
		env.SetTimer(c.cfg.BatchDelay, node.TimerKey{Kind: timerBatch})
	}
}

// cutBatch proposes whatever the accumulator holds as one batch.
func (c *Core) cutBatch(env node.Env) {
	if len(c.batchBuf) == 0 {
		return
	}
	batch := &msg.Batch{Reqs: c.batchBuf}
	c.batchBuf = nil
	env.CancelTimer(node.TimerKey{Kind: timerBatch})
	c.proposeBatch(env, batch)
}

// flushBatchBuf moves accumulated-but-unproposed requests back to the
// queue (view change: the new view's leader must drive them).
func (c *Core) flushBatchBuf(env node.Env) {
	if len(c.batchBuf) == 0 {
		return
	}
	env.CancelTimer(node.TimerKey{Kind: timerBatch})
	for i := range c.batchBuf {
		req := c.batchBuf[i]
		c.queued = append(c.queued, &req)
	}
	c.batchBuf = nil
}

// proposeBatch assigns the next sequence number to a batch (leader only):
// one trusted-counter certification and one PREPARE covers every request in
// it. An empty batch is a view-change gap filler.
func (c *Core) proposeBatch(env node.Env, batch *msg.Batch) {
	seq := c.seqNext
	c.seqNext++
	reqDigests := batch.ReqDigests()
	digest := msg.BatchDigestOf(reqDigests)
	cert, err := c.cfg.Authority.Certify(tcounter.OrderCounter(c.view), seq, prepareDigest(c.view, seq, digest))
	c.chargeCounterOp(env)
	if err != nil {
		env.Logf("hybster: certify prepare seq %d: %v", seq, err)
		return
	}
	for i := range batch.Reqs {
		if batch.Reqs[i].Origin != msg.NoNode {
			c.proposed[reqDigests[i]] = struct{}{}
		}
	}
	prep := &msg.Prepare{View: c.view, Seq: seq, Batch: *batch, Cert: cert}
	e := c.getEntry(seq)
	e.view = c.view
	e.batch = batch
	e.digest = digest
	e.reqDigests = reqDigests
	e.hasPrep = true
	e.prepCert = cert
	e.vouchers[c.cfg.Self] = struct{}{}
	c.metrics.Proposed += uint64(batch.Len())
	c.metrics.Batches++
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, prep)
		}
	}
	c.tryCommit(env, e)
}

func (c *Core) getEntry(seq uint64) *entry {
	e, ok := c.log[seq]
	if !ok {
		e = &entry{seq: seq, vouchers: make(map[msg.NodeID]struct{})}
		c.log[seq] = e
	}
	return e
}

// OnForward handles a request forwarded by a follower.
func (c *Core) OnForward(env node.Env, from msg.NodeID, fwd *msg.Forward) {
	req := fwd.Req
	if rec, ok := c.clients[req.Client]; ok && req.ClientSeq <= rec.lastSeq {
		if req.ClientSeq == rec.lastSeq {
			c.out.Committed(env, rec.seq, &req, rec.result, rec.keys, rec.read, false)
		}
		return
	}
	if c.inVC {
		c.queued = append(c.queued, &req)
		return
	}
	if !c.IsLeader() {
		// Misrouted (e.g. the sender has a stale view): pass it on.
		c.out.Send(env, c.Leader(c.view), fwd)
		return
	}
	env.Charge(c.cfg.Profile, node.ChargeHash, len(req.Op))
	c.enqueue(env, &req, req.Digest())
}

// deferToView parks a message for a view that has not been installed yet.
func (c *Core) deferToView(from msg.NodeID, view uint64, m msg.Message) {
	if len(c.deferred) < maxDeferred {
		c.deferred = append(c.deferred, deferredMsg{from: from, view: view, m: m})
	}
}

// replayDeferred re-dispatches messages parked for the now-current view.
func (c *Core) replayDeferred(env node.Env) {
	pending := c.deferred
	c.deferred = nil
	for _, d := range pending {
		if d.view > c.view {
			c.deferred = append(c.deferred, d)
			continue
		}
		if d.view < c.view {
			continue
		}
		switch m := d.m.(type) {
		case *msg.Prepare:
			c.OnPrepare(env, d.from, m)
		case *msg.Commit:
			c.OnCommit(env, d.from, m)
		}
	}
}

// OnPrepare handles the leader's ordering proposal.
func (c *Core) OnPrepare(env node.Env, from msg.NodeID, prep *msg.Prepare) {
	if prep.View > c.view {
		c.deferToView(from, prep.View, prep)
		return
	}
	if prep.View != c.view || c.inVC {
		return
	}
	if from != c.Leader(c.view) || prep.Cert.Replica != from {
		c.rejectCert(from)
		return
	}
	reqDigests := prep.Batch.ReqDigests()
	batchDigest := msg.BatchDigestOf(reqDigests)
	for i := range prep.Batch.Reqs {
		opLen := len(prep.Batch.Reqs[i].Op)
		env.Charge(c.cfg.Profile, node.ChargeHash, opLen)
		// Verify the client's authenticator share over the request payload.
		env.Charge(c.cfg.Profile, node.ChargeMAC, opLen)
	}
	if !c.cfg.Authority.Verify(prep.Cert, prepareDigest(prep.View, prep.Seq, batchDigest)) {
		c.rejectCert(from)
		return
	}
	c.chargeCounterOp(env)
	if prep.Cert.Counter != tcounter.OrderCounter(c.view) || prep.Cert.Value != prep.Seq {
		c.rejectCert(from)
		return
	}
	// Continuity: process prepares in counter order so the leader cannot
	// leave holes. Out-of-order prepares wait.
	if prep.Cert.Value > c.nextPrepareValue {
		c.pendingPrepares[prep.Cert.Value] = prep
		return
	}
	if prep.Cert.Value < c.nextPrepareValue {
		return // stale duplicate
	}
	c.acceptPrepare(env, prep, reqDigests, batchDigest)
	c.drainPrepares(env)
}

// drainPrepares accepts buffered prepares that have become next-in-order.
func (c *Core) drainPrepares(env node.Env) {
	for {
		next, ok := c.pendingPrepares[c.nextPrepareValue]
		if !ok {
			return
		}
		delete(c.pendingPrepares, c.nextPrepareValue)
		reqDigests := next.Batch.ReqDigests()
		c.acceptPrepare(env, next, reqDigests, msg.BatchDigestOf(reqDigests))
	}
}

func (c *Core) acceptPrepare(env node.Env, prep *msg.Prepare, reqDigests []msg.Digest, batchDigest msg.Digest) {
	c.nextPrepareValue = prep.Cert.Value + 1

	e := c.getEntry(prep.Seq)
	batch := prep.Batch
	e.view = prep.View
	e.batch = &batch
	e.digest = batchDigest
	e.reqDigests = reqDigests
	e.hasPrep = true
	e.prepCert = prep.Cert
	e.vouchers[prep.Cert.Replica] = struct{}{}

	// Certify and broadcast our commit: one certification acknowledges the
	// whole batch.
	cert, err := c.cfg.Authority.Certify(tcounter.OrderCounter(c.view), prep.Seq,
		commitDigest(prep.View, prep.Seq, batchDigest))
	c.chargeCounterOp(env)
	if err != nil {
		env.Logf("hybster: certify commit seq %d: %v", prep.Seq, err)
		return
	}
	com := &msg.Commit{View: prep.View, Seq: prep.Seq, BatchDigest: batchDigest, Cert: cert}
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, com)
		}
	}
	e.vouchers[c.cfg.Self] = struct{}{}
	c.tryCommit(env, e)
}

// OnCommit handles a commit acknowledgment.
func (c *Core) OnCommit(env node.Env, from msg.NodeID, com *msg.Commit) {
	if com.View > c.view {
		c.deferToView(from, com.View, com)
		return
	}
	if com.View != c.view || c.inVC {
		return
	}
	if com.Cert.Replica != from || from == c.cfg.Self {
		c.rejectCert(from)
		return
	}
	if !c.cfg.Authority.Verify(com.Cert, commitDigest(com.View, com.Seq, com.BatchDigest)) {
		c.rejectCert(from)
		return
	}
	c.chargeCounterOp(env)
	if com.Cert.Counter != tcounter.OrderCounter(c.view) || com.Cert.Value != com.Seq {
		c.rejectCert(from)
		return
	}
	next := c.nextCommitValue[from]
	if com.Cert.Value > next {
		byVal, ok := c.pendingCommits[from]
		if !ok {
			byVal = make(map[uint64]*msg.Commit)
			c.pendingCommits[from] = byVal
		}
		byVal[com.Cert.Value] = com
		return
	}
	if com.Cert.Value < next {
		return
	}
	c.acceptCommit(env, from, com)
	c.drainCommits(env, from)
}

// drainCommits accepts buffered commits from one replica that have become
// next-in-order.
func (c *Core) drainCommits(env node.Env, from msg.NodeID) {
	for {
		byVal := c.pendingCommits[from]
		nextCom, ok := byVal[c.nextCommitValue[from]]
		if !ok {
			return
		}
		delete(byVal, c.nextCommitValue[from])
		c.acceptCommit(env, from, nextCom)
	}
}

func (c *Core) acceptCommit(env node.Env, from msg.NodeID, com *msg.Commit) {
	c.nextCommitValue[from] = com.Cert.Value + 1
	e := c.getEntry(com.Seq)
	if e.hasPrep && e.digest != com.BatchDigest {
		// A conflicting commit for a certified prepare can only come from a
		// faulty replica; the certificate pins it to its counter, so just
		// ignore it.
		c.rejectCert(from)
		return
	}
	e.vouchers[from] = struct{}{}
	c.tryCommit(env, e)
}

// tryCommit executes the log prefix that has become committed.
func (c *Core) tryCommit(env node.Env, e *entry) {
	if !e.hasPrep || len(e.vouchers) < c.quorum() {
		return
	}
	c.metrics.Committed++
	c.executeReady(env)
}

func (c *Core) executeReady(env node.Env) {
	for {
		e, ok := c.log[c.lastExec+1]
		if !ok || !e.hasPrep || e.executed || len(e.vouchers) < c.quorum() {
			return
		}
		c.execute(env, e)
	}
}

func (c *Core) execute(env node.Env, e *entry) {
	e.executed = true
	c.lastExec = e.seq

	// Per-request fan-out: each request in the batch is executed, recorded
	// in the client table, and reported individually, so the Troxy voter
	// and fast-read cache invalidation see the same replies as before.
	for i := range e.batch.Reqs {
		req := &e.batch.Reqs[i]
		reqDigest := e.reqDigests[i]
		c.clearProgress(env, reqDigest)
		delete(c.proposed, reqDigest)

		if req.Origin == msg.NoNode && len(req.Op) == 0 {
			// Gap-filling no-op from a view change.
			continue
		}
		if rec, ok := c.clients[req.Client]; ok && req.ClientSeq <= rec.lastSeq {
			// The request was already executed at an earlier sequence
			// number (it can be proposed twice across a view change).
			// Skipping is deterministic: every replica's client table is
			// identical at this point in the log.
			continue
		}

		result := c.cfg.App.Execute(req.Op)
		env.Charge(c.cfg.Profile, node.ChargeExec, len(req.Op)+len(result))
		keys := c.cfg.App.Keys(req.Op)
		read := c.cfg.App.IsRead(req.Op)

		rec, ok := c.clients[req.Client]
		if !ok {
			rec = &clientRecord{}
			c.clients[req.Client] = rec
		}
		rec.lastSeq = req.ClientSeq
		rec.result = result
		rec.keys = keys
		rec.read = read
		rec.reqDigest = reqDigest
		rec.seq = e.seq

		c.metrics.Executed++
		c.out.Committed(env, e.seq, req, result, keys, read, true)
	}
	c.maybeCheckpoint(env)
}

// ExecuteReadOnly speculatively executes a read without ordering (the
// PBFT-like read optimization of the baseline and Prophecy; Section VI-C2).
// The caller is responsible for the client-side matching rule.
func (c *Core) ExecuteReadOnly(env node.Env, op []byte) ([]byte, bool) {
	if !c.cfg.App.IsRead(op) {
		return nil, false
	}
	result := c.cfg.App.Execute(op)
	env.Charge(c.cfg.Profile, node.ChargeExec, len(op)+len(result))
	return result, true
}

// maybeCheckpoint emits a checkpoint when the interval boundary is crossed.
func (c *Core) maybeCheckpoint(env node.Env) {
	if c.lastExec == 0 || c.lastExec%c.cfg.CheckpointInterval != 0 {
		return
	}
	seq := c.lastExec
	if _, done := c.ownCheckpoints[seq]; done {
		return
	}
	snap := c.cfg.App.Snapshot()
	digest := msg.DigestOf(snap)
	env.Charge(c.cfg.Profile, node.ChargeHash, len(snap))
	c.ownCheckpoints[seq] = snap
	cp := &msg.Checkpoint{Seq: seq, StateDigest: digest}
	for i := 0; i < c.cfg.N; i++ {
		if to := msg.NodeID(i); to != c.cfg.Self {
			c.out.Send(env, to, cp)
		}
	}
	c.recordCheckpoint(env, c.cfg.Self, seq, digest)
}

// OnCheckpoint handles a peer's checkpoint announcement.
func (c *Core) OnCheckpoint(env node.Env, from msg.NodeID, cp *msg.Checkpoint) {
	if cp.Seq <= c.stableSeq {
		return
	}
	c.recordCheckpoint(env, from, cp.Seq, cp.StateDigest)
}

func (c *Core) recordCheckpoint(env node.Env, from msg.NodeID, seq uint64, digest msg.Digest) {
	votes, ok := c.checkpoints[seq]
	if !ok {
		votes = make(map[msg.NodeID]msg.Digest)
		c.checkpoints[seq] = votes
	}
	votes[from] = digest
	matching := 0
	for _, d := range votes {
		if d == digest {
			matching++
		}
	}
	if matching < c.quorum() {
		return
	}
	// Checkpoint seq is stable at this digest.
	if seq <= c.stableSeq {
		return
	}
	c.stableSeq = seq
	c.stableDigest = digest
	c.metrics.StableSeq = seq
	if snap, ok := c.ownCheckpoints[seq]; ok {
		c.stableSnapshot = snap
	} else if c.lastExec < seq {
		// We agreed on a checkpoint we cannot reach by execution: fetch the
		// snapshot from a peer (state transfer).
		c.requestState(env, from, seq, digest)
	}
	c.gc(seq)
}

func (c *Core) gc(stable uint64) {
	for seq := range c.log {
		if seq <= stable {
			delete(c.log, seq)
		}
	}
	for seq := range c.checkpoints {
		if seq < stable {
			delete(c.checkpoints, seq)
		}
	}
	for seq := range c.ownCheckpoints {
		if seq < stable {
			delete(c.ownCheckpoints, seq)
		}
	}
}

// requestState starts a state transfer for the stable checkpoint at seq.
func (c *Core) requestState(env node.Env, from msg.NodeID, seq uint64, digest msg.Digest) {
	if c.fetching && c.fetchingSeq >= seq {
		return
	}
	c.fetching = true
	c.fetchingSeq = seq
	c.fetchingDigest = digest
	c.metrics.StateTransfers++
	c.out.Send(env, from, &msg.StateRequest{Seq: seq})
}

// OnStateRequest serves a stable snapshot to a lagging peer.
func (c *Core) OnStateRequest(env node.Env, from msg.NodeID, req *msg.StateRequest) {
	if req.Seq != c.stableSeq || c.stableSnapshot == nil {
		return
	}
	c.out.Send(env, from, &msg.StateReply{Seq: req.Seq, Snapshot: c.stableSnapshot})
}

// OnStateReply installs a fetched snapshot after verifying it against the
// agreed checkpoint digest.
func (c *Core) OnStateReply(env node.Env, from msg.NodeID, rep *msg.StateReply) {
	if !c.fetching || rep.Seq != c.fetchingSeq {
		return
	}
	env.Charge(c.cfg.Profile, node.ChargeHash, len(rep.Snapshot))
	if msg.DigestOf(rep.Snapshot) != c.fetchingDigest {
		return // wrong or corrupted snapshot; keep waiting
	}
	if err := c.cfg.App.Restore(rep.Snapshot); err != nil {
		env.Logf("hybster: restore snapshot at %d: %v", rep.Seq, err)
		return
	}
	c.fetching = false
	c.lastExec = rep.Seq
	c.stableSnapshot = rep.Snapshot
	c.stableSeq = rep.Seq
	c.stableDigest = c.fetchingDigest
	if c.seqNext <= rep.Seq {
		c.seqNext = rep.Seq + 1
	}
	// Continuity restarts after the snapshot point.
	if c.nextPrepareValue <= rep.Seq {
		c.nextPrepareValue = rep.Seq + 1
	}
	for id, v := range c.nextCommitValue {
		if v <= rep.Seq {
			c.nextCommitValue[id] = rep.Seq + 1
		}
	}
	c.gc(rep.Seq)
	c.executeReady(env)
	// Ordered messages buffered while we lagged may now be in-order.
	c.drainPrepares(env)
	for i := 0; i < c.cfg.N; i++ {
		c.drainCommits(env, msg.NodeID(i))
	}
}
