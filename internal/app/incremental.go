package app

import "errors"

// Incremental snapshot support. Checkpoint state transfer streams a snapshot
// as a sequence of bounded chunks instead of one monolithic byte slice; an
// application that can produce and consume its snapshot piecewise avoids ever
// materializing the whole thing, so peak transfer memory is bounded by the
// chunk window rather than the state size. The contract is byte-exact: the
// concatenation of every piece an iterator yields must equal Snapshot(), and
// feeding exactly those bytes through a RestoreSink followed by Commit must
// be equivalent to Restore of the same snapshot.

// ChunkIterator yields successive pieces of a snapshot in order. Pieces may
// have any nonzero length up to the iterator's configured bound; the stream
// ends when Next reports false. The iterator must be drained before the
// application executes further operations.
type ChunkIterator interface {
	// Next returns the next piece, or ok=false when the stream is complete.
	// The returned slice is owned by the caller.
	Next() (piece []byte, ok bool)
}

// RestoreSink consumes a snapshot stream piecewise. Write boundaries carry no
// meaning — the sink must accept any split of the byte stream. Commit
// atomically replaces the application state; until then the visible state is
// unchanged, so a failed or abandoned transfer leaves the application intact.
type RestoreSink interface {
	// Write feeds the next bytes of the snapshot stream. An error is
	// terminal for the sink.
	Write(p []byte) error

	// Commit validates that the stream is complete and swaps it in.
	Commit() error
}

// Incremental is implemented by applications that can snapshot and restore
// piecewise. Applications without it still work: SnapshotIterOf and
// RestoreSinkOf fall back to materializing the full snapshot in memory.
type Incremental interface {
	Application

	// SnapshotIter starts iterating the current snapshot in pieces of at
	// most maxPiece bytes (a piece may exceed maxPiece only if a single
	// indivisible entry does).
	SnapshotIter(maxPiece int) ChunkIterator

	// RestoreSink starts a piecewise restore.
	RestoreSink() RestoreSink
}

// SnapshotIterOf returns a chunk iterator over a's snapshot, using the
// incremental path when a supports it and materializing Snapshot() otherwise.
func SnapshotIterOf(a Application, maxPiece int) ChunkIterator {
	if maxPiece <= 0 {
		maxPiece = 64 << 10
	}
	if inc, ok := a.(Incremental); ok {
		return inc.SnapshotIter(maxPiece)
	}
	return &sliceIter{buf: a.Snapshot(), max: maxPiece}
}

// RestoreSinkOf returns a restore sink for a, using the incremental path when
// a supports it and buffering the whole stream for Restore otherwise.
func RestoreSinkOf(a Application) RestoreSink {
	if inc, ok := a.(Incremental); ok {
		return inc.RestoreSink()
	}
	return &bufferSink{app: a}
}

// sliceIter serves a materialized snapshot in maxPiece-sized slices.
type sliceIter struct {
	buf []byte
	off int
	max int
}

func (it *sliceIter) Next() ([]byte, bool) {
	if it.off >= len(it.buf) {
		return nil, false
	}
	end := min(it.off+it.max, len(it.buf))
	piece := it.buf[it.off:end]
	it.off = end
	return piece, true
}

// bufferSink accumulates the stream and restores in one shot at Commit.
type bufferSink struct {
	app Application
	buf []byte
	err error
}

func (sk *bufferSink) Write(p []byte) error {
	if sk.err != nil {
		return sk.err
	}
	sk.buf = append(sk.buf, p...)
	return nil
}

func (sk *bufferSink) Commit() error {
	if sk.err != nil {
		return sk.err
	}
	sk.err = errors.New("app: restore sink already committed")
	return sk.app.Restore(sk.buf)
}
