package app

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if got := s.Execute([]byte("GET a")); string(got) != "NOTFOUND" {
		t.Errorf("GET empty = %q", got)
	}
	if got := s.Execute([]byte("PUT a hello world")); string(got) != "OK" {
		t.Errorf("PUT = %q", got)
	}
	if got := s.Execute([]byte("GET a")); string(got) != "VALUE hello world" {
		t.Errorf("GET = %q", got)
	}
	if got := s.Execute([]byte("DEL a")); string(got) != "OK" {
		t.Errorf("DEL = %q", got)
	}
	if got := s.Execute([]byte("DEL a")); string(got) != "NOTFOUND" {
		t.Errorf("DEL again = %q", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreMalformed(t *testing.T) {
	s := NewStore()
	for _, op := range []string{"", "NOPE x", "GET", "GET a b", "PUT onlykey", "PUT  v"} {
		got := s.Execute([]byte(op))
		if !bytes.HasPrefix(got, []byte("ERR")) {
			t.Errorf("Execute(%q) = %q, want ERR...", op, got)
		}
	}
}

func TestStoreClassification(t *testing.T) {
	s := NewStore()
	if !s.IsRead([]byte("GET k")) {
		t.Error("GET must be a read")
	}
	if s.IsRead([]byte("PUT k v")) || s.IsRead([]byte("DEL k")) {
		t.Error("PUT/DEL must be writes")
	}
	if got := s.Keys([]byte("PUT k v")); len(got) != 1 || got[0] != "k" {
		t.Errorf("Keys = %v", got)
	}
	if got := s.Keys([]byte("garbage")); got != nil {
		t.Errorf("Keys(garbage) = %v", got)
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	s.Execute([]byte("PUT a 1"))
	s.Execute([]byte("PUT b two words"))
	snap := s.Snapshot()

	s2 := NewStore()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := s2.Execute([]byte("GET b")); string(got) != "VALUE two words" {
		t.Errorf("restored GET = %q", got)
	}
	if !bytes.Equal(s2.Snapshot(), snap) {
		t.Error("snapshot not stable across restore")
	}
	if err := s2.Restore([]byte("junk")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestStoreSnapshotDeterministic(t *testing.T) {
	// Insertion order must not matter.
	a, b := NewStore(), NewStore()
	a.Execute([]byte("PUT x 1"))
	a.Execute([]byte("PUT y 2"))
	b.Execute([]byte("PUT y 2"))
	b.Execute([]byte("PUT x 1"))
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Error("snapshots differ for identical state")
	}
	if StateDigest(a) != StateDigest(b) {
		t.Error("state digests differ for identical state")
	}
}

func TestBenchReadsDeterministicAndVersioned(t *testing.T) {
	b := NewBench(256)
	r1 := b.Execute(BenchRead(7, 64))
	r2 := b.Execute(BenchRead(7, 64))
	if !bytes.Equal(r1, r2) {
		t.Error("reads of same version differ")
	}
	if len(r1) != 256 {
		t.Errorf("reply size = %d, want 256", len(r1))
	}
	// A write must change subsequent reads of the same key...
	if got := b.Execute(BenchWrite(7, 64)); string(got) != "OK 1" {
		t.Errorf("write = %q", got)
	}
	r3 := b.Execute(BenchRead(7, 64))
	if bytes.Equal(r1, r3) {
		t.Error("read unchanged after write")
	}
	// The state is shared: a write changes reads of every key (this is what
	// creates read/write conflicts in the Fig. 10 experiment)...
	other1 := b.Execute(BenchRead(8, 64))
	b.Execute(BenchWrite(7, 64))
	other2 := b.Execute(BenchRead(8, 64))
	if bytes.Equal(other1, other2) {
		t.Error("write did not change reads of other keys (state must be shared)")
	}
	// ...while distinct keys still produce distinct replies.
	if bytes.Equal(b.Execute(BenchRead(1, 64)), b.Execute(BenchRead(2, 64))) {
		t.Error("distinct keys returned identical replies")
	}
}

func TestBenchTwoInstancesAgree(t *testing.T) {
	a, b := NewBench(128), NewBench(128)
	ops := [][]byte{
		BenchWrite(1, 32), BenchRead(1, 32), BenchWrite(2, 32),
		BenchWrite(1, 32), BenchRead(2, 32), BenchRead(1, 32),
	}
	for _, op := range ops {
		ra, rb := a.Execute(op), b.Execute(op)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("instances diverge on %q", op[:9])
		}
	}
	if StateDigest(a) != StateDigest(b) {
		t.Error("digests diverge after identical history")
	}
}

func TestBenchClassification(t *testing.T) {
	b := NewBench(10)
	if !b.IsRead(BenchRead(3, 16)) || b.IsRead(BenchWrite(3, 16)) {
		t.Error("bench read/write classification wrong")
	}
	if BenchIsRead([]byte{opRead}) {
		t.Error("short op classified as read")
	}
	keys := b.Keys(BenchWrite(3, 16))
	if len(keys) != 1 || keys[0] != GlobalKey {
		t.Errorf("Keys = %v", keys)
	}
	if got := b.Execute([]byte("xx")); !bytes.HasPrefix(got, []byte("ERR")) {
		t.Errorf("malformed = %q", got)
	}
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	b := NewBench(64)
	b.Execute(BenchWrite(1, 16))
	b.Execute(BenchWrite(1, 16))
	b.Execute(BenchWrite(9, 16))
	snap := b.Snapshot()

	b2 := NewBench(0)
	if err := b2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b2.Version() != 3 || b2.ReplySize != 64 {
		t.Errorf("restored state: version=%d size=%d", b2.Version(), b2.ReplySize)
	}
	if !bytes.Equal(b.Execute(BenchRead(1, 16)), b2.Execute(BenchRead(1, 16))) {
		t.Error("restored instance reads differently")
	}
}

func TestPagesBasics(t *testing.T) {
	p := NewPages()
	if got := p.Execute(PageGet("/index.html")); got[0] != PageMissing {
		t.Errorf("GET missing = %v", got)
	}
	body := []byte("<html>hi</html>")
	got := p.Execute(PagePost("/index.html", body))
	if got[0] != PageOK || !bytes.Equal(got[1:], body) {
		t.Errorf("POST = %v", got)
	}
	got = p.Execute(PageGet("/index.html"))
	if got[0] != PageOK || !bytes.Equal(got[1:], body) {
		t.Errorf("GET = %v", got)
	}
}

func TestPagesClassificationAndKeys(t *testing.T) {
	p := NewPages()
	if !p.IsRead(PageGet("/a")) || p.IsRead(PagePost("/a", nil)) {
		t.Error("page read/write classification wrong")
	}
	if got := p.Keys(PageGet("/a")); len(got) != 1 || got[0] != "page/a" {
		t.Errorf("Keys = %v", got)
	}
	if got := p.Execute([]byte{99}); !bytes.HasPrefix(got, []byte("ERR")) {
		t.Errorf("malformed = %q", got)
	}
}

func TestPagesFactoryIsolation(t *testing.T) {
	initial := map[string][]byte{"/p": []byte("v0")}
	factory := NewPagesFactory(initial)
	a := factory().(*Pages)
	b := factory().(*Pages)
	a.Execute(PagePost("/p", []byte("v1")))
	if got := b.Execute(PageGet("/p")); !bytes.Equal(got[1:], []byte("v0")) {
		t.Error("factory instances share state")
	}
	// Mutating the initial map after factory creation must not leak either.
	initial["/p"][0] = 'X'
	c := factory().(*Pages)
	if got := c.Execute(PageGet("/p")); bytes.Equal(got[1:], []byte("v0")) {
		// The factory copies at instance creation from the (now mutated)
		// initial map; both behaviours are defensible, but instances must
		// at least not alias each other.
		_ = got
	}
}

func TestPagesSnapshotRoundTrip(t *testing.T) {
	p := NewPages()
	p.Execute(PagePost("/a", []byte("alpha")))
	p.Execute(PagePost("/b", bytes.Repeat([]byte("x"), 4096)))
	snap := p.Snapshot()
	p2 := NewPages()
	if err := p2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if StateDigest(p) != StateDigest(p2) {
		t.Error("digest changed across restore")
	}
	if p2.Len() != 2 {
		t.Errorf("Len = %d", p2.Len())
	}
}

func TestQuickStorePutGet(t *testing.T) {
	f := func(keyRaw, value string) bool {
		key := "k" + sanitize(keyRaw)
		s := NewStore()
		s.Execute([]byte("PUT " + key + " " + value))
		got := s.Execute([]byte("GET " + key))
		return string(got) == "VALUE "+value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != ' ' && r != '\n' {
			out = append(out, r)
		}
	}
	return string(out)
}

func TestQuickBenchSnapshotStability(t *testing.T) {
	f := func(writes []uint8) bool {
		a := NewBench(32)
		for _, w := range writes {
			a.Execute(BenchWrite(uint64(w%8), 16))
		}
		b := NewBench(0)
		if err := b.Restore(a.Snapshot()); err != nil {
			return false
		}
		return bytes.Equal(a.Snapshot(), b.Snapshot())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
