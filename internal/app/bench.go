package app

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Bench is the paper's microbenchmark service: it "accepts requests and
// generates a reply message of configurable size", with reads and writes
// "distinguished by their operation types" (Section VI-C). Operations name a
// key (used to diversify requests and replies) over one shared service
// state:
//
//	op = opRead|opWrite (1 byte) ‖ key (8 bytes LE) ‖ padding to request size
//
// A write bumps the single service-state version; a read returns ReplySize
// bytes deterministically derived from (key, version). Replicas executing
// the same history return byte-identical replies; any completed write
// visibly changes *all* subsequent reads. The shared version is what makes
// 1% writes conflict with concurrent optimized reads in the Fig. 10
// experiment ("concurrent write requests cause conflicting reads"): a
// speculative read executed at replicas whose execution points straddle a
// write observes diverging replies.
type Bench struct {
	// ReplySize is the size of generated read replies in bytes.
	ReplySize int

	version uint64
}

// Bench operation type bytes.
const (
	opRead  byte = 'R'
	opWrite byte = 'W'
)

// benchHeader is the minimal operation length.
const benchHeader = 9

// GlobalKey is the single state part all bench operations touch.
const GlobalKey = "bench/state"

// NewBench creates the microbenchmark service with the given reply size.
func NewBench(replySize int) *Bench {
	return &Bench{ReplySize: replySize}
}

// NewBenchFactory returns a Factory producing Bench instances.
func NewBenchFactory(replySize int) Factory {
	return func() Application { return NewBench(replySize) }
}

var _ Application = (*Bench)(nil)

// BenchRead builds a read operation for key, padded to requestSize bytes.
func BenchRead(key uint64, requestSize int) []byte {
	return benchOp(opRead, key, requestSize)
}

// BenchWrite builds a write operation for key, padded to requestSize bytes.
func BenchWrite(key uint64, requestSize int) []byte {
	return benchOp(opWrite, key, requestSize)
}

func benchOp(t byte, key uint64, requestSize int) []byte {
	if requestSize < benchHeader {
		requestSize = benchHeader
	}
	op := make([]byte, requestSize)
	op[0] = t
	binary.LittleEndian.PutUint64(op[1:9], key)
	return op
}

// BenchIsRead reports whether a bench operation is a read without needing an
// instance (clients use it to set the read-only flag).
func BenchIsRead(op []byte) bool {
	return len(op) >= benchHeader && op[0] == opRead
}

// BenchKey extracts the key of a bench operation.
func BenchKey(op []byte) (uint64, bool) {
	if len(op) < benchHeader {
		return 0, false
	}
	return binary.LittleEndian.Uint64(op[1:9]), true
}

// Execute implements Application.
func (b *Bench) Execute(op []byte) []byte {
	if len(op) < benchHeader || (op[0] != opRead && op[0] != opWrite) {
		return badOp(op)
	}
	key := binary.LittleEndian.Uint64(op[1:9])
	if op[0] == opWrite {
		b.version++
		return []byte("OK " + strconv.FormatUint(b.version, 10))
	}
	return b.readReply(key)
}

// readReply generates ReplySize deterministic bytes from (key, version).
func (b *Bench) readReply(key uint64) []byte {
	size := b.ReplySize
	if size < 1 {
		size = 1
	}
	out := make([]byte, 0, size+32)
	var seedInput [16]byte
	binary.LittleEndian.PutUint64(seedInput[:8], key)
	binary.LittleEndian.PutUint64(seedInput[8:], b.version)
	block := sha256.Sum256(seedInput[:])
	for len(out) < size {
		out = append(out, block[:]...)
		block = sha256.Sum256(block[:])
	}
	return out[:size]
}

// IsRead implements Application.
func (b *Bench) IsRead(op []byte) bool { return BenchIsRead(op) }

// Keys implements Application. All operations touch the shared state, so a
// completed write invalidates every cached read.
func (b *Bench) Keys(op []byte) []string {
	if _, ok := BenchKey(op); !ok {
		return nil
	}
	return []string{GlobalKey}
}

// Snapshot implements Application.
func (b *Bench) Snapshot() []byte {
	w := wire.NewWriter(16)
	w.U32(uint32(b.ReplySize))
	w.U64(b.version)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// Restore implements Application.
func (b *Bench) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	replySize := int(r.U32())
	version := r.U64()
	if err := r.Finish(); err != nil {
		return fmt.Errorf("app: restore bench: %w", err)
	}
	b.ReplySize = replySize
	b.version = version
	return nil
}

// Version returns the current service-state version (for tests).
func (b *Bench) Version() uint64 { return b.version }
