// Package app defines the deterministic replicated-application interface the
// agreement protocol executes against, together with the three services used
// throughout the repository:
//
//   - Store: a key-value store (quickstart and failover examples),
//   - Bench: the paper's microbenchmark service (configurable request and
//     reply sizes, reads and writes distinguishable by operation type), and
//   - Pages: the HTTP page service behind the Fig. 11 experiment.
//
// Applications must be deterministic: executing the same operations in the
// same order from the same snapshot yields identical results and identical
// state digests on every replica. The paper's fast-read optimization
// additionally assumes that reads and writes can be distinguished before
// execution and that the state parts an operation touches are identifiable
// (Section IV-A) — hence IsRead and Keys.
package app

import (
	"crypto/sha256"
	"fmt"

	"github.com/troxy-bft/troxy/internal/msg"
)

// Application is a deterministic replicated service.
type Application interface {
	// Execute applies one operation and returns its result. Service-level
	// failures are encoded in the result; Execute itself must be total.
	Execute(op []byte) []byte

	// IsRead reports whether op leaves the state unchanged. It must be
	// decidable without executing the operation.
	IsRead(op []byte) bool

	// Keys returns the identifiers of the state parts op reads or writes;
	// the Troxy fast-read cache indexes and invalidates entries by these.
	Keys(op []byte) []string

	// Snapshot serializes the full application state deterministically.
	Snapshot() []byte

	// Restore replaces the state with a snapshot.
	Restore(snapshot []byte) error
}

// Factory creates a fresh application instance for one replica.
type Factory func() Application

// StateDigest hashes an application's snapshot; replicas exchange it in
// checkpoints.
func StateDigest(a Application) msg.Digest {
	return sha256.Sum256(a.Snapshot())
}

// badOp formats the canonical result for a malformed operation. It is
// deterministic so replicas stay consistent even on garbage input.
func badOp(op []byte) []byte {
	const maxEcho = 32
	if len(op) > maxEcho {
		op = op[:maxEcho]
	}
	return fmt.Appendf(nil, "ERR malformed operation %q", op)
}
