package app

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Store is a deterministic key-value store speaking a small text protocol:
//
//	GET <key>
//	PUT <key> <value>
//	DEL <key>
//
// GET is the only read. Keys must not contain spaces; values may.
type Store struct {
	data map[string]string
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{data: make(map[string]string)} }

// NewStoreFactory returns a Factory producing empty stores.
func NewStoreFactory() Factory {
	return func() Application { return NewStore() }
}

var _ Application = (*Store)(nil)

func parseStoreOp(op []byte) (verb, key, value string, ok bool) {
	s := string(op)
	verb, rest, found := strings.Cut(s, " ")
	if !found && verb != s {
		return "", "", "", false
	}
	switch verb {
	case "GET", "DEL":
		if rest == "" || strings.Contains(rest, " ") {
			return "", "", "", false
		}
		return verb, rest, "", true
	case "PUT":
		key, value, found = strings.Cut(rest, " ")
		if !found || key == "" {
			return "", "", "", false
		}
		return verb, key, value, true
	default:
		return "", "", "", false
	}
}

// Execute implements Application.
func (s *Store) Execute(op []byte) []byte {
	verb, key, value, ok := parseStoreOp(op)
	if !ok {
		return badOp(op)
	}
	switch verb {
	case "GET":
		v, found := s.data[key]
		if !found {
			return []byte("NOTFOUND")
		}
		return []byte("VALUE " + v)
	case "PUT":
		s.data[key] = value
		return []byte("OK")
	case "DEL":
		if _, found := s.data[key]; !found {
			return []byte("NOTFOUND")
		}
		delete(s.data, key)
		return []byte("OK")
	}
	return badOp(op)
}

// IsRead implements Application.
func (s *Store) IsRead(op []byte) bool {
	verb, _, _, ok := parseStoreOp(op)
	return ok && verb == "GET"
}

// Keys implements Application.
func (s *Store) Keys(op []byte) []string {
	_, key, _, ok := parseStoreOp(op)
	if !ok {
		return nil
	}
	return []string{key}
}

// Snapshot implements Application. Entries are encoded in sorted key order
// so all replicas produce identical snapshots.
func (s *Store) Snapshot() []byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := wire.NewWriter(64)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.String(s.data[k])
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// Restore implements Application.
func (s *Store) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	n := r.SliceLen()
	data := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.String()
		if r.Err() != nil {
			break
		}
		data[k] = v
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("app: restore store: %w", err)
	}
	s.data = data
	return nil
}

// Len returns the number of stored keys (used by tests and examples).
func (s *Store) Len() int { return len(s.data) }

var _ Incremental = (*Store)(nil)

// SnapshotIter implements Incremental. The concatenation of the yielded
// pieces is byte-identical to Snapshot(): a U32 entry count followed by
// sorted (key, value) string pairs. Entries are encoded lazily, so a
// gigabyte-scale store never materializes its full snapshot; only the sorted
// key slice is captured up front. The iterator must be drained before the
// store executes further operations.
func (s *Store) SnapshotIter(maxPiece int) ChunkIterator {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return &storeIter{s: s, keys: keys, max: maxPiece}
}

type storeIter struct {
	s      *Store
	keys   []string
	i      int
	max    int
	header bool
}

func (it *storeIter) Next() ([]byte, bool) {
	if it.header && it.i >= len(it.keys) {
		return nil, false
	}
	w := wire.NewWriter(min(it.max+256, 64<<10))
	if !it.header {
		w.U32(uint32(len(it.keys)))
		it.header = true
	}
	for it.i < len(it.keys) && w.Len() < it.max {
		k := it.keys[it.i]
		w.String(k)
		w.String(it.s.data[k])
		it.i++
	}
	return w.CopyBytes(), true
}

// RestoreSink implements Incremental. The sink parses the snapshot stream
// entry by entry as bytes arrive, keeping only the tail of an entry split
// across Write calls, so peak extra memory is one entry plus the staged map —
// never a second full copy of the encoded snapshot.
func (s *Store) RestoreSink() RestoreSink {
	return &storeSink{s: s, total: -1}
}

type storeSink struct {
	s     *Store
	carry []byte
	data  map[string]string
	total int // declared entry count; -1 until the header has been read
	got   int
	err   error
}

func (sk *storeSink) Write(p []byte) error {
	if sk.err != nil {
		return sk.err
	}
	sk.carry = append(sk.carry, p...)
	for {
		if sk.total < 0 {
			if len(sk.carry) < 4 {
				return nil
			}
			r := wire.NewReader(sk.carry[:4])
			sk.total = int(r.U32())
			sk.carry = sk.carry[4:]
			sk.data = make(map[string]string, min(sk.total, 4096))
			continue
		}
		if sk.got >= sk.total {
			if len(sk.carry) > 0 {
				sk.err = fmt.Errorf("app: restore store: %d trailing bytes", len(sk.carry))
				return sk.err
			}
			sk.carry = nil
			return nil
		}
		r := wire.NewReader(sk.carry)
		k := r.String()
		v := r.String()
		if errors.Is(r.Err(), wire.ErrTooLarge) {
			sk.err = fmt.Errorf("app: restore store: %w", r.Err())
			return sk.err
		}
		if r.Err() != nil {
			// Entry split across Write calls: keep the partial bytes and
			// wait for more. (Upstream chunk digests guarantee the stream
			// terminates, and Commit rejects a still-incomplete entry.)
			return nil
		}
		sk.carry = sk.carry[len(sk.carry)-r.Remaining():]
		sk.data[k] = v
		sk.got++
	}
}

func (sk *storeSink) Commit() error {
	if sk.err != nil {
		return sk.err
	}
	if sk.total < 0 || sk.got < sk.total || len(sk.carry) > 0 {
		sk.err = fmt.Errorf("app: restore store: truncated stream (%d/%d entries, %d carry bytes)",
			sk.got, sk.total, len(sk.carry))
		return sk.err
	}
	sk.s.data = sk.data
	sk.err = errors.New("app: restore sink already committed")
	return nil
}
