package app

import (
	"fmt"
	"sort"
	"strings"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Store is a deterministic key-value store speaking a small text protocol:
//
//	GET <key>
//	PUT <key> <value>
//	DEL <key>
//
// GET is the only read. Keys must not contain spaces; values may.
type Store struct {
	data map[string]string
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{data: make(map[string]string)} }

// NewStoreFactory returns a Factory producing empty stores.
func NewStoreFactory() Factory {
	return func() Application { return NewStore() }
}

var _ Application = (*Store)(nil)

func parseStoreOp(op []byte) (verb, key, value string, ok bool) {
	s := string(op)
	verb, rest, found := strings.Cut(s, " ")
	if !found && verb != s {
		return "", "", "", false
	}
	switch verb {
	case "GET", "DEL":
		if rest == "" || strings.Contains(rest, " ") {
			return "", "", "", false
		}
		return verb, rest, "", true
	case "PUT":
		key, value, found = strings.Cut(rest, " ")
		if !found || key == "" {
			return "", "", "", false
		}
		return verb, key, value, true
	default:
		return "", "", "", false
	}
}

// Execute implements Application.
func (s *Store) Execute(op []byte) []byte {
	verb, key, value, ok := parseStoreOp(op)
	if !ok {
		return badOp(op)
	}
	switch verb {
	case "GET":
		v, found := s.data[key]
		if !found {
			return []byte("NOTFOUND")
		}
		return []byte("VALUE " + v)
	case "PUT":
		s.data[key] = value
		return []byte("OK")
	case "DEL":
		if _, found := s.data[key]; !found {
			return []byte("NOTFOUND")
		}
		delete(s.data, key)
		return []byte("OK")
	}
	return badOp(op)
}

// IsRead implements Application.
func (s *Store) IsRead(op []byte) bool {
	verb, _, _, ok := parseStoreOp(op)
	return ok && verb == "GET"
}

// Keys implements Application.
func (s *Store) Keys(op []byte) []string {
	_, key, _, ok := parseStoreOp(op)
	if !ok {
		return nil
	}
	return []string{key}
}

// Snapshot implements Application. Entries are encoded in sorted key order
// so all replicas produce identical snapshots.
func (s *Store) Snapshot() []byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := wire.NewWriter(64)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.String(s.data[k])
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// Restore implements Application.
func (s *Store) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	n := r.SliceLen()
	data := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.String()
		if r.Err() != nil {
			break
		}
		data[k] = v
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("app: restore store: %w", err)
	}
	s.data = data
	return nil
}

// Len returns the number of stored keys (used by tests and examples).
func (s *Store) Len() int { return len(s.data) }
