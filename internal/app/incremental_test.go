package app

import (
	"bytes"
	"fmt"
	"testing"
)

func populatedStore(t *testing.T, n int) *Store {
	t.Helper()
	s := NewStore()
	for i := 0; i < n; i++ {
		op := fmt.Sprintf("PUT key-%04d value-%d-%s", i, i, string(bytes.Repeat([]byte{'x'}, i%37)))
		if got := s.Execute([]byte(op)); string(got) != "OK" {
			t.Fatalf("populate: %q -> %q", op, got)
		}
	}
	return s
}

// The incremental contract: concatenated iterator pieces equal Snapshot()
// byte for byte, for both the Store fast path and the materializing fallback.
func TestSnapshotIterMatchesSnapshot(t *testing.T) {
	s := populatedStore(t, 300)
	want := s.Snapshot()
	for _, max := range []int{1, 7, 64, 1024, 1 << 20} {
		var got []byte
		pieces := 0
		it := SnapshotIterOf(s, max)
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, p...)
			pieces++
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("max=%d: concatenated pieces differ from Snapshot (%d vs %d bytes)", max, len(got), len(want))
		}
		if max <= 64 && pieces < 2 {
			t.Fatalf("max=%d: expected multiple pieces, got %d", max, pieces)
		}
	}
}

// Feeding the stream through a RestoreSink at arbitrary split points must
// reproduce the source state, including splits inside an entry.
func TestRestoreSinkArbitrarySplits(t *testing.T) {
	src := populatedStore(t, 200)
	snap := src.Snapshot()
	for _, step := range []int{1, 3, 5, 100, len(snap)} {
		dst := NewStore()
		sk := RestoreSinkOf(dst)
		for off := 0; off < len(snap); off += step {
			end := min(off+step, len(snap))
			if err := sk.Write(snap[off:end]); err != nil {
				t.Fatalf("step=%d: Write: %v", step, err)
			}
		}
		if err := sk.Commit(); err != nil {
			t.Fatalf("step=%d: Commit: %v", step, err)
		}
		if !bytes.Equal(dst.Snapshot(), snap) {
			t.Fatalf("step=%d: restored state diverges", step)
		}
	}
}

func TestRestoreSinkRejectsBadStreams(t *testing.T) {
	snap := populatedStore(t, 20).Snapshot()

	t.Run("truncated", func(t *testing.T) {
		sk := NewStore().RestoreSink()
		if err := sk.Write(snap[:len(snap)-3]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := sk.Commit(); err == nil {
			t.Fatal("Commit accepted a truncated stream")
		}
	})

	t.Run("trailing", func(t *testing.T) {
		sk := NewStore().RestoreSink()
		if err := sk.Write(append(bytes.Clone(snap), 0xFF)); err == nil {
			if err := sk.Commit(); err == nil {
				t.Fatal("sink accepted trailing garbage")
			}
		}
	})

	t.Run("oversize-claim", func(t *testing.T) {
		sk := NewStore().RestoreSink()
		bad := []byte{1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF} // 1 entry, 4 GiB key
		if err := sk.Write(bad); err == nil {
			t.Fatal("sink accepted an oversize length claim")
		}
	})

	t.Run("commit-is-atomic", func(t *testing.T) {
		dst := populatedStore(t, 5)
		before := dst.Snapshot()
		sk := dst.RestoreSink()
		if err := sk.Write(snap[:8]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := sk.Commit(); err == nil {
			t.Fatal("Commit accepted an incomplete stream")
		}
		if !bytes.Equal(dst.Snapshot(), before) {
			t.Fatal("failed restore mutated the store")
		}
	})
}

// A non-incremental application gets the materializing fallback and must
// round-trip the same way. plainApp forwards only the base Application
// methods so it does not satisfy Incremental.
type plainApp struct{ s *Store }

func (p plainApp) Execute(op []byte) []byte { return p.s.Execute(op) }
func (p plainApp) IsRead(op []byte) bool    { return p.s.IsRead(op) }
func (p plainApp) Keys(op []byte) []string  { return p.s.Keys(op) }
func (p plainApp) Snapshot() []byte         { return p.s.Snapshot() }
func (p plainApp) Restore(b []byte) error   { return p.s.Restore(b) }

func TestFallbackAdapters(t *testing.T) {
	src := populatedStore(t, 50)
	snap := src.Snapshot()

	var got []byte
	it := SnapshotIterOf(plainApp{src}, 16)
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, p...)
	}
	if !bytes.Equal(got, snap) {
		t.Fatal("fallback iterator diverges from Snapshot")
	}

	dst := NewStore()
	sk := RestoreSinkOf(plainApp{dst})
	if _, ok := sk.(*bufferSink); !ok {
		t.Fatalf("expected bufferSink fallback, got %T", sk)
	}
	for off := 0; off < len(snap); off += 9 {
		if err := sk.Write(snap[off:min(off+9, len(snap))]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sk.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !bytes.Equal(dst.Snapshot(), snap) {
		t.Fatal("fallback sink restored divergent state")
	}
}
