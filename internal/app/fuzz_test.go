package app

import (
	"bytes"
	"testing"

	"github.com/troxy-bft/troxy/internal/wire"
)

// FuzzRestoreSink feeds arbitrary bytes through the streaming restore path in
// arbitrary split sizes. The sink parses state-transfer chunk payloads from
// peers, so it must never panic, and it must agree with the monolithic
// Restore: a stream the sink commits is exactly a snapshot Restore accepts,
// with the identical resulting state — and vice versa, a stream the sink
// refuses must not be a valid snapshot.
func FuzzRestoreSink(f *testing.F) {
	s := NewStore()
	s.Execute([]byte("PUT alpha 1"))
	s.Execute([]byte("PUT beta two words"))
	valid := s.Snapshot()
	f.Add(valid, byte(3))
	f.Add(valid[:len(valid)-2], byte(1)) // truncated mid-entry
	f.Add(append(append([]byte(nil), valid...), 0xEE), byte(5))
	// Oversize claim: one entry promised, its key length far beyond the cap.
	f.Add([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}, byte(2))
	f.Add([]byte{}, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, step byte) {
		st := NewStore()
		sink := st.RestoreSink()
		stride := int(step)%7 + 1
		var writeErr error
		for off := 0; off < len(data) && writeErr == nil; off += stride {
			writeErr = sink.Write(data[off:min(off+stride, len(data))])
		}
		committed := false
		if writeErr == nil {
			committed = sink.Commit() == nil
		}

		direct := NewStore()
		directErr := direct.Restore(data)
		if committed != (directErr == nil) {
			// The one legitimate divergence: Restore tolerates duplicate
			// U32 length claims the sink also tolerates — so any mismatch
			// is a real parser disagreement.
			t.Fatalf("sink committed=%v, Restore err=%v — streaming and monolithic restore disagree", committed, directErr)
		}
		if !committed {
			return
		}
		if !bytes.Equal(st.Snapshot(), direct.Snapshot()) {
			t.Fatal("streaming and monolithic restore produced different states")
		}
		// Committed state is canonical: its snapshot restores to itself.
		again := NewStore()
		if err := again.Restore(st.Snapshot()); err != nil {
			t.Fatalf("re-restore of committed state failed: %v", err)
		}
	})
}

// FuzzSnapshotIter checks the iterator against the monolithic snapshot for
// arbitrary store contents and piece sizes: concatenated pieces must be
// byte-identical to Snapshot() regardless of how the state splits.
func FuzzSnapshotIter(f *testing.F) {
	f.Add([]byte("PUT a 1\x00PUT b 2\x00DEL a"), uint16(7))
	f.Add([]byte("PUT k v"), uint16(1))
	f.Add([]byte{}, uint16(64))
	f.Fuzz(func(t *testing.T, script []byte, maxPiece uint16) {
		s := NewStore()
		for _, op := range bytes.Split(script, []byte{0}) {
			s.Execute(op)
		}
		it := s.SnapshotIter(int(maxPiece))
		w := wire.NewWriter(64)
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			w.Raw(p)
		}
		if !bytes.Equal(w.Bytes(), s.Snapshot()) {
			t.Fatalf("iterated snapshot differs from monolithic (%d vs %d bytes)", w.Len(), len(s.Snapshot()))
		}
	})
}
