package app

import (
	"fmt"
	"sort"

	"github.com/troxy-bft/troxy/internal/wire"
)

// Pages is the replicated page store behind the HTTP service of the Fig. 11
// experiment: GET returns a page, POST replaces it and returns the new
// content. Operations are the encoded form produced by PageGet/PagePost; the
// HTTP frontend (internal/httpfront) translates HTTP/1.1 requests into them.
type Pages struct {
	pages map[string][]byte
}

// Page operation verbs.
const (
	pageOpGet  byte = 1
	pageOpPost byte = 2
)

// NewPages creates an empty page store.
func NewPages() *Pages { return &Pages{pages: make(map[string][]byte)} }

// NewPagesFactory returns a Factory producing page stores pre-populated with
// the given pages (all replicas must start from identical state).
func NewPagesFactory(initial map[string][]byte) Factory {
	return func() Application {
		p := NewPages()
		for path, content := range initial {
			c := make([]byte, len(content))
			copy(c, content)
			p.pages[path] = c
		}
		return p
	}
}

var _ Application = (*Pages)(nil)

// PageGet encodes a GET operation.
func PageGet(path string) []byte {
	w := wire.NewWriter(8 + len(path))
	w.U8(pageOpGet)
	w.String(path)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// PagePost encodes a POST operation replacing path's content.
func PagePost(path string, body []byte) []byte {
	w := wire.NewWriter(16 + len(path) + len(body))
	w.U8(pageOpPost)
	w.String(path)
	w.Bytes32(body)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

func parsePageOp(op []byte) (verb byte, path string, body []byte, ok bool) {
	r := wire.NewReader(op)
	verb = r.U8()
	path = r.String()
	switch verb {
	case pageOpGet:
	case pageOpPost:
		body = r.Bytes32()
	default:
		return 0, "", nil, false
	}
	if r.Finish() != nil || path == "" {
		return 0, "", nil, false
	}
	return verb, path, body, true
}

// Page results start with a one-byte status.
const (
	// PageOK prefixes a successful result; the rest is the page content.
	PageOK byte = 1
	// PageMissing prefixes a result for an unknown path.
	PageMissing byte = 2
)

// Execute implements Application.
func (p *Pages) Execute(op []byte) []byte {
	verb, path, body, ok := parsePageOp(op)
	if !ok {
		return badOp(op)
	}
	switch verb {
	case pageOpGet:
		content, found := p.pages[path]
		if !found {
			return []byte{PageMissing}
		}
		out := make([]byte, 1+len(content))
		out[0] = PageOK
		copy(out[1:], content)
		return out
	case pageOpPost:
		c := make([]byte, len(body))
		copy(c, body)
		p.pages[path] = c
		out := make([]byte, 1+len(c))
		out[0] = PageOK
		copy(out[1:], c)
		return out
	}
	return badOp(op)
}

// IsRead implements Application.
func (p *Pages) IsRead(op []byte) bool {
	verb, _, _, ok := parsePageOp(op)
	return ok && verb == pageOpGet
}

// Keys implements Application.
func (p *Pages) Keys(op []byte) []string {
	_, path, _, ok := parsePageOp(op)
	if !ok {
		return nil
	}
	return []string{"page" + path}
}

// Snapshot implements Application.
func (p *Pages) Snapshot() []byte {
	paths := make([]string, 0, len(p.pages))
	for k := range p.pages {
		paths = append(paths, k)
	}
	sort.Strings(paths)
	w := wire.NewWriter(256)
	w.U32(uint32(len(paths)))
	for _, path := range paths {
		w.String(path)
		w.Bytes32(p.pages[path])
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// Restore implements Application.
func (p *Pages) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	n := r.SliceLen()
	pages := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		path := r.String()
		content := r.Bytes32()
		if r.Err() != nil {
			break
		}
		pages[path] = content
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("app: restore pages: %w", err)
	}
	p.pages = pages
	return nil
}

// Len returns the number of stored pages.
func (p *Pages) Len() int { return len(p.pages) }
