// Package replica implements the untrusted part of a replica: connection
// handling, transport message authentication, and the composition of the
// Hybster protocol core with (optionally) a Troxy. It is the node.Handler
// that runs on each server, under both the real runtime and the simulator.
//
// Two frontends exist, matching the evaluation's systems:
//
//   - Troxy mode (Config.Proxy != nil): legacy clients connect over secure
//     channels; the Troxy terminates them, votes over replies, and serves
//     fast reads. Replies of executed requests travel replica→replica as
//     OrderedReply messages authenticated by the executing replica's Troxy.
//   - Baseline mode (Config.Proxy == nil): BFT clients (internal/bftclient)
//     talk the protocol themselves; replicas send them BFTReply messages and
//     answer speculative direct reads (the PBFT-like read optimization).
package replica

import (
	"time"

	"github.com/troxy-bft/troxy/internal/authn"
	"github.com/troxy-bft/troxy/internal/hybster"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/troxy"
)

// Config parameterizes a replica.
type Config struct {
	// Self is this replica's ID (0..N-1).
	Self msg.NodeID

	// N and F are the replication parameters.
	N, F int

	// Hybster configures the protocol core (including PipelineDepth, the
	// ordering pipeline's in-flight window). Self/N/F are overwritten from
	// this config.
	Hybster hybster.Config

	// Directory provides the transport authentication keys.
	Directory *authn.Directory

	// Proxy is the Troxy binding (nil = baseline mode).
	Proxy troxy.Proxy

	// TickInterval drives the Troxy's timeout processing (zero: 100ms).
	TickInterval time.Duration
}

const timerTick = "replica/tick"

// Replica is the untrusted replica part.
type Replica struct {
	cfg   Config
	auth  *authn.Authenticator
	core  *hybster.Core
	proxy troxy.Proxy

	stats Stats
}

// Stats counts transport-level events.
type Stats struct {
	// BadMACs counts envelopes dropped by transport authentication ("if a
	// correct component receives a message it cannot verify, the component
	// discards the message", Section III-B).
	BadMACs uint64
	// DirectReads counts speculative read executions (baseline mode).
	DirectReads uint64
	// Unhandled counts authenticated messages of a kind the replica has no
	// handler for (client-side kinds like BFTReply, or transport-level
	// kinds like Batch that never arrive as bare envelopes).
	Unhandled uint64
}

var _ node.Handler = (*Replica)(nil)
var _ hybster.Outbound = (*Replica)(nil)
var _ hybster.SpecOutbound = (*Replica)(nil)

// New creates a replica.
func New(cfg Config) *Replica {
	r := &Replica{cfg: cfg, proxy: cfg.Proxy}
	r.auth = authn.NewAuthenticator(cfg.Self, cfg.Directory)
	hcfg := cfg.Hybster
	hcfg.Self = cfg.Self
	hcfg.N = cfg.N
	hcfg.F = cfg.F
	r.core = hybster.New(hcfg, r)
	return r
}

// Core exposes the protocol core (experiments read its metrics).
func (r *Replica) Core() *hybster.Core { return r.core }

// Stats returns transport counters.
func (r *Replica) Stats() Stats { return r.stats }

// OnStart implements node.Handler.
func (r *Replica) OnStart(env node.Env) {
	if r.proxy != nil {
		env.SetTimer(r.tickInterval(), node.TimerKey{Kind: timerTick})
	}
}

func (r *Replica) tickInterval() time.Duration {
	if r.cfg.TickInterval > 0 {
		return r.cfg.TickInterval
	}
	return 100 * time.Millisecond
}

// OnTimer implements node.Handler.
func (r *Replica) OnTimer(env node.Env, key node.TimerKey) {
	switch {
	case hybster.OwnsTimer(key):
		r.core.OnTimer(env, key)
	case key.Kind == timerTick:
		if r.proxy != nil {
			if acts, err := r.proxy.Tick(env); err == nil {
				r.apply(env, acts)
			}
			env.SetTimer(r.tickInterval(), node.TimerKey{Kind: timerTick})
		}
	}
}

// OnEnvelope implements node.Handler.
func (r *Replica) OnEnvelope(env node.Env, e *msg.Envelope) {
	if e.Kind == msg.KindChannelData {
		r.onChannelData(env, e)
		return
	}

	// Everything else travels with a transport MAC.
	env.Charge(node.ProfileJava, node.ChargeMAC, len(e.Body))
	if !r.auth.VerifyMAC(e) {
		r.stats.BadMACs++
		return
	}
	m, err := e.Open()
	if err != nil {
		r.stats.BadMACs++
		return
	}
	env.Charge(node.ProfileJava, node.ChargeBase, 0)

	switch m := m.(type) {
	case *msg.BFTRequest:
		r.onBFTRequest(env, e.From, m)
	case *msg.Forward:
		r.core.OnForward(env, e.From, m)
	case *msg.Prepare:
		r.core.OnPrepare(env, e.From, m)
	case *msg.Commit:
		r.core.OnCommit(env, e.From, m)
	case *msg.Checkpoint:
		r.core.OnCheckpoint(env, e.From, m)
	case *msg.ViewChange:
		r.core.OnViewChange(env, e.From, m)
	case *msg.NewView:
		r.core.OnNewView(env, e.From, m)
	case *msg.StateRequest:
		r.core.OnStateRequest(env, e.From, m)
	case *msg.StateReply:
		r.core.OnStateReply(env, e.From, m)
	case *msg.StateChunk:
		r.core.OnStateChunk(env, e.From, m)
	case *msg.StatePrefix:
		r.core.OnStatePrefix(env, e.From, m)
	case *msg.NewViewRequest:
		r.core.OnNewViewRequest(env, e.From, m)
	case *msg.OrderedReply:
		if r.proxy != nil {
			if acts, err := r.proxy.HandleReply(env, m); err == nil {
				r.apply(env, acts)
			}
		}
	case *msg.SpecReply:
		// A peer's speculative reply for a request this replica originated.
		// The counter certificate is checked by the protocol core (it knows
		// the lane layout and leader schedule) before the Troxy tallies the
		// vote; a bad certificate is counted against the sender.
		if r.proxy != nil && r.core.VerifySpecReply(env, e.From, m) {
			if acts, err := r.proxy.HandleSpecReply(env, m); err == nil {
				r.apply(env, acts)
			}
		}
	case *msg.CacheQuery:
		if r.proxy != nil {
			if acts, err := r.proxy.HandleCacheQuery(env, m); err == nil {
				r.apply(env, acts)
			}
		}
	case *msg.CacheReply:
		if r.proxy != nil {
			if acts, err := r.proxy.HandleCacheReply(env, m); err == nil {
				r.apply(env, acts)
			}
		}
	default:
		// ChannelData is intercepted above; BFTReply is client-bound and
		// Batch only travels inside PREPAREs. Count anything else so a new
		// message kind that is wired here but not handled shows up.
		r.stats.Unhandled++
	}
}

// onChannelData feeds opaque client bytes into the Troxy.
func (r *Replica) onChannelData(env node.Env, e *msg.Envelope) {
	if r.proxy == nil {
		return // baseline replicas have no legacy-client frontend
	}
	m, err := e.Open()
	if err != nil {
		return
	}
	cd, ok := m.(*msg.ChannelData)
	if !ok {
		return
	}
	acts, err := r.proxy.HandleClientData(env, cd.ConnID, e.From, cd.Payload)
	if err != nil {
		env.Logf("troxy: client data from %d: %v", e.From, err)
		return
	}
	r.apply(env, acts)
}

// onBFTRequest serves baseline BFT clients.
func (r *Replica) onBFTRequest(env node.Env, from msg.NodeID, m *msg.BFTRequest) {
	if m.Flags&msg.FlagDirect != 0 {
		// Speculative read: execute without ordering and reply directly.
		result, ok := r.core.ExecuteReadOnly(env, m.Op)
		rep := &msg.BFTReply{
			Executor:  r.cfg.Self,
			Client:    m.Client,
			ClientSeq: m.ClientSeq,
			ReqDigest: msg.DigestOf(m.Op),
			Direct:    true,
			Conflict:  !ok,
			Result:    result,
		}
		r.stats.DirectReads++
		r.sendAuthed(env, from, rep)
		return
	}
	if m.Flags&msg.FlagBroadcast != 0 && !r.core.IsLeader() {
		// The client broadcast this request; the leader has its own copy
		// and followers must not amplify it into Forwards.
		return
	}
	r.core.Submit(env, &msg.OrderRequest{
		Origin:    from,
		Client:    m.Client,
		ClientSeq: m.ClientSeq,
		Flags:     m.Flags,
		Op:        m.Op,
	})
}

// apply executes the Troxy's requested actions.
func (r *Replica) apply(env node.Env, acts troxy.Actions) {
	for _, cr := range acts.Client {
		env.Send(msg.Seal(r.cfg.Self, cr.Node, &msg.ChannelData{
			ConnID:  cr.ConnID,
			Payload: cr.Frame,
		}))
	}
	for i := range acts.Submits {
		req := acts.Submits[i]
		r.core.Submit(env, &req)
	}
	for _, pm := range acts.Queries {
		var m msg.Message
		if pm.Query != nil {
			m = pm.Query
		} else {
			m = pm.Reply
		}
		r.sendAuthed(env, pm.To, m)
	}
}

// sendAuthed seals, MACs and transmits a message.
func (r *Replica) sendAuthed(env node.Env, to msg.NodeID, m msg.Message) {
	e := msg.Seal(r.cfg.Self, to, m)
	env.Charge(node.ProfileJava, node.ChargeMAC, len(e.Body))
	r.auth.SealMAC(e)
	env.Send(e)
}

// Send implements hybster.Outbound.
func (r *Replica) Send(env node.Env, to msg.NodeID, m msg.Message) {
	r.sendAuthed(env, to, m)
}

// Committed implements hybster.Outbound: every executed request produces a
// reply toward its origin. In Troxy mode the reply is authenticated by this
// replica's Troxy — which also invalidates outdated cache entries before the
// reply can count anywhere (Section IV-A).
//
// The core invokes Committed strictly in *applied* sequence order, even when
// the ordering pipeline certifies and disseminates batches out of order
// (PipelineDepth > 1). The Troxy's fast-read freshness tracking
// (lastWriteSeq) depends on this: it must observe writes in the order they
// took effect, not the order their PREPAREs happened to certify.
func (r *Replica) Committed(env node.Env, seq uint64, req *msg.OrderRequest, result []byte, keys []string, read, fresh bool) {
	if req.Origin == msg.NoNode {
		return
	}
	if r.proxy == nil {
		// Baseline: reply straight to the BFT client.
		r.sendAuthed(env, req.Origin, &msg.BFTReply{
			Executor:  r.cfg.Self,
			Client:    req.Client,
			ClientSeq: req.ClientSeq,
			ReqDigest: req.Digest(),
			Result:    result,
		})
		return
	}

	rep := &msg.OrderedReply{
		Executor:    r.cfg.Self,
		Seq:         seq,
		Client:      req.Client,
		ClientSeq:   req.ClientSeq,
		ReqDigest:   req.Digest(),
		Result:      result,
		InvalidKeys: keys,
	}
	opHash := msg.DigestOf(req.Op)
	env.Charge(node.ProfileJava, node.ChargeHash, len(req.Op))
	if err := r.proxy.AuthenticateReply(env, rep, read, fresh, opHash); err != nil {
		env.Logf("troxy: authenticate reply: %v", err)
		return
	}
	if req.Origin == r.cfg.Self {
		// The voter lives in this replica's own Troxy.
		if acts, err := r.proxy.HandleReply(env, rep); err == nil {
			r.apply(env, acts)
		}
		return
	}
	r.sendAuthed(env, req.Origin, rep)
}

// Speculated implements hybster.SpecOutbound: a prepared-but-uncommitted
// fast-flagged request was executed against the shadow. The speculative
// reply mirrors Committed's routing — authenticated by this replica's Troxy,
// then delivered to the origin's voter (in-process when the origin is this
// replica). Baseline mode has no speculative tier: BFT clients vote over
// durable replies only.
func (r *Replica) Speculated(env node.Env, view, seq uint64, batchDigest msg.Digest, req *msg.OrderRequest, result []byte, cert msg.CounterCert) {
	if r.proxy == nil || req.Origin == msg.NoNode {
		return
	}
	sr := &msg.SpecReply{
		Executor:    r.cfg.Self,
		View:        view,
		Seq:         seq,
		BatchDigest: batchDigest,
		Client:      req.Client,
		ClientSeq:   req.ClientSeq,
		ReqDigest:   req.Digest(),
		Result:      result,
		Cert:        cert,
	}
	env.Charge(node.ProfileJava, node.ChargeHash, len(req.Op))
	if err := r.proxy.AuthenticateSpecReply(env, sr); err != nil {
		env.Logf("troxy: authenticate spec reply: %v", err)
		return
	}
	if req.Origin == r.cfg.Self {
		if acts, err := r.proxy.HandleSpecReply(env, sr); err == nil {
			r.apply(env, acts)
		}
		return
	}
	r.sendAuthed(env, req.Origin, sr)
}

// Retracted implements hybster.SpecOutbound: a speculation this replica
// originated was rolled back before the durable tier settled it. The local
// Troxy withdraws the fast answer from its client; the durable re-execution
// (or reply-cache replay) that follows repairs it.
func (r *Replica) Retracted(env node.Env, seq uint64, req *msg.OrderRequest, view uint64) {
	if r.proxy == nil {
		return
	}
	if acts, err := r.proxy.HandleRetract(env, req.Client, req.ClientSeq, seq, view); err == nil {
		r.apply(env, acts)
	}
}
