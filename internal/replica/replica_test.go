package replica

import (
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/authn"
	"github.com/troxy-bft/troxy/internal/hybster"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
)

// newBaselineCluster wires three baseline-mode replicas directly (no Troxy),
// exercising this package's transport authentication and dispatch.
func newBaselineCluster(t *testing.T) ([]*Replica, *authn.Directory, *simnet.Network) {
	t.Helper()
	dir, err := authn.NewDirectory([]byte("replica-test"))
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(2, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	var reps []*Replica
	for i := 0; i < 3; i++ {
		sub := tcounter.NewSubsystem(msg.NodeID(i))
		sub.SetKey(dir.CounterKey())
		r := New(Config{
			Self: msg.NodeID(i),
			N:    3,
			F:    1,
			Hybster: hybster.Config{
				Profile:           node.ProfileJava,
				Authority:         tcounter.Direct{S: sub},
				App:               app.NewStore(),
				ViewChangeTimeout: 10 * time.Second,
			},
			Directory: dir,
		})
		reps = append(reps, r)
		net.Attach(msg.NodeID(i), r)
	}
	return reps, dir, net
}

// sender injects envelopes, optionally MACed with the right key.
type sender struct {
	auth *authn.Authenticator
	send []*msg.Envelope
}

func (s *sender) OnStart(env node.Env) {
	for _, e := range s.send {
		env.Send(e)
	}
}
func (s *sender) OnEnvelope(node.Env, *msg.Envelope) {}
func (s *sender) OnTimer(node.Env, node.TimerKey)    {}

func TestUnauthenticatedEnvelopesDiscarded(t *testing.T) {
	reps, _, net := newBaselineCluster(t)
	e := msg.Seal(100, 0, &msg.BFTRequest{Client: 1, ClientSeq: 1, Op: []byte("PUT a 1")})
	e.MAC = []byte("bogus")
	net.Attach(100, &sender{send: []*msg.Envelope{e}})
	net.Run(time.Second)
	if reps[0].Stats().BadMACs == 0 {
		t.Error("bogus MAC not counted")
	}
	if reps[0].Core().Metrics().Executed != 0 {
		t.Error("unauthenticated request executed")
	}
}

func TestAuthenticatedRequestOrdersAndReplies(t *testing.T) {
	reps, dir, net := newBaselineCluster(t)
	auth := authn.NewAuthenticator(100, dir)
	e := msg.Seal(100, 0, &msg.BFTRequest{Client: 1, ClientSeq: 1, Op: []byte("PUT a 1")})
	auth.SealMAC(e)

	recv := &collector{}
	net.Attach(100, &sender{send: []*msg.Envelope{e}})
	net.Attach(101, recv) // unrelated observer
	net.Run(2 * time.Second)

	for i, r := range reps {
		if r.Core().Metrics().Executed != 1 {
			t.Errorf("replica %d executed %d", i, r.Core().Metrics().Executed)
		}
	}
}

type collector struct{ got []*msg.Envelope }

func (c *collector) OnStart(node.Env) {}
func (c *collector) OnEnvelope(_ node.Env, e *msg.Envelope) {
	c.got = append(c.got, e)
}
func (c *collector) OnTimer(node.Env, node.TimerKey) {}

func TestDirectReadExecutesWithoutOrdering(t *testing.T) {
	reps, dir, net := newBaselineCluster(t)
	auth := authn.NewAuthenticator(100, dir)
	e := msg.Seal(100, 1, &msg.BFTRequest{
		Client: 1, ClientSeq: 1,
		Flags: msg.FlagReadOnly | msg.FlagDirect,
		Op:    []byte("GET a"),
	})
	auth.SealMAC(e)

	net.Attach(100, &sender{send: []*msg.Envelope{e}})
	net.Run(time.Second)

	if reps[1].Stats().DirectReads != 1 {
		t.Errorf("direct reads = %d", reps[1].Stats().DirectReads)
	}
	if reps[1].Core().Metrics().Executed != 0 {
		t.Error("direct read went through ordering")
	}
}

func TestBroadcastFlagNotForwardedByFollowers(t *testing.T) {
	reps, dir, net := newBaselineCluster(t)
	auth := authn.NewAuthenticator(100, dir)
	var envs []*msg.Envelope
	for i := 0; i < 3; i++ {
		e := msg.Seal(100, msg.NodeID(i), &msg.BFTRequest{
			Client: 1, ClientSeq: 1,
			Flags: msg.FlagBroadcast,
			Op:    []byte("PUT a 1"),
		})
		auth.SealMAC(e)
		envs = append(envs, e)
	}
	net.Attach(100, &sender{send: envs})
	net.Run(2 * time.Second)
	for i, r := range reps {
		if got := r.Core().Metrics().Executed; got != 1 {
			t.Errorf("replica %d executed %d, want exactly 1", i, got)
		}
	}
}
