package replica

import (
	"crypto/ed25519"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/troxy-bft/troxy/internal/app"
	"github.com/troxy-bft/troxy/internal/authn"
	"github.com/troxy-bft/troxy/internal/hybster"
	"github.com/troxy-bft/troxy/internal/legacyclient"
	"github.com/troxy-bft/troxy/internal/msg"
	"github.com/troxy-bft/troxy/internal/node"
	"github.com/troxy-bft/troxy/internal/simnet"
	"github.com/troxy-bft/troxy/internal/tcounter"
	itroxy "github.com/troxy-bft/troxy/internal/troxy"
	"github.com/troxy-bft/troxy/internal/workload"
)

// newTroxyCluster assembles three Troxy-mode replicas by hand (ctroxy
// binding), without the root package's convenience wiring.
func newTroxyCluster(t *testing.T) ([]*Replica, ed25519.PublicKey, *simnet.Network) {
	t.Helper()
	dir, err := authn.NewDirectory([]byte("replica-troxy-test"))
	if err != nil {
		t.Fatal(err)
	}
	identitySeed := dir.ServiceIdentitySeed()
	pub := ed25519.NewKeyFromSeed(identitySeed).Public().(ed25519.PublicKey)
	secrets := map[string][]byte{
		itroxy.SecretIdentity: identitySeed,
		itroxy.SecretGroup:    dir.TroxyGroupKey(),
		tcounter.SecretName:   dir.CounterKey(),
	}

	net := simnet.New(4, nil)
	net.SetDefaultLink(simnet.FixedLatency(time.Millisecond))
	var reps []*Replica
	for i := 0; i < 3; i++ {
		sub := tcounter.NewSubsystem(msg.NodeID(i))
		sub.SetKey(dir.CounterKey())
		core := itroxy.NewCore(itroxy.Config{
			Self: msg.NodeID(i), N: 3, F: 1, Seed: int64(i + 1),
			Classify:  func(op []byte) bool { return strings.HasPrefix(string(op), "GET ") },
			FastReads: true,
		})
		if err := core.ProvisionSecrets(secrets); err != nil {
			t.Fatal(err)
		}
		r := New(Config{
			Self: msg.NodeID(i), N: 3, F: 1,
			Hybster: hybster.Config{
				Profile:           node.ProfileJava,
				Authority:         tcounter.Direct{S: sub},
				App:               app.NewStore(),
				ViewChangeTimeout: 10 * time.Second,
			},
			Directory:    dir,
			Proxy:        itroxy.NewDirectProxy(core),
			TickInterval: 20 * time.Millisecond,
		})
		reps = append(reps, r)
		net.Attach(msg.NodeID(i), r)
	}
	return reps, pub, net
}

func TestTroxyModeEndToEnd(t *testing.T) {
	_, pub, net := newTroxyCluster(t)
	ops := []workload.Op{
		{Op: []byte("PUT a 1")},
		{Op: []byte("GET a"), Read: true},
		{Op: []byte("GET a"), Read: true},
	}
	lc := legacyclient.New(legacyclient.Config{
		Machine: 10, Clients: 1, FirstClientID: 1000,
		Replicas:  []msg.NodeID{1, 2, 0},
		ServerPub: pub,
		Gen:       &listGen{ops: ops},
		MaxOps:    len(ops), Timeout: time.Second,
	})
	net.Attach(10, lc)
	net.Run(20 * time.Second)
	if lc.Done() != len(ops) {
		t.Fatalf("completed %d/%d", lc.Done(), len(ops))
	}
}

// listGen replays a fixed operation list (repeating the last entry).
type listGen struct {
	ops []workload.Op
	i   int
}

func (g *listGen) Next(*rand.Rand) workload.Op {
	if g.i >= len(g.ops) {
		return g.ops[len(g.ops)-1]
	}
	op := g.ops[g.i]
	g.i++
	return op
}
