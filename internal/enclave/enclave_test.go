package enclave

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// echoTrusted is a minimal trusted module used by the tests.
type echoTrusted struct {
	mu        sync.Mutex
	sv        *Services
	starts    int
	secrets   map[string][]byte
	volatile  []byte // wiped on restart
	failProv  bool
	argSeen   []byte
	mutateArg bool
}

func (e *echoTrusted) ECalls() map[string]func([]byte) ([]byte, error) {
	return map[string]func([]byte) ([]byte, error){
		"echo": func(arg []byte) ([]byte, error) {
			e.mu.Lock()
			defer e.mu.Unlock()
			e.argSeen = arg
			return arg, nil
		},
		"fail": func([]byte) ([]byte, error) {
			return nil, errors.New("boom")
		},
		"set": func(arg []byte) ([]byte, error) {
			e.mu.Lock()
			defer e.mu.Unlock()
			e.volatile = append([]byte(nil), arg...)
			return nil, nil
		},
		"get": func([]byte) ([]byte, error) {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.volatile, nil
		},
	}
}

func (e *echoTrusted) OnStart(sv *Services) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sv = sv
	e.starts++
	e.volatile = nil
	e.secrets = nil
}

func (e *echoTrusted) Provision(secrets map[string][]byte) error {
	if e.failProv {
		return errors.New("refused")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.secrets = secrets
	return nil
}

func launch(t *testing.T, trusted Trusted, hook TransitionHook) (*Platform, *Enclave) {
	t.Helper()
	p := NewPlatformWithKey([]byte("hw-key"))
	e, err := p.Launch(Definition{Name: "test", CodeIdentity: "test-v1"}, trusted, hook)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return p, e
}

func TestECallRoundTrip(t *testing.T) {
	tr := &echoTrusted{}
	_, e := launch(t, tr, nil)
	out, err := e.ECall("echo", []byte("hello"))
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if string(out) != "hello" {
		t.Errorf("echo = %q", out)
	}
}

func TestECallDefensiveCopies(t *testing.T) {
	tr := &echoTrusted{}
	_, e := launch(t, tr, nil)

	arg := []byte("sensitive")
	out, err := e.ECall("echo", arg)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's buffer after the call must not affect what the
	// enclave captured (copy-in).
	arg[0] = 'X'
	if string(tr.argSeen) != "sensitive" {
		t.Errorf("enclave saw mutated argument: %q", tr.argSeen)
	}
	// Mutating the returned buffer must not affect trusted memory (copy-out).
	out[0] = 'Y'
	if string(tr.argSeen) != "sensitive" {
		t.Errorf("caller aliases trusted memory: %q", tr.argSeen)
	}
}

func TestECallUnknownAndError(t *testing.T) {
	_, e := launch(t, &echoTrusted{}, nil)
	if _, err := e.ECall("nope", nil); !errors.Is(err, ErrUnknownECall) {
		t.Errorf("unknown ecall error = %v", err)
	}
	if _, err := e.ECall("fail", nil); err == nil || err.Error() != "boom" {
		t.Errorf("handler error = %v", err)
	}
}

func TestTransitionHookAndStats(t *testing.T) {
	var calls []string
	var copied []int
	hook := func(name string, n int) {
		calls = append(calls, name)
		copied = append(copied, n)
	}
	_, e := launch(t, &echoTrusted{}, hook)
	if _, err := e.ECall("echo", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall("echo", make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != "echo" {
		t.Fatalf("hook calls = %v", calls)
	}
	if copied[0] != 20 || copied[1] != 10 { // arg + result
		t.Errorf("copied = %v, want [20 10]", copied)
	}
	st := e.Stats()
	if st.Transitions != 2 || st.ECalls["echo"] != 2 || st.CopiedBytes != 30 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStopAndRestart(t *testing.T) {
	tr := &echoTrusted{}
	_, e := launch(t, tr, nil)
	if _, err := e.ECall("set", []byte("cached")); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	if _, err := e.ECall("get", nil); !errors.Is(err, ErrStopped) {
		t.Errorf("ecall into stopped enclave: %v", err)
	}

	e.Restart()
	if tr.starts != 2 {
		t.Errorf("starts = %d, want 2", tr.starts)
	}
	// Rollback semantics: volatile state (the fast-read cache) is gone.
	out, err := e.ECall("get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("volatile state survived restart: %q", out)
	}
	if e.Provisioned() {
		t.Error("restart must drop provisioning")
	}
	if e.Stats().Restarts != 1 {
		t.Errorf("restarts = %d", e.Stats().Restarts)
	}
}

func TestProvision(t *testing.T) {
	tr := &echoTrusted{}
	_, e := launch(t, tr, nil)
	secret := []byte("group-key")
	if err := e.Provision(map[string][]byte{"k": secret}); err != nil {
		t.Fatal(err)
	}
	if !e.Provisioned() {
		t.Error("Provisioned() = false after Provision")
	}
	// The enclave must hold a copy, not the caller's buffer.
	secret[0] = 'X'
	if string(tr.secrets["k"]) != "group-key" {
		t.Error("provisioned secret aliases caller buffer")
	}
}

func TestProvisionFailure(t *testing.T) {
	tr := &echoTrusted{failProv: true}
	_, e := launch(t, tr, nil)
	if err := e.Provision(map[string][]byte{}); err == nil {
		t.Error("expected provision error")
	}
	if e.Provisioned() {
		t.Error("failed provision must not mark enclave provisioned")
	}
}

func TestEPCAccounting(t *testing.T) {
	tr := &echoTrusted{}
	p := NewPlatformWithKey([]byte("hw"))
	e, err := p.Launch(Definition{Name: "epc", CodeIdentity: "epc-v1", EPCLimit: 1000}, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := tr.sv
	if err := sv.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if err := sv.Alloc(600); err != nil { // 1200 > limit: allowed, counts paging
		t.Fatal(err)
	}
	st := e.Stats()
	if st.EPCUsed != 1200 || st.EPCPeak != 1200 {
		t.Errorf("EPC used/peak = %d/%d", st.EPCUsed, st.EPCPeak)
	}
	if st.PagingBytes != 200 {
		t.Errorf("paging bytes = %d, want 200", st.PagingBytes)
	}
	sv.Free(1200)
	if got := e.Stats().EPCUsed; got != 0 {
		t.Errorf("EPC used after free = %d", got)
	}
	// Hard budget is 4x the limit.
	if err := sv.Alloc(4001); !errors.Is(err, ErrEPCExhausted) {
		t.Errorf("hard budget error = %v", err)
	}
	if err := sv.Alloc(-1); err == nil {
		t.Error("negative alloc must fail")
	}
}

func TestSealUnseal(t *testing.T) {
	tr := &echoTrusted{}
	launch(t, tr, nil)
	sv := tr.sv

	blob, err := sv.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := sv.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "state" {
		t.Errorf("unsealed = %q", pt)
	}

	// Tampering must be detected.
	blob[len(blob)-1] ^= 1
	if _, err := sv.Unseal(blob); !errors.Is(err, ErrSealCorrupt) {
		t.Errorf("tampered unseal error = %v", err)
	}
	if _, err := sv.Unseal([]byte("short")); !errors.Is(err, ErrSealCorrupt) {
		t.Errorf("short unseal error = %v", err)
	}
}

func TestSealBoundToMeasurementAndPlatform(t *testing.T) {
	p := NewPlatformWithKey([]byte("hw-1"))
	trA, trB := &echoTrusted{}, &echoTrusted{}
	if _, err := p.Launch(Definition{Name: "a", CodeIdentity: "code-A"}, trA, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Launch(Definition{Name: "b", CodeIdentity: "code-B"}, trB, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := trA.sv.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trB.sv.Unseal(blob); err == nil {
		t.Error("enclave with different measurement unsealed the blob")
	}

	// Same code on another platform must not unseal either.
	p2 := NewPlatformWithKey([]byte("hw-2"))
	trA2 := &echoTrusted{}
	if _, err := p2.Launch(Definition{Name: "a2", CodeIdentity: "code-A"}, trA2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := trA2.sv.Unseal(blob); err == nil {
		t.Error("different platform unsealed the blob")
	}

	// Same code, same platform: unseal succeeds (e.g. after re-launch).
	trA3 := &echoTrusted{}
	if _, err := p.Launch(Definition{Name: "a3", CodeIdentity: "code-A"}, trA3, nil); err != nil {
		t.Fatal(err)
	}
	pt, err := trA3.sv.Unseal(blob)
	if err != nil || !bytes.Equal(pt, []byte("secret")) {
		t.Errorf("re-launched enclave unseal = %q, %v", pt, err)
	}
}

func TestAttestation(t *testing.T) {
	p := NewPlatformWithKey([]byte("hw-1"))
	tr := &echoTrusted{}
	e, err := p.Launch(Definition{Name: "att", CodeIdentity: "att-v1"}, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(p)
	q := p.QuoteFor(e, []byte("pubkey"))
	if err := v.Verify(q, MeasureCode("att-v1")); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if err := v.Verify(q, MeasureCode("other")); !errors.Is(err, ErrBadQuote) {
		t.Errorf("wrong measurement error = %v", err)
	}

	// A quote from an untrusted platform is rejected.
	rogue := NewPlatformWithKey([]byte("rogue"))
	e2, err := rogue.Launch(Definition{Name: "att", CodeIdentity: "att-v1"}, &echoTrusted{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2 := rogue.QuoteFor(e2, nil)
	if err := v.Verify(q2, MeasureCode("att-v1")); !errors.Is(err, ErrBadQuote) {
		t.Errorf("rogue platform quote error = %v", err)
	}

	// Tampered report data invalidates the quote.
	q.ReportData = []byte("evil")
	if err := v.Verify(q, MeasureCode("att-v1")); !errors.Is(err, ErrBadQuote) {
		t.Errorf("tampered report data error = %v", err)
	}
}

func TestThreadBudget(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	tr := &blockingTrusted{block: block, entered: entered}
	p := NewPlatformWithKey([]byte("hw"))
	e, err := p.Launch(Definition{Name: "t", CodeIdentity: "t-v1", MaxThreads: 1}, tr, nil)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := e.ECall("block", nil)
		done <- err
	}()
	<-entered
	if _, err := e.ECall("block", nil); !errors.Is(err, ErrTooManyThreads) {
		t.Errorf("second concurrent ecall error = %v", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Errorf("first ecall failed: %v", err)
	}
}

type blockingTrusted struct {
	block   chan struct{}
	entered chan struct{}
}

func (b *blockingTrusted) ECalls() map[string]func([]byte) ([]byte, error) {
	return map[string]func([]byte) ([]byte, error){
		"block": func([]byte) ([]byte, error) {
			b.entered <- struct{}{}
			<-b.block
			return nil, nil
		},
	}
}

func (b *blockingTrusted) OnStart(*Services)                 {}
func (b *blockingTrusted) Provision(map[string][]byte) error { return nil }

func TestLaunchValidation(t *testing.T) {
	p := NewPlatformWithKey([]byte("hw"))
	if _, err := p.Launch(Definition{Name: "x", CodeIdentity: "x"}, nil, nil); err == nil {
		t.Error("nil trusted code accepted")
	}
}
